GO ?= go

.PHONY: all check build vet test race bench repro repro-full cover clean

all: check

# check is the CI gate: compile, vet, the full suite, and the race
# detector over everything (including the wire e2e and fault-injection
# tests).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure at quick scale (seconds).
repro:
	$(GO) run ./cmd/poirepro -fig all

# Regenerate every figure at paper scale (several minutes); writes the
# numbers EXPERIMENTS.md cites.
repro-full:
	$(GO) run ./cmd/poirepro -fig all -scale full | tee results_full.txt

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
