GO ?= go

# The ablation benchmarks pinned into BENCH_core.json, and the packages
# that host them. bench-core regenerates the file; bench-diff reruns the
# same set and fails on >20% ns/op regressions against the committed
# baseline.
BENCH_CORE_PATTERN = FreqCacheSharded|WireBatchVsSequential|SweepParallelVsSerial|IndexHistVsScan|RegionPruneParallel|GramParallel|LedgerSpendParallel|LedgerSnapshotReplay
BENCH_CORE_PKGS = ./internal/gsp ./internal/wire ./internal/eval ./internal/index ./internal/attack ./internal/ml ./internal/budget

.PHONY: all check fmt-check build vet test race bench bench-core bench-diff fuzz-smoke loadtest repro repro-full cover clean

all: check

# check is the CI gate: formatting, compile, vet, the full suite, and the
# race detector over everything (including the wire e2e and
# fault-injection tests). The ./... patterns cover the examples too —
# they live in this module, so `go list ./...` includes them.
check: fmt-check build vet test race

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-core runs the PR-critical ablation benchmarks (sharded cache,
# batched wire queries, parallel sweep engine, histogram index, pooled
# region prune, parallel Gram, sharded budget ledger, snapshot replay)
# at a fixed -benchtime and writes the parsed numbers to BENCH_core.json
# for DESIGN.md §5.
bench-core:
	$(GO) test -run '^$$' -bench '$(BENCH_CORE_PATTERN)' \
		-benchmem -benchtime=1s -count=1 $(BENCH_CORE_PKGS) \
		| $(GO) run ./cmd/benchjson -out BENCH_core.json

# bench-diff reruns the core ablations and compares against the committed
# BENCH_core.json without rewriting it; exits nonzero when any shared
# benchmark regressed by more than 20% ns/op.
bench-diff:
	$(GO) test -run '^$$' -bench '$(BENCH_CORE_PATTERN)' \
		-benchmem -benchtime=1s -count=1 $(BENCH_CORE_PKGS) \
		| $(GO) run ./cmd/benchjson -prev BENCH_core.json

# fuzz-smoke runs the auth fuzz targets briefly (the corpus seeds already
# run as plain unit tests under `make test`; this adds a short mutation
# pass). Go allows one -fuzz pattern per invocation, hence two runs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzCanonicalString' -fuzztime 15s ./internal/wire
	$(GO) test -run '^$$' -fuzz 'FuzzVerifyRequest' -fuzztime 15s ./internal/wire

# loadtest is the overload-protection smoke: drive the in-process
# GSP+LBS stack closed-loop at 4x the admission limit with realistic
# per-release service time, and fail if nothing succeeded or anything
# errored unexpectedly. The JSON report (throughput, p50/p95/p99, shed
# counts) prints to stdout; see DESIGN.md for the saturation comparison.
loadtest:
	$(GO) run ./cmd/loadgen -inprocess -assert \
		-targets freq,batch,release -conc 32 -duration 3s \
		-admit-limit 8 -admit-queue 16 -admit-timeout 100ms \
		-audit-cost 2ms -name loadtest-smoke

# Regenerate every paper figure at quick scale (seconds).
repro:
	$(GO) run ./cmd/poirepro -fig all

# Regenerate every figure at paper scale (several minutes); writes the
# numbers EXPERIMENTS.md cites.
repro-full:
	$(GO) run ./cmd/poirepro -fig all -scale full | tee results_full.txt

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
