GO ?= go

# The ablation benchmarks pinned into BENCH_core.json, and the packages
# that host them. bench-core regenerates the file; bench-diff reruns the
# same set and fails on >20% ns/op regressions against the committed
# baseline.
BENCH_CORE_PATTERN = FreqCacheSharded|WireBatchVsSequential|SweepParallelVsSerial|IndexHistVsScan|RegionPruneParallel|GramParallel|LedgerSpendParallel|LedgerSnapshotReplay|FreqSingleflight|FreqEncodedHit|StoreWarmStart|StreamApply|WindowRelease
BENCH_CORE_PKGS = ./internal/gsp ./internal/wire ./internal/eval ./internal/index ./internal/attack ./internal/ml ./internal/budget ./internal/stream

.PHONY: all check fmt-check build vet test race bench bench-core bench-diff fuzz-smoke e2e-cluster e2e-stream loadtest loadtest-cluster loadtest-churn loadtest-duphot loadtest-stream repro repro-full cover clean

all: check

# check is the CI gate: formatting, compile, vet, the full suite, and the
# race detector over everything (including the wire e2e and
# fault-injection tests). The ./... patterns cover the examples too —
# they live in this module, so `go list ./...` includes them.
check: fmt-check build vet test race

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-core runs the PR-critical ablation benchmarks (sharded cache,
# batched wire queries, parallel sweep engine, histogram index, pooled
# region prune, parallel Gram, sharded budget ledger, snapshot replay)
# at a fixed -benchtime and writes the parsed numbers to BENCH_core.json
# for DESIGN.md §5.
bench-core:
	$(GO) test -run '^$$' -bench '$(BENCH_CORE_PATTERN)' \
		-benchmem -benchtime=1s -count=1 $(BENCH_CORE_PKGS) \
		| $(GO) run ./cmd/benchjson -out BENCH_core.json

# bench-diff reruns the core ablations and compares against the committed
# BENCH_core.json without rewriting it; exits nonzero when any shared
# benchmark regressed by more than 20% ns/op.
bench-diff:
	$(GO) test -run '^$$' -bench '$(BENCH_CORE_PATTERN)' \
		-benchmem -benchtime=1s -count=1 $(BENCH_CORE_PKGS) \
		| $(GO) run ./cmd/benchjson -prev BENCH_core.json

# fuzz-smoke runs the auth fuzz targets briefly (the corpus seeds already
# run as plain unit tests under `make test`; this adds a short mutation
# pass). Go allows one -fuzz pattern per invocation, hence two runs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzCanonicalString' -fuzztime 15s ./internal/wire
	$(GO) test -run '^$$' -fuzz 'FuzzVerifyRequest' -fuzztime 15s ./internal/wire

# e2e-cluster runs the multi-node proof layer under the race detector:
# the consistent-hash ring property tests, the differential cluster e2e
# (N shards behind gspgw byte-identical to one gspd, auth on and off),
# and the fault-injection tests (shard death mid-batch, probe-driven
# recovery, concurrent ring mutation during fanout).
e2e-cluster:
	$(GO) test -race -count=1 ./internal/cluster
	$(GO) test -race -count=1 -run 'TestCluster|TestGSPClientConnectionRefused|TestGSPClientRecoversFromSingleRefusal' ./internal/wire
	$(GO) test -race -count=1 ./cmd/gspgw

# e2e-stream runs the streaming-ingestion proof layer under the race
# detector: the window store / releaser unit suite, the replay-identity
# e2e (live authenticated NDJSON ingestion vs offline batch replay of
# the captured event log — bit-identical releases, byte-identical
# ledger snapshots), the bounded-memory flood, the per-event ingest
# error surface, backpressure via admission control, and the daemon's
# drain ordering (final flush charges the ledger before Close).
e2e-stream:
	$(GO) test -race -count=1 ./internal/stream
	$(GO) test -race -count=1 -run 'TestStream|TestIngest|TestLBSClientBodyTooLarge' ./internal/wire
	$(GO) test -race -count=1 -run 'TestStreamDrain' ./cmd/lbsd

# loadtest-cluster drives the in-process closed loop against a bare
# gspd (n=0) and 1/2/4-shard fleets behind the gateway, writing
# LOADTEST_cluster_<n>.json. On one machine every shard shares the same
# cores, so this measures the gateway's fan-out/merge overhead — not
# horizontal scaling; scaling needs one machine per shard (see
# DESIGN.md §10 for the committed run and its reading).
loadtest-cluster:
	for n in 0 1 2 4; do \
		$(GO) run ./cmd/loadgen -inprocess -assert -cluster $$n \
			-targets freq,batch -conc 32 -duration 3s -batch 16 \
			-name cluster-$$n -out LOADTEST_cluster_$$n.json; \
	done

# loadtest-duphot measures duplicate-miss collapse: a zipf-skewed hot
# key set whose radius rotates every epoch, so each rotation stampedes
# all 32 workers onto the same fresh misses; -compute-cost pads each
# CountTypes with fixed yielding CPU work so the misses genuinely
# overlap (the contention profile of a dense production city). Runs the
# ablation pair — miss coalescer off, then on — and writes
# LOADTEST_duphot_{off,on}.json; compare the "gsp" stats (computes,
# sfJoined) and okLatency.p99 between the two (DESIGN.md §11).
loadtest-duphot:
	$(GO) run ./cmd/loadgen -inprocess -assert -quiet \
		-targets freq -profile dup-hot -conc 32 -duration 5s \
		-compute-cost 3ms -zipf-s 1.6 -dup-epoch 250ms \
		-no-singleflight -name duphot-singleflight-off \
		-out LOADTEST_duphot_off.json
	$(GO) run ./cmd/loadgen -inprocess -assert -quiet \
		-targets freq -profile dup-hot -conc 32 -duration 5s \
		-compute-cost 3ms -zipf-s 1.6 -dup-epoch 250ms \
		-name duphot-singleflight-on \
		-out LOADTEST_duphot_on.json

# loadtest-stream drives open-loop NDJSON ingestion with rotating user
# cohorts (a fresh never-seen population every -stream-burst) against
# the in-process stream subsystem while the windowed DP releaser ticks,
# writing LOADTEST_stream.json. The -assert flag fails the run if the
# window store ever exceeds its users × per-user memory cap, so the
# bounded-memory claim is load-tested, not just unit-tested.
loadtest-stream:
	$(GO) run ./cmd/loadgen -inprocess -assert -quiet \
		-targets ingest -profile stream -rate 400 -conc 32 -duration 5s \
		-stream-users 256 -stream-batch 8 -stream-burst 1s -stream-tick 500ms \
		-name stream-ingest -out LOADTEST_stream.json

# loadtest-churn rehearses a live fleet transition: 3 per-shard-cache
# GSP shards behind the gateway, with one retired through the
# membership admin API at a third of the run and a brand-new cold shard
# admitted — pre-warmed by the gateway over the moved cells — at two
# thirds, writing LOADTEST_churn.json. The churn block's per-phase
# latency quantiles and effective hit rates are the measurement: the
# departed→rejoined dip is the cost of rebalancing, and -assert fails
# the run if any phase stalls or the joiner was admitted cold.
loadtest-churn:
	$(GO) run ./cmd/loadgen -inprocess -assert -quiet \
		-targets freq -profile membership-churn -cluster 3 \
		-conc 24 -duration 6s -timeout 5s \
		-name membership-churn -out LOADTEST_churn.json

# loadtest is the overload-protection smoke: drive the in-process
# GSP+LBS stack closed-loop at 4x the admission limit with realistic
# per-release service time, and fail if nothing succeeded or anything
# errored unexpectedly. The JSON report (throughput, p50/p95/p99, shed
# counts) prints to stdout; see DESIGN.md for the saturation comparison.
loadtest:
	$(GO) run ./cmd/loadgen -inprocess -assert \
		-targets freq,batch,release -conc 32 -duration 3s \
		-admit-limit 8 -admit-queue 16 -admit-timeout 100ms \
		-audit-cost 2ms -name loadtest-smoke

# Regenerate every paper figure at quick scale (seconds).
repro:
	$(GO) run ./cmd/poirepro -fig all

# Regenerate every figure at paper scale (several minutes); writes the
# numbers EXPERIMENTS.md cites.
repro-full:
	$(GO) run ./cmd/poirepro -fig all -scale full | tee results_full.txt

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
