GO ?= go

.PHONY: all check build vet test race bench bench-core repro repro-full cover clean

all: check

# check is the CI gate: compile, vet, the full suite, and the race
# detector over everything (including the wire e2e and fault-injection
# tests).
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-core runs the PR-critical ablation benchmarks (sharded cache,
# batched wire queries, parallel sweep engine) at a fixed -benchtime and
# writes the parsed numbers to BENCH_core.json for DESIGN.md §5.
bench-core:
	$(GO) test -run '^$$' -bench 'FreqCacheSharded|WireBatchVsSequential|SweepParallelVsSerial' \
		-benchmem -benchtime=1s -count=1 ./internal/gsp ./internal/wire ./internal/eval \
		| $(GO) run ./cmd/benchjson -out BENCH_core.json

# Regenerate every paper figure at quick scale (seconds).
repro:
	$(GO) run ./cmd/poirepro -fig all

# Regenerate every figure at paper scale (several minutes); writes the
# numbers EXPERIMENTS.md cites.
repro-full:
	$(GO) run ./cmd/poirepro -fig all -scale full | tee results_full.txt

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
