GO ?= go

.PHONY: all build vet test race bench repro repro-full cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure at quick scale (seconds).
repro:
	$(GO) run ./cmd/poirepro -fig all

# Regenerate every figure at paper scale (several minutes); writes the
# numbers EXPERIMENTS.md cites.
repro-full:
	$(GO) run ./cmd/poirepro -fig all -scale full | tee results_full.txt

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
