// Benchmarks regenerating every table and figure of the paper, one
// testing.B target per experiment (see DESIGN.md's per-experiment index).
// They run at quick scale against a shared environment, so they measure
// the cost of each figure's sweep with substrates (cities, trained
// models, datasets) already built — the steady-state cost of
// regenerating a figure.
//
// Run all:  go test -bench=Fig -benchmem .
package poiagg_test

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"poiagg/internal/citygen"
	"poiagg/internal/experiments"
	"poiagg/internal/gsp"
	"poiagg/internal/wire"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.Config{
			Seed:      1,
			Scale:     experiments.ScaleQuick,
			Locations: 60,
		})
	})
	return benchEnv
}

func benchFigure(b *testing.B, id string) {
	env := benchEnvironment(b)
	driver := experiments.Registry()[id]
	if driver == nil {
		b.Fatalf("no driver for %q", id)
	}
	// Warm the environment (city generation, model training) outside the
	// timed region.
	if _, err := driver(env); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := driver(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetTable regenerates the Section II-E dataset statistics.
func BenchmarkDatasetTable(b *testing.B) { benchFigure(b, "datasets") }

// BenchmarkFig2 regenerates Figure 2 (recovery-model accuracy).
func BenchmarkFig2(b *testing.B) { benchFigure(b, "2") }

// BenchmarkFig3 regenerates Figure 3 (sanitization defense).
func BenchmarkFig3(b *testing.B) { benchFigure(b, "3") }

// BenchmarkFig4 regenerates Figure 4 (planar Laplace defense).
func BenchmarkFig4(b *testing.B) { benchFigure(b, "4") }

// BenchmarkFig5 regenerates Figure 5 (spatial k-cloaking defense).
func BenchmarkFig5(b *testing.B) { benchFigure(b, "5") }

// BenchmarkFig6 regenerates Figure 6 (fine-grained attack area CDF).
func BenchmarkFig6(b *testing.B) { benchFigure(b, "6") }

// BenchmarkFig7 regenerates Figure 7 (area vs auxiliary anchors).
func BenchmarkFig7(b *testing.B) { benchFigure(b, "7") }

// BenchmarkFig8 regenerates Figure 8 (trajectory-uniqueness attack).
func BenchmarkFig8(b *testing.B) { benchFigure(b, "8") }

// BenchmarkFig9 regenerates Figure 9 (non-private defense, success).
func BenchmarkFig9(b *testing.B) { benchFigure(b, "9") }

// BenchmarkFig10 regenerates Figure 10 (non-private defense, utility).
func BenchmarkFig10(b *testing.B) { benchFigure(b, "10") }

// BenchmarkFig11 regenerates Figure 11 (DP defense, success).
func BenchmarkFig11(b *testing.B) { benchFigure(b, "11") }

// BenchmarkFig12 regenerates Figure 12 (DP defense, utility).
func BenchmarkFig12(b *testing.B) { benchFigure(b, "12") }

// BenchmarkExtSeq regenerates the multi-release sequence-attack
// extension figure.
func BenchmarkExtSeq(b *testing.B) { benchFigure(b, "ext-seq") }

// BenchmarkExtRobust regenerates the defense-robustness extension figure
// (trains transform-recovery models; the heaviest target).
func BenchmarkExtRobust(b *testing.B) { benchFigure(b, "ext-robust") }

// BenchmarkExtBudget regenerates the budget-enforcement extension figure
// (sequence attack against ledger-throttled release runs).
func BenchmarkExtBudget(b *testing.B) { benchFigure(b, "ext-budget") }

// BenchmarkGSPServerParallel prices the observability middleware: the
// same /v1/freq workload through the instrumented handler (metrics +
// operational endpoints) and the bare one, driven from all procs in
// parallel as a production GSP would be. The instrumented/bare delta is
// the middleware's overhead, recorded in DESIGN.md.
func BenchmarkGSPServerParallel(b *testing.B) {
	p := citygen.Beijing(51)
	p.NumPOIs = 2000
	p.NumTypes = 60
	p.Width, p.Height = 12_000, 12_000
	city, err := citygen.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	svc := gsp.NewService(city.City, 1<<14)
	discard := log.New(io.Discard, "", 0)
	l := city.RandomLocations(1, 52)[0]
	target := fmt.Sprintf("/v1/freq?x=%f&y=%f&r=700", l.X, l.Y)

	for _, variant := range []struct {
		name         string
		instrumented bool
	}{{"instrumented", true}, {"bare", false}} {
		b.Run(variant.name, func(b *testing.B) {
			handler := wire.NewGSPServer(svc,
				wire.WithLogger(discard),
				wire.WithInstrumentation(variant.instrumented),
			)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest(http.MethodGet, target, nil)
					rec := httptest.NewRecorder()
					handler.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("status %d", rec.Code)
					}
				}
			})
		})
	}
}
