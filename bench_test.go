// Benchmarks regenerating every table and figure of the paper, one
// testing.B target per experiment (see DESIGN.md's per-experiment index).
// They run at quick scale against a shared environment, so they measure
// the cost of each figure's sweep with substrates (cities, trained
// models, datasets) already built — the steady-state cost of
// regenerating a figure.
//
// Run all:  go test -bench=Fig -benchmem .
package poiagg_test

import (
	"sync"
	"testing"

	"poiagg/internal/experiments"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.Config{
			Seed:      1,
			Scale:     experiments.ScaleQuick,
			Locations: 60,
		})
	})
	return benchEnv
}

func benchFigure(b *testing.B, id string) {
	env := benchEnvironment(b)
	driver := experiments.Registry()[id]
	if driver == nil {
		b.Fatalf("no driver for %q", id)
	}
	// Warm the environment (city generation, model training) outside the
	// timed region.
	if _, err := driver(env); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := driver(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetTable regenerates the Section II-E dataset statistics.
func BenchmarkDatasetTable(b *testing.B) { benchFigure(b, "datasets") }

// BenchmarkFig2 regenerates Figure 2 (recovery-model accuracy).
func BenchmarkFig2(b *testing.B) { benchFigure(b, "2") }

// BenchmarkFig3 regenerates Figure 3 (sanitization defense).
func BenchmarkFig3(b *testing.B) { benchFigure(b, "3") }

// BenchmarkFig4 regenerates Figure 4 (planar Laplace defense).
func BenchmarkFig4(b *testing.B) { benchFigure(b, "4") }

// BenchmarkFig5 regenerates Figure 5 (spatial k-cloaking defense).
func BenchmarkFig5(b *testing.B) { benchFigure(b, "5") }

// BenchmarkFig6 regenerates Figure 6 (fine-grained attack area CDF).
func BenchmarkFig6(b *testing.B) { benchFigure(b, "6") }

// BenchmarkFig7 regenerates Figure 7 (area vs auxiliary anchors).
func BenchmarkFig7(b *testing.B) { benchFigure(b, "7") }

// BenchmarkFig8 regenerates Figure 8 (trajectory-uniqueness attack).
func BenchmarkFig8(b *testing.B) { benchFigure(b, "8") }

// BenchmarkFig9 regenerates Figure 9 (non-private defense, success).
func BenchmarkFig9(b *testing.B) { benchFigure(b, "9") }

// BenchmarkFig10 regenerates Figure 10 (non-private defense, utility).
func BenchmarkFig10(b *testing.B) { benchFigure(b, "10") }

// BenchmarkFig11 regenerates Figure 11 (DP defense, success).
func BenchmarkFig11(b *testing.B) { benchFigure(b, "11") }

// BenchmarkFig12 regenerates Figure 12 (DP defense, utility).
func BenchmarkFig12(b *testing.B) { benchFigure(b, "12") }

// BenchmarkExtSeq regenerates the multi-release sequence-attack
// extension figure.
func BenchmarkExtSeq(b *testing.B) { benchFigure(b, "ext-seq") }

// BenchmarkExtRobust regenerates the defense-robustness extension figure
// (trains transform-recovery models; the heaviest target).
func BenchmarkExtRobust(b *testing.B) { benchFigure(b, "ext-robust") }
