// Command attackdemo walks through one end-to-end location
// re-identification with verbose tracing: it places a user in a
// synthetic city, shows the frequency vector the user would release,
// runs the region and fine-grained attacks, and then shows how the
// paper's DP defense breaks the attack.
//
// Usage:
//
//	attackdemo -city beijing -r 1000 -seed 7
//	attackdemo -gsp http://host:8080 -r 1000     # remote mode
//	attackdemo -lbs http://host:8081 -principal mallory
//
// Remote mode fetches the adversary's prior knowledge (the full POI set)
// from a running gspd over HTTP with the hardened wire client: -timeout
// bounds each attempt, -retries recovers from transient failures. When
// the daemons require signed requests (-auth-keys), pass
// -auth-key "principal=hexkey" to sign every request transparently.
//
// With -lbs the demo also submits the release to a running lbsd as
// -principal and, when that daemon enforces a privacy budget (lbsd
// -budget), keeps releasing until the ledger answers 429 — showing the
// per-principal window drain and the structured denial a real client
// sees.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"poiagg"
	"poiagg/internal/gsp"
	"poiagg/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "attackdemo:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("attackdemo", flag.ContinueOnError)
	cityName := fs.String("city", "beijing", "city preset: beijing or nyc")
	r := fs.Float64("r", 1000, "query range in meters")
	seed := fs.Uint64("seed", 7, "random seed")
	tries := fs.Int("tries", 200, "user locations to try until one is unique")
	gspURL := fs.String("gsp", "", "fetch the city from this remote GSP base URL instead of generating it")
	timeout := fs.Duration("timeout", 10*time.Second, "remote mode: per-attempt request timeout")
	retries := fs.Int("retries", 3, "remote mode: retries on transient GSP failures")
	lbsURL := fs.String("lbs", "", "submit the release to this remote LBS base URL (budget demo)")
	principal := fs.String("principal", "attackdemo", "budget principal to charge releases against (with -lbs)")
	authKey := fs.String("auth-key", "", "sign remote requests as principal=hexkey (required against -auth-keys daemons)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var signOpts []wire.ClientOption
	if *authKey != "" {
		p, key, err := wire.ParseSigningKey(*authKey)
		if err != nil {
			return err
		}
		signOpts = append(signOpts, wire.WithSigningKey(p, key))
	}

	var (
		city *poiagg.City
		err  error
		// Remote mode keeps the wire client and the fetched city so the
		// walk-through can re-run the region attack over the batch
		// endpoint and show the two engines agree.
		gspClient  *wire.GSPClient
		remoteCity *gsp.City
	)
	switch {
	case *gspURL != "":
		city, gspClient, remoteCity, err = fetchRemoteCity(*gspURL, *timeout, *retries, signOpts)
		if err == nil {
			fmt.Fprintf(w, "fetched city over the wire from %s\n", *gspURL)
		}
	case *cityName == "beijing":
		city, err = poiagg.GenerateBeijing(*seed)
	case *cityName == "nyc":
		city, err = poiagg.GenerateNewYork(*seed)
	default:
		return fmt.Errorf("unknown city %q", *cityName)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "city %s: %d POIs, %d types\n", city.Name(), city.NumPOIs(), city.M())

	// Find a user whose release is unique (the attack succeeds), to make
	// the walk-through informative.
	locs := city.RandomLocations(*tries, *seed+1)
	for _, user := range locs {
		release := city.Freq(user, *r)
		res := city.RegionAttack(release, *r)
		if !res.Success {
			continue
		}

		fmt.Fprintf(w, "\nuser at %v releases a vector with %d POIs over %d types (r = %.0f m)\n",
			user, release.Total(), release.Support(), *r)
		fmt.Fprintf(w, "most infrequent type present: %q (city-wide count %d)\n",
			city.Types().Name(res.AnchorType), city.CityFreq()[res.AnchorType])
		fmt.Fprintf(w, "REGION ATTACK: unique anchor %q at %v — user is within %.0f m of it\n",
			city.Types().Name(res.Anchor.Type), res.Anchor.Pos, *r)
		fmt.Fprintf(w, "  search area: %.2f km² (πr²)\n", math.Pi*(*r)*(*r)/1e6)

		if gspClient != nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			rres, stats, err := wire.RemoteRegion(ctx, gspClient, remoteCity, release, *r, wire.DefaultMaxBatch)
			cancel()
			if err != nil {
				return fmt.Errorf("remote region attack: %w", err)
			}
			agree := rres.Success == res.Success && rres.Anchor.ID == res.Anchor.ID
			fmt.Fprintf(w, "REMOTE REGION ATTACK (batched wire probes): agrees with local: %v\n", agree)
			fmt.Fprintf(w, "  %d anchor probes in %d batched round trips\n", stats.Probes, stats.RoundTrips)
		}

		fg := city.FineGrainedAttack(release, *r, poiagg.DefaultFineGrainedConfig())
		fmt.Fprintf(w, "FINE-GRAINED ATTACK: %d auxiliary anchors\n", len(fg.AuxAnchors))
		fmt.Fprintf(w, "  search area shrinks to %.3f km² (%.1f%% of πr²)\n",
			fg.Area/1e6, 100*fg.Area/(math.Pi*(*r)*(*r)))
		fmt.Fprintf(w, "  feasible region still contains the user: %v\n", fg.Covers(user, *r))

		mech, err := city.NewDPRelease(poiagg.DefaultDPReleaseConfig())
		if err != nil {
			return err
		}
		protected, err := mech.Release(poiagg.NewRand(*seed+2), user, *r)
		if err != nil {
			return err
		}
		pres := city.RegionAttack(protected, *r)
		fmt.Fprintf(w, "DP DEFENSE (k=20, eps=%.1f, delta=%.1f, beta=%.2f): ",
			mech.Config().Eps, mech.Config().Delta, mech.Config().Beta)
		switch {
		case !pres.Success:
			fmt.Fprintf(w, "attack fails (%d surviving candidates)\n", len(pres.Candidates))
		case !pres.Covers(user, *r):
			fmt.Fprintln(w, "attack confidently identifies the WRONG location")
		default:
			fmt.Fprintln(w, "attack still succeeds (rare; rerun with another seed)")
		}

		if *lbsURL != "" {
			if err := demoBudget(w, *lbsURL, *principal, *timeout, *retries, signOpts, release, *r); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("no unique location found in %d tries; raise -tries or -r", *tries)
}

// demoBudget submits the release to a running lbsd as the given
// principal until the privacy-budget ledger denies it (or a safety cap),
// tracing the window drain and the structured 429 the client receives.
func demoBudget(w io.Writer, lbsURL, principal string, timeout time.Duration, retries int, signOpts []wire.ClientOption, release poiagg.FreqVector, r float64) error {
	opts := append([]wire.ClientOption{
		wire.WithRequestTimeout(timeout),
		wire.WithRetries(retries),
		wire.WithPrincipal(principal),
	}, signOpts...)
	client := wire.NewLBSClient(lbsURL, nil, opts...)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	fmt.Fprintf(w, "\nBUDGET DEMO: releasing to %s as principal %q\n", lbsURL, principal)
	rel := wire.ReleaseRequest{UserID: principal, Freq: release, R: r, Time: time.Now().UTC()}
	const cap = 25
	for i := 1; i <= cap; i++ {
		resp, err := client.Release(ctx, rel)
		var denied *wire.BudgetDeniedError
		if errors.As(err, &denied) {
			st := denied.State
			fmt.Fprintf(w, "  release %d DENIED (%s): spent ε=%.2f of window, lifetime remaining ε=%.2f",
				i, st.Denial, st.SpentEps, st.RemainingEps)
			if st.RetryAfterSeconds > 0 {
				fmt.Fprintf(w, ", retry after %s", time.Duration(st.RetryAfterSeconds*float64(time.Second)).Round(time.Second))
			}
			fmt.Fprintln(w)
			fmt.Fprintln(w, "  the ledger caps what this principal can leak per window — the defense holds server-side")
			return nil
		}
		if err != nil {
			return fmt.Errorf("budget demo release %d: %w", i, err)
		}
		if resp.Budget == nil {
			fmt.Fprintln(w, "  LBS accepted the release without budget enforcement (run lbsd -budget to see the ledger)")
			return nil
		}
		fmt.Fprintf(w, "  release %d accepted: window remaining ε=%.2f, lifetime remaining ε=%.2f\n",
			i, resp.Budget.WindowRemainingEps, resp.Budget.RemainingEps)
	}
	fmt.Fprintf(w, "  no denial after %d releases; the configured budget outlasts this demo\n", cap)
	return nil
}

// fetchRemoteCity acquires the demo's prior knowledge from a running
// gspd, exactly as the paper's adversary would. It also returns the
// client and the fetched city so the demo can mount the batched remote
// attack against the same server.
func fetchRemoteCity(baseURL string, timeout time.Duration, retries int, signOpts []wire.ClientOption) (*poiagg.City, *wire.GSPClient, *gsp.City, error) {
	opts := append([]wire.ClientOption{
		wire.WithRequestTimeout(timeout),
		wire.WithRetries(retries),
	}, signOpts...)
	client := wire.NewGSPClient(baseURL, nil, opts...)
	remote, err := wire.FetchCity(context.Background(), client)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fetch city from %s: %w", baseURL, err)
	}
	city, err := poiagg.NewCityFromPOIs(remote.Name, remote.Bounds, remote.Types, remote.POIs())
	if err != nil {
		return nil, nil, nil, err
	}
	return city, client, remote, nil
}
