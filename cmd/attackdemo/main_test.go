package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"poiagg/internal/citygen"
	"poiagg/internal/gsp"
	"poiagg/internal/wire"
)

// TestRunRemoteMode drives the demo against an in-process gspd handler:
// the prior knowledge arrives over real HTTP through the hardened client.
func TestRunRemoteMode(t *testing.T) {
	p := citygen.Beijing(61)
	p.NumPOIs = 2000
	p.NumTypes = 60
	p.Width, p.Height = 12_000, 12_000
	city, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	svc := gsp.NewService(city.City, 1<<14)
	ts := httptest.NewServer(wire.NewGSPServer(svc))
	defer ts.Close()

	var buf bytes.Buffer
	if err := run([]string{"-gsp", ts.URL, "-r", "1000", "-tries", "300"}, &buf); err != nil {
		t.Fatalf("remote run: %v (output %q)", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "fetched city over the wire") {
		t.Errorf("missing remote-mode banner:\n%s", out)
	}
	if !strings.Contains(out, "REGION ATTACK") {
		t.Errorf("attack never ran against the fetched city:\n%s", out)
	}
}

func TestRunRemoteModeBadURL(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-gsp", "http://127.0.0.1:1", "-retries", "0", "-timeout", "100ms"}, &buf)
	if err == nil {
		t.Error("unreachable GSP accepted")
	}
}

func TestRunWalkthrough(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-city", "beijing", "-r", "1000", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"REGION ATTACK", "FINE-GRAINED ATTACK", "DP DEFENSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-city", "gotham"}, &buf); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-tries", "0"}, &buf); err == nil {
		t.Error("zero tries should fail to find a unique location")
	}
}
