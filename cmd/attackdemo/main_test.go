package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunWalkthrough(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-city", "beijing", "-r", "1000", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"REGION ATTACK", "FINE-GRAINED ATTACK", "DP DEFENSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-city", "gotham"}, &buf); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-tries", "0"}, &buf); err == nil {
		t.Error("zero tries should fail to find a unique location")
	}
}
