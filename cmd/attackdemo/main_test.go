package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/citygen"
	"poiagg/internal/gsp"
	"poiagg/internal/wire"
)

// TestRunRemoteMode drives the demo against an in-process gspd handler:
// the prior knowledge arrives over real HTTP through the hardened client.
func TestRunRemoteMode(t *testing.T) {
	p := citygen.Beijing(61)
	p.NumPOIs = 2000
	p.NumTypes = 60
	p.Width, p.Height = 12_000, 12_000
	city, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	svc := gsp.NewService(city.City, 1<<14)
	ts := httptest.NewServer(wire.NewGSPServer(svc))
	defer ts.Close()

	var buf bytes.Buffer
	if err := run([]string{"-gsp", ts.URL, "-r", "1000", "-tries", "300"}, &buf); err != nil {
		t.Fatalf("remote run: %v (output %q)", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "fetched city over the wire") {
		t.Errorf("missing remote-mode banner:\n%s", out)
	}
	if !strings.Contains(out, "REGION ATTACK") {
		t.Errorf("attack never ran against the fetched city:\n%s", out)
	}
}

func TestRunRemoteModeBadURL(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-gsp", "http://127.0.0.1:1", "-retries", "0", "-timeout", "100ms"}, &buf)
	if err == nil {
		t.Error("unreachable GSP accepted")
	}
}

func TestRunWalkthrough(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-city", "beijing", "-r", "1000", "-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"REGION ATTACK", "FINE-GRAINED ATTACK", "DP DEFENSE"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunBudgetDemo points the demo at an in-process budget-enforcing
// LBS: the window covers two releases, so the demo must show exactly two
// grants and then the structured 429.
func TestRunBudgetDemo(t *testing.T) {
	p := citygen.Beijing(7)
	city, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	led, err := budget.New(budget.Policy{
		LifetimeEps: 100, Window: 24 * time.Hour, WindowEps: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(wire.NewLBSServer(city.M(),
		wire.WithBudget(led, 0.5, 0)))
	defer ts.Close()

	var buf bytes.Buffer
	if err := run([]string{"-city", "beijing", "-seed", "7",
		"-lbs", ts.URL, "-principal", "mallory"}, &buf); err != nil {
		t.Fatalf("budget demo run: %v (output %q)", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, `principal "mallory"`) {
		t.Errorf("missing budget banner:\n%s", out)
	}
	if !strings.Contains(out, "release 2 accepted") || strings.Contains(out, "release 3 accepted") {
		t.Errorf("window should cover exactly 2 releases:\n%s", out)
	}
	if !strings.Contains(out, "release 3 DENIED (window)") {
		t.Errorf("missing structured denial:\n%s", out)
	}
	if st := led.Status("mallory"); st.Releases != 2 {
		t.Errorf("ledger charged %d releases, want 2", st.Releases)
	}
}

// TestRunBudgetDemoUnenforced: an LBS without a ledger accepts releases
// with no budget state; the demo must say so instead of looping.
func TestRunBudgetDemoUnenforced(t *testing.T) {
	p := citygen.Beijing(7)
	city, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(wire.NewLBSServer(city.M()))
	defer ts.Close()

	var buf bytes.Buffer
	if err := run([]string{"-city", "beijing", "-seed", "7", "-lbs", ts.URL}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "without budget enforcement") {
		t.Errorf("missing unenforced notice:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-city", "gotham"}, &buf); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-tries", "0"}, &buf); err == nil {
		t.Error("zero tries should fail to find a unique location")
	}
}
