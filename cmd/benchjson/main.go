// Command benchjson converts `go test -bench` output on stdin into a
// JSON document, teeing the raw text through to stderr so the run stays
// watchable. It backs the `make bench-core` target, which pins the PR's
// performance claims (sharded cache, batched wire queries, parallel
// sweeps, histogram index, parallel Gram) to machine-readable numbers in
// BENCH_core.json.
//
// With -prev it additionally diffs the fresh run against a committed
// baseline document and exits nonzero when any shared benchmark regressed
// by more than -max-regress in ns/op — the `make bench-diff` regression
// gate.
//
// Usage:
//
//	go test -bench 'FreqCacheSharded' -benchmem ./internal/gsp | benchjson -out BENCH_core.json
//	go test -bench ... | benchjson -prev BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// Document is the emitted JSON file.
type Document struct {
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, tee io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH.json", "output JSON file")
	prev := fs.String("prev", "", "baseline JSON to diff against; exit nonzero on regression")
	maxRegress := fs.Float64("max-regress", 0.20, "ns/op regression tolerance vs -prev (0.20 = +20%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// In diff mode the JSON file is only written when -out was given
	// explicitly: a regression check must not clobber the committed
	// baseline it compares against.
	outSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	var doc Document
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(tee, line)
		if res, ok := parseBenchLine(line); ok {
			doc.Results = append(doc.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	if *prev == "" || outSet {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(tee, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
	}
	if *prev != "" {
		return diffAgainst(*prev, doc, *maxRegress, tee)
	}
	return nil
}

// diffAgainst compares the fresh results to the baseline document by
// benchmark name, printing a per-benchmark delta line and returning an
// error when any shared benchmark's ns/op regressed beyond tolerance.
// Benchmarks present on only one side are reported but never fail the
// run — adding an ablation must not break the gate.
func diffAgainst(path string, cur Document, maxRegress float64, tee io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Document
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}

	var regressed []string
	matched := 0
	for _, r := range cur.Results {
		b, ok := baseByName[r.Name]
		if !ok {
			fmt.Fprintf(tee, "benchjson: %-60s new (no baseline)\n", r.Name)
			continue
		}
		matched++
		delete(baseByName, r.Name)
		if b.NsPerOp <= 0 {
			fmt.Fprintf(tee, "benchjson: %-60s baseline ns/op is 0, skipped\n", r.Name)
			continue
		}
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "ok"
		if delta > maxRegress {
			status = "REGRESSED"
			regressed = append(regressed, r.Name)
		}
		fmt.Fprintf(tee, "benchjson: %-60s %12.1f -> %12.1f ns/op  %+6.1f%%  %s\n",
			r.Name, b.NsPerOp, r.NsPerOp, delta*100, status)
	}
	for name := range baseByName {
		fmt.Fprintf(tee, "benchjson: %-60s missing from this run\n", name)
	}
	if matched == 0 {
		return fmt.Errorf("no benchmarks shared with baseline %s", path)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressed), maxRegress*100, strings.Join(regressed, ", "))
	}
	fmt.Fprintf(tee, "benchjson: %d benchmark(s) within %.0f%% of %s\n", matched, maxRegress*100, path)
	return nil
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFreqCacheSharded/sharded-8   2262099   530.6 ns/op   216 B/op   3 allocs/op
//
// Lines that are not benchmark results (headers, PASS, ok ...) report
// false.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			ns, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, false
			}
			res.NsPerOp = ns
			seen = true
		case "B/op":
			res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return res, seen
}
