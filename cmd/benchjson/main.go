// Command benchjson converts `go test -bench` output on stdin into a
// JSON document, teeing the raw text through to stderr so the run stays
// watchable. It backs the `make bench-core` target, which pins the PR's
// performance claims (sharded cache, batched wire queries, parallel
// sweeps) to machine-readable numbers in BENCH_core.json.
//
// Usage:
//
//	go test -bench 'FreqCacheSharded' -benchmem ./internal/gsp | benchjson -out BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// Document is the emitted JSON file.
type Document struct {
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, tee io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH.json", "output JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var doc Document
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(tee, line)
		if res, ok := parseBenchLine(line); ok {
			doc.Results = append(doc.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}

	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(tee, "benchjson: wrote %d results to %s\n", len(doc.Results), *out)
	return nil
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFreqCacheSharded/sharded-8   2262099   530.6 ns/op   216 B/op   3 allocs/op
//
// Lines that are not benchmark results (headers, PASS, ok ...) report
// false.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			ns, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, false
			}
			res.NsPerOp = ns
			seen = true
		case "B/op":
			res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return res, seen
}
