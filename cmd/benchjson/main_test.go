package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: poiagg/internal/gsp
BenchmarkFreqCacheSharded/sharded-8   2262099   530.6 ns/op   216 B/op   3 allocs/op
BenchmarkFreqCacheSharded/locked-8    1000000  1200.0 ns/op   216 B/op   3 allocs/op
PASS
ok  	poiagg/internal/gsp	3.1s
`

func TestParseBenchLine(t *testing.T) {
	res, ok := parseBenchLine("BenchmarkX/sub-8   100   12.5 ns/op   8 B/op   1 allocs/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if res.Name != "BenchmarkX/sub-8" || res.Iterations != 100 || res.NsPerOp != 12.5 ||
		res.BytesPerOp != 8 || res.AllocsPerOp != 1 {
		t.Fatalf("parsed %+v", res)
	}
	for _, bad := range []string{"PASS", "ok  \tpkg\t1s", "goos: linux", "BenchmarkX nan ns/op"} {
		if _, ok := parseBenchLine(bad); ok {
			t.Errorf("accepted non-result line %q", bad)
		}
	}
}

func TestRunWritesJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-out", out}, strings.NewReader(sampleBench), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 2 || doc.Results[0].Name != "BenchmarkFreqCacheSharded/sharded-8" {
		t.Fatalf("results %+v", doc.Results)
	}
}

// writeBaseline writes a baseline document with the given ns/op for the
// two sample benchmarks.
func writeBaseline(t *testing.T, sharded, locked float64) string {
	t.Helper()
	doc := Document{Results: []Result{
		{Name: "BenchmarkFreqCacheSharded/sharded-8", Iterations: 1, NsPerOp: sharded},
		{Name: "BenchmarkFreqCacheSharded/locked-8", Iterations: 1, NsPerOp: locked},
	}}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrevWithinTolerance(t *testing.T) {
	// Baseline slightly slower than the run: no regression.
	base := writeBaseline(t, 600, 1300)
	var tee strings.Builder
	if err := run([]string{"-prev", base}, strings.NewReader(sampleBench), &tee); err != nil {
		t.Fatalf("unexpected failure: %v\n%s", err, tee.String())
	}
	if !strings.Contains(tee.String(), "within 20%") {
		t.Errorf("missing summary line in:\n%s", tee.String())
	}
}

func TestRunPrevDetectsRegression(t *testing.T) {
	// Baseline far faster than the run: the 20% gate must trip.
	base := writeBaseline(t, 100, 100)
	var tee strings.Builder
	err := run([]string{"-prev", base}, strings.NewReader(sampleBench), &tee)
	if err == nil {
		t.Fatalf("regression not detected:\n%s", tee.String())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error %q does not mention regression", err)
	}
	if !strings.Contains(tee.String(), "REGRESSED") {
		t.Errorf("missing REGRESSED marker in:\n%s", tee.String())
	}
}

func TestRunPrevCustomTolerance(t *testing.T) {
	// +112% vs baseline passes a 200% gate.
	base := writeBaseline(t, 250, 600)
	if err := run([]string{"-prev", base, "-max-regress", "2.0"},
		strings.NewReader(sampleBench), io.Discard); err != nil {
		t.Fatalf("custom tolerance not honored: %v", err)
	}
}

func TestRunPrevDoesNotClobberDefaultOut(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	base := writeBaseline(t, 600, 1300)
	if err := run([]string{"-prev", base}, strings.NewReader(sampleBench), io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("BENCH.json"); !os.IsNotExist(err) {
		t.Error("diff mode wrote BENCH.json without -out")
	}
}

func TestRunPrevMismatchedNames(t *testing.T) {
	doc := Document{Results: []Result{{Name: "BenchmarkOther", Iterations: 1, NsPerOp: 5}}}
	raw, _ := json.Marshal(doc)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-prev", path}, strings.NewReader(sampleBench), io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no benchmarks shared") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunNoInput(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n"), io.Discard); err == nil {
		t.Error("empty input accepted")
	}
}
