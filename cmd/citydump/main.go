// Command citydump generates a synthetic city (and optionally mobility
// traces) and dumps it as JSON for inspection or reuse.
//
// Usage:
//
//	citydump -city beijing -seed 1 > beijing.json
//	citydump -city nyc -taxis 100 -checkins 50 > nyc.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"poiagg"
)

type dump struct {
	Name     string              `json:"name"`
	Bounds   poiagg.Rect         `json:"bounds"`
	NumPOIs  int                 `json:"numPois"`
	NumTypes int                 `json:"numTypes"`
	Types    []string            `json:"types"`
	POIs     []poiagg.POI        `json:"pois"`
	Taxis    []poiagg.Trajectory `json:"taxis,omitempty"`
	Checkins []poiagg.Trajectory `json:"checkins,omitempty"`
	CityFreq poiagg.FreqVector   `json:"cityFreq"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "citydump:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("citydump", flag.ContinueOnError)
	cityName := fs.String("city", "beijing", "city preset: beijing or nyc")
	seed := fs.Uint64("seed", 1, "random seed")
	taxis := fs.Int("taxis", 0, "also generate this many taxi trajectories")
	checkins := fs.Int("checkins", 0, "also generate this many check-in users")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		city *poiagg.City
		err  error
	)
	switch *cityName {
	case "beijing":
		city, err = poiagg.GenerateBeijing(*seed)
	case "nyc":
		city, err = poiagg.GenerateNewYork(*seed)
	default:
		return fmt.Errorf("unknown city %q (want beijing or nyc)", *cityName)
	}
	if err != nil {
		return err
	}

	d := dump{
		Name:     city.Name(),
		Bounds:   city.Bounds(),
		NumPOIs:  city.NumPOIs(),
		NumTypes: city.M(),
		Types:    city.Types().Names(),
		POIs:     city.POIs(),
		CityFreq: city.CityFreq(),
	}
	if *taxis > 0 {
		p := poiagg.DefaultTaxiParams(*seed + 1)
		p.NumTaxis = *taxis
		d.Taxis, err = city.GenerateTaxis(p)
		if err != nil {
			return err
		}
	}
	if *checkins > 0 {
		p := poiagg.DefaultCheckinParams(*seed + 2)
		p.NumUsers = *checkins
		d.Checkins, err = city.GenerateCheckins(p)
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}
