package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunDumpsCity(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-city", "beijing", "-seed", "2", "-taxis", "2", "-checkins", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	var d dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if d.Name != "beijing" || d.NumPOIs != 10_249 || d.NumTypes != 177 {
		t.Errorf("metadata: %s %d %d", d.Name, d.NumPOIs, d.NumTypes)
	}
	if len(d.POIs) != d.NumPOIs || len(d.Types) != d.NumTypes {
		t.Errorf("payload sizes: %d POIs, %d types", len(d.POIs), len(d.Types))
	}
	if len(d.Taxis) != 2 || len(d.Checkins) != 2 {
		t.Errorf("traces: %d taxis, %d checkins", len(d.Taxis), len(d.Checkins))
	}
	total := 0
	for _, n := range d.CityFreq {
		total += n
	}
	if total != d.NumPOIs {
		t.Errorf("CityFreq total %d != %d", total, d.NumPOIs)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-city", "gotham"}, &buf); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}
