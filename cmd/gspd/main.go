// Command gspd serves a city's geo-information over HTTP: the GSP of the
// paper's LBS architecture. It can host a generated synthetic city or a
// city snapshot produced with the dataset format.
//
// Usage:
//
//	gspd -addr :8080 -city beijing
//	gspd -addr :8080 -load beijing.json   # dataset.CityFile snapshot
//
// Endpoints: GET /v1/stats, /v1/query?x=&y=&r=, /v1/freq?x=&y=&r=,
// POST /v1/query/batch and /v1/freq/batch (JSON {"items":[{x,y,r}...]}
// with per-item results), plus the operational /v1/metrics, /healthz,
// and /readyz. The Freq cache's hit/miss/eviction counters are exported
// through /v1/metrics.
//
// With -auth-keys every API request must carry an HMAC-SHA256 signature
// (X-Auth header) from a provisioned principal; the operational
// endpoints stay unsigned. Keys are given inline ("alice=<hexkey>,...")
// or via @file, one principal=hexkey per line.
//
// With -store-dir the daemon keeps a disk-backed tier for the freq
// cache: on boot it warm-starts from <dir>/freqstore.bin (validated
// against the serving city — a stale or corrupt snapshot is rejected and
// logged, never trusted), and it snapshots the -store-top hottest
// entries every -store-interval and again at shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"poiagg/internal/citygen"
	"poiagg/internal/dataset"
	"poiagg/internal/gsp"
	"poiagg/internal/obs"
	"poiagg/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gspd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gspd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cityName := fs.String("city", "beijing", "synthetic city preset: beijing or nyc")
	seed := fs.Uint64("seed", 1, "generation seed")
	load := fs.String("load", "", "load a city snapshot (dataset JSON) instead of generating")
	maxRadius := fs.Float64("max-radius", 10_000, "maximum accepted query radius in meters")
	statsInterval := fs.Duration("stats-interval", time.Minute, "periodic traffic summary log interval (0 disables)")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
	admitLimit := fs.Int("admit-limit", 0, "admission control: max concurrent request weight (0 disables)")
	admitQueue := fs.Int("admit-queue", 128, "admission control: max requests waiting for a slot")
	admitTimeout := fs.Duration("admit-timeout", 500*time.Millisecond, "admission control: max queue wait before shedding")
	maxBody := fs.Int64("max-body", wire.DefaultMaxBody, "maximum accepted POST body in bytes")
	authKeys := fs.String("auth-keys", "", "require signed requests; principal=hexkey[,principal=hexkey...] or @file with one pair per line (empty disables auth)")
	authWindow := fs.Duration("auth-window", wire.DefaultAuthWindow, "signed-request timestamp validity window")
	storeDir := fs.String("store-dir", "", "directory for the disk-backed freq store; warm-starts the cache on boot and snapshots the hottest entries on a cadence and at shutdown (empty disables)")
	storeTop := fs.Int("store-top", 4096, "freq store: snapshot at most this many hottest cache entries")
	storeInterval := fs.Duration("store-interval", 5*time.Minute, "freq store: snapshot cadence (0 snapshots only at shutdown)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	city, err := buildCity(*load, *cityName, *seed)
	if err != nil {
		return err
	}
	svc := gsp.NewService(city, 1<<18)
	logger := log.New(os.Stderr, "gspd ", log.LstdFlags)
	reg := obs.NewRegistry()
	svc.ExportMetrics(reg)

	var storePath string
	if *storeDir != "" {
		if err := os.MkdirAll(*storeDir, 0o755); err != nil {
			return fmt.Errorf("create store dir: %w", err)
		}
		storePath = gsp.StorePath(*storeDir)
		// A rejected snapshot (stale city build, corruption) is a cold
		// start, not a fatal error: log it and keep serving.
		if n, err := svc.WarmStart(storePath); err != nil {
			logger.Printf("freq store: rejected %s: %v (cold start)", storePath, err)
		} else if n > 0 {
			logger.Printf("freq store: warm start with %d entries from %s", n, storePath)
		}
	}
	opts := []wire.GSPServerOption{
		wire.WithLogger(logger),
		wire.WithMaxRadius(*maxRadius),
		wire.WithMetrics(reg),
		wire.WithPprof(*pprofOn),
		wire.WithMaxBody(*maxBody),
	}
	if *admitLimit > 0 {
		opts = append(opts, wire.WithAdmission(*admitLimit, *admitQueue, *admitTimeout))
		logger.Printf("admission control on: limit %d, queue %d, wait %v",
			*admitLimit, *admitQueue, *admitTimeout)
	}
	if *authKeys != "" {
		kr, err := wire.LoadKeyring(*authKeys)
		if err != nil {
			return err
		}
		opts = append(opts, wire.WithAuth(kr, wire.WithAuthWindow(*authWindow)))
		logger.Printf("request signing required: %d principals, ±%v window", kr.Len(), *authWindow)
	}
	handler := wire.NewGSPServer(svc, opts...)
	if *pprofOn {
		logger.Printf("pprof profiling enabled at %s", wire.PathPprof)
	}

	obsCtx, obsCancel := context.WithCancel(context.Background())
	defer obsCancel()
	obs.StartSummary(obsCtx, logger, reg, *statsInterval)

	saveStore := func(when string) {
		if storePath == "" {
			return
		}
		if n, err := svc.SaveStore(storePath, *storeTop); err != nil {
			logger.Printf("freq store: snapshot (%s) failed: %v", when, err)
		} else {
			logger.Printf("freq store: snapshot (%s): %d entries to %s", when, n, storePath)
		}
	}
	if storePath != "" && *storeInterval > 0 {
		go func() {
			tick := time.NewTicker(*storeInterval)
			defer tick.Stop()
			for {
				select {
				case <-obsCtx.Done():
					return
				case <-tick.C:
					saveStore("periodic")
				}
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("serving %s (%d POIs, %d types) on %s (metrics at %s)",
			city.Name, city.NumPOIs(), city.M(), *addr, obs.PathMetrics)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		logger.Printf("received %v, shutting down", sig)
		// Flip /readyz to 503 first so load balancers stop routing new
		// work here while Shutdown lets in-flight requests finish.
		handler.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := srv.Shutdown(ctx)
		// Snapshot after Shutdown so the hit counts of the final
		// in-flight requests make it into the ranking.
		saveStore("shutdown")
		return err
	}
}

func buildCity(load, cityName string, seed uint64) (*gsp.City, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.LoadCity(f)
	}
	var p citygen.Params
	switch cityName {
	case "beijing":
		p = citygen.Beijing(seed)
	case "nyc":
		p = citygen.NewYork(seed)
	default:
		return nil, fmt.Errorf("unknown city %q (want beijing or nyc)", cityName)
	}
	c, err := citygen.Generate(p)
	if err != nil {
		return nil, err
	}
	return c.City, nil
}
