package main

import (
	"os"
	"path/filepath"
	"testing"

	"poiagg/internal/citygen"
	"poiagg/internal/dataset"
)

func TestBuildCityPresets(t *testing.T) {
	city, err := buildCity("", "beijing", 1)
	if err != nil {
		t.Fatal(err)
	}
	if city.NumPOIs() != 10_249 {
		t.Errorf("NumPOIs = %d", city.NumPOIs())
	}
	if _, err := buildCity("", "gotham", 1); err == nil {
		t.Error("unknown city accepted")
	}
}

func TestBuildCityFromSnapshot(t *testing.T) {
	p := citygen.Beijing(2)
	p.NumPOIs = 500
	p.NumTypes = 30
	gen, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "city.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.SaveCity(f, gen.City); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	city, err := buildCity(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if city.NumPOIs() != 500 || city.M() != 30 {
		t.Errorf("loaded %d POIs / %d types", city.NumPOIs(), city.M())
	}
	if _, err := buildCity(filepath.Join(t.TempDir(), "missing.json"), "", 0); err == nil {
		t.Error("missing snapshot accepted")
	}
}
