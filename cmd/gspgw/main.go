// Command gspgw is the cluster gateway in front of a fleet of gspd
// shards: it serves the same GSP endpoint surface — GET /v1/stats,
// /v1/pois, /v1/query, /v1/freq, POST /v1/freq/batch and
// /v1/query/batch — and routes each query to the consistent-hash owner
// of its (city × grid cell). Batch requests are split per shard, fanned
// out concurrently, and merged preserving input order with per-item
// errors. Every shard must hold the same city (same snapshot or same
// -city/-seed), so the fleet is byte-identical to one gspd while each
// shard's cache holds only its slice of the keyspace.
//
// Shard health is driven by each shard's /readyz: dead shards are
// evicted from the ring and recovered ones re-added, and the gateway's
// own /readyz fails only when no shard is healthy. /v1/metrics exports
// the cluster.* gauges (per-shard inflight/errors/health, fanout
// latency, evictions/restores, replica and membership counters).
//
// With -replicas N > 1 each single GET races up to N ring successors
// first-wins, hedged after -hedge-delay. Membership is dynamic: the
// /v1/cluster/peers admin surface joins shards (readiness probe plus a
// -warm-radius/-warm-max-cells cache pre-warm first) and retires them
// without a restart; under -auth-keys only -admin-principal may mutate.
//
// Usage:
//
//	gspgw -addr :8079 -peers http://s0:8080,http://s1:8080,http://s2:8080
//
// The gateway mirrors gspd's hardening flags: -admit-* for admission
// control, -max-body, and -auth-keys to require signed client requests.
// Against auth-enabled shards, -peer-auth-key gives the gateway its own
// signing identity (provision the same principal on every shard).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"poiagg/internal/cluster"
	"poiagg/internal/obs"
	"poiagg/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gspgw:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set, separated from run so tests can cover
// the flag → gateway wiring without binding sockets.
type config struct {
	addr          string
	peers         []string
	vnodes        int
	cellSize      float64
	cityLabel     string
	probeInterval time.Duration
	probeTimeout  time.Duration
	replicas      int
	hedgeDelay    time.Duration
	adminPr       string
	warmRadius    float64
	warmMaxCells  int
	peerRetries   int
	peerTimeout   time.Duration
	peerAuthKey   string
	maxRadius     float64
	maxBody       int64
	maxBatch      int
	admitLimit    int
	admitQueue    int
	admitTimeout  time.Duration
	authKeys      string
	authWindow    time.Duration
	statsInterval time.Duration
	pprofOn       bool
}

func parseConfig(args []string) (*config, error) {
	cfg := &config{}
	fs := flag.NewFlagSet("gspgw", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", ":8079", "listen address")
	peers := fs.String("peers", "", "comma-separated gspd shard base URLs (required)")
	fs.IntVar(&cfg.vnodes, "vnodes", cluster.DefaultVirtualNodes, "virtual nodes per shard on the hash ring")
	fs.Float64Var(&cfg.cellSize, "cell", cluster.DefaultCellSize, "routing grid cell size in meters")
	fs.StringVar(&cfg.cityLabel, "city-label", "", "city label mixed into the routing keyspace (isolates co-hosted cities)")
	fs.DurationVar(&cfg.probeInterval, "probe-interval", wire.DefaultProbeInterval, "shard /readyz probe cadence")
	fs.DurationVar(&cfg.probeTimeout, "probe-timeout", wire.DefaultProbeTimeout, "per-probe timeout")
	fs.IntVar(&cfg.replicas, "replicas", 1, "replicas raced per single GET, first answer wins (1 = primary only)")
	fs.DurationVar(&cfg.hedgeDelay, "hedge-delay", wire.DefaultHedgeDelay, "wait before hedging a replicated GET to the next replica")
	fs.StringVar(&cfg.adminPr, "admin-principal", "", "principal allowed to mutate /v1/cluster/peers when -auth-keys is set (unset = mutations refused)")
	fs.Float64Var(&cfg.warmRadius, "warm-radius", 0, "query radius for pre-warming a joining shard's cells (0 = the cell size)")
	fs.IntVar(&cfg.warmMaxCells, "warm-max-cells", wire.DefaultWarmMaxCells, "max cells one join pre-warms (0 disables pre-warming)")
	fs.IntVar(&cfg.peerRetries, "peer-retries", 2, "retry budget per shard call")
	fs.DurationVar(&cfg.peerTimeout, "peer-timeout", 5*time.Second, "per-attempt timeout for shard calls")
	fs.StringVar(&cfg.peerAuthKey, "peer-auth-key", "", "principal=hexkey the gateway signs shard calls with (for auth-enabled shards)")
	fs.Float64Var(&cfg.maxRadius, "max-radius", 10_000, "maximum accepted query radius in meters (must match the shards)")
	fs.Int64Var(&cfg.maxBody, "max-body", wire.DefaultMaxBody, "maximum accepted POST body in bytes")
	fs.IntVar(&cfg.maxBatch, "max-batch", wire.DefaultMaxBatch, "maximum items per batch request (must match the shards)")
	fs.IntVar(&cfg.admitLimit, "admit-limit", 0, "admission control: max concurrent request weight (0 disables)")
	fs.IntVar(&cfg.admitQueue, "admit-queue", 128, "admission control: max requests waiting for a slot")
	fs.DurationVar(&cfg.admitTimeout, "admit-timeout", 500*time.Millisecond, "admission control: max queue wait before shedding")
	fs.StringVar(&cfg.authKeys, "auth-keys", "", "require signed client requests; principal=hexkey[,...] or @file (empty disables auth)")
	fs.DurationVar(&cfg.authWindow, "auth-window", wire.DefaultAuthWindow, "signed-request timestamp validity window")
	fs.DurationVar(&cfg.statsInterval, "stats-interval", time.Minute, "periodic traffic summary log interval (0 disables)")
	fs.BoolVar(&cfg.pprofOn, "pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			cfg.peers = append(cfg.peers, p)
		}
	}
	if len(cfg.peers) == 0 {
		return nil, errors.New("-peers is required (comma-separated shard URLs)")
	}
	return cfg, nil
}

// buildGateway assembles the gateway and its registry from a config.
func buildGateway(cfg *config, logger *log.Logger) (*wire.ClusterGateway, *obs.Registry, error) {
	reg := obs.NewRegistry()
	opts := []wire.ClusterOption{
		wire.WithClusterLogger(logger),
		wire.WithClusterMetrics(reg),
		wire.WithVirtualNodes(cfg.vnodes),
		wire.WithCellSize(cfg.cellSize),
		wire.WithCityLabel(cfg.cityLabel),
		wire.WithProbeInterval(cfg.probeInterval),
		wire.WithProbeTimeout(cfg.probeTimeout),
		wire.WithReplicas(cfg.replicas),
		wire.WithHedgeDelay(cfg.hedgeDelay),
		wire.WithClusterAdmin(cfg.adminPr),
		wire.WithWarmRadius(cfg.warmRadius),
		wire.WithWarmMaxCells(cfg.warmMaxCells),
		wire.WithClusterMaxRadius(cfg.maxRadius),
		wire.WithClusterMaxBatch(cfg.maxBatch),
		wire.WithClusterPprof(cfg.pprofOn),
		wire.WithMaxBody(cfg.maxBody),
	}
	peerOpts := []wire.ClientOption{
		wire.WithRetries(cfg.peerRetries),
		wire.WithRequestTimeout(cfg.peerTimeout),
	}
	if cfg.peerAuthKey != "" {
		principal, key, err := wire.ParseSigningKey(cfg.peerAuthKey)
		if err != nil {
			return nil, nil, err
		}
		peerOpts = append(peerOpts, wire.WithSigningKey(principal, key))
		logger.Printf("signing shard calls as %q", principal)
	}
	opts = append(opts, wire.WithPeerClientOptions(peerOpts...))
	if cfg.admitLimit > 0 {
		opts = append(opts, wire.WithAdmission(cfg.admitLimit, cfg.admitQueue, cfg.admitTimeout))
		logger.Printf("admission control on: limit %d, queue %d, wait %v",
			cfg.admitLimit, cfg.admitQueue, cfg.admitTimeout)
	}
	if cfg.authKeys != "" {
		kr, err := wire.LoadKeyring(cfg.authKeys)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, wire.WithAuth(kr, wire.WithAuthWindow(cfg.authWindow)))
		logger.Printf("request signing required: %d principals, ±%v window", kr.Len(), cfg.authWindow)
	}
	gw, err := wire.NewClusterGateway(cfg.peers, opts...)
	if err != nil {
		return nil, nil, err
	}
	return gw, reg, nil
}

func run(args []string) error {
	cfg, err := parseConfig(args)
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "gspgw ", log.LstdFlags)
	gw, reg, err := buildGateway(cfg, logger)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gw.StartProber(ctx)
	obs.StartSummary(ctx, logger, reg, cfg.statsInterval)

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           gw,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("routing %d shards on %s (probe every %v, metrics at %s)",
			len(cfg.peers), cfg.addr, cfg.probeInterval, obs.PathMetrics)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		logger.Printf("received %v, shutting down", sig)
		gw.Drain()
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		return srv.Shutdown(sctx)
	}
}
