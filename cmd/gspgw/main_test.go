package main

import (
	"context"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"poiagg/internal/citygen"
	"poiagg/internal/gsp"
	"poiagg/internal/wire"
)

func TestParseConfig(t *testing.T) {
	cfg, err := parseConfig([]string{
		"-peers", "http://a:8080, http://b:8080,,http://c:8080",
		"-vnodes", "64",
		"-cell", "250",
		"-city-label", "beijing",
		"-probe-interval", "500ms",
		"-peer-auth-key", "gw=" + strings.Repeat("ab", 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.peers) != 3 || cfg.peers[1] != "http://b:8080" {
		t.Errorf("peers = %v", cfg.peers)
	}
	if cfg.vnodes != 64 || cfg.cellSize != 250 || cfg.cityLabel != "beijing" {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.probeInterval != 500*time.Millisecond {
		t.Errorf("probeInterval = %v", cfg.probeInterval)
	}
	if cfg.replicas != 1 || cfg.hedgeDelay != wire.DefaultHedgeDelay || cfg.warmMaxCells != wire.DefaultWarmMaxCells {
		t.Errorf("replica defaults: %+v", cfg)
	}
}

func TestParseConfigReplicaFlags(t *testing.T) {
	cfg, err := parseConfig([]string{
		"-peers", "http://a:8080",
		"-replicas", "3",
		"-hedge-delay", "25ms",
		"-admin-principal", "ops",
		"-warm-radius", "750",
		"-warm-max-cells", "128",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.replicas != 3 || cfg.hedgeDelay != 25*time.Millisecond || cfg.adminPr != "ops" {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.warmRadius != 750 || cfg.warmMaxCells != 128 {
		t.Errorf("warm cfg = %+v", cfg)
	}
}

func TestParseConfigRequiresPeers(t *testing.T) {
	if _, err := parseConfig(nil); err == nil {
		t.Fatal("empty -peers accepted")
	}
	if _, err := parseConfig([]string{"-peers", " , "}); err == nil {
		t.Fatal("blank -peers accepted")
	}
}

func TestBuildGatewayRejectsBadPeerKey(t *testing.T) {
	cfg, err := parseConfig([]string{"-peers", "http://a:8080", "-peer-auth-key", "not-a-pair"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := buildGateway(cfg, log.New(io.Discard, "", 0)); err == nil {
		t.Fatal("malformed -peer-auth-key accepted")
	}
}

// TestGatewayEndToEnd drives the flag → gateway wiring against two real
// in-process shards: queries route, probes run, metrics export.
func TestGatewayEndToEnd(t *testing.T) {
	p := citygen.Beijing(7)
	p.NumPOIs = 400
	city, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	svc := gsp.NewService(city.City, 1<<12)
	quiet := wire.WithLogger(log.New(io.Discard, "", 0))
	s0 := httptest.NewServer(wire.NewGSPServer(svc, quiet))
	defer s0.Close()
	s1 := httptest.NewServer(wire.NewGSPServer(svc, quiet))
	defer s1.Close()

	cfg, err := parseConfig([]string{
		"-peers", s0.URL + "," + s1.URL,
		"-probe-timeout", "200ms",
		"-replicas", "2",
		"-hedge-delay", "1ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	gw, reg, err := buildGateway(cfg, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw)
	defer ts.Close()

	client := wire.NewGSPClient(ts.URL, ts.Client())
	ctx := context.Background()
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumPOIs != city.NumPOIs() {
		t.Errorf("stats through gateway: %+v", stats)
	}
	for _, l := range city.RandomLocations(8, 3) {
		freq, err := client.Freq(ctx, l, 800)
		if err != nil {
			t.Fatal(err)
		}
		if !freq.Equal(svc.Freq(l, 800)) {
			t.Fatalf("gateway Freq diverges at %v", l)
		}
	}

	gw.ProbeOnce(ctx)
	snap := reg.Snapshot()
	if got := snap.Counters[wire.MetricClusterPeers]; got != 2 {
		t.Errorf("cluster.peers = %d, want 2", got)
	}
	if got := snap.Counters[wire.MetricClusterProbesOK]; got != 2 {
		t.Errorf("cluster.probes.ok = %d, want 2", got)
	}
}
