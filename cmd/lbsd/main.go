// Command lbsd serves the LBS application of the paper's architecture:
// it accepts POI-aggregate releases from users and, when pointed at the
// public GSP, audits every release with the region re-identification
// attack — letting an operator observe in real time how identifying the
// "anonymous" aggregates are.
//
// Usage:
//
//	lbsd -addr :8081 -city beijing          # audit against a local city copy
//	lbsd -addr :8081 -city beijing -no-audit
//	lbsd -addr :8081 -city beijing -budget -budget-dir /var/lib/lbsd
//
// With -budget every release charges (-release-eps, -release-delta)
// against the caller's privacy-budget ledger (principal taken from the
// X-Principal header, ?principal=, or the release's userId); exhausted
// principals get 429 until their sliding window refills. -budget-dir
// makes the ledger crash-safe (snapshot + spend log) across restarts.
//
// With -auth-keys every API request must carry an HMAC-SHA256 signature
// (X-Auth header) from a provisioned principal, and the budget charges
// ONLY the signature-verified identity — the header/query/userId
// fallback chain is disabled. Keys are given inline
// ("alice=<hexkey>,...") or via @file, one principal=hexkey per line.
//
// With -stream the daemon also ingests live check-ins (POST /v1/ingest,
// NDJSON, one event per line) into a sliding window with bounded
// memory: at most -history-users distinct users (second-chance eviction
// past it) times -stream-per-user events each. Every -stream-tick the
// window is aggregated into one differentially private frequency vector
// (GET /v1/stream/releases); with -budget each release charges
// (-stream-eps, -stream-delta) to every contributing principal. SIGTERM
// drains the window through one final release before the ledger closes,
// so in-flight check-ins are released and charged, not dropped.
//
// Endpoints: POST /v1/release, GET /v1/releases?user=, the budget admin
// pair GET /v1/budget/{principal} and POST /v1/budget/{principal}/reset
// (with -budget), POST /v1/ingest and GET /v1/stream/releases (with
// -stream), plus the operational /v1/metrics, /healthz, /readyz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/citygen"
	"poiagg/internal/cloak"
	"poiagg/internal/defense"
	"poiagg/internal/gsp"
	"poiagg/internal/obs"
	"poiagg/internal/stream"
	"poiagg/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lbsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lbsd", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	cityName := fs.String("city", "beijing", "city preset the releases refer to")
	seed := fs.Uint64("seed", 1, "city generation seed (must match the GSP's)")
	noAudit := fs.Bool("no-audit", false, "disable re-identification auditing")
	historyLimit := fs.Int("history", 1000, "stored releases per user")
	historyUsers := fs.Int("history-users", wire.DefaultHistoryUsers, "max distinct users with stored history (second-chance eviction past it)")
	statsInterval := fs.Duration("stats-interval", time.Minute, "periodic traffic summary log interval (0 disables)")
	admitLimit := fs.Int("admit-limit", 0, "admission control: max concurrent request weight (0 disables)")
	admitQueue := fs.Int("admit-queue", 128, "admission control: max requests waiting for a slot")
	admitTimeout := fs.Duration("admit-timeout", 500*time.Millisecond, "admission control: max queue wait before shedding")
	maxBody := fs.Int64("max-body", wire.DefaultMaxBody, "maximum accepted POST body in bytes")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
	budgetOn := fs.Bool("budget", false, "enforce a per-principal privacy budget on releases")
	budgetEps := fs.Float64("budget-eps", 10, "lifetime epsilon budget per principal")
	budgetDelta := fs.Float64("budget-delta", 1e-3, "lifetime delta budget per principal")
	budgetWindow := fs.Duration("budget-window", 24*time.Hour, "sliding refill window (0 = lifetime budget only)")
	budgetWindowEps := fs.Float64("budget-window-eps", 1.5, "epsilon allowed inside each window")
	budgetWindowDelta := fs.Float64("budget-window-delta", 0, "delta allowed inside each window (0 = delta not windowed)")
	releaseEps := fs.Float64("release-eps", 0.5, "epsilon charged per accepted release")
	releaseDelta := fs.Float64("release-delta", 1e-6, "delta charged per accepted release")
	budgetDir := fs.String("budget-dir", "", "ledger persistence directory (empty = in-memory)")
	budgetTTL := fs.Duration("budget-idle-ttl", 0, "retire ledgers idle this long (0 disables; must be >= the window)")
	snapshotEvery := fs.Int("budget-snapshot-every", 1000, "auto-snapshot the persistent ledger every N logged spends")
	authKeys := fs.String("auth-keys", "", "require signed requests; principal=hexkey[,principal=hexkey...] or @file with one pair per line (empty disables auth)")
	authWindow := fs.Duration("auth-window", wire.DefaultAuthWindow, "signed-request timestamp validity window")
	streamOn := fs.Bool("stream", false, "ingest live check-ins (POST /v1/ingest) and publish windowed DP releases")
	streamWindow := fs.Duration("stream-window", 5*time.Minute, "sliding check-in window per user")
	streamTick := fs.Duration("stream-tick", stream.DefaultInterval, "period between windowed DP releases")
	streamRadius := fs.Float64("stream-radius", stream.DefaultRadius, "POI query radius in meters for window aggregates")
	streamPerUser := fs.Int("stream-per-user", 64, "max events kept per user window (oldest dropped past it)")
	streamHistory := fs.Int("stream-history", stream.DefaultHistory, "windowed releases kept for GET /v1/stream/releases")
	streamSeed := fs.Uint64("stream-seed", 1, "root seed for windowed release noise")
	streamPop := fs.Int("stream-pop", 2000, "synthetic population size behind the windowed DP mechanism")
	streamEps := fs.Float64("stream-eps", 0.5, "epsilon charged per principal per windowed release (with -budget)")
	streamDelta := fs.Float64("stream-delta", 1e-6, "delta charged per principal per windowed release (with -budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p citygen.Params
	switch *cityName {
	case "beijing":
		p = citygen.Beijing(*seed)
	case "nyc":
		p = citygen.NewYork(*seed)
	default:
		return fmt.Errorf("unknown city %q", *cityName)
	}
	city, err := citygen.Generate(p)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "lbsd ", log.LstdFlags)
	reg := obs.NewRegistry()
	opts := []wire.LBSServerOption{
		wire.WithHistoryLimit(*historyLimit),
		wire.WithHistoryUsers(*historyUsers),
		wire.WithLBSMetrics(reg),
		wire.WithLBSLogger(logger),
		wire.WithLBSPprof(*pprofOn),
		wire.WithMaxBody(*maxBody),
	}
	if *admitLimit > 0 {
		opts = append(opts, wire.WithAdmission(*admitLimit, *admitQueue, *admitTimeout))
		logger.Printf("admission control on: limit %d, queue %d, wait %v",
			*admitLimit, *admitQueue, *admitTimeout)
	}
	if *pprofOn {
		logger.Printf("pprof profiling enabled at %s", wire.PathPprof)
	}
	if *authKeys != "" {
		kr, err := wire.LoadKeyring(*authKeys)
		if err != nil {
			return err
		}
		opts = append(opts, wire.WithAuth(kr, wire.WithAuthWindow(*authWindow)))
		logger.Printf("request signing required: %d principals, ±%v window; budget charges verified principals only", kr.Len(), *authWindow)
	}
	var svc *gsp.Service
	if !*noAudit || *streamOn {
		svc = gsp.NewService(city.City, 1<<18)
	}
	if !*noAudit {
		opts = append(opts, wire.WithAuditor(wire.RegionAuditor{Svc: svc}))
	}

	var led *budget.Ledger
	if *budgetOn {
		policy := budget.Policy{
			LifetimeEps:   *budgetEps,
			LifetimeDelta: *budgetDelta,
			Window:        *budgetWindow,
			WindowEps:     *budgetWindowEps,
			WindowDelta:   *budgetWindowDelta,
			IdleTTL:       *budgetTTL,
		}
		if *budgetDir != "" {
			led, err = budget.Open(policy, *budgetDir, budget.WithSnapshotEvery(*snapshotEvery))
		} else {
			led, err = budget.New(policy)
		}
		if err != nil {
			return err
		}
		led.ExportMetrics(reg)
		opts = append(opts, wire.WithBudget(led, *releaseEps, *releaseDelta))
		logger.Printf("budget enforcement on: (ε=%v, δ=%v) per release, window %v of ε=%v, lifetime ε=%v, persistence %q",
			*releaseEps, *releaseDelta, policy.Window, policy.WindowEps, policy.LifetimeEps, *budgetDir)
	}

	// Shutdown tail for the stateful subsystems, in dependency order:
	// the stream's final flush charges the ledger, so it must run before
	// the ledger's closing snapshot. Registered before the stream starts
	// so every return path below drains it.
	var stopStream func()
	defer func() { stopStreamAndCloseLedger(logger, stopStream, led) }()

	if *streamOn {
		st, err := stream.NewStore(stream.Config{
			Window:     *streamWindow,
			MaxUsers:   *historyUsers,
			MaxPerUser: *streamPerUser,
			Bounds:     city.Bounds,
		})
		if err != nil {
			return err
		}
		pop := cloak.UniformPopulation(city.Bounds, *streamPop, *streamSeed)
		mech, err := defense.NewDPRelease(svc, pop, defense.DefaultDPReleaseConfig())
		if err != nil {
			return err
		}
		rel, err := stream.NewReleaser(st, svc, mech, led, stream.ReleaserConfig{
			Interval: *streamTick,
			Radius:   *streamRadius,
			Seed:     *streamSeed,
			History:  *streamHistory,
			Eps:      *streamEps,
			Delta:    *streamDelta,
		})
		if err != nil {
			return err
		}
		opts = append(opts, wire.WithStream(st, rel))
		stopStream = rel.Start(func(err error) { logger.Printf("stream release: %v", err) })
		logger.Printf("streaming ingestion on: %v window over ≤%d users × %d events, release every %v at radius %vm",
			*streamWindow, *historyUsers, *streamPerUser, rel.Config().Interval, rel.Config().Radius)
	}
	handler := wire.NewLBSServer(city.M(), opts...)

	obsCtx, obsCancel := context.WithCancel(context.Background())
	defer obsCancel()
	obs.StartSummary(obsCtx, logger, reg, *statsInterval)
	if led != nil && *budgetTTL > 0 {
		startEvictLoop(obsCtx, logger, led, *budgetTTL)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("LBS app for %s on %s (audit=%v, metrics at %s)",
			city.Name, *addr, !*noAudit, obs.PathMetrics)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		logger.Printf("received %v, shutting down", sig)
		// Flip /readyz to 503 first so load balancers stop routing new
		// work here while Shutdown lets in-flight requests finish.
		handler.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// stopStreamAndCloseLedger is the daemon's shutdown tail. The stream
// stop function blocks until the release loop exits and then publishes
// one final windowed release — charging every window still in flight to
// the budget ledger — so it must complete before the ledger writes its
// closing snapshot, or the drain would lose those spends. Either
// argument may be nil (subsystem not enabled).
func stopStreamAndCloseLedger(logger *log.Logger, stopStream func(), led *budget.Ledger) {
	if stopStream != nil {
		stopStream()
	}
	if led != nil {
		if err := led.Close(); err != nil {
			logger.Printf("budget ledger close: %v", err)
		}
	}
}

// startEvictLoop periodically retires ledgers idle past ttl, keeping the
// resident account set bounded on long-running daemons. The sweep
// interval is a quarter of the TTL, clamped to [1m, 1h].
func startEvictLoop(ctx context.Context, logger *log.Logger, led *budget.Ledger, ttl time.Duration) {
	interval := ttl / 4
	if interval < time.Minute {
		interval = time.Minute
	}
	if interval > time.Hour {
		interval = time.Hour
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if n := led.EvictIdle(); n > 0 {
					logger.Printf("budget: retired %d idle ledgers", n)
				}
			}
		}
	}()
}
