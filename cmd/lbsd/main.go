// Command lbsd serves the LBS application of the paper's architecture:
// it accepts POI-aggregate releases from users and, when pointed at the
// public GSP, audits every release with the region re-identification
// attack — letting an operator observe in real time how identifying the
// "anonymous" aggregates are.
//
// Usage:
//
//	lbsd -addr :8081 -city beijing          # audit against a local city copy
//	lbsd -addr :8081 -city beijing -no-audit
//
// Endpoints: POST /v1/release, GET /v1/releases?user=, plus the
// operational /v1/metrics, /healthz, and /readyz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"poiagg/internal/citygen"
	"poiagg/internal/gsp"
	"poiagg/internal/obs"
	"poiagg/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lbsd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lbsd", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	cityName := fs.String("city", "beijing", "city preset the releases refer to")
	seed := fs.Uint64("seed", 1, "city generation seed (must match the GSP's)")
	noAudit := fs.Bool("no-audit", false, "disable re-identification auditing")
	historyLimit := fs.Int("history", 1000, "stored releases per user")
	statsInterval := fs.Duration("stats-interval", time.Minute, "periodic traffic summary log interval (0 disables)")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p citygen.Params
	switch *cityName {
	case "beijing":
		p = citygen.Beijing(*seed)
	case "nyc":
		p = citygen.NewYork(*seed)
	default:
		return fmt.Errorf("unknown city %q", *cityName)
	}
	city, err := citygen.Generate(p)
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "lbsd ", log.LstdFlags)
	reg := obs.NewRegistry()
	opts := []wire.LBSServerOption{
		wire.WithHistoryLimit(*historyLimit),
		wire.WithLBSMetrics(reg),
		wire.WithLBSLogger(logger),
		wire.WithLBSPprof(*pprofOn),
	}
	if *pprofOn {
		logger.Printf("pprof profiling enabled at %s", wire.PathPprof)
	}
	if !*noAudit {
		svc := gsp.NewService(city.City, 1<<18)
		opts = append(opts, wire.WithAuditor(wire.RegionAuditor{Svc: svc}))
	}
	handler := wire.NewLBSServer(city.M(), opts...)

	obsCtx, obsCancel := context.WithCancel(context.Background())
	defer obsCancel()
	obs.StartSummary(obsCtx, logger, reg, *statsInterval)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("LBS app for %s on %s (audit=%v, metrics at %s)",
			city.Name, *addr, !*noAudit, obs.PathMetrics)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		logger.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
