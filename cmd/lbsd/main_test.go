package main

import "testing"

func TestRunRejectsBadFlags(t *testing.T) {
	// Only error paths are testable without binding a listener; the
	// serving path is covered end-to-end by internal/wire's httptest
	// suite.
	if err := run([]string{"-city", "gotham"}); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
	// Invalid budget policies must fail before the listener binds.
	if err := run([]string{"-budget", "-budget-window-eps", "0"}); err == nil {
		t.Error("zero window epsilon accepted")
	}
	if err := run([]string{"-budget", "-budget-eps", "-1"}); err == nil {
		t.Error("negative lifetime epsilon accepted")
	}
	if err := run([]string{"-budget", "-budget-idle-ttl", "1h"}); err == nil {
		t.Error("idle TTL shorter than the window accepted")
	}
}
