package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math"
	"testing"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/citygen"
	"poiagg/internal/cloak"
	"poiagg/internal/defense"
	"poiagg/internal/gsp"
	"poiagg/internal/stream"
)

func TestRunRejectsBadFlags(t *testing.T) {
	// Only error paths are testable without binding a listener; the
	// serving path is covered end-to-end by internal/wire's httptest
	// suite.
	if err := run([]string{"-city", "gotham"}); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
	// Invalid budget policies must fail before the listener binds.
	if err := run([]string{"-budget", "-budget-window-eps", "0"}); err == nil {
		t.Error("zero window epsilon accepted")
	}
	if err := run([]string{"-budget", "-budget-eps", "-1"}); err == nil {
		t.Error("negative lifetime epsilon accepted")
	}
	if err := run([]string{"-budget", "-budget-idle-ttl", "1h"}); err == nil {
		t.Error("idle TTL shorter than the window accepted")
	}
	// Budget charging with a free windowed release would be a silent
	// privacy hole; the releaser refuses it before the listener binds.
	if err := run([]string{"-budget", "-stream", "-stream-eps", "0"}); err == nil {
		t.Error("budget-charged stream with zero epsilon accepted")
	}
	if err := run([]string{"-stream", "-history-users", "0"}); err == nil {
		t.Error("stream with no user capacity accepted")
	}
}

// TestStreamDrainChargesLedgerBeforeClose proves the shutdown ordering
// the SIGTERM path relies on: stopStreamAndCloseLedger must let the
// releaser's final flush charge every in-flight window to the ledger
// BEFORE the ledger writes its closing snapshot. The wall-clock ticker
// races the drain the whole time (1ms interval), and the proof is on
// disk: a reopened ledger must account for every tick that ever fired,
// including the drain's final flush — if Close ran first, that last
// spend would be missing from the snapshot.
func TestStreamDrainChargesLedgerBeforeClose(t *testing.T) {
	p := citygen.Beijing(31)
	p.NumPOIs = 1200
	p.NumTypes = 40
	p.Width, p.Height = 8_000, 8_000
	city, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	svc := gsp.NewService(city.City, 1<<14)

	st, err := stream.NewStore(stream.Config{
		Window:   5 * time.Minute,
		MaxUsers: 16,
		Bounds:   city.Bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	policy := budget.Policy{LifetimeEps: 1e6, LifetimeDelta: 0.5}
	led, err := budget.Open(policy, dir)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := defense.NewDPRelease(svc, cloak.UniformPopulation(city.Bounds, 500, 7), defense.DefaultDPReleaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	const tickEps = 0.5
	rel, err := stream.NewReleaser(st, svc, mech, led, stream.ReleaserConfig{
		Interval: time.Millisecond,
		Radius:   800,
		Seed:     99,
		Eps:      tickEps,
		Delta:    1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Three users' check-ins, all charged to one principal. They stay in
	// the 5-minute window for the whole test, so every tick charges it.
	now := time.Now()
	for i, l := range city.RandomLocations(3, 123) {
		ev := stream.Event{UserID: fmt.Sprintf("u%d", i), X: l.X, Y: l.Y, TS: now}
		if err := st.Apply(ev, "acme"); err != nil {
			t.Fatal(err)
		}
	}

	stop := rel.Start(func(err error) { t.Errorf("tick error: %v", err) })
	// Wait for at least one periodic release so the drain genuinely
	// interrupts a live release loop rather than a never-started one.
	deadline := time.Now().Add(10 * time.Second)
	for rel.Ticks() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rel.Ticks() == 0 {
		t.Fatal("releaser never ticked")
	}

	stopStreamAndCloseLedger(log.New(io.Discard, "", 0), stop, led)

	ticks := rel.Ticks()
	if ticks < 2 {
		t.Fatalf("want >= 2 ticks (periodic + final flush), got %d", ticks)
	}
	hist := rel.History(1)
	if len(hist) != 1 || hist[0].Users != 3 {
		t.Fatalf("final flush release missing or wrong: %+v", hist)
	}

	// Reopen from disk: the snapshot Close wrote must cover every tick's
	// spend, the final flush included.
	led2, err := budget.Open(policy, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer led2.Close()
	stat := led2.Status("acme")
	if stat.Releases != uint64(ticks) {
		t.Fatalf("persisted releases = %d, want %d (one per tick)", stat.Releases, ticks)
	}
	if want := float64(ticks) * tickEps; math.Abs(stat.SpentEps-want) > 1e-9 {
		t.Fatalf("persisted spent eps = %v, want %v", stat.SpentEps, want)
	}
	// And the snapshot is byte-identical to the live ledger's final
	// in-memory state — nothing was charged after the snapshot.
	liveDump, err := led.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	diskDump, err := led2.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveDump, diskDump) {
		t.Fatalf("reopened ledger state differs from live state:\nlive: %s\ndisk: %s", liveDump, diskDump)
	}
}
