package main

import "testing"

func TestRunRejectsBadFlags(t *testing.T) {
	// Only error paths are testable without binding a listener; the
	// serving path is covered end-to-end by internal/wire's httptest
	// suite.
	if err := run([]string{"-city", "gotham"}); err == nil {
		t.Error("unknown city accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
