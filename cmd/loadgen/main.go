// Command loadgen drives a GSP/LBS wire stack with synthetic load and
// reports throughput, latency quantiles, and shed/denial counts as JSON.
// It is the measurement half of the admission-control story: run it once
// against an admission-limited server and once against an unlimited one
// to see load shedding keep tail latency bounded while the unprotected
// server collapses.
//
// Two driving modes:
//
//   - closed loop (default): -conc workers each issue the next request
//     as soon as the previous completes — concurrency is fixed, arrival
//     rate adapts to the server.
//   - open loop (-rate > 0): requests start on a fixed schedule
//     regardless of completions, the arrival pattern that actually
//     overloads real services.
//
// Targets (-targets, comma-separated): freq (GET /v1/freq), batch
// (POST /v1/query/batch, -batch items per request), release
// (POST /v1/release), ingest (POST /v1/ingest, -stream-batch NDJSON
// events per request from a -stream-users synthetic population).
//
// The ingest target pairs with -profile stream: every -stream-burst the
// event generator rotates to a fresh user cohort, flooding the window
// store with users it has never seen — the eviction churn the bounded
// sliding window exists to absorb. With -inprocess the LBS server runs
// the full stream subsystem (window store sized to one cohort, windowed
// DP releaser ticking every -stream-tick) and the report gains a
// "stream" block with the server-side window counters.
//
// -profile membership-churn (requires -inprocess -cluster >= 2 and the
// freq target) rehearses a fleet transition live: each shard gets its
// own GSP service (so caches are per-shard, as in a real fleet), the
// run retires one shard through the gateway's membership admin API at
// one third of the duration and admits a brand-new cold shard — cache
// pre-warmed by the gateway — at two thirds. Traffic queries routing
// cell centers at the gateway's warm radius, so the pre-warm replays
// exactly the keys live traffic asks for, and the report gains a
// "churn" block with per-phase latency quantiles and cache hit rates:
// the dip and recovery across the transitions is the measurement.
//
// Usage:
//
//	loadgen -inprocess -conc 32 -duration 5s -admit-limit 8
//	loadgen -gsp http://localhost:8080 -targets freq,batch -rate 200 -duration 30s
//	loadgen -lbs http://localhost:8081 -targets release -conc 16 -out run.json
//	loadgen -inprocess -targets ingest -profile stream -rate 500 -duration 10s
//	loadgen -inprocess -cluster 3 -targets freq -profile membership-churn -duration 6s
//
// With -inprocess the generator spins up in-memory GSP and LBS servers
// (small synthetic city, region-audit enabled) over loopback HTTP, so a
// single command measures the whole stack with no daemons to start —
// this is what `make loadtest` runs. Adding -cluster N puts N GSP
// shards behind an in-memory gspgw gateway and drives the gateway
// instead, measuring the fan-out/merge overhead and throughput scaling
// of the sharded deployment (`make loadtest-cluster` sweeps shard
// counts).
//
// With -auth-key "principal=hexkey" every request is HMAC-signed; against
// daemons started with -auth-keys this is required, and with -inprocess
// the in-memory servers are provisioned with the same key so the run
// measures the stack with signature verification on the hot path.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand/v2"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poiagg/internal/citygen"
	"poiagg/internal/cloak"
	"poiagg/internal/cluster"
	"poiagg/internal/defense"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/index"
	"poiagg/internal/obs"
	"poiagg/internal/poi"
	"poiagg/internal/stream"
	"poiagg/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	name      string
	inprocess bool
	shards    int
	gspURL    string
	lbsURL    string
	targets   []string
	conc      int
	rate      float64
	duration  time.Duration
	timeout   time.Duration
	batchN    int
	radius    float64
	city      string
	seed      uint64

	profile        string
	zipfS          float64
	dupEpoch       time.Duration
	computeCost    time.Duration
	noSingleflight bool

	streamUsers int
	streamBatch int
	streamBurst time.Duration
	streamTick  time.Duration

	admitLimit   int
	admitQueue   int
	admitTimeout time.Duration
	auditCost    time.Duration
	shedPause    time.Duration

	authKey string

	out       string
	assertRun bool
	quiet     bool
}

// Report is the JSON document loadgen emits.
type Report struct {
	Name            string                  `json:"name"`
	Config          ReportConfig            `json:"config"`
	DurationSeconds float64                 `json:"durationSeconds"`
	Total           uint64                  `json:"total"`
	OK              uint64                  `json:"ok"`
	Shed503         uint64                  `json:"shed503"`
	Denied429       uint64                  `json:"denied429"`
	BadRequest      uint64                  `json:"badRequest"`
	TransportErrors uint64                  `json:"transportErrors"`
	ThroughputRPS   float64                 `json:"throughputRps"`
	Latency         obs.LatencySnapshot     `json:"latency"`
	OKLatency       obs.LatencySnapshot     `json:"okLatency"`
	PerTarget       map[string]TargetReport `json:"perTarget"`
	// GSP is the in-process GSP service's server-side view of the run
	// (absent for remote targets, where the server is a separate process).
	GSP *GSPStats `json:"gsp,omitempty"`
	// Stream is the in-process window store's server-side view of an
	// ingest run (absent for remote targets and runs without ingest).
	Stream *StreamStats `json:"stream,omitempty"`
	// Churn is the membership-churn profile's per-phase breakdown: the
	// hit-rate dip and tail-latency cost of a shard leaving and a cold
	// one joining mid-run.
	Churn *ChurnStats `json:"churn,omitempty"`
}

// ChurnStats is the membership-churn profile's report block.
type ChurnStats struct {
	// Victim is the shard retired at one third of the run.
	Victim string `json:"victim"`
	// Joiner is the cold shard admitted at two thirds.
	Joiner string `json:"joiner"`
	// PrewarmedCells counts the cells the gateway replayed into the
	// joiner before routing to it (cluster.warm.cells).
	PrewarmedCells uint64 `json:"prewarmedCells"`
	Joins          uint64 `json:"joins"`
	Leaves         uint64 `json:"leaves"`
	// Phases reports the freq target per transition window: steady
	// (full fleet), departed (victim gone), rejoined (cold shard in).
	Phases []ChurnPhase `json:"phases"`
}

// ChurnPhase is one transition window's slice of the churn run.
type ChurnPhase struct {
	Name            string              `json:"name"`
	Total           uint64              `json:"total"`
	OK              uint64              `json:"ok"`
	TransportErrors uint64              `json:"transportErrors"`
	Latency         obs.LatencySnapshot `json:"latency"`
	// HitRate is the fleet-wide effective cache hit fraction during
	// this phase: requests answered by a shard's encoded-response cache
	// or its freq cache, over all freq requests (0 when the phase saw
	// no cache traffic). The departed→rejoined dip is the cost of
	// rebalancing; pre-warm is what keeps the rejoined rate up.
	HitRate float64 `json:"hitRate"`
}

// StreamStats reports what the ingest load did to the in-process
// streaming subsystem: window occupancy against its hard cap, eviction
// churn, and how many windowed DP releases the ticking releaser
// published during the run.
type StreamStats struct {
	EventsAccepted uint64 `json:"eventsAccepted"`
	EventsRejected uint64 `json:"eventsRejected"`
	// EventsDeduped counts at-least-once replays the window store
	// applied once (client-stamped event ids).
	EventsDeduped uint64 `json:"eventsDeduped"`
	EventsDropped uint64 `json:"eventsDropped"`
	UsersEvicted  uint64 `json:"usersEvicted"`
	ActiveUsers   int    `json:"activeUsers"`
	WindowEvents  int    `json:"windowEvents"`
	// WindowEventCap is the memory bound the store must never exceed:
	// max users × max events per user.
	WindowEventCap int    `json:"windowEventCap"`
	Releases       uint64 `json:"releases"`
}

// GSPStats reports what the client-side throughput cost the server in
// index computations — the number dup-hot runs exist to compare.
type GSPStats struct {
	// Singleflight reports whether the miss coalescer was enabled.
	Singleflight bool   `json:"singleflight"`
	CacheHits    uint64 `json:"cacheHits"`
	CacheMisses  uint64 `json:"cacheMisses"`
	SFLeader     uint64 `json:"sfLeader"`
	SFJoined     uint64 `json:"sfJoined"`
	SFShared     uint64 `json:"sfShared"`
	// Computes counts CountTypes executions: sfLeader + (sfJoined −
	// sfShared) with singleflight on, cacheMisses with it off.
	Computes uint64 `json:"computes"`
}

// ReportConfig echoes the knobs that shaped the run, so a report file is
// self-describing.
type ReportConfig struct {
	Mode         string  `json:"mode"` // "inprocess" or "remote"
	Targets      string  `json:"targets"`
	Concurrency  int     `json:"concurrency"`
	RateRPS      float64 `json:"rateRps,omitempty"`
	AdmitLimit   int     `json:"admitLimit,omitempty"`
	AdmitQueue   int     `json:"admitQueue,omitempty"`
	AdmitTimeout string  `json:"admitTimeout,omitempty"`
	BatchItems   int     `json:"batchItems"`
	// ClusterShards is the in-process fleet size behind the gateway
	// (0 = single node, no gateway).
	ClusterShards int     `json:"clusterShards,omitempty"`
	Profile       string  `json:"profile,omitempty"`
	ZipfS         float64 `json:"zipfS,omitempty"`
	DupEpoch      string  `json:"dupEpoch,omitempty"`
	StreamUsers   int     `json:"streamUsers,omitempty"`
	StreamBatch   int     `json:"streamBatch,omitempty"`
	StreamBurst   string  `json:"streamBurst,omitempty"`
}

// TargetReport is one endpoint's slice of the run.
type TargetReport struct {
	Total     uint64              `json:"total"`
	OK        uint64              `json:"ok"`
	Shed503   uint64              `json:"shed503"`
	Denied429 uint64              `json:"denied429"`
	Latency   obs.LatencySnapshot `json:"latency"`
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.name, "name", "loadgen", "run label embedded in the report")
	fs.BoolVar(&cfg.inprocess, "inprocess", false, "spin up in-memory GSP+LBS servers instead of dialing daemons")
	fs.IntVar(&cfg.shards, "cluster", 0, "with -inprocess: put N GSP shards behind an in-memory gspgw gateway and drive that (0 = single node)")
	fs.StringVar(&cfg.gspURL, "gsp", "", "GSP base URL (required for freq/batch targets unless -inprocess)")
	fs.StringVar(&cfg.lbsURL, "lbs", "", "LBS base URL (required for the release target unless -inprocess)")
	targets := fs.String("targets", "freq,batch,release", "comma-separated endpoints to drive: freq, batch, release, ingest")
	fs.IntVar(&cfg.conc, "conc", 8, "closed-loop worker count (also bounds open-loop dispatch)")
	fs.Float64Var(&cfg.rate, "rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	fs.DurationVar(&cfg.duration, "duration", 5*time.Second, "how long to drive load")
	fs.DurationVar(&cfg.timeout, "timeout", 2*time.Second, "per-request deadline")
	fs.IntVar(&cfg.batchN, "batch", 16, "items per batch request")
	fs.Float64Var(&cfg.radius, "radius", 900, "query radius in meters")
	fs.StringVar(&cfg.city, "city", "beijing", "city preset (must match the daemons': beijing or nyc)")
	fs.Uint64Var(&cfg.seed, "seed", 1, "city generation seed (must match the daemons')")
	fs.StringVar(&cfg.profile, "profile", "uniform", "load profile: uniform; dup-hot (zipf-skewed hot keys whose radius rotates every -dup-epoch, so each rotation is a stampede of concurrent misses on the same keys); stream (ingest target only: the user cohort rotates every -stream-burst, flooding the window store with fresh users); membership-churn (-cluster >= 2 with the freq target: retire a shard at T/3 and admit a pre-warmed cold one at 2T/3, reporting per-phase latency and hit rate)")
	fs.Float64Var(&cfg.zipfS, "zipf-s", 1.1, "dup-hot profile: zipf exponent (higher = more skew)")
	fs.DurationVar(&cfg.dupEpoch, "dup-epoch", 500*time.Millisecond, "dup-hot profile: radius rotation period")
	fs.IntVar(&cfg.streamUsers, "stream-users", 256, "ingest target: synthetic users per cohort (also sizes the in-process window store)")
	fs.IntVar(&cfg.streamBatch, "stream-batch", 8, "ingest target: NDJSON events per request")
	fs.DurationVar(&cfg.streamBurst, "stream-burst", 2*time.Second, "stream profile: cohort rotation period (each rotation is a flood of never-seen users)")
	fs.DurationVar(&cfg.streamTick, "stream-tick", 500*time.Millisecond, "in-process stream: windowed DP release period")
	fs.DurationVar(&cfg.computeCost, "compute-cost", 0, "in-process GSP: CPU time burned per CountTypes (like -audit-cost for the LBS: fixed yielding work makes a freq miss span scheduler slices, so dup-hot stampedes genuinely overlap even on few cores)")
	fs.BoolVar(&cfg.noSingleflight, "no-singleflight", false, "in-process GSP: disable the miss coalescer (ablation baseline for dup-hot runs)")
	fs.IntVar(&cfg.admitLimit, "admit-limit", 0, "in-process servers' admission concurrency limit (0 = unlimited)")
	fs.IntVar(&cfg.admitQueue, "admit-queue", 64, "in-process servers' admission queue length")
	fs.DurationVar(&cfg.admitTimeout, "admit-timeout", 250*time.Millisecond, "in-process servers' admission queue wait cap")
	fs.DurationVar(&cfg.auditCost, "audit-cost", 0, "in-process LBS: CPU time burned per audited release (fixed work, so oversubscription inflates latency like a real service)")
	fs.DurationVar(&cfg.shedPause, "shed-pause", 100*time.Millisecond, "closed-loop worker pause after a 503 shed, emulating client backoff (0 = hammer)")
	fs.StringVar(&cfg.authKey, "auth-key", "", "sign requests as principal=hexkey; with -inprocess the servers also require that signature")
	fs.StringVar(&cfg.out, "out", "-", "report destination file (- = stdout)")
	fs.BoolVar(&cfg.assertRun, "assert", false, "exit nonzero when the run made no progress or hit unexpected errors")
	fs.BoolVar(&cfg.quiet, "quiet", false, "suppress the progress line on stderr")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	for _, tgt := range strings.Split(*targets, ",") {
		tgt = strings.TrimSpace(tgt)
		switch tgt {
		case "freq", "batch", "release", "ingest":
			cfg.targets = append(cfg.targets, tgt)
		case "":
		default:
			return nil, fmt.Errorf("unknown target %q (want freq, batch, or release)", tgt)
		}
	}
	if len(cfg.targets) == 0 {
		return nil, errors.New("no targets selected")
	}
	if cfg.conc < 1 {
		return nil, errors.New("-conc must be >= 1")
	}
	if cfg.duration <= 0 {
		return nil, errors.New("-duration must be positive")
	}
	if cfg.shards < 0 {
		return nil, errors.New("-cluster must be >= 0")
	}
	switch cfg.profile {
	case "uniform", "dup-hot":
	case "stream":
		if !hasTarget(cfg.targets, "ingest") {
			return nil, errors.New("-profile stream drives the ingest target (add it to -targets)")
		}
	case "membership-churn":
		if cfg.shards < 2 {
			return nil, errors.New("-profile membership-churn needs -inprocess -cluster >= 2 (a fleet a shard can leave)")
		}
		if !hasTarget(cfg.targets, "freq") {
			return nil, errors.New("-profile membership-churn drives the freq target (add it to -targets)")
		}
	default:
		return nil, fmt.Errorf("unknown profile %q (want uniform, dup-hot, stream, or membership-churn)", cfg.profile)
	}
	if cfg.zipfS <= 0 {
		return nil, errors.New("-zipf-s must be positive")
	}
	if cfg.dupEpoch <= 0 {
		return nil, errors.New("-dup-epoch must be positive")
	}
	if cfg.streamUsers < 1 {
		return nil, errors.New("-stream-users must be >= 1")
	}
	if cfg.streamBatch < 1 {
		return nil, errors.New("-stream-batch must be >= 1")
	}
	if cfg.streamBurst <= 0 || cfg.streamTick <= 0 {
		return nil, errors.New("-stream-burst and -stream-tick must be positive")
	}
	if cfg.shards > 0 && !cfg.inprocess {
		return nil, errors.New("-cluster needs -inprocess (point -gsp at a running gspgw to load-test a real fleet)")
	}
	if !cfg.inprocess {
		needsGSP := false
		needsLBS := false
		for _, tgt := range cfg.targets {
			switch tgt {
			case "freq", "batch":
				needsGSP = true
			case "release", "ingest":
				needsLBS = true
			}
		}
		if needsGSP && cfg.gspURL == "" {
			return nil, errors.New("freq/batch targets need -gsp (or -inprocess)")
		}
		if needsLBS && cfg.lbsURL == "" {
			return nil, errors.New("release/ingest targets need -lbs (or -inprocess)")
		}
	}
	return cfg, nil
}

// costedAuditor burns a fixed amount of CPU work before each audit
// (-audit-cost). Unlike a sleep, fixed work does not parallelize for
// free: when concurrent requests outnumber cores, each one's wall time
// stretches — the failure mode a load test must be able to provoke.
type costedAuditor struct {
	inner wire.Auditor
	iters uint64
}

func (a costedAuditor) Audit(f poi.FreqVector, r float64) (bool, int) {
	busySpin(a.iters)
	return a.inner.Audit(f, r)
}

// costedIndex burns fixed CPU work before each CountTypes
// (-compute-cost), the GSP-side analogue of costedAuditor: busySpin's
// periodic yields let other handler goroutines run mid-compute, so a
// dup-hot epoch rotation produces genuinely concurrent misses on the
// same key — the stampede the singleflight coalescer exists to collapse
// — even when GOMAXPROCS is small.
type costedIndex struct {
	index.Index
	iters uint64
}

func (ci costedIndex) CountTypes(out poi.FreqVector, center geo.Point, radius float64) {
	busySpin(ci.iters)
	ci.Index.CountTypes(out, center, radius)
}

// busySink defeats dead-code elimination of busySpin.
var busySink atomic.Uint64

// busySpin runs n rounds of a cheap integer mix, yielding to the
// scheduler every ~64k iterations. The yields matter on small
// GOMAXPROCS: an unpreemptible spin would serialize the whole process
// (client, server, and admission gate), hiding the very concurrency the
// load test exists to create — real handlers yield constantly at call
// and I/O points.
func busySpin(n uint64) {
	acc := uint64(0x9e3779b97f4a7c15)
	for i := uint64(0); i < n; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
		if i&(1<<16-1) == 1<<16-1 {
			runtime.Gosched()
		}
	}
	busySink.Store(acc)
}

// calibrateBusy measures the spin rate once and returns the iteration
// count whose single-threaded execution takes roughly d.
func calibrateBusy(d time.Duration) uint64 {
	const probe = 1 << 22
	start := time.Now()
	busySpin(probe)
	per := time.Since(start)
	if per <= 0 {
		per = time.Nanosecond
	}
	return uint64(float64(probe) * float64(d) / float64(per))
}

// churnPhaseNames label the membership-churn schedule: full fleet,
// after the victim shard is retired, after the cold joiner is admitted.
var churnPhaseNames = [3]string{"steady", "departed", "rejoined"}

// cacheMark is an aggregate cache-counter snapshot across every shard
// service at a phase boundary; phase hit rates are deltas between marks.
type cacheMark struct{ hits, misses uint64 }

// churnShard pairs a shard's HTTP server with its service: a freq
// request is a "hit" when either tier answers it — the encoded-response
// cache in front, or the service's freq cache behind it. Both are what
// a cold joiner lacks and what the gateway's pre-warm fills.
type churnShard struct {
	srv *wire.GSPServer
	svc *gsp.Service
}

// churnRun carries the membership-churn profile's moving parts: which
// phase the run is in (workers attribute freq outcomes to it), the
// per-shard cache tiers to sum counters over, and the handles the
// controller needs to kill the victim and stop the joiner afterwards.
type churnRun struct {
	victim     string
	joiner     string
	killVictim func()
	stopJoiner func()
	phase      atomic.Int32
	phases     [3]*targetStats
	marks      [4]cacheMark

	mu     sync.Mutex
	shards []churnShard
	err    error
}

func newChurnRun(victim string, killVictim func(), shards []churnShard) *churnRun {
	c := &churnRun{victim: victim, killVictim: killVictim, shards: shards, stopJoiner: func() {}}
	for i := range c.phases {
		c.phases[i] = &targetStats{}
	}
	return c
}

// record attributes one freq outcome to the current phase.
func (c *churnRun) record(d time.Duration, err error) {
	c.phases[c.phase.Load()].record(d, err)
}

func (c *churnRun) addShard(s churnShard) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shards = append(c.shards, s)
}

// sumCache sums effective hit/miss counters across every shard,
// retired ones included (their counters freeze, so deltas stay
// correct). Hits are encoded-cache hits plus service freq-cache hits;
// misses are the requests that fell through both tiers to a real
// CountTypes computation.
func (c *churnRun) sumCache() cacheMark {
	c.mu.Lock()
	defer c.mu.Unlock()
	var m cacheMark
	for _, s := range c.shards {
		em := s.srv.EncodedCacheMetrics()
		h, mi := s.svc.CacheStats()
		m.hits += em.Hits + h
		m.misses += mi
	}
	return m
}

func (c *churnRun) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

func (c *churnRun) failure() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// churnCells returns the distinct routing-cell centers covering the
// sampled locations. The churn profile queries exactly these points at
// the gateway's warm radius: the freq cache keys exact coordinates, so
// this makes the gateway's pre-warm replay the very keys live traffic
// asks for — the whole point of warming a joiner.
func churnCells(locs []geo.Point) []geo.Point {
	const cs = cluster.DefaultCellSize
	seen := make(map[[2]int]bool, len(locs))
	out := make([]geo.Point, 0, len(locs))
	for _, l := range locs {
		cx, cy := cluster.CellOf(l.X, l.Y, cs)
		k := [2]int{cx, cy}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, geo.Point{X: (float64(cx) + 0.5) * cs, Y: (float64(cy) + 0.5) * cs})
	}
	return out
}

// targetStats accumulates one endpoint's outcomes; all fields are safe
// for concurrent use.
type targetStats struct {
	total, ok, shed, denied, bad, transport atomic.Uint64
	hist                                    obs.Histogram
	okHist                                  obs.Histogram
}

func (ts *targetStats) record(d time.Duration, err error) {
	ts.total.Add(1)
	ts.hist.Observe(d)
	switch {
	case err == nil:
		ts.ok.Add(1)
		ts.okHist.Observe(d)
	case errors.Is(err, wire.ErrOverloaded):
		ts.shed.Add(1)
	case errors.Is(err, wire.ErrBudgetDenied):
		ts.denied.Add(1)
	case errors.Is(err, wire.ErrBadRequest):
		ts.bad.Add(1)
	default:
		ts.transport.Add(1)
	}
}

func run(args []string, stdout io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	city, err := buildCity(cfg)
	if err != nil {
		return err
	}
	locs := city.RandomLocations(4096, cfg.seed+7)

	var signPrincipal string
	var signKey []byte
	if cfg.authKey != "" {
		signPrincipal, signKey, err = wire.ParseSigningKey(cfg.authKey)
		if err != nil {
			return err
		}
	}

	gspURL, lbsURL := cfg.gspURL, cfg.lbsURL
	var inprocSvc *gsp.Service
	var streamStore *stream.Store
	var streamRel *stream.Releaser
	var churn *churnRun
	var churnNewShard func() (string, churnShard)
	var clusterReg *obs.Registry
	if cfg.inprocess {
		if cfg.computeCost > 0 {
			iters := calibrateBusy(cfg.computeCost)
			city.City.WrapIndex(func(ix index.Index) index.Index {
				return costedIndex{Index: ix, iters: iters}
			})
		}
		svc := gsp.NewService(city.City, 1<<14)
		svc.SetSingleflight(!cfg.noSingleflight)
		inprocSvc = svc
		var serverOpts []wire.ServerOption
		if cfg.admitLimit > 0 {
			serverOpts = append(serverOpts,
				wire.WithAdmission(cfg.admitLimit, cfg.admitQueue, cfg.admitTimeout))
		}
		if signKey != nil {
			// Provision the in-process servers with the same key the
			// clients sign with, so -auth-key measures the stack with
			// signature verification on the hot path.
			kr := wire.NewKeyring()
			if err := kr.Add(signPrincipal, signKey); err != nil {
				return err
			}
			serverOpts = append(serverOpts, wire.WithAuth(kr))
		}
		quiet := log.New(io.Discard, "", 0)
		gspOpts := []wire.GSPServerOption{wire.WithLogger(quiet)}
		// The region audit on the small in-process city takes microseconds;
		// -audit-cost pads it to a realistic CPU-bound service time, which
		// is what makes saturation (and shedding) observable: fixed work
		// per request means oversubscribed cores stretch every request,
		// exactly the collapse admission control exists to prevent.
		var auditor wire.Auditor = wire.RegionAuditor{Svc: svc}
		if cfg.auditCost > 0 {
			auditor = costedAuditor{inner: auditor, iters: calibrateBusy(cfg.auditCost)}
		}
		lbsOpts := []wire.LBSServerOption{wire.WithAuditor(auditor)}
		for _, o := range serverOpts {
			gspOpts = append(gspOpts, o)
			lbsOpts = append(lbsOpts, o)
		}
		if hasTarget(cfg.targets, "ingest") {
			// Window store sized to exactly one cohort: the stream
			// profile's rotations then force real eviction churn while the
			// event count stays hard-bounded at users × per-user cap.
			streamStore, err = stream.NewStore(stream.Config{
				MaxUsers: cfg.streamUsers,
				Bounds:   city.Bounds,
			})
			if err != nil {
				return err
			}
			mech, err := defense.NewDPRelease(svc,
				cloak.UniformPopulation(city.Bounds, 2000, cfg.seed+13), defense.DefaultDPReleaseConfig())
			if err != nil {
				return err
			}
			streamRel, err = stream.NewReleaser(streamStore, svc, mech, nil, stream.ReleaserConfig{
				Interval: cfg.streamTick,
				Radius:   cfg.radius,
				Seed:     cfg.seed,
			})
			if err != nil {
				return err
			}
			lbsOpts = append(lbsOpts, wire.WithStream(streamStore, streamRel))
		}
		if cfg.shards > 0 {
			// Cluster mode: N shards behind an in-memory gateway, each
			// shard configured exactly like the single node would be. The
			// gateway inherits the same admission/auth ServerOptions and
			// re-signs shard calls with the load key, so signed runs keep
			// verification on both hops. The membership-churn profile
			// gives each shard its own service — shared caches would hide
			// the very hit-rate dip the profile exists to measure.
			churnMode := cfg.profile == "membership-churn"
			newShardSvc := func() *gsp.Service {
				s := gsp.NewService(city.City, 1<<14)
				s.SetSingleflight(!cfg.noSingleflight)
				return s
			}
			peers := make([]string, cfg.shards)
			shards := make([]churnShard, cfg.shards)
			closers := make([]func(), cfg.shards)
			for i := range peers {
				shardSvc := svc
				if churnMode {
					shardSvc = newShardSvc()
				}
				shardSrv := wire.NewGSPServer(shardSvc, gspOpts...)
				shards[i] = churnShard{srv: shardSrv, svc: shardSvc}
				shardTS := httptest.NewServer(shardSrv)
				defer shardTS.Close()
				peers[i] = shardTS.URL
				closers[i] = shardTS.Close
			}
			gwOpts := []wire.ClusterOption{wire.WithClusterLogger(quiet)}
			for _, o := range serverOpts {
				gwOpts = append(gwOpts, o)
			}
			var peerOpts []wire.ClientOption
			if signKey != nil {
				peerOpts = append(peerOpts, wire.WithSigningKey(signPrincipal, signKey))
			}
			gwOpts = append(gwOpts, wire.WithPeerClientOptions(peerOpts...))
			if churnMode {
				// Warm radius = the traffic radius, so the joiner's
				// pre-warmed cache entries are exactly the keys live load
				// queries (churnCells aims traffic at cell centers).
				clusterReg = obs.NewRegistry()
				gwOpts = append(gwOpts,
					wire.WithClusterMetrics(clusterReg),
					wire.WithWarmRadius(cfg.radius))
				if signKey != nil {
					gwOpts = append(gwOpts, wire.WithClusterAdmin(signPrincipal))
				}
				churn = newChurnRun(peers[0], closers[0], append([]churnShard(nil), shards...))
				churnNewShard = func() (string, churnShard) {
					s := newShardSvc()
					srv := wire.NewGSPServer(s, gspOpts...)
					ts := httptest.NewServer(srv)
					churn.stopJoiner = ts.Close
					return ts.URL, churnShard{srv: srv, svc: s}
				}
				// Per-shard services own the cache counters now; the churn
				// block reports them per phase instead of a GSP block.
				inprocSvc = nil
			}
			gw, err := wire.NewClusterGateway(peers, gwOpts...)
			if err != nil {
				return err
			}
			gwTS := httptest.NewServer(gw)
			defer gwTS.Close()
			gspURL = gwTS.URL
		} else {
			gspTS := httptest.NewServer(wire.NewGSPServer(svc, gspOpts...))
			defer gspTS.Close()
			gspURL = gspTS.URL
		}
		lbsTS := httptest.NewServer(wire.NewLBSServer(city.M(), lbsOpts...))
		defer lbsTS.Close()
		lbsURL = lbsTS.URL
	}

	clientOpts := []wire.ClientOption{wire.WithRequestTimeout(cfg.timeout)}
	if signKey != nil {
		clientOpts = append(clientOpts, wire.WithSigningKey(signPrincipal, signKey))
	}
	gspClient := wire.NewGSPClient(gspURL, nil, clientOpts...)
	lbsClient := wire.NewLBSClient(lbsURL, nil, clientOpts...)

	// One frequency vector serves every release: the LBS only checks its
	// dimension, and computing it locally keeps the release target free
	// of any GSP dependency.
	var relFreq []int
	for _, tgt := range cfg.targets {
		if tgt == "release" {
			svc := gsp.NewService(city.City, 1<<10)
			relFreq = svc.Freq(locs[0], cfg.radius)
			break
		}
	}

	stats := make(map[string]*targetStats, len(cfg.targets))
	for _, tgt := range cfg.targets {
		stats[tgt] = &targetStats{}
	}
	var overall, overallOK obs.Histogram

	// dup-hot: zipf-skewed picks over a small hot key set, with the
	// radius rotating every -dup-epoch. Each rotation invalidates every
	// hot key at once, so all workers stampede the same fresh misses —
	// the duplicate-compute storm the singleflight coalescer collapses.
	var zipf *zipfPicker
	hotLocs := locs
	if cfg.profile == "dup-hot" {
		if len(hotLocs) > 512 {
			hotLocs = hotLocs[:512]
		}
		zipf = newZipfPicker(len(hotLocs), cfg.zipfS)
	}
	// membership-churn: traffic queries routing-cell centers so the
	// joiner's pre-warm replays the exact keys under load.
	var churnLocs []geo.Point
	if churn != nil {
		churnLocs = churnCells(locs)
	}
	epochStart := time.Now()

	doOne := func(workerID, seq int, rng *rand.Rand) {
		tgt := cfg.targets[seq%len(cfg.targets)]
		ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
		defer cancel()
		radius := cfg.radius
		if zipf != nil {
			radius += float64(time.Since(epochStart) / cfg.dupEpoch)
		}
		start := time.Now()
		var err error
		switch tgt {
		case "freq":
			l := locs[rng.IntN(len(locs))]
			if zipf != nil {
				l = hotLocs[zipf.pick(rng)]
			}
			if churnLocs != nil {
				l = churnLocs[rng.IntN(len(churnLocs))]
			}
			_, err = gspClient.Freq(ctx, l, radius)
		case "batch":
			items := make([]wire.BatchItem, cfg.batchN)
			for i := range items {
				l := locs[rng.IntN(len(locs))]
				if zipf != nil {
					l = hotLocs[zipf.pick(rng)]
				}
				items[i] = wire.BatchItem{X: l.X, Y: l.Y, R: radius}
			}
			_, err = gspClient.QueryBatch(ctx, items)
		case "release":
			_, err = lbsClient.Release(ctx, wire.ReleaseRequest{
				UserID: fmt.Sprintf("load-%d", workerID),
				Freq:   relFreq,
				R:      cfg.radius,
			})
		case "ingest":
			// Under the stream profile the cohort index advances every
			// -stream-burst, so each epoch's user IDs have never been seen
			// before — a sustained flood of evict-and-admit work.
			cohort := 0
			if cfg.profile == "stream" {
				cohort = int(time.Since(epochStart) / cfg.streamBurst)
			}
			now := time.Now()
			evs := make([]stream.Event, cfg.streamBatch)
			for i := range evs {
				l := locs[rng.IntN(len(locs))]
				evs[i] = stream.Event{
					UserID: fmt.Sprintf("s%d-%d", cohort, rng.IntN(cfg.streamUsers)),
					X:      l.X, Y: l.Y, TS: now,
				}
			}
			_, err = lbsClient.Ingest(ctx, evs)
		}
		d := time.Since(start)
		stats[tgt].record(d, err)
		if churn != nil && tgt == "freq" {
			churn.record(d, err)
		}
		overall.Observe(d)
		if err == nil {
			overallOK.Observe(d)
		}
		// A shed worker pauses like a well-behaved client would (the wire
		// client sleeps min(Retry-After, backoff)); without this, a
		// closed loop degenerates into a shed-hammer whose rejection
		// traffic alone saturates the server's cores.
		if cfg.shedPause > 0 && errors.Is(err, wire.ErrOverloaded) {
			time.Sleep(cfg.shedPause)
		}
	}

	if !cfg.quiet {
		mode := "closed-loop"
		if cfg.rate > 0 {
			mode = fmt.Sprintf("open-loop %.0f req/s", cfg.rate)
		}
		fmt.Fprintf(os.Stderr, "loadgen: driving %s for %v (%s, conc %d, admit-limit %d)\n",
			strings.Join(cfg.targets, "+"), cfg.duration, mode, cfg.conc, cfg.admitLimit)
	}

	stopStream := func() {}
	if streamRel != nil {
		stopStream = streamRel.Start(nil)
	}
	// The churn controller walks the run through its three phases on
	// wall-clock thirds: retire the victim through the admin API (then
	// kill its server), and later admit a brand-new cold shard, which
	// the gateway pre-warms before routing to it.
	churnDone := make(chan struct{})
	if churn == nil {
		close(churnDone)
	} else {
		churn.marks[0] = churn.sumCache()
		go func() {
			defer close(churnDone)
			third := cfg.duration / 3
			ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
			defer cancel()
			time.Sleep(third)
			churn.marks[1] = churn.sumCache()
			if _, err := gspClient.ClusterLeave(ctx, churn.victim); err != nil {
				churn.fail(fmt.Errorf("churn: retire %s: %w", churn.victim, err))
				return
			}
			churn.killVictim()
			churn.phase.Store(1)
			if !cfg.quiet {
				fmt.Fprintf(os.Stderr, "loadgen: churn: retired shard %s\n", churn.victim)
			}
			time.Sleep(third)
			churn.marks[2] = churn.sumCache()
			joinURL, joinShard := churnNewShard()
			if _, err := gspClient.ClusterJoin(ctx, joinURL); err != nil {
				churn.fail(fmt.Errorf("churn: admit %s: %w", joinURL, err))
				return
			}
			churn.joiner = joinURL
			churn.addShard(joinShard)
			churn.phase.Store(2)
			if !cfg.quiet {
				fmt.Fprintf(os.Stderr, "loadgen: churn: admitted cold shard %s\n", joinURL)
			}
		}()
	}
	wallStart := time.Now()
	if cfg.rate > 0 {
		runOpenLoop(cfg, doOne)
	} else {
		runClosedLoop(cfg, doOne)
	}
	wall := time.Since(wallStart)
	stopStream() // final flush, so Releases counts the drained window too
	<-churnDone
	if churn != nil {
		churn.marks[3] = churn.sumCache()
		churn.stopJoiner()
		if err := churn.failure(); err != nil {
			return err
		}
	}

	report := buildReport(cfg, stats, &overall, &overallOK, wall)
	if inprocSvc != nil {
		hits, misses := inprocSvc.CacheStats()
		sf := inprocSvc.SingleflightMetrics()
		g := &GSPStats{
			Singleflight: !cfg.noSingleflight,
			CacheHits:    hits,
			CacheMisses:  misses,
			SFLeader:     sf.Leader,
			SFJoined:     sf.Hits,
			SFShared:     sf.Shared,
			Computes:     misses,
		}
		if g.Singleflight {
			g.Computes = sf.Leader + (sf.Hits - sf.Shared)
		}
		report.GSP = g
	}
	if churn != nil {
		snap := clusterReg.Snapshot()
		cs := &ChurnStats{
			Victim:         churn.victim,
			Joiner:         churn.joiner,
			PrewarmedCells: snap.Counters[wire.MetricClusterWarmCells],
			Joins:          snap.Counters[wire.MetricClusterJoins],
			Leaves:         snap.Counters[wire.MetricClusterLeaves],
		}
		for i, name := range churnPhaseNames {
			ps := churn.phases[i]
			dh := churn.marks[i+1].hits - churn.marks[i].hits
			dm := churn.marks[i+1].misses - churn.marks[i].misses
			hr := 0.0
			if dh+dm > 0 {
				hr = float64(dh) / float64(dh+dm)
			}
			cs.Phases = append(cs.Phases, ChurnPhase{
				Name:            name,
				Total:           ps.total.Load(),
				OK:              ps.ok.Load(),
				TransportErrors: ps.transport.Load(),
				Latency:         obs.SnapshotLatency(&ps.hist),
				HitRate:         hr,
			})
		}
		report.Churn = cs
	}
	if streamStore != nil {
		sc := streamStore.Config()
		ss := streamStore.Stats()
		report.Stream = &StreamStats{
			EventsAccepted: ss.Accepted,
			EventsRejected: ss.Rejected,
			EventsDeduped:  ss.Deduped,
			EventsDropped:  ss.Dropped,
			UsersEvicted:   ss.UsersEvicted,
			ActiveUsers:    ss.ActiveUsers,
			WindowEvents:   ss.WindowEvents,
			WindowEventCap: sc.MaxUsers * sc.MaxPerUser,
			Releases:       streamRel.Ticks(),
		}
	}
	if err := emit(report, cfg.out, stdout); err != nil {
		return err
	}
	if cfg.assertRun {
		if report.OK == 0 {
			return errors.New("assert: zero successful requests")
		}
		if report.BadRequest > 0 || report.TransportErrors > 0 {
			return fmt.Errorf("assert: unexpected errors (badRequest=%d transport=%d)",
				report.BadRequest, report.TransportErrors)
		}
		if s := report.Stream; s != nil && s.WindowEvents > s.WindowEventCap {
			return fmt.Errorf("assert: window store exceeded its memory bound (%d events > cap %d)",
				s.WindowEvents, s.WindowEventCap)
		}
		if c := report.Churn; c != nil {
			if c.Leaves == 0 || c.Joins == 0 {
				return fmt.Errorf("assert: churn transitions did not run (joins=%d leaves=%d)", c.Joins, c.Leaves)
			}
			if c.PrewarmedCells == 0 {
				return errors.New("assert: the joiner was admitted without pre-warming any cells")
			}
			for _, p := range c.Phases {
				if p.OK == 0 {
					return fmt.Errorf("assert: churn phase %q made no progress", p.Name)
				}
			}
		}
	}
	return nil
}

// hasTarget reports whether tgt is among the selected targets.
func hasTarget(targets []string, tgt string) bool {
	for _, t := range targets {
		if t == tgt {
			return true
		}
	}
	return false
}

// runClosedLoop keeps cfg.conc workers saturated until the deadline.
func runClosedLoop(cfg *config, doOne func(workerID, seq int, rng *rand.Rand)) {
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.seed, uint64(id)))
			for seq := id; time.Now().Before(deadline); seq++ {
				doOne(id, seq, rng)
			}
		}(w)
	}
	wg.Wait()
}

// runOpenLoop starts requests on a fixed schedule, independent of
// completions — up to cfg.conc may be in flight; arrivals beyond that
// are dropped on the floor and counted nowhere, mirroring a client
// population that stops listening when the service lags.
func runOpenLoop(cfg *config, doOne func(workerID, seq int, rng *rand.Rand)) {
	interval := time.Duration(float64(time.Second) / cfg.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	slots := make(chan int, cfg.conc)
	for i := 0; i < cfg.conc; i++ {
		slots <- i
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	stop := time.After(cfg.duration)
	var wg sync.WaitGroup
	seq := 0
	for {
		select {
		case <-stop:
			wg.Wait()
			return
		case <-tick.C:
			select {
			case id := <-slots:
				wg.Add(1)
				seq++
				go func(id, seq int) {
					defer wg.Done()
					rng := rand.New(rand.NewPCG(cfg.seed, uint64(seq)))
					doOne(id, seq, rng)
					slots <- id
				}(id, seq)
			default: // all in-flight slots busy: drop this arrival
			}
		}
	}
}

func buildCity(cfg *config) (*citygen.City, error) {
	var p citygen.Params
	switch cfg.city {
	case "beijing":
		p = citygen.Beijing(cfg.seed)
	case "nyc":
		p = citygen.NewYork(cfg.seed)
	default:
		return nil, fmt.Errorf("unknown city %q (want beijing or nyc)", cfg.city)
	}
	if cfg.inprocess {
		// The in-process smoke mode wants startup in milliseconds, not a
		// full synthetic metropolis; the wire stack's behavior under load
		// does not depend on city size.
		p.NumPOIs = 2000
		p.NumTypes = 60
		p.Width, p.Height = 12_000, 12_000
		if cfg.profile == "dup-hot" {
			// dup-hot measures duplicate-compute collapse, so the compute
			// must cost something: a 10× denser city makes each CountTypes
			// expensive enough that redundant ones move the needle.
			p.NumPOIs = 20_000
			p.Width, p.Height = 20_000, 20_000
		}
	}
	return citygen.Generate(p)
}

// zipfPicker samples ranks 0..n-1 with P(i) ∝ 1/(i+1)^s by inverse CDF
// over precomputed cumulative weights (math/rand/v2 ships no Zipf).
type zipfPicker struct{ cum []float64 }

func newZipfPicker(n int, s float64) *zipfPicker {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &zipfPicker{cum: cum}
}

func (z *zipfPicker) pick(rng *rand.Rand) int {
	u := rng.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, u)
}

func buildReport(cfg *config, stats map[string]*targetStats, overall, overallOK *obs.Histogram, wall time.Duration) Report {
	mode := "remote"
	if cfg.inprocess {
		mode = "inprocess"
	}
	rep := Report{
		Name: cfg.name,
		Config: ReportConfig{
			Mode:          mode,
			Targets:       strings.Join(cfg.targets, ","),
			Concurrency:   cfg.conc,
			RateRPS:       cfg.rate,
			AdmitLimit:    cfg.admitLimit,
			BatchItems:    cfg.batchN,
			ClusterShards: cfg.shards,
		},
		DurationSeconds: wall.Seconds(),
		Latency:         obs.SnapshotLatency(overall),
		OKLatency:       obs.SnapshotLatency(overallOK),
		PerTarget:       make(map[string]TargetReport, len(stats)),
	}
	if cfg.profile != "uniform" {
		rep.Config.Profile = cfg.profile
		if cfg.profile == "dup-hot" {
			rep.Config.ZipfS = cfg.zipfS
			rep.Config.DupEpoch = cfg.dupEpoch.String()
		}
	}
	if hasTarget(cfg.targets, "ingest") {
		rep.Config.StreamUsers = cfg.streamUsers
		rep.Config.StreamBatch = cfg.streamBatch
		if cfg.profile == "stream" {
			rep.Config.StreamBurst = cfg.streamBurst.String()
		}
	}
	if cfg.admitLimit > 0 {
		rep.Config.AdmitQueue = cfg.admitQueue
		rep.Config.AdmitTimeout = cfg.admitTimeout.String()
	}
	for tgt, ts := range stats {
		rep.Total += ts.total.Load()
		rep.OK += ts.ok.Load()
		rep.Shed503 += ts.shed.Load()
		rep.Denied429 += ts.denied.Load()
		rep.BadRequest += ts.bad.Load()
		rep.TransportErrors += ts.transport.Load()
		rep.PerTarget[tgt] = TargetReport{
			Total:     ts.total.Load(),
			OK:        ts.ok.Load(),
			Shed503:   ts.shed.Load(),
			Denied429: ts.denied.Load(),
			Latency:   obs.SnapshotLatency(&ts.hist),
		}
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.OK) / wall.Seconds()
	}
	return rep
}

func emit(rep Report, out string, stdout io.Writer) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" || out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}
