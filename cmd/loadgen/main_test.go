package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadgenInprocessSmoke runs the full in-process stack briefly and
// checks the report is well-formed: progress was made, nothing failed
// unexpectedly, and every requested target saw traffic.
func TestLoadgenInprocessSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	err := run([]string{
		"-inprocess", "-quiet", "-assert",
		"-duration", "300ms", "-conc", "4", "-batch", "4",
		"-targets", "freq,batch,release",
		"-name", "smoke",
		"-out", out,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	rep := readReport(t, out)
	if rep.Name != "smoke" {
		t.Errorf("name = %q", rep.Name)
	}
	if rep.OK == 0 {
		t.Error("ok = 0, want progress")
	}
	if rep.BadRequest != 0 || rep.TransportErrors != 0 {
		t.Errorf("unexpected errors: badRequest=%d transport=%d", rep.BadRequest, rep.TransportErrors)
	}
	for _, tgt := range []string{"freq", "batch", "release"} {
		pt, ok := rep.PerTarget[tgt]
		if !ok || pt.Total == 0 {
			t.Errorf("target %q saw no traffic: %+v", tgt, pt)
		}
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v", rep.ThroughputRPS)
	}
	if rep.Latency.Count != rep.Total {
		t.Errorf("latency count %d != total %d", rep.Latency.Count, rep.Total)
	}
}

// TestLoadgenShedsUnderTinyLimit saturates an admission limit of 1 with
// no queue at closed-loop concurrency 16: sheds must appear, be counted
// as shed503 (not transport errors), and some requests still succeed.
func TestLoadgenShedsUnderTinyLimit(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	err := run([]string{
		"-inprocess", "-quiet",
		"-duration", "400ms", "-conc", "16",
		"-targets", "release", "-audit-cost", "5ms",
		"-admit-limit", "1", "-admit-queue", "0", "-admit-timeout", "0s",
		"-out", out,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	rep := readReport(t, out)
	if rep.Shed503 == 0 {
		t.Error("shed503 = 0 at concurrency 16 against limit 1")
	}
	if rep.OK == 0 {
		t.Error("ok = 0; admission must not starve everyone")
	}
	if rep.TransportErrors != 0 {
		t.Errorf("transportErrors = %d; sheds must classify as 503s", rep.TransportErrors)
	}
	if rep.OK+rep.Shed503+rep.Denied429+rep.BadRequest != rep.Total {
		t.Errorf("outcome counts do not sum to total: %+v", rep)
	}
}

// TestLoadgenOpenLoop drives the fixed-schedule mode and checks the
// arrival pacing produced roughly rate*duration requests, not a
// closed-loop flood.
func TestLoadgenOpenLoop(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	err := run([]string{
		"-inprocess", "-quiet", "-assert",
		"-duration", "500ms", "-rate", "100", "-conc", "8",
		"-targets", "freq",
		"-out", out,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	rep := readReport(t, out)
	// ~50 arrivals scheduled; allow wide slack for CI timers but reject
	// a closed-loop-scale flood (thousands).
	if rep.Total == 0 || rep.Total > 120 {
		t.Errorf("total = %d, want paced arrivals near 50", rep.Total)
	}
}

// TestLoadgenClusterMode drives the in-process sharded stack: 3 GSP
// shards behind a gateway must serve the same load the single node
// does, with the shard count echoed in the report.
func TestLoadgenClusterMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	err := run([]string{
		"-inprocess", "-quiet", "-assert", "-cluster", "3",
		"-duration", "300ms", "-conc", "4", "-batch", "8",
		"-targets", "freq,batch",
		"-out", out,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	rep := readReport(t, out)
	if rep.Config.ClusterShards != 3 {
		t.Errorf("clusterShards = %d, want 3", rep.Config.ClusterShards)
	}
	if rep.OK == 0 {
		t.Error("ok = 0, want progress through the gateway")
	}
	if rep.BadRequest != 0 || rep.TransportErrors != 0 {
		t.Errorf("unexpected errors: badRequest=%d transport=%d", rep.BadRequest, rep.TransportErrors)
	}
	for _, tgt := range []string{"freq", "batch"} {
		if pt := rep.PerTarget[tgt]; pt.Total == 0 || pt.OK == 0 {
			t.Errorf("target %q made no progress through the gateway: %+v", tgt, pt)
		}
	}
}

// TestLoadgenStreamProfile drives the open-loop ingest target with
// rotating user cohorts against the in-process stream subsystem: the
// report must carry a stream block showing accepted events, eviction
// churn from the cohort floods, window occupancy at or under the hard
// memory cap, and published windowed releases.
func TestLoadgenStreamProfile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	err := run([]string{
		"-inprocess", "-quiet", "-assert",
		"-duration", "600ms", "-rate", "200", "-conc", "8",
		"-targets", "ingest", "-profile", "stream",
		"-stream-users", "32", "-stream-batch", "4",
		"-stream-burst", "150ms", "-stream-tick", "100ms",
		"-out", out,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	rep := readReport(t, out)
	if rep.Config.Profile != "stream" || rep.Config.StreamUsers != 32 || rep.Config.StreamBatch != 4 {
		t.Errorf("config echo wrong: %+v", rep.Config)
	}
	if pt := rep.PerTarget["ingest"]; pt.Total == 0 || pt.OK == 0 {
		t.Errorf("ingest target made no progress: %+v", pt)
	}
	s := rep.Stream
	if s == nil {
		t.Fatal("report has no stream block for an in-process ingest run")
	}
	if s.EventsAccepted == 0 {
		t.Error("no events entered the window")
	}
	if s.WindowEventCap == 0 || s.WindowEvents > s.WindowEventCap {
		t.Errorf("window occupancy %d over cap %d", s.WindowEvents, s.WindowEventCap)
	}
	if s.UsersEvicted == 0 {
		t.Error("cohort rotation produced no eviction churn")
	}
	if s.Releases < 2 {
		t.Errorf("releases = %d, want periodic ticks plus the final flush", s.Releases)
	}
}

// TestLoadgenMembershipChurnProfile runs the three-phase fleet
// transition: the report must show the victim retired, a pre-warmed
// cold joiner admitted, and progress in every phase with no transport
// errors across either transition.
func TestLoadgenMembershipChurnProfile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.json")
	err := run([]string{
		"-inprocess", "-quiet", "-assert", "-cluster", "3",
		"-duration", "1500ms", "-conc", "4", "-timeout", "5s",
		"-targets", "freq", "-profile", "membership-churn",
		"-out", out,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	rep := readReport(t, out)
	if rep.Config.Profile != "membership-churn" || rep.Config.ClusterShards != 3 {
		t.Errorf("config echo wrong: %+v", rep.Config)
	}
	c := rep.Churn
	if c == nil {
		t.Fatal("report has no churn block for a membership-churn run")
	}
	if c.Joins != 1 || c.Leaves != 1 {
		t.Errorf("joins=%d leaves=%d, want exactly one of each", c.Joins, c.Leaves)
	}
	if c.PrewarmedCells == 0 {
		t.Error("the joiner was admitted without pre-warmed cells")
	}
	if c.Victim == "" || c.Joiner == "" || c.Victim == c.Joiner {
		t.Errorf("victim=%q joiner=%q", c.Victim, c.Joiner)
	}
	if len(c.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(c.Phases))
	}
	for i, p := range c.Phases {
		if p.Name != churnPhaseNames[i] {
			t.Errorf("phase %d named %q, want %q", i, p.Name, churnPhaseNames[i])
		}
		if p.OK == 0 {
			t.Errorf("phase %q made no progress", p.Name)
		}
		if p.TransportErrors != 0 {
			t.Errorf("phase %q saw %d transport errors across the transition", p.Name, p.TransportErrors)
		}
		if p.HitRate <= 0 || p.HitRate > 1 {
			t.Errorf("phase %q hit rate %v out of range", p.Name, p.HitRate)
		}
	}
	if rep.GSP != nil {
		t.Error("churn runs report per-shard caches in the churn block, not a GSP block")
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-targets", "bogus"},
		{"-targets", ""},
		{"-conc", "0"},
		{"-duration", "0s"},
		{"-targets", "freq"}, // remote mode without -gsp
		{"-targets", "release"},
		{"-targets", "ingest"}, // remote mode without -lbs
		{"-cluster", "2"},      // cluster needs -inprocess
		{"-cluster", "-1"},     // negative fleet
		{"-inprocess", "-profile", "stream", "-targets", "freq"},                             // stream profile needs ingest
		{"-inprocess", "-cluster", "1", "-targets", "freq", "-profile", "membership-churn"},  // churn needs a fleet
		{"-inprocess", "-cluster", "2", "-targets", "batch", "-profile", "membership-churn"}, // churn drives freq
		{"-profile", "membership-churn", "-targets", "freq"},                                 // churn needs -inprocess -cluster
		{"-inprocess", "-targets", "ingest", "-stream-users", "0"},
		{"-inprocess", "-targets", "ingest", "-stream-batch", "0"},
		{"-inprocess", "-targets", "ingest", "-stream-burst", "0s"},
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted invalid input", args)
		}
	}
}

func readReport(t *testing.T, path string) Report {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}
