// Command poirepro regenerates the paper's tables and figures.
//
// Usage:
//
//	poirepro -fig 6                # one figure, quick scale
//	poirepro -fig all -scale full  # every figure at paper scale
//	poirepro -fig 11 -seed 7 -locations 500 -json
//
// Figure IDs: datasets, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12 (matching the
// paper's figure numbering), the extensions ext-seq and ext-robust, or
// "all".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"poiagg/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "poirepro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("poirepro", flag.ContinueOnError)
	figID := fs.String("fig", "all", "figure to regenerate (datasets, 2..12, ext-seq, ext-robust, or all)")
	scale := fs.String("scale", "quick", "experiment scale: quick or full")
	seed := fs.Uint64("seed", 1, "random seed")
	locations := fs.Int("locations", 0, "evaluation locations per dataset (0 = scale default)")
	asJSON := fs.Bool("json", false, "emit JSON instead of text tables")
	asCSV := fs.Bool("csv", false, "emit long-format CSV instead of text tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Config{Seed: *seed, Locations: *locations}
	switch strings.ToLower(*scale) {
	case "quick":
		cfg.Scale = experiments.ScaleQuick
	case "full":
		cfg.Scale = experiments.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scale)
	}
	env := experiments.NewEnv(cfg)
	registry := experiments.Registry()

	var ids []string
	if *figID == "all" {
		ids = experiments.OrderedIDs()
	} else {
		if registry[*figID] == nil {
			return fmt.Errorf("unknown figure %q (available: %s, all)",
				*figID, strings.Join(experiments.OrderedIDs(), ", "))
		}
		ids = []string{*figID}
	}

	for _, id := range ids {
		start := time.Now()
		fig, err := registry[id](env)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		switch {
		case *asJSON:
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(fig); err != nil {
				return err
			}
		case *asCSV:
			if _, err := fmt.Fprint(out, fig.CSV()); err != nil {
				return err
			}
		default:
			fmt.Fprintln(out, fig.String())
			fmt.Fprintf(out, "(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
