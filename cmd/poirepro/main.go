// Command poirepro regenerates the paper's tables and figures.
//
// Usage:
//
//	poirepro -fig 6                # one figure, quick scale
//	poirepro -fig all -scale full  # every figure at paper scale
//	poirepro -fig 11 -seed 7 -locations 500 -json
//	poirepro -fig 6 -gsp http://host:8080 -gsp-city beijing
//
// Remote mode: -gsp fetches the named city (-gsp-city) from a running
// gspd over HTTP instead of generating it locally, using the hardened
// wire client (-timeout per attempt, -retries on transient failures).
// Against a gspd that requires signed requests (-auth-keys), pass
// -auth-key "principal=hexkey".
//
// Figure IDs: datasets, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12 (matching the
// paper's figure numbering), the extensions ext-seq, ext-robust, and
// ext-budget, or "all".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"poiagg/internal/citygen"
	"poiagg/internal/experiments"
	"poiagg/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "poirepro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("poirepro", flag.ContinueOnError)
	figID := fs.String("fig", "all", "figure to regenerate (datasets, 2..12, ext-seq, ext-robust, ext-budget, or all)")
	scale := fs.String("scale", "quick", "experiment scale: quick or full")
	seed := fs.Uint64("seed", 1, "random seed")
	locations := fs.Int("locations", 0, "evaluation locations per dataset (0 = scale default)")
	asJSON := fs.Bool("json", false, "emit JSON instead of text tables")
	asCSV := fs.Bool("csv", false, "emit long-format CSV instead of text tables")
	gspURL := fs.String("gsp", "", "fetch a city from this remote GSP base URL instead of generating it")
	gspCity := fs.String("gsp-city", "beijing", "which city preset the remote GSP replaces (beijing or nyc)")
	timeout := fs.Duration("timeout", 10*time.Second, "remote mode: per-attempt request timeout")
	retries := fs.Int("retries", 3, "remote mode: retries on transient GSP failures")
	authKey := fs.String("auth-key", "", "remote mode: sign requests as principal=hexkey (required against gspd -auth-keys)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var signOpts []wire.ClientOption
	if *authKey != "" {
		p, key, err := wire.ParseSigningKey(*authKey)
		if err != nil {
			return err
		}
		signOpts = append(signOpts, wire.WithSigningKey(p, key))
	}
	cfg := experiments.Config{Seed: *seed, Locations: *locations}
	if *gspURL != "" {
		remote, err := fetchRemoteCity(*gspURL, *gspCity, *timeout, *retries, signOpts)
		if err != nil {
			return err
		}
		cfg.Cities = map[string]*citygen.City{*gspCity: remote}
		fmt.Fprintf(out, "using remote city %q (%d POIs, %d types) from %s\n",
			remote.Name, remote.NumPOIs(), remote.M(), *gspURL)
	}
	switch strings.ToLower(*scale) {
	case "quick":
		cfg.Scale = experiments.ScaleQuick
	case "full":
		cfg.Scale = experiments.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scale)
	}
	env := experiments.NewEnv(cfg)
	registry := experiments.Registry()

	var ids []string
	if *figID == "all" {
		ids = experiments.OrderedIDs()
	} else {
		if registry[*figID] == nil {
			return fmt.Errorf("unknown figure %q (available: %s, all)",
				*figID, strings.Join(experiments.OrderedIDs(), ", "))
		}
		ids = []string{*figID}
	}

	return render(out, env, ids, *asJSON, *asCSV)
}

// fetchRemoteCity materializes a city from a running gspd with the
// hardened wire client.
func fetchRemoteCity(baseURL, name string, timeout time.Duration, retries int, signOpts []wire.ClientOption) (*citygen.City, error) {
	if name != "beijing" && name != "nyc" {
		return nil, fmt.Errorf("unknown -gsp-city %q (want beijing or nyc)", name)
	}
	opts := append([]wire.ClientOption{
		wire.WithRequestTimeout(timeout),
		wire.WithRetries(retries),
	}, signOpts...)
	client := wire.NewGSPClient(baseURL, nil, opts...)
	city, err := wire.FetchCity(context.Background(), client)
	if err != nil {
		return nil, fmt.Errorf("fetch city from %s: %w", baseURL, err)
	}
	return &citygen.City{City: city}, nil
}

func render(out io.Writer, env *experiments.Env, ids []string, asJSON, asCSV bool) error {
	registry := experiments.Registry()
	for _, id := range ids {
		start := time.Now()
		fig, err := registry[id](env)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		switch {
		case asJSON:
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(fig); err != nil {
				return err
			}
		case asCSV:
			if _, err := fmt.Fprint(out, fig.CSV()); err != nil {
				return err
			}
		default:
			fmt.Fprintln(out, fig.String())
			fmt.Fprintf(out, "(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
