package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"poiagg/internal/citygen"
	"poiagg/internal/gsp"
	"poiagg/internal/wire"
)

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "datasets", "-locations", "30"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Dataset statistics") {
		t.Errorf("missing title in output:\n%s", out)
	}
	if !strings.Contains(out, "POIs") {
		t.Errorf("missing series header:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "datasets", "-json", "-locations", "30"}, &buf); err != nil {
		t.Fatal(err)
	}
	var fig struct {
		ID     string `json:"id"`
		Series []struct {
			Name string    `json:"name"`
			X    []float64 `json:"x"`
			Y    []float64 `json:"y"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &fig); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if fig.ID != "datasets" || len(fig.Series) == 0 {
		t.Errorf("unexpected figure: %+v", fig)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "99"}, &buf); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunRemoteMode regenerates the dataset table with the Beijing
// substrate fetched from an in-process gspd over HTTP.
func TestRunRemoteMode(t *testing.T) {
	p := citygen.Beijing(71)
	p.NumPOIs = 2000
	p.NumTypes = 60
	p.Width, p.Height = 12_000, 12_000
	city, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	svc := gsp.NewService(city.City, 1<<14)
	ts := httptest.NewServer(wire.NewGSPServer(svc))
	defer ts.Close()

	var buf bytes.Buffer
	err = run([]string{"-fig", "datasets", "-locations", "20",
		"-gsp", ts.URL, "-gsp-city", "beijing"}, &buf)
	if err != nil {
		t.Fatalf("remote run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "using remote city") {
		t.Errorf("missing remote banner:\n%s", out)
	}
	if !strings.Contains(out, "Dataset statistics") {
		t.Errorf("figure not rendered:\n%s", out)
	}

	if err := run([]string{"-gsp", ts.URL, "-gsp-city", "metropolis"}, &buf); err == nil {
		t.Error("unknown -gsp-city accepted")
	}
	if err := run([]string{"-gsp", "http://127.0.0.1:1", "-retries", "0", "-timeout", "100ms"}, &buf); err == nil {
		t.Error("unreachable GSP accepted")
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-fig", "datasets", "-seed", "9", "-locations", "30"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "datasets", "-seed", "9", "-locations", "30"}, &b); err != nil {
		t.Fatal(err)
	}
	// Strip the timing line, which legitimately differs.
	trim := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "(") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if trim(a.String()) != trim(b.String()) {
		t.Error("same seed produced different output")
	}
}

func TestRunCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "datasets", "-csv", "-locations", "30"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "figure,series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) < 4 {
		t.Errorf("too few rows: %d", len(lines))
	}
}
