package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "datasets", "-locations", "30"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Dataset statistics") {
		t.Errorf("missing title in output:\n%s", out)
	}
	if !strings.Contains(out, "POIs") {
		t.Errorf("missing series header:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "datasets", "-json", "-locations", "30"}, &buf); err != nil {
		t.Fatal(err)
	}
	var fig struct {
		ID     string `json:"id"`
		Series []struct {
			Name string    `json:"name"`
			X    []float64 `json:"x"`
			Y    []float64 `json:"y"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &fig); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if fig.ID != "datasets" || len(fig.Series) == 0 {
		t.Errorf("unexpected figure: %+v", fig)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "99"}, &buf); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-fig", "datasets", "-seed", "9", "-locations", "30"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "datasets", "-seed", "9", "-locations", "30"}, &b); err != nil {
		t.Fatal(err)
	}
	// Strip the timing line, which legitimately differs.
	trim := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "(") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if trim(a.String()) != trim(b.String()) {
		t.Error("same seed produced different output")
	}
}

func TestRunCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "datasets", "-csv", "-locations", "30"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "figure,series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) < 4 {
		t.Errorf("too few rows: %d", len(lines))
	}
}
