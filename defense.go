package poiagg

import (
	"fmt"

	"poiagg/internal/defense"
	"poiagg/internal/dp"
)

// Defense re-exports.
type (
	// Sanitizer zeroes infrequent type counts (Section III-A).
	Sanitizer = defense.Sanitizer
	// GeoInd is the planar Laplace location defense (Section III-B).
	GeoInd = defense.GeoInd
	// Cloaking is the spatial k-cloaking defense (Section III-C).
	Cloaking = defense.Cloaking
	// OptRelease is the non-private optimization release (Eq. 7).
	OptRelease = defense.OptRelease
	// DPRelease is the (ε,δ)-DP release mechanism (Section V-B).
	DPRelease = defense.DPRelease
	// DPReleaseConfig parameterizes DPRelease.
	DPReleaseConfig = defense.DPReleaseConfig
	// NoiseMechanism selects the DP release's additive noise.
	NoiseMechanism = defense.NoiseMechanism
	// Accountant tracks cumulative (ε, δ) privacy loss across releases.
	Accountant = dp.Accountant
)

// Noise mechanisms for DPReleaseConfig.Mech.
const (
	// MechGaussian is the paper's (ε,δ)-DP Gaussian mechanism.
	MechGaussian = defense.MechGaussian
	// MechLaplace is the pure ε-DP Laplace ablation.
	MechLaplace = defense.MechLaplace
)

// ErrBudgetExhausted is returned when a release would exceed a privacy
// budget; match with errors.Is.
var ErrBudgetExhausted = dp.ErrBudgetExhausted

// NewAccountant returns a privacy-budget accountant with the given total
// (ε, δ) budget under basic sequential composition.
func NewAccountant(budgetEps, budgetDelta float64) (*Accountant, error) {
	a, err := dp.NewAccountant(budgetEps, budgetDelta)
	if err != nil {
		return nil, fmt.Errorf("poiagg: %w", err)
	}
	return a, nil
}

// AdvancedComposition returns the total (ε, δ) of k-fold composition
// under the Dwork–Rothblum–Vadhan bound.
func AdvancedComposition(eps, delta float64, k int, deltaSlack float64) (totalEps, totalDelta float64, err error) {
	return dp.AdvancedComposition(eps, delta, k, deltaSlack)
}

// ReleasesWithin returns how many (eps, delta) releases fit a budget
// under basic composition.
func ReleasesWithin(eps, delta, budgetEps, budgetDelta float64) int {
	return dp.ReleasesWithin(eps, delta, budgetEps, budgetDelta)
}

// DefaultDPReleaseConfig mirrors the paper's setting (k = 20, δ = 0.2).
func DefaultDPReleaseConfig() DPReleaseConfig { return defense.DefaultDPReleaseConfig() }

// NewSanitizer builds the sanitization defense: every type with
// city-wide frequency ≤ threshold is zeroed in releases.
func (c *City) NewSanitizer(threshold int) (*Sanitizer, error) {
	s, err := defense.NewSanitizer(c.gen.City, threshold)
	if err != nil {
		return nil, fmt.Errorf("poiagg: %w", err)
	}
	return s, nil
}

// NewGeoInd builds the geo-indistinguishability defense with privacy
// parameter eps per 100 m.
func (c *City) NewGeoInd(eps float64) (*GeoInd, error) {
	g, err := defense.NewGeoInd(c.svc, eps)
	if err != nil {
		return nil, fmt.Errorf("poiagg: %w", err)
	}
	return g, nil
}

// NewCloaking builds the spatial k-cloaking defense over a user
// population (see UniformPopulation).
func (c *City) NewCloaking(pop *Population, k int) (*Cloaking, error) {
	cl, err := defense.NewCloaking(c.svc, pop, k)
	if err != nil {
		return nil, fmt.Errorf("poiagg: %w", err)
	}
	return cl, nil
}

// NewOptRelease builds the paper's non-private optimization-based
// release mechanism for this city.
func (c *City) NewOptRelease() (*OptRelease, error) {
	o, err := defense.NewOptRelease(c.gen.City)
	if err != nil {
		return nil, fmt.Errorf("poiagg: %w", err)
	}
	return o, nil
}

// NewDPRelease builds the paper's differentially private release
// mechanism with a default uniform population of 10,000 users.
func (c *City) NewDPRelease(cfg DPReleaseConfig) (*DPRelease, error) {
	pop := c.UniformPopulation(10_000, 1)
	return c.NewDPReleaseWithPopulation(pop, cfg)
}

// NewDPReleaseWithPopulation builds the DP release mechanism over an
// explicit cloaking population.
func (c *City) NewDPReleaseWithPopulation(pop *Population, cfg DPReleaseConfig) (*DPRelease, error) {
	m, err := defense.NewDPRelease(c.svc, pop, cfg)
	if err != nil {
		return nil, fmt.Errorf("poiagg: %w", err)
	}
	return m, nil
}
