package poiagg_test

import (
	"fmt"

	"poiagg"
)

// Example demonstrates the core loop: a release, the attack, the defense.
func Example() {
	city, err := poiagg.GenerateBeijing(42)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d POIs, %d types\n", city.Name(), city.NumPOIs(), city.M())

	// Scan until a location with the uniqueness property turns up (the
	// library is fully deterministic, so this is reproducible).
	succeeded := false
	for _, user := range city.RandomLocations(100, 7) {
		release := city.Freq(user, 1000)
		res := city.RegionAttack(release, 1000)
		if res.Success && res.Covers(user, 1000) {
			succeeded = true
			break
		}
	}
	fmt.Println("found a re-identifiable release:", succeeded)

	// Output:
	// beijing: 10249 POIs, 177 types
	// found a re-identifiable release: true
}

// ExampleCity_FineGrainedAttack shows the Algorithm 1 area reduction.
func ExampleCity_FineGrainedAttack() {
	city, err := poiagg.GenerateBeijing(42)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, user := range city.RandomLocations(100, 7) {
		release := city.Freq(user, 1000)
		fg := city.FineGrainedAttack(release, 1000, poiagg.DefaultFineGrainedConfig())
		if !fg.Success {
			continue
		}
		fmt.Println("area below Cao et al.'s pi*r^2:", fg.Area < 3.14159*1000*1000)
		fmt.Println("target inside feasible region:", fg.Covers(user, 1000))
		break
	}
	// Output:
	// area below Cao et al.'s pi*r^2: true
	// target inside feasible region: true
}

// ExampleCity_NewDPRelease shows the paper's differentially private
// defense breaking the attack.
func ExampleCity_NewDPRelease() {
	city, err := poiagg.GenerateBeijing(42)
	if err != nil {
		fmt.Println(err)
		return
	}
	mech, err := city.NewDPRelease(poiagg.DefaultDPReleaseConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	user := city.RandomLocations(1, 7)[0]
	protected, err := mech.Release(poiagg.NewRand(1), user, 1000)
	if err != nil {
		fmt.Println(err)
		return
	}
	res := city.RegionAttack(protected, 1000)
	fmt.Println("attack on protected release succeeds:", res.Success && res.Covers(user, 1000))
	// Output:
	// attack on protected release succeeds: false
}

// ExampleNewAccountant shows end-to-end budget enforcement across a
// session of releases.
func ExampleNewAccountant() {
	acct, err := poiagg.NewAccountant(1.0, 0.3)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("releases that fit:", poiagg.ReleasesWithin(0.5, 0.1, 1.0, 0.3))
	fmt.Println(acct.Spend(0.5, 0.1) == nil)
	fmt.Println(acct.Spend(0.5, 0.1) == nil)
	fmt.Println(acct.Spend(0.5, 0.1) == nil) // budget exhausted
	// Output:
	// releases that fit: 2
	// true
	// true
	// false
}
