// Audit: a privacy audit of a whole city. Before deploying a POI-based
// service, an operator can sweep the city and quantify how much of it is
// re-identifiable from POI aggregates at each query range — the
// "location uniqueness" phenomenon the paper builds on — and where the
// risky districts are.
package main

import (
	"fmt"
	"log"
	"math"

	"poiagg"
)

func main() {
	city, err := poiagg.GenerateBeijing(33)
	if err != nil {
		log.Fatal(err)
	}
	const samples = 400
	locs := city.RandomLocations(samples, 5)

	fmt.Printf("privacy audit of %s (%d sample locations)\n\n", city.Name(), samples)
	fmt.Printf("%-8s %-12s %-14s %-s\n", "r (km)", "unique", "mean area", "vs πr²")
	for _, r := range []float64{500, 1000, 2000, 4000} {
		unique := 0
		var areaSum float64
		for _, l := range locs {
			f := city.Freq(l, r)
			fg := city.FineGrainedAttack(f, r, poiagg.DefaultFineGrainedConfig())
			if fg.Success {
				unique++
				areaSum += fg.Area
			}
		}
		rate := float64(unique) / samples
		meanArea := 0.0
		if unique > 0 {
			meanArea = areaSum / float64(unique)
		}
		fmt.Printf("%-8.1f %-12.3f %-14s %.0f%%\n",
			r/1000, rate,
			fmt.Sprintf("%.2f km²", meanArea/1e6),
			100*meanArea/(math.Pi*r*r))
	}

	// Spatial breakdown: which quarters of the city leak most at r = 1 km.
	fmt.Printf("\nuniqueness by city quadrant (r = 1 km):\n")
	b := city.Bounds()
	quadName := [4]string{"SW", "SE", "NW", "NE"}
	quads := b.Quadrants()
	for qi, q := range quads {
		unique, n := 0, 0
		for _, l := range locs {
			if !q.Contains(l) {
				continue
			}
			n++
			if city.RegionAttack(city.Freq(l, 1000), 1000).Success {
				unique++
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("  %s: %.3f (%d/%d locations unique)\n",
			quadName[qi], float64(unique)/float64(n), unique, n)
	}
	fmt.Println("\nlocations with rare POI types nearby are the most exposed —")
	fmt.Println("exactly the anchor structure the paper's attacks exploit.")
}
