// Multirelease: a continuous LBS session under an end-to-end privacy
// budget. The user queries repeatedly along a ride; every DP release
// spends (ε, δ) from an accountant, and when the session budget runs out
// further releases are refused. Meanwhile an adversary mounts the
// multi-release sequence attack on everything that was released —
// showing both why budgets matter and that the DP releases resist even
// the chained attack.
//
// This accountant is client-side and voluntary. The served architecture
// enforces the same arithmetic server-side: `lbsd -budget` charges every
// release against a per-principal internal/budget ledger (sliding-window
// refill, 429 on exhaustion), and `attackdemo -lbs <url> -principal me`
// drives it until denied. The ext-budget figure (`poirepro -fig
// ext-budget`) measures what that enforcement costs the attacker.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"poiagg"
)

func main() {
	city, err := poiagg.GenerateBeijing(55)
	if err != nil {
		log.Fatal(err)
	}
	const r = 1000.0

	// A taxi ride: one aggregate query per reported position.
	p := poiagg.DefaultTaxiParams(1)
	p.NumTaxis = 1
	p.PointsPerTaxi = 12
	trajs, err := city.GenerateTaxis(p)
	if err != nil {
		log.Fatal(err)
	}
	ride := trajs[0]

	// Per-release parameters and the session budget: (2.0, 0.5) total
	// allows four (0.5, 0.1) releases under basic composition.
	cfg := poiagg.DefaultDPReleaseConfig()
	cfg.Eps, cfg.Delta = 0.5, 0.1
	mech, err := city.NewDPRelease(cfg)
	if err != nil {
		log.Fatal(err)
	}
	acct, err := poiagg.NewAccountant(2.0, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session budget (ε=2.0, δ=0.5); each release costs (%.1f, %.1f) → %d releases allowed\n\n",
		cfg.Eps, cfg.Delta, poiagg.ReleasesWithin(cfg.Eps, cfg.Delta, 2.0, 0.5))

	src := poiagg.NewRand(2)
	var observed []poiagg.Release
	for i, pt := range ride.Points {
		f, err := mech.ReleaseWithAccountant(src, acct, pt.Pos, r)
		if errors.Is(err, poiagg.ErrBudgetExhausted) {
			fmt.Printf("t+%2dm  release REFUSED — budget exhausted\n", i*2)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		eps, delta := acct.Spent()
		fmt.Printf("t+%2dm  released %d POI counts  (spent ε=%.1f δ=%.1f)\n",
			i*2, f.Total(), eps, delta)
		observed = append(observed, poiagg.Release{F: f, T: pt.T, R: r})
	}

	// The adversary chains everything it saw.
	trainTrajs, err := city.GenerateTaxis(poiagg.DefaultTaxiParams(3))
	if err != nil {
		log.Fatal(err)
	}
	segs := poiagg.ExtractSegments(trainTrajs, 10*time.Minute, 100)
	if len(segs) > 1200 {
		segs = segs[:1200]
	}
	tcfg := poiagg.DefaultTrajectoryConfig()
	est, err := city.TrainDistanceEstimator(segs, r, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	res := city.TrajectorySequenceAttack(est, observed, tcfg)
	fmt.Printf("\nsequence attack over the %d DP releases: %d/%d re-identified",
		len(observed), res.SuccessCount(), len(observed))

	// Contrast: the same ride with raw releases.
	var raw []poiagg.Release
	for _, pt := range ride.Points[:len(observed)] {
		raw = append(raw, poiagg.Release{F: city.Freq(pt.Pos, r), T: pt.T, R: r})
	}
	rawRes := city.TrajectorySequenceAttack(est, raw, tcfg)
	fmt.Printf("\nsame positions with RAW releases:         %d/%d re-identified\n",
		rawRes.SuccessCount(), len(raw))
}
