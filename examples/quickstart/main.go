// Quickstart: generate a city, release a POI aggregate, attack it, and
// defend it — the library's whole story in ~60 lines.
package main

import (
	"fmt"
	"log"
	"math"

	"poiagg"
)

func main() {
	// A synthetic Beijing calibrated to the paper's OSM extract.
	city, err := poiagg.GenerateBeijing(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %d POIs, %d types\n", city.Name(), city.NumPOIs(), city.M())

	// A user releases only the POI *type counts* within 1 km — no
	// coordinates.
	const r = 1000.0
	user := city.RandomLocations(50, 7)
	for _, l := range user {
		release := city.Freq(l, r)

		// The adversary re-identifies the location from the counts alone.
		res := city.RegionAttack(release, r)
		if !res.Success {
			continue
		}
		fmt.Printf("\nrelease of %d POI counts re-identified!\n", release.Total())
		fmt.Printf("  user is within %.0f m of the %q at %v\n",
			r, city.Types().Name(res.Anchor.Type), res.Anchor.Pos)

		// The fine-grained attack shrinks the search area further.
		fg := city.FineGrainedAttack(release, r, poiagg.DefaultFineGrainedConfig())
		fmt.Printf("  fine-grained: %.4f km² (%.1f%% of πr²) using %d auxiliary anchors\n",
			fg.Area/1e6, 100*fg.Area/(math.Pi*r*r), len(fg.AuxAnchors))

		// The paper's DP defense breaks the attack.
		mech, err := city.NewDPRelease(poiagg.DefaultDPReleaseConfig())
		if err != nil {
			log.Fatal(err)
		}
		protected, err := mech.Release(poiagg.NewRand(1), l, r)
		if err != nil {
			log.Fatal(err)
		}
		pres := city.RegionAttack(protected, r)
		fmt.Printf("  after DP release: success=%v covers-user=%v\n",
			pres.Success, pres.Covers(l, r))
		return
	}
	fmt.Println("no unique location in sample — rerun with another seed")
}
