// Recommendation: the utility side of the paper's trade-off. A POI
// recommendation service consumes Top-10 type sets from released
// aggregates; this example measures how much of that signal survives the
// DP defense across the privacy budget ε — reproducing the shape of the
// paper's Figs. 11-12 from an application's point of view.
package main

import (
	"fmt"
	"log"

	"poiagg"
)

// recommend returns the service's suggestion for a released vector: the
// top POI type names around the user.
func recommend(city *poiagg.City, release poiagg.FreqVector, k int) []string {
	var names []string
	for _, t := range release.TopK(k) {
		if release[t] > 0 {
			names = append(names, city.Types().Name(t))
		}
	}
	return names
}

// jaccard over string sets.
func jaccard(a, b []string) float64 {
	set := make(map[string]int)
	for _, x := range a {
		set[x] |= 1
	}
	for _, x := range b {
		set[x] |= 2
	}
	if len(set) == 0 {
		return 1
	}
	inter := 0
	for _, m := range set {
		if m == 3 {
			inter++
		}
	}
	return float64(inter) / float64(len(set))
}

func main() {
	city, err := poiagg.GenerateBeijing(9)
	if err != nil {
		log.Fatal(err)
	}
	const (
		r     = 2000.0
		users = 80
		topK  = 10
	)
	locs := city.RandomLocations(users, 3)
	pop := city.UniformPopulation(10_000, 4)

	fmt.Printf("recommendation utility under the DP defense (r = %.0f m, Top-%d)\n\n", r, topK)
	fmt.Printf("%-8s %-12s %-12s %-s\n", "eps", "utility", "attacked", "sample recommendation")
	for _, eps := range []float64{0.2, 0.5, 1.0, 2.0} {
		cfg := poiagg.DefaultDPReleaseConfig()
		cfg.Eps = eps
		mech, err := city.NewDPReleaseWithPopulation(pop, cfg)
		if err != nil {
			log.Fatal(err)
		}
		src := poiagg.NewRand(uint64(eps * 1000))
		var utilSum float64
		attacked := 0
		var sample []string
		for i, l := range locs {
			exact := city.Freq(l, r)
			protected, err := mech.Release(src, l, r)
			if err != nil {
				log.Fatal(err)
			}
			want := recommend(city, exact, topK)
			got := recommend(city, protected, topK)
			utilSum += jaccard(want, got)
			if city.RegionAttack(protected, r).Covers(l, r) {
				attacked++
			}
			if i == 0 && len(got) > 3 {
				sample = got[:3]
			}
		}
		fmt.Printf("%-8.1f %-12.3f %-12s %v\n",
			eps, utilSum/users,
			fmt.Sprintf("%d/%d", attacked, users), sample)
	}
	fmt.Println("\nhigher eps: better recommendations, weaker privacy — the paper's Figs. 11-12 trade-off")
}
