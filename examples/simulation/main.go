// Simulation: replay a day of taxi traffic through three release
// pipelines — raw, non-private optimization, and the paper's DP
// mechanism — with an adversary watching every release, and print the
// resulting privacy scoreboard. A compact, time-faithful version of the
// paper's whole evaluation.
package main

import (
	"fmt"
	"log"
	"time"

	"poiagg"
)

func main() {
	city, err := poiagg.GenerateBeijing(77)
	if err != nil {
		log.Fatal(err)
	}
	p := poiagg.DefaultTaxiParams(1)
	p.NumTaxis = 40
	p.PointsPerTaxi = 30
	trajs, err := city.GenerateTaxis(p)
	if err != nil {
		log.Fatal(err)
	}
	const r = 1000.0

	opt, err := city.NewOptRelease()
	if err != nil {
		log.Fatal(err)
	}
	optPipeline := func(_ *poiagg.Rand, l poiagg.Point, radius float64) (poiagg.FreqVector, error) {
		return opt.Solve(city.Freq(l, radius), 0.03)
	}

	dpCfg := poiagg.DefaultDPReleaseConfig()
	mech, err := city.NewDPRelease(dpCfg)
	if err != nil {
		log.Fatal(err)
	}

	pipelines := []struct {
		name string
		pipe poiagg.Pipeline
	}{
		{"raw aggregates", city.PlainPipeline()},
		{"optimization (beta=0.03)", optPipeline},
		{"DP release (eps=1.0)", poiagg.DPPipeline(mech)},
	}

	fmt.Printf("replaying %d taxis × %d reports (query every ≥5 min, r = %.0f m)\n\n",
		p.NumTaxis, p.PointsPerTaxi, r)
	fmt.Printf("%-26s %-10s %-10s %-10s %-10s\n",
		"pipeline", "releases", "unique", "correct", "success")
	for _, pl := range pipelines {
		adv := city.NewSimAdversary()
		res, err := poiagg.RunSimulation(poiagg.SimConfig{
			Trajectories: trajs,
			R:            r,
			Pipeline:     pl.pipe,
			Policy:       &poiagg.MinGapQuery{Gap: 5 * time.Minute},
			Observers:    []poiagg.Observer{adv},
			Seed:         3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %-10d %-10d %-10d %.3f\n",
			pl.name, res.Releases, adv.Unique, adv.Correct, adv.SuccessRate())
	}
	fmt.Println("\n'unique' = attack returned one candidate; 'correct' = it was the right one")
}
