// Tracking: the trajectory-uniqueness attack in action. An adversary
// observes the successive POI-aggregate releases of a taxi's ride and
// combines them with a learned distance regressor to pin the vehicle
// down more often than single-release attacks can — the paper's
// Section IV-B / Fig. 8 scenario.
package main

import (
	"fmt"
	"log"
	"time"

	"poiagg"
)

func main() {
	city, err := poiagg.GenerateBeijing(21)
	if err != nil {
		log.Fatal(err)
	}
	const r = 1000.0

	// The adversary first harvests ground-truth segments (e.g. from its
	// own probe vehicles) and trains the distance regressor.
	trainTrajs, err := city.GenerateTaxis(poiagg.DefaultTaxiParams(1))
	if err != nil {
		log.Fatal(err)
	}
	trainSegs := poiagg.ExtractSegments(trainTrajs, 10*time.Minute, 100)
	if len(trainSegs) > 1500 {
		trainSegs = trainSegs[:1500]
	}
	cfg := poiagg.DefaultTrajectoryConfig()
	est, err := city.TrainDistanceEstimator(trainSegs, r, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distance regressor trained on %d segments\n", len(trainSegs))

	// Now it watches fresh victims.
	p := poiagg.DefaultTaxiParams(2)
	p.NumTaxis = 40
	victims, err := city.GenerateTaxis(p)
	if err != nil {
		log.Fatal(err)
	}
	segs := poiagg.ExtractSegments(victims, 10*time.Minute, 100)

	var total, single, pair int
	var example *poiagg.TrajectoryResult
	for _, s := range segs {
		f1 := city.Freq(s.From.Pos, r)
		f2 := city.Freq(s.To.Pos, r)
		if f1.Equal(f2) {
			continue // an unchanged release adds nothing
		}
		total += 2
		if city.RegionAttack(f1, r).Success {
			single++
		}
		if city.RegionAttack(f2, r).Success {
			single++
		}
		res := city.TrajectoryAttack(est,
			poiagg.Release{F: f1, T: s.From.T, R: r},
			poiagg.Release{F: f2, T: s.To.T, R: r},
			cfg)
		if res.SuccessFirst {
			pair++
		}
		if res.SuccessSecond {
			pair++
		}
		if example == nil && res.SuccessSecond && !city.RegionAttack(f2, r).Success {
			r := res
			example = &r
		}
	}
	if total == 0 {
		log.Fatal("no usable segments")
	}
	fmt.Printf("\nreleases observed:            %d\n", total)
	fmt.Printf("single-release success rate:  %.3f\n", float64(single)/float64(total))
	fmt.Printf("two-release success rate:     %.3f\n", float64(pair)/float64(total))
	if example != nil {
		fmt.Printf("\nexample: a release that was ambiguous alone became unique when\n")
		fmt.Printf("paired — predicted inter-release distance %.0f m narrowed the\n", example.PredictedDist)
		fmt.Printf("candidates to anchor %v\n", example.Second[0].Pos)
	}
}
