package poiagg

import (
	"errors"
	"testing"
	"time"
)

func TestSequenceAttackFacade(t *testing.T) {
	city := rootFixture(t)
	const r = 1000.0
	p := DefaultTaxiParams(71)
	p.NumTaxis = 20
	trajs, err := city.GenerateTaxis(p)
	if err != nil {
		t.Fatal(err)
	}
	segs := ExtractSegments(trajs, 10*time.Minute, 100)
	cfg := DefaultTrajectoryConfig()
	est, err := city.TrainDistanceEstimator(segs, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var releases []Release
	for _, pt := range trajs[0].Points[:5] {
		releases = append(releases, Release{F: city.Freq(pt.Pos, r), T: pt.T, R: r})
	}
	res := city.TrajectorySequenceAttack(est, releases, cfg)
	if len(res.Candidates) != 5 || len(res.Success) != 5 {
		t.Fatalf("result shape: %d/%d", len(res.Candidates), len(res.Success))
	}
	if res.SuccessCount() < 0 || res.SuccessCount() > 5 {
		t.Errorf("SuccessCount = %d", res.SuccessCount())
	}
}

func TestAccountantFacade(t *testing.T) {
	acct, err := NewAccountant(1.0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := acct.Spend(0.6, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := acct.Spend(0.6, 0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("overspend: %v", err)
	}
	if _, err := NewAccountant(-1, 0); err == nil {
		t.Error("bad budget accepted")
	}
}

func TestReleaseWithAccountantFacade(t *testing.T) {
	city := rootFixture(t)
	cfg := DefaultDPReleaseConfig()
	cfg.Eps = 0.5
	cfg.Delta = 0.1
	pop := city.UniformPopulation(2000, 72)
	mech, err := city.NewDPReleaseWithPopulation(pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := NewAccountant(0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	src := NewRand(73)
	l := city.RandomLocations(1, 74)[0]
	if _, err := mech.ReleaseWithAccountant(src, acct, l, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := mech.ReleaseWithAccountant(src, acct, l, 1000); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("second release: %v", err)
	}
}

func TestLaplaceMechanismFacade(t *testing.T) {
	city := rootFixture(t)
	cfg := DefaultDPReleaseConfig()
	cfg.Mech = MechLaplace
	pop := city.UniformPopulation(2000, 75)
	mech, err := city.NewDPReleaseWithPopulation(pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := city.RandomLocations(1, 76)[0]
	f, err := mech.Release(NewRand(77), l, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != city.M() {
		t.Errorf("vector dim %d", len(f))
	}
}

func TestCompositionHelpers(t *testing.T) {
	totalEps, totalDelta, err := AdvancedComposition(0.01, 0, 10_000, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if totalEps >= 100 { // basic bound would be 100
		t.Errorf("advanced composition %v not tighter than basic", totalEps)
	}
	if totalDelta <= 0 {
		t.Errorf("totalDelta = %v", totalDelta)
	}
	if got := ReleasesWithin(0.1, 0.01, 1.0, 0.05); got != 5 {
		t.Errorf("ReleasesWithin = %d, want 5", got)
	}
}

func TestSimulationFacade(t *testing.T) {
	city := rootFixture(t)
	p := DefaultTaxiParams(81)
	p.NumTaxis = 5
	p.PointsPerTaxi = 10
	trajs, err := city.GenerateTaxis(p)
	if err != nil {
		t.Fatal(err)
	}
	adv := city.NewSimAdversary()
	res, err := RunSimulation(SimConfig{
		Trajectories: trajs,
		R:            800,
		Pipeline:     city.PlainPipeline(),
		Observers:    []Observer{adv},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Releases != 50 {
		t.Errorf("releases = %d", res.Releases)
	}
	if adv.Seen != 50 {
		t.Errorf("adversary saw %d", adv.Seen)
	}
	mech, err := city.NewDPRelease(DefaultDPReleaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSimulation(SimConfig{
		Trajectories: trajs,
		R:            800,
		Pipeline:     DPPipeline(mech),
		Seed:         2,
	}); err != nil {
		t.Fatal(err)
	}
}
