module poiagg

go 1.24
