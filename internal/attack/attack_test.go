package attack

import (
	"math"
	"sync"
	"testing"

	"poiagg/internal/citygen"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

var (
	fixtureOnce sync.Once
	fixtureCity *citygen.City
	fixtureSvc  *gsp.Service
)

// fixture returns a shared small synthetic city; building it once keeps
// the attack test suite fast.
func fixture(t testing.TB) (*citygen.City, *gsp.Service) {
	t.Helper()
	fixtureOnce.Do(func() {
		p := citygen.Beijing(11)
		p.NumPOIs = 2500
		p.NumTypes = 80
		p.Width, p.Height = 15_000, 15_000
		p.NumDistricts = 30
		city, err := citygen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		fixtureCity = city
		fixtureSvc = gsp.NewService(city.City, 1<<16)
	})
	return fixtureCity, fixtureSvc
}

func TestRegionNoFalseNegativeAnchor(t *testing.T) {
	// When the attack succeeds, the surviving anchor must be the true one:
	// within r of the target (the true anchor always survives pruning, so
	// a unique survivor is it).
	city, svc := fixture(t)
	const r = 800.0
	locs := city.RandomLocations(300, 21)
	successes := 0
	for _, l := range locs {
		f := svc.Freq(l, r)
		if f.Total() == 0 {
			continue
		}
		res := Region(svc, f, r)
		if len(res.Candidates) == 0 {
			t.Fatalf("zero candidates for honest release at %v", l)
		}
		if res.Success {
			successes++
			if d := geo.Dist(res.Anchor.Pos, l); d > r+1e-6 {
				t.Errorf("successful attack anchor %.0f m away > r=%.0f", d, r)
			}
			if got := res.SearchArea(r); math.Abs(got-math.Pi*r*r) > 1e-6 {
				t.Errorf("SearchArea = %v", got)
			}
		}
	}
	if successes == 0 {
		t.Error("attack never succeeded on 300 locations; uniqueness missing from synthetic city")
	}
}

func TestRegionSuccessRateGrowsWithRadius(t *testing.T) {
	// The paper's headline trend: larger query ranges leak more.
	city, svc := fixture(t)
	locs := city.RandomLocations(200, 22)
	rates := make([]float64, 0, 3)
	for _, r := range []float64{400, 1000, 2500} {
		succ := 0
		for _, l := range locs {
			f := svc.Freq(l, r)
			if Region(svc, f, r).Success {
				succ++
			}
		}
		rates = append(rates, float64(succ)/float64(len(locs)))
	}
	if !(rates[0] < rates[2]) {
		t.Errorf("success rate not increasing with r: %v", rates)
	}
}

func TestRegionEmptyVector(t *testing.T) {
	_, svc := fixture(t)
	f := poi.NewFreqVector(svc.City().M())
	res := Region(svc, f, 500)
	if res.Success || res.AnchorType != -1 {
		t.Errorf("empty vector should fail cleanly: %+v", res)
	}
}

func TestFineGrainedShrinksArea(t *testing.T) {
	city, svc := fixture(t)
	const r = 1000.0
	locs := city.RandomLocations(250, 23)
	cfg := DefaultFineGrainedConfig()
	baseline := math.Pi * r * r
	var areas []float64
	covered, successes := 0, 0
	for _, l := range locs {
		f := svc.Freq(l, r)
		res := FineGrained(svc, f, r, cfg)
		if !res.Success {
			continue
		}
		successes++
		if res.Area > baseline+1e-6 {
			t.Errorf("area %v exceeds πr² %v", res.Area, baseline)
		}
		if res.Area <= 0 {
			t.Errorf("non-positive area %v with %d aux anchors", res.Area, len(res.AuxAnchors))
		}
		areas = append(areas, res.Area)
		if res.Covers(l, r) {
			covered++
		}
		if len(res.AuxAnchors) > cfg.MaxAux {
			t.Errorf("aux anchors %d exceed MaxAux %d", len(res.AuxAnchors), cfg.MaxAux)
		}
	}
	if successes == 0 {
		t.Fatal("no successful attacks to evaluate")
	}
	// Key paper claim (Fig. 6): the fine-grained attack shrinks the
	// search area substantially; in ~80% of cases to ≤ πr²/4.
	small := 0
	for _, a := range areas {
		if a <= baseline/4 {
			small++
		}
	}
	if frac := float64(small) / float64(len(areas)); frac < 0.5 {
		t.Errorf("only %.2f of successful attacks shrank to ≤ πr²/4", frac)
	}
	// Soundness: the true location must almost always stay inside the
	// feasible region (false-positive aux anchors are rare).
	if frac := float64(covered) / float64(successes); frac < 0.85 {
		t.Errorf("feasible region covers the target in only %.2f of cases", frac)
	}
}

func TestFineGrainedMoreAnchorsSmallerArea(t *testing.T) {
	city, svc := fixture(t)
	const r = 1000.0
	locs := city.RandomLocations(150, 24)
	sum5, sum40, n := 0.0, 0.0, 0
	for _, l := range locs {
		f := svc.Freq(l, r)
		res5 := FineGrained(svc, f, r, FineGrainedConfig{MaxAux: 5})
		res40 := FineGrained(svc, f, r, FineGrainedConfig{MaxAux: 40})
		if !res5.Success || !res40.Success {
			continue
		}
		sum5 += res5.Area
		sum40 += res40.Area
		n++
	}
	if n == 0 {
		t.Fatal("no successful attacks")
	}
	if sum40 > sum5+1e-6 {
		t.Errorf("mean area with 40 anchors (%v) not below 5 anchors (%v)", sum40/float64(n), sum5/float64(n))
	}
}

func TestFineGrainedFailurePropagates(t *testing.T) {
	_, svc := fixture(t)
	f := poi.NewFreqVector(svc.City().M())
	res := FineGrained(svc, f, 500, DefaultFineGrainedConfig())
	if res.Success || res.Area != 0 || res.AuxAnchors != nil {
		t.Errorf("failed region attack should yield empty fine-grained result: %+v", res)
	}
	if res.FeasibleDisks(500) != nil {
		t.Error("FeasibleDisks should be nil on failure")
	}
	if res.Covers(geo.Point{}, 500) {
		t.Error("Covers should be false on failure")
	}
}

func TestFineGrainedZeroMaxAuxDefaults(t *testing.T) {
	city, svc := fixture(t)
	l := city.RandomLocations(1, 25)[0]
	f := svc.Freq(l, 1000)
	res := FineGrained(svc, f, 1000, FineGrainedConfig{})
	if res.Success && len(res.AuxAnchors) > DefaultFineGrainedConfig().MaxAux {
		t.Errorf("default MaxAux not applied: %d anchors", len(res.AuxAnchors))
	}
}
