package attack

import (
	"sort"

	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// FineGrainedConfig configures the fine-grained attack.
type FineGrainedConfig struct {
	// MaxAux caps the number of auxiliary anchors collected (the paper's
	// MAXaux; 20 is the paper's recommended setting).
	MaxAux int
}

// DefaultFineGrainedConfig returns the paper's recommended configuration.
func DefaultFineGrainedConfig() FineGrainedConfig {
	return FineGrainedConfig{MaxAux: 20}
}

// FineGrainedResult reports one fine-grained re-identification attempt.
type FineGrainedResult struct {
	RegionResult
	// AuxAnchors are the auxiliary anchor POIs found by Algorithm 1; the
	// target is (heuristically) within r of each of them.
	AuxAnchors []poi.POI
	// Area is the area in m² of the feasible region — the intersection of
	// the disks of radius r around the major anchor and every auxiliary
	// anchor. It equals πr² when no auxiliary anchors were found and 0
	// when the region attack failed.
	Area float64
}

// FeasibleDisks returns the disk constraints defining the feasible region.
func (r FineGrainedResult) FeasibleDisks(radius float64) []geo.Circle {
	if !r.Success {
		return nil
	}
	disks := make([]geo.Circle, 0, 1+len(r.AuxAnchors))
	disks = append(disks, geo.Circle{C: r.Anchor.Pos, R: radius})
	for _, a := range r.AuxAnchors {
		disks = append(disks, geo.Circle{C: a.Pos, R: radius})
	}
	return disks
}

// Covers reports whether the feasible region still contains the point l —
// the soundness check of the attack (auxiliary anchors found via the
// dominance heuristic can be false positives).
func (r FineGrainedResult) Covers(l geo.Point, radius float64) bool {
	if !r.Success {
		return false
	}
	for _, d := range r.FeasibleDisks(radius) {
		if !d.Contains(l) {
			return false
		}
	}
	return true
}

// FineGrained runs the paper's Algorithm 1 on a released vector f with
// query range r:
//
//  1. run the Region attack; on failure, stop;
//  2. around the major anchor p*, fetch P_{p*,2r} and F_{p*,2r}, compute
//     F_diff = F_{p*,2r} − f, and walk the POI types present in f in
//     ascending F_diff order;
//  3. types with F_diff = 0 contribute every POI of that type in
//     P_{p*,2r} as an auxiliary anchor outright (they must all be within
//     r of the target); other types contribute the POIs whose own
//     F_{p,2r} dominates f;
//  4. stop after MaxAux anchors and intersect the radius-r disks around
//     all anchors to obtain the feasible region.
func FineGrained(svc *gsp.Service, f poi.FreqVector, r float64, cfg FineGrainedConfig) FineGrainedResult {
	if cfg.MaxAux <= 0 {
		cfg.MaxAux = DefaultFineGrainedConfig().MaxAux
	}
	res := FineGrainedResult{RegionResult: Region(svc, f, r)}
	if !res.Success {
		return res
	}
	anchor := res.Anchor
	near := svc.Query(anchor.Pos, 2*r)
	fAnchor := svc.Freq(anchor.Pos, 2*r)
	fdiff := fAnchor.Sub(f)

	// Group the 2r-neighbourhood by type once.
	byType := make(map[poi.TypeID][]poi.POI)
	for _, p := range near {
		byType[p.Type] = append(byType[p.Type], p)
	}

	// Candidate types: present in the release, not the anchor type itself.
	type typeDiff struct {
		t    poi.TypeID
		diff int
	}
	cands := make([]typeDiff, 0, len(f))
	for i, n := range f {
		t := poi.TypeID(i)
		if n <= 0 || t == res.AnchorType {
			continue
		}
		cands = append(cands, typeDiff{t: t, diff: fdiff[i]})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].diff != cands[b].diff {
			return cands[a].diff < cands[b].diff
		}
		return cands[a].t < cands[b].t
	})

	// For each candidate type, the released count f[t] POIs of that type
	// lie within r of the target, and all of them appear among the type's
	// POIs in P_{p*,2r} and survive the dominance test (dominance never
	// rejects a true anchor). The raw dominance test of Algorithm 1 can
	// also pass POIs outside radius r, and one such false positive makes
	// the disk intersection exclude the target; we therefore accept a
	// type's survivors only when pruning eliminated every excess
	// candidate (survivors == f[t]), which makes each accepted anchor
	// provably within r of the target. Types with F_diff = 0 satisfy this
	// by construction and need no probing (see the soundness-filter
	// ablation in DESIGN.md).
	// Dominance probing per type goes through the same bounded worker
	// pool as the region attack's prune loop (dominanceFlags), with
	// flags landing at their POI index — so the collected anchors and
	// their order match the retained serial reference exactly
	// (TestFineGrainedParallelMatchesSerial). Probing stays lazy per
	// type: types after the MaxAux cutoff are never probed, exactly as
	// in the serial walk.
	aux := make([]poi.POI, 0, cfg.MaxAux)
	var dom []bool
collect:
	for _, cd := range cands {
		pois := byType[cd.t]
		need := f[cd.t]
		var sound []poi.POI
		if cd.diff == 0 {
			sound = pois
		} else {
			if cap(dom) < len(pois) {
				dom = make([]bool, len(pois))
			}
			dom = dom[:len(pois)]
			dominanceFlags(svc, pois, f, r, dom)
			survivors := make([]poi.POI, 0, len(pois))
			for i, p := range pois {
				if dom[i] {
					survivors = append(survivors, p)
				}
			}
			if len(survivors) != need {
				continue // ambiguous type: some survivors may be outside r
			}
			sound = survivors
		}
		for _, p := range sound {
			aux = append(aux, p)
			if len(aux) >= cfg.MaxAux {
				break collect
			}
		}
	}
	res.AuxAnchors = aux
	res.Area = geo.DisksIntersectionArea(res.FeasibleDisks(r))
	return res
}
