package attack

import (
	"runtime"
	"sync"
	"sync/atomic"

	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// minParallelProbes is the candidate count below which the dominance
// probe loop stays on the calling goroutine — under it, worker startup
// costs more than the probes.
const minParallelProbes = 16

// dominanceFlags fills dom[i] with Freq(pois[i].Pos, 2r) ⊒ f for every
// candidate anchor — the pruning predicate of the region attack — fanning
// the probes across a bounded worker pool. Each worker owns one scratch
// FreqVector filled via the zero-alloc FreqInto, so the loop allocates
// per worker instead of per candidate. Results land at their candidate
// index, which keeps downstream survivor collection in deterministic POI
// order regardless of scheduling.
func dominanceFlags(svc *gsp.Service, pois []poi.POI, f poi.FreqVector, r float64, dom []bool) {
	dominanceFlagsN(svc, pois, f, r, dom, runtime.GOMAXPROCS(0))
}

// dominanceFlagsN is dominanceFlags with an explicit worker bound — the
// hook the differential tests use to force the concurrent path on any
// machine.
func dominanceFlagsN(svc *gsp.Service, pois []poi.POI, f poi.FreqVector, r float64, dom []bool, workers int) {
	n := len(pois)
	if workers > n {
		workers = n
	}
	m := svc.City().M()
	if workers <= 1 || n < minParallelProbes {
		scratch := poi.NewFreqVector(m)
		for i := range pois {
			svc.FreqInto(scratch, pois[i].Pos, 2*r)
			dom[i] = scratch.Dominates(f)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := poi.NewFreqVector(m)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				svc.FreqInto(scratch, pois[i].Pos, 2*r)
				dom[i] = scratch.Dominates(f)
			}
		}()
	}
	wg.Wait()
}
