package attack

import (
	"fmt"
	"reflect"
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// TestDominanceFlagsParallelMatchesSerial forces the pooled probe loop
// (workers=4) and checks it against the inline serial path (workers=1) —
// the GOMAXPROCS default would silently fall back to serial on a 1-core
// machine, so the worker count is pinned explicitly.
func TestDominanceFlagsParallelMatchesSerial(t *testing.T) {
	city, svc := fixture(t)
	const r = 800.0
	for _, l := range city.RandomLocations(40, 31) {
		f := svc.Freq(l, r)
		tl, ok := poi.MostInfrequentPresent(f, city.CityFreq())
		if !ok {
			continue
		}
		cands := city.POIsOfType(tl)
		serial := make([]bool, len(cands))
		parallel := make([]bool, len(cands))
		dominanceFlagsN(svc, cands, f, r, serial, 1)
		dominanceFlagsN(svc, cands, f, r, parallel, 4)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("dominance flags diverge at %v: serial %v parallel %v", l, serial, parallel)
		}
	}
}

// TestRegionParallelMatchesSerial pins the pooled Region against the
// retained allocating reference, including Candidates ordering: the
// RegionResult structs must be deeply equal at every location and radius.
func TestRegionParallelMatchesSerial(t *testing.T) {
	city, svc := fixture(t)
	for _, r := range []float64{400, 800, 2000} {
		for _, l := range city.RandomLocations(60, 33) {
			f := svc.Freq(l, r)
			want := regionSerial(svc, f, r)
			got := Region(svc, f, r)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("r=%v l=%v: Region %+v != serial %+v", r, l, got, want)
			}
		}
	}
	// Degenerate release: no type present.
	empty := poi.NewFreqVector(city.City.M())
	if want, got := regionSerial(svc, empty, 500), Region(svc, empty, 500); !reflect.DeepEqual(want, got) {
		t.Fatalf("empty release: Region %+v != serial %+v", got, want)
	}
}

// TestFineGrainedParallelMatchesSerial pins the pooled FineGrained
// against its retained reference — auxiliary anchor set, order, area and
// all — over locations and radii, for both the default and a small
// MaxAux (early-termination path).
func TestFineGrainedParallelMatchesSerial(t *testing.T) {
	city, svc := fixture(t)
	for _, cfg := range []FineGrainedConfig{DefaultFineGrainedConfig(), {MaxAux: 2}} {
		for _, r := range []float64{800, 2000} {
			for _, l := range city.RandomLocations(40, 35) {
				f := svc.Freq(l, r)
				want := fineGrainedSerial(svc, f, r, cfg)
				got := FineGrained(svc, f, r, cfg)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("cfg=%+v r=%v l=%v:\n got %+v\nwant %+v", cfg, r, l, got, want)
				}
			}
		}
	}
}

// benchCity builds a dense uniform-type city: every type has n/m POIs, so
// the region attack probes a large candidate set — the workload the
// pooled prune loop is built for.
func benchCity(b *testing.B, n, m int) *gsp.City {
	b.Helper()
	types := poi.NewTypeTable()
	for i := 0; i < m; i++ {
		types.Intern(fmt.Sprintf("t%d", i))
	}
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 20_000, MaxY: 20_000}
	pois := make([]poi.POI, n)
	for i := range pois {
		// Deterministic low-discrepancy scatter; types round-robin so every
		// candidate set has exactly n/m anchors.
		x := float64(i%557) / 557 * 20_000
		y := float64(i%881) / 881 * 20_000
		pois[i] = poi.POI{ID: poi.ID(i), Type: poi.TypeID(i % m), Pos: geo.Point{X: x, Y: y}}
	}
	city, err := gsp.NewCity("bench", bounds, types, pois)
	if err != nil {
		b.Fatal(err)
	}
	return city
}

// BenchmarkRegionPruneParallel is the prune-loop ablation pinned into
// BENCH_core.json: the pooled zero-alloc path (Region) against the
// retained per-candidate-allocating reference (regionSerial) on a warmed
// cache — steady state for the attack sweeps, where every probe is a
// cache hit and the difference is pure copy-vs-allocate plus pool
// scaling.
func BenchmarkRegionPruneParallel(b *testing.B) {
	city := benchCity(b, 20_000, 40)
	svc := gsp.NewService(city, 1<<17)
	l := geo.Point{X: 10_000, Y: 10_000}
	const r = 1500.0
	f := svc.Freq(l, r)
	Region(svc, f, r) // warm the Freq cache for every candidate probe

	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Region(svc, f, r)
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			regionSerial(svc, f, r)
		}
	})
}
