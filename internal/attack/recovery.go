package attack

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/ml"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// RecoveryConfig configures the learning-based recovery attack against
// sanitization.
type RecoveryConfig struct {
	// TrainSamples and ValSamples are the sizes of the generated training
	// and validation sets. The paper uses 10,000/2,000 with scikit-learn;
	// the pure-Go kernel solver defaults lower to keep full-figure sweeps
	// tractable, which costs a little accuracy headroom but preserves the
	// result (recovery ≈ no-protection success rates).
	TrainSamples int
	ValSamples   int
	// Gamma is the RBF kernel width over scaled features.
	Gamma float64
	// SVM configures the per-type classifiers.
	SVM ml.SVMConfig
	// Seed drives training-set generation.
	Seed uint64
}

// DefaultRecoveryConfig returns a configuration balancing fidelity and
// pure-Go training cost.
func DefaultRecoveryConfig(seed uint64) RecoveryConfig {
	return RecoveryConfig{
		TrainSamples: 1200,
		ValSamples:   300,
		Gamma:        0.05,
		SVM:          ml.SVMConfig{C: 10, Epochs: 60, Tol: 1e-4},
		Seed:         seed,
	}
}

// Recoverer predicts the sanitized entries of a released frequency vector
// from its surviving entries: one classifier per sanitized type, trained
// on Freq vectors of random city locations (Pred(x_{−S}) → n_S in the
// paper's notation).
type Recoverer struct {
	sanitized []poi.TypeID
	keepIdx   []int // feature indices: types not sanitized
	scaler    *ml.StandardScaler
	gram      *ml.Gram // shared by every per-type model
	models    map[poi.TypeID]*ml.SVC
	constants map[poi.TypeID]int // types whose training label never varied
	valAcc    map[poi.TypeID]float64
}

// TrainRecoverer builds a Recoverer for the given sanitized type set and
// query range r. Training samples are Freq vectors of uniformly random
// locations in the city — exactly the adversary's capability, since Freq
// is public.
func TrainRecoverer(svc *gsp.Service, sanitized []poi.TypeID, r float64, cfg RecoveryConfig) (*Recoverer, error) {
	if len(sanitized) == 0 {
		return nil, fmt.Errorf("attack: TrainRecoverer: empty sanitized set")
	}
	if cfg.TrainSamples < 10 {
		return nil, fmt.Errorf("attack: TrainRecoverer: need ≥10 training samples, got %d", cfg.TrainSamples)
	}
	city := svc.City()
	sanSet := make(map[poi.TypeID]bool, len(sanitized))
	for _, t := range sanitized {
		sanSet[t] = true
	}
	keepIdx := make([]int, 0, city.M()-len(sanitized))
	for i := 0; i < city.M(); i++ {
		if !sanSet[poi.TypeID(i)] {
			keepIdx = append(keepIdx, i)
		}
	}
	if len(keepIdx) == 0 {
		return nil, fmt.Errorf("attack: TrainRecoverer: every type sanitized, no features left")
	}

	src := rng.New(cfg.Seed)
	total := cfg.TrainSamples + cfg.ValSamples
	features := make([][]float64, total)
	labels := make([][]int, total) // labels[i][k] = count of sanitized[k]
	for i := 0; i < total; i++ {
		x, y := src.UniformIn(city.Bounds.MinX, city.Bounds.MinY, city.Bounds.MaxX, city.Bounds.MaxY)
		f := svc.Freq(geo.Point{X: x, Y: y}, r)
		features[i] = project(f, keepIdx)
		row := make([]int, len(sanitized))
		for k, t := range sanitized {
			row[k] = f[t]
		}
		labels[i] = row
	}

	return fitRecoverer(features, labels, sanitized, keepIdx, cfg)
}

func constantValAcc(labels [][]int, trainN, k, c int) float64 {
	var acc, n float64
	for i := trainN; i < len(labels); i++ {
		if labels[i][k] == c {
			acc++
		}
		n++
	}
	if n == 0 {
		return 1
	}
	return acc / n
}

// project extracts the non-sanitized entries of f as a float feature row.
func project(f poi.FreqVector, keepIdx []int) []float64 {
	out := make([]float64, len(keepIdx))
	for j, i := range keepIdx {
		out[j] = float64(f[i])
	}
	return out
}

// Recover returns a copy of the sanitized release f with every sanitized
// entry replaced by its predicted frequency.
func (rec *Recoverer) Recover(f poi.FreqVector) poi.FreqVector {
	out := f.Clone()
	feats := rec.scaler.Transform(project(f, rec.keepIdx))
	// All per-type models share one Gram over the same training features,
	// so one kernel row serves every prediction.
	var kRow []float64
	for _, t := range rec.sanitized {
		if c, ok := rec.constants[t]; ok {
			out[t] = c
			continue
		}
		if kRow == nil {
			kRow = rec.gram.EvalRow(feats)
		}
		out[t] = rec.models[t].PredictKernelRow(kRow)
	}
	return out
}

// ValidationAccuracy returns the per-type held-out accuracy of the
// prediction models, keyed by sanitized type — the quantity Fig. 2
// reports.
func (rec *Recoverer) ValidationAccuracy() map[poi.TypeID]float64 {
	out := make(map[poi.TypeID]float64, len(rec.valAcc))
	for t, a := range rec.valAcc {
		out[t] = a
	}
	return out
}

// Sanitized returns the sanitized type set the recoverer was trained for.
func (rec *Recoverer) Sanitized() []poi.TypeID {
	return append([]poi.TypeID(nil), rec.sanitized...)
}

// ReleaseTransform is a (public, adversary-computable) defense applied to
// an exact frequency vector.
type ReleaseTransform func(poi.FreqVector) (poi.FreqVector, error)

// TrainTransformRecoverer trains the recovery attack against an
// arbitrary frequency-level defense: the adversary simulates the defense
// on Freq vectors of random locations — both the defense mechanism and
// the Freq oracle are public — and learns to predict each target type's
// true count from the defended release. This applies the paper's own
// sanitization-breaking methodology (Section III-A) to any vector
// transform, including the paper's Eq. 7 optimization defense; the
// ext-robust experiment reports how the proposed defense holds up.
//
// Features are the full defended vector (all M dimensions): unlike plain
// sanitization, a transform may perturb any entry, so none can be
// excluded a priori.
func TrainTransformRecoverer(svc *gsp.Service, transform ReleaseTransform, targets []poi.TypeID, r float64, cfg RecoveryConfig) (*Recoverer, error) {
	if transform == nil {
		return nil, fmt.Errorf("attack: TrainTransformRecoverer: nil transform")
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("attack: TrainTransformRecoverer: empty target set")
	}
	if cfg.TrainSamples < 10 {
		return nil, fmt.Errorf("attack: TrainTransformRecoverer: need ≥10 training samples, got %d", cfg.TrainSamples)
	}
	city := svc.City()
	keepIdx := make([]int, city.M())
	for i := range keepIdx {
		keepIdx[i] = i
	}

	src := rng.New(cfg.Seed)
	total := cfg.TrainSamples + cfg.ValSamples
	features := make([][]float64, total)
	labels := make([][]int, total)
	for i := 0; i < total; i++ {
		x, y := src.UniformIn(city.Bounds.MinX, city.Bounds.MinY, city.Bounds.MaxX, city.Bounds.MaxY)
		f := svc.Freq(geo.Point{X: x, Y: y}, r)
		defended, err := transform(f)
		if err != nil {
			return nil, fmt.Errorf("attack: TrainTransformRecoverer: transform: %w", err)
		}
		features[i] = project(defended, keepIdx)
		row := make([]int, len(targets))
		for k, t := range targets {
			row[k] = f[t]
		}
		labels[i] = row
	}
	return fitRecoverer(features, labels, targets, keepIdx, cfg)
}

// fitRecoverer trains the per-type models shared by TrainRecoverer and
// TrainTransformRecoverer once the (features, labels) matrix is built.
// The per-type SVMs share the read-only Gram matrix, so they train
// concurrently across GOMAXPROCS workers; results land at their target
// index and merge in target order, which keeps the fitted recoverer —
// and error reporting, pinned to the lowest failing target — identical
// to a serial fit (TestRecovererFitParallelMatchesSerial).
func fitRecoverer(features [][]float64, labels [][]int, targets []poi.TypeID, keepIdx []int, cfg RecoveryConfig) (*Recoverer, error) {
	return fitRecovererN(features, labels, targets, keepIdx, cfg, runtime.GOMAXPROCS(0))
}

// fitRecovererN is fitRecoverer with an explicit worker bound — the hook
// the differential test uses to compare the concurrent fit against
// workers=1 on any machine.
func fitRecovererN(features [][]float64, labels [][]int, targets []poi.TypeID, keepIdx []int, cfg RecoveryConfig, workers int) (*Recoverer, error) {
	scaler, err := ml.FitScaler(features[:cfg.TrainSamples])
	if err != nil {
		return nil, fmt.Errorf("attack: fit recoverer: %w", err)
	}
	scaled := scaler.TransformAll(features)
	gram := ml.NewGram(scaled[:cfg.TrainSamples], ml.RBF{Gamma: cfg.Gamma})

	rec := &Recoverer{
		sanitized: append([]poi.TypeID(nil), targets...),
		keepIdx:   keepIdx,
		scaler:    scaler,
		gram:      gram,
		models:    make(map[poi.TypeID]*ml.SVC),
		constants: make(map[poi.TypeID]int),
		valAcc:    make(map[poi.TypeID]float64),
	}
	total := len(features)
	valRows := make([][]float64, 0, total-cfg.TrainSamples)
	for i := cfg.TrainSamples; i < total; i++ {
		valRows = append(valRows, gram.EvalRow(scaled[i]))
	}

	// fitted is one target's training outcome, produced by any worker and
	// merged in target order below.
	type fitted struct {
		model    *ml.SVC
		constant bool
		constVal int
		valAcc   float64
		hasAcc   bool
		err      error
	}
	outs := make([]fitted, len(targets))
	fitOne := func(k int) {
		y := make([]int, cfg.TrainSamples)
		distinct := make(map[int]bool)
		for i := 0; i < cfg.TrainSamples; i++ {
			y[i] = labels[i][k]
			distinct[y[i]] = true
		}
		if len(distinct) < 2 {
			outs[k] = fitted{constant: true, constVal: y[0], valAcc: constantValAcc(labels, cfg.TrainSamples, k, y[0]), hasAcc: true}
			return
		}
		model, err := ml.TrainSVC(gram, y, cfg.SVM)
		if err != nil {
			outs[k] = fitted{err: err}
			return
		}
		var acc, n float64
		for vi, i := 0, cfg.TrainSamples; i < total; vi, i = vi+1, i+1 {
			if model.PredictKernelRow(valRows[vi]) == labels[i][k] {
				acc++
			}
			n++
		}
		out := fitted{model: model}
		if n > 0 {
			out.valAcc = acc / n
			out.hasAcc = true
		}
		outs[k] = out
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers <= 1 {
		for k := range targets {
			fitOne(k)
		}
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(targets) {
						return
					}
					fitOne(k)
				}
			}()
		}
		wg.Wait()
	}

	for k, t := range targets {
		o := outs[k]
		if o.err != nil {
			return nil, fmt.Errorf("attack: fit recoverer: type %d: %w", t, o.err)
		}
		if o.constant {
			rec.constants[t] = o.constVal
			rec.valAcc[t] = o.valAcc
			continue
		}
		rec.models[t] = o.model
		if o.hasAcc {
			rec.valAcc[t] = o.valAcc
		}
	}
	return rec, nil
}
