package attack

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"poiagg/internal/ml"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// sanitizedSet returns the fixture city's types with city-wide frequency
// at or below the threshold, mirroring the paper's sanitization defense.
func sanitizedSet(t *testing.T, threshold int) []poi.TypeID {
	t.Helper()
	city, _ := fixture(t)
	var out []poi.TypeID
	for i, n := range city.CityFreq() {
		if n <= threshold {
			out = append(out, poi.TypeID(i))
		}
	}
	if len(out) == 0 {
		t.Fatal("no sanitized types at threshold")
	}
	return out
}

func applySanitize(f poi.FreqVector, sanitized []poi.TypeID) poi.FreqVector {
	out := f.Clone()
	for _, t := range sanitized {
		out[t] = 0
	}
	return out
}

// TestRecovererFitParallelMatchesSerial pins the concurrent per-type SVM
// fit (workers=4) against workers=1 on synthetic features and labels:
// the constant-type shortcut, validation accuracies, and every Recover
// prediction must be identical, since all workers train on the same
// read-only Gram and results merge in target order.
func TestRecovererFitParallelMatchesSerial(t *testing.T) {
	const (
		dim     = 6
		trainN  = 180
		valN    = 40
		numTgts = 3
	)
	src := rng.New(41)
	total := trainN + valN
	features := make([][]float64, total)
	labels := make([][]int, total)
	for i := range features {
		row := make([]float64, dim)
		for d := range row {
			row[d] = src.Normal(0, 3)
		}
		features[i] = row
		lab := make([]int, numTgts)
		lab[0] = 2 // constant target: exercises the constants map
		if row[0] > 0 {
			lab[1] = 1
		}
		lab[2] = int(math.Abs(row[1])) % 3
		labels[i] = lab
	}
	keepIdx := []int{0, 1, 2, 3, 4, 5}
	targets := []poi.TypeID{6, 7, 8}
	cfg := RecoveryConfig{TrainSamples: trainN, ValSamples: valN, Gamma: 0.1, SVM: ml.DefaultSVMConfig()}

	rec1, err := fitRecovererN(features, labels, targets, keepIdx, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec4, err := fitRecovererN(features, labels, targets, keepIdx, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec1.ValidationAccuracy(), rec4.ValidationAccuracy()) {
		t.Fatalf("validation accuracy diverges: %v vs %v", rec1.ValidationAccuracy(), rec4.ValidationAccuracy())
	}
	if !reflect.DeepEqual(rec1.constants, rec4.constants) {
		t.Fatalf("constants diverge: %v vs %v", rec1.constants, rec4.constants)
	}
	if len(rec1.models) != len(rec4.models) {
		t.Fatalf("model sets diverge: %d vs %d", len(rec1.models), len(rec4.models))
	}
	for trial := 0; trial < 30; trial++ {
		f := poi.NewFreqVector(9)
		for i := range f {
			f[i] = src.IntN(12)
		}
		got1 := rec1.Recover(f)
		got4 := rec4.Recover(f)
		if !got1.Equal(got4) {
			t.Fatalf("trial %d: Recover diverges: %v vs %v", trial, got1, got4)
		}
	}
}

func TestRecovererValidationAccuracy(t *testing.T) {
	city, svc := fixture(t)
	sanitized := sanitizedSet(t, 10)
	cfg := DefaultRecoveryConfig(31)
	cfg.TrainSamples = 1000
	cfg.ValSamples = 150
	rec, err := TrainRecoverer(svc, sanitized, 800, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accs := rec.ValidationAccuracy()
	if len(accs) != len(sanitized) {
		t.Fatalf("got %d accuracies for %d types", len(accs), len(sanitized))
	}
	sum := 0.0
	for typ, a := range accs {
		if a < 0 || a > 1 {
			t.Errorf("type %d accuracy %v out of range", typ, a)
		}
		sum += a
	}
	// The paper reports >0.95 mean accuracy; rare types are mostly-zero
	// targets so high accuracy is expected even at reduced training size.
	if mean := sum / float64(len(accs)); mean < 0.9 {
		t.Errorf("mean validation accuracy %.3f < 0.9", mean)
	}
	_ = city
}

func TestRecovererRestoresAttack(t *testing.T) {
	city, svc := fixture(t)
	sanitized := sanitizedSet(t, 10)
	cfg := DefaultRecoveryConfig(32)
	cfg.TrainSamples = 1000
	cfg.ValSamples = 100
	rec, err := TrainRecoverer(svc, sanitized, 800, cfg)
	if err != nil {
		t.Fatal(err)
	}
	locs := city.RandomLocations(150, 33)
	const r = 800.0
	var plain, sanitizedOK, recovered int
	for _, l := range locs {
		f := svc.Freq(l, r)
		if Region(svc, f, r).Success {
			plain++
		}
		fs := applySanitize(f, sanitized)
		if Region(svc, fs, r).Success {
			sanitizedOK++
		}
		fr := rec.Recover(fs)
		if Region(svc, fr, r).Success {
			recovered++
		}
	}
	if plain == 0 {
		t.Fatal("baseline attack never succeeded")
	}
	if sanitizedOK >= plain {
		t.Errorf("sanitization did not reduce success: %d vs %d", sanitizedOK, plain)
	}
	// The learning attack must restore a large share of the lost
	// successes (Fig. 3's 'recovered' bars track 'w/o protection').
	if float64(recovered) < 0.6*float64(plain) {
		t.Errorf("recovery restored only %d of %d plain successes", recovered, plain)
	}
}

func TestRecoverPreservesUnsanitizedEntries(t *testing.T) {
	city, svc := fixture(t)
	sanitized := sanitizedSet(t, 10)
	cfg := DefaultRecoveryConfig(34)
	cfg.TrainSamples = 200
	cfg.ValSamples = 50
	rec, err := TrainRecoverer(svc, sanitized, 800, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := city.RandomLocations(1, 35)[0]
	f := svc.Freq(l, 800)
	fs := applySanitize(f, sanitized)
	fr := rec.Recover(fs)
	sanSet := make(map[poi.TypeID]bool)
	for _, typ := range sanitized {
		sanSet[typ] = true
	}
	for i := range fr {
		if !sanSet[poi.TypeID(i)] && fr[i] != fs[i] {
			t.Errorf("non-sanitized entry %d changed: %d -> %d", i, fs[i], fr[i])
		}
	}
	if got := rec.Sanitized(); len(got) != len(sanitized) {
		t.Errorf("Sanitized() = %d types", len(got))
	}
}

func TestTrainRecovererValidation(t *testing.T) {
	_, svc := fixture(t)
	if _, err := TrainRecoverer(svc, nil, 800, DefaultRecoveryConfig(1)); err == nil {
		t.Error("empty sanitized set accepted")
	}
	cfg := DefaultRecoveryConfig(1)
	cfg.TrainSamples = 2
	if _, err := TrainRecoverer(svc, []poi.TypeID{0}, 800, cfg); err == nil {
		t.Error("tiny training set accepted")
	}
	// Sanitizing everything leaves no features.
	city, _ := fixture(t)
	all := make([]poi.TypeID, city.M())
	for i := range all {
		all[i] = poi.TypeID(i)
	}
	if _, err := TrainRecoverer(svc, all, 800, DefaultRecoveryConfig(1)); err == nil {
		t.Error("all-sanitized accepted")
	}
}

func TestTransformRecovererValidation(t *testing.T) {
	_, svc := fixture(t)
	ident := func(f poi.FreqVector) (poi.FreqVector, error) { return f, nil }
	if _, err := TrainTransformRecoverer(svc, nil, []poi.TypeID{0}, 800, DefaultRecoveryConfig(1)); err == nil {
		t.Error("nil transform accepted")
	}
	if _, err := TrainTransformRecoverer(svc, ident, nil, 800, DefaultRecoveryConfig(1)); err == nil {
		t.Error("empty targets accepted")
	}
	cfg := DefaultRecoveryConfig(1)
	cfg.TrainSamples = 2
	if _, err := TrainTransformRecoverer(svc, ident, []poi.TypeID{0}, 800, cfg); err == nil {
		t.Error("tiny training set accepted")
	}
	failing := func(poi.FreqVector) (poi.FreqVector, error) {
		return nil, errors.New("defense down")
	}
	cfg = DefaultRecoveryConfig(1)
	cfg.TrainSamples = 50
	cfg.ValSamples = 10
	if _, err := TrainTransformRecoverer(svc, failing, []poi.TypeID{0}, 800, cfg); err == nil {
		t.Error("failing transform accepted")
	}
}

func TestTransformRecovererIdentityTransform(t *testing.T) {
	// Against the identity "defense" the recovery targets are directly
	// visible in the features, so held-out accuracy must be essentially
	// perfect.
	city, svc := fixture(t)
	sanitized := sanitizedSet(t, 10)[:5]
	ident := func(f poi.FreqVector) (poi.FreqVector, error) { return f, nil }
	cfg := DefaultRecoveryConfig(91)
	cfg.TrainSamples = 400
	cfg.ValSamples = 100
	rec, err := TrainTransformRecoverer(svc, ident, sanitized, 800, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for typ, acc := range rec.ValidationAccuracy() {
		if acc < 0.9 {
			t.Errorf("type %d: accuracy %v against identity transform", typ, acc)
		}
	}
	l := city.RandomLocations(1, 92)[0]
	f := svc.Freq(l, 800)
	out := rec.Recover(f)
	if len(out) != city.M() {
		t.Errorf("recovered dim %d", len(out))
	}
}
