// Package attack implements the location re-identification attacks:
//
//   - Region: the baseline region re-identification of Cao et al.
//     (IMWUT'18), reviewed in Section II-D of the paper, which
//     re-identifies a location into a circle of radius r around an anchor
//     POI of the most infrequent type present.
//   - FineGrained: the paper's Algorithm 1, which extends Region with
//     auxiliary anchors and shrinks the search area to the intersection
//     of the anchor disks (Section IV-A, Figs. 6-7).
//   - Trajectory: the trajectory-uniqueness attack that exploits two
//     successive releases plus a learned distance regressor
//     (Section IV-B, Fig. 8).
//   - Recoverer: the learning-based attack that reconstructs sanitized
//     POI type frequencies from the released ones (Section III-A,
//     Figs. 2-3).
//
// All attacks consume only the adversary's stated prior knowledge: the
// public Freq/Query interface of the geo-information service provider,
// the released frequency vectors, and the query range r.
package attack

import (
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// RegionResult reports one region re-identification attempt.
type RegionResult struct {
	// Success is true when exactly one candidate anchor survived pruning —
	// the paper's definition of a successful attack (|Φ| = 1).
	Success bool
	// AnchorType is t_l, the most infrequent POI type present in the
	// released vector.
	AnchorType poi.TypeID
	// Anchor is p*_{t_l}, the surviving anchor POI; meaningful only when
	// Success is true. The user is inside the circle of radius r around
	// it.
	Anchor poi.POI
	// Candidates are all anchors that survived pruning (|Φ| of them).
	Candidates []poi.POI
}

// Covers reports whether the re-identified region (the radius-r disk
// around the anchor) contains l. A successful attack on an honest
// release always covers the target; against a defended release a unique
// but wrong anchor is a failed attack, and evaluations should count
// success as Success && Covers.
func (r RegionResult) Covers(l geo.Point, radius float64) bool {
	return r.Success && geo.Dist(r.Anchor.Pos, l) <= radius
}

// SearchArea returns the area of the re-identified region, πr² when the
// attack succeeded (the paper's baseline search area), and 0 otherwise.
func (r RegionResult) SearchArea(radius float64) float64 {
	if !r.Success {
		return 0
	}
	return geo.Circle{C: r.Anchor.Pos, R: radius}.Area()
}

// Region runs the Cao et al. region re-identification attack against a
// released frequency vector f queried with range r:
//
//  1. find t_l, the city-wide most infrequent type present in f;
//  2. candidate anchors are all POIs of type t_l;
//  3. prune every candidate p whose F_{p,2r} fails to dominate f
//     (the disk of radius r around the true location is covered by the
//     disk of radius 2r around any POI within r of it, so a true anchor's
//     2r-vector must dominate the release);
//  4. succeed when exactly one candidate remains.
//
// The pruning loop (step 3) fans out across a bounded worker pool with
// per-worker scratch vectors; survivors are collected in POI order, so
// Candidates is bit-identical to the retained serial reference
// (TestRegionParallelMatchesSerial).
func Region(svc *gsp.Service, f poi.FreqVector, r float64) RegionResult {
	city := svc.City()
	tl, ok := poi.MostInfrequentPresent(f, city.CityFreq())
	if !ok {
		return RegionResult{AnchorType: -1}
	}
	cands := city.POIsOfType(tl)
	dom := make([]bool, len(cands))
	dominanceFlags(svc, cands, f, r, dom)
	var survivors []poi.POI
	for i, p := range cands {
		if dom[i] {
			survivors = append(survivors, p)
		}
	}
	res := RegionResult{AnchorType: tl, Candidates: survivors}
	if len(survivors) == 1 {
		res.Success = true
		res.Anchor = survivors[0]
	}
	return res
}
