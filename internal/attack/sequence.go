package attack

import (
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// SequenceResult reports the multi-release trajectory attack.
type SequenceResult struct {
	// Candidates[i] holds the surviving anchor candidates of release i
	// after constraint propagation.
	Candidates [][]poi.POI
	// Success[i] reports per-release success (exactly one survivor).
	Success []bool
	// Predicted[i] is the regressor's distance estimate between releases
	// i and i+1 (length len(releases)−1).
	Predicted []float64
	// Rounds is the number of propagation sweeps until fixpoint.
	Rounds int
}

// SuccessCount returns the number of uniquely re-identified releases.
func (r SequenceResult) SuccessCount() int {
	n := 0
	for _, s := range r.Success {
		if s {
			n++
		}
	}
	return n
}

// TrajectorySequence generalizes the two-release attack of Section IV-B
// to an arbitrary run of successive releases (the paper's Eq. 6): it runs
// the single-release Region attack on every release, predicts the
// distance between each adjacent pair, and then enforces arc consistency
// along the chain — a candidate of release i survives only if both
// neighbouring releases still have a candidate at a compatible distance.
// Propagation repeats until no set shrinks; eliminating a candidate at
// one end can cascade down the whole chain, which is what makes long
// sessions strictly more revealing than isolated pairs.
func TrajectorySequence(svc *gsp.Service, est *DistanceEstimator, releases []Release, cfg TrajectoryConfig) SequenceResult {
	n := len(releases)
	res := SequenceResult{
		Candidates: make([][]poi.POI, n),
		Success:    make([]bool, n),
	}
	if n == 0 {
		return res
	}
	for i, rel := range releases {
		res.Candidates[i] = Region(svc, rel.F, rel.R).Candidates
	}
	if n == 1 {
		res.Success[0] = len(res.Candidates[0]) == 1
		return res
	}

	res.Predicted = make([]float64, n-1)
	tols := make([]float64, n-1)
	for i := 0; i+1 < n; i++ {
		a, b := releases[i], releases[i+1]
		res.Predicted[i] = est.Predict(b.T.Sub(a.T), a.F, b.F, a.T)
		tols[i] = cfg.ToleranceMeters + cfg.ToleranceFrac*res.Predicted[i]
	}

	// Arc-consistency sweeps until fixpoint. Each sweep is O(Σ|C_i|·|C_j|)
	// over adjacent pairs; candidate sets are tiny (rare-type POIs).
	for changed := true; changed; res.Rounds++ {
		changed = false
		for i := range res.Candidates {
			kept := res.Candidates[i][:0]
			for _, c := range res.Candidates[i] {
				// A candidate survives while at least one adjacent arc
				// supports it. Requiring every arc would let a single
				// badly-predicted distance cascade and evict true anchors
				// along the whole chain; one-arc support keeps the filter
				// robust to regressor outliers while still pruning
				// candidates no neighbour can explain.
				arcs, supported := 0, 0
				if i > 0 {
					arcs++
					if hasCompatible(c, res.Candidates[i-1], res.Predicted[i-1], tols[i-1], releases[i].R) {
						supported++
					}
				}
				if i+1 < n {
					arcs++
					if hasCompatible(c, res.Candidates[i+1], res.Predicted[i], tols[i], releases[i].R) {
						supported++
					}
				}
				if arcs == 0 || supported > 0 {
					kept = append(kept, c)
				}
			}
			if len(kept) != len(res.Candidates[i]) {
				changed = true
			}
			res.Candidates[i] = kept
		}
	}
	for i, c := range res.Candidates {
		res.Success[i] = len(c) == 1
	}
	return res
}

func hasCompatible(c poi.POI, others []poi.POI, pred, tol, r float64) bool {
	for _, o := range others {
		if compatible(c.Pos, o.Pos, pred, tol, r) {
			return true
		}
	}
	return false
}
