package attack

import (
	"testing"
	"time"

	"poiagg/internal/trajgen"
)

// releaseRun converts a trajectory prefix into a run of releases.
func releaseRun(t *testing.T, tr trajgen.Trajectory, r float64, maxLen int) []Release {
	t.Helper()
	_, svc := fixture(t)
	var out []Release
	var prev *Release
	for _, pt := range tr.Points {
		f := svc.Freq(pt.Pos, r)
		if prev != nil {
			gap := pt.T.Sub(prev.T)
			if gap <= 0 || gap > 10*time.Minute || f.Equal(prev.F) {
				continue
			}
		}
		rel := Release{F: f, T: pt.T, R: r}
		out = append(out, rel)
		prev = &out[len(out)-1]
		if len(out) >= maxLen {
			break
		}
	}
	return out
}

func TestTrajectorySequenceEmptyAndSingle(t *testing.T) {
	city, svc := fixture(t)
	train := taxiSegments(t, 61, 30)
	est, err := TrainDistanceEstimator(svc, train, 800, DefaultTrajectoryConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := TrajectorySequence(svc, est, nil, DefaultTrajectoryConfig())
	if len(res.Candidates) != 0 || res.SuccessCount() != 0 {
		t.Errorf("empty sequence: %+v", res)
	}
	l := city.RandomLocations(1, 62)[0]
	one := []Release{{F: svc.Freq(l, 800), R: 800}}
	res = TrajectorySequence(svc, est, one, DefaultTrajectoryConfig())
	if len(res.Candidates) != 1 {
		t.Fatalf("single release: %d candidate sets", len(res.Candidates))
	}
	want := Region(svc, one[0].F, 800).Success
	if res.Success[0] != want {
		t.Errorf("single-release success %v, Region says %v", res.Success[0], want)
	}
}

func TestTrajectorySequenceAtLeastPairwise(t *testing.T) {
	// A full run must re-identify at least as many releases as treating
	// the releases independently (propagation only removes impossible
	// candidates).
	city, svc := fixture(t)
	const r = 800.0
	train := taxiSegments(t, 63, 40)
	cfg := DefaultTrajectoryConfig()
	est, err := TrainDistanceEstimator(svc, train, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := trajgen.DefaultTaxiParams(64)
	p.NumTaxis = 25
	p.PointsPerTaxi = 30
	trajs, err := trajgen.Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	var totalSingle, totalSeq, runs int
	for _, tr := range trajs {
		rels := releaseRun(t, tr, r, 6)
		if len(rels) < 3 {
			continue
		}
		runs++
		for _, rel := range rels {
			if Region(svc, rel.F, r).Success {
				totalSingle++
			}
		}
		res := TrajectorySequence(svc, est, rels, cfg)
		totalSeq += res.SuccessCount()
		for i, c := range res.Candidates {
			if res.Success[i] != (len(c) == 1) {
				t.Fatal("Success flag inconsistent with candidate set")
			}
		}
		if len(res.Predicted) != len(rels)-1 {
			t.Fatalf("predicted distances %d for %d releases", len(res.Predicted), len(rels))
		}
		if res.Rounds < 1 {
			t.Error("propagation must run at least one sweep")
		}
	}
	if runs == 0 {
		t.Skip("no runs long enough")
	}
	if totalSeq < totalSingle {
		t.Errorf("sequence attack %d below single-release %d over %d runs", totalSeq, totalSingle, runs)
	}
	t.Logf("runs=%d single=%d sequence=%d", runs, totalSingle, totalSeq)
}

func TestTrajectorySequenceKeepsTrueAnchors(t *testing.T) {
	// When every release in a run was already unique, propagation must
	// keep them all (true anchors are mutually compatible in the vast
	// majority of cases).
	city, svc := fixture(t)
	const r = 800.0
	train := taxiSegments(t, 65, 40)
	cfg := DefaultTrajectoryConfig()
	est, err := TrainDistanceEstimator(svc, train, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := trajgen.DefaultTaxiParams(66)
	p.NumTaxis = 25
	trajs, err := trajgen.Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	kept, lost := 0, 0
	for _, tr := range trajs {
		rels := releaseRun(t, tr, r, 5)
		if len(rels) < 3 {
			continue
		}
		allUnique := true
		for _, rel := range rels {
			if !Region(svc, rel.F, r).Success {
				allUnique = false
				break
			}
		}
		if !allUnique {
			continue
		}
		res := TrajectorySequence(svc, est, rels, cfg)
		if res.SuccessCount() == len(rels) {
			kept++
		} else {
			lost++
		}
	}
	if kept+lost == 0 {
		t.Skip("no all-unique runs in sample")
	}
	if lost > (kept+lost)/5 {
		t.Errorf("propagation broke %d of %d all-unique runs", lost, kept+lost)
	}
}
