package attack

import (
	"sort"

	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// This file retains the pre-parallel, allocating implementations of the
// region and fine-grained attacks, verbatim. They are the ground truth
// the differential tests compare the pooled kernels against
// (TestRegionParallelMatchesSerial, TestFineGrainedParallelMatchesSerial
// — including Candidates ordering) and the baseline side of
// BenchmarkRegionPruneParallel. They are not exported: production code
// always goes through Region/FineGrained.

// regionSerial is the single-threaded reference for Region: one fresh
// Freq vector per candidate, pruned in POI order.
func regionSerial(svc *gsp.Service, f poi.FreqVector, r float64) RegionResult {
	city := svc.City()
	tl, ok := poi.MostInfrequentPresent(f, city.CityFreq())
	if !ok {
		return RegionResult{AnchorType: -1}
	}
	var survivors []poi.POI
	for _, p := range city.POIsOfType(tl) {
		if svc.Freq(p.Pos, 2*r).Dominates(f) {
			survivors = append(survivors, p)
		}
	}
	res := RegionResult{AnchorType: tl, Candidates: survivors}
	if len(survivors) == 1 {
		res.Success = true
		res.Anchor = survivors[0]
	}
	return res
}

// fineGrainedSerial is the single-threaded reference for FineGrained,
// built on regionSerial and per-candidate Freq probes.
func fineGrainedSerial(svc *gsp.Service, f poi.FreqVector, r float64, cfg FineGrainedConfig) FineGrainedResult {
	if cfg.MaxAux <= 0 {
		cfg.MaxAux = DefaultFineGrainedConfig().MaxAux
	}
	res := FineGrainedResult{RegionResult: regionSerial(svc, f, r)}
	if !res.Success {
		return res
	}
	anchor := res.Anchor
	near := svc.Query(anchor.Pos, 2*r)
	fAnchor := svc.Freq(anchor.Pos, 2*r)
	fdiff := fAnchor.Sub(f)

	byType := make(map[poi.TypeID][]poi.POI)
	for _, p := range near {
		byType[p.Type] = append(byType[p.Type], p)
	}

	type typeDiff struct {
		t    poi.TypeID
		diff int
	}
	cands := make([]typeDiff, 0, len(f))
	for i, n := range f {
		t := poi.TypeID(i)
		if n <= 0 || t == res.AnchorType {
			continue
		}
		cands = append(cands, typeDiff{t: t, diff: fdiff[i]})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].diff != cands[b].diff {
			return cands[a].diff < cands[b].diff
		}
		return cands[a].t < cands[b].t
	})

	aux := make([]poi.POI, 0, cfg.MaxAux)
collect:
	for _, cd := range cands {
		pois := byType[cd.t]
		need := f[cd.t]
		var sound []poi.POI
		if cd.diff == 0 {
			sound = pois
		} else {
			survivors := make([]poi.POI, 0, len(pois))
			for _, p := range pois {
				if svc.Freq(p.Pos, 2*r).Dominates(f) {
					survivors = append(survivors, p)
				}
			}
			if len(survivors) != need {
				continue // ambiguous type: some survivors may be outside r
			}
			sound = survivors
		}
		for _, p := range sound {
			aux = append(aux, p)
			if len(aux) >= cfg.MaxAux {
				break collect
			}
		}
	}
	res.AuxAnchors = aux
	res.Area = geo.DisksIntersectionArea(res.FeasibleDisks(r))
	return res
}
