package attack

import (
	"fmt"
	"time"

	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/ml"
	"poiagg/internal/poi"
	"poiagg/internal/trajgen"
)

// TrajectoryConfig configures the trajectory-uniqueness attack.
type TrajectoryConfig struct {
	// Gamma is the RBF width of the distance regressor.
	Gamma float64
	// SVR configures regressor training.
	SVR ml.SVRConfig
	// ToleranceMeters is the base acceptance band around the predicted
	// distance when filtering candidate pairs.
	ToleranceMeters float64
	// ToleranceFrac widens the band proportionally to the predicted
	// distance.
	ToleranceFrac float64
}

// DefaultTrajectoryConfig returns a balanced configuration.
func DefaultTrajectoryConfig() TrajectoryConfig {
	return TrajectoryConfig{
		Gamma:           0.05,
		SVR:             ml.SVRConfig{C: 10, Epsilon: 0.02, Epochs: 150, Tol: 1e-5},
		ToleranceMeters: 250,
		ToleranceFrac:   0.25,
	}
}

// DistanceEstimator predicts the distance between the locations of two
// successive releases from observable metadata: the duration between the
// releases, the L1 distance of the released vectors, and the hour-of-day
// and day-of-week of the first release (one-hot encoded), exactly the
// feature set of Section IV-B.
type DistanceEstimator struct {
	scaler *ml.StandardScaler
	svr    *ml.SVR
	// distScale normalizes regression targets to keep the dual
	// well-conditioned; predictions are de-normalized on the way out.
	distScale float64
}

// releaseFeatures builds the regressor's feature row.
func releaseFeatures(dur time.Duration, l1 int, first time.Time) []float64 {
	row := make([]float64, 2+24+7)
	row[0] = dur.Seconds()
	row[1] = float64(l1)
	row[2+first.Hour()] = 1
	row[2+24+int(first.Weekday())] = 1
	return row
}

// TrainDistanceEstimator fits the SVR on ground-truth segments: the
// adversary can harvest such supervision from its own devices or any
// users whose locations it already knows.
func TrainDistanceEstimator(svc *gsp.Service, segs []trajgen.Segment, r float64, cfg TrajectoryConfig) (*DistanceEstimator, error) {
	if len(segs) < 10 {
		return nil, fmt.Errorf("attack: TrainDistanceEstimator: need ≥10 segments, got %d", len(segs))
	}
	x := make([][]float64, len(segs))
	y := make([]float64, len(segs))
	maxDist := 0.0
	for i, s := range segs {
		f1 := svc.Freq(s.From.Pos, r)
		f2 := svc.Freq(s.To.Pos, r)
		x[i] = releaseFeatures(s.Duration(), f1.L1Dist(f2), s.From.T)
		y[i] = s.Distance()
		if y[i] > maxDist {
			maxDist = y[i]
		}
	}
	if maxDist == 0 {
		maxDist = 1
	}
	for i := range y {
		y[i] /= maxDist
	}
	scaler, err := ml.FitScaler(x)
	if err != nil {
		return nil, fmt.Errorf("attack: TrainDistanceEstimator: %w", err)
	}
	scaled := scaler.TransformAll(x)
	gram := ml.NewGram(scaled, ml.RBF{Gamma: cfg.Gamma})
	svr, err := ml.TrainSVR(gram, y, cfg.SVR)
	if err != nil {
		return nil, fmt.Errorf("attack: TrainDistanceEstimator: %w", err)
	}
	return &DistanceEstimator{scaler: scaler, svr: svr, distScale: maxDist}, nil
}

// Predict estimates the distance in meters between the locations of two
// successive releases.
func (e *DistanceEstimator) Predict(dur time.Duration, f1, f2 poi.FreqVector, first time.Time) float64 {
	row := e.scaler.Transform(releaseFeatures(dur, f1.L1Dist(f2), first))
	d := e.svr.Predict(row) * e.distScale
	if d < 0 {
		d = 0
	}
	return d
}

// Release is one observed POI-aggregate release with its metadata.
type Release struct {
	F poi.FreqVector
	T time.Time
	R float64
}

// TrajectoryResult reports a two-release attack.
type TrajectoryResult struct {
	// First and Second are the surviving anchor candidates for each
	// release after pair filtering.
	First, Second []poi.POI
	// SuccessFirst/SuccessSecond report per-release success (exactly one
	// surviving candidate).
	SuccessFirst, SuccessSecond bool
	// PredictedDist is the regressor's distance estimate in meters.
	PredictedDist float64
}

// Trajectory runs the trajectory-uniqueness attack on two successive
// releases of the same user: it runs the single-release Region attack on
// both, predicts the distance between the two locations, and discards
// every candidate that cannot be paired with a candidate of the other
// release at a compatible distance. Candidates unreachable from the other
// release's candidate set are pruned, which is how a release that was
// ambiguous alone can become unique.
func Trajectory(svc *gsp.Service, est *DistanceEstimator, first, second Release, cfg TrajectoryConfig) TrajectoryResult {
	res1 := Region(svc, first.F, first.R)
	res2 := Region(svc, second.F, second.R)
	pred := est.Predict(second.T.Sub(first.T), first.F, second.F, first.T)
	tol := cfg.ToleranceMeters + cfg.ToleranceFrac*pred

	keep1 := make([]poi.POI, 0, len(res1.Candidates))
	for _, a := range res1.Candidates {
		ok := false
		for _, b := range res2.Candidates {
			if compatible(a.Pos, b.Pos, pred, tol, first.R) {
				ok = true
				break
			}
		}
		if ok {
			keep1 = append(keep1, a)
		}
	}
	keep2 := make([]poi.POI, 0, len(res2.Candidates))
	for _, b := range res2.Candidates {
		ok := false
		for _, a := range res1.Candidates {
			if compatible(a.Pos, b.Pos, pred, tol, first.R) {
				ok = true
				break
			}
		}
		if ok {
			keep2 = append(keep2, b)
		}
	}
	return TrajectoryResult{
		First:         keep1,
		Second:        keep2,
		SuccessFirst:  len(keep1) == 1,
		SuccessSecond: len(keep2) == 1,
		PredictedDist: pred,
	}
}

// compatible reports whether two anchor positions are consistent with the
// predicted inter-location distance. Each anchor localizes its release
// only to radius r, so the anchor distance may deviate from the true
// location distance by up to 2r in addition to the regression tolerance;
// using the full 2r keeps the filter sound (it never discards a true
// anchor pair whose predicted distance is within tolerance).
func compatible(a, b geo.Point, pred, tol, r float64) bool {
	d := geo.Dist(a, b)
	slack := tol + 2*r
	return d >= pred-slack && d <= pred+slack
}
