package attack

import (
	"testing"
	"time"

	"poiagg/internal/stats"
	"poiagg/internal/trajgen"
)

func taxiSegments(t *testing.T, seed uint64, numTaxis int) []trajgen.Segment {
	t.Helper()
	city, _ := fixture(t)
	p := trajgen.DefaultTaxiParams(seed)
	p.NumTaxis = numTaxis
	p.PointsPerTaxi = 40
	trajs, err := trajgen.Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	segs := trajgen.Segments(trajs, 10*time.Minute, 100)
	if len(segs) < 50 {
		t.Fatalf("only %d segments", len(segs))
	}
	return segs
}

func TestDistanceEstimatorBeatsMeanBaseline(t *testing.T) {
	_, svc := fixture(t)
	const r = 800.0
	train := taxiSegments(t, 41, 30)
	test := taxiSegments(t, 42, 10)
	cfg := DefaultTrajectoryConfig()
	est, err := TrainDistanceEstimator(svc, train, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pred, truth []float64
	for _, s := range test {
		f1 := svc.Freq(s.From.Pos, r)
		f2 := svc.Freq(s.To.Pos, r)
		pred = append(pred, est.Predict(s.Duration(), f1, f2, s.From.T))
		truth = append(truth, s.Distance())
	}
	mae := stats.MAE(pred, truth)
	// Baseline: always predict the training-set mean distance.
	meanTrain := 0.0
	for _, s := range train {
		meanTrain += s.Distance()
	}
	meanTrain /= float64(len(train))
	base := make([]float64, len(truth))
	for i := range base {
		base[i] = meanTrain
	}
	baseMAE := stats.MAE(base, truth)
	if mae >= baseMAE {
		t.Errorf("SVR MAE %.0f not better than mean-baseline MAE %.0f", mae, baseMAE)
	}
	for _, p := range pred {
		if p < 0 {
			t.Errorf("negative predicted distance %v", p)
		}
	}
}

func TestTrainDistanceEstimatorValidation(t *testing.T) {
	_, svc := fixture(t)
	if _, err := TrainDistanceEstimator(svc, nil, 800, DefaultTrajectoryConfig()); err == nil {
		t.Error("empty segments accepted")
	}
}

func TestTrajectoryAttackImprovesSuccess(t *testing.T) {
	_, svc := fixture(t)
	const r = 800.0
	train := taxiSegments(t, 43, 40)
	test := taxiSegments(t, 44, 25)
	if len(test) > 120 {
		test = test[:120]
	}
	cfg := DefaultTrajectoryConfig()
	est, err := TrainDistanceEstimator(svc, train, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var singleSucc, pairSucc, total int
	for _, s := range test {
		f1 := svc.Freq(s.From.Pos, r)
		f2 := svc.Freq(s.To.Pos, r)
		if f1.Equal(f2) {
			continue // the paper discards unchanged releases
		}
		total += 2
		if Region(svc, f1, r).Success {
			singleSucc++
		}
		if Region(svc, f2, r).Success {
			singleSucc++
		}
		res := Trajectory(svc, est,
			Release{F: f1, T: s.From.T, R: r},
			Release{F: f2, T: s.To.T, R: r},
			cfg)
		if res.SuccessFirst {
			pairSucc++
		}
		if res.SuccessSecond {
			pairSucc++
		}
		if res.PredictedDist < 0 {
			t.Fatalf("negative predicted distance")
		}
	}
	if total == 0 {
		t.Fatal("no usable segments")
	}
	if pairSucc < singleSucc {
		t.Errorf("pair attack succeeded %d/%d vs single %d/%d — no gain",
			pairSucc, total, singleSucc, total)
	}
	t.Logf("single %d/%d, pair %d/%d", singleSucc, total, pairSucc, total)
}

func TestTrajectoryNeverLosesTrueAnchorPair(t *testing.T) {
	// Filtering may only remove candidates; when both single attacks
	// succeed, the pair attack must keep those unique candidates (the
	// true anchors are compatible with the true distance within the 2r
	// slack, and the regressor tolerance absorbs estimation error in the
	// vast majority of cases).
	_, svc := fixture(t)
	const r = 800.0
	train := taxiSegments(t, 45, 40)
	test := taxiSegments(t, 46, 20)
	cfg := DefaultTrajectoryConfig()
	est, err := TrainDistanceEstimator(svc, train, r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kept, lost := 0, 0
	for _, s := range test {
		f1 := svc.Freq(s.From.Pos, r)
		f2 := svc.Freq(s.To.Pos, r)
		if f1.Equal(f2) {
			continue
		}
		r1 := Region(svc, f1, r)
		r2 := Region(svc, f2, r)
		if !r1.Success || !r2.Success {
			continue
		}
		res := Trajectory(svc, est,
			Release{F: f1, T: s.From.T, R: r},
			Release{F: f2, T: s.To.T, R: r},
			cfg)
		if res.SuccessFirst && res.SuccessSecond {
			kept++
		} else {
			lost++
		}
	}
	if kept == 0 && lost == 0 {
		t.Skip("no doubly-successful segments in sample")
	}
	if lost > kept/5 {
		t.Errorf("pair filtering lost %d of %d doubly-successful cases", lost, kept+lost)
	}
}
