package budget

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkLedgerSpendParallel prices the sharding ablation: the default
// power-of-two-sharded ledger against the WithShards(1) single-mutex
// reference, all goroutines spending concurrently across many
// principals. Tracked by make bench-core / BENCH_core.json.
func BenchmarkLedgerSpendParallel(b *testing.B) {
	const principals = 1024
	names := make([]string, principals)
	for i := range names {
		names[i] = fmt.Sprintf("user-%04d", i)
	}
	policy := Policy{LifetimeEps: 1e12, Window: time.Hour, WindowEps: 1e12}
	for _, cfg := range []struct {
		name   string
		shards []Option
	}{
		{"sharded", nil},
		{"single", []Option{WithShards(1)}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			l, err := New(policy, cfg.shards...)
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Uint64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := next.Add(1)
				for pb.Next() {
					i++
					if _, err := l.Spend(names[i%principals], 1e-9, 0); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkLedgerSnapshotReplay prices a cold Open over a spend log:
// tail validation, per-principal seq sort, and replay. Tracked by make
// bench-core / BENCH_core.json.
func BenchmarkLedgerSnapshotReplay(b *testing.B) {
	const (
		principals = 200
		spendsEach = 20
	)
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var buf []byte
	for s := 0; s < spendsEach; s++ {
		for p := 0; p < principals; p++ {
			line, err := json.Marshal(logRec{
				P:   fmt.Sprintf("user-%04d", p),
				Seq: uint64(s + 1),
				T:   t0.Add(time.Duration(s) * time.Minute),
				Eps: 0.001,
			})
			if err != nil {
				b.Fatal(err)
			}
			buf = append(append(buf, line...), '\n')
		}
	}
	dir := b.TempDir()
	logPath := filepath.Join(dir, logName)
	policy := Policy{LifetimeEps: 1e9, Window: 24 * time.Hour, WindowEps: 1e9}
	clk := func() time.Time { return t0.Add(spendsEach * time.Minute) }

	b.ReportAllocs()
	for b.Loop() {
		// Rewriting the log each round keeps every Open a full replay
		// (Close would otherwise fold it into the snapshot).
		if err := os.WriteFile(logPath, buf, 0o644); err != nil {
			b.Fatal(err)
		}
		os.Remove(filepath.Join(dir, snapshotName))
		l, err := Open(policy, dir, WithClock(clk))
		if err != nil {
			b.Fatal(err)
		}
		if got := l.Principals(); got != principals {
			b.Fatalf("replayed %d principals, want %d", got, principals)
		}
		l.store.mu.Lock()
		l.store.logF.Close() // close the handle without snapshotting
		l.store.logF = nil
		l.store.mu.Unlock()
	}
}
