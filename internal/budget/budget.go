// Package budget is the multi-tenant privacy-budget ledger of the
// serving stack. It generalizes the single-user dp.Accountant into a
// sharded map of per-principal accounts so a production LBS deployment
// can bound every user's cumulative privacy loss server-side — the
// missing piece between Theorem 4's per-release (ε, δ) guarantee and an
// end-to-end one under the paper's §V trajectory attacks, which exploit
// exactly the *successive* releases an unmetered service hands out.
//
// A Ledger enforces two composable policies per principal:
//
//   - a hard lifetime budget (basic sequential composition, like
//     dp.Accountant), and
//   - a sliding-window refill budget — at most (WindowEps, WindowDelta)
//     spent inside any window of the configured length — so long-lived
//     principals keep releasing at a bounded rate instead of being
//     locked out forever.
//
// Time is injected (WithClock), so the window policy and idle eviction
// are tested with a deterministic fake clock and never sleep. Memory is
// bounded under millions of principals by TTL-based idle eviction:
// accounts idle past IdleTTL are demoted to a compact retired record
// (lifetime totals only — the irreducible floor for a sound lifetime
// accountant) and revived on their next spend. State survives restarts
// via JSON snapshots plus an append-only spend log (persist.go).
//
// All methods are safe for concurrent use; the hot path takes one shard
// mutex plus a few atomics.
package budget

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"poiagg/internal/obs"
)

// Clock supplies the ledger's notion of now. Tests inject fakes.
type Clock func() time.Time

// Denial classifies why a spend was refused.
type Denial string

// Denial reasons.
const (
	// DenyLifetime: the principal's hard lifetime budget is exhausted;
	// no amount of waiting refills it.
	DenyLifetime Denial = "lifetime"
	// DenyWindow: the sliding-window budget is exhausted; the spend
	// becomes admissible again after Decision.RetryAfter.
	DenyWindow Denial = "window"
)

// Policy configures every principal's budget. The zero value is invalid;
// LifetimeEps must be positive.
type Policy struct {
	// LifetimeEps and LifetimeDelta bound the principal's total privacy
	// loss under basic sequential composition. LifetimeEps must be > 0;
	// LifetimeDelta must be in [0, 1).
	LifetimeEps   float64
	LifetimeDelta float64

	// Window is the sliding-window length; 0 disables the window policy.
	Window time.Duration
	// WindowEps and WindowDelta bound the spend inside any Window-long
	// interval. Required positive (eps) when Window > 0. WindowDelta 0
	// leaves delta un-windowed.
	WindowEps   float64
	WindowDelta float64

	// IdleTTL demotes accounts idle this long to compact retired records
	// on EvictIdle. 0 disables eviction. When both Window and IdleTTL
	// are set, IdleTTL must be ≥ Window so demotion never forgets live
	// window entries (eviction is lossless).
	IdleTTL time.Duration
}

// Validate reports whether the policy is usable.
func (p Policy) Validate() error {
	if p.LifetimeEps <= 0 {
		return fmt.Errorf("budget: lifetime epsilon must be positive, got %v", p.LifetimeEps)
	}
	if p.LifetimeDelta < 0 || p.LifetimeDelta >= 1 {
		return fmt.Errorf("budget: lifetime delta must be in [0,1), got %v", p.LifetimeDelta)
	}
	if p.Window < 0 {
		return fmt.Errorf("budget: window must be non-negative, got %v", p.Window)
	}
	if p.Window > 0 && p.WindowEps <= 0 {
		return fmt.Errorf("budget: window epsilon must be positive with a window, got %v", p.WindowEps)
	}
	if p.WindowDelta < 0 || p.WindowDelta >= 1 {
		return fmt.Errorf("budget: window delta must be in [0,1), got %v", p.WindowDelta)
	}
	if p.IdleTTL < 0 {
		return fmt.Errorf("budget: idle TTL must be non-negative, got %v", p.IdleTTL)
	}
	if p.IdleTTL > 0 && p.Window > 0 && p.IdleTTL < p.Window {
		return fmt.Errorf("budget: idle TTL %v must be >= window %v so eviction stays lossless",
			p.IdleTTL, p.Window)
	}
	return nil
}

// Decision reports the outcome of a spend (or a Status dry-run) with the
// principal's post-decision accounting — everything a 429 body or an
// admin endpoint needs.
type Decision struct {
	Principal string
	Allowed   bool
	// Denial is set when Allowed is false.
	Denial Denial
	// SpentEps/SpentDelta are the lifetime totals, including this spend
	// when it was allowed.
	SpentEps   float64
	SpentDelta float64
	// RemainingEps/RemainingDelta are the lifetime budget left.
	RemainingEps   float64
	RemainingDelta float64
	// WindowRemainingEps/Delta are the sliding-window budget left right
	// now (equal to the lifetime remainders when no window is set).
	WindowRemainingEps   float64
	WindowRemainingDelta float64
	// Releases counts the principal's granted releases.
	Releases uint64
	// RetryAfter is how long until a window-denied spend of the same
	// size becomes admissible; 0 for allowed or lifetime-denied spends.
	RetryAfter time.Duration
}

// spendRec is one granted spend inside the sliding window.
type spendRec struct {
	t          time.Time
	eps, delta float64
}

// account is one principal's live ledger entry.
type account struct {
	seq        uint64 // mutation counter, threads the persistence log
	spentEps   float64
	spentDelta float64
	releases   uint64
	last       time.Time  // last touch, drives idle eviction
	window     []spendRec // granted spends young enough to count, oldest first
}

// retired is the compact demotion of an idle account: lifetime totals
// only. Reviving one restores a full account with an empty window —
// lossless because eviction requires the window to be empty.
type retired struct {
	seq        uint64
	spentEps   float64
	spentDelta float64
	releases   uint64
}

// shard is one lock domain of the ledger.
type shard struct {
	mu       sync.Mutex
	accounts map[string]*account
	retired  map[string]retired
}

// Metric names exported by ExportMetrics.
const (
	// MetricSpends counts granted spends.
	MetricSpends = "budget.spends"
	// MetricDenies counts refused spends (all reasons).
	MetricDenies = "budget.denies"
	// MetricDeniesLifetime counts refusals against the lifetime budget.
	MetricDeniesLifetime = "budget.denies.lifetime"
	// MetricEvictions counts idle accounts demoted to retired records.
	MetricEvictions = "budget.evictions"
	// MetricRevivals counts retired principals restored by a new spend.
	MetricRevivals = "budget.revivals"
	// MetricPersistErrors counts spend-log or snapshot write failures.
	MetricPersistErrors = "budget.persist.errors"
	// MetricPrincipals gauges live (non-retired) accounts, pulled at
	// snapshot time.
	MetricPrincipals = "budget.principals"
	// MetricRetired gauges retired records, pulled at snapshot time.
	MetricRetired = "budget.retired"
	// MetricShards gauges the shard count.
	MetricShards = "budget.shards"
	// LatencyDecision names the decision-latency histogram in the
	// registry snapshot.
	LatencyDecision = "budget.decision"
)

// Ledger is the concurrent multi-tenant budget ledger. Create with New
// (in-memory) or Open (persistent).
type Ledger struct {
	policy Policy
	clock  Clock
	shards []shard
	mask   uint64

	store         *store // nil when in-memory
	snapshotEvery int    // auto-snapshot after this many logged records

	spends, denies, deniesLifetime obs.Counter
	evictions, revivals            obs.Counter
	persistErrs                    obs.Counter
	decLat                         obs.Histogram
}

// Option customizes a Ledger.
type Option func(*Ledger)

// WithClock injects the time source (default time.Now). The clock must
// be safe for concurrent use and should return UTC times when the ledger
// is persistent, so snapshots round-trip byte-identically.
func WithClock(c Clock) Option {
	return func(l *Ledger) {
		if c != nil {
			l.clock = c
		}
	}
}

// WithShards sets the lock-shard count, rounded up to a power of two
// (default: sized to ~2× GOMAXPROCS like the GSP freq cache, capped at
// 128). 1 yields the single-mutex reference configuration the
// BenchmarkLedgerSpendParallel ablation compares against.
func WithShards(n int) Option {
	return func(l *Ledger) {
		if n < 1 {
			return
		}
		p := 1
		for p < n && p < 128 {
			p <<= 1
		}
		l.shards = make([]shard, p)
		l.mask = uint64(p - 1)
	}
}

// WithSnapshotEvery makes a persistent ledger write a snapshot (and
// truncate the spend log) automatically after every n logged mutations,
// bounding replay work after a crash. 0 (the default) snapshots only on
// explicit WriteSnapshot/Close. No effect on in-memory ledgers.
func WithSnapshotEvery(n int) Option {
	return func(l *Ledger) {
		if n >= 0 {
			l.snapshotEvery = n
		}
	}
}

// New returns an in-memory ledger enforcing policy for every principal.
func New(policy Policy, opts ...Option) (*Ledger, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	l := &Ledger{policy: policy, clock: time.Now}
	defaultShards(l)
	for _, opt := range opts {
		opt(l)
	}
	for i := range l.shards {
		l.shards[i].accounts = make(map[string]*account)
		l.shards[i].retired = make(map[string]retired)
	}
	return l, nil
}

// Policy returns the ledger's policy.
func (l *Ledger) Policy() Policy { return l.policy }

// hashPrincipal is FNV-1a 64 over the principal name, finished with the
// splitmix64 mixer so short sequential names spread across shards.
func hashPrincipal(p string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= prime64
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func (l *Ledger) shardFor(principal string) *shard {
	return &l.shards[hashPrincipal(principal)&l.mask]
}

// Spend charges one (eps, delta) release to the principal, creating (or
// reviving) its account on first use. A refusal records nothing; the
// returned Decision carries the reason, the remaining budget, and — for
// window denials — how long until the same spend would be admitted.
func (l *Ledger) Spend(principal string, eps, delta float64) (Decision, error) {
	if principal == "" {
		return Decision{}, fmt.Errorf("budget: Spend: empty principal")
	}
	if eps <= 0 {
		return Decision{}, fmt.Errorf("budget: Spend: epsilon must be positive, got %v", eps)
	}
	if delta < 0 || delta >= 1 {
		return Decision{}, fmt.Errorf("budget: Spend: delta must be in [0,1), got %v", delta)
	}
	start := time.Now()
	// UTC so persisted timestamps round-trip byte-identically; latency
	// below uses the real clock, never the injected one.
	now := l.clock().UTC()

	s := l.shardFor(principal)
	s.mu.Lock()
	acc, live, revived := s.peek(principal)
	dec, rec := l.decide(acc, principal, eps, delta, now)
	if dec.Allowed && !live {
		// A principal materializes (and a retired record demotes) only on
		// a granted, logged mutation: denied spends leave zero trace, so
		// log replay reconstructs the ledger byte-for-byte.
		s.install(principal, acc, revived)
	}
	s.mu.Unlock()

	if dec.Allowed {
		if revived {
			l.revivals.Inc()
		}
		l.spends.Inc()
		if l.store != nil {
			l.appendRec(rec)
		}
	} else {
		l.denies.Inc()
		if dec.Denial == DenyLifetime {
			l.deniesLifetime.Inc()
		}
	}
	l.decLat.Observe(time.Since(start))
	return dec, nil
}

// decide applies both policies and mutates acc on success. Caller holds
// the shard lock. The returned logRec is valid only when allowed.
func (l *Ledger) decide(acc *account, principal string, eps, delta float64, now time.Time) (Decision, logRec) {
	const slack = 1e-12 // absorb float accumulation, like dp.Accountant
	p := l.policy

	// Sum the live window by filtering, without pruning: a denied spend
	// must not mutate the account (replay never sees denials).
	var winEps, winDelta float64
	for _, r := range acc.window {
		if r.t.Add(p.Window).After(now) {
			winEps += r.eps
			winDelta += r.delta
		}
	}

	dec := Decision{Principal: principal}
	switch {
	case acc.spentEps+eps > p.LifetimeEps+slack,
		acc.spentDelta+delta > p.LifetimeDelta+slack:
		dec.Denial = DenyLifetime
	case p.Window > 0 && (winEps+eps > p.WindowEps+slack ||
		(p.WindowDelta > 0 && winDelta+delta > p.WindowDelta+slack)):
		dec.Denial = DenyWindow
		dec.RetryAfter = l.retryAfter(acc, eps, delta, winEps, winDelta, now)
	default:
		dec.Allowed = true
		acc.seq++
		acc.spentEps += eps
		acc.spentDelta += delta
		acc.releases++
		acc.last = now
		if p.Window > 0 {
			l.pruneWindow(acc, now)
			acc.window = append(acc.window, spendRec{t: now, eps: eps, delta: delta})
			winEps += eps
			winDelta += delta
		}
	}

	dec.SpentEps = acc.spentEps
	dec.SpentDelta = acc.spentDelta
	dec.Releases = acc.releases
	dec.RemainingEps = p.LifetimeEps - acc.spentEps
	dec.RemainingDelta = p.LifetimeDelta - acc.spentDelta
	dec.WindowRemainingEps = dec.RemainingEps
	dec.WindowRemainingDelta = dec.RemainingDelta
	if p.Window > 0 {
		dec.WindowRemainingEps = min(dec.WindowRemainingEps, p.WindowEps-winEps)
		if p.WindowDelta > 0 {
			dec.WindowRemainingDelta = min(dec.WindowRemainingDelta, p.WindowDelta-winDelta)
		}
	}
	return dec, logRec{P: principal, Seq: acc.seq, T: now, Eps: eps, Delta: delta}
}

// retryAfter walks the live window from its oldest entry and reports
// when enough budget will have slid out for an (eps, delta) spend to
// fit. Caller holds the shard lock; winEps/winDelta are the live sums.
func (l *Ledger) retryAfter(acc *account, eps, delta, winEps, winDelta float64, now time.Time) time.Duration {
	const slack = 1e-12
	p := l.policy
	for _, r := range acc.window {
		if !r.t.Add(p.Window).After(now) {
			continue // already expired; contributed nothing to the sums
		}
		winEps -= r.eps
		winDelta -= r.delta
		if winEps+eps <= p.WindowEps+slack &&
			(p.WindowDelta == 0 || winDelta+delta <= p.WindowDelta+slack) {
			return r.t.Add(p.Window).Sub(now)
		}
	}
	// The spend alone exceeds the window budget: waiting never helps.
	return 0
}

// pruneWindow drops window entries that have slid out. An entry spends
// for exactly [t, t+Window). Caller holds the shard lock.
func (l *Ledger) pruneWindow(acc *account, now time.Time) {
	if l.policy.Window == 0 {
		return
	}
	i := 0
	for i < len(acc.window) && !acc.window[i].t.Add(l.policy.Window).After(now) {
		i++
	}
	if i > 0 {
		acc.window = append(acc.window[:0], acc.window[i:]...)
	}
}

// peek returns the principal's live account, or a detached one built
// from its retired record (or zeroed). The caller installs it only when
// a logged mutation justifies it, so a denied first contact leaves no
// trace. Caller holds the shard lock.
func (s *shard) peek(principal string) (acc *account, live, revived bool) {
	if acc, ok := s.accounts[principal]; ok {
		return acc, true, false
	}
	acc = &account{}
	if r, ok := s.retired[principal]; ok {
		acc.seq = r.seq
		acc.spentEps = r.spentEps
		acc.spentDelta = r.spentDelta
		acc.releases = r.releases
		return acc, false, true
	}
	return acc, false, false
}

// install makes a peeked account live. Caller holds the shard lock.
func (s *shard) install(principal string, acc *account, revived bool) {
	s.accounts[principal] = acc
	if revived {
		delete(s.retired, principal)
	}
}

// Status reports the principal's accounting without spending. Unknown
// principals report a full budget.
func (l *Ledger) Status(principal string) Decision {
	now := l.clock()
	p := l.policy
	s := l.shardFor(principal)
	s.mu.Lock()
	defer s.mu.Unlock()

	dec := Decision{
		Principal:            principal,
		Allowed:              true,
		RemainingEps:         p.LifetimeEps,
		RemainingDelta:       p.LifetimeDelta,
		WindowRemainingEps:   p.LifetimeEps,
		WindowRemainingDelta: p.LifetimeDelta,
	}
	var winEps, winDelta float64
	if acc, ok := s.accounts[principal]; ok {
		dec.SpentEps = acc.spentEps
		dec.SpentDelta = acc.spentDelta
		dec.Releases = acc.releases
		for _, r := range acc.window {
			if r.t.Add(p.Window).After(now) {
				winEps += r.eps
				winDelta += r.delta
			}
		}
	} else if r, ok := s.retired[principal]; ok {
		dec.SpentEps = r.spentEps
		dec.SpentDelta = r.spentDelta
		dec.Releases = r.releases
	}
	dec.RemainingEps = p.LifetimeEps - dec.SpentEps
	dec.RemainingDelta = p.LifetimeDelta - dec.SpentDelta
	dec.WindowRemainingEps = dec.RemainingEps
	dec.WindowRemainingDelta = dec.RemainingDelta
	if p.Window > 0 {
		dec.WindowRemainingEps = min(dec.WindowRemainingEps, p.WindowEps-winEps)
		if p.WindowDelta > 0 {
			dec.WindowRemainingDelta = min(dec.WindowRemainingDelta, p.WindowDelta-winDelta)
		}
	}
	return dec
}

// Reset zeroes the principal's accounting — an operator action (e.g.
// after rotating the underlying dataset), logged for replay like any
// other mutation.
func (l *Ledger) Reset(principal string) {
	now := l.clock().UTC()
	s := l.shardFor(principal)
	s.mu.Lock()
	acc, live, revived := s.peek(principal)
	if !live {
		s.install(principal, acc, revived)
	}
	acc.seq++
	acc.spentEps = 0
	acc.spentDelta = 0
	acc.releases = 0
	acc.window = acc.window[:0]
	acc.last = now
	rec := logRec{P: principal, Seq: acc.seq, T: now, Reset: true}
	s.mu.Unlock()
	if revived {
		l.revivals.Inc()
	}
	if l.store != nil {
		l.appendRec(rec)
	}
}

// EvictIdle demotes accounts idle for at least IdleTTL to compact
// retired records and returns how many it demoted. Demotion is lossless:
// the policy guarantees IdleTTL ≥ Window, so an idle account's window
// entries have all expired by the time it qualifies. Demotions are not
// written to the spend log (they change no budget); persistent ledgers
// should follow a sweep with WriteSnapshot, as Close does. Daemons call
// this on a timer; tests drive it with the fake clock.
func (l *Ledger) EvictIdle() int {
	if l.policy.IdleTTL == 0 {
		return 0
	}
	now := l.clock().UTC()
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for principal, acc := range s.accounts {
			if now.Sub(acc.last) < l.policy.IdleTTL {
				continue
			}
			live := false
			for _, r := range acc.window {
				// Unreachable when IdleTTL ≥ Window (every entry is older
				// than last), but guard anyway: never discard live spend.
				if r.t.Add(l.policy.Window).After(now) {
					live = true
					break
				}
			}
			if live {
				continue
			}
			s.retired[principal] = retired{
				seq:        acc.seq,
				spentEps:   acc.spentEps,
				spentDelta: acc.spentDelta,
				releases:   acc.releases,
			}
			delete(s.accounts, principal)
			n++
		}
		s.mu.Unlock()
	}
	l.evictions.Add(uint64(n))
	return n
}

// Principals returns the live (non-retired) account count.
func (l *Ledger) Principals() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.accounts)
		s.mu.Unlock()
	}
	return n
}

// Retired returns the retired-record count.
func (l *Ledger) Retired() int {
	n := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		n += len(s.retired)
		s.mu.Unlock()
	}
	return n
}

// ExportMetrics publishes the ledger's counters, pull gauges, and the
// decision-latency histogram into reg, so they appear in the daemon's
// /v1/metrics snapshot next to the HTTP routes.
func (l *Ledger) ExportMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc(MetricSpends, l.spends.Value)
	reg.CounterFunc(MetricDenies, l.denies.Value)
	reg.CounterFunc(MetricDeniesLifetime, l.deniesLifetime.Value)
	reg.CounterFunc(MetricEvictions, l.evictions.Value)
	reg.CounterFunc(MetricRevivals, l.revivals.Value)
	reg.CounterFunc(MetricPersistErrors, l.persistErrs.Value)
	reg.CounterFunc(MetricPrincipals, func() uint64 { return uint64(l.Principals()) })
	reg.CounterFunc(MetricRetired, func() uint64 { return uint64(l.Retired()) })
	reg.CounterFunc(MetricShards, func() uint64 { return uint64(len(l.shards)) })
	reg.RegisterLatency(LatencyDecision, &l.decLat)
}

// defaultShards mirrors the GSP cache's sizing: a power of two around 2×
// the available parallelism, capped at 128.
func defaultShards(l *Ledger) {
	WithShards(2 * runtime.GOMAXPROCS(0))(l)
}
