package budget

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"poiagg/internal/obs"
)

// fakeClock is a mutex-guarded deterministic time source. No test in
// this package sleeps: time moves only when Advance is called.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mustLedger(t *testing.T, p Policy, opts ...Option) *Ledger {
	t.Helper()
	l, err := New(p, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func mustSpend(t *testing.T, l *Ledger, principal string, eps, delta float64) Decision {
	t.Helper()
	dec, err := l.Spend(principal, eps, delta)
	if err != nil {
		t.Fatalf("Spend(%s, %v, %v): %v", principal, eps, delta, err)
	}
	return dec
}

func TestPolicyValidate(t *testing.T) {
	valid := Policy{LifetimeEps: 10, LifetimeDelta: 1e-5,
		Window: 24 * time.Hour, WindowEps: 1, IdleTTL: 48 * time.Hour}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	bad := []Policy{
		{},                                    // no lifetime epsilon
		{LifetimeEps: -1},                     // negative epsilon
		{LifetimeEps: 1, LifetimeDelta: 1},    // delta out of range
		{LifetimeEps: 1, LifetimeDelta: -0.1}, // negative delta
		{LifetimeEps: 1, Window: -time.Hour},  // negative window
		{LifetimeEps: 1, Window: time.Hour},   // window without epsilon
		{LifetimeEps: 1, WindowDelta: 1.5},    // window delta out of range
		{LifetimeEps: 1, IdleTTL: -1},         // negative TTL
		{LifetimeEps: 1, Window: 2 * time.Hour, WindowEps: 1,
			IdleTTL: time.Hour}, // TTL shorter than window: lossy eviction
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
		if _, err := New(p); err == nil {
			t.Errorf("New accepted bad policy %d: %+v", i, p)
		}
	}
}

func TestSpendArgValidation(t *testing.T) {
	l := mustLedger(t, Policy{LifetimeEps: 1})
	for _, tc := range []struct {
		principal  string
		eps, delta float64
	}{
		{"", 0.1, 0},
		{"alice", 0, 0},
		{"alice", -0.1, 0},
		{"alice", 0.1, -0.1},
		{"alice", 0.1, 1},
	} {
		if _, err := l.Spend(tc.principal, tc.eps, tc.delta); err == nil {
			t.Errorf("Spend(%q, %v, %v) accepted", tc.principal, tc.eps, tc.delta)
		}
	}
	if n := l.Principals(); n != 0 {
		t.Fatalf("invalid spends materialized %d accounts", n)
	}
}

func TestLifetimeBudget(t *testing.T) {
	l := mustLedger(t, Policy{LifetimeEps: 1, LifetimeDelta: 3e-6},
		WithClock(newFakeClock().Now))
	for i := 0; i < 4; i++ {
		dec := mustSpend(t, l, "alice", 0.25, 1e-7)
		if !dec.Allowed {
			t.Fatalf("spend %d denied: %+v", i, dec)
		}
		wantRem := 1 - 0.25*float64(i+1)
		if math.Abs(dec.RemainingEps-wantRem) > 1e-9 {
			t.Fatalf("spend %d: RemainingEps = %v, want %v", i, dec.RemainingEps, wantRem)
		}
	}
	// Exactly exhausted: the 4×0.25 sum hits the budget boundary, which
	// the slack admits; anything more is denied.
	dec := mustSpend(t, l, "alice", 0.25, 0)
	if dec.Allowed || dec.Denial != DenyLifetime {
		t.Fatalf("over-budget spend = %+v, want lifetime denial", dec)
	}
	if dec.Releases != 4 || dec.SpentEps != 1 {
		t.Fatalf("denial accounting = %+v", dec)
	}
	if dec.RetryAfter != 0 {
		t.Fatalf("lifetime denial has RetryAfter %v; waiting never refills it", dec.RetryAfter)
	}
	// Delta is enforced independently of epsilon.
	l2 := mustLedger(t, Policy{LifetimeEps: 100, LifetimeDelta: 1e-6})
	mustSpend(t, l2, "bob", 0.1, 9e-7)
	if dec := mustSpend(t, l2, "bob", 0.1, 2e-7); dec.Allowed {
		t.Fatalf("delta over-budget spend allowed: %+v", dec)
	}
}

func TestSlidingWindow(t *testing.T) {
	clk := newFakeClock()
	l := mustLedger(t, Policy{
		LifetimeEps: 100,
		Window:      24 * time.Hour,
		WindowEps:   1,
	}, WithClock(clk.Now))

	mustSpend(t, l, "alice", 0.5, 0) // t0
	clk.Advance(time.Hour)
	mustSpend(t, l, "alice", 0.5, 0) // t0+1h

	clk.Advance(time.Hour) // t0+2h: window holds the full 1.0
	dec := mustSpend(t, l, "alice", 0.5, 0)
	if dec.Allowed || dec.Denial != DenyWindow {
		t.Fatalf("third spend = %+v, want window denial", dec)
	}
	// The t0 entry frees 0.5 when it slides out at t0+24h, i.e. 22h away.
	if want := 22 * time.Hour; dec.RetryAfter != want {
		t.Fatalf("RetryAfter = %v, want %v", dec.RetryAfter, want)
	}
	if dec.WindowRemainingEps > 1e-9 {
		t.Fatalf("WindowRemainingEps = %v, want 0", dec.WindowRemainingEps)
	}
	if dec.RemainingEps != 99 {
		t.Fatalf("lifetime RemainingEps = %v, want 99", dec.RemainingEps)
	}

	clk.Advance(22*time.Hour - time.Nanosecond) // one tick early: still denied
	if dec := mustSpend(t, l, "alice", 0.5, 0); dec.Allowed {
		t.Fatalf("spend allowed %v before the window slides", time.Nanosecond)
	}
	clk.Advance(time.Nanosecond) // exactly t0+24h: the t0 entry has expired
	if dec := mustSpend(t, l, "alice", 0.5, 0); !dec.Allowed {
		t.Fatalf("spend denied after window slid: %+v", dec)
	}
	// Lifetime accounting kept the denied attempts off the books.
	if st := l.Status("alice"); st.SpentEps != 1.5 || st.Releases != 3 {
		t.Fatalf("Status = %+v, want 1.5 spent over 3 releases", st)
	}
}

func TestWindowDenialLeavesNoTrace(t *testing.T) {
	clk := newFakeClock()
	l := mustLedger(t, Policy{LifetimeEps: 100, Window: time.Hour, WindowEps: 1},
		WithClock(clk.Now))
	// A spend larger than the whole window budget can never be admitted:
	// denied with RetryAfter 0, and no account materializes.
	dec := mustSpend(t, l, "greedy", 2, 0)
	if dec.Allowed || dec.Denial != DenyWindow || dec.RetryAfter != 0 {
		t.Fatalf("oversized spend = %+v, want unsatisfiable window denial", dec)
	}
	if l.Principals() != 0 {
		t.Fatalf("denied first contact materialized an account")
	}
}

func TestWindowDelta(t *testing.T) {
	clk := newFakeClock()
	l := mustLedger(t, Policy{
		LifetimeEps: 100, LifetimeDelta: 0.5,
		Window: time.Hour, WindowEps: 100, WindowDelta: 1e-6,
	}, WithClock(clk.Now))
	mustSpend(t, l, "alice", 0.1, 8e-7)
	if dec := mustSpend(t, l, "alice", 0.1, 4e-7); dec.Allowed {
		t.Fatalf("window-delta over-budget spend allowed: %+v", dec)
	}
	clk.Advance(time.Hour)
	if dec := mustSpend(t, l, "alice", 0.1, 4e-7); !dec.Allowed {
		t.Fatalf("spend denied after delta window slid: %+v", dec)
	}
}

func TestStatusUnknownPrincipal(t *testing.T) {
	l := mustLedger(t, Policy{LifetimeEps: 2, LifetimeDelta: 1e-5})
	st := l.Status("nobody")
	if st.SpentEps != 0 || st.RemainingEps != 2 || st.RemainingDelta != 1e-5 {
		t.Fatalf("unknown principal Status = %+v", st)
	}
	if l.Principals() != 0 {
		t.Fatalf("Status materialized an account")
	}
}

func TestIdleEvictionAndRevival(t *testing.T) {
	clk := newFakeClock()
	l := mustLedger(t, Policy{
		LifetimeEps: 1,
		Window:      24 * time.Hour, WindowEps: 1,
		IdleTTL: 48 * time.Hour,
	}, WithClock(clk.Now))

	mustSpend(t, l, "alice", 0.6, 0)
	clk.Advance(time.Hour)
	mustSpend(t, l, "bob", 0.2, 0)

	// Alice is 47h idle at +48h: not yet evictable. Bob neither.
	clk.Advance(47 * time.Hour)
	if n := l.EvictIdle(); n != 1 {
		t.Fatalf("EvictIdle at t0+48h = %d, want 1 (alice exactly at TTL)", n)
	}
	if l.Principals() != 1 || l.Retired() != 1 {
		t.Fatalf("after eviction: %d live, %d retired", l.Principals(), l.Retired())
	}

	// The retired record still answers Status with full lifetime totals.
	if st := l.Status("alice"); st.SpentEps != 0.6 || st.Releases != 1 {
		t.Fatalf("retired Status = %+v", st)
	}

	// Revival enforces the lifetime budget across the demotion: alice has
	// 0.4 left, so 0.5 is denied and 0.3 is granted.
	if dec := mustSpend(t, l, "alice", 0.5, 0); dec.Allowed {
		t.Fatalf("revived over-budget spend allowed: %+v", dec)
	}
	if dec := mustSpend(t, l, "alice", 0.3, 0); !dec.Allowed {
		t.Fatalf("revived spend denied: %+v", dec)
	}
	if l.Principals() != 2 || l.Retired() != 0 {
		t.Fatalf("after revival: %d live, %d retired", l.Principals(), l.Retired())
	}

	// TTL disabled: EvictIdle is a no-op.
	l2 := mustLedger(t, Policy{LifetimeEps: 1}, WithClock(clk.Now))
	mustSpend(t, l2, "x", 0.1, 0)
	clk.Advance(1000 * time.Hour)
	if n := l2.EvictIdle(); n != 0 {
		t.Fatalf("EvictIdle without TTL = %d", n)
	}
}

func TestReset(t *testing.T) {
	clk := newFakeClock()
	l := mustLedger(t, Policy{LifetimeEps: 1}, WithClock(clk.Now))
	mustSpend(t, l, "alice", 1, 0)
	if dec := mustSpend(t, l, "alice", 0.1, 0); dec.Allowed {
		t.Fatalf("exhausted spend allowed: %+v", dec)
	}
	l.Reset("alice")
	dec := mustSpend(t, l, "alice", 0.1, 0)
	if !dec.Allowed || dec.Releases != 1 || dec.SpentEps != 0.1 {
		t.Fatalf("post-reset spend = %+v", dec)
	}
}

func TestShardRoundingAndIsolation(t *testing.T) {
	// Shard counts round up to a power of two; principals are isolated
	// from each other regardless of shard collisions.
	for _, n := range []int{1, 3, 16} {
		l := mustLedger(t, Policy{LifetimeEps: 1}, WithShards(n))
		if got := len(l.shards); got&(got-1) != 0 || got < n {
			t.Fatalf("WithShards(%d) gave %d shards", n, got)
		}
		for i := 0; i < 64; i++ {
			mustSpend(t, l, fmt.Sprintf("user-%d", i), 1, 0)
		}
		for i := 0; i < 64; i++ {
			p := fmt.Sprintf("user-%d", i)
			if dec := mustSpend(t, l, p, 0.5, 0); dec.Allowed {
				t.Fatalf("shards=%d: %s exceeded its own budget", n, p)
			}
			if st := l.Status(p); st.SpentEps != 1 {
				t.Fatalf("shards=%d: %s SpentEps = %v", n, p, st.SpentEps)
			}
		}
	}
}

func TestExportMetrics(t *testing.T) {
	clk := newFakeClock()
	l := mustLedger(t, Policy{
		LifetimeEps: 1, Window: time.Hour, WindowEps: 1, IdleTTL: time.Hour,
	}, WithClock(clk.Now))
	reg := obs.NewRegistry()
	l.ExportMetrics(reg)

	mustSpend(t, l, "alice", 0.5, 0)
	mustSpend(t, l, "alice", 0.5, 0)
	mustSpend(t, l, "alice", 0.5, 0) // window+lifetime deny
	clk.Advance(time.Hour)
	l.EvictIdle()

	snap := reg.Snapshot()
	want := map[string]uint64{
		MetricSpends:         2,
		MetricDenies:         1,
		MetricDeniesLifetime: 1, // checked before the window, like the spend path
		MetricEvictions:      1,
		MetricRevivals:       0,
		MetricPrincipals:     0,
		MetricRetired:        1,
		MetricShards:         uint64(len(l.shards)),
		MetricPersistErrors:  0,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	lat, ok := snap.Latencies[LatencyDecision]
	if !ok {
		t.Fatalf("snapshot missing %s latency histogram", LatencyDecision)
	}
	if lat.Count != 3 {
		t.Fatalf("decision latency count = %d, want 3", lat.Count)
	}
}

// TestConcurrentStress hammers spend/deny/status/evict/reset from many
// goroutines (run under -race by make check) and then checks the one
// invariant that matters: no principal ever exceeds its lifetime budget.
func TestConcurrentStress(t *testing.T) {
	clk := newFakeClock()
	const (
		principals = 64
		workers    = 8
		iters      = 400
	)
	l := mustLedger(t, Policy{
		LifetimeEps: 1,
		Window:      time.Hour, WindowEps: 0.5,
		IdleTTL: time.Hour,
	}, WithClock(clk.Now))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := fmt.Sprintf("user-%d", (w*iters+i)%principals)
				switch {
				case i%97 == 0:
					l.Reset(p)
				case i%31 == 0:
					l.Status(p)
				case i%53 == 0:
					l.EvictIdle()
				default:
					if _, err := l.Spend(p, 0.01, 0); err != nil {
						t.Errorf("Spend: %v", err)
						return
					}
				}
				if i%101 == 0 {
					clk.Advance(time.Minute)
				}
			}
		}(w)
	}
	wg.Wait()

	const slack = 1e-9
	for i := 0; i < principals; i++ {
		st := l.Status(fmt.Sprintf("user-%d", i))
		if st.SpentEps > 1+slack {
			t.Errorf("user-%d lifetime overdrawn: %v", i, st.SpentEps)
		}
	}
}
