package budget

// Crash-safe persistence for the ledger: a periodic JSON snapshot plus
// an append-only JSONL spend log replayed on startup.
//
// Every state mutation (granted spend, reset) carries a per-principal
// sequence number. Mutations append one log line *after* the shard lock
// is released; a snapshot captures each account's current seq. Replay
// groups log records per principal, orders them by seq (concurrent
// writers may append out of order), and applies only records newer than
// the snapshot — so a crash anywhere, including between the snapshot
// rename and the log truncation, replays exactly once. The snapshot is
// written to a temp file, fsynced, and atomically renamed; a torn log
// tail (partial or corrupt trailing lines) is truncated away on load.
//
// Replay is byte-exact: denied spends and Status never mutate accounts
// (budget.go), granted spends prune the window at their own timestamp,
// and replay reapplies records identically, so DumpState before a crash
// and after the reopen compare equal.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	snapshotName    = "ledger.json"
	logName         = "spend.log"
	snapshotVersion = 1
)

// logRec is one line of the append-only spend log.
type logRec struct {
	P     string    `json:"p"`
	Seq   uint64    `json:"q"`
	T     time.Time `json:"t"`
	Eps   float64   `json:"e,omitempty"`
	Delta float64   `json:"d,omitempty"`
	Reset bool      `json:"reset,omitempty"`
}

// winRec is one sliding-window entry in the snapshot document.
type winRec struct {
	T     time.Time `json:"t"`
	Eps   float64   `json:"e"`
	Delta float64   `json:"d"`
}

// snapRec is one principal in the snapshot document.
type snapRec struct {
	P        string    `json:"p"`
	Seq      uint64    `json:"q"`
	Eps      float64   `json:"e"`
	Delta    float64   `json:"d"`
	Releases uint64    `json:"n"`
	Last     time.Time `json:"last"`
	W        []winRec  `json:"w,omitempty"`
	Retired  bool      `json:"retired,omitempty"`
}

// snapDoc is the snapshot file format, principals sorted by name so the
// serialization is canonical.
type snapDoc struct {
	Version    int       `json:"version"`
	Principals []snapRec `json:"principals"`
}

// store is the persistence half of a Ledger. Its mutex serializes log
// appends and snapshot/truncate cycles. Lock order is store.mu →
// shard.mu (WriteSnapshot holds store.mu while DumpState takes shard
// locks); the spend path never inverts it — Spend takes shard.mu,
// releases it, then appends under store.mu.
type store struct {
	mu      sync.Mutex
	dir     string
	logF    *os.File
	pending int // records appended since the last snapshot
}

// Open returns a persistent ledger rooted at dir: it loads the snapshot
// (if any), replays the spend log (truncating a torn tail), and keeps
// the log open for appending. Use Close to write a final snapshot.
func Open(policy Policy, dir string, opts ...Option) (*Ledger, error) {
	l, err := New(policy, opts...)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("budget: open %s: %w", dir, err)
	}
	if err := l.loadSnapshot(filepath.Join(dir, snapshotName)); err != nil {
		return nil, err
	}
	if err := l.replayLog(filepath.Join(dir, logName)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("budget: open spend log: %w", err)
	}
	l.store = &store{dir: dir, logF: f}
	return l, nil
}

// loadSnapshot installs the snapshot file's accounts; a missing file is
// an empty ledger.
func (l *Ledger) loadSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("budget: read snapshot: %w", err)
	}
	var doc snapDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("budget: corrupt snapshot %s: %w", path, err)
	}
	if doc.Version != snapshotVersion {
		return fmt.Errorf("budget: snapshot %s has version %d, want %d",
			path, doc.Version, snapshotVersion)
	}
	for _, rec := range doc.Principals {
		s := l.shardFor(rec.P)
		if rec.Retired {
			s.retired[rec.P] = retired{
				seq:        rec.Seq,
				spentEps:   rec.Eps,
				spentDelta: rec.Delta,
				releases:   rec.Releases,
			}
			continue
		}
		acc := &account{
			seq:        rec.Seq,
			spentEps:   rec.Eps,
			spentDelta: rec.Delta,
			releases:   rec.Releases,
			last:       rec.Last,
		}
		for _, w := range rec.W {
			acc.window = append(acc.window, spendRec{t: w.T, eps: w.Eps, delta: w.Delta})
		}
		s.accounts[rec.P] = acc
	}
	return nil
}

// replayLog applies the spend log on top of the loaded snapshot. The
// first corrupt or partial line and everything after it are truncated
// away: the log is append-only, so damage can only be a torn tail from
// a crash mid-write.
func (l *Ledger) replayLog(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("budget: read spend log: %w", err)
	}
	var recs []logRec
	good := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // partial trailing line
		}
		var rec logRec
		if err := json.Unmarshal(data[off:off+nl], &rec); err != nil || rec.P == "" || rec.Seq == 0 {
			break // corrupt: keep the good prefix, drop the tail
		}
		recs = append(recs, rec)
		off += nl + 1
		good = off
	}
	if good < len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return fmt.Errorf("budget: truncate torn log tail: %w", err)
		}
	}
	l.apply(recs)
	return nil
}

// apply replays logged mutations per principal in seq order, skipping
// records at or below the account's snapshot seq — exactly-once even
// when the previous run crashed between snapshot rename and log
// truncation. Granted spends prune the window at the record's own
// timestamp, reproducing the original mutation byte-for-byte.
func (l *Ledger) apply(recs []logRec) {
	byPrincipal := make(map[string][]logRec)
	for _, r := range recs {
		byPrincipal[r.P] = append(byPrincipal[r.P], r)
	}
	for principal, rs := range byPrincipal {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Seq < rs[j].Seq })
		s := l.shardFor(principal)
		s.mu.Lock()
		acc, live, revived := s.peek(principal)
		applied := false
		for _, r := range rs {
			if r.Seq <= acc.seq {
				continue
			}
			applied = true
			if r.Reset {
				acc.spentEps = 0
				acc.spentDelta = 0
				acc.releases = 0
				acc.window = acc.window[:0]
			} else {
				acc.spentEps += r.Eps
				acc.spentDelta += r.Delta
				acc.releases++
				if l.policy.Window > 0 {
					l.pruneWindow(acc, r.T)
					acc.window = append(acc.window, spendRec{t: r.T, eps: r.Eps, delta: r.Delta})
				}
			}
			acc.seq = r.Seq
			acc.last = r.T
		}
		if applied && !live {
			s.install(principal, acc, revived)
		}
		s.mu.Unlock()
	}
}

// appendRec writes one mutation to the spend log and triggers an
// automatic snapshot when WithSnapshotEvery is due. Called after the
// shard lock is released; out-of-order appends from concurrent spenders
// are fine — replay orders by seq.
func (l *Ledger) appendRec(rec logRec) {
	st := l.store
	data, err := json.Marshal(rec)
	if err != nil {
		l.persistErrs.Inc()
		return
	}
	data = append(data, '\n')
	st.mu.Lock()
	due := false
	if st.logF != nil {
		if _, err := st.logF.Write(data); err != nil {
			l.persistErrs.Inc()
		} else {
			st.pending++
			due = l.snapshotEvery > 0 && st.pending >= l.snapshotEvery
		}
	}
	st.mu.Unlock()
	if due {
		if err := l.WriteSnapshot(); err != nil {
			l.persistErrs.Inc()
		}
	}
}

// WriteSnapshot atomically persists the full ledger state (temp file,
// fsync, rename) and truncates the spend log. A crash between the two
// steps is safe: replay skips log records the snapshot already covers.
// No-op for in-memory ledgers.
func (l *Ledger) WriteSnapshot() error {
	st := l.store
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()

	data, err := l.DumpState()
	if err != nil {
		return err
	}
	final := filepath.Join(st.dir, snapshotName)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("budget: write snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("budget: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("budget: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("budget: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("budget: publish snapshot: %w", err)
	}

	// The snapshot covers everything logged so far; start the log over.
	if st.logF != nil {
		st.logF.Close()
	}
	st.logF, err = os.OpenFile(filepath.Join(st.dir, logName),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("budget: reopen spend log: %w", err)
	}
	st.pending = 0
	return nil
}

// Close writes a final snapshot and closes the spend log. The ledger
// must not be used after Close. No-op for in-memory ledgers.
func (l *Ledger) Close() error {
	st := l.store
	if st == nil {
		return nil
	}
	err := l.WriteSnapshot()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.logF != nil {
		if cerr := st.logF.Close(); err == nil {
			err = cerr
		}
		st.logF = nil
	}
	return err
}

// DumpState returns the canonical JSON serialization of the ledger's
// complete state — the exact document WriteSnapshot persists. Principals
// are sorted by name and empty (never-mutated) accounts are skipped, so
// two ledgers with the same mutation history serialize byte-identically:
// the restart e2e test compares these bytes across a crash.
func (l *Ledger) DumpState() ([]byte, error) {
	doc := snapDoc{Version: snapshotVersion, Principals: []snapRec{}}
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for principal, acc := range s.accounts {
			if acc.seq == 0 {
				continue
			}
			rec := snapRec{
				P:        principal,
				Seq:      acc.seq,
				Eps:      acc.spentEps,
				Delta:    acc.spentDelta,
				Releases: acc.releases,
				Last:     acc.last,
			}
			for _, w := range acc.window {
				rec.W = append(rec.W, winRec{T: w.t, Eps: w.eps, Delta: w.delta})
			}
			doc.Principals = append(doc.Principals, rec)
		}
		for principal, r := range s.retired {
			doc.Principals = append(doc.Principals, snapRec{
				P:        principal,
				Seq:      r.seq,
				Eps:      r.spentEps,
				Delta:    r.spentDelta,
				Releases: r.releases,
				Retired:  true,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(doc.Principals, func(i, j int) bool {
		return doc.Principals[i].P < doc.Principals[j].P
	})
	return json.Marshal(doc)
}
