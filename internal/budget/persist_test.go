package budget

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, p Policy, dir string, opts ...Option) *Ledger {
	t.Helper()
	l, err := Open(p, dir, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func mustDump(t *testing.T, l *Ledger) []byte {
	t.Helper()
	data, err := l.DumpState()
	if err != nil {
		t.Fatalf("DumpState: %v", err)
	}
	return data
}

func TestOpenCloseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	policy := Policy{LifetimeEps: 10, Window: 24 * time.Hour, WindowEps: 2}

	l1 := mustOpen(t, policy, dir, WithClock(clk.Now))
	mustSpend(t, l1, "alice", 0.5, 0)
	clk.Advance(time.Minute)
	mustSpend(t, l1, "alice", 0.25, 0)
	mustSpend(t, l1, "bob", 1, 0)
	before := mustDump(t, l1)
	if err := l1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, policy, dir, WithClock(clk.Now))
	if after := mustDump(t, l2); !bytes.Equal(before, after) {
		t.Fatalf("state changed across Close/Open:\n before %s\n after  %s", before, after)
	}
	if st := l2.Status("alice"); st.SpentEps != 0.75 || st.Releases != 2 {
		t.Fatalf("restored alice = %+v", st)
	}
	// The restored window still constrains: alice has 0.75 of 2 in-window.
	if dec := mustSpend(t, l2, "alice", 1.5, 0); dec.Allowed || dec.Denial != DenyWindow {
		t.Fatalf("restored window not enforced: %+v", dec)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCrashRestartBitIdentical is the crash-consistency core: spends,
// an explicit snapshot, more spends, then a reopen with no Close (the
// crash). The reopened ledger must serialize byte-identically.
func TestCrashRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	policy := Policy{LifetimeEps: 10, Window: 24 * time.Hour, WindowEps: 5}

	l1 := mustOpen(t, policy, dir, WithClock(clk.Now))
	mustSpend(t, l1, "alice", 0.5, 0)
	mustSpend(t, l1, "bob", 0.5, 0)
	clk.Advance(time.Hour)
	mustSpend(t, l1, "alice", 0.25, 0)
	if err := l1.WriteSnapshot(); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Post-snapshot mutations live only in the spend log.
	clk.Advance(time.Hour)
	mustSpend(t, l1, "alice", 0.125, 0)
	mustSpend(t, l1, "carol", 1, 0)
	l1.Reset("bob")
	clk.Advance(30 * time.Hour) // far enough that alice's oldest entries expire
	mustSpend(t, l1, "alice", 0.0625, 0)
	before := mustDump(t, l1)
	// No Close: the crash.

	l2 := mustOpen(t, policy, dir, WithClock(clk.Now))
	after := mustDump(t, l2)
	if !bytes.Equal(before, after) {
		t.Fatalf("replayed state differs from pre-crash state:\n before %s\n after  %s", before, after)
	}
	if st := l2.Status("bob"); st.SpentEps != 0 || st.Releases != 0 {
		t.Fatalf("bob's reset was not replayed: %+v", st)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestTornLogTailTruncated(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	policy := Policy{LifetimeEps: 10}

	l1 := mustOpen(t, policy, dir, WithClock(clk.Now))
	mustSpend(t, l1, "alice", 0.5, 0)
	before := mustDump(t, l1)
	// Crash: no Close. The log holds alice's one record; now simulate a
	// torn tail — a corrupt line and a partial line after it.
	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{garbage!!\n{\"p\":\"bob\",\"q\":1"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := mustOpen(t, policy, dir, WithClock(clk.Now))
	if after := mustDump(t, l2); !bytes.Equal(before, after) {
		t.Fatalf("torn tail leaked into state:\n before %s\n after  %s", before, after)
	}
	// The file itself was truncated back to the good prefix, so a third
	// open replays cleanly too.
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("garbage")) {
		t.Fatalf("corrupt tail still on disk: %q", data)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestReplayIsExactlyOnce covers the crash window between snapshot
// rename and log truncation: records the snapshot already covers remain
// in the log, and the per-account seq guard must skip them.
func TestReplayIsExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	policy := Policy{LifetimeEps: 10}

	l1 := mustOpen(t, policy, dir, WithClock(clk.Now))
	mustSpend(t, l1, "alice", 0.5, 0)
	mustSpend(t, l1, "alice", 0.5, 0)
	if err := l1.WriteSnapshot(); err != nil { // snapshot seq = 2, log now empty
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Re-append the already-covered records plus one genuinely new one,
	// as if the crash hit before the truncation.
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	now := clk.Now().UTC()
	for seq, eps := range map[uint64]float64{1: 0.5, 2: 0.5, 3: 0.25} {
		line, _ := json.Marshal(logRec{P: "alice", Seq: seq, T: now, Eps: eps})
		if _, err := f.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	l2 := mustOpen(t, policy, dir, WithClock(clk.Now))
	st := l2.Status("alice")
	if st.SpentEps != 1.25 || st.Releases != 3 {
		t.Fatalf("replay applied covered records twice: %+v", st)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSnapshotEvery(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	policy := Policy{LifetimeEps: 10}

	l := mustOpen(t, policy, dir, WithClock(clk.Now), WithSnapshotEvery(2))
	mustSpend(t, l, "alice", 0.1, 0)
	logPath := filepath.Join(dir, logName)
	if fi, err := os.Stat(logPath); err != nil || fi.Size() == 0 {
		t.Fatalf("one spend should sit in the log (err=%v)", err)
	}
	mustSpend(t, l, "alice", 0.1, 0) // second record triggers the snapshot
	if fi, err := os.Stat(logPath); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated after auto-snapshot (err=%v, size=%d)", err, fi.Size())
	}
	snap, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatalf("auto-snapshot missing: %v", err)
	}
	if want := mustDump(t, l); !bytes.Equal(snap, want) {
		t.Fatalf("auto-snapshot differs from DumpState:\n snap %s\n want %s", snap, want)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestEvictionSurvivesSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	policy := Policy{LifetimeEps: 1, IdleTTL: time.Hour}

	l1 := mustOpen(t, policy, dir, WithClock(clk.Now))
	mustSpend(t, l1, "alice", 1, 0)
	clk.Advance(time.Hour)
	if n := l1.EvictIdle(); n != 1 {
		t.Fatalf("EvictIdle = %d", n)
	}
	before := mustDump(t, l1)
	if err := l1.Close(); err != nil { // Close snapshots the retired record
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, policy, dir, WithClock(clk.Now))
	if after := mustDump(t, l2); !bytes.Equal(before, after) {
		t.Fatalf("retired record lost across restart:\n before %s\n after  %s", before, after)
	}
	// The lifetime budget survives retirement + restart.
	if dec := mustSpend(t, l2, "alice", 0.1, 0); dec.Allowed {
		t.Fatalf("restarted retired principal overdrew: %+v", dec)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Policy{LifetimeEps: 1}, dir); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}
