// Package citygen generates synthetic cities that substitute for the
// paper's OpenStreetMap extracts of Beijing and New York City.
//
// The substitution preserves the two statistics that drive location
// uniqueness and hence every experiment in the paper:
//
//  1. Heavy-tailed POI type frequencies. City-wide type counts follow a
//     Zipf law; the paper's sanitization threshold ("types with city-wide
//     frequency ≤ 10") prunes roughly half the type vocabulary in both
//     cities, and the generator is calibrated so the same threshold has
//     the same effect.
//  2. Spatially clustered, type-correlated placement. POIs concentrate in
//     districts, and each type has a handful of affine districts
//     (electronics streets, museum quarters). Neighbourhood type
//     signatures therefore differ across the city, which is exactly what
//     makes locations unique and what lets a learning model recover
//     sanitized frequencies from co-occurring types.
//
// Presets Beijing and NewYork match the paper's POI and type counts
// (10,249 POIs / 177 types and 30,056 POIs / 272 types).
package citygen

import (
	"fmt"

	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// Params configures a synthetic city.
type Params struct {
	Name string
	// NumPOIs is the total number of POIs to place.
	NumPOIs int
	// NumTypes is the size of the POI type vocabulary (the paper's M).
	NumTypes int
	// ZipfExponent shapes the city-wide type frequency distribution.
	ZipfExponent float64
	// Width and Height are the city extent in meters.
	Width, Height float64
	// NumDistricts is the number of POI cluster centers.
	NumDistricts int
	// DistrictSigmaMin/Max bound the Gaussian spread of each district in
	// meters.
	DistrictSigmaMin, DistrictSigmaMax float64
	// HomeDistrictsPerType caps how many districts a type prefers.
	HomeDistrictsPerType int
	// HomeAffinity is the probability a POI lands in one of its type's
	// home districts rather than a random district.
	HomeAffinity float64
	// BackgroundFrac is the fraction of POIs placed uniformly at random,
	// modelling scattered standalone POIs.
	BackgroundFrac float64
	// Seed drives all generation randomness.
	Seed uint64
}

// Beijing returns parameters calibrated to the paper's Beijing dataset:
// 10,249 POIs across 177 types in a ~30 km urban core.
func Beijing(seed uint64) Params {
	return Params{
		Name:                 "beijing",
		NumPOIs:              10_249,
		NumTypes:             177,
		ZipfExponent:         1.30,
		Width:                30_000,
		Height:               30_000,
		NumDistricts:         60,
		DistrictSigmaMin:     250,
		DistrictSigmaMax:     1_800,
		HomeDistrictsPerType: 4,
		HomeAffinity:         0.8,
		BackgroundFrac:       0.06,
		Seed:                 seed,
	}
}

// NewYork returns parameters calibrated to the paper's New York City
// dataset: 30,056 POIs across 272 types. NYC is denser and more linear
// (Manhattan) so it uses more, tighter districts in a taller extent.
func NewYork(seed uint64) Params {
	return Params{
		Name:                 "nyc",
		NumPOIs:              30_056,
		NumTypes:             272,
		ZipfExponent:         1.45,
		Width:                26_000,
		Height:               34_000,
		NumDistricts:         90,
		DistrictSigmaMin:     200,
		DistrictSigmaMax:     1_500,
		HomeDistrictsPerType: 5,
		HomeAffinity:         0.8,
		BackgroundFrac:       0.05,
		Seed:                 seed,
	}
}

// baseCategories seeds human-readable type names; the vocabulary extends
// with numbered variants ("restaurant", "restaurant_2", …) to reach
// NumTypes.
var baseCategories = []string{
	"restaurant", "cafe", "bar", "fast_food", "pub", "food_court",
	"school", "kindergarten", "university", "college", "library",
	"hospital", "clinic", "pharmacy", "dentist", "doctors", "veterinary",
	"bank", "atm", "bureau_de_change", "post_office", "police",
	"fire_station", "townhall", "courthouse", "embassy", "prison",
	"cinema", "theatre", "nightclub", "casino", "arts_centre", "museum",
	"gallery", "zoo", "aquarium", "theme_park", "stadium", "sports_centre",
	"swimming_pool", "gym", "golf_course", "playground", "park",
	"supermarket", "convenience", "department_store", "mall", "bakery",
	"butcher", "greengrocer", "clothes", "shoes", "jewelry", "florist",
	"bookshop", "electronics", "mobile_phone", "computer", "furniture",
	"hardware", "paint", "garden_centre", "pet_shop", "toy_shop",
	"fuel", "parking", "car_wash", "car_rental", "car_repair",
	"bicycle_rental", "bus_station", "taxi", "ferry_terminal",
	"hotel", "hostel", "motel", "guest_house", "camp_site",
	"place_of_worship", "monastery", "shrine", "cemetery", "monument",
	"fountain", "viewpoint", "picnic_site", "marketplace", "recycling",
	"toilets", "drinking_water", "bench", "shelter", "telephone",
}

// City is a generated synthetic city together with its generator
// parameters.
type City struct {
	*gsp.City
	Params Params
}

// Generate builds the city deterministically from p.
func Generate(p Params) (*City, error) {
	if p.NumPOIs <= 0 || p.NumTypes <= 0 {
		return nil, fmt.Errorf("citygen: %q: need positive NumPOIs and NumTypes", p.Name)
	}
	if p.NumDistricts <= 0 {
		return nil, fmt.Errorf("citygen: %q: need positive NumDistricts", p.Name)
	}
	src := rng.New(p.Seed)
	typeSrc := src.Split(1)
	placeSrc := src.Split(2)
	districtSrc := src.Split(3)

	types := poi.NewTypeTable()
	for i := 0; i < p.NumTypes; i++ {
		base := baseCategories[i%len(baseCategories)]
		name := base
		if n := i / len(baseCategories); n > 0 {
			name = fmt.Sprintf("%s_%d", base, n+1)
		}
		types.Intern(name)
	}

	counts := typeCounts(p, typeSrc)

	// Districts: cluster centers with per-district spread. Centers are
	// themselves mildly clustered toward the city core by averaging with
	// the center point.
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: p.Width, MaxY: p.Height}
	center := bounds.Center()
	type district struct {
		c     geo.Point
		sigma float64
	}
	districts := make([]district, p.NumDistricts)
	for i := range districts {
		x, y := districtSrc.UniformIn(bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY)
		pull := 0.25 + 0.5*districtSrc.Float64()
		districts[i] = district{
			c: geo.Point{
				X: x + (center.X-x)*pull*districtSrc.Float64(),
				Y: y + (center.Y-y)*pull*districtSrc.Float64(),
			},
			sigma: p.DistrictSigmaMin + districtSrc.Float64()*(p.DistrictSigmaMax-p.DistrictSigmaMin),
		}
	}

	// Each type prefers a few home districts.
	homes := make([][]int, p.NumTypes)
	for t := range homes {
		k := 1 + typeSrc.IntN(p.HomeDistrictsPerType)
		hs := make([]int, k)
		for i := range hs {
			hs[i] = typeSrc.IntN(p.NumDistricts)
		}
		homes[t] = hs
	}

	pois := make([]poi.POI, 0, p.NumPOIs)
	id := poi.ID(0)
	for t := 0; t < p.NumTypes; t++ {
		for c := 0; c < counts[t]; c++ {
			var pos geo.Point
			if placeSrc.Float64() < p.BackgroundFrac {
				x, y := placeSrc.UniformIn(bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY)
				pos = geo.Point{X: x, Y: y}
			} else {
				var d district
				if placeSrc.Float64() < p.HomeAffinity {
					hs := homes[t]
					d = districts[hs[placeSrc.IntN(len(hs))]]
				} else {
					d = districts[placeSrc.IntN(len(districts))]
				}
				pos = geo.Point{
					X: placeSrc.Normal(d.c.X, d.sigma),
					Y: placeSrc.Normal(d.c.Y, d.sigma),
				}
				pos = bounds.Clamp(pos)
			}
			pois = append(pois, poi.POI{ID: id, Type: poi.TypeID(t), Pos: pos})
			id++
		}
	}

	city, err := gsp.NewCity(p.Name, bounds, types, pois)
	if err != nil {
		return nil, err
	}
	return &City{City: city, Params: p}, nil
}

// typeCounts allocates p.NumPOIs across p.NumTypes following a Zipf law,
// guaranteeing every type at least one POI and hitting the total exactly.
func typeCounts(p Params, src *rng.Source) []int {
	z := rng.NewZipf(p.NumTypes, p.ZipfExponent)
	counts := make([]int, p.NumTypes)
	// Deterministic expectation-based allocation, then distribute the
	// remainder by sampling.
	assigned := 0
	for t := 0; t < p.NumTypes; t++ {
		c := int(z.Prob(t) * float64(p.NumPOIs))
		if c < 1 {
			c = 1
		}
		counts[t] = c
		assigned += c
	}
	for assigned > p.NumPOIs {
		// Trim from the most frequent types that can spare POIs.
		for t := 0; t < p.NumTypes && assigned > p.NumPOIs; t++ {
			if counts[t] > 1 {
				counts[t]--
				assigned--
			}
		}
	}
	for assigned < p.NumPOIs {
		counts[z.Sample(src)]++
		assigned++
	}
	return counts
}

// RandomLocations samples n user locations uniformly within the city
// bounds, the "randomly generated user locations" workload of the paper.
func (c *City) RandomLocations(n int, seed uint64) []geo.Point {
	src := rng.New(seed)
	out := make([]geo.Point, n)
	for i := range out {
		x, y := src.UniformIn(c.Bounds.MinX, c.Bounds.MinY, c.Bounds.MaxX, c.Bounds.MaxY)
		out[i] = geo.Point{X: x, Y: y}
	}
	return out
}
