package citygen

import (
	"testing"
)

func TestGenerateBeijingStats(t *testing.T) {
	city, err := Generate(Beijing(1))
	if err != nil {
		t.Fatal(err)
	}
	if city.NumPOIs() != 10_249 {
		t.Errorf("NumPOIs = %d, want 10249", city.NumPOIs())
	}
	if city.M() != 177 {
		t.Errorf("M = %d, want 177", city.M())
	}
	for tID, n := range city.CityFreq() {
		if n < 1 {
			t.Errorf("type %d has zero POIs", tID)
		}
	}
}

func TestGenerateNewYorkStats(t *testing.T) {
	city, err := Generate(NewYork(1))
	if err != nil {
		t.Fatal(err)
	}
	if city.NumPOIs() != 30_056 {
		t.Errorf("NumPOIs = %d, want 30056", city.NumPOIs())
	}
	if city.M() != 272 {
		t.Errorf("M = %d, want 272", city.M())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Beijing(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Beijing(42))
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.POIs(), b.POIs()
	if len(pa) != len(pb) {
		t.Fatal("lengths differ")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("POI %d differs: %v vs %v", i, pa[i], pb[i])
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a, _ := Generate(Beijing(1))
	b, _ := Generate(Beijing(2))
	same := 0
	pa, pb := a.POIs(), b.POIs()
	for i := range pa {
		if pa[i].Pos == pb[i].Pos {
			same++
		}
	}
	if same > len(pa)/100 {
		t.Errorf("different seeds share %d/%d positions", same, len(pa))
	}
}

func TestZipfTailMatchesSanitizationThreshold(t *testing.T) {
	// The paper sanitizes types with city-wide frequency ≤ 10: about 90 of
	// 177 types in Beijing and 138 of 272 in NYC. Our Zipf calibration
	// must land in the same regime (roughly half the vocabulary).
	for _, tc := range []struct {
		params   Params
		min, max int
	}{
		{Beijing(7), 60, 130},
		{NewYork(7), 95, 185},
	} {
		city, err := Generate(tc.params)
		if err != nil {
			t.Fatal(err)
		}
		rare := 0
		for _, n := range city.CityFreq() {
			if n <= 10 {
				rare++
			}
		}
		if rare < tc.min || rare > tc.max {
			t.Errorf("%s: %d types with freq ≤ 10, want in [%d, %d]",
				tc.params.Name, rare, tc.min, tc.max)
		}
	}
}

func TestPOIsWithinBounds(t *testing.T) {
	city, err := Generate(Beijing(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range city.POIs() {
		if !city.Bounds.ContainsClosed(p.Pos) {
			t.Fatalf("POI %d outside bounds: %v", p.ID, p.Pos)
		}
	}
}

func TestSpatialClustering(t *testing.T) {
	// Clustered placement must beat a uniform layout on local density:
	// the mean POI count within 500 m of a POI should be well above the
	// uniform expectation.
	city, err := Generate(Beijing(4))
	if err != nil {
		t.Fatal(err)
	}
	pois := city.POIs()
	uniformExpect := float64(city.NumPOIs()) / city.Bounds.Area() * 3.14159 * 500 * 500
	// Sample every 50th POI to keep the test fast.
	totalNear := 0
	samples := 0
	svc := newTestService(t, city)
	for i := 0; i < len(pois); i += 50 {
		f := svc.Freq(pois[i].Pos, 500)
		totalNear += f.Total()
		samples++
	}
	meanNear := float64(totalNear) / float64(samples)
	if meanNear < 3*uniformExpect {
		t.Errorf("mean local density %.1f not clustered vs uniform %.1f", meanNear, uniformExpect)
	}
}

func TestRandomLocations(t *testing.T) {
	city, err := Generate(Beijing(5))
	if err != nil {
		t.Fatal(err)
	}
	locs := city.RandomLocations(100, 9)
	if len(locs) != 100 {
		t.Fatalf("got %d locations", len(locs))
	}
	for _, l := range locs {
		if !city.Bounds.ContainsClosed(l) {
			t.Errorf("location outside bounds: %v", l)
		}
	}
	again := city.RandomLocations(100, 9)
	for i := range locs {
		if locs[i] != again[i] {
			t.Fatal("RandomLocations not deterministic")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	p := Beijing(1)
	p.NumPOIs = 0
	if _, err := Generate(p); err == nil {
		t.Error("zero NumPOIs accepted")
	}
	p = Beijing(1)
	p.NumDistricts = 0
	if _, err := Generate(p); err == nil {
		t.Error("zero NumDistricts accepted")
	}
}

func TestTypeNamesUniqueAndNonEmpty(t *testing.T) {
	city, err := Generate(NewYork(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, name := range city.Types.Names() {
		if name == "" {
			t.Fatal("empty type name")
		}
		if seen[name] {
			t.Fatalf("duplicate type name %q", name)
		}
		seen[name] = true
	}
}
