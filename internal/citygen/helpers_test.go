package citygen

import (
	"testing"

	"poiagg/internal/gsp"
)

func newTestService(t *testing.T, c *City) *gsp.Service {
	t.Helper()
	return gsp.NewService(c.City, 1024)
}
