// Package cloak implements spatial k-cloaking via the adaptive-interval
// cloaking algorithm of Gruteser and Grunwald (MobiSys'03), as reviewed in
// Section III-C of the paper: starting from the whole city, the area is
// recursively quartered as long as the quadrant containing the requester
// still holds at least k users; the last region that satisfied
// k-anonymity is the cloak.
//
// The same machinery supplies the dummy locations of the paper's
// differentially private defense (Section V-B): k locations inside the
// cloaked region, including the requester's own.
package cloak

import (
	"fmt"

	"poiagg/internal/geo"
	"poiagg/internal/rng"
)

// Population is a fixed set of user locations against which cloaks are
// computed. The paper assumes 10,000 users uniformly distributed over the
// city.
type Population struct {
	bounds geo.Rect
	users  []geo.Point
}

// UniformPopulation places n users uniformly in bounds, deterministically
// from seed.
func UniformPopulation(bounds geo.Rect, n int, seed uint64) *Population {
	src := rng.New(seed)
	users := make([]geo.Point, n)
	for i := range users {
		x, y := src.UniformIn(bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY)
		users[i] = geo.Point{X: x, Y: y}
	}
	return &Population{bounds: bounds, users: users}
}

// NewPopulation wraps an explicit user set (copied).
func NewPopulation(bounds geo.Rect, users []geo.Point) *Population {
	cp := make([]geo.Point, len(users))
	copy(cp, users)
	return &Population{bounds: bounds, users: cp}
}

// Len returns the population size.
func (p *Population) Len() int { return len(p.users) }

// Bounds returns the covered area.
func (p *Population) Bounds() geo.Rect { return p.bounds }

// Cloaker computes k-anonymous cloaking regions over a population.
type Cloaker struct {
	pop *Population
	k   int
	// maxDepth bounds quadtree descent; 30 levels shrink a 30 km city to
	// sub-millimeter cells, far past any useful resolution.
	maxDepth int
}

// NewCloaker returns a cloaker with anonymity parameter k ≥ 1.
func NewCloaker(pop *Population, k int) (*Cloaker, error) {
	if pop == nil {
		return nil, fmt.Errorf("cloak: nil population")
	}
	if k < 1 {
		return nil, fmt.Errorf("cloak: k must be ≥ 1, got %d", k)
	}
	return &Cloaker{pop: pop, k: k, maxDepth: 30}, nil
}

// K returns the anonymity parameter.
func (c *Cloaker) K() int { return c.k }

// Cloak returns the adaptive-interval cloaking region for the requester at
// l. The requester counts toward k (it is one of the users), so the
// returned region always contains l and, whenever the whole-city region
// itself satisfies k-anonymity, at least k users.
func (c *Cloaker) Cloak(l geo.Point) geo.Rect {
	region := c.pop.bounds
	// Candidate users inside the current region; shrinks as we descend.
	candidates := make([]geo.Point, 0, len(c.pop.users))
	for _, u := range c.pop.users {
		if region.ContainsClosed(u) {
			candidates = append(candidates, u)
		}
	}
	for depth := 0; depth < c.maxDepth; depth++ {
		quads := region.Quadrants()
		var sub geo.Rect
		found := false
		for _, q := range quads {
			if q.Contains(l) || (!found && q.ContainsClosed(l)) {
				sub = q
				found = true
			}
		}
		if !found {
			break // l outside region (shouldn't happen); stop refining
		}
		inside := filterInto(nil, candidates, sub)
		// +1 counts the requester itself when it is not part of the
		// population sample.
		if len(inside) < c.k {
			break
		}
		region = sub
		candidates = inside
	}
	return region
}

func filterInto(dst, src []geo.Point, r geo.Rect) []geo.Point {
	for _, u := range src {
		if r.Contains(u) {
			dst = append(dst, u)
		}
	}
	return dst
}

// DummyLocations returns k locations inside the cloaking region of l: the
// true location plus k−1 uniform samples from the region. These are the
// d_1, …, d_k of the paper's DP defense.
func (c *Cloaker) DummyLocations(l geo.Point, src *rng.Source) []geo.Point {
	region := c.Cloak(l)
	out := make([]geo.Point, 0, c.k)
	out = append(out, l)
	for len(out) < c.k {
		x, y := src.UniformIn(region.MinX, region.MinY, region.MaxX, region.MaxY)
		out = append(out, geo.Point{X: x, Y: y})
	}
	return out
}
