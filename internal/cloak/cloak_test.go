package cloak

import (
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/rng"
)

var testBounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 10_000, MaxY: 10_000}

func countIn(pop *Population, r geo.Rect) int {
	n := 0
	for _, u := range pop.users {
		if r.Contains(u) {
			n++
		}
	}
	return n
}

func TestUniformPopulation(t *testing.T) {
	pop := UniformPopulation(testBounds, 1000, 1)
	if pop.Len() != 1000 {
		t.Fatalf("Len = %d", pop.Len())
	}
	for _, u := range pop.users {
		if !testBounds.ContainsClosed(u) {
			t.Fatalf("user outside bounds: %v", u)
		}
	}
	if pop.Bounds() != testBounds {
		t.Error("Bounds mismatch")
	}
}

func TestNewCloakerValidation(t *testing.T) {
	pop := UniformPopulation(testBounds, 10, 1)
	if _, err := NewCloaker(nil, 5); err == nil {
		t.Error("nil population accepted")
	}
	if _, err := NewCloaker(pop, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCloakContainsRequesterAndKUsers(t *testing.T) {
	pop := UniformPopulation(testBounds, 10_000, 2)
	src := rng.New(3)
	for _, k := range []int{2, 5, 10, 25, 50} {
		cloaker, err := NewCloaker(pop, k)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			x, y := src.UniformIn(testBounds.MinX, testBounds.MinY, testBounds.MaxX, testBounds.MaxY)
			l := geo.Point{X: x, Y: y}
			region := cloaker.Cloak(l)
			if !region.ContainsClosed(l) {
				t.Fatalf("k=%d: cloak %v does not contain %v", k, region, l)
			}
			if got := countIn(pop, region); got < k {
				t.Fatalf("k=%d: cloak holds %d users", k, got)
			}
		}
	}
}

func TestCloakShrinksWithSmallerK(t *testing.T) {
	pop := UniformPopulation(testBounds, 10_000, 4)
	l := geo.Point{X: 5_000, Y: 5_000}
	var prevArea float64 = -1
	// Increasing k must weakly increase the cloak area at a fixed point.
	for _, k := range []int{2, 10, 50, 200} {
		cloaker, err := NewCloaker(pop, k)
		if err != nil {
			t.Fatal(err)
		}
		area := cloaker.Cloak(l).Area()
		if prevArea > 0 && area < prevArea-1e-6 {
			t.Errorf("area shrank from %v to %v as k grew to %d", prevArea, area, k)
		}
		prevArea = area
	}
}

func TestCloakKLargerThanPopulation(t *testing.T) {
	pop := UniformPopulation(testBounds, 5, 5)
	cloaker, err := NewCloaker(pop, 100)
	if err != nil {
		t.Fatal(err)
	}
	region := cloaker.Cloak(geo.Point{X: 100, Y: 100})
	if region != testBounds {
		t.Errorf("cloak should be whole city, got %v", region)
	}
}

func TestCloakDeterministic(t *testing.T) {
	pop := UniformPopulation(testBounds, 5_000, 6)
	cloaker, err := NewCloaker(pop, 20)
	if err != nil {
		t.Fatal(err)
	}
	l := geo.Point{X: 3_333, Y: 7_777}
	if cloaker.Cloak(l) != cloaker.Cloak(l) {
		t.Error("Cloak not deterministic")
	}
}

func TestDummyLocations(t *testing.T) {
	pop := UniformPopulation(testBounds, 10_000, 7)
	cloaker, err := NewCloaker(pop, 20)
	if err != nil {
		t.Fatal(err)
	}
	l := geo.Point{X: 4_000, Y: 4_000}
	region := cloaker.Cloak(l)
	src := rng.New(8)
	dummies := cloaker.DummyLocations(l, src)
	if len(dummies) != 20 {
		t.Fatalf("got %d dummies, want 20", len(dummies))
	}
	if dummies[0] != l {
		t.Error("first dummy must be the true location")
	}
	for i, d := range dummies {
		if !region.ContainsClosed(d) {
			t.Errorf("dummy %d outside cloak: %v not in %v", i, d, region)
		}
	}
}

func TestNewPopulationCopies(t *testing.T) {
	users := []geo.Point{{X: 1, Y: 1}}
	pop := NewPopulation(testBounds, users)
	users[0] = geo.Point{X: 999, Y: 999}
	if pop.users[0] != (geo.Point{X: 1, Y: 1}) {
		t.Error("NewPopulation aliased input")
	}
}
