// Package cluster provides the consistent-hash ring that partitions the
// GSP keyspace — (city × grid cell) — across a fleet of gspd shards.
//
// The ring hashes each peer onto many virtual points (virtual nodes);
// a key is owned by the peer whose next point clockwise covers it.
// Virtual nodes smooth the per-peer ownership share (the property test
// bounds the max/min cell-ownership ratio), and the clockwise-successor
// rule gives minimal disruption: adding or removing one peer of N moves
// only ~1/N of the keys, and every moved key moves to or from exactly
// that peer — the rest of the fleet keeps its cache-warm cells.
//
// The ring is safe for concurrent use: the gateway's health prober
// removes and re-adds peers while request fan-out resolves owners.
package cluster

import (
	"math"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the per-peer virtual-node count unless New is
// given another. 128 points per peer keeps the max/min ownership ratio
// under ~1.7 across small fleets (see TestRingBalance) at negligible
// memory cost.
const DefaultVirtualNodes = 128

// point is one virtual node: a position on the ring owned by a peer.
type point struct {
	hash uint64
	peer string
}

// Ring is a consistent-hash ring over peer names (base URLs, for the
// gateway). The zero value is not usable; call New.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	points []point // sorted by (hash, peer)
	peers  map[string][]uint64
}

// New returns an empty ring placing vnodes virtual points per peer
// (DefaultVirtualNodes when vnodes <= 0).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, peers: make(map[string][]uint64)}
}

// vnodeHashes returns the ring positions of a peer's virtual nodes.
func (r *Ring) vnodeHashes(peer string) []uint64 {
	hs := make([]uint64, r.vnodes)
	for i := range hs {
		hs[i] = hashString(peer + "#" + strconv.Itoa(i))
	}
	return hs
}

// Add inserts a peer; it reports false if the peer was already present.
func (r *Ring) Add(peer string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[peer]; ok {
		return false
	}
	hs := r.vnodeHashes(peer)
	r.peers[peer] = hs
	pts := make([]point, 0, len(r.points)+len(hs))
	pts = append(pts, r.points...)
	for _, h := range hs {
		pts = append(pts, point{hash: h, peer: peer})
	}
	sortPoints(pts)
	r.points = pts
	return true
}

// Remove deletes a peer; it reports false if the peer was not present.
func (r *Ring) Remove(peer string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[peer]; !ok {
		return false
	}
	delete(r.peers, peer)
	pts := make([]point, 0, len(r.points)-r.vnodes)
	for _, p := range r.points {
		if p.peer != peer {
			pts = append(pts, p)
		}
	}
	r.points = pts
	return true
}

// sortPoints orders by hash, breaking the (astronomically unlikely)
// hash tie by peer name so ownership never depends on insertion order.
func sortPoints(pts []point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].peer < pts[j].peer
	})
}

// Owner returns the peer owning key: the first virtual point at or
// clockwise after the key's position, wrapping at the top. ok is false
// when the ring is empty.
func (r *Ring) Owner(key uint64) (peer string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer, true
}

// Owners returns up to n distinct peers for key in replica-rank order:
// rank 0 is Owner(key), rank k the k-th distinct peer encountered
// walking clockwise from the key's position. Walking peers (not just
// points) keeps each rank a consistent-hash function of the member set,
// so per-rank disruption under membership change stays ~1/N — the same
// minimal-movement property Owner has, once per rank. n is capped at
// the number of peers on the ring; an empty ring returns nil.
func (r *Ring) Owners(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for off := 0; off < len(r.points) && len(out) < n; off++ {
		p := r.points[(i+off)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Contains reports whether peer is currently on the ring.
func (r *Ring) Contains(peer string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.peers[peer]
	return ok
}

// Peers returns the current members, sorted.
func (r *Ring) Peers() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.peers))
	for p := range r.peers {
		out = append(out, p)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of peers on the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.peers)
}

// DefaultCellSize quantizes query coordinates into routing cells. It
// matches the GSP spatial index's 500 m grid: queries for nearby
// locations land on the same shard, so each shard's freq cache holds a
// compact, disjoint slice of the city.
const DefaultCellSize = 500.0

// CellOf quantizes a coordinate pair to its routing grid cell.
// cellSize <= 0 uses DefaultCellSize.
func CellOf(x, y, cellSize float64) (cx, cy int) {
	if cellSize <= 0 {
		cellSize = DefaultCellSize
	}
	return int(math.Floor(x / cellSize)), int(math.Floor(y / cellSize))
}

// Key hashes one (city × grid cell) keyspace element to its ring
// position. The city label isolates co-hosted cities on one fleet; a
// single-city deployment may leave it empty.
func Key(city string, cx, cy int) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(city); i++ {
		h = (h ^ uint64(city[i])) * fnvPrime
	}
	h = fnvUint64(h, uint64(int64(cx)))
	h = fnvUint64(h, uint64(int64(cy)))
	return mix64(h)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvUint64 folds v's eight bytes into the running FNV-1a state.
func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// hashString is FNV-1a over s with a splitmix64 finalizer — FNV alone
// clusters on short suffix changes ("peer#1" vs "peer#2"), and ring
// balance depends on the points being spread uniformly.
func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
