package cluster

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"testing"
)

// testPeers returns n synthetic peer URLs.
func testPeers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://shard-%d:8080", i)
	}
	return out
}

// testKeys returns a deterministic population of (city × cell) keys
// shaped like a real routing workload: a contiguous block of grid
// cells, not random 64-bit values — the ring must balance the keys it
// will actually see.
func testKeys(n int) []uint64 {
	side := 1
	for side*side < n {
		side++
	}
	keys := make([]uint64, 0, n)
	for cx := 0; cx < side && len(keys) < n; cx++ {
		for cy := 0; cy < side && len(keys) < n; cy++ {
			keys = append(keys, Key("beijing", cx, cy))
		}
	}
	return keys
}

// ownersOf resolves every key, failing the test on an empty ring.
func ownersOf(t *testing.T, r *Ring, keys []uint64) []string {
	t.Helper()
	out := make([]string, len(keys))
	for i, k := range keys {
		p, ok := r.Owner(k)
		if !ok {
			t.Fatalf("ring with %d peers owned nothing for key %d", r.Len(), k)
		}
		out[i] = p
	}
	return out
}

// TestRingBalance asserts the distribution property across ring sizes:
// with enough virtual nodes, no peer owns disproportionately many cells.
// The hash is deterministic, so the observed ratios are stable; the
// bounds carry roughly 40% headroom over measured values.
func TestRingBalance(t *testing.T) {
	const numKeys = 20000
	keys := testKeys(numKeys)
	cases := []struct {
		peers    int
		vnodes   int
		maxRatio float64 // max/min ownership bound
	}{
		{2, 64, 2.0},
		{2, 128, 1.8},
		{3, 128, 1.8},
		{4, 128, 2.0},
		{5, 256, 1.8},
		{8, 128, 2.2},
		{8, 256, 2.0},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("peers=%d,vnodes=%d", tc.peers, tc.vnodes), func(t *testing.T) {
			r := New(tc.vnodes)
			for _, p := range testPeers(tc.peers) {
				r.Add(p)
			}
			counts := make(map[string]int, tc.peers)
			for _, owner := range ownersOf(t, r, keys) {
				counts[owner]++
			}
			if len(counts) != tc.peers {
				t.Fatalf("only %d of %d peers own any cells: %v", len(counts), tc.peers, counts)
			}
			minN, maxN := numKeys, 0
			for _, n := range counts {
				minN = min(minN, n)
				maxN = max(maxN, n)
			}
			ratio := float64(maxN) / float64(minN)
			t.Logf("ownership %v, max/min ratio %.3f", counts, ratio)
			if ratio > tc.maxRatio {
				t.Errorf("ownership ratio %.3f exceeds bound %.2f (counts %v)", ratio, tc.maxRatio, counts)
			}
		})
	}
}

// TestRingMinimalDisruptionOnAdd asserts the consistent-hashing
// contract exactly: when peer N+1 joins, every key either keeps its
// owner or moves to the new peer — never between old peers — and the
// moved share is in the neighborhood of 1/(N+1).
func TestRingMinimalDisruptionOnAdd(t *testing.T) {
	const numKeys = 20000
	keys := testKeys(numKeys)
	for _, n := range []int{1, 2, 3, 5, 7} {
		t.Run(fmt.Sprintf("peers=%d", n), func(t *testing.T) {
			r := New(128)
			peers := testPeers(n + 1)
			for _, p := range peers[:n] {
				r.Add(p)
			}
			before := ownersOf(t, r, keys)
			newcomer := peers[n]
			r.Add(newcomer)
			after := ownersOf(t, r, keys)

			moved := 0
			for i := range keys {
				if after[i] == before[i] {
					continue
				}
				moved++
				if after[i] != newcomer {
					t.Fatalf("key %d moved %s -> %s, not to the new peer %s",
						keys[i], before[i], after[i], newcomer)
				}
			}
			ideal := float64(numKeys) / float64(n+1)
			t.Logf("%d of %d keys moved (ideal %.0f)", moved, numKeys, ideal)
			if moved == 0 {
				t.Fatal("new peer took no keys")
			}
			if f := float64(moved); f < 0.4*ideal || f > 2.0*ideal {
				t.Errorf("moved %d keys, want within [0.4, 2.0]x the ideal %.0f", moved, ideal)
			}
		})
	}
}

// TestRingMinimalDisruptionOnRemove asserts the inverse contract: when
// a peer leaves, exactly its keys move (to survivors) and every other
// key keeps its owner — the probe-driven eviction path must not
// reshuffle healthy shards' cells.
func TestRingMinimalDisruptionOnRemove(t *testing.T) {
	const numKeys = 20000
	keys := testKeys(numKeys)
	for _, n := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("peers=%d", n), func(t *testing.T) {
			r := New(128)
			peers := testPeers(n)
			for _, p := range peers {
				r.Add(p)
			}
			before := ownersOf(t, r, keys)
			victim := peers[n/2]
			r.Remove(victim)
			after := ownersOf(t, r, keys)

			moved := 0
			for i := range keys {
				switch {
				case before[i] == victim:
					moved++
					if after[i] == victim {
						t.Fatalf("key %d still owned by removed peer %s", keys[i], victim)
					}
				case after[i] != before[i]:
					t.Fatalf("key %d not owned by the removed peer moved %s -> %s",
						keys[i], before[i], after[i])
				}
			}
			if moved == 0 {
				t.Fatal("removed peer owned no keys")
			}
			t.Logf("%d of %d keys moved off the removed peer", moved, numKeys)

			// Re-adding restores the exact pre-removal ownership: vnode
			// positions depend only on the peer name.
			r.Add(victim)
			restored := ownersOf(t, r, keys)
			for i := range keys {
				if restored[i] != before[i] {
					t.Fatalf("key %d owner %s after re-add, want %s", keys[i], restored[i], before[i])
				}
			}
		})
	}
}

// TestRingOwnerDeterministicAcrossInsertionOrder: ownership is a pure
// function of the member set, not the join sequence — otherwise two
// gateways over the same fleet would route the same cell differently.
func TestRingOwnerDeterministicAcrossInsertionOrder(t *testing.T) {
	keys := testKeys(5000)
	peers := testPeers(5)
	a := New(128)
	for _, p := range peers {
		a.Add(p)
	}
	b := New(128)
	for i := len(peers) - 1; i >= 0; i-- {
		b.Add(peers[i])
	}
	for _, k := range keys {
		pa, _ := a.Owner(k)
		pb, _ := b.Owner(k)
		if pa != pb {
			t.Fatalf("key %d: owner %s vs %s across insertion orders", k, pa, pb)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := New(16)
	if _, ok := r.Owner(42); ok {
		t.Error("empty ring claimed an owner")
	}
	if r.Len() != 0 || len(r.Peers()) != 0 {
		t.Errorf("empty ring reports members: len=%d peers=%v", r.Len(), r.Peers())
	}
	if !r.Add("a") {
		t.Error("first Add reported duplicate")
	}
	if r.Add("a") {
		t.Error("duplicate Add reported success")
	}
	for _, k := range testKeys(100) {
		if p, ok := r.Owner(k); !ok || p != "a" {
			t.Fatalf("single-peer ring: Owner = %q, %v", p, ok)
		}
	}
	if r.Remove("ghost") {
		t.Error("removing an absent peer reported success")
	}
	if !r.Remove("a") {
		t.Error("removing a present peer failed")
	}
	if _, ok := r.Owner(42); ok {
		t.Error("drained ring claimed an owner")
	}
	if r.Contains("a") {
		t.Error("drained ring still contains peer")
	}
}

// TestRingOwnersProperties pins the basic Owners contract: rank 0 is
// Owner, every rank is a distinct peer, shorter calls are prefixes of
// longer ones, and the count caps at the fleet size.
func TestRingOwnersProperties(t *testing.T) {
	r := New(16)
	if got := r.Owners(42, 3); got != nil {
		t.Errorf("empty ring Owners = %v, want nil", got)
	}
	const n = 5
	for _, p := range testPeers(n) {
		r.Add(p)
	}
	for _, k := range testKeys(2000) {
		if got := r.Owners(k, 0); got != nil {
			t.Fatalf("Owners(k, 0) = %v, want nil", got)
		}
		full := r.Owners(k, n+3)
		if len(full) != n {
			t.Fatalf("Owners over-asked returned %d peers, want %d", len(full), n)
		}
		seen := map[string]bool{}
		for _, p := range full {
			if seen[p] {
				t.Fatalf("Owners returned duplicate peer %s in %v", p, full)
			}
			seen[p] = true
		}
		owner, _ := r.Owner(k)
		if full[0] != owner {
			t.Fatalf("Owners rank 0 = %s, Owner = %s", full[0], owner)
		}
		for rr := 1; rr <= n; rr++ {
			pre := r.Owners(k, rr)
			if len(pre) != rr {
				t.Fatalf("Owners(k, %d) returned %d peers", rr, len(pre))
			}
			for i := range pre {
				if pre[i] != full[i] {
					t.Fatalf("Owners(k, %d) = %v is not a prefix of %v", rr, pre, full)
				}
			}
		}
	}
}

// TestRingOwnersStableUnderChurn asserts the replica-rank analogue of
// minimal disruption, in its exact form: adding a peer inserts it at
// one position in each key's clockwise owner ordering without
// reordering the rest (so deleting the newcomer from the new ordering
// recovers the old one, and removal is the exact inverse), and the
// measured per-rank disruption stays in the ~(rank+1)/(N+1) band.
func TestRingOwnersStableUnderChurn(t *testing.T) {
	const numKeys = 5000
	keys := testKeys(numKeys)
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("peers=%d", n), func(t *testing.T) {
			r := New(128)
			peers := testPeers(n + 1)
			for _, p := range peers[:n] {
				r.Add(p)
			}
			before := make([][]string, len(keys))
			for i, k := range keys {
				before[i] = r.Owners(k, n)
			}
			newcomer := peers[n]
			r.Add(newcomer)

			movedAtRank := make([]int, 3)
			for i, k := range keys {
				after := r.Owners(k, n+1)
				if len(after) != n+1 {
					t.Fatalf("key %d: %d owners after add, want %d", k, len(after), n+1)
				}
				// Deleting the newcomer must recover the old ordering
				// exactly: unrelated ranks are stable under the add.
				stripped := make([]string, 0, n)
				for _, p := range after {
					if p != newcomer {
						stripped = append(stripped, p)
					}
				}
				for j := range before[i] {
					if stripped[j] != before[i][j] {
						t.Fatalf("key %d: add reordered survivors: %v -> %v", k, before[i], after)
					}
				}
				for rank := range movedAtRank {
					if rank < len(before[i]) && after[rank] != before[i][rank] {
						movedAtRank[rank]++
					}
				}
			}
			for rank, moved := range movedAtRank {
				// The newcomer lands at rank <= k for ~(k+1)/(N+1) of
				// keys, shifting that rank; 2.5x headroom over ideal.
				bound := 2.5 * float64(rank+1) / float64(n+1) * numKeys
				t.Logf("rank %d: %d of %d keys changed owner (bound %.0f)", rank, moved, numKeys, bound)
				if float64(moved) > bound {
					t.Errorf("rank %d disruption %d exceeds bound %.0f", rank, moved, bound)
				}
			}
			if movedAtRank[0] == 0 {
				t.Error("newcomer took no rank-0 keys")
			}

			// Removing the newcomer restores every key's full ordering:
			// the exact move-set of the churn is the newcomer's cells.
			r.Remove(newcomer)
			for i, k := range keys {
				restored := r.Owners(k, n)
				for j := range before[i] {
					if restored[j] != before[i][j] {
						t.Fatalf("key %d: ordering not restored after remove: %v -> %v", k, before[i], restored)
					}
				}
			}
		})
	}
}

// TestRingConcurrentMutation hammers Owner against concurrent Add and
// Remove of floating peers; under -race this proves the locking, and
// the assertions prove a reader always sees a coherent member.
func TestRingConcurrentMutation(t *testing.T) {
	r := New(64)
	stable := testPeers(3)
	for _, p := range stable {
		r.Add(p)
	}
	stableSet := map[string]bool{}
	for _, p := range stable {
		stableSet[p] = true
	}
	keys := testKeys(512)

	var readers, mutators sync.WaitGroup
	stop := make(chan struct{})
	// Mutators churn two floating peers on and off the ring.
	for m := 0; m < 2; m++ {
		mutators.Add(1)
		go func(m int) {
			defer mutators.Done()
			peer := "http://floater-" + strconv.Itoa(m) + ":8080"
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Add(peer)
				r.Remove(peer)
			}
		}(m)
	}
	// Readers resolve owners the whole time; every result must be a
	// peer that can legitimately be on the ring.
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			rng := rand.New(rand.NewPCG(7, uint64(w)))
			for i := 0; i < 20000; i++ {
				k := keys[rng.IntN(len(keys))]
				p, ok := r.Owner(k)
				if !ok {
					t.Errorf("ring with 3 stable peers reported empty")
					return
				}
				if !stableSet[p] && p != "http://floater-0:8080" && p != "http://floater-1:8080" {
					t.Errorf("Owner returned unknown peer %q", p)
					return
				}
			}
		}(w)
	}
	readers.Wait()
	close(stop)
	mutators.Wait()
}
