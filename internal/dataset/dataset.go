// Package dataset persists cities and mobility traces as versioned JSON,
// so generated substrates can be inspected, diffed, shared, and reloaded
// (e.g. a real OpenStreetMap extract converted once and reused across
// runs).
package dataset

import (
	"encoding/json"
	"fmt"
	"io"

	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/trajgen"
)

// FormatVersion is bumped on breaking schema changes.
const FormatVersion = 1

// CityFile is the on-disk schema of a city snapshot.
type CityFile struct {
	Version int       `json:"version"`
	Name    string    `json:"name"`
	Bounds  geo.Rect  `json:"bounds"`
	Types   []string  `json:"types"`
	POIs    []poi.POI `json:"pois"`
}

// SaveCity writes a city snapshot to w.
func SaveCity(w io.Writer, city *gsp.City) error {
	if city == nil {
		return fmt.Errorf("dataset: SaveCity: nil city")
	}
	f := CityFile{
		Version: FormatVersion,
		Name:    city.Name,
		Bounds:  city.Bounds,
		Types:   city.Types.Names(),
		POIs:    city.POIs(),
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("dataset: SaveCity: %w", err)
	}
	return nil
}

// LoadCity reads a city snapshot from r and rebuilds the indexed city.
func LoadCity(r io.Reader) (*gsp.City, error) {
	var f CityFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("dataset: LoadCity: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("dataset: LoadCity: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	if f.Bounds.Width() <= 0 || f.Bounds.Height() <= 0 {
		return nil, fmt.Errorf("dataset: LoadCity: degenerate bounds %v", f.Bounds)
	}
	types := poi.NewTypeTable()
	for _, name := range f.Types {
		if name == "" {
			return nil, fmt.Errorf("dataset: LoadCity: empty type name")
		}
		types.Intern(name)
	}
	if types.Len() != len(f.Types) {
		return nil, fmt.Errorf("dataset: LoadCity: duplicate type names")
	}
	city, err := gsp.NewCity(f.Name, f.Bounds, types, f.POIs)
	if err != nil {
		return nil, fmt.Errorf("dataset: LoadCity: %w", err)
	}
	return city, nil
}

// TraceKind labels the mobility model a trace file holds.
type TraceKind string

// Trace kinds.
const (
	TraceTaxi    TraceKind = "taxi"
	TraceCheckin TraceKind = "checkin"
)

// TraceFile is the on-disk schema of a mobility trace set.
type TraceFile struct {
	Version      int                  `json:"version"`
	City         string               `json:"city"`
	Kind         TraceKind            `json:"kind"`
	Trajectories []trajgen.Trajectory `json:"trajectories"`
}

// SaveTrajectories writes a trace set to w.
func SaveTrajectories(w io.Writer, cityName string, kind TraceKind, trajs []trajgen.Trajectory) error {
	switch kind {
	case TraceTaxi, TraceCheckin:
	default:
		return fmt.Errorf("dataset: SaveTrajectories: unknown kind %q", kind)
	}
	f := TraceFile{
		Version:      FormatVersion,
		City:         cityName,
		Kind:         kind,
		Trajectories: trajs,
	}
	if err := json.NewEncoder(w).Encode(f); err != nil {
		return fmt.Errorf("dataset: SaveTrajectories: %w", err)
	}
	return nil
}

// LoadTrajectories reads a trace set from r.
func LoadTrajectories(r io.Reader) (*TraceFile, error) {
	var f TraceFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("dataset: LoadTrajectories: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("dataset: LoadTrajectories: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	for _, tr := range f.Trajectories {
		for i := 1; i < len(tr.Points); i++ {
			if tr.Points[i].T.Before(tr.Points[i-1].T) {
				return nil, fmt.Errorf("dataset: LoadTrajectories: user %d has non-monotone timestamps", tr.UserID)
			}
		}
	}
	return &f, nil
}
