package dataset

import (
	"bytes"
	"strings"
	"testing"

	"poiagg/internal/citygen"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/trajgen"
)

func genCity(t *testing.T) *citygen.City {
	t.Helper()
	p := citygen.Beijing(3)
	p.NumPOIs = 800
	p.NumTypes = 40
	city, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestCityRoundTrip(t *testing.T) {
	city := genCity(t)
	var buf bytes.Buffer
	if err := SaveCity(&buf, city.City); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCity(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != city.Name || loaded.M() != city.M() || loaded.NumPOIs() != city.NumPOIs() {
		t.Errorf("metadata mismatch: %s/%d/%d", loaded.Name, loaded.M(), loaded.NumPOIs())
	}
	if !loaded.CityFreq().Equal(city.CityFreq()) {
		t.Error("city frequency vector changed in round trip")
	}
	// The rebuilt index must answer identically.
	svcA := gsp.NewService(city.City, 0)
	svcB := gsp.NewService(loaded, 0)
	for i := 0; i < 20; i++ {
		l := geo.Point{X: float64(i) * 700, Y: float64(i) * 600}
		if !svcA.Freq(l, 1500).Equal(svcB.Freq(l, 1500)) {
			t.Fatalf("Freq mismatch at %v", l)
		}
	}
	// Type names survive.
	for i := 0; i < city.M(); i++ {
		if city.Types.Name(poi.TypeID(i)) != loaded.Types.Name(poi.TypeID(i)) {
			t.Fatalf("type name %d changed", i)
		}
	}
}

func TestSaveCityNil(t *testing.T) {
	if err := SaveCity(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil city accepted")
	}
}

func TestLoadCityErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"bad version", `{"version":99,"name":"x","bounds":{"minX":0,"minY":0,"maxX":1,"maxY":1},"types":["a"],"pois":[]}`},
		{"degenerate bounds", `{"version":1,"name":"x","bounds":{"minX":0,"minY":0,"maxX":0,"maxY":1},"types":["a"],"pois":[]}`},
		{"empty type name", `{"version":1,"name":"x","bounds":{"minX":0,"minY":0,"maxX":1,"maxY":1},"types":[""],"pois":[]}`},
		{"duplicate types", `{"version":1,"name":"x","bounds":{"minX":0,"minY":0,"maxX":1,"maxY":1},"types":["a","a"],"pois":[]}`},
		{"unregistered POI type", `{"version":1,"name":"x","bounds":{"minX":0,"minY":0,"maxX":1,"maxY":1},"types":["a"],"pois":[{"id":0,"type":7,"pos":{"x":0,"y":0}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadCity(strings.NewReader(tc.in)); err == nil {
				t.Errorf("accepted %s", tc.name)
			}
		})
	}
}

func TestTrajectoriesRoundTrip(t *testing.T) {
	city := genCity(t)
	p := trajgen.DefaultTaxiParams(5)
	p.NumTaxis = 5
	p.PointsPerTaxi = 10
	trajs, err := trajgen.Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrajectories(&buf, city.Name, TraceTaxi, trajs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrajectories(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != TraceTaxi || loaded.City != city.Name {
		t.Errorf("metadata: %+v", loaded)
	}
	if len(loaded.Trajectories) != len(trajs) {
		t.Fatalf("trajectory count %d", len(loaded.Trajectories))
	}
	for i := range trajs {
		for j := range trajs[i].Points {
			a, b := trajs[i].Points[j], loaded.Trajectories[i].Points[j]
			if a.Pos != b.Pos || !a.T.Equal(b.T) {
				t.Fatalf("point %d/%d changed: %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestSaveTrajectoriesBadKind(t *testing.T) {
	if err := SaveTrajectories(&bytes.Buffer{}, "x", TraceKind("walk"), nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestLoadTrajectoriesErrors(t *testing.T) {
	if _, err := LoadTrajectories(strings.NewReader("junk")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadTrajectories(strings.NewReader(`{"version":9}`)); err == nil {
		t.Error("bad version accepted")
	}
	bad := `{"version":1,"city":"x","kind":"taxi","trajectories":[{"userId":1,"points":[` +
		`{"pos":{"x":0,"y":0},"t":"2020-01-01T10:00:00Z"},` +
		`{"pos":{"x":1,"y":1},"t":"2020-01-01T09:00:00Z"}]}]}`
	if _, err := LoadTrajectories(strings.NewReader(bad)); err == nil {
		t.Error("non-monotone timestamps accepted")
	}
}
