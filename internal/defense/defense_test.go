package defense

import (
	"math"
	"sync"
	"testing"

	"poiagg/internal/attack"
	"poiagg/internal/citygen"
	"poiagg/internal/cloak"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

var (
	fixtureOnce sync.Once
	fixtureCity *citygen.City
	fixtureSvc  *gsp.Service
	fixturePop  *cloak.Population
)

func fixture(t testing.TB) (*citygen.City, *gsp.Service, *cloak.Population) {
	t.Helper()
	fixtureOnce.Do(func() {
		p := citygen.Beijing(17)
		p.NumPOIs = 2500
		p.NumTypes = 80
		p.Width, p.Height = 15_000, 15_000
		p.NumDistricts = 30
		city, err := citygen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		fixtureCity = city
		fixtureSvc = gsp.NewService(city.City, 1<<16)
		fixturePop = cloak.UniformPopulation(city.Bounds, 10_000, 99)
	})
	return fixtureCity, fixtureSvc, fixturePop
}

func TestSanitizerThreshold(t *testing.T) {
	city, _, _ := fixture(t)
	s, err := NewSanitizer(city.City, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sanitized()) == 0 {
		t.Fatal("no types sanitized at threshold 10")
	}
	for _, typ := range s.Sanitized() {
		if city.CityFreq()[typ] > 10 {
			t.Errorf("type %d freq %d over threshold", typ, city.CityFreq()[typ])
		}
		if !s.IsSanitized(typ) {
			t.Errorf("IsSanitized(%d) = false", typ)
		}
	}
	f := poi.NewFreqVector(city.M())
	for i := range f {
		f[i] = 3
	}
	out := s.Apply(f)
	for i := range out {
		want := 3
		if s.IsSanitized(poi.TypeID(i)) {
			want = 0
		}
		if out[i] != want {
			t.Errorf("entry %d = %d, want %d", i, out[i], want)
		}
	}
	if f[s.Sanitized()[0]] != 3 {
		t.Error("Apply mutated input")
	}
}

func TestNewSanitizerNilCity(t *testing.T) {
	if _, err := NewSanitizer(nil, 10); err == nil {
		t.Error("nil city accepted")
	}
}

func TestSanitizationReducesAttack(t *testing.T) {
	city, svc, _ := fixture(t)
	s, err := NewSanitizer(city.City, 10)
	if err != nil {
		t.Fatal(err)
	}
	const r = 800.0
	locs := city.RandomLocations(150, 1)
	var plain, protected int
	for _, l := range locs {
		f := svc.Freq(l, r)
		if attack.Region(svc, f, r).Success {
			plain++
		}
		if attack.Region(svc, s.Apply(f), r).Success {
			protected++
		}
	}
	if plain == 0 {
		t.Fatal("baseline never succeeded")
	}
	if protected >= plain {
		t.Errorf("sanitization did not help: %d vs %d", protected, plain)
	}
}

func TestGeoIndReducesAttackMoreAtSmallEps(t *testing.T) {
	city, svc, _ := fixture(t)
	const r = 800.0
	locs := city.RandomLocations(120, 2)
	rates := make(map[string]int)
	for _, l := range locs {
		if attack.Region(svc, svc.Freq(l, r), r).Success {
			rates["plain"]++
		}
	}
	for _, eps := range []float64{0.1, 1.0} {
		g, err := NewGeoInd(svc, eps)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(uint64(eps * 100))
		for _, l := range locs {
			f := g.Release(src, l, r)
			if attack.Region(svc, f, r).Success {
				if eps == 0.1 {
					rates["eps01"]++
				} else {
					rates["eps10"]++
				}
			}
		}
	}
	if rates["plain"] == 0 {
		t.Fatal("baseline never succeeded")
	}
	// ε=0.1 adds ~2 km mean displacement and must beat ε=1.0 (~200 m).
	if rates["eps01"] >= rates["eps10"] {
		t.Errorf("eps=0.1 (%d) should protect better than eps=1.0 (%d)", rates["eps01"], rates["eps10"])
	}
	if rates["eps01"] >= rates["plain"] {
		t.Errorf("geo-ind did not reduce success at all: %v", rates)
	}
}

func TestNewGeoIndValidation(t *testing.T) {
	_, svc, _ := fixture(t)
	if _, err := NewGeoInd(nil, 1); err == nil {
		t.Error("nil service accepted")
	}
	if _, err := NewGeoInd(svc, 0); err == nil {
		t.Error("zero eps accepted")
	}
}

func TestCloakingRelease(t *testing.T) {
	city, svc, pop := fixture(t)
	c, err := NewCloaking(svc, pop, 20)
	if err != nil {
		t.Fatal(err)
	}
	l := city.RandomLocations(1, 3)[0]
	f := c.Release(l, 800)
	if len(f) != city.M() {
		t.Fatalf("vector has %d dims", len(f))
	}
	// The release is the aggregate at the cloak center.
	want := svc.Freq(c.Cloaker().Cloak(l).Center(), 800)
	if !f.Equal(want) {
		t.Error("release differs from cloak-center aggregate")
	}
}

func TestCloakingSuccessDecreasesWithK(t *testing.T) {
	city, svc, pop := fixture(t)
	const r = 800.0
	locs := city.RandomLocations(120, 4)
	prev := math.MaxInt
	for _, k := range []int{2, 50} {
		c, err := NewCloaking(svc, pop, k)
		if err != nil {
			t.Fatal(err)
		}
		succ := 0
		for _, l := range locs {
			if attack.Region(svc, c.Release(l, r), r).Success {
				succ++
			}
		}
		if succ > prev {
			t.Errorf("success rate grew with k: %d at k=%d (prev %d)", succ, k, prev)
		}
		prev = succ
	}
}

func TestNewCloakingValidation(t *testing.T) {
	_, svc, pop := fixture(t)
	if _, err := NewCloaking(nil, pop, 5); err == nil {
		t.Error("nil service accepted")
	}
	if _, err := NewCloaking(svc, pop, 0); err == nil {
		t.Error("k=0 accepted")
	}
}
