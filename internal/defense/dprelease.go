package defense

import (
	"fmt"
	"math"

	"poiagg/internal/cloak"
	"poiagg/internal/dp"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// NoiseMechanism selects the additive noise of the DP release.
type NoiseMechanism int

// Noise mechanisms.
const (
	// MechGaussian is the paper's mechanism: (ε,δ)-DP Gaussian noise
	// calibrated per Definition 2.
	MechGaussian NoiseMechanism = iota + 1
	// MechLaplace is the pure ε-DP ablation: Laplace(Δ_i/ε) noise per
	// dimension (δ is ignored). Under the paper's neighbouring relation
	// (one dimension of one vector changes) each dimension is its own
	// query, so per-dimension Laplace noise at L1 sensitivity Δ_i yields
	// ε-DP.
	MechLaplace
)

// DPReleaseConfig parameterizes the differentially private release.
type DPReleaseConfig struct {
	// K is the spatial cloaking parameter (number of dummy locations,
	// including the requester; the paper uses 20).
	K int
	// Eps and Delta are the (ε,δ) privacy parameters (the paper sweeps
	// ε in [0.2, 2.0] with δ = 0.2).
	Eps, Delta float64
	// Beta is the distortion budget of the post-processing optimization.
	Beta float64
	// Mech selects Gaussian (default, the paper's choice) or Laplace
	// noise.
	Mech NoiseMechanism
}

// DefaultDPReleaseConfig mirrors the paper's evaluation setting.
func DefaultDPReleaseConfig() DPReleaseConfig {
	return DPReleaseConfig{K: 20, Eps: 1.0, Delta: 0.2, Beta: 0.03, Mech: MechGaussian}
}

// DPRelease is the paper's (ε,δ)-differentially private POI aggregate
// release mechanism (Section V-B):
//
//  1. spatial k-cloaking generates dummy locations d_1..d_k (including
//     the requester's true location);
//  2. the per-type mean of their frequency vectors is released through
//     the Gaussian mechanism — per dimension i,
//     F*_D[i] = (Σ_j F_{d_j,r}[i] + N(0, σ_i²)) / k with
//     σ_i = Δ_i·sqrt(2·ln(1.25/δ))/ε and sensitivity
//     Δ_i = max_j F_{d_j,r}[i];
//  3. the Eq. (9) optimization perturbs the noisy mean under the β
//     distortion budget. By post-processing (the optimization never
//     touches the true vector), the whole pipeline stays
//     (ε,δ)-differentially private.
type DPRelease struct {
	svc     *gsp.Service
	cloaker *cloak.Cloaker
	opt     *OptRelease
	cfg     DPReleaseConfig
}

// NewDPRelease builds the mechanism over a population for cloaking.
func NewDPRelease(svc *gsp.Service, pop *cloak.Population, cfg DPReleaseConfig) (*DPRelease, error) {
	if svc == nil {
		return nil, fmt.Errorf("defense: NewDPRelease: nil service")
	}
	if cfg.K < 2 {
		return nil, fmt.Errorf("defense: NewDPRelease: k must be ≥ 2, got %d", cfg.K)
	}
	if cfg.Mech == 0 {
		cfg.Mech = MechGaussian
	}
	switch cfg.Mech {
	case MechGaussian:
		if _, err := dp.GaussianSigma(1, cfg.Eps, cfg.Delta); err != nil {
			return nil, fmt.Errorf("defense: NewDPRelease: %w", err)
		}
	case MechLaplace:
		if cfg.Eps <= 0 {
			return nil, fmt.Errorf("defense: NewDPRelease: epsilon must be positive, got %v", cfg.Eps)
		}
	default:
		return nil, fmt.Errorf("defense: NewDPRelease: unknown mechanism %d", cfg.Mech)
	}
	if cfg.Beta < 0 {
		return nil, fmt.Errorf("defense: NewDPRelease: negative beta %v", cfg.Beta)
	}
	cl, err := cloak.NewCloaker(pop, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("defense: NewDPRelease: %w", err)
	}
	opt, err := NewOptRelease(svc.City())
	if err != nil {
		return nil, fmt.Errorf("defense: NewDPRelease: %w", err)
	}
	return &DPRelease{svc: svc, cloaker: cl, opt: opt, cfg: cfg}, nil
}

// Release produces the protected frequency vector for a user at l with
// query range r.
func (d *DPRelease) Release(src *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
	dummies := d.cloaker.DummyLocations(l, src)
	m := d.svc.City().M()
	// One scratch vector serves every dummy location (FreqInto, no
	// per-dummy allocation); only the per-dimension sums and max
	// sensitivities survive the aggregation — the individual vectors were
	// discarded immediately anyway.
	sums := make([]int, m)
	senss := make([]int, m)
	scratch := poi.NewFreqVector(m)
	for _, loc := range dummies {
		d.svc.FreqInto(scratch, loc, r)
		for i, v := range scratch {
			sums[i] += v
			if v > senss[i] {
				senss[i] = v
			}
		}
	}
	return d.noiseAndSolve(src, sums, senss, float64(len(dummies)))
}

// noiseAndSolve is the mechanism core shared by Release and
// ReleaseVectors: given per-dimension sums over k member vectors and the
// per-dimension max sensitivities, it draws the configured noise, forms
// the rounded non-negative noisy mean, and runs the Eq. (9)
// post-processing optimization.
func (d *DPRelease) noiseAndSolve(src *rng.Source, sums, senss []int, k float64) (poi.FreqVector, error) {
	m := len(sums)
	noisyMean := poi.NewFreqVector(m)
	for i := 0; i < m; i++ {
		sum := sums[i]
		sens := senss[i]
		var noise float64
		switch d.cfg.Mech {
		case MechLaplace:
			if sens > 0 {
				noise = src.Laplace(0, float64(sens)/d.cfg.Eps)
			}
		default:
			sigma, err := dp.GaussianSigma(float64(sens), d.cfg.Eps, d.cfg.Delta)
			if err != nil {
				return nil, fmt.Errorf("defense: DPRelease: %w", err)
			}
			noise = src.Normal(0, sigma)
		}
		v := (float64(sum) + noise) / k
		n := int(math.Round(v))
		if n < 0 {
			n = 0
		}
		noisyMean[i] = n
	}
	out, err := d.opt.Solve(noisyMean, d.cfg.Beta)
	if err != nil {
		return nil, fmt.Errorf("defense: DPRelease: %w", err)
	}
	return out, nil
}

// ReleaseVectors applies the identical mechanism to caller-supplied
// member frequency vectors instead of cloaked dummy locations: the
// members' per-dimension sums feed the noisy mean and the per-dimension
// max over members is the sensitivity, exactly as Release treats its k
// dummies. The streaming releaser uses this with one window-aggregate
// vector per contributing user, so each tick is an (ε,δ)-DP release
// under the same neighbouring relation. Every vector must have the
// city's dimensionality M.
func (d *DPRelease) ReleaseVectors(src *rng.Source, vecs []poi.FreqVector) (poi.FreqVector, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("defense: ReleaseVectors: no member vectors")
	}
	m := d.svc.City().M()
	sums := make([]int, m)
	senss := make([]int, m)
	for j, vec := range vecs {
		if len(vec) != m {
			return nil, fmt.Errorf("defense: ReleaseVectors: vector %d has %d dims, city has %d", j, len(vec), m)
		}
		for i, v := range vec {
			sums[i] += v
			if v > senss[i] {
				senss[i] = v
			}
		}
	}
	return d.noiseAndSolve(src, sums, senss, float64(len(vecs)))
}

// Config returns the mechanism parameters.
func (d *DPRelease) Config() DPReleaseConfig { return d.cfg }

// ReleaseWithAccountant charges the release's (ε, δ) to the accountant
// before producing it, enforcing an end-to-end privacy budget across a
// session of repeated queries (basic sequential composition). When the
// budget is exhausted the release is refused with dp.ErrBudgetExhausted
// and no privacy is spent.
func (d *DPRelease) ReleaseWithAccountant(src *rng.Source, acct *dp.Accountant, l geo.Point, r float64) (poi.FreqVector, error) {
	if acct == nil {
		return nil, fmt.Errorf("defense: ReleaseWithAccountant: nil accountant")
	}
	delta := d.cfg.Delta
	if d.cfg.Mech == MechLaplace {
		delta = 0
	}
	if err := acct.Spend(d.cfg.Eps, delta); err != nil {
		return nil, fmt.Errorf("defense: ReleaseWithAccountant: %w", err)
	}
	return d.Release(src, l, r)
}
