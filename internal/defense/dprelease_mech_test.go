package defense

import (
	"errors"
	"testing"

	"poiagg/internal/attack"
	"poiagg/internal/dp"
	"poiagg/internal/rng"
	"poiagg/internal/stats"
)

func TestDPReleaseLaplaceVariant(t *testing.T) {
	city, svc, pop := fixture(t)
	const r = 1500.0
	locs := city.RandomLocations(60, 21)
	cfg := DefaultDPReleaseConfig()
	cfg.Mech = MechLaplace
	cfg.Eps = 0.5
	mech, err := NewDPRelease(svc, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(22)
	protectedSucc := 0
	var js []float64
	for _, l := range locs {
		f, err := mech.Release(src, l, r)
		if err != nil {
			t.Fatal(err)
		}
		if attack.Region(svc, f, r).Covers(l, r) {
			protectedSucc++
		}
		js = append(js, stats.Jaccard(svc.Freq(l, r).TopK(10), f.TopK(10)))
	}
	if float64(protectedSucc) > 0.2*float64(len(locs)) {
		t.Errorf("Laplace variant left %d/%d successes", protectedSucc, len(locs))
	}
	if m := stats.Mean(js); m < 0.2 {
		t.Errorf("Laplace variant destroyed all utility: Jaccard %v", m)
	}
}

func TestDPReleaseLaplaceValidation(t *testing.T) {
	_, svc, pop := fixture(t)
	cfg := DefaultDPReleaseConfig()
	cfg.Mech = MechLaplace
	cfg.Eps = 0
	if _, err := NewDPRelease(svc, pop, cfg); err == nil {
		t.Error("eps=0 accepted for Laplace")
	}
	cfg = DefaultDPReleaseConfig()
	cfg.Mech = NoiseMechanism(99)
	if _, err := NewDPRelease(svc, pop, cfg); err == nil {
		t.Error("unknown mechanism accepted")
	}
	// Laplace ignores delta entirely: delta=0 must be fine.
	cfg = DefaultDPReleaseConfig()
	cfg.Mech = MechLaplace
	cfg.Delta = 0
	if _, err := NewDPRelease(svc, pop, cfg); err != nil {
		t.Errorf("Laplace with delta=0 rejected: %v", err)
	}
}

func TestDPReleaseZeroMechDefaultsToGaussian(t *testing.T) {
	_, svc, pop := fixture(t)
	cfg := DefaultDPReleaseConfig()
	cfg.Mech = 0
	mech, err := NewDPRelease(svc, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mech.Config().Mech != MechGaussian {
		t.Errorf("Mech = %d", mech.Config().Mech)
	}
}

func TestReleaseWithAccountant(t *testing.T) {
	city, svc, pop := fixture(t)
	cfg := DefaultDPReleaseConfig()
	cfg.Eps = 0.5
	cfg.Delta = 0.05
	mech, err := NewDPRelease(svc, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := dp.NewAccountant(1.0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(23)
	l := city.RandomLocations(1, 24)[0]
	// Budget 1.0/0.2 allows exactly two (0.5, 0.05) releases.
	for i := 0; i < 2; i++ {
		if _, err := mech.ReleaseWithAccountant(src, acct, l, 1000); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	_, err = mech.ReleaseWithAccountant(src, acct, l, 1000)
	if !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Errorf("third release: %v", err)
	}
	if acct.Releases() != 2 {
		t.Errorf("Releases = %d", acct.Releases())
	}
	if _, err := mech.ReleaseWithAccountant(src, nil, l, 1000); err == nil {
		t.Error("nil accountant accepted")
	}
}

func TestReleaseWithAccountantLaplaceSpendsNoDelta(t *testing.T) {
	city, svc, pop := fixture(t)
	cfg := DefaultDPReleaseConfig()
	cfg.Mech = MechLaplace
	cfg.Eps = 0.25
	mech, err := NewDPRelease(svc, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := dp.NewAccountant(1.0, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(25)
	l := city.RandomLocations(1, 26)[0]
	for i := 0; i < 4; i++ {
		if _, err := mech.ReleaseWithAccountant(src, acct, l, 1000); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if _, delta := acct.Spent(); delta != 0 {
		t.Errorf("Laplace releases spent delta %v", delta)
	}
}

// BenchmarkDPGaussianVsLaplace compares the two noise mechanisms of the
// DP release end to end.
func BenchmarkDPGaussianVsLaplace(b *testing.B) {
	city, svc, pop := fixture(b)
	l := city.RandomLocations(1, 27)[0]
	for _, tc := range []struct {
		name string
		mech NoiseMechanism
	}{
		{"gaussian", MechGaussian},
		{"laplace", MechLaplace},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := DefaultDPReleaseConfig()
			cfg.Mech = tc.mech
			mech, err := NewDPRelease(svc, pop, cfg)
			if err != nil {
				b.Fatal(err)
			}
			src := rng.New(28)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mech.Release(src, l, 2000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
