package defense

import (
	"fmt"

	"poiagg/internal/cloak"
	"poiagg/internal/dp"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// GeoInd is the geo-indistinguishability defense: the user perturbs its
// location with the planar Laplace mechanism and aggregates POIs around
// the noisy location.
type GeoInd struct {
	mech *dp.PlanarLaplace
	svc  *gsp.Service
}

// NewGeoInd builds the defense with privacy parameter eps per 100 m (the
// paper's distance unit).
func NewGeoInd(svc *gsp.Service, eps float64) (*GeoInd, error) {
	if svc == nil {
		return nil, fmt.Errorf("defense: NewGeoInd: nil service")
	}
	mech, err := dp.NewPlanarLaplace(eps)
	if err != nil {
		return nil, fmt.Errorf("defense: NewGeoInd: %w", err)
	}
	return &GeoInd{mech: mech, svc: svc}, nil
}

// Release returns the frequency vector aggregated at a perturbed location.
func (g *GeoInd) Release(src *rng.Source, l geo.Point, r float64) poi.FreqVector {
	noisy := g.svc.City().Bounds.Clamp(g.mech.Perturb(src, l))
	return g.svc.Freq(noisy, r)
}

// Cloaking is the spatial k-cloaking defense: the user aggregates POIs
// around the center of its k-anonymous cloaking region instead of its
// true location.
type Cloaking struct {
	cloaker *cloak.Cloaker
	svc     *gsp.Service
}

// NewCloaking builds the defense over a user population with anonymity k.
func NewCloaking(svc *gsp.Service, pop *cloak.Population, k int) (*Cloaking, error) {
	if svc == nil {
		return nil, fmt.Errorf("defense: NewCloaking: nil service")
	}
	cl, err := cloak.NewCloaker(pop, k)
	if err != nil {
		return nil, fmt.Errorf("defense: NewCloaking: %w", err)
	}
	return &Cloaking{cloaker: cl, svc: svc}, nil
}

// Release returns the frequency vector aggregated at the cloak center.
func (c *Cloaking) Release(l geo.Point, r float64) poi.FreqVector {
	region := c.cloaker.Cloak(l)
	return c.svc.Freq(region.Center(), r)
}

// Cloaker exposes the underlying cloaker (for the DP defense and tests).
func (c *Cloaking) Cloaker() *cloak.Cloaker { return c.cloaker }
