package defense

import (
	"fmt"
	"math"
	"sort"

	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// OptRelease implements the paper's non-private optimization-based
// release (Eq. 7): given an original frequency vector F, find a release
// F̃ maximizing the infrequency-rank-weighted perturbation
//
//	max Σ_i (1/R(i)) |F̃_i − F_i|
//
// subject to the normalized distortion budget
//
//	(1/M) Σ_i |F̃_i − F_i| / (F_i + 1) ≤ β,   F̃_i ∈ ℕ.
//
// The objective is separable and the single constraint is linear in the
// per-dimension distortions, so the continuous relaxation is a fractional
// knapsack: a unit of change on dimension i costs 1/(M·(F_i+1)) of budget
// and earns 1/R(i) of objective, and allocating budget in descending
// gain/cost order is optimal. Units are rounded down to keep the release
// integral; rounding can strand small budget fragments, so the integer
// solution is within a few percent of the integer optimum rather than
// exactly optimal (see TestOptReleaseGreedyOptimalSmall).
//
// The paper's integer program is unbounded above (nothing stops F̃_i from
// growing arbitrarily); we bound the per-dimension distortion at
// F_i + MaxExtra units so a release stays plausible. Decreases are
// applied before increases on each dimension — erasing an infrequent
// type both spends less budget headroom and directly removes the
// attack's anchor. See the greedy-vs-uniform ablation benchmark.
type OptRelease struct {
	rank []int
	m    int
	// MaxExtra bounds the increase headroom per dimension.
	maxExtra int
}

// NewOptRelease builds the mechanism for a city (the infrequency ranks
// R(i) come from the city-wide frequency vector).
func NewOptRelease(city *gsp.City) (*OptRelease, error) {
	if city == nil {
		return nil, fmt.Errorf("defense: NewOptRelease: nil city")
	}
	return &OptRelease{
		rank:     city.InfrequencyRank(),
		m:        city.M(),
		maxExtra: 1,
	}, nil
}

// Solve returns the optimized release of f under distortion budget beta.
// It never returns negative frequencies and never spends more than beta.
func (o *OptRelease) Solve(f poi.FreqVector, beta float64) (poi.FreqVector, error) {
	if len(f) != o.m {
		return nil, fmt.Errorf("defense: OptRelease: vector has %d dims, city has %d", len(f), o.m)
	}
	if beta < 0 {
		return nil, fmt.Errorf("defense: OptRelease: negative beta %v", beta)
	}
	out := f.Clone()
	// Candidate moves in descending gain/cost ratio; the ratio for
	// dimension i is (F_i+1)·M / R(i), identical for both directions, so
	// order by it and spend decreases first within a dimension.
	dims := make([]int, o.m)
	for i := range dims {
		dims[i] = i
	}
	ratio := func(i int) float64 {
		return float64(f[i]+1) * float64(o.m) / float64(o.rank[i])
	}
	sort.Slice(dims, func(a, b int) bool {
		ra, rb := ratio(dims[a]), ratio(dims[b])
		if ra != rb {
			return ra > rb
		}
		return dims[a] < dims[b]
	})
	budget := beta
	for _, i := range dims {
		unitCost := 1 / (float64(o.m) * float64(f[i]+1))
		if unitCost <= 0 || budget < unitCost {
			continue
		}
		affordable := int(math.Floor(budget / unitCost))
		// Decrease first: at most F_i units down to zero.
		down := min(affordable, f[i])
		out[i] -= down
		budget -= float64(down) * unitCost
		affordable -= down
		// Then increase, bounded by MaxExtra. Skip when the dimension was
		// already decreased (moving both ways on one dimension wastes
		// budget).
		if down == 0 && affordable > 0 {
			up := min(affordable, o.maxExtra)
			out[i] += up
			budget -= float64(up) * unitCost
		}
		if budget <= 0 {
			break
		}
	}
	return out, nil
}

// Distortion returns the normalized distortion (the left side of the β
// constraint) between an original vector and a release.
func (o *OptRelease) Distortion(f, release poi.FreqVector) float64 {
	total := 0.0
	for i := range f {
		d := release[i] - f[i]
		if d < 0 {
			d = -d
		}
		total += float64(d) / float64(f[i]+1)
	}
	return total / float64(o.m)
}

// Objective returns the rank-weighted perturbation (the maximized
// quantity of Eq. 7).
func (o *OptRelease) Objective(f, release poi.FreqVector) float64 {
	total := 0.0
	for i := range f {
		d := release[i] - f[i]
		if d < 0 {
			d = -d
		}
		total += float64(d) / float64(o.rank[i])
	}
	return total
}

// SolveUniform is the ablation baseline: it spends the same budget by
// sweeping dimensions in index order instead of gain/cost order. Used by
// BenchmarkOptGreedyVsUniform and the ablation tests.
func (o *OptRelease) SolveUniform(f poi.FreqVector, beta float64) (poi.FreqVector, error) {
	if len(f) != o.m {
		return nil, fmt.Errorf("defense: OptRelease: vector has %d dims, city has %d", len(f), o.m)
	}
	out := f.Clone()
	budget := beta
	for i := range f {
		unitCost := 1 / (float64(o.m) * float64(f[i]+1))
		if budget < unitCost {
			continue
		}
		down := min(int(math.Floor(budget/unitCost)), f[i])
		out[i] -= down
		budget -= float64(down) * unitCost
	}
	return out, nil
}
