package defense

import (
	"testing"
	"testing/quick"

	"poiagg/internal/attack"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
	"poiagg/internal/stats"
)

func TestOptReleaseRespectsBudget(t *testing.T) {
	city, svc, _ := fixture(t)
	opt, err := NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	locs := city.RandomLocations(50, 5)
	for _, beta := range []float64{0.01, 0.03, 0.05} {
		for _, l := range locs {
			f := svc.Freq(l, 1000)
			out, err := opt.Solve(f, beta)
			if err != nil {
				t.Fatal(err)
			}
			if d := opt.Distortion(f, out); d > beta+1e-9 {
				t.Fatalf("beta=%v: distortion %v over budget", beta, d)
			}
			for i, n := range out {
				if n < 0 {
					t.Fatalf("negative frequency at %d: %d", i, n)
				}
			}
		}
	}
}

func TestOptReleaseGreedyBeatsUniform(t *testing.T) {
	city, svc, _ := fixture(t)
	opt, err := NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	locs := city.RandomLocations(40, 6)
	var better, worse int
	for _, l := range locs {
		f := svc.Freq(l, 1000)
		greedy, err := opt.Solve(f, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		uniform, err := opt.SolveUniform(f, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		og, ou := opt.Objective(f, greedy), opt.Objective(f, uniform)
		if og >= ou {
			better++
		} else {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("greedy lost to uniform on %d/%d vectors", worse, better+worse)
	}
}

func TestOptReleaseLargerBetaMoreDefense(t *testing.T) {
	city, svc, _ := fixture(t)
	opt, err := NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	const r = 800.0
	locs := city.RandomLocations(120, 7)
	prev := -1
	for _, beta := range []float64{0.0, 0.02, 0.05} {
		succ := 0
		for _, l := range locs {
			f := svc.Freq(l, r)
			out, err := opt.Solve(f, beta)
			if err != nil {
				t.Fatal(err)
			}
			if attack.Region(svc, out, r).Success {
				succ++
			}
		}
		if prev >= 0 && succ > prev {
			t.Errorf("success rate grew with beta: %d (prev %d)", succ, prev)
		}
		prev = succ
	}
}

func TestOptReleaseUtility(t *testing.T) {
	// Top-10 Jaccard must stay high at the paper's betas.
	city, svc, _ := fixture(t)
	opt, err := NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	locs := city.RandomLocations(60, 8)
	var jaccards []float64
	for _, l := range locs {
		f := svc.Freq(l, 2000)
		out, err := opt.Solve(f, 0.03)
		if err != nil {
			t.Fatal(err)
		}
		jaccards = append(jaccards, stats.Jaccard(f.TopK(10), out.TopK(10)))
	}
	if m := stats.Mean(jaccards); m < 0.6 {
		t.Errorf("mean Top-10 Jaccard %v < 0.6", m)
	}
}

func TestOptReleaseValidation(t *testing.T) {
	city, _, _ := fixture(t)
	if _, err := NewOptRelease(nil); err == nil {
		t.Error("nil city accepted")
	}
	opt, err := NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Solve(poi.NewFreqVector(3), 0.01); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := opt.Solve(poi.NewFreqVector(city.M()), -1); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := opt.SolveUniform(poi.NewFreqVector(3), 0.01); err == nil {
		t.Error("SolveUniform wrong dimension accepted")
	}
}

func TestOptReleaseZeroBetaIdentity(t *testing.T) {
	city, svc, _ := fixture(t)
	opt, err := NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	l := city.RandomLocations(1, 9)[0]
	f := svc.Freq(l, 1000)
	out, err := opt.Solve(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(f) {
		t.Error("beta=0 must be the identity")
	}
}

func TestOptReleaseBudgetProperty(t *testing.T) {
	city, _, _ := fixture(t)
	opt, err := NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(10)
	f := func(beta8 uint8) bool {
		beta := float64(beta8) / 255 * 0.1
		f := poi.NewFreqVector(city.M())
		for i := range f {
			f[i] = src.IntN(20)
		}
		out, err := opt.Solve(f, beta)
		if err != nil {
			return false
		}
		return opt.Distortion(f, out) <= beta+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDPReleaseValidation(t *testing.T) {
	_, svc, pop := fixture(t)
	cfg := DefaultDPReleaseConfig()
	if _, err := NewDPRelease(nil, pop, cfg); err == nil {
		t.Error("nil service accepted")
	}
	bad := cfg
	bad.K = 1
	if _, err := NewDPRelease(svc, pop, bad); err == nil {
		t.Error("k=1 accepted")
	}
	bad = cfg
	bad.Eps = 0
	if _, err := NewDPRelease(svc, pop, bad); err == nil {
		t.Error("eps=0 accepted")
	}
	bad = cfg
	bad.Delta = 1.5
	if _, err := NewDPRelease(svc, pop, bad); err == nil {
		t.Error("delta=1.5 accepted")
	}
	bad = cfg
	bad.Beta = -0.1
	if _, err := NewDPRelease(svc, pop, bad); err == nil {
		t.Error("negative beta accepted")
	}
}

func TestDPReleaseProtects(t *testing.T) {
	city, svc, pop := fixture(t)
	const r = 1500.0
	locs := city.RandomLocations(80, 11)
	plain := 0
	for _, l := range locs {
		if attack.Region(svc, svc.Freq(l, r), r).Success {
			plain++
		}
	}
	if plain == 0 {
		t.Fatal("baseline never succeeded")
	}
	cfg := DefaultDPReleaseConfig()
	cfg.Eps = 0.5
	mech, err := NewDPRelease(svc, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(12)
	protected := 0
	for _, l := range locs {
		f, err := mech.Release(src, l, r)
		if err != nil {
			t.Fatal(err)
		}
		if attack.Region(svc, f, r).Success {
			protected++
		}
	}
	// The DP release must cut the success rate substantially (the paper
	// reports < 20% in most settings).
	if float64(protected) > 0.5*float64(plain) {
		t.Errorf("DP release left %d/%d successes (plain %d)", protected, len(locs), plain)
	}
	if got := mech.Config(); got.Eps != 0.5 {
		t.Errorf("Config Eps = %v", got.Eps)
	}
}

func TestDPReleaseEpsilonTradeoff(t *testing.T) {
	// Larger ε → less noise → the release tracks the cloaked mean more
	// closely → better utility.
	city, svc, pop := fixture(t)
	const r = 1500.0
	locs := city.RandomLocations(60, 13)
	var jaccardByEps []float64
	for _, eps := range []float64{0.2, 2.0} {
		cfg := DefaultDPReleaseConfig()
		cfg.Eps = eps
		mech, err := NewDPRelease(svc, pop, cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(14)
		var js []float64
		for _, l := range locs {
			f := svc.Freq(l, r)
			out, err := mech.Release(src, l, r)
			if err != nil {
				t.Fatal(err)
			}
			js = append(js, stats.Jaccard(f.TopK(10), out.TopK(10)))
		}
		jaccardByEps = append(jaccardByEps, stats.Mean(js))
	}
	if jaccardByEps[1] <= jaccardByEps[0] {
		t.Errorf("utility did not improve with eps: %v", jaccardByEps)
	}
}

// BenchmarkOptGreedyVsUniform is the Eq. 7 solver ablation from
// DESIGN.md: greedy gain/cost allocation versus naive index-order
// spending of the same budget.
func BenchmarkOptGreedyVsUniform(b *testing.B) {
	city, svc, _ := fixture(b)
	opt, err := NewOptRelease(city.City)
	if err != nil {
		b.Fatal(err)
	}
	l := city.RandomLocations(1, 99)[0]
	f := svc.Freq(l, 2000)
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := opt.Solve(f, 0.03); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uniform", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := opt.SolveUniform(f, 0.03); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestOptReleaseGreedyOptimalSmall exhaustively enumerates all feasible
// integer releases on tiny instances and verifies the greedy solution is
// within 5% of the integer optimum. (Greedy is exactly optimal for the
// continuous relaxation; integer rounding can leave small budget
// fragments unspent, the classic knapsack greedy gap.)
func TestOptReleaseGreedyOptimalSmall(t *testing.T) {
	city, _, _ := fixture(t)
	opt, err := NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	m := city.M()
	rank := city.InfrequencyRank()
	src := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		// Sparse vector: a handful of nonzero dims, everything else zero,
		// so the brute-force enumeration only walks the interesting dims.
		f := poi.NewFreqVector(m)
		dims := make([]int, 0, 4)
		for len(dims) < 4 {
			d := src.IntN(m)
			f[d] = 1 + src.IntN(5)
			dims = append(dims, d)
		}
		beta := 0.005 + src.Float64()*0.02

		greedy, err := opt.Solve(f, beta)
		if err != nil {
			t.Fatal(err)
		}
		greedyObj := opt.Objective(f, greedy)

		// Brute force over the solver's feasible set: per-dim deltas in
		// [-f[d], +MaxExtra] (decrease to zero, increase at most one) on
		// the nonzero dims, plus the single best-ratio zero dim — zero
		// dims all cost 1/M per unit, so only the best-ranked one can
		// appear in an optimal solution.
		bestZero := -1
		for i := 0; i < m; i++ {
			if f[i] == 0 && (bestZero == -1 || rank[i] < rank[bestZero]) {
				bestZero = i
			}
		}
		search := append(append([]int{}, dims...), bestZero)
		best := 0.0
		var rec func(i int, cur poi.FreqVector)
		rec = func(i int, cur poi.FreqVector) {
			if i == len(search) {
				if opt.Distortion(f, cur) <= beta+1e-12 {
					if obj := opt.Objective(f, cur); obj > best {
						best = obj
					}
				}
				return
			}
			d := search[i]
			for delta := -f[d]; delta <= 1; delta++ {
				next := cur.Clone()
				next[d] = f[d] + delta
				if next[d] < 0 {
					continue
				}
				rec(i+1, next)
			}
		}
		rec(0, f.Clone())
		if greedyObj < 0.95*best-1e-9 {
			t.Errorf("trial %d: greedy %.6f below 95%% of optimum %.6f (beta %.4f)",
				trial, greedyObj, best, beta)
		}
	}
}
