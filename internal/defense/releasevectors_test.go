package defense

import (
	"math"
	"strings"
	"testing"

	"poiagg/internal/dp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// memberVectors builds a small set of realistic per-member frequency
// vectors from the fixture city, as the streaming releaser would hand in
// (one window aggregate per contributing user).
func memberVectors(t testing.TB, n int) []poi.FreqVector {
	t.Helper()
	city, svc, _ := fixture(t)
	locs := city.RandomLocations(n, 417)
	vecs := make([]poi.FreqVector, n)
	for i, l := range locs {
		vecs[i] = svc.Freq(l, 1200)
	}
	return vecs
}

// referenceReleaseVectors re-implements the mechanism from its public
// building blocks (dp.GaussianSigma / rng / OptRelease) so the test does
// not share code with the implementation under test.
func referenceReleaseVectors(t *testing.T, cfg DPReleaseConfig, src *rng.Source, vecs []poi.FreqVector) poi.FreqVector {
	t.Helper()
	city, _, _ := fixture(t)
	m := city.M()
	sums := make([]int, m)
	senss := make([]int, m)
	for _, vec := range vecs {
		for i, v := range vec {
			sums[i] += v
			if v > senss[i] {
				senss[i] = v
			}
		}
	}
	k := float64(len(vecs))
	noisy := poi.NewFreqVector(m)
	for i := 0; i < m; i++ {
		var noise float64
		switch cfg.Mech {
		case MechLaplace:
			if senss[i] > 0 {
				noise = src.Laplace(0, float64(senss[i])/cfg.Eps)
			}
		default:
			sigma, err := dp.GaussianSigma(float64(senss[i]), cfg.Eps, cfg.Delta)
			if err != nil {
				t.Fatal(err)
			}
			noise = src.Normal(0, sigma)
		}
		n := int(math.Round((float64(sums[i]) + noise) / k))
		if n < 0 {
			n = 0
		}
		noisy[i] = n
	}
	opt, err := NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	out, err := opt.Solve(noisy, cfg.Beta)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestReleaseVectorsMatchesReference(t *testing.T) {
	_, svc, pop := fixture(t)
	vecs := memberVectors(t, 7)
	for _, tc := range []struct {
		name string
		mech NoiseMechanism
	}{
		{"gaussian", MechGaussian},
		{"laplace", MechLaplace},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultDPReleaseConfig()
			cfg.Mech = tc.mech
			cfg.Eps = 0.8
			mech, err := NewDPRelease(svc, pop, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mech.ReleaseVectors(rng.New(511), vecs)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceReleaseVectors(t, cfg, rng.New(511), vecs)
			if len(got) != len(want) {
				t.Fatalf("len(got) = %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dim %d: got %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestReleaseVectorsDeterministic(t *testing.T) {
	_, svc, pop := fixture(t)
	mech, err := NewDPRelease(svc, pop, DefaultDPReleaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	vecs := memberVectors(t, 5)
	a, err := mech.ReleaseVectors(rng.New(600), vecs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mech.ReleaseVectors(rng.New(600), vecs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dim %d: %d vs %d with identical seed", i, a[i], b[i])
		}
	}
	c, err := mech.ReleaseVectors(rng.New(601), vecs)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical releases")
	}
}

func TestReleaseVectorsSingleMember(t *testing.T) {
	_, svc, pop := fixture(t)
	mech, err := NewDPRelease(svc, pop, DefaultDPReleaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	vecs := memberVectors(t, 1)
	out, err := mech.ReleaseVectors(rng.New(602), vecs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(vecs[0]) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(vecs[0]))
	}
	for i, v := range out {
		if v < 0 {
			t.Fatalf("dim %d negative: %d", i, v)
		}
	}
}

func TestReleaseVectorsErrors(t *testing.T) {
	city, svc, pop := fixture(t)
	mech, err := NewDPRelease(svc, pop, DefaultDPReleaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mech.ReleaseVectors(rng.New(1), nil); err == nil {
		t.Error("empty vector set accepted")
	}
	bad := []poi.FreqVector{poi.NewFreqVector(city.M() + 3)}
	_, err = mech.ReleaseVectors(rng.New(1), bad)
	if err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if !strings.Contains(err.Error(), "dims") {
		t.Errorf("mismatch error %q does not name dims", err)
	}
}
