// Package defense implements the protection mechanisms the paper
// evaluates and proposes:
//
//   - Sanitizer: the aggressive frequency sanitization of Section III-A
//     (zero out every type that is infrequent city-wide);
//   - GeoInd: geo-indistinguishability via the planar Laplace mechanism
//     (Section III-B) — perturb the location, then aggregate;
//   - Cloaking: spatial k-cloaking (Section III-C) — aggregate at the
//     cloaked region instead of the true location;
//   - OptRelease: the non-private optimization-based release of Eq. (7);
//   - DPRelease: the (ε,δ)-differentially private release of
//     Section V-B (Eq. 8-9) — mean of cloaked dummy frequencies with
//     Gaussian noise, post-processed by the optimization.
package defense

import (
	"fmt"

	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// Sanitizer zeroes the frequencies of every POI type whose city-wide
// frequency is at or below a threshold — the paper's aggressive
// sanitization (threshold 10 removes ≈90 of Beijing's 177 types and ≈138
// of NYC's 272).
type Sanitizer struct {
	sanitized []poi.TypeID
	sanSet    map[poi.TypeID]bool
}

// NewSanitizer builds a sanitizer for the city with the given city-wide
// frequency threshold.
func NewSanitizer(city *gsp.City, threshold int) (*Sanitizer, error) {
	if city == nil {
		return nil, fmt.Errorf("defense: NewSanitizer: nil city")
	}
	s := &Sanitizer{sanSet: make(map[poi.TypeID]bool)}
	for i, n := range city.CityFreq() {
		if n <= threshold {
			t := poi.TypeID(i)
			s.sanitized = append(s.sanitized, t)
			s.sanSet[t] = true
		}
	}
	return s, nil
}

// Sanitized returns the sanitized type set T_S.
func (s *Sanitizer) Sanitized() []poi.TypeID {
	return append([]poi.TypeID(nil), s.sanitized...)
}

// IsSanitized reports whether t is in the sanitized set.
func (s *Sanitizer) IsSanitized(t poi.TypeID) bool { return s.sanSet[t] }

// Apply returns a copy of f with every sanitized entry zeroed.
func (s *Sanitizer) Apply(f poi.FreqVector) poi.FreqVector {
	out := f.Clone()
	for _, t := range s.sanitized {
		out[t] = 0
	}
	return out
}
