package dp

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBudgetExhausted is returned by Accountant.Spend when a release would
// exceed the privacy budget.
var ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")

// Accountant tracks cumulative privacy loss across releases under basic
// sequential composition: k mechanisms with parameters (ε_i, δ_i) compose
// to (Σε_i, Σδ_i). Users of the POI-aggregate defense release repeatedly
// (every LBS query), so per-session budget enforcement is what turns the
// paper's per-release guarantee into an end-to-end one.
//
// Accountant is safe for concurrent use.
type Accountant struct {
	mu          sync.Mutex
	budgetEps   float64
	budgetDelta float64
	spentEps    float64
	spentDelta  float64
	releases    int
}

// NewAccountant returns an accountant with the given total (ε, δ) budget.
func NewAccountant(budgetEps, budgetDelta float64) (*Accountant, error) {
	if budgetEps <= 0 {
		return nil, fmt.Errorf("dp: NewAccountant: budget epsilon must be positive, got %v", budgetEps)
	}
	if budgetDelta < 0 || budgetDelta >= 1 {
		return nil, fmt.Errorf("dp: NewAccountant: budget delta must be in [0,1), got %v", budgetDelta)
	}
	return &Accountant{budgetEps: budgetEps, budgetDelta: budgetDelta}, nil
}

// Spend records one (eps, delta) release. It fails with
// ErrBudgetExhausted — without recording anything — when the release
// would exceed the budget.
func (a *Accountant) Spend(eps, delta float64) error {
	if eps <= 0 {
		return fmt.Errorf("dp: Spend: epsilon must be positive, got %v", eps)
	}
	if delta < 0 || delta >= 1 {
		return fmt.Errorf("dp: Spend: delta must be in [0,1), got %v", delta)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spentEps+eps > a.budgetEps+1e-12 || a.spentDelta+delta > a.budgetDelta+1e-12 {
		return fmt.Errorf("%w: spent (%.4g, %.4g) of (%.4g, %.4g), requested (%.4g, %.4g)",
			ErrBudgetExhausted, a.spentEps, a.spentDelta, a.budgetEps, a.budgetDelta, eps, delta)
	}
	a.spentEps += eps
	a.spentDelta += delta
	a.releases++
	return nil
}

// Spent returns the cumulative (ε, δ) consumed so far.
func (a *Accountant) Spent() (eps, delta float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spentEps, a.spentDelta
}

// Remaining returns the budget left.
func (a *Accountant) Remaining() (eps, delta float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budgetEps - a.spentEps, a.budgetDelta - a.spentDelta
}

// Releases returns the number of recorded releases.
func (a *Accountant) Releases() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.releases
}

// AdvancedComposition returns the total (ε, δ) of k-fold adaptive
// composition of an (eps, delta)-DP mechanism under the
// Dwork–Rothblum–Vadhan bound, with slack deltaSlack:
//
//	ε_total = ε·sqrt(2k·ln(1/δ')) + k·ε·(e^ε − 1)
//	δ_total = k·δ + δ'
//
// For many small releases this is far tighter than the linear bound; see
// TestAdvancedBeatsBasic.
func AdvancedComposition(eps, delta float64, k int, deltaSlack float64) (totalEps, totalDelta float64, err error) {
	if eps <= 0 || k <= 0 {
		return 0, 0, fmt.Errorf("dp: AdvancedComposition: need positive eps and k, got %v, %d", eps, k)
	}
	if delta < 0 || delta >= 1 || deltaSlack <= 0 || deltaSlack >= 1 {
		return 0, 0, fmt.Errorf("dp: AdvancedComposition: deltas must be in (0,1), got %v, %v", delta, deltaSlack)
	}
	kf := float64(k)
	totalEps = eps*math.Sqrt(2*kf*math.Log(1/deltaSlack)) + kf*eps*(math.Exp(eps)-1)
	totalDelta = kf*delta + deltaSlack
	return totalEps, totalDelta, nil
}

// ReleasesWithin returns the largest number of (eps, delta)-DP releases
// that fit a total (budgetEps, budgetDelta) budget under basic
// composition.
func ReleasesWithin(eps, delta, budgetEps, budgetDelta float64) int {
	if eps <= 0 {
		return 0
	}
	n := int(math.Floor(budgetEps / eps))
	if delta > 0 {
		if m := int(math.Floor(budgetDelta / delta)); m < n {
			n = m
		}
	}
	if n < 0 {
		return 0
	}
	return n
}
