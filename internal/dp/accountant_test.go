package dp

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestNewAccountantValidation(t *testing.T) {
	if _, err := NewAccountant(0, 0.1); err == nil {
		t.Error("zero eps budget accepted")
	}
	if _, err := NewAccountant(1, 1); err == nil {
		t.Error("delta=1 accepted")
	}
	if _, err := NewAccountant(1, -0.1); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestAccountantSequentialComposition(t *testing.T) {
	a, err := NewAccountant(1.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := a.Spend(0.25, 0.1); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	eps, delta := a.Spent()
	if math.Abs(eps-1.0) > 1e-12 || math.Abs(delta-0.4) > 1e-12 {
		t.Errorf("Spent = (%v, %v)", eps, delta)
	}
	if a.Releases() != 4 {
		t.Errorf("Releases = %d", a.Releases())
	}
	// Fifth release exceeds epsilon.
	err = a.Spend(0.25, 0.1)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("expected ErrBudgetExhausted, got %v", err)
	}
	// Failed spend records nothing.
	if a.Releases() != 4 {
		t.Errorf("failed spend was recorded")
	}
	repsilon, rdelta := a.Remaining()
	if repsilon > 1e-9 || math.Abs(rdelta-0.1) > 1e-12 {
		t.Errorf("Remaining = (%v, %v)", repsilon, rdelta)
	}
}

func TestAccountantDeltaExhaustion(t *testing.T) {
	a, err := NewAccountant(100, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(1, 0.15); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend(1, 0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("delta overspend accepted: %v", err)
	}
}

func TestAccountantSpendValidation(t *testing.T) {
	a, _ := NewAccountant(1, 0.1)
	if err := a.Spend(0, 0.01); err == nil || errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("zero eps: %v", err)
	}
	if err := a.Spend(0.1, 1); err == nil || errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("delta=1: %v", err)
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a, _ := NewAccountant(10, 0.999)
	var wg sync.WaitGroup
	granted := make(chan struct{}, 2000)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if a.Spend(0.01, 0) == nil {
					granted <- struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	close(granted)
	n := 0
	for range granted {
		n++
	}
	// Budget allows exactly 1000 releases of 0.01.
	if n != 1000 {
		t.Errorf("granted %d releases, want 1000", n)
	}
	eps, _ := a.Spent()
	if eps > 10+1e-9 {
		t.Errorf("overspent: %v", eps)
	}
}

func TestAdvancedCompositionFormula(t *testing.T) {
	eps, delta := 0.1, 0.001
	k := 50
	slack := 1e-6
	totalEps, totalDelta, err := AdvancedComposition(eps, delta, k, slack)
	if err != nil {
		t.Fatal(err)
	}
	wantEps := eps*math.Sqrt(2*50*math.Log(1/slack)) + 50*eps*(math.Exp(eps)-1)
	if math.Abs(totalEps-wantEps) > 1e-12 {
		t.Errorf("totalEps = %v, want %v", totalEps, wantEps)
	}
	if math.Abs(totalDelta-(50*delta+slack)) > 1e-12 {
		t.Errorf("totalDelta = %v", totalDelta)
	}
}

func TestAdvancedBeatsBasic(t *testing.T) {
	// For many small-ε releases the advanced bound must beat k·ε.
	eps := 0.01
	k := 10_000
	totalEps, _, err := AdvancedComposition(eps, 0, k, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	basic := float64(k) * eps
	if totalEps >= basic {
		t.Errorf("advanced %v not below basic %v at k=%d", totalEps, basic, k)
	}
}

func TestAdvancedCompositionValidation(t *testing.T) {
	if _, _, err := AdvancedComposition(0, 0.1, 5, 0.01); err == nil {
		t.Error("zero eps accepted")
	}
	if _, _, err := AdvancedComposition(0.1, 0.1, 0, 0.01); err == nil {
		t.Error("zero k accepted")
	}
	if _, _, err := AdvancedComposition(0.1, 0.1, 5, 0); err == nil {
		t.Error("zero slack accepted")
	}
}

func TestReleasesWithin(t *testing.T) {
	tests := []struct {
		eps, delta, bEps, bDelta float64
		want                     int
	}{
		{0.1, 0.01, 1.0, 0.1, 10},
		{0.1, 0.02, 1.0, 0.1, 5}, // delta-limited
		{0.3, 0, 1.0, 0, 3},
		{0, 0, 1, 1, 0},
		{2, 0, 1, 0, 0},
	}
	for _, tt := range tests {
		if got := ReleasesWithin(tt.eps, tt.delta, tt.bEps, tt.bDelta); got != tt.want {
			t.Errorf("ReleasesWithin(%v,%v,%v,%v) = %d, want %d",
				tt.eps, tt.delta, tt.bEps, tt.bDelta, got, tt.want)
		}
	}
}
