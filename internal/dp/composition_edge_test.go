package dp

import (
	"math"
	"sync"
	"testing"
)

// TestAdvancedCompositionK1 pins the k=1 degenerate case: a single
// release composes to exactly one application of the bound, and the
// delta side is delta + slack with nothing multiplied in.
func TestAdvancedCompositionK1(t *testing.T) {
	eps, delta, slack := 0.5, 1e-5, 1e-6
	totalEps, totalDelta, err := AdvancedComposition(eps, delta, 1, slack)
	if err != nil {
		t.Fatal(err)
	}
	wantEps := eps*math.Sqrt(2*math.Log(1/slack)) + eps*(math.Exp(eps)-1)
	if math.Abs(totalEps-wantEps) > 1e-12 {
		t.Errorf("k=1 totalEps = %v, want %v", totalEps, wantEps)
	}
	if math.Abs(totalDelta-(delta+slack)) > 1e-15 {
		t.Errorf("k=1 totalDelta = %v, want %v", totalDelta, delta+slack)
	}
	// At k=1 the advanced bound is strictly worse than basic composition
	// (the sqrt term alone exceeds ε) — the crossover needs many
	// releases, which is why the Accountant defaults to basic.
	if totalEps <= eps {
		t.Errorf("k=1 advanced bound %v unexpectedly beats basic %v", totalEps, eps)
	}
}

// TestAdvancedCompositionSlackLimit drives deltaSlack toward 0: the
// epsilon bound must grow monotonically (smaller slack is paid for in
// ε) and stay finite — no NaN or Inf even at denormal-range slack.
func TestAdvancedCompositionSlackLimit(t *testing.T) {
	prev := 0.0
	for _, slack := range []float64{1e-2, 1e-6, 1e-12, 1e-100, 1e-300} {
		totalEps, totalDelta, err := AdvancedComposition(0.1, 0, 100, slack)
		if err != nil {
			t.Fatalf("slack %v: %v", slack, err)
		}
		if math.IsNaN(totalEps) || math.IsInf(totalEps, 0) {
			t.Fatalf("slack %v: totalEps = %v", slack, totalEps)
		}
		if totalEps <= prev {
			t.Errorf("slack %v: totalEps %v did not grow from %v", slack, totalEps, prev)
		}
		if math.Abs(totalDelta-slack) > 1e-15 {
			t.Errorf("slack %v: totalDelta = %v", slack, totalDelta)
		}
		prev = totalEps
	}
	// slack = 1 (and beyond) is outside the open interval.
	if _, _, err := AdvancedComposition(0.1, 0, 100, 1); err == nil {
		t.Error("slack=1 accepted")
	}
}

// TestReleasesWithinBoundaries covers the exact-fit and degenerate
// corners of the budget arithmetic.
func TestReleasesWithinBoundaries(t *testing.T) {
	tests := []struct {
		name                     string
		eps, delta, bEps, bDelta float64
		want                     int
	}{
		{"exact fit", 1.0, 0, 1.0, 0, 1},
		{"single release budget", 0.5, 0.1, 0.5, 0.1, 1},
		{"epsilon exceeds budget", 1.5, 0, 1.0, 0, 0},
		{"delta exceeds budget", 0.1, 0.2, 1.0, 0.1, 0},
		{"negative budget", 0.1, 0, -1.0, 0, 0},
		{"zero budget", 0.1, 0, 0, 0, 0},
		{"delta ignored when zero", 0.25, 0, 1.0, 0, 4},
		{"huge budget", 0.5, 0, 1e9, 0, 2_000_000_000},
	}
	for _, tt := range tests {
		if got := ReleasesWithin(tt.eps, tt.delta, tt.bEps, tt.bDelta); got != tt.want {
			t.Errorf("%s: ReleasesWithin(%v,%v,%v,%v) = %d, want %d",
				tt.name, tt.eps, tt.delta, tt.bEps, tt.bDelta, got, tt.want)
		}
	}
}

// TestAccountantConcurrentReadersAndWriters mixes Spend with the read
// accessors from many goroutines — a -race workout for the whole
// Accountant surface, complementing TestAccountantConcurrent's
// exact-grant count.
func TestAccountantConcurrentReadersAndWriters(t *testing.T) {
	a, err := NewAccountant(5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = a.Spend(0.01, 0.001)
				eps, delta := a.Spent()
				if eps < 0 || delta < 0 {
					t.Errorf("negative spend: (%v, %v)", eps, delta)
					return
				}
				reps, _ := a.Remaining()
				if reps < -1e-9 {
					t.Errorf("negative remaining: %v", reps)
					return
				}
				_ = a.Releases()
			}
		}()
	}
	wg.Wait()
	eps, delta := a.Spent()
	if eps > 5+1e-9 || delta > 0.5+1e-9 {
		t.Errorf("budget overdrawn: (%v, %v)", eps, delta)
	}
	if n := a.Releases(); n != 500 {
		// 5.0 / 0.01 = 500 grants; delta would allow exactly 500 too.
		t.Errorf("granted %d releases, want 500", n)
	}
}
