// Package dp implements the differential-privacy substrate of the
// reproduction: the Laplace and Gaussian mechanisms, the (ε,δ) noise
// calibration of the paper's Definition 2, and the planar Laplace
// mechanism that realizes geo-indistinguishability (Andrés et al.,
// CCS'13), which the paper evaluates as a location-level defense.
package dp

import (
	"fmt"
	"math"

	"poiagg/internal/geo"
	"poiagg/internal/rng"
)

// GaussianSigma returns the noise scale σ = Δ·sqrt(2·ln(1.25/δ))/ε that
// makes the Gaussian mechanism (ε,δ)-differentially private for a function
// with L2 sensitivity delta (the paper's Definition 2).
func GaussianSigma(sensitivity, eps, delta float64) (float64, error) {
	if sensitivity < 0 {
		return 0, fmt.Errorf("dp: negative sensitivity %v", sensitivity)
	}
	if eps <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %v", eps)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("dp: delta must be in (0,1), got %v", delta)
	}
	return sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / eps, nil
}

// Gaussian is the Gaussian mechanism: it adds N(0, σ²) noise sized for
// (ε,δ)-DP at a given sensitivity.
type Gaussian struct {
	Eps   float64
	Delta float64
}

// Perturb adds calibrated Gaussian noise to value.
func (g Gaussian) Perturb(src *rng.Source, value, sensitivity float64) (float64, error) {
	sigma, err := GaussianSigma(sensitivity, g.Eps, g.Delta)
	if err != nil {
		return 0, err
	}
	return value + src.Normal(0, sigma), nil
}

// Laplace is the ε-DP Laplace mechanism for functions with L1 sensitivity.
type Laplace struct {
	Eps float64
}

// Perturb adds Laplace(Δ/ε) noise to value.
func (l Laplace) Perturb(src *rng.Source, value, sensitivity float64) (float64, error) {
	if l.Eps <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %v", l.Eps)
	}
	if sensitivity < 0 {
		return 0, fmt.Errorf("dp: negative sensitivity %v", sensitivity)
	}
	return value + src.Laplace(0, sensitivity/l.Eps), nil
}

// PlanarLaplace is the canonical geo-indistinguishability mechanism: it
// reports a location drawn from the planar Laplace distribution centered
// at the true location.
//
// Eps is the privacy parameter per DistanceUnit meters; the paper sets the
// unit to 100 m, so ε = 0.1 with the default unit corresponds to
// ε = 0.001 per meter.
type PlanarLaplace struct {
	Eps          float64
	DistanceUnit float64
}

// NewPlanarLaplace returns the mechanism with the paper's 100 m distance
// unit.
func NewPlanarLaplace(eps float64) (*PlanarLaplace, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("dp: planar laplace epsilon must be positive, got %v", eps)
	}
	return &PlanarLaplace{Eps: eps, DistanceUnit: 100}, nil
}

// Perturb returns a perturbed location for l.
func (p *PlanarLaplace) Perturb(src *rng.Source, l geo.Point) geo.Point {
	unit := p.DistanceUnit
	if unit <= 0 {
		unit = 100
	}
	dx, dy := src.PlanarLaplace(p.Eps / unit)
	return geo.Point{X: l.X + dx, Y: l.Y + dy}
}
