package dp

import (
	"math"
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/rng"
)

func TestGaussianSigmaFormula(t *testing.T) {
	got, err := GaussianSigma(2, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Sqrt(2*math.Log(1.25/0.1)) / 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("sigma = %v, want %v", got, want)
	}
}

func TestGaussianSigmaValidation(t *testing.T) {
	cases := []struct{ sens, eps, delta float64 }{
		{-1, 1, 0.1},
		{1, 0, 0.1},
		{1, -2, 0.1},
		{1, 1, 0},
		{1, 1, 1},
	}
	for _, c := range cases {
		if _, err := GaussianSigma(c.sens, c.eps, c.delta); err == nil {
			t.Errorf("GaussianSigma(%v, %v, %v) accepted", c.sens, c.eps, c.delta)
		}
	}
	// Zero sensitivity is valid: no noise needed.
	if s, err := GaussianSigma(0, 1, 0.1); err != nil || s != 0 {
		t.Errorf("zero sensitivity: %v, %v", s, err)
	}
}

func TestGaussianPerturbStats(t *testing.T) {
	g := Gaussian{Eps: 1, Delta: 0.1}
	src := rng.New(1)
	const n = 100_000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v, err := g.Perturb(src, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sigma, _ := GaussianSigma(1, 1, 0.1)
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-sigma*sigma)/(sigma*sigma) > 0.05 {
		t.Errorf("variance = %v, want ~%v", variance, sigma*sigma)
	}
}

func TestLaplacePerturbStats(t *testing.T) {
	l := Laplace{Eps: 0.5}
	src := rng.New(2)
	const n = 100_000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v, err := l.Perturb(src, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	b := 2 / 0.5
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.1 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-2*b*b)/(2*b*b) > 0.05 {
		t.Errorf("variance = %v, want ~%v", variance, 2*b*b)
	}
}

func TestLaplaceValidation(t *testing.T) {
	src := rng.New(3)
	if _, err := (Laplace{Eps: 0}).Perturb(src, 1, 1); err == nil {
		t.Error("zero eps accepted")
	}
	if _, err := (Laplace{Eps: 1}).Perturb(src, 1, -1); err == nil {
		t.Error("negative sensitivity accepted")
	}
}

func TestPlanarLaplaceMeanDisplacement(t *testing.T) {
	// Mean radial displacement of the planar Laplace is 2·unit/ε meters.
	pl, err := NewPlanarLaplace(0.1)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	origin := geo.Point{X: 1000, Y: 2000}
	const n = 50_000
	sum := 0.0
	for i := 0; i < n; i++ {
		p := pl.Perturb(src, origin)
		sum += geo.Dist(origin, p)
	}
	mean := sum / n
	want := 2 * pl.DistanceUnit / pl.Eps // 2000 m for ε=0.1, unit 100 m
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean displacement = %v, want ~%v", mean, want)
	}
}

func TestPlanarLaplaceEpsScaling(t *testing.T) {
	// Larger ε must produce smaller displacement.
	weak, _ := NewPlanarLaplace(1.0)
	strong, _ := NewPlanarLaplace(0.1)
	src1, src2 := rng.New(5), rng.New(5)
	origin := geo.Point{}
	sumWeak, sumStrong := 0.0, 0.0
	for i := 0; i < 20_000; i++ {
		sumWeak += geo.Dist(origin, weak.Perturb(src1, origin))
		sumStrong += geo.Dist(origin, strong.Perturb(src2, origin))
	}
	if sumWeak >= sumStrong {
		t.Errorf("eps=1.0 displacement %v not below eps=0.1 displacement %v", sumWeak, sumStrong)
	}
}

func TestNewPlanarLaplaceValidation(t *testing.T) {
	if _, err := NewPlanarLaplace(0); err == nil {
		t.Error("zero eps accepted")
	}
	if _, err := NewPlanarLaplace(-1); err == nil {
		t.Error("negative eps accepted")
	}
}
