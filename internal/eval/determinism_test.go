package eval

import (
	"fmt"
	"testing"

	"poiagg/internal/cloak"
	"poiagg/internal/defense"
	"poiagg/internal/geo"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// figureReleasers builds one releaser per defense family the paper's
// figures sweep — exactly the configurations whose results must not
// move when the sweep engine parallelizes.
func figureReleasers(t *testing.T) map[string]Releaser {
	t.Helper()
	city, svc := fixture(t)
	pop := cloak.UniformPopulation(city.Bounds, 2000, 71)

	san, err := defense.NewSanitizer(city.City, 10)
	if err != nil {
		t.Fatal(err)
	}
	geoInd, err := defense.NewGeoInd(svc, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := defense.NewCloaking(svc, pop, 10)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := defense.NewOptRelease(city.City)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := defense.NewDPRelease(svc, pop, defense.DefaultDPReleaseConfig())
	if err != nil {
		t.Fatal(err)
	}

	return map[string]Releaser{
		"plain": PlainReleaser(svc),
		"sanitizer": func(_ *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
			return san.Apply(svc.Freq(l, r)), nil
		},
		"geo-ind": func(src *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
			return geoInd.Release(src, l, r), nil
		},
		"cloaking": func(_ *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
			return cl.Release(l, r), nil
		},
		"opt-release": func(_ *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
			return opt.Solve(svc.Freq(l, r), 0.03)
		},
		"dp-release": func(src *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
			return dp.Release(src, l, r)
		},
	}
}

// TestSweepDeterminismSuccessRate is the differential proof that the
// parallel SuccessRate engine reproduces the serial reference
// bit-for-bit — same seed, same result, for every figure-relevant
// releaser, including the stochastic ones — and that repeated parallel
// runs are scheduling-independent.
func TestSweepDeterminismSuccessRate(t *testing.T) {
	city, svc := fixture(t)
	locs := city.RandomLocations(80, 6)
	const r, seed = 1000.0, 99
	for name, rel := range figureReleasers(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := SuccessRateSerial(svc, locs, r, rel, seed)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := SuccessRate(svc, locs, r, rel, seed)
			if err != nil {
				t.Fatal(err)
			}
			if parallel != serial {
				t.Errorf("parallel = %v, serial = %v (must be bit-identical)", parallel, serial)
			}
			again, err := SuccessRate(svc, locs, r, rel, seed)
			if err != nil {
				t.Fatal(err)
			}
			if again != parallel {
				t.Errorf("parallel rerun = %v, first run = %v (scheduling leaked in)", again, parallel)
			}
		})
	}
}

// TestSweepDeterminismTopKJaccard is the same differential for the
// utility metric, whose mean over per-location scores is
// order-sensitive in floating point — the parallel engine must place
// every score at its location index before averaging.
func TestSweepDeterminismTopKJaccard(t *testing.T) {
	city, svc := fixture(t)
	locs := city.RandomLocations(80, 7)
	const r, k, seed = 1000.0, 10, 101
	for name, rel := range figureReleasers(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := TopKJaccardSerial(svc, locs, r, rel, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := TopKJaccard(svc, locs, r, rel, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			if parallel != serial {
				t.Errorf("parallel = %v, serial = %v (must be bit-identical)", parallel, serial)
			}
			again, err := TopKJaccard(svc, locs, r, rel, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			if again != parallel {
				t.Errorf("parallel rerun = %v, first run = %v (scheduling leaked in)", again, parallel)
			}
		})
	}
}

// TestSweepDeterminismSeedSensitivity guards against a degenerate
// splitter: different seeds must actually produce different stochastic
// sweeps (otherwise the differential tests above prove nothing).
func TestSweepDeterminismSeedSensitivity(t *testing.T) {
	city, svc := fixture(t)
	locs := city.RandomLocations(60, 8)
	rel := figureReleasers(t)["dp-release"]
	a, err := TopKJaccard(svc, locs, 1000, rel, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopKJaccard(svc, locs, 1000, rel, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Errorf("seeds 1 and 2 gave identical Jaccard %v — per-location streams look seed-independent", a)
	}
}

// TestSweepDeterministicError proves failure is deterministic too: the
// parallel engine reports the same (lowest-index) error the serial one
// does, regardless of which worker hit its failure first.
func TestSweepDeterministicError(t *testing.T) {
	city, svc := fixture(t)
	locs := city.RandomLocations(50, 9)
	bad := map[geo.Point]bool{locs[7]: true, locs[13]: true, locs[44]: true}
	rel := func(_ *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
		if bad[l] {
			return nil, fmt.Errorf("refused release at (%.3f, %.3f)", l.X, l.Y)
		}
		return svc.Freq(l, r), nil
	}
	_, serialErr := SuccessRateSerial(svc, locs, 1000, rel, 1)
	_, parallelErr := SuccessRate(svc, locs, 1000, rel, 1)
	if serialErr == nil || parallelErr == nil {
		t.Fatalf("expected errors, got serial=%v parallel=%v", serialErr, parallelErr)
	}
	if serialErr.Error() != parallelErr.Error() {
		t.Errorf("parallel error %q != serial error %q", parallelErr, serialErr)
	}
}

// BenchmarkSweepParallelVsSerial is the sweep-engine ablation: the same
// plain-release SuccessRate sweep through the parallel engine and the
// serial reference. The delta is the worker pool's win (bounded by the
// core count; the two are equal-cost on a single-core box).
func BenchmarkSweepParallelVsSerial(b *testing.B) {
	city, svc := fixture(b)
	locs := city.RandomLocations(200, 10)
	rel := PlainReleaser(svc)
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SuccessRate(svc, locs, 1000, rel, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SuccessRateSerial(svc, locs, 1000, rel, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
