// Package eval provides the shared experiment machinery: release
// pipelines (a defense viewed as a function from a location to a released
// frequency vector), attack sweeps over location sets, and the paper's
// two metrics — re-identification success rate and Top-K Jaccard utility.
package eval

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"poiagg/internal/attack"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
	"poiagg/internal/stats"
)

// Releaser maps a user location and query range to the frequency vector
// the user releases. Plain (undefended) release is PlainReleaser; each
// defense contributes its own.
type Releaser func(src *rng.Source, l geo.Point, r float64) (poi.FreqVector, error)

// PlainReleaser releases the exact aggregate — no protection.
func PlainReleaser(svc *gsp.Service) Releaser {
	return func(_ *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
		return svc.Freq(l, r), nil
	}
}

// locSource derives the random stream for location index i of a sweep
// seeded with seed. Every sweep engine — serial or parallel — MUST
// obtain per-location randomness through this single function: keying
// the stream to the location index (instead of consuming one shared
// sequential stream) is what makes the parallel sweeps reproduce the
// serial ones bit-for-bit regardless of scheduling
// (TestSweepDeterminism*).
func locSource(root *rng.Source, i int) *rng.Source {
	return root.Split(uint64(i))
}

// forEachLoc runs fn(0..n-1) across a worker pool pulling indices from a
// shared counter. All indices run even when some fail; the error
// reported is the one at the lowest index, so failure is as
// deterministic as success.
func forEachLoc(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachLocFreq is forEachLoc with one scratch FreqVector of dimension
// m per worker, for sweeps whose per-location work needs a transient
// frequency buffer: Service.FreqInto call sites allocate per worker
// instead of per location. Scratch reuse cannot change results — the
// buffer is fully overwritten by every FreqInto call.
func forEachLocFreq(n, m int, fn func(i int, scratch poi.FreqVector) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		scratch := poi.NewFreqVector(m)
		for i := 0; i < n; i++ {
			errs[i] = fn(i, scratch)
		}
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := poi.NewFreqVector(m)
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i, scratch)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SuccessRate releases a vector for every location through rel and runs
// the region re-identification attack against it, returning the fraction
// of successful attacks: |Φ| = 1 and the re-identified region (the
// radius-r disk around the surviving anchor) contains the true location.
// For undefended releases the two conditions coincide (the unique
// survivor is always the true anchor); for location-shifting defenses
// (geo-indistinguishability, cloaking) the containment check is what
// distinguishes re-identifying the user from confidently re-identifying
// the wrong place.
//
// The sweep fans out across a worker pool; each location draws from its
// own split random stream, so the result is bit-identical to
// SuccessRateSerial at the same seed.
func SuccessRate(svc *gsp.Service, locs []geo.Point, r float64, rel Releaser, seed uint64) (float64, error) {
	if len(locs) == 0 {
		return 0, fmt.Errorf("eval: SuccessRate: no locations")
	}
	root := rng.New(seed)
	succ := make([]bool, len(locs))
	err := forEachLoc(len(locs), func(i int) error {
		l := locs[i]
		f, err := rel(locSource(root, i), l, r)
		if err != nil {
			return fmt.Errorf("eval: SuccessRate: %w", err)
		}
		succ[i] = attack.Region(svc, f, r).Covers(l, r)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return countTrue(succ), nil
}

// SuccessRateSerial is the single-threaded reference implementation of
// SuccessRate — the ground truth the determinism differential tests
// compare the parallel engine against.
func SuccessRateSerial(svc *gsp.Service, locs []geo.Point, r float64, rel Releaser, seed uint64) (float64, error) {
	if len(locs) == 0 {
		return 0, fmt.Errorf("eval: SuccessRate: no locations")
	}
	root := rng.New(seed)
	succ := make([]bool, len(locs))
	for i, l := range locs {
		f, err := rel(locSource(root, i), l, r)
		if err != nil {
			return 0, fmt.Errorf("eval: SuccessRate: %w", err)
		}
		succ[i] = attack.Region(svc, f, r).Covers(l, r)
	}
	return countTrue(succ), nil
}

// countTrue returns the fraction of set flags, shared by both engines so
// the final division is literally the same operation on the same values.
func countTrue(flags []bool) float64 {
	n := 0
	for _, ok := range flags {
		if ok {
			n++
		}
	}
	return float64(n) / float64(len(flags))
}

// FineGrainedOutcome aggregates a fine-grained attack sweep.
type FineGrainedOutcome struct {
	// SuccessRate is the fraction of locations where the region stage
	// succeeded.
	SuccessRate float64
	// Areas holds the feasible-region area (m²) of every successful
	// attack.
	Areas []float64
	// MeanAux is the mean number of auxiliary anchors used on successes.
	MeanAux float64
	// CoverRate is the fraction of successful attacks whose feasible
	// region contains the true location (soundness diagnostic).
	CoverRate float64
}

// FineGrainedSweep runs the fine-grained attack over plain releases at
// every location. The attack is deterministic (no randomness), so the
// sweep fans out across a worker pool and still produces bit-identical
// results in location order.
func FineGrainedSweep(svc *gsp.Service, locs []geo.Point, r float64, cfg attack.FineGrainedConfig) (FineGrainedOutcome, error) {
	if len(locs) == 0 {
		return FineGrainedOutcome{}, fmt.Errorf("eval: FineGrainedSweep: no locations")
	}
	type perLoc struct {
		success bool
		area    float64
		aux     int
		covered bool
	}
	results := make([]perLoc, len(locs))
	forEachLocFreq(len(locs), svc.City().M(), func(i int, scratch poi.FreqVector) error {
		l := locs[i]
		svc.FreqInto(scratch, l, r)
		res := attack.FineGrained(svc, scratch, r, cfg)
		if res.Success {
			results[i] = perLoc{
				success: true,
				area:    res.Area,
				aux:     len(res.AuxAnchors),
				covered: res.Covers(l, r),
			}
		}
		return nil
	})

	var out FineGrainedOutcome
	var auxTotal, covered int
	for _, pr := range results {
		if !pr.success {
			continue
		}
		out.Areas = append(out.Areas, pr.area)
		auxTotal += pr.aux
		if pr.covered {
			covered++
		}
	}
	n := len(out.Areas)
	out.SuccessRate = float64(n) / float64(len(locs))
	if n > 0 {
		out.MeanAux = float64(auxTotal) / float64(n)
		out.CoverRate = float64(covered) / float64(n)
	}
	return out, nil
}

// TopKJaccard measures utility: the mean Jaccard index between the Top-K
// type sets of the exact aggregate and the released one, over locs.
//
// Like SuccessRate, the sweep is parallel with per-location split
// streams; per-location scores land in location order before the mean,
// so the result is bit-identical to TopKJaccardSerial at the same seed.
func TopKJaccard(svc *gsp.Service, locs []geo.Point, r float64, rel Releaser, k int, seed uint64) (float64, error) {
	if len(locs) == 0 {
		return 0, fmt.Errorf("eval: TopKJaccard: no locations")
	}
	root := rng.New(seed)
	js := make([]float64, len(locs))
	err := forEachLocFreq(len(locs), svc.City().M(), func(i int, scratch poi.FreqVector) error {
		l := locs[i]
		svc.FreqInto(scratch, l, r)
		released, err := rel(locSource(root, i), l, r)
		if err != nil {
			return fmt.Errorf("eval: TopKJaccard: %w", err)
		}
		js[i] = stats.Jaccard(scratch.TopK(k), released.TopK(k))
		return nil
	})
	if err != nil {
		return 0, err
	}
	return stats.Mean(js), nil
}

// TopKJaccardSerial is the single-threaded reference implementation of
// TopKJaccard for the determinism differential tests.
func TopKJaccardSerial(svc *gsp.Service, locs []geo.Point, r float64, rel Releaser, k int, seed uint64) (float64, error) {
	if len(locs) == 0 {
		return 0, fmt.Errorf("eval: TopKJaccard: no locations")
	}
	root := rng.New(seed)
	js := make([]float64, len(locs))
	for i, l := range locs {
		exact := svc.Freq(l, r)
		released, err := rel(locSource(root, i), l, r)
		if err != nil {
			return 0, fmt.Errorf("eval: TopKJaccard: %w", err)
		}
		js[i] = stats.Jaccard(exact.TopK(k), released.TopK(k))
	}
	return stats.Mean(js), nil
}
