package eval

import (
	"errors"
	"math"
	"sync"
	"testing"

	"poiagg/internal/attack"
	"poiagg/internal/citygen"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

var (
	fixtureOnce sync.Once
	fixtureCity *citygen.City
	fixtureSvc  *gsp.Service
)

func fixture(t testing.TB) (*citygen.City, *gsp.Service) {
	t.Helper()
	fixtureOnce.Do(func() {
		p := citygen.Beijing(23)
		p.NumPOIs = 2000
		p.NumTypes = 70
		p.Width, p.Height = 14_000, 14_000
		p.NumDistricts = 25
		city, err := citygen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		fixtureCity = city
		fixtureSvc = gsp.NewService(city.City, 1<<16)
	})
	return fixtureCity, fixtureSvc
}

func TestSuccessRatePlain(t *testing.T) {
	city, svc := fixture(t)
	locs := city.RandomLocations(100, 1)
	rate, err := SuccessRate(svc, locs, 1000, PlainReleaser(svc), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 || rate > 1 {
		t.Errorf("rate = %v", rate)
	}
}

func TestSuccessRateEmptyLocations(t *testing.T) {
	_, svc := fixture(t)
	if _, err := SuccessRate(svc, nil, 1000, PlainReleaser(svc), 1); err == nil {
		t.Error("empty locations accepted")
	}
}

func TestSuccessRateReleaserError(t *testing.T) {
	_, svc := fixture(t)
	fail := func(*rng.Source, geo.Point, float64) (poi.FreqVector, error) {
		return nil, errors.New("boom")
	}
	if _, err := SuccessRate(svc, []geo.Point{{}}, 1000, fail, 1); err == nil {
		t.Error("releaser error swallowed")
	}
}

func TestSuccessRateZeroWithEmptyVectors(t *testing.T) {
	city, svc := fixture(t)
	empty := func(*rng.Source, geo.Point, float64) (poi.FreqVector, error) {
		return poi.NewFreqVector(city.M()), nil
	}
	rate, err := SuccessRate(svc, city.RandomLocations(20, 2), 1000, empty, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Errorf("empty releases should never re-identify, rate = %v", rate)
	}
}

func TestFineGrainedSweep(t *testing.T) {
	city, svc := fixture(t)
	locs := city.RandomLocations(120, 3)
	const r = 1000.0
	out, err := FineGrainedSweep(svc, locs, r, attack.DefaultFineGrainedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.SuccessRate <= 0 {
		t.Fatal("no successes")
	}
	if len(out.Areas) != int(out.SuccessRate*float64(len(locs))+0.5) {
		t.Errorf("areas %d inconsistent with rate %v", len(out.Areas), out.SuccessRate)
	}
	for _, a := range out.Areas {
		if a <= 0 || a > math.Pi*r*r+1e-6 {
			t.Errorf("area %v out of range", a)
		}
	}
	if out.CoverRate < 0.9 {
		t.Errorf("cover rate %v < 0.9 — soundness regression", out.CoverRate)
	}
	if out.MeanAux < 0 {
		t.Errorf("MeanAux = %v", out.MeanAux)
	}
	if _, err := FineGrainedSweep(svc, nil, r, attack.DefaultFineGrainedConfig()); err == nil {
		t.Error("empty locations accepted")
	}
}

func TestTopKJaccardPlainIsPerfect(t *testing.T) {
	city, svc := fixture(t)
	locs := city.RandomLocations(30, 4)
	j, err := TopKJaccard(svc, locs, 1000, PlainReleaser(svc), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j != 1 {
		t.Errorf("plain release Jaccard = %v, want 1", j)
	}
	if _, err := TopKJaccard(svc, nil, 1000, PlainReleaser(svc), 10, 1); err == nil {
		t.Error("empty locations accepted")
	}
}

func TestTopKJaccardDegradesWithNoise(t *testing.T) {
	city, svc := fixture(t)
	locs := city.RandomLocations(30, 5)
	noisy := func(src *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
		f := svc.Freq(l, r)
		for i := range f {
			f[i] += src.IntN(30)
		}
		return f, nil
	}
	j, err := TopKJaccard(svc, locs, 1000, noisy, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j >= 1 {
		t.Errorf("heavy noise should reduce Jaccard, got %v", j)
	}
}
