package experiments

import (
	"fmt"
	"math"
	"time"

	"poiagg/internal/attack"
	"poiagg/internal/eval"
	"poiagg/internal/stats"
	"poiagg/internal/trajgen"
)

// DatasetTable reproduces the Section II-E dataset statistics: POI and
// type counts of the two cities.
func DatasetTable(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "datasets",
		Title:  "Dataset statistics (Section II-E)",
		XLabel: "city(1=BJ,2=NYC)",
		YLabel: "count",
	}
	pois := Series{Name: "POIs"}
	types := Series{Name: "types"}
	rare := Series{Name: "types freq<=10"}
	for i, name := range []string{"beijing", "nyc"} {
		city, err := env.City(name)
		if err != nil {
			return nil, err
		}
		x := float64(i + 1)
		pois.X = append(pois.X, x)
		pois.Y = append(pois.Y, float64(city.NumPOIs()))
		types.X = append(types.X, x)
		types.Y = append(types.Y, float64(city.M()))
		rare.X = append(rare.X, x)
		rare.Y = append(rare.Y, float64(len(sanitizedTypes(city, 10))))
	}
	fig.Series = []Series{pois, types, rare}
	fig.Notes = append(fig.Notes,
		"paper: Beijing 10,249 POIs / 177 types; NYC 30,056 POIs / 272 types",
		"paper sanitizes 90 (BJ) and 138 (NYC) types with frequency <= 10")
	return fig, nil
}

// Fig2 reproduces Figure 2: validation accuracy of the per-type
// prediction models that recover sanitized frequencies, per query range.
func Fig2(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig2",
		Title:  "Accuracy of sanitization-recovery prediction models",
		XLabel: "r (km)",
		YLabel: "mean validation accuracy",
	}
	for _, cityName := range []string{"beijing", "nyc"} {
		s := Series{Name: cityName}
		for _, r := range Radii {
			rec, err := env.Recoverer(cityName, r)
			if err != nil {
				return nil, err
			}
			var accs []float64
			for _, a := range rec.ValidationAccuracy() {
				accs = append(accs, a)
			}
			mean, std := stats.MeanStd(accs)
			s.X = append(s.X, r/1000)
			s.Y = append(s.Y, mean)
			fig.Notes = append(fig.Notes,
				fmt.Sprintf("%s r=%.1fkm: accuracy %.3f (±%.3f) over %d sanitized types",
					cityName, r/1000, mean, std, len(accs)))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes, "paper: mean accuracy > 0.95 for all ranges in both cities")
	return fig, nil
}

// Fig3 reproduces Figure 3: region re-identification success under
// sanitization — without protection, sanitized, and with learning-based
// recovery.
func Fig3(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig3",
		Title:  "Performance of the sanitization defense",
		XLabel: "r (km)",
		YLabel: "success rate",
	}
	for _, tc := range []struct{ cityName, dataset string }{
		{"beijing", DatasetBJRandom},
		{"nyc", DatasetNYCRandom},
	} {
		svc, err := env.Service(tc.cityName)
		if err != nil {
			return nil, err
		}
		city, err := env.City(tc.cityName)
		if err != nil {
			return nil, err
		}
		locs, err := env.Dataset(tc.dataset)
		if err != nil {
			return nil, err
		}
		san := sanitizedTypes(city, 10)
		plain := Series{Name: tc.cityName + ":w/o protection"}
		sanitized := Series{Name: tc.cityName + ":sanitized"}
		recovered := Series{Name: tc.cityName + ":recovered"}
		for _, r := range Radii {
			rec, err := env.Recoverer(tc.cityName, r)
			if err != nil {
				return nil, err
			}
			var nPlain, nSan, nRec int
			for _, l := range locs {
				f := svc.Freq(l, r)
				if attack.Region(svc, f, r).Covers(l, r) {
					nPlain++
				}
				fs := f.Clone()
				for _, t := range san {
					fs[t] = 0
				}
				if attack.Region(svc, fs, r).Covers(l, r) {
					nSan++
				}
				if attack.Region(svc, rec.Recover(fs), r).Covers(l, r) {
					nRec++
				}
			}
			n := float64(len(locs))
			x := r / 1000
			plain.X = append(plain.X, x)
			plain.Y = append(plain.Y, float64(nPlain)/n)
			sanitized.X = append(sanitized.X, x)
			sanitized.Y = append(sanitized.Y, float64(nSan)/n)
			recovered.X = append(recovered.X, x)
			recovered.Y = append(recovered.Y, float64(nRec)/n)
		}
		fig.Series = append(fig.Series, plain, sanitized, recovered)
	}
	fig.Notes = append(fig.Notes,
		"paper BJ w/o: 0.184/0.306/0.440/0.642; sanitized: 0.126/0.153/0.126/0.016; recovered ~= w/o",
		"paper NYC w/o: 0.192/0.333/0.501/0.678; sanitized < 0.2; recovered ~= w/o")
	return fig, nil
}

// Fig6 reproduces Figure 6: the CDF of the fine-grained attack's search
// area, per dataset and query range, with MAXaux = 20. X values are the
// area as a fraction of the baseline πr².
func Fig6(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig6",
		Title:  "Fine-grained attack: CDF of search area (fraction of πr²)",
		XLabel: "area/πr²",
		YLabel: "CDF",
	}
	fractions := []float64{0.0625, 0.125, 0.1875, 0.25, 0.5, 0.75, 1.0}
	cfg := attack.DefaultFineGrainedConfig()
	for _, dataset := range []string{DatasetBJTaxi, DatasetBJRandom, DatasetNYCCheckin, DatasetNYCRandom} {
		cityName, err := datasetCity(dataset)
		if err != nil {
			return nil, err
		}
		svc, err := env.Service(cityName)
		if err != nil {
			return nil, err
		}
		locs, err := env.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		for _, r := range Radii {
			out, err := eval.FineGrainedSweep(svc, locs, r, cfg)
			if err != nil {
				return nil, err
			}
			if len(out.Areas) == 0 {
				fig.Notes = append(fig.Notes,
					fmt.Sprintf("%s r=%.1fkm: no successful attacks", dataset, r/1000))
				continue
			}
			cdf := stats.NewCDF(out.Areas)
			base := math.Pi * r * r
			s := Series{Name: fmt.Sprintf("%s r=%.1f", dataset, r/1000)}
			for _, fr := range fractions {
				s.X = append(s.X, fr)
				s.Y = append(s.Y, cdf.At(fr*base))
			}
			fig.Series = append(fig.Series, s)
		}
	}
	fig.Notes = append(fig.Notes,
		"paper: in ~80% of cases the search area is <= 1/4 of Cao et al.'s πr²")
	return fig, nil
}

// Fig7 reproduces Figure 7: mean search area versus the number of
// auxiliary anchors at r = 2 km.
func Fig7(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig7",
		Title:  "Search area vs number of auxiliary anchors (r = 2 km)",
		XLabel: "MAXaux",
		YLabel: "mean area (km²)",
	}
	const r = 2000.0
	maxAuxes := []int{5, 10, 20, 40}
	for _, dataset := range []string{DatasetBJTaxi, DatasetBJRandom, DatasetNYCCheckin, DatasetNYCRandom} {
		cityName, err := datasetCity(dataset)
		if err != nil {
			return nil, err
		}
		svc, err := env.Service(cityName)
		if err != nil {
			return nil, err
		}
		locs, err := env.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		s := Series{Name: dataset}
		for _, maxAux := range maxAuxes {
			out, err := eval.FineGrainedSweep(svc, locs, r, attack.FineGrainedConfig{MaxAux: maxAux})
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(maxAux))
			s.Y = append(s.Y, stats.Mean(out.Areas)/1e6)
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"paper: mean areas fall from {1.70, 2.38, 1.92, 2.63} km² at 5 anchors to {0.60, 1.35, 0.26, 1.07} km² at 40",
		fmt.Sprintf("Cao et al. baseline is always πr² = %.2f km²", math.Pi*4))
	return fig, nil
}

// Fig8 reproduces Figure 8: success rate of the single-release attack
// versus the attack exploiting two successive releases, on Beijing taxi
// segments with changed vectors and gaps under 10 minutes.
func Fig8(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig8",
		Title:  "Exploiting two successive queries (Beijing taxi)",
		XLabel: "r (km)",
		YLabel: "success rate",
	}
	svc, err := env.Service("beijing")
	if err != nil {
		return nil, err
	}
	trajs, err := env.TaxiTrajectories()
	if err != nil {
		return nil, err
	}
	segs := trajgen.Segments(trajs, 10*time.Minute, 100)
	maxSegs := env.Config().Locations
	single := Series{Name: "single release"}
	pair := Series{Name: "two successive releases"}
	cfg := attack.DefaultTrajectoryConfig()
	for _, r := range Radii {
		est, err := env.DistanceEstimator(r)
		if err != nil {
			return nil, err
		}
		var nSingle, nPair, total int
		for _, s := range segs {
			if total/2 >= maxSegs {
				break
			}
			f1 := svc.Freq(s.From.Pos, r)
			f2 := svc.Freq(s.To.Pos, r)
			if f1.Equal(f2) {
				continue // unchanged release carries no extra information
			}
			total += 2
			if attack.Region(svc, f1, r).Success {
				nSingle++
			}
			if attack.Region(svc, f2, r).Success {
				nSingle++
			}
			res := attack.Trajectory(svc, est,
				attack.Release{F: f1, T: s.From.T, R: r},
				attack.Release{F: f2, T: s.To.T, R: r},
				cfg)
			if res.SuccessFirst {
				nPair++
			}
			if res.SuccessSecond {
				nPair++
			}
		}
		if total == 0 {
			return nil, fmt.Errorf("experiments: Fig8: no usable segments at r=%.0f", r)
		}
		x := r / 1000
		single.X = append(single.X, x)
		single.Y = append(single.Y, float64(nSingle)/float64(total))
		pair.X = append(pair.X, x)
		pair.Y = append(pair.Y, float64(nPair)/float64(total))
	}
	fig.Series = []Series{single, pair}
	fig.Notes = append(fig.Notes,
		"paper gains: +0.203, +0.146, +0.09, +0.001 for r = 0.5/1/2/4 km")
	return fig, nil
}
