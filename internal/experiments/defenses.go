package experiments

import (
	"fmt"

	"poiagg/internal/defense"
	"poiagg/internal/eval"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// allDatasets lists the paper's four evaluation workloads.
var allDatasets = []string{DatasetBJTaxi, DatasetBJRandom, DatasetNYCCheckin, DatasetNYCRandom}

// Fig4 reproduces Figure 4: region re-identification success under the
// planar Laplace (geo-indistinguishability) defense, per dataset, for
// ε ∈ {0.1, 1.0} and without protection.
func Fig4(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig4",
		Title:  "Performance of planar Laplacian (geo-indistinguishability)",
		XLabel: "r (km)",
		YLabel: "success rate",
	}
	for _, dataset := range allDatasets {
		cityName, err := datasetCity(dataset)
		if err != nil {
			return nil, err
		}
		svc, err := env.Service(cityName)
		if err != nil {
			return nil, err
		}
		locs, err := env.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		releasers := []struct {
			name string
			rel  eval.Releaser
		}{
			{dataset + ":w/o protection", eval.PlainReleaser(svc)},
		}
		for _, eps := range []float64{0.1, 1.0} {
			g, err := defense.NewGeoInd(svc, eps)
			if err != nil {
				return nil, err
			}
			releasers = append(releasers, struct {
				name string
				rel  eval.Releaser
			}{
				fmt.Sprintf("%s:eps=%.1f", dataset, eps),
				func(src *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
					return g.Release(src, l, r), nil
				},
			})
		}
		for _, rr := range releasers {
			s := Series{Name: rr.name}
			for _, r := range Radii {
				rate, err := eval.SuccessRate(svc, locs, r, rr.rel, env.Config().Seed+41)
				if err != nil {
					return nil, err
				}
				s.X = append(s.X, r/1000)
				s.Y = append(s.Y, rate)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	fig.Notes = append(fig.Notes,
		"paper: eps=1.0 barely mitigates; eps=0.1 mitigates ~81%/42%/18%/12% of attacks (BJ T-drive) as r grows",
		"location-level protection works best at small query ranges")
	return fig, nil
}

// Fig5 reproduces Figure 5: region re-identification success under
// spatial k-cloaking, per dataset and query range, sweeping k.
func Fig5(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig5",
		Title:  "Performance of spatial k-cloaking",
		XLabel: "k",
		YLabel: "success rate",
	}
	ks := []int{2, 5, 10, 20, 30, 50}
	for _, dataset := range allDatasets {
		cityName, err := datasetCity(dataset)
		if err != nil {
			return nil, err
		}
		svc, err := env.Service(cityName)
		if err != nil {
			return nil, err
		}
		pop, err := env.Population(cityName)
		if err != nil {
			return nil, err
		}
		locs, err := env.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		for _, r := range Radii {
			s := Series{Name: fmt.Sprintf("%s r=%.1f", dataset, r/1000)}
			for _, k := range ks {
				cl, err := defense.NewCloaking(svc, pop, k)
				if err != nil {
					return nil, err
				}
				rel := func(_ *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
					return cl.Release(l, r), nil
				}
				rate, err := eval.SuccessRate(svc, locs, r, rel, env.Config().Seed+43)
				if err != nil {
					return nil, err
				}
				s.X = append(s.X, float64(k))
				s.Y = append(s.Y, rate)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	fig.Notes = append(fig.Notes,
		"paper: success rate decreases with k but stays unsatisfactory even at k = 50")
	return fig, nil
}

// defenseDatasets are the two workloads the paper evaluates its own
// defenses on.
var defenseDatasets = []string{DatasetBJTaxi, DatasetNYCCheckin}

// Betas is the paper's distortion-budget sweep.
var Betas = []float64{0.01, 0.02, 0.03, 0.04, 0.05}

// Fig9 reproduces Figure 9: region re-identification success under the
// non-private optimization-based defense, per query range, sweeping β.
func Fig9(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig9",
		Title:  "Non-private defense: success rate vs β",
		XLabel: "beta",
		YLabel: "success rate",
	}
	err := forOptRelease(env, func(dataset string, svc svcT, opt *defense.OptRelease, locs []geo.Point) error {
		for _, r := range Radii {
			s := Series{Name: fmt.Sprintf("%s r=%.1f", dataset, r/1000)}
			for _, beta := range Betas {
				rel := optReleaser(svc, opt, beta)
				rate, err := eval.SuccessRate(svc, locs, r, rel, env.Config().Seed+47)
				if err != nil {
					return err
				}
				s.X = append(s.X, beta)
				s.Y = append(s.Y, rate)
			}
			fig.Series = append(fig.Series, s)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper: larger β defends better while utility decreases only slightly")
	return fig, nil
}

// Fig10 reproduces Figure 10: Top-10 Jaccard utility of the non-private
// defense, per query range, sweeping β.
func Fig10(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig10",
		Title:  "Non-private defense: Top-10 Jaccard vs β",
		XLabel: "beta",
		YLabel: "Jaccard index",
	}
	err := forOptRelease(env, func(dataset string, svc svcT, opt *defense.OptRelease, locs []geo.Point) error {
		for _, r := range Radii {
			s := Series{Name: fmt.Sprintf("%s r=%.1f", dataset, r/1000)}
			for _, beta := range Betas {
				rel := optReleaser(svc, opt, beta)
				j, err := eval.TopKJaccard(svc, locs, r, rel, 10, env.Config().Seed+53)
				if err != nil {
					return err
				}
				s.X = append(s.X, beta)
				s.Y = append(s.Y, j)
			}
			fig.Series = append(fig.Series, s)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig11 reproduces Figure 11: success rate of the differentially private
// defense at r = 2 km, sweeping ε for several β.
func Fig11(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig11",
		Title:  "DP defense: success rate vs ε (r = 2 km, k = 20, δ = 0.2)",
		XLabel: "epsilon",
		YLabel: "success rate",
	}
	if err := dpSweep(env, Betas, fig, func(svc svcT, locs []geo.Point, rel eval.Releaser, r float64) (float64, error) {
		return eval.SuccessRate(svc, locs, r, rel, env.Config().Seed+59)
	}); err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper: defense weakens (success rises) as ε grows; <20% success in most settings")
	return fig, nil
}

// Fig12 reproduces Figure 12: Top-10 Jaccard utility of the DP defense at
// r = 2 km, sweeping ε for several β.
func Fig12(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "fig12",
		Title:  "DP defense: Top-10 Jaccard vs ε (r = 2 km, k = 20, δ = 0.2)",
		XLabel: "epsilon",
		YLabel: "Jaccard index",
	}
	betas := []float64{0.0, 0.01, 0.02, 0.03, 0.04}
	if err := dpSweep(env, betas, fig, func(svc svcT, locs []geo.Point, rel eval.Releaser, r float64) (float64, error) {
		return eval.TopKJaccard(svc, locs, r, rel, 10, env.Config().Seed+61)
	}); err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper: utility improves with ε and is merely affected by β")
	return fig, nil
}

// svcT aliases the service type to keep the sweep helpers readable.
type svcT = *gsp.Service

// forOptRelease iterates the defense datasets, building the optimization
// mechanism once per city.
func forOptRelease(env *Env, fn func(dataset string, svc svcT, opt *defense.OptRelease, locs []geo.Point) error) error {
	for _, dataset := range defenseDatasets {
		cityName, err := datasetCity(dataset)
		if err != nil {
			return err
		}
		svc, err := env.Service(cityName)
		if err != nil {
			return err
		}
		city, err := env.City(cityName)
		if err != nil {
			return err
		}
		opt, err := defense.NewOptRelease(city.City)
		if err != nil {
			return err
		}
		locs, err := env.Dataset(dataset)
		if err != nil {
			return err
		}
		if err := fn(dataset, svc, opt, locs); err != nil {
			return err
		}
	}
	return nil
}

// optReleaser adapts OptRelease to the eval.Releaser interface.
func optReleaser(svc svcT, opt *defense.OptRelease, beta float64) eval.Releaser {
	return func(_ *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
		return opt.Solve(svc.Freq(l, r), beta)
	}
}

// Epsilons is the paper's privacy-budget sweep for the DP defense.
var Epsilons = []float64{0.2, 0.6, 1.0, 1.5, 2.0}

// dpSweep runs a metric over the DP defense for every (dataset, β, ε)
// combination at r = 2 km.
func dpSweep(env *Env, betas []float64, fig *Figure, metric func(svc svcT, locs []geo.Point, rel eval.Releaser, r float64) (float64, error)) error {
	const r = 2000.0
	for _, dataset := range defenseDatasets {
		cityName, err := datasetCity(dataset)
		if err != nil {
			return err
		}
		svc, err := env.Service(cityName)
		if err != nil {
			return err
		}
		pop, err := env.Population(cityName)
		if err != nil {
			return err
		}
		locs, err := env.Dataset(dataset)
		if err != nil {
			return err
		}
		for _, beta := range betas {
			s := Series{Name: fmt.Sprintf("%s beta=%.2f", dataset, beta)}
			for _, eps := range Epsilons {
				cfg := defense.DefaultDPReleaseConfig()
				cfg.Eps = eps
				cfg.Beta = beta
				mech, err := defense.NewDPRelease(svc, pop, cfg)
				if err != nil {
					return err
				}
				rel := func(src *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
					return mech.Release(src, l, r)
				}
				v, err := metric(svc, locs, rel, r)
				if err != nil {
					return err
				}
				s.X = append(s.X, eps)
				s.Y = append(s.Y, v)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return nil
}
