// Package experiments contains one driver per table and figure of the
// paper's evaluation (Figs. 2-12 plus the Section II-E dataset table).
// Each driver regenerates the same rows/series the paper reports, against
// the synthetic substrates documented in DESIGN.md.
//
// Drivers run against an Env, which lazily builds and caches the cities,
// services, user populations, mobility datasets, and trained attack
// models. Two scales are provided: ScaleQuick for tests and benchmarks,
// and ScaleFull matching the paper's dataset sizes and 1,000-location
// evaluation samples.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"poiagg/internal/attack"
	"poiagg/internal/citygen"
	"poiagg/internal/cloak"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/trajgen"
)

// Scale selects experiment sizes.
type Scale int

// Scales.
const (
	// ScaleQuick shrinks cities, samples, and training sets so the whole
	// figure suite runs in seconds — for tests and benchmarks.
	ScaleQuick Scale = iota + 1
	// ScaleFull matches the paper: full-size cities, 1,000 evaluation
	// locations per dataset.
	ScaleFull
)

// Config parameterizes an experiment environment.
type Config struct {
	// Seed drives every generator and sampler in the environment.
	Seed uint64
	// Scale selects ScaleQuick or ScaleFull sizes.
	Scale Scale
	// Locations overrides the evaluation sample size per dataset
	// (default: 120 quick, 1000 full).
	Locations int
	// Cities overrides named city substrates ("beijing", "nyc") with
	// externally supplied snapshots — e.g. fetched from a remote GSP via
	// wire.FetchCity — instead of generating them locally.
	Cities map[string]*citygen.City
}

// Dataset names accepted by Env.Dataset, matching the paper's four
// evaluation workloads.
const (
	DatasetBJTaxi     = "bj-taxi"
	DatasetBJRandom   = "bj-random"
	DatasetNYCCheckin = "nyc-checkin"
	DatasetNYCRandom  = "nyc-random"
)

// Radii are the paper's query ranges in meters.
var Radii = []float64{500, 1000, 2000, 4000}

// Env lazily builds and caches every substrate an experiment needs. All
// accessors are safe for concurrent use.
type Env struct {
	cfg Config

	mu         sync.Mutex
	cities     map[string]*citygen.City
	svcs       map[string]*gsp.Service
	pops       map[string]*cloak.Population
	datasets   map[string][]geo.Point
	taxiTrajs  []trajgen.Trajectory
	recoverers map[string]*attack.Recoverer
	estimators map[string]*attack.DistanceEstimator
}

// NewEnv returns an environment for cfg.
func NewEnv(cfg Config) *Env {
	if cfg.Scale == 0 {
		cfg.Scale = ScaleQuick
	}
	if cfg.Locations == 0 {
		if cfg.Scale == ScaleFull {
			cfg.Locations = 1000
		} else {
			cfg.Locations = 120
		}
	}
	return &Env{
		cfg:        cfg,
		cities:     make(map[string]*citygen.City),
		svcs:       make(map[string]*gsp.Service),
		pops:       make(map[string]*cloak.Population),
		datasets:   make(map[string][]geo.Point),
		recoverers: make(map[string]*attack.Recoverer),
		estimators: make(map[string]*attack.DistanceEstimator),
	}
}

// Config returns the environment configuration.
func (e *Env) Config() Config { return e.cfg }

// cityParams returns generator parameters for "beijing" or "nyc" at the
// configured scale.
func (e *Env) cityParams(name string) (citygen.Params, error) {
	var p citygen.Params
	switch name {
	case "beijing":
		p = citygen.Beijing(e.cfg.Seed)
	case "nyc":
		p = citygen.NewYork(e.cfg.Seed + 1)
	default:
		return p, fmt.Errorf("experiments: unknown city %q", name)
	}
	if e.cfg.Scale == ScaleQuick {
		p.NumPOIs /= 4
		p.NumTypes /= 2
		p.Width *= 0.6
		p.Height *= 0.6
		p.NumDistricts /= 2
	}
	return p, nil
}

// City returns the synthetic city by name ("beijing" or "nyc").
func (e *Env) City(name string) (*citygen.City, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cityLocked(name)
}

func (e *Env) cityLocked(name string) (*citygen.City, error) {
	if c, ok := e.cities[name]; ok {
		return c, nil
	}
	if c, ok := e.cfg.Cities[name]; ok && c != nil {
		e.cities[name] = c
		return c, nil
	}
	p, err := e.cityParams(name)
	if err != nil {
		return nil, err
	}
	c, err := citygen.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate %s: %w", name, err)
	}
	e.cities[name] = c
	return c, nil
}

// Service returns the GSP service for a city.
func (e *Env) Service(name string) (*gsp.Service, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.serviceLocked(name)
}

func (e *Env) serviceLocked(name string) (*gsp.Service, error) {
	if s, ok := e.svcs[name]; ok {
		return s, nil
	}
	c, err := e.cityLocked(name)
	if err != nil {
		return nil, err
	}
	s := gsp.NewService(c.City, 1<<18)
	e.svcs[name] = s
	return s, nil
}

// Population returns the synthetic 10,000-user population for a city.
func (e *Env) Population(name string) (*cloak.Population, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.pops[name]; ok {
		return p, nil
	}
	c, err := e.cityLocked(name)
	if err != nil {
		return nil, err
	}
	p := cloak.UniformPopulation(c.Bounds, 10_000, e.cfg.Seed+7)
	e.pops[name] = p
	return p, nil
}

// TaxiTrajectories returns the Beijing taxi traces.
func (e *Env) TaxiTrajectories() ([]trajgen.Trajectory, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.taxiTrajectoriesLocked()
}

func (e *Env) taxiTrajectoriesLocked() ([]trajgen.Trajectory, error) {
	if e.taxiTrajs != nil {
		return e.taxiTrajs, nil
	}
	c, err := e.cityLocked("beijing")
	if err != nil {
		return nil, err
	}
	p := trajgen.DefaultTaxiParams(e.cfg.Seed + 11)
	if e.cfg.Scale == ScaleQuick {
		p.NumTaxis = 60
		p.PointsPerTaxi = 40
	}
	trajs, err := trajgen.Taxis(c.City, p)
	if err != nil {
		return nil, fmt.Errorf("experiments: taxi traces: %w", err)
	}
	e.taxiTrajs = trajs
	return trajs, nil
}

// Dataset returns the evaluation locations of one of the four named
// workloads.
func (e *Env) Dataset(name string) ([]geo.Point, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.datasets[name]; ok {
		return d, nil
	}
	n := e.cfg.Locations
	var locs []geo.Point
	switch name {
	case DatasetBJTaxi:
		trajs, err := e.taxiTrajectoriesLocked()
		if err != nil {
			return nil, err
		}
		locs = trajgen.SampleLocations(trajs, n, e.cfg.Seed+13)
	case DatasetBJRandom:
		c, err := e.cityLocked("beijing")
		if err != nil {
			return nil, err
		}
		locs = c.RandomLocations(n, e.cfg.Seed+17)
	case DatasetNYCCheckin:
		c, err := e.cityLocked("nyc")
		if err != nil {
			return nil, err
		}
		p := trajgen.DefaultCheckinParams(e.cfg.Seed + 19)
		if e.cfg.Scale == ScaleQuick {
			p.NumUsers = 60
			p.CheckinsPerUser = 30
		}
		trajs, err := trajgen.Checkins(c.City, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: check-ins: %w", err)
		}
		locs = trajgen.SampleLocations(trajs, n, e.cfg.Seed+23)
	case DatasetNYCRandom:
		c, err := e.cityLocked("nyc")
		if err != nil {
			return nil, err
		}
		locs = c.RandomLocations(n, e.cfg.Seed+29)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	e.datasets[name] = locs
	return locs, nil
}

// datasetCity maps a dataset name to its city name.
func datasetCity(dataset string) (string, error) {
	switch dataset {
	case DatasetBJTaxi, DatasetBJRandom:
		return "beijing", nil
	case DatasetNYCCheckin, DatasetNYCRandom:
		return "nyc", nil
	default:
		return "", fmt.Errorf("experiments: unknown dataset %q", dataset)
	}
}

// Recoverer returns (training on first use) the sanitization-recovery
// model for a city and query range.
func (e *Env) Recoverer(cityName string, r float64) (*attack.Recoverer, error) {
	key := fmt.Sprintf("%s/%.0f", cityName, r)
	e.mu.Lock()
	defer e.mu.Unlock()
	if rec, ok := e.recoverers[key]; ok {
		return rec, nil
	}
	svc, err := e.serviceLocked(cityName)
	if err != nil {
		return nil, err
	}
	city, err := e.cityLocked(cityName)
	if err != nil {
		return nil, err
	}
	san := sanitizedTypes(city, 10)
	if len(san) == 0 {
		return nil, fmt.Errorf("experiments: city %s has no sanitizable types", cityName)
	}
	cfg := attack.DefaultRecoveryConfig(e.cfg.Seed + 31)
	if e.cfg.Scale == ScaleQuick {
		cfg.TrainSamples = 400
		cfg.ValSamples = 100
		cfg.SVM.Epochs = 30
	}
	rec, err := attack.TrainRecoverer(svc, san, r, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: train recoverer %s: %w", key, err)
	}
	e.recoverers[key] = rec
	return rec, nil
}

// DistanceEstimator returns (training on first use) the trajectory-attack
// distance regressor for the Beijing taxi workload at query range r.
func (e *Env) DistanceEstimator(r float64) (*attack.DistanceEstimator, error) {
	key := fmt.Sprintf("%.0f", r)
	e.mu.Lock()
	defer e.mu.Unlock()
	if est, ok := e.estimators[key]; ok {
		return est, nil
	}
	svc, err := e.serviceLocked("beijing")
	if err != nil {
		return nil, err
	}
	trajs, err := e.taxiTrajectoriesLocked()
	if err != nil {
		return nil, err
	}
	segs := trajgen.Segments(trajs, 10*time.Minute, 100)
	// Cap training size to keep the Gram matrix manageable.
	maxTrain := 800
	if e.cfg.Scale == ScaleFull {
		maxTrain = 2000
	}
	if len(segs) > maxTrain {
		segs = segs[:maxTrain]
	}
	est, err := attack.TrainDistanceEstimator(svc, segs, r, attack.DefaultTrajectoryConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: train distance estimator: %w", err)
	}
	e.estimators[key] = est
	return est, nil
}
