package experiments

import (
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	envInst *Env
)

// sharedEnv reuses one quick-scale environment for every driver test;
// models and datasets are trained/generated once.
func sharedEnv() *Env {
	envOnce.Do(func() {
		envInst = NewEnv(Config{Seed: 5, Scale: ScaleQuick, Locations: 60})
	})
	return envInst
}

func checkFigure(t *testing.T, fig *Figure, wantSeries int) {
	t.Helper()
	if fig.ID == "" || fig.Title == "" {
		t.Error("figure missing ID or title")
	}
	if len(fig.Series) < wantSeries {
		t.Fatalf("figure %s has %d series, want ≥ %d", fig.ID, len(fig.Series), wantSeries)
	}
	for _, s := range fig.Series {
		if len(s.X) != len(s.Y) {
			t.Fatalf("series %q has %d X vs %d Y", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
	}
	if out := fig.String(); !strings.Contains(out, fig.ID) {
		t.Error("String does not mention figure ID")
	}
}

func rateInRange(t *testing.T, fig *Figure) {
	t.Helper()
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0 || y > 1 {
				t.Errorf("%s series %q point %d = %v outside [0,1]", fig.ID, s.Name, i, y)
			}
		}
	}
}

func TestDatasetTable(t *testing.T) {
	fig, err := DatasetTable(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 3)
}

func TestFig2(t *testing.T) {
	fig, err := Fig2(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	rateInRange(t, fig)
	// Recovery models must be strong (paper: >0.95; quick scale: >0.85).
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0.85 {
				t.Errorf("%s accuracy at r=%.1f is %v", s.Name, s.X[i], y)
			}
		}
	}
}

func TestFig3(t *testing.T) {
	fig, err := Fig3(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 6)
	rateInRange(t, fig)
	// Shape: sanitized ≤ w/o protection, recovered ≥ sanitized (summed
	// over the r sweep).
	series := make(map[string]Series)
	for _, s := range fig.Series {
		series[s.Name] = s
	}
	for _, cityName := range []string{"beijing", "nyc"} {
		sum := func(name string) float64 {
			total := 0.0
			for _, y := range series[cityName+":"+name].Y {
				total += y
			}
			return total
		}
		plain, san, rec := sum("w/o protection"), sum("sanitized"), sum("recovered")
		if san >= plain {
			t.Errorf("%s: sanitization did not reduce success (%.2f vs %.2f)", cityName, san, plain)
		}
		if rec <= san {
			t.Errorf("%s: recovery did not restore success (%.2f vs %.2f)", cityName, rec, san)
		}
	}
}

func TestFig4(t *testing.T) {
	fig, err := Fig4(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 12)
	rateInRange(t, fig)
	// Shape: for every dataset, eps=0.1 protects at least as well as
	// eps=1.0 overall.
	series := make(map[string]Series)
	for _, s := range fig.Series {
		series[s.Name] = s
	}
	for _, ds := range allDatasets {
		sum := func(name string) float64 {
			total := 0.0
			for _, y := range series[ds+":"+name].Y {
				total += y
			}
			return total
		}
		if sum("eps=0.1") > sum("eps=1.0")+0.10*4 {
			t.Errorf("%s: eps=0.1 (%v) should not exceed eps=1.0 (%v)", ds, sum("eps=0.1"), sum("eps=1.0"))
		}
		if sum("eps=1.0") > sum("w/o protection")+0.10*4 {
			t.Errorf("%s: protected above plain", ds)
		}
	}
}

func TestFig5(t *testing.T) {
	fig, err := Fig5(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 16)
	rateInRange(t, fig)
	// Shape: success at k=50 must not exceed success at k=2 per series.
	for _, s := range fig.Series {
		if s.Y[len(s.Y)-1] > s.Y[0]+0.10 {
			t.Errorf("series %q: success grew with k (%v -> %v)", s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestFig6(t *testing.T) {
	fig, err := Fig6(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 8)
	rateInRange(t, fig)
	for _, s := range fig.Series {
		// CDFs are monotone and end at 1 (every area ≤ πr²).
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Errorf("series %q CDF not monotone", s.Name)
			}
		}
		if s.Y[len(s.Y)-1] < 1-1e-9 {
			t.Errorf("series %q CDF does not reach 1 at πr²: %v", s.Name, s.Y[len(s.Y)-1])
		}
	}
}

func TestFig7(t *testing.T) {
	fig, err := Fig7(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 4)
	for _, s := range fig.Series {
		if s.Y[len(s.Y)-1] > s.Y[0]+1e-9 {
			t.Errorf("series %q: area grew with more anchors (%v -> %v)", s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
		for i, y := range s.Y {
			if y < 0 || y > 3.15 { // πr² = 12.57 km²; we expect well below
				t.Errorf("series %q point %d = %v km² implausible", s.Name, i, y)
			}
		}
	}
}

func TestFig8(t *testing.T) {
	fig, err := Fig8(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	rateInRange(t, fig)
	var single, pair Series
	for _, s := range fig.Series {
		if s.Name == "single release" {
			single = s
		} else {
			pair = s
		}
	}
	sumS, sumP := 0.0, 0.0
	for i := range single.Y {
		sumS += single.Y[i]
		sumP += pair.Y[i]
	}
	if sumP < sumS {
		t.Errorf("two-release attack (%v) below single (%v)", sumP, sumS)
	}
}

func TestFig9And10(t *testing.T) {
	env := sharedEnv()
	fig9, err := Fig9(env)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig9, 8)
	rateInRange(t, fig9)
	for _, s := range fig9.Series {
		if s.Y[len(s.Y)-1] > s.Y[0]+0.10 {
			t.Errorf("fig9 series %q: success grew with beta", s.Name)
		}
	}
	fig10, err := Fig10(env)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig10, 8)
	rateInRange(t, fig10)
	for _, s := range fig10.Series {
		for i, y := range s.Y {
			if y < 0.3 {
				t.Errorf("fig10 series %q point %d: Jaccard %v collapsed", s.Name, i, y)
			}
		}
	}
}

func TestFig11And12(t *testing.T) {
	env := sharedEnv()
	fig11, err := Fig11(env)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig11, 10)
	rateInRange(t, fig11)
	fig12, err := Fig12(env)
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig12, 10)
	rateInRange(t, fig12)
	// Utility must improve with ε for every series.
	for _, s := range fig12.Series {
		if s.Y[len(s.Y)-1] < s.Y[0]-0.05 {
			t.Errorf("fig12 series %q: utility fell with eps (%v -> %v)", s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	ids := OrderedIDs()
	if len(reg) != len(ids) {
		t.Errorf("registry has %d entries, ordered list %d", len(reg), len(ids))
	}
	for _, id := range ids {
		if reg[id] == nil {
			t.Errorf("missing driver %q", id)
		}
	}
}

func TestEnvUnknownNames(t *testing.T) {
	env := NewEnv(Config{Seed: 1})
	if _, err := env.City("atlantis"); err == nil {
		t.Error("unknown city accepted")
	}
	if _, err := env.Dataset("nowhere"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := env.Service("atlantis"); err == nil {
		t.Error("unknown service accepted")
	}
}

func TestEnvDefaults(t *testing.T) {
	env := NewEnv(Config{})
	cfg := env.Config()
	if cfg.Scale != ScaleQuick || cfg.Locations != 120 {
		t.Errorf("defaults = %+v", cfg)
	}
	full := NewEnv(Config{Scale: ScaleFull})
	if full.Config().Locations != 1000 {
		t.Errorf("full locations = %d", full.Config().Locations)
	}
}

func TestFigSeq(t *testing.T) {
	fig, err := FigSeq(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	rateInRange(t, fig)
	var single, seq Series
	for _, s := range fig.Series {
		if s.Name == "single release" {
			single = s
		} else {
			seq = s
		}
	}
	for i := range single.Y {
		if seq.Y[i] < single.Y[i]-1e-9 {
			t.Errorf("run length %v: sequence %v below single %v",
				single.X[i], seq.Y[i], single.Y[i])
		}
	}
}

func TestFigBudget(t *testing.T) {
	fig, err := FigBudget(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 2)
	rateInRange(t, fig)
	var unlimited, enforced Series
	for _, s := range fig.Series {
		if s.Name == "no budget" {
			unlimited = s
		} else {
			enforced = s
		}
	}
	last := len(enforced.Y) - 1
	for i := range unlimited.Y {
		// The baseline ignores the budget axis, so it must be flat.
		if unlimited.Y[i] != unlimited.Y[0] {
			t.Errorf("baseline not flat: %v", unlimited.Y)
		}
		// Enforcement can only remove releases from the adversary's view.
		if enforced.Y[i] > unlimited.Y[i]+1e-9 {
			t.Errorf("k=%v: enforced %v exceeds unthrottled %v",
				enforced.X[i], enforced.Y[i], unlimited.Y[i])
		}
	}
	// A window covering the whole run makes enforcement a no-op: the
	// adversary sees exactly the baseline runs.
	if enforced.X[last] != 6 || enforced.Y[last] != unlimited.Y[last] {
		t.Errorf("k=6 should match the unthrottled attack: %v vs %v",
			enforced.Y[last], unlimited.Y[last])
	}
	// The tightest budget must not leak more than the loosest.
	if enforced.Y[0] > enforced.Y[last]+1e-9 {
		t.Errorf("k=1 leaks %v > k=6 %v", enforced.Y[0], enforced.Y[last])
	}
	t.Logf("budget enforcement result:\n%s", fig.String())
}

func TestFigureCSV(t *testing.T) {
	fig := &Figure{
		ID: "t",
		Series: []Series{
			{Name: "a,b", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
		},
	}
	out := fig.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "figure,series,x,y" {
		t.Errorf("header = %q", lines[0])
	}
	// The comma in the series name must be quoted.
	if !strings.Contains(lines[1], `"a,b"`) {
		t.Errorf("series name not CSV-escaped: %q", lines[1])
	}
}

func TestFigRobust(t *testing.T) {
	fig, err := FigRobust(sharedEnv())
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, 6)
	rateInRange(t, fig)
	series := make(map[string]Series)
	for _, s := range fig.Series {
		series[s.Name] = s
	}
	for _, ds := range defenseDatasets {
		sum := func(name string) float64 {
			total := 0.0
			for _, y := range series[ds+":"+name].Y {
				total += y
			}
			return total
		}
		if sum("defense") >= sum("w/o protection") {
			t.Errorf("%s: defense did not reduce success", ds)
		}
		// The interesting measurement: whether recovery beats the bare
		// defense. Either outcome is valid; it just must stay bounded by
		// the unprotected rate (plus sampling noise).
		if sum("defense+recovery") > sum("w/o protection")+0.5 {
			t.Errorf("%s: recovery exceeds unprotected by too much", ds)
		}
	}
	t.Logf("robustness result:\n%s", fig.String())
}

func TestFigureStringSparseSeries(t *testing.T) {
	fig := &Figure{
		ID:     "sparse",
		Title:  "sparse series",
		XLabel: "x",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.1, 0.2}},
			{Name: "b", X: []float64{2, 3}, Y: []float64{0.5, 0.6}},
		},
		Notes: []string{"a note"},
	}
	out := fig.String()
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder for absent point:\n%s", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Errorf("missing note:\n%s", out)
	}
	empty := &Figure{ID: "e", Title: "empty"}
	if !strings.Contains(empty.String(), "(no data)") {
		t.Error("empty figure should say so")
	}
}

func TestEnvDatasetDeterministicAndCached(t *testing.T) {
	env := sharedEnv()
	a, err := env.Dataset(DatasetBJRandom)
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Dataset(DatasetBJRandom)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("dataset not cached")
	}
	if len(a) != env.Config().Locations {
		t.Errorf("dataset size %d", len(a))
	}
}

func TestEnvRecovererCached(t *testing.T) {
	env := sharedEnv()
	r1, err := env.Recoverer("beijing", 500)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := env.Recoverer("beijing", 500)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("recoverer not cached")
	}
}
