package experiments

import (
	"fmt"
	"time"

	"poiagg/internal/attack"
	"poiagg/internal/budget"
	"poiagg/internal/defense"
	"poiagg/internal/poi"
	"poiagg/internal/trajgen"
)

// FigSeq is an extension beyond the paper: it sweeps the *length* of a
// release run and reports the per-release success rate of the
// multi-release sequence attack (TrajectorySequence) against the
// single-release baseline. The paper evaluates only pairs (Fig. 8); this
// figure shows how much more long sessions leak.
func FigSeq(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "ext-seq",
		Title:  "EXTENSION — multi-release sequence attack vs run length (Beijing taxi, r = 1 km)",
		XLabel: "releases per run",
		YLabel: "success rate",
	}
	const r = 1000.0
	svc, err := env.Service("beijing")
	if err != nil {
		return nil, err
	}
	est, err := env.DistanceEstimator(r)
	if err != nil {
		return nil, err
	}
	trajs, err := env.TaxiTrajectories()
	if err != nil {
		return nil, err
	}
	cfg := attack.DefaultTrajectoryConfig()
	single := Series{Name: "single release"}
	seq := Series{Name: "sequence attack"}
	maxRuns := env.Config().Locations / 2
	if maxRuns < 10 {
		maxRuns = 10
	}
	for _, runLen := range []int{2, 3, 4, 6} {
		var nSingle, nSeq, total, runs int
		for _, tr := range trajs {
			if runs >= maxRuns {
				break
			}
			rels := extractRun(svc, tr, r, runLen)
			if len(rels) < runLen {
				continue
			}
			runs++
			total += runLen
			for _, rel := range rels {
				if attack.Region(svc, rel.F, r).Success {
					nSingle++
				}
			}
			nSeq += attack.TrajectorySequence(svc, est, rels, cfg).SuccessCount()
		}
		if total == 0 {
			return nil, fmt.Errorf("experiments: FigSeq: no runs of length %d", runLen)
		}
		x := float64(runLen)
		single.X = append(single.X, x)
		single.Y = append(single.Y, float64(nSingle)/float64(total))
		seq.X = append(seq.X, x)
		seq.Y = append(seq.Y, float64(nSeq)/float64(total))
	}
	fig.Series = []Series{single, seq}
	fig.Notes = append(fig.Notes,
		"not in the paper: generalizes Fig. 8 from pairs to full sessions via arc-consistent distance filtering")
	return fig, nil
}

// FigBudget is an extension beyond the paper: it measures how much of a
// release session's trajectory leakage the server-side privacy-budget
// ledger (internal/budget) removes. Runs of 6 releases (r = 1 km) are
// charged against a real Ledger at ε = 0.5 per release under window
// budgets allowing k ∈ {1, 2, 3, 4, 6} releases; only the granted prefix
// reaches the adversary, who mounts the sequence attack on what escaped.
// The baseline is the same attack on the full, unthrottled runs.
func FigBudget(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "ext-budget",
		Title:  "EXTENSION — sequence attack vs budget-enforced releases (Beijing taxi, r = 1 km, runs of 6)",
		XLabel: "releases/window",
		YLabel: "identified / run length",
	}
	const (
		r      = 1000.0
		runLen = 6
		relEps = 0.5
	)
	svc, err := env.Service("beijing")
	if err != nil {
		return nil, err
	}
	est, err := env.DistanceEstimator(r)
	if err != nil {
		return nil, err
	}
	trajs, err := env.TaxiTrajectories()
	if err != nil {
		return nil, err
	}
	cfg := attack.DefaultTrajectoryConfig()
	maxRuns := env.Config().Locations / 2
	if maxRuns < 10 {
		maxRuns = 10
	}
	var runs [][]attack.Release
	for _, tr := range trajs {
		if len(runs) >= maxRuns {
			break
		}
		if rels := extractRun(svc, tr, r, runLen); len(rels) == runLen {
			runs = append(runs, rels)
		}
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("experiments: FigBudget: no runs of length %d", runLen)
	}
	total := float64(len(runs) * runLen)
	var nFull int
	for _, rels := range runs {
		nFull += attack.TrajectorySequence(svc, est, rels, cfg).SuccessCount()
	}

	unlimited := Series{Name: "no budget"}
	enforced := Series{Name: "budget-enforced"}
	for _, k := range []int{1, 2, 3, 4, 6} {
		// A run spans well under an hour, so a 24 h window grants exactly
		// the first k releases of each run. The clock follows the release
		// timestamps, so the ledger sees the trajectory's real cadence.
		var now time.Time
		led, err := budget.New(budget.Policy{
			LifetimeEps: 1e6,
			Window:      24 * time.Hour,
			WindowEps:   relEps * float64(k),
		}, budget.WithClock(func() time.Time { return now }))
		if err != nil {
			return nil, err
		}
		var nSeq int
		for i, rels := range runs {
			principal := fmt.Sprintf("run-%d", i)
			var escaped []attack.Release
			for _, rel := range rels {
				now = rel.T
				dec, err := led.Spend(principal, relEps, 0)
				if err != nil {
					return nil, err
				}
				if dec.Allowed {
					escaped = append(escaped, rel)
				}
			}
			nSeq += attack.TrajectorySequence(svc, est, escaped, cfg).SuccessCount()
		}
		x := float64(k)
		unlimited.X = append(unlimited.X, x)
		unlimited.Y = append(unlimited.Y, float64(nFull)/total)
		enforced.X = append(enforced.X, x)
		enforced.Y = append(enforced.Y, float64(nSeq)/total)
	}
	fig.Series = []Series{unlimited, enforced}
	fig.Notes = append(fig.Notes,
		"not in the paper: end-to-end effect of server-side budget enforcement on the Fig. 8 threat",
		"reproduce live: lbsd -budget -budget-window-eps <0.5k>, then attackdemo -lbs <url>")
	return fig, nil
}

// extractRun pulls the first usable run of releases (changed vector,
// gap ≤ 10 min) of the requested length from a trajectory.
func extractRun(svc svcT, tr trajgen.Trajectory, r float64, runLen int) []attack.Release {
	var out []attack.Release
	for _, pt := range tr.Points {
		f := svc.Freq(pt.Pos, r)
		if len(out) > 0 {
			prev := out[len(out)-1]
			gap := pt.T.Sub(prev.T)
			if gap <= 0 || gap > 10*time.Minute || f.Equal(prev.F) {
				if gap > 10*time.Minute {
					out = out[:0] // session break: restart the run
				}
				continue
			}
		}
		out = append(out, attack.Release{F: f, T: pt.T, R: r})
		if len(out) == runLen {
			return out
		}
	}
	return out
}

// FigRobust is an extension beyond the paper: it applies the paper's own
// sanitization-breaking methodology (the learning recovery of Section
// III-A) to the paper's proposed Eq. 7 optimization defense. The defense
// and the Freq oracle are both public, so the adversary can simulate the
// defended release on arbitrary locations and train a recovery model
// against it. The figure reports the region-attack success rate without
// protection, under the defense, and under defense + learning recovery,
// for the β sweep at r = 2 km.
func FigRobust(env *Env) (*Figure, error) {
	fig := &Figure{
		ID:     "ext-robust",
		Title:  "EXTENSION — learning attack against the Eq. 7 defense (r = 2 km)",
		XLabel: "beta",
		YLabel: "success rate",
	}
	const r = 2000.0
	for _, dataset := range defenseDatasets {
		cityName, err := datasetCity(dataset)
		if err != nil {
			return nil, err
		}
		svc, err := env.Service(cityName)
		if err != nil {
			return nil, err
		}
		city, err := env.City(cityName)
		if err != nil {
			return nil, err
		}
		opt, err := defense.NewOptRelease(city.City)
		if err != nil {
			return nil, err
		}
		locs, err := env.Dataset(dataset)
		if err != nil {
			return nil, err
		}
		// The recovery targets are the infrequent types the optimization
		// preferentially erases.
		targets := sanitizedTypes(city, 10)

		plain := Series{Name: dataset + ":w/o protection"}
		defended := Series{Name: dataset + ":defense"}
		recovered := Series{Name: dataset + ":defense+recovery"}
		var nPlain int
		for _, l := range locs {
			if attack.Region(svc, svc.Freq(l, r), r).Covers(l, r) {
				nPlain++
			}
		}
		for _, beta := range Betas {
			transform := func(f poi.FreqVector) (poi.FreqVector, error) {
				return opt.Solve(f, beta)
			}
			cfg := attack.DefaultRecoveryConfig(env.Config().Seed + 67)
			if env.Config().Scale == ScaleQuick {
				cfg.TrainSamples = 400
				cfg.ValSamples = 100
				cfg.SVM.Epochs = 30
			}
			rec, err := attack.TrainTransformRecoverer(svc, transform, targets, r, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: FigRobust: %w", err)
			}
			var nDef, nRec int
			for _, l := range locs {
				f := svc.Freq(l, r)
				d, err := transform(f)
				if err != nil {
					return nil, err
				}
				if attack.Region(svc, d, r).Covers(l, r) {
					nDef++
				}
				if attack.Region(svc, rec.Recover(d), r).Covers(l, r) {
					nRec++
				}
			}
			n := float64(len(locs))
			plain.X = append(plain.X, beta)
			plain.Y = append(plain.Y, float64(nPlain)/n)
			defended.X = append(defended.X, beta)
			defended.Y = append(defended.Y, float64(nDef)/n)
			recovered.X = append(recovered.X, beta)
			recovered.Y = append(recovered.Y, float64(nRec)/n)
		}
		fig.Series = append(fig.Series, plain, defended, recovered)
	}
	fig.Notes = append(fig.Notes,
		"not in the paper: robustness check of the proposed defense against its own recovery methodology",
		"success may exceed the bare defense if the learner reconstructs erased rare types")
	return fig, nil
}
