package experiments

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"poiagg/internal/citygen"
	"poiagg/internal/poi"
)

// Series is one labelled line of a figure: paired X/Y samples.
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Figure is the reproduction of one paper figure or table: a set of
// series plus labelling, printable as an aligned text table.
type Figure struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	XLabel string   `json:"xLabel"`
	YLabel string   `json:"yLabel"`
	Series []Series `json:"series"`
	Notes  []string `json:"notes,omitempty"`
}

// String renders the figure as a text table: one row per X value, one
// column per series.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-22s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-14.4g", x)
		for _, s := range f.Series {
			v, ok := seriesAt(s, x)
			if ok {
				fmt.Fprintf(&b, "  %-22.4f", v)
			} else {
				fmt.Fprintf(&b, "  %-22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure in long format — one row per (series, point) —
// ready for any plotting tool:
//
//	figure,series,x,y
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,series,x,y\n")
	w := csv.NewWriter(&b)
	for _, s := range f.Series {
		for i := range s.X {
			_ = w.Write([]string{
				f.ID,
				s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			})
		}
	}
	w.Flush()
	return b.String()
}

func seriesAt(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// sanitizedTypes returns the types whose city-wide frequency is at or
// below threshold — the paper's sanitization target set.
func sanitizedTypes(city *citygen.City, threshold int) []poi.TypeID {
	var out []poi.TypeID
	for i, n := range city.CityFreq() {
		if n <= threshold {
			out = append(out, poi.TypeID(i))
		}
	}
	return out
}

// Driver is a figure-regeneration function.
type Driver func(*Env) (*Figure, error)

// Registry maps figure IDs (as used by cmd/poirepro -fig) to drivers.
func Registry() map[string]Driver {
	return map[string]Driver{
		"datasets":   DatasetTable,
		"2":          Fig2,
		"3":          Fig3,
		"4":          Fig4,
		"5":          Fig5,
		"6":          Fig6,
		"7":          Fig7,
		"8":          Fig8,
		"9":          Fig9,
		"10":         Fig10,
		"11":         Fig11,
		"12":         Fig12,
		"ext-seq":    FigSeq,
		"ext-robust": FigRobust,
		"ext-budget": FigBudget,
	}
}

// OrderedIDs returns the registry keys in presentation order: the
// paper's figures first, extensions last.
func OrderedIDs() []string {
	return []string{"datasets", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "ext-seq", "ext-robust", "ext-budget"}
}
