package geo

import (
	"fmt"
	"math"
	"sort"
)

// Circle is a disk boundary: center C and radius R in meters.
type Circle struct {
	C Point   `json:"c"`
	R float64 `json:"r"`
}

// String implements fmt.Stringer.
func (c Circle) String() string {
	return fmt.Sprintf("circle(%s, r=%.1f)", c.C, c.R)
}

// Area returns the area of the disk bounded by c.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// Contains reports whether p lies in the closed disk bounded by c.
func (c Circle) Contains(p Point) bool {
	return Dist2(c.C, p) <= c.R*c.R
}

// containsTol reports membership with an absolute distance tolerance,
// used to make the arc-polygon area computation robust for points that lie
// exactly on circle boundaries.
func (c Circle) containsTol(p Point, tol float64) bool {
	return Dist(c.C, p) <= c.R+tol
}

// ContainsCircle reports whether the disk bounded by d lies entirely inside
// the closed disk bounded by c.
func (c Circle) ContainsCircle(d Circle) bool {
	return Dist(c.C, d.C)+d.R <= c.R+1e-9
}

// IntersectCircle returns the 0, 1, or 2 intersection points of the two
// circle boundaries. Coincident circles report no intersection points.
func (c Circle) IntersectCircle(d Circle) []Point {
	dx, dy := d.C.X-c.C.X, d.C.Y-c.C.Y
	dist := math.Hypot(dx, dy)
	if dist == 0 {
		return nil // concentric (or coincident): no discrete points
	}
	if dist > c.R+d.R || dist < math.Abs(c.R-d.R) {
		return nil // separate or one strictly inside the other
	}
	// a = distance from c.C to the chord midpoint along the center line.
	a := (c.R*c.R - d.R*d.R + dist*dist) / (2 * dist)
	h2 := c.R*c.R - a*a
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	mx := c.C.X + a*dx/dist
	my := c.C.Y + a*dy/dist
	if h == 0 {
		return []Point{{mx, my}} // tangent
	}
	ox, oy := h*dy/dist, h*dx/dist
	return []Point{
		{mx + ox, my - oy},
		{mx - ox, my + oy},
	}
}

// LensArea returns the area of the intersection of the two disks bounded
// by c and d.
func LensArea(c, d Circle) float64 {
	dist := Dist(c.C, d.C)
	if dist >= c.R+d.R {
		return 0
	}
	if dist+d.R <= c.R {
		return d.Area()
	}
	if dist+c.R <= d.R {
		return c.Area()
	}
	// Two circular segments, one from each disk.
	d1 := (c.R*c.R - d.R*d.R + dist*dist) / (2 * dist)
	d2 := dist - d1
	seg := func(r, a float64) float64 {
		// Area of the circular segment of radius r cut by a chord at
		// signed distance a from the center (a may be negative when the
		// chord is past the center).
		x := clamp(a/r, -1, 1)
		return r*r*math.Acos(x) - a*math.Sqrt(math.Max(0, r*r-a*a))
	}
	return seg(c.R, d1) + seg(d.R, d2)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// DisksIntersectionArea returns the exact area of the intersection of the
// closed disks bounded by the given circles.
//
// The intersection of disks is convex. Its boundary decomposes into arcs:
// for each circle, the vertices on it (pairwise circle intersection points
// lying inside all other disks) split the circle into arcs, and an arc is
// on the region boundary exactly when its midpoint lies inside all other
// disks. The total area is the sum of the Green's-theorem line integrals
// of the boundary arcs, each traversed counterclockwise (the region lies
// inside every disk, so CCW traversal of each circle keeps the region on
// the left).
//
// The function returns 0 for an empty input.
func DisksIntersectionArea(circles []Circle) float64 {
	switch len(circles) {
	case 0:
		return 0
	case 1:
		return circles[0].Area()
	case 2:
		return LensArea(circles[0], circles[1])
	}

	circles = dropRedundantDisks(circles)
	if len(circles) == 1 {
		return circles[0].Area()
	}
	if len(circles) == 2 {
		return LensArea(circles[0], circles[1])
	}

	maxR := 0.0
	for _, c := range circles {
		maxR = math.Max(maxR, c.R)
	}
	tol := 1e-9 * math.Max(1, maxR)

	// Collect boundary vertices: pairwise intersection points inside all
	// other disks.
	var verts []Point
	for i := 0; i < len(circles); i++ {
		for j := i + 1; j < len(circles); j++ {
			for _, p := range circles[i].IntersectCircle(circles[j]) {
				inAll := true
				for k, ck := range circles {
					if k == i || k == j {
						continue
					}
					if !ck.containsTol(p, tol) {
						inAll = false
						break
					}
				}
				if inAll {
					verts = append(verts, p)
				}
			}
		}
	}

	if len(verts) == 0 {
		// Either one disk lies inside all others (dropRedundantDisks
		// leaves mutually non-nested disks, so this only happens for
		// coincident inputs) or the intersection is empty.
		for i, ci := range circles {
			inside := true
			for j, cj := range circles {
				if i != j && !cj.ContainsCircle(ci) {
					inside = false
					break
				}
			}
			if inside {
				return ci.Area()
			}
		}
		return 0
	}

	// Per-circle arc decomposition.
	area := 0.0
	onCircleTol := 100 * tol
	for i, c := range circles {
		var angles []float64
		for _, v := range verts {
			if math.Abs(Dist(c.C, v)-c.R) <= onCircleTol {
				angles = append(angles, math.Atan2(v.Y-c.C.Y, v.X-c.C.X))
			}
		}
		if len(angles) == 0 {
			continue // circle does not touch the boundary
		}
		sort.Float64s(angles)
		for k := range angles {
			a := angles[k]
			b := angles[(k+1)%len(angles)]
			if k == len(angles)-1 {
				b += 2 * math.Pi
			}
			if b-a < 1e-12 {
				continue // duplicate vertex (tangency)
			}
			midAngle := (a + b) / 2
			m := Point{
				X: c.C.X + c.R*math.Cos(midAngle),
				Y: c.C.Y + c.R*math.Sin(midAngle),
			}
			onBoundary := true
			for j, cj := range circles {
				if j == i {
					continue
				}
				if !cj.containsTol(m, onCircleTol) {
					onBoundary = false
					break
				}
			}
			if onBoundary {
				area += arcGreenIntegral(c, a, b)
			}
		}
	}
	if area < 0 {
		area = 0
	}
	return area
}

// arcGreenIntegral returns the Green's-theorem contribution
// ∮ (x dy − y dx)/2 of the CCW arc of c from angle a to angle b (b ≥ a).
func arcGreenIntegral(c Circle, a, b float64) float64 {
	r := c.R
	return 0.5 * (r*r*(b-a) +
		c.C.X*r*(math.Sin(b)-math.Sin(a)) +
		c.C.Y*r*(math.Cos(a)-math.Cos(b)))
}

// dropRedundantDisks removes any disk that fully contains another disk in
// the set (the larger disk does not constrain the intersection).
func dropRedundantDisks(circles []Circle) []Circle {
	keep := make([]bool, len(circles))
	for i := range keep {
		keep[i] = true
	}
	for i := range circles {
		if !keep[i] {
			continue
		}
		for j := range circles {
			if i == j || !keep[j] {
				continue
			}
			if circles[i].ContainsCircle(circles[j]) {
				keep[i] = false
				break
			}
		}
	}
	out := make([]Circle, 0, len(circles))
	for i, c := range circles {
		if keep[i] {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		// All mutually coincident: keep one.
		out = append(out, circles[0])
	}
	return out
}

// MonteCarloIntersectionArea estimates the area of the intersection of the
// disks by uniform sampling over the bounding box of the smallest disk.
// rand01 must return uniform samples in [0,1). It exists as an independent
// cross-check for DisksIntersectionArea in tests and benchmarks.
func MonteCarloIntersectionArea(circles []Circle, samples int, rand01 func() float64) float64 {
	if len(circles) == 0 || samples <= 0 {
		return 0
	}
	smallest := circles[0]
	for _, c := range circles[1:] {
		if c.R < smallest.R {
			smallest = c
		}
	}
	box := Rect{
		MinX: smallest.C.X - smallest.R, MinY: smallest.C.Y - smallest.R,
		MaxX: smallest.C.X + smallest.R, MaxY: smallest.C.Y + smallest.R,
	}
	hits := 0
	for i := 0; i < samples; i++ {
		p := Point{
			X: box.MinX + rand01()*box.Width(),
			Y: box.MinY + rand01()*box.Height(),
		}
		inside := true
		for _, c := range circles {
			if !c.Contains(p) {
				inside = false
				break
			}
		}
		if inside {
			hits++
		}
	}
	return box.Area() * float64(hits) / float64(samples)
}
