package geo

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestCircleContains(t *testing.T) {
	c := Circle{C: Point{0, 0}, R: 2}
	if !c.Contains(Point{0, 0}) || !c.Contains(Point{2, 0}) {
		t.Error("center and boundary must be contained")
	}
	if c.Contains(Point{2.001, 0}) {
		t.Error("outside point contained")
	}
}

func TestIntersectCircleCases(t *testing.T) {
	a := Circle{C: Point{0, 0}, R: 1}
	tests := []struct {
		name string
		b    Circle
		want int
	}{
		{"separate", Circle{C: Point{3, 0}, R: 1}, 0},
		{"tangent external", Circle{C: Point{2, 0}, R: 1}, 1},
		{"two points", Circle{C: Point{1, 0}, R: 1}, 2},
		{"contained", Circle{C: Point{0.1, 0}, R: 0.5}, 0},
		{"tangent internal", Circle{C: Point{0.5, 0}, R: 0.5}, 1},
		{"concentric", Circle{C: Point{0, 0}, R: 0.5}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pts := a.IntersectCircle(tt.b)
			if len(pts) != tt.want {
				t.Fatalf("got %d points, want %d", len(pts), tt.want)
			}
			for _, p := range pts {
				if !almostEqual(Dist(a.C, p), a.R, 1e-9) {
					t.Errorf("point %v not on circle a", p)
				}
				if !almostEqual(Dist(tt.b.C, p), tt.b.R, 1e-9) {
					t.Errorf("point %v not on circle b", p)
				}
			}
		})
	}
}

func TestLensAreaKnownValues(t *testing.T) {
	// Two unit circles whose centers are distance 1 apart: the lens area
	// has the closed form 2π/3 - √3/2.
	a := Circle{C: Point{0, 0}, R: 1}
	b := Circle{C: Point{1, 0}, R: 1}
	want := 2*math.Pi/3 - math.Sqrt(3)/2
	if got := LensArea(a, b); !almostEqual(got, want, 1e-9) {
		t.Errorf("LensArea = %v, want %v", got, want)
	}
}

func TestLensAreaLimits(t *testing.T) {
	a := Circle{C: Point{0, 0}, R: 1}
	if got := LensArea(a, Circle{C: Point{5, 0}, R: 1}); got != 0 {
		t.Errorf("disjoint lens = %v, want 0", got)
	}
	inner := Circle{C: Point{0.2, 0}, R: 0.3}
	if got := LensArea(a, inner); !almostEqual(got, inner.Area(), 1e-9) {
		t.Errorf("contained lens = %v, want %v", got, inner.Area())
	}
	if got := LensArea(a, a); !almostEqual(got, a.Area(), 1e-9) {
		t.Errorf("self lens = %v, want %v", got, a.Area())
	}
}

func TestContainsCircle(t *testing.T) {
	big := Circle{C: Point{0, 0}, R: 2}
	if !big.ContainsCircle(Circle{C: Point{1, 0}, R: 1}) {
		t.Error("internally tangent disk should be contained")
	}
	if big.ContainsCircle(Circle{C: Point{1.5, 0}, R: 1}) {
		t.Error("protruding disk should not be contained")
	}
}

func TestDisksIntersectionAreaSimple(t *testing.T) {
	unit := Circle{C: Point{0, 0}, R: 1}
	if got := DisksIntersectionArea(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := DisksIntersectionArea([]Circle{unit}); !almostEqual(got, math.Pi, 1e-9) {
		t.Errorf("single = %v", got)
	}
	// Duplicated disks collapse to one.
	if got := DisksIntersectionArea([]Circle{unit, unit, unit}); !almostEqual(got, math.Pi, 1e-6) {
		t.Errorf("duplicates = %v, want π", got)
	}
	// Disjoint pair.
	far := Circle{C: Point{10, 0}, R: 1}
	if got := DisksIntersectionArea([]Circle{unit, far, {C: Point{0, 0.1}, R: 1}}); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
	// One small disk inside all others.
	small := Circle{C: Point{0.1, 0}, R: 0.2}
	got := DisksIntersectionArea([]Circle{unit, {C: Point{0.2, 0.1}, R: 1.5}, small})
	if !almostEqual(got, small.Area(), 1e-9) {
		t.Errorf("nested = %v, want %v", got, small.Area())
	}
}

func TestDisksIntersectionAreaThreeSymmetric(t *testing.T) {
	// Three unit disks centered on the vertices of an equilateral triangle
	// with side 1 (the classic Reuleaux-like region). The intersection
	// area has the closed form (π - √3)/2.
	h := math.Sqrt(3) / 2
	circles := []Circle{
		{C: Point{0, 0}, R: 1},
		{C: Point{1, 0}, R: 1},
		{C: Point{0.5, h}, R: 1},
	}
	want := (math.Pi - math.Sqrt(3)) / 2
	if got := DisksIntersectionArea(circles); !almostEqual(got, want, 1e-9) {
		t.Errorf("triangle intersection = %v, want %v", got, want)
	}
}

func TestDisksIntersectionAreaAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	const samples = 200_000
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(5)
		circles := make([]Circle, n)
		for i := range circles {
			circles[i] = Circle{
				C: Point{rng.Float64() * 2, rng.Float64() * 2},
				R: 1 + rng.Float64()*1.5,
			}
		}
		exact := DisksIntersectionArea(circles)
		mc := MonteCarloIntersectionArea(circles, samples, rng.Float64)
		// MC standard error scales with box area; allow a generous bound.
		tol := 0.05*math.Max(exact, mc) + 0.02
		if !almostEqual(exact, mc, tol) {
			t.Errorf("trial %d: exact %v vs MC %v (circles %v)", trial, exact, mc, circles)
		}
	}
}

func TestDisksIntersectionAreaMonotone(t *testing.T) {
	// Adding a disk can only shrink the intersection.
	rng := rand.New(rand.NewPCG(9, 3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(6)
		circles := make([]Circle, 0, n)
		prev := math.Inf(1)
		for i := 0; i < n; i++ {
			circles = append(circles, Circle{
				C: Point{rng.Float64() * 3, rng.Float64() * 3},
				R: 1.5 + rng.Float64()*2,
			})
			cur := DisksIntersectionArea(circles)
			if cur > prev+1e-6 {
				t.Fatalf("trial %d: area grew from %v to %v adding disk %d", trial, prev, cur, i)
			}
			if cur < 0 {
				t.Fatalf("negative area %v", cur)
			}
			prev = cur
		}
	}
}

func TestDisksIntersectionAreaBoundedByMinDisk(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(6)
		circles := make([]Circle, n)
		minArea := math.Inf(1)
		for i := range circles {
			circles[i] = Circle{
				C: Point{rng.Float64() * 4, rng.Float64() * 4},
				R: 0.5 + rng.Float64()*3,
			}
			minArea = math.Min(minArea, circles[i].Area())
		}
		got := DisksIntersectionArea(circles)
		if got > minArea+1e-6 {
			t.Errorf("trial %d: intersection %v exceeds smallest disk %v", trial, got, minArea)
		}
	}
}

func TestMonteCarloZeroSamples(t *testing.T) {
	if got := MonteCarloIntersectionArea([]Circle{{C: Point{}, R: 1}}, 0, func() float64 { return 0.5 }); got != 0 {
		t.Errorf("zero samples = %v", got)
	}
}

func BenchmarkDisksIntersectionArea(b *testing.B) {
	circles := []Circle{
		{C: Point{0, 0}, R: 2},
		{C: Point{1, 0}, R: 2},
		{C: Point{0.5, 0.8}, R: 2},
		{C: Point{0.2, -0.5}, R: 2.2},
		{C: Point{0.9, 0.4}, R: 1.9},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DisksIntersectionArea(circles)
	}
}

func BenchmarkAreaExactVsMC(b *testing.B) {
	circles := []Circle{
		{C: Point{0, 0}, R: 2},
		{C: Point{1, 0}, R: 2},
		{C: Point{0.5, 0.8}, R: 2},
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			DisksIntersectionArea(circles)
		}
	})
	b.Run("mc10k", func(b *testing.B) {
		rng := rand.New(rand.NewPCG(1, 2))
		for i := 0; i < b.N; i++ {
			MonteCarloIntersectionArea(circles, 10_000, rng.Float64)
		}
	})
}

func TestDisksIntersectionGeneralPathMatchesLens(t *testing.T) {
	// Exercise the general arc-decomposition path on a region that is
	// really a two-disk lens: a and b intersect, and c covers their lens
	// entirely without containing either disk (so it is not dropped as
	// redundant and the 3-circle machinery runs), contributing no
	// boundary. The result must equal the closed-form lens exactly.
	a := Circle{C: Point{0, 0}, R: 1}
	b := Circle{C: Point{1, 0}, R: 1}
	c := Circle{C: Point{0.5, 0}, R: 1.4}
	if c.ContainsCircle(a) || c.ContainsCircle(b) {
		t.Fatal("test setup: c must not contain a or b")
	}
	want := LensArea(a, b)
	got := DisksIntersectionArea([]Circle{a, b, c})
	if !almostEqual(got, want, 1e-9) {
		t.Fatalf("general path %v vs lens %v", got, want)
	}
}

func TestDisksIntersectionPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 5))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.IntN(4)
		circles := make([]Circle, n)
		for i := range circles {
			circles[i] = Circle{
				C: Point{rng.Float64() * 3, rng.Float64() * 3},
				R: 1 + rng.Float64()*2,
			}
		}
		base := DisksIntersectionArea(circles)
		shuffled := append([]Circle(nil), circles...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := DisksIntersectionArea(shuffled); !almostEqual(got, base, 1e-6*math.Max(1, base)) {
			t.Fatalf("trial %d: permutation changed area %v -> %v", trial, base, got)
		}
	}
}

func TestDisksIntersectionTranslationInvariant(t *testing.T) {
	circles := []Circle{
		{C: Point{0, 0}, R: 2},
		{C: Point{1.5, 0.5}, R: 1.8},
		{C: Point{0.5, 1.2}, R: 2.1},
	}
	base := DisksIntersectionArea(circles)
	shift := Point{1234.5, -987.25}
	moved := make([]Circle, len(circles))
	for i, c := range circles {
		moved[i] = Circle{C: c.C.Add(shift), R: c.R}
	}
	if got := DisksIntersectionArea(moved); !almostEqual(got, base, 1e-6) {
		t.Errorf("translation changed area %v -> %v", base, got)
	}
}
