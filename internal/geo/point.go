// Package geo provides the planar geometry substrate used by the POI
// aggregate attacks and defenses: points, rectangles, circles, and exact
// area computation for intersections of disks.
//
// All coordinates are city-local planar coordinates in meters. Helpers are
// provided to project WGS84 latitude/longitude pairs into such a local
// frame (equirectangular projection around a reference point), which is
// accurate to well under 0.1% at city scale.
package geo

import (
	"fmt"
	"math"
)

// Point is a location in a city-local planar frame, in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y)
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q in meters.
func Dist(p, q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as spatial-index filtering.
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Midpoint returns the point halfway between p and q.
func Midpoint(p, q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// LatLon is a WGS84 coordinate in degrees.
type LatLon struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// earthRadiusMeters is the mean Earth radius used by the equirectangular
// projection.
const earthRadiusMeters = 6371000.0

// Projection converts WGS84 coordinates to a city-local planar frame
// centered at a reference point. The zero value is not usable; construct
// with NewProjection.
type Projection struct {
	origin LatLon
	cosLat float64
}

// NewProjection returns a projection centered at origin.
func NewProjection(origin LatLon) Projection {
	return Projection{
		origin: origin,
		cosLat: math.Cos(origin.Lat * math.Pi / 180),
	}
}

// ToPlanar projects ll into the local frame, in meters east/north of the
// projection origin.
func (pr Projection) ToPlanar(ll LatLon) Point {
	const degToRad = math.Pi / 180
	return Point{
		X: (ll.Lon - pr.origin.Lon) * degToRad * earthRadiusMeters * pr.cosLat,
		Y: (ll.Lat - pr.origin.Lat) * degToRad * earthRadiusMeters,
	}
}

// ToLatLon inverts ToPlanar.
func (pr Projection) ToLatLon(p Point) LatLon {
	const radToDeg = 180 / math.Pi
	return LatLon{
		Lat: pr.origin.Lat + p.Y/earthRadiusMeters*radToDeg,
		Lon: pr.origin.Lon + p.X/(earthRadiusMeters*pr.cosLat)*radToDeg,
	}
}

// Haversine returns the great-circle distance between two WGS84 coordinates
// in meters.
func Haversine(a, b LatLon) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusMeters * math.Asin(math.Sqrt(s))
}
