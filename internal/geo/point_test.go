package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dist(tt.p, tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Keep magnitudes sane to avoid overflow-driven mismatches.
		a := Point{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		b := Point{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		d := Dist(a, b)
		return almostEqual(Dist2(a, b), d*d, 1e-6*math.Max(1, d*d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		b := Point{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		c := Point{math.Mod(cx, 1e6), math.Mod(cy, 1e6)}
		if !almostEqual(Dist(a, b), Dist(b, a), 1e-9) {
			return false
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, -2}
	if got := p.Add(q); got != (Point{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 3*(-2)-4*1 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v", got)
	}
}

func TestMidpoint(t *testing.T) {
	got := Midpoint(Point{0, 0}, Point{2, 4})
	if got != (Point{1, 2}) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	origin := LatLon{Lat: 39.9, Lon: 116.4} // Beijing
	pr := NewProjection(origin)
	tests := []LatLon{
		origin,
		{Lat: 39.95, Lon: 116.45},
		{Lat: 39.80, Lon: 116.30},
		{Lat: 40.00, Lon: 116.55},
	}
	for _, ll := range tests {
		p := pr.ToPlanar(ll)
		back := pr.ToLatLon(p)
		if !almostEqual(back.Lat, ll.Lat, 1e-9) || !almostEqual(back.Lon, ll.Lon, 1e-9) {
			t.Errorf("round trip %v -> %v -> %v", ll, p, back)
		}
	}
}

func TestProjectionMatchesHaversine(t *testing.T) {
	// At city scale (<30 km) the equirectangular projection distance must
	// agree with the great-circle distance to within 0.2%.
	origin := LatLon{Lat: 40.75, Lon: -73.98} // NYC
	pr := NewProjection(origin)
	a := LatLon{Lat: 40.80, Lon: -73.95}
	b := LatLon{Lat: 40.70, Lon: -74.01}
	planar := Dist(pr.ToPlanar(a), pr.ToPlanar(b))
	sphere := Haversine(a, b)
	if rel := math.Abs(planar-sphere) / sphere; rel > 0.002 {
		t.Errorf("planar %v vs haversine %v: rel err %v", planar, sphere, rel)
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Beijing to Shanghai is roughly 1,067 km.
	bj := LatLon{Lat: 39.9042, Lon: 116.4074}
	sh := LatLon{Lat: 31.2304, Lon: 121.4737}
	d := Haversine(bj, sh)
	if d < 1.0e6 || d > 1.1e6 {
		t.Errorf("Haversine(BJ, SH) = %v, want ~1067 km", d)
	}
}

func TestHaversineZero(t *testing.T) {
	p := LatLon{Lat: 10, Lon: 20}
	if d := Haversine(p, p); d != 0 {
		t.Errorf("Haversine(p, p) = %v", d)
	}
}
