package geo

import "fmt"

// Rect is an axis-aligned rectangle in the planar frame. Min is inclusive
// and Max is exclusive for point-membership purposes, which makes disjoint
// tilings (grids, quadtrees) well defined.
type Rect struct {
	MinX float64 `json:"minX"`
	MinY float64 `json:"minY"`
	MaxX float64 `json:"maxX"`
	MaxY float64 `json:"maxY"`
}

// NewRect returns the rectangle spanning the two corner points in any
// order.
func NewRect(a, b Point) Rect {
	r := Rect{MinX: a.X, MinY: a.Y, MaxX: b.X, MaxY: b.Y}
	if r.MinX > r.MaxX {
		r.MinX, r.MaxX = r.MaxX, r.MinX
	}
	if r.MinY > r.MaxY {
		r.MinY, r.MaxY = r.MaxY, r.MinY
	}
	return r
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.0f,%.0f]x[%.0f,%.0f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r in square meters.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the centroid of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies in r (min-inclusive, max-exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// ContainsClosed reports whether p lies in the closure of r.
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether r and s overlap (closed-interval test).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Quadrants partitions r into its four equal quadrants, ordered SW, SE,
// NW, NE.
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{MinX: r.MinX, MinY: r.MinY, MaxX: c.X, MaxY: c.Y},
		{MinX: c.X, MinY: r.MinY, MaxX: r.MaxX, MaxY: c.Y},
		{MinX: r.MinX, MinY: c.Y, MaxX: c.X, MaxY: r.MaxY},
		{MinX: c.X, MinY: c.Y, MaxX: r.MaxX, MaxY: r.MaxY},
	}
}

// Clamp returns the point in the closure of r nearest to p.
func (r Rect) Clamp(p Point) Point {
	if p.X < r.MinX {
		p.X = r.MinX
	} else if p.X > r.MaxX {
		p.X = r.MaxX
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	} else if p.Y > r.MaxY {
		p.Y = r.MaxY
	}
	return p
}

// DistToPoint returns the distance from p to the closure of r; zero when p
// is inside.
func (r Rect) DistToPoint(p Point) float64 {
	return Dist(p, r.Clamp(p))
}

// IntersectsCircle reports whether r overlaps the disk of radius radius
// centered at c.
func (r Rect) IntersectsCircle(c Point, radius float64) bool {
	return r.DistToPoint(c) <= radius
}
