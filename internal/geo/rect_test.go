package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, 7}, Point{1, 2})
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %+v, want %+v", r, want)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 2}
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Errorf("dims wrong: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != (Point{2, 1}) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},       // min corner inclusive
		{Point{1, 1}, false},      // max corner exclusive
		{Point{0.5, 0.5}, true},   // interior
		{Point{1, 0.5}, false},    // right edge exclusive
		{Point{0.5, 1}, false},    // top edge exclusive
		{Point{-0.1, 0.5}, false}, // outside
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !r.ContainsClosed(Point{1, 1}) {
		t.Error("ContainsClosed should include max corner")
	}
}

func TestQuadrantsTileParent(t *testing.T) {
	r := Rect{MinX: -2, MinY: 4, MaxX: 6, MaxY: 12}
	qs := r.Quadrants()
	total := 0.0
	for _, q := range qs {
		total += q.Area()
	}
	if !almostEqual(total, r.Area(), 1e-9) {
		t.Errorf("quadrant areas sum to %v, want %v", total, r.Area())
	}
	// Every interior point belongs to exactly one quadrant (half-open).
	f := func(fx, fy float64) bool {
		fx = math.Abs(math.Mod(fx, 1))
		fy = math.Abs(math.Mod(fy, 1))
		p := Point{r.MinX + fx*r.Width(), r.MinY + fy*r.Height()}
		count := 0
		for _, q := range qs {
			if q.Contains(p) {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampAndDist(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	tests := []struct {
		p     Point
		clamp Point
		dist  float64
	}{
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 1}, Point{0, 1}, 1},
		{Point{3, 3}, Point{2, 2}, math.Sqrt2},
		{Point{1, -2}, Point{1, 0}, 2},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.p); got != tt.clamp {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.clamp)
		}
		if got := r.DistToPoint(tt.p); !almostEqual(got, tt.dist, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", tt.p, got, tt.dist)
		}
	}
}

func TestIntersectsCircle(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	tests := []struct {
		c    Point
		rad  float64
		want bool
	}{
		{Point{1, 1}, 0.1, true},  // center inside
		{Point{4, 1}, 1.9, false}, // too far
		{Point{4, 1}, 2.0, true},  // touching edge
		{Point{3, 3}, 1.0, false}, // near corner but short
		{Point{3, 3}, 1.5, true},  // reaches corner
	}
	for _, tt := range tests {
		if got := r.IntersectsCircle(tt.c, tt.rad); got != tt.want {
			t.Errorf("IntersectsCircle(%v, %v) = %v, want %v", tt.c, tt.rad, got, tt.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	tests := []struct {
		b    Rect
		want bool
	}{
		{Rect{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}, true},
		{Rect{MinX: 2, MinY: 0, MaxX: 4, MaxY: 2}, true}, // shared edge
		{Rect{MinX: 3, MinY: 3, MaxX: 4, MaxY: 4}, false},
		{Rect{MinX: -1, MinY: -1, MaxX: 5, MaxY: 5}, true}, // contains a
	}
	for _, tt := range tests {
		if got := a.Intersects(tt.b); got != tt.want {
			t.Errorf("Intersects(%v) = %v, want %v", tt.b, got, tt.want)
		}
		if got := tt.b.Intersects(a); got != tt.want {
			t.Errorf("Intersects symmetric (%v) = %v, want %v", tt.b, got, tt.want)
		}
	}
}
