package gsp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// BatchQuery is one (location, radius) item of a batched request.
type BatchQuery struct {
	L geo.Point
	R float64
}

// FreqBatch answers many Freq queries at once, fanning the items out
// across a worker pool. Result i is exactly Freq(reqs[i].L, reqs[i].R)
// — order is preserved and each vector is a fresh copy owned by the
// caller. The batch endpoints and the batched attack probes funnel
// through here, so one wire round trip turns into cores-wide index work.
//
// Identical (L, R) items are deduplicated before the fan-out: each
// unique key is resolved once and duplicate indices receive their own
// clone of that result, so a batch of N copies of one probe costs one
// compute, not N (and never has the pool racing N workers through the
// singleflight table for the same key).
func (s *Service) FreqBatch(reqs []BatchQuery) []poi.FreqVector {
	out := make([]poi.FreqVector, len(reqs))
	firstOf := make(map[freqKey]int, len(reqs))
	uniq := make([]int, 0, len(reqs))
	dupOf := make([]int, len(reqs)) // index of first occurrence, or -1
	for i, q := range reqs {
		k := freqKey{x: q.L.X, y: q.L.Y, r: q.R}
		if j, ok := firstOf[k]; ok {
			dupOf[i] = j
			continue
		}
		firstOf[k] = i
		dupOf[i] = -1
		uniq = append(uniq, i)
	}
	fanOut(len(uniq), func(u int) {
		i := uniq[u]
		out[i] = s.Freq(reqs[i].L, reqs[i].R)
	})
	for i, j := range dupOf {
		if j >= 0 {
			out[i] = out[j].Clone()
		}
	}
	return out
}

// QueryBatch answers many Query requests at once with the same ordering
// and ownership guarantees as FreqBatch.
func (s *Service) QueryBatch(reqs []BatchQuery) [][]poi.POI {
	out := make([][]poi.POI, len(reqs))
	fanOut(len(reqs), func(i int) {
		out[i] = s.Query(reqs[i].L, reqs[i].R)
	})
	return out
}

// fanOut runs fn(0..n-1) across up to GOMAXPROCS workers pulling indices
// from a shared atomic counter. Work per item is uneven (radius and POI
// density vary), so work stealing beats static striping.
func fanOut(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
