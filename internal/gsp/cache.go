package gsp

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"poiagg/internal/obs"
	"poiagg/internal/poi"
)

// freqCache is the Service's memoization backend. Implementations must
// be safe for concurrent use. Stored vectors are private to the cache:
// put receives a clone and get returns the stored slice, which is never
// mutated afterwards, so callers may read it without holding any lock
// (they clone before handing it to users).
type freqCache interface {
	get(k freqKey) (poi.FreqVector, bool)
	// peek is get for the singleflight leader re-check: a present key
	// counts as a hit (it serves the request), an absent one counts
	// nothing — the miss was already recorded by the get that led here.
	peek(k freqKey) (poi.FreqVector, bool)
	put(k freqKey, f poi.FreqVector)
	metrics() CacheMetrics
	// hottest returns up to n live entries ordered by per-entry hit
	// count, hottest first — the tiered store snapshots these.
	hottest(n int) []hotEntry
}

// hotEntry is one cache entry paired with its lifetime hit count; val is
// the cache's private vector and must not be mutated.
type hotEntry struct {
	key  freqKey
	val  poi.FreqVector
	hits uint64
}

// CacheMetrics is a point-in-time view of the Freq cache's bookkeeping.
type CacheMetrics struct {
	// Hits and Misses count lookups. A Freq call is normally exactly
	// one of the two; a miss rescued by the singleflight leader
	// re-check (singleflight.go) counts one miss plus one hit.
	Hits, Misses uint64
	// Evictions counts entries dropped by the LRU policy — individual
	// entries, not whole-cache wipes.
	Evictions uint64
	// Size is the number of live entries; Capacity the configured bound.
	Size, Capacity int
	// Shards is the number of lock shards (1 for the single-lock
	// ablation baseline).
	Shards int
}

// Cache metric names registered by Service.ExportMetrics.
const (
	MetricCacheHits      = "gsp.cache.hits"
	MetricCacheMisses    = "gsp.cache.misses"
	MetricCacheEvictions = "gsp.cache.evictions"
	MetricCacheSize      = "gsp.cache.size"
)

// ExportMetrics publishes the cache's hit/miss/eviction/size counters,
// the singleflight leader/shared/hits counters, and the tiered store's
// warmed/rejected counters into reg, sampled lazily at snapshot time so
// the Freq hot path pays nothing for the export. No-op when caching is
// disabled.
func (s *Service) ExportMetrics(reg *obs.Registry) {
	if s.cache == nil || reg == nil {
		return
	}
	reg.CounterFunc(MetricCacheHits, func() uint64 { return s.cache.metrics().Hits })
	reg.CounterFunc(MetricCacheMisses, func() uint64 { return s.cache.metrics().Misses })
	reg.CounterFunc(MetricCacheEvictions, func() uint64 { return s.cache.metrics().Evictions })
	reg.CounterFunc(MetricCacheSize, func() uint64 { return uint64(s.cache.metrics().Size) })
	reg.CounterFunc(MetricSFLeader, func() uint64 { return s.SingleflightMetrics().Leader })
	reg.CounterFunc(MetricSFShared, func() uint64 { return s.SingleflightMetrics().Shared })
	reg.CounterFunc(MetricSFHits, func() uint64 { return s.SingleflightMetrics().Hits })
	reg.CounterFunc(MetricStoreWarmed, func() uint64 { return s.storeWarmed.Load() })
	reg.CounterFunc(MetricStoreRejected, func() uint64 { return s.storeRejected.Load() })
}

// hash mixes the key's coordinate bits through the splitmix64 finalizer
// so that the regular lattices attack sweeps probe (anchor POIs on a
// grid, a handful of radii) spread evenly across shards.
func (k freqKey) hash() uint64 {
	h := mix64(math.Float64bits(k.x) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ math.Float64bits(k.y))
	return mix64(h ^ math.Float64bits(k.r))
}

func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cacheEntry is one memoized Freq result, threaded on its shard's
// second-chance FIFO queue (head = oldest).
type cacheEntry struct {
	key     freqKey
	val     poi.FreqVector
	next    *cacheEntry
	touched bool
	// hits counts lookups that returned this entry; the tiered store
	// ranks entries by it when snapshotting the hottest.
	hits uint64
}

// cacheShard is one lock domain of the sharded cache.
type cacheShard struct {
	mu      sync.Mutex
	entries map[freqKey]*cacheEntry
	head    *cacheEntry // oldest
	tail    *cacheEntry // newest
	cap     int

	hits, misses, evictions uint64
}

// shardedCache is the production Freq cache: power-of-two lock shards
// selected by hashed key, per-shard second-chance (CLOCK) eviction —
// the classic one-bit LRU approximation. A hit only sets the entry's
// touched bit, so the hit critical section is exactly a map lookup (no
// recency-list surgery), and eviction is true per-entry: the oldest
// untouched entry goes, recently used entries are spared. Concurrent
// sweeps therefore contend only when their keys collide on a shard, and
// a full cache sheds cold entries instead of wiping the hot working set
// (the pre-sharding design's clear-all degraded to a 0% hit rate
// mid-sweep every time it filled).
type shardedCache struct {
	shards []cacheShard
	mask   uint64
}

// shardCountFor picks the shard count: a power of two sized to roughly
// 2× the available parallelism (capped at 128), shrunk so every shard
// keeps capacity ≥ 1.
func shardCountFor(capacity int) int {
	n := 1
	for n < 2*runtime.GOMAXPROCS(0) && n < 128 {
		n <<= 1
	}
	for n > capacity && n > 1 {
		n >>= 1
	}
	return n
}

func newShardedCache(capacity int) *shardedCache {
	n := shardCountFor(capacity)
	c := &shardedCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < extra {
			sc++
		}
		c.shards[i].cap = sc
		c.shards[i].entries = make(map[freqKey]*cacheEntry, min(sc, 1024))
	}
	return c
}

func (c *shardedCache) shardFor(k freqKey) *cacheShard {
	return &c.shards[k.hash()&c.mask]
}

func (c *shardedCache) get(k freqKey) (poi.FreqVector, bool) {
	return c.lookup(k, true)
}

func (c *shardedCache) peek(k freqKey) (poi.FreqVector, bool) {
	return c.lookup(k, false)
}

func (c *shardedCache) lookup(k freqKey, countMiss bool) (poi.FreqVector, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		if countMiss {
			s.misses++
		}
		s.mu.Unlock()
		return nil, false
	}
	s.hits++
	e.touched = true
	e.hits++
	f := e.val
	s.mu.Unlock()
	return f, true
}

func (c *shardedCache) put(k freqKey, f poi.FreqVector) {
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		// A concurrent miss on the same key beat us here; refresh the
		// value and recency, keep the size unchanged.
		e.val = f
		e.touched = true
		s.mu.Unlock()
		return
	}
	e := &cacheEntry{key: k, val: f}
	s.enqueue(e)
	s.entries[k] = e
	if len(s.entries) > s.cap {
		s.evictOne()
	}
	s.mu.Unlock()
}

// enqueue appends e to the FIFO tail. Caller holds the shard lock.
func (s *cacheShard) enqueue(e *cacheEntry) {
	e.next = nil
	if s.tail != nil {
		s.tail.next = e
	} else {
		s.head = e
	}
	s.tail = e
}

// evictOne drops the oldest untouched entry: touched entries popped on
// the way get their bit cleared and a second chance at the tail. The
// scan terminates — after one full pass every bit is clear, so the
// second pass evicts at its first stop. Caller holds the shard lock.
func (s *cacheShard) evictOne() {
	for {
		e := s.head
		s.head = e.next
		if s.head == nil {
			s.tail = nil
		}
		if !e.touched {
			delete(s.entries, e.key)
			s.evictions++
			return
		}
		e.touched = false
		s.enqueue(e)
	}
}

func (c *shardedCache) hottest(n int) []hotEntry {
	if n <= 0 {
		return nil
	}
	var out []hotEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, e := range s.entries {
			out = append(out, hotEntry{key: e.key, val: e.val, hits: e.hits})
		}
		s.mu.Unlock()
	}
	// Hottest first; ties broken by key so the order — and therefore the
	// snapshot bytes — is deterministic for a given cache state.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.hits != b.hits {
			return a.hits > b.hits
		}
		if a.key.x != b.key.x {
			return a.key.x < b.key.x
		}
		if a.key.y != b.key.y {
			return a.key.y < b.key.y
		}
		return a.key.r < b.key.r
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func (c *shardedCache) metrics() CacheMetrics {
	m := CacheMetrics{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		m.Hits += s.hits
		m.Misses += s.misses
		m.Evictions += s.evictions
		m.Size += len(s.entries)
		m.Capacity += s.cap
		s.mu.Unlock()
	}
	return m
}

// singleLockCache is the pre-sharding design — one mutex around one map,
// overflow handled by wiping everything. Kept only as the ablation
// baseline for BenchmarkFreqCacheSharded; the Service never uses it.
type singleLockCache struct {
	mu      sync.Mutex
	entries map[freqKey]poi.FreqVector
	cap     int

	hits, misses, evictions uint64
}

func newSingleLockCache(capacity int) *singleLockCache {
	return &singleLockCache{
		entries: make(map[freqKey]poi.FreqVector, min(capacity, 4096)),
		cap:     capacity,
	}
}

func (c *singleLockCache) get(k freqKey) (poi.FreqVector, bool) {
	c.mu.Lock()
	f, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	return f, ok
}

func (c *singleLockCache) peek(k freqKey) (poi.FreqVector, bool) {
	c.mu.Lock()
	f, ok := c.entries[k]
	if ok {
		c.hits++
	}
	c.mu.Unlock()
	return f, ok
}

func (c *singleLockCache) put(k freqKey, f poi.FreqVector) {
	c.mu.Lock()
	if len(c.entries) >= c.cap {
		c.evictions += uint64(len(c.entries))
		clear(c.entries)
	}
	c.entries[k] = f
	c.mu.Unlock()
}

func (c *singleLockCache) hottest(n int) []hotEntry {
	// The ablation baseline tracks no per-entry hits; return entries in
	// key order so the result is at least deterministic.
	c.mu.Lock()
	out := make([]hotEntry, 0, len(c.entries))
	for k, v := range c.entries {
		out = append(out, hotEntry{key: k, val: v})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].key, out[j].key
		if a.x != b.x {
			return a.x < b.x
		}
		if a.y != b.y {
			return a.y < b.y
		}
		return a.r < b.r
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func (c *singleLockCache) metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheMetrics{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      len(c.entries),
		Capacity:  c.cap,
		Shards:    1,
	}
}
