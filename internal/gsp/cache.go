package gsp

import (
	"math"
	"runtime"
	"sync"

	"poiagg/internal/obs"
	"poiagg/internal/poi"
)

// freqCache is the Service's memoization backend. Implementations must
// be safe for concurrent use. Stored vectors are private to the cache:
// put receives a clone and get returns the stored slice, which is never
// mutated afterwards, so callers may read it without holding any lock
// (they clone before handing it to users).
type freqCache interface {
	get(k freqKey) (poi.FreqVector, bool)
	put(k freqKey, f poi.FreqVector)
	metrics() CacheMetrics
}

// CacheMetrics is a point-in-time view of the Freq cache's bookkeeping.
type CacheMetrics struct {
	// Hits and Misses count lookups; every Freq call with caching
	// enabled is exactly one of the two.
	Hits, Misses uint64
	// Evictions counts entries dropped by the LRU policy — individual
	// entries, not whole-cache wipes.
	Evictions uint64
	// Size is the number of live entries; Capacity the configured bound.
	Size, Capacity int
	// Shards is the number of lock shards (1 for the single-lock
	// ablation baseline).
	Shards int
}

// Cache metric names registered by Service.ExportMetrics.
const (
	MetricCacheHits      = "gsp.cache.hits"
	MetricCacheMisses    = "gsp.cache.misses"
	MetricCacheEvictions = "gsp.cache.evictions"
	MetricCacheSize      = "gsp.cache.size"
)

// ExportMetrics publishes the cache's hit/miss/eviction/size counters
// into reg, sampled lazily at snapshot time so the Freq hot path pays
// nothing for the export. No-op when caching is disabled.
func (s *Service) ExportMetrics(reg *obs.Registry) {
	if s.cache == nil || reg == nil {
		return
	}
	reg.CounterFunc(MetricCacheHits, func() uint64 { return s.cache.metrics().Hits })
	reg.CounterFunc(MetricCacheMisses, func() uint64 { return s.cache.metrics().Misses })
	reg.CounterFunc(MetricCacheEvictions, func() uint64 { return s.cache.metrics().Evictions })
	reg.CounterFunc(MetricCacheSize, func() uint64 { return uint64(s.cache.metrics().Size) })
}

// hash mixes the key's coordinate bits through the splitmix64 finalizer
// so that the regular lattices attack sweeps probe (anchor POIs on a
// grid, a handful of radii) spread evenly across shards.
func (k freqKey) hash() uint64 {
	h := mix64(math.Float64bits(k.x) ^ 0x9e3779b97f4a7c15)
	h = mix64(h ^ math.Float64bits(k.y))
	return mix64(h ^ math.Float64bits(k.r))
}

func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cacheEntry is one memoized Freq result, threaded on its shard's
// second-chance FIFO queue (head = oldest).
type cacheEntry struct {
	key     freqKey
	val     poi.FreqVector
	next    *cacheEntry
	touched bool
}

// cacheShard is one lock domain of the sharded cache.
type cacheShard struct {
	mu      sync.Mutex
	entries map[freqKey]*cacheEntry
	head    *cacheEntry // oldest
	tail    *cacheEntry // newest
	cap     int

	hits, misses, evictions uint64
}

// shardedCache is the production Freq cache: power-of-two lock shards
// selected by hashed key, per-shard second-chance (CLOCK) eviction —
// the classic one-bit LRU approximation. A hit only sets the entry's
// touched bit, so the hit critical section is exactly a map lookup (no
// recency-list surgery), and eviction is true per-entry: the oldest
// untouched entry goes, recently used entries are spared. Concurrent
// sweeps therefore contend only when their keys collide on a shard, and
// a full cache sheds cold entries instead of wiping the hot working set
// (the pre-sharding design's clear-all degraded to a 0% hit rate
// mid-sweep every time it filled).
type shardedCache struct {
	shards []cacheShard
	mask   uint64
}

// shardCountFor picks the shard count: a power of two sized to roughly
// 2× the available parallelism (capped at 128), shrunk so every shard
// keeps capacity ≥ 1.
func shardCountFor(capacity int) int {
	n := 1
	for n < 2*runtime.GOMAXPROCS(0) && n < 128 {
		n <<= 1
	}
	for n > capacity && n > 1 {
		n >>= 1
	}
	return n
}

func newShardedCache(capacity int) *shardedCache {
	n := shardCountFor(capacity)
	c := &shardedCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < extra {
			sc++
		}
		c.shards[i].cap = sc
		c.shards[i].entries = make(map[freqKey]*cacheEntry, min(sc, 1024))
	}
	return c
}

func (c *shardedCache) shardFor(k freqKey) *cacheShard {
	return &c.shards[k.hash()&c.mask]
}

func (c *shardedCache) get(k freqKey) (poi.FreqVector, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.hits++
	e.touched = true
	f := e.val
	s.mu.Unlock()
	return f, true
}

func (c *shardedCache) put(k freqKey, f poi.FreqVector) {
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		// A concurrent miss on the same key beat us here; refresh the
		// value and recency, keep the size unchanged.
		e.val = f
		e.touched = true
		s.mu.Unlock()
		return
	}
	e := &cacheEntry{key: k, val: f}
	s.enqueue(e)
	s.entries[k] = e
	if len(s.entries) > s.cap {
		s.evictOne()
	}
	s.mu.Unlock()
}

// enqueue appends e to the FIFO tail. Caller holds the shard lock.
func (s *cacheShard) enqueue(e *cacheEntry) {
	e.next = nil
	if s.tail != nil {
		s.tail.next = e
	} else {
		s.head = e
	}
	s.tail = e
}

// evictOne drops the oldest untouched entry: touched entries popped on
// the way get their bit cleared and a second chance at the tail. The
// scan terminates — after one full pass every bit is clear, so the
// second pass evicts at its first stop. Caller holds the shard lock.
func (s *cacheShard) evictOne() {
	for {
		e := s.head
		s.head = e.next
		if s.head == nil {
			s.tail = nil
		}
		if !e.touched {
			delete(s.entries, e.key)
			s.evictions++
			return
		}
		e.touched = false
		s.enqueue(e)
	}
}

func (c *shardedCache) metrics() CacheMetrics {
	m := CacheMetrics{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		m.Hits += s.hits
		m.Misses += s.misses
		m.Evictions += s.evictions
		m.Size += len(s.entries)
		m.Capacity += s.cap
		s.mu.Unlock()
	}
	return m
}

// singleLockCache is the pre-sharding design — one mutex around one map,
// overflow handled by wiping everything. Kept only as the ablation
// baseline for BenchmarkFreqCacheSharded; the Service never uses it.
type singleLockCache struct {
	mu      sync.Mutex
	entries map[freqKey]poi.FreqVector
	cap     int

	hits, misses, evictions uint64
}

func newSingleLockCache(capacity int) *singleLockCache {
	return &singleLockCache{
		entries: make(map[freqKey]poi.FreqVector, min(capacity, 4096)),
		cap:     capacity,
	}
}

func (c *singleLockCache) get(k freqKey) (poi.FreqVector, bool) {
	c.mu.Lock()
	f, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	return f, ok
}

func (c *singleLockCache) put(k freqKey, f poi.FreqVector) {
	c.mu.Lock()
	if len(c.entries) >= c.cap {
		c.evictions += uint64(len(c.entries))
		clear(c.entries)
	}
	c.entries[k] = f
	c.mu.Unlock()
}

func (c *singleLockCache) metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheMetrics{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      len(c.entries),
		Capacity:  c.cap,
		Shards:    1,
	}
}
