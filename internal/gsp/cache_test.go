package gsp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// cacheCity builds a mid-size city for cache tests and benchmarks:
// enough POIs that a Freq miss does real index work.
func cacheCity(tb testing.TB, numPOIs, numTypes int) *City {
	tb.Helper()
	types := poi.NewTypeTable()
	for i := 0; i < numTypes; i++ {
		types.Intern(fmt.Sprintf("t%d", i))
	}
	src := rng.New(9)
	pois := make([]poi.POI, numPOIs)
	for i := range pois {
		x, y := src.UniformIn(0, 0, 20_000, 20_000)
		pois[i] = poi.POI{ID: poi.ID(i), Type: poi.TypeID(src.IntN(numTypes)), Pos: geo.Point{X: x, Y: y}}
	}
	city, err := NewCity("cache-bench", geo.Rect{MaxX: 20_000, MaxY: 20_000}, types, pois)
	if err != nil {
		tb.Fatal(err)
	}
	return city
}

// TestFreqCacheShardedRaceStress hammers the sharded cache from
// GOMAXPROCS goroutines with overlapping keys at three capacities —
// pathological (1), exactly one entry per shard, and effectively
// unbounded — and asserts the hit/miss/eviction bookkeeping stays
// consistent and every returned vector is correct. Run under -race this
// is the cache's data-race proof.
func TestFreqCacheShardedRaceStress(t *testing.T) {
	city := cacheCity(t, 3000, 40)
	// Shard count the cache picks when capacity does not constrain it.
	maxShards := len(newShardedCache(1 << 16).shards)

	// Reference answers from an uncached service.
	bare := NewService(city, 0)
	const numKeys = 150
	keys := make([]BatchQuery, numKeys)
	want := make([]poi.FreqVector, numKeys)
	src := rng.New(77)
	for i := range keys {
		x, y := src.UniformIn(0, 0, 20_000, 20_000)
		keys[i] = BatchQuery{L: geo.Point{X: x, Y: y}, R: 500 + float64(i%4)*500}
		want[i] = bare.Freq(keys[i].L, keys[i].R)
	}

	for _, capacity := range []int{1, maxShards, 1 << 16} {
		t.Run(fmt.Sprintf("cap=%d", capacity), func(t *testing.T) {
			svc := NewService(city, capacity)
			workers := runtime.GOMAXPROCS(0)
			const opsPerWorker = 2000
			var ops atomic.Uint64
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					r := rng.New(uint64(g) + 1)
					for i := 0; i < opsPerWorker; i++ {
						k := r.IntN(numKeys)
						f := svc.Freq(keys[k].L, keys[k].R)
						ops.Add(1)
						if !f.Equal(want[k]) {
							t.Errorf("key %d: wrong vector under contention", k)
							return
						}
						// Mutating the returned copy must never poison
						// later reads.
						if len(f) > 0 {
							f[0] += 17
						}
					}
				}(g)
			}
			wg.Wait()

			m := svc.CacheMetrics()
			if got := m.Hits + m.Misses; got != ops.Load() {
				t.Errorf("hits+misses = %d, want %d lookups", got, ops.Load())
			}
			if m.Capacity != capacity {
				t.Errorf("capacity = %d, want %d", m.Capacity, capacity)
			}
			if m.Size > m.Capacity {
				t.Errorf("size %d exceeds capacity %d", m.Size, m.Capacity)
			}
			// Every live entry and every eviction came from a miss that
			// inserted; concurrent same-key misses can overwrite, so ≤.
			if uint64(m.Size)+m.Evictions > m.Misses {
				t.Errorf("size %d + evictions %d > misses %d", m.Size, m.Evictions, m.Misses)
			}
			if capacity < numKeys && m.Evictions == 0 {
				t.Errorf("capacity %d below working set %d but no evictions", capacity, numKeys)
			}
			if capacity >= (1<<16) && m.Evictions != 0 {
				t.Errorf("huge capacity evicted %d entries", m.Evictions)
			}
		})
	}
}

// TestFreqCacheHotKeysSurviveEviction pins the eviction-policy fix: the
// pre-sharding cache wiped everything on overflow, so a full cache
// degraded to a 0% hit rate mid-sweep. With per-entry LRU eviction a key
// re-accessed every iteration must never be evicted, no matter how many
// cold keys stream past it.
func TestFreqCacheHotKeysSurviveEviction(t *testing.T) {
	city := cacheCity(t, 1500, 30)
	// 256 ≥ 2× the shard-count cap, so every shard holds ≥ 2 entries;
	// the hot key's touched bit is re-set between any two eviction scans
	// that reach it, so second-chance can never pick it as the victim
	// while untouched cold entries stream past.
	svc := NewService(city, 256)
	hot := geo.Point{X: 10_000, Y: 10_000}
	const iters = 5000
	for i := 0; i < iters; i++ {
		svc.Freq(hot, 900)
		svc.Freq(geo.Point{X: float64(i), Y: float64(2 * i)}, 900)
	}
	m := svc.CacheMetrics()
	if m.Evictions == 0 {
		t.Fatal("cold-key stream never overflowed the cache; test is vacuous")
	}
	// Hot key: 1 miss then iters-1 hits. Cold keys: all distinct misses.
	if m.Hits != iters-1 {
		t.Errorf("hot-key hits = %d, want %d (hot key was evicted)", m.Hits, iters-1)
	}
	if m.Misses != iters+1 {
		t.Errorf("misses = %d, want %d", m.Misses, iters+1)
	}
	if m.Size > m.Capacity {
		t.Errorf("size %d exceeds capacity %d", m.Size, m.Capacity)
	}
}

// TestFreqCacheLRUOrder pins per-shard second-chance semantics
// deterministically on a single shard: re-accessing an entry protects
// it, the oldest untouched entry is the victim (LRU order for this
// access pattern).
func TestFreqCacheLRUOrder(t *testing.T) {
	c := &shardedCache{shards: make([]cacheShard, 1)}
	c.shards[0].cap = 2
	c.shards[0].entries = make(map[freqKey]*cacheEntry)
	k := func(i int) freqKey { return freqKey{x: float64(i)} }
	v := poi.FreqVector{1}

	c.put(k(1), v)
	c.put(k(2), v)
	if _, ok := c.get(k(1)); !ok { // 1 becomes MRU
		t.Fatal("k1 missing")
	}
	c.put(k(3), v) // evicts 2, the LRU
	if _, ok := c.get(k(2)); ok {
		t.Error("k2 should have been evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("k1 (recently used) was evicted")
	}
	if _, ok := c.get(k(3)); !ok {
		t.Error("k3 (just inserted) was evicted")
	}
	m := c.metrics()
	if m.Evictions != 1 || m.Size != 2 {
		t.Errorf("evictions=%d size=%d, want 1/2", m.Evictions, m.Size)
	}
}

// TestFreqBatchMatchesSequential proves FreqBatch/QueryBatch are a pure
// fan-out: results in order, identical to one-at-a-time calls.
func TestFreqBatchMatchesSequential(t *testing.T) {
	city := cacheCity(t, 2000, 35)
	svc := NewService(city, 1<<12)
	bare := NewService(city, 0)
	src := rng.New(5)
	reqs := make([]BatchQuery, 300)
	for i := range reqs {
		x, y := src.UniformIn(0, 0, 20_000, 20_000)
		reqs[i] = BatchQuery{L: geo.Point{X: x, Y: y}, R: 400 + float64(i%5)*300}
	}
	freqs := svc.FreqBatch(reqs)
	if len(freqs) != len(reqs) {
		t.Fatalf("FreqBatch returned %d results, want %d", len(freqs), len(reqs))
	}
	for i, f := range freqs {
		if !f.Equal(bare.Freq(reqs[i].L, reqs[i].R)) {
			t.Fatalf("FreqBatch[%d] differs from sequential Freq", i)
		}
	}
	pois := svc.QueryBatch(reqs[:50])
	for i, ps := range pois {
		if len(ps) != len(bare.Query(reqs[i].L, reqs[i].R)) {
			t.Fatalf("QueryBatch[%d] differs from sequential Query", i)
		}
	}
	if got := svc.FreqBatch(nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

// BenchmarkFreqCacheSharded is the cache ablation (DESIGN.md §5): the
// attacks' real access pattern — a hot anchor set re-probed constantly
// while sweep locations stream past once — driven in parallel through
// the sharded second-chance cache and the single-lock clear-all
// baseline. Two effects compound: shards remove lock contention, and
// per-entry eviction keeps the hot set resident where clear-all
// periodically wipes it back to a 0% hit rate.
func BenchmarkFreqCacheSharded(b *testing.B) {
	city := cacheCity(b, 5000, 50)
	const capacity = 512
	src := rng.New(3)
	hot := make([]BatchQuery, 256)
	for i := range hot {
		x, y := src.UniformIn(0, 0, 20_000, 20_000)
		hot[i] = BatchQuery{L: geo.Point{X: x, Y: y}, R: 2000}
	}
	var coldSeq atomic.Int64
	for _, variant := range []struct {
		name  string
		cache func() freqCache
	}{
		{"sharded", func() freqCache { return newShardedCache(capacity) }},
		{"single-lock", func() freqCache { return newSingleLockCache(capacity) }},
	} {
		b.Run(variant.name, func(b *testing.B) {
			svc := newServiceWithCache(city, variant.cache())
			for _, p := range hot {
				svc.Freq(p.L, p.R)
			}
			b.ReportAllocs()
			// 8× GOMAXPROCS goroutines so lock contention shows even on
			// boxes with few cores (a loaded GSP serves far more
			// connections than cores).
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%10 == 9 {
						// One-shot sweep location, never probed again.
						c := coldSeq.Add(1)
						svc.Freq(geo.Point{X: float64(c%997) * 20, Y: float64(c%499) * 40}, 2000)
					} else {
						p := hot[i%len(hot)]
						svc.Freq(p.L, p.R)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkFreqBatch prices the worker-pool fan-out against a serial
// loop over the same uncached probe set.
func BenchmarkFreqBatch(b *testing.B) {
	city := cacheCity(b, 5000, 50)
	src := rng.New(4)
	reqs := make([]BatchQuery, 256)
	for i := range reqs {
		x, y := src.UniformIn(0, 0, 20_000, 20_000)
		reqs[i] = BatchQuery{L: geo.Point{X: x, Y: y}, R: 2000}
	}
	b.Run("batch", func(b *testing.B) {
		svc := NewService(city, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc.FreqBatch(reqs)
		}
	})
	b.Run("sequential", func(b *testing.B) {
		svc := NewService(city, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, rq := range reqs {
				svc.Freq(rq.L, rq.R)
			}
		}
	})
}
