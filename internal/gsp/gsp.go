// Package gsp implements the geo-information service provider of the
// paper's LBS architecture. A City bundles a POI set, its type registry,
// and a spatial index; the Service exposes the single query interface the
// paper assumes — retrieving the POIs (or their type frequency vector)
// within a range of a location:
//
//	P_{l,r} ← Query(l, r)
//	F_{l,r} ← Freq(l, r)
//
// Both the honest users and the adversary consult the same interface; the
// adversary's prior knowledge P is exactly this public service.
package gsp

import (
	"fmt"
	"math"
	"sync/atomic"

	"poiagg/internal/geo"
	"poiagg/internal/index"
	"poiagg/internal/poi"
)

// City is an immutable snapshot of a city's geo-information.
type City struct {
	Name   string
	Bounds geo.Rect
	Types  *poi.TypeTable

	pois     []poi.POI
	byType   [][]poi.POI // POIs grouped by TypeID
	cityFreq poi.FreqVector
	rank     []int // infrequency rank per type (most infrequent = 1)
	idx      index.Index
	cellSize float64 // spatial-index grid cell size in meters
}

// NewCity builds a city from a POI set. The cell size of the spatial index
// defaults to 500 m, a good fit for the paper's 0.5–4 km query ranges.
func NewCity(name string, bounds geo.Rect, types *poi.TypeTable, pois []poi.POI) (*City, error) {
	if types == nil {
		return nil, fmt.Errorf("gsp: city %q: nil type table", name)
	}
	m := types.Len()
	cityFreq := poi.NewFreqVector(m)
	byType := make([][]poi.POI, m)
	cp := make([]poi.POI, len(pois))
	copy(cp, pois)
	for _, p := range cp {
		if p.Type < 0 || int(p.Type) >= m {
			return nil, fmt.Errorf("gsp: city %q: POI %d has unregistered type %d", name, p.ID, p.Type)
		}
		cityFreq[p.Type]++
		byType[p.Type] = append(byType[p.Type], p)
	}
	const cellSize = 500
	return &City{
		Name:     name,
		Bounds:   bounds,
		Types:    types,
		pois:     cp,
		byType:   byType,
		cityFreq: cityFreq,
		rank:     poi.RankByFrequency(cityFreq),
		idx:      index.NewGrid(cp, bounds, cellSize),
		cellSize: cellSize,
	}, nil
}

// M returns the number of POI types in the city.
func (c *City) M() int { return c.Types.Len() }

// WrapIndex replaces the city's spatial index with wrap(current). Load
// generators and tests use it to instrument or pad index lookups — e.g.
// padding CountTypes with fixed CPU work so a small synthetic city
// reproduces the contention behavior of a dense production one. Not safe
// to call concurrently with queries; the wrapped index does not affect
// Fingerprint.
func (c *City) WrapIndex(wrap func(index.Index) index.Index) { c.idx = wrap(c.idx) }

// Fingerprint returns a stable hash of the city's identity — name,
// bounds, type count, and every POI's id/type/position. Two City values
// built from the same inputs fingerprint identically across processes;
// any difference in the data yields (with overwhelming probability) a
// different hash. The tiered freq store keys its snapshots on it so a
// snapshot taken over one city is never trusted for another.
func (c *City) Fingerprint() uint64 {
	h := uint64(0xcbf29ce484222325) // FNV offset basis
	word := func(v uint64) {
		h = mix64(h ^ v)
	}
	for _, b := range []byte(c.Name) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	word(math.Float64bits(c.Bounds.MinX))
	word(math.Float64bits(c.Bounds.MinY))
	word(math.Float64bits(c.Bounds.MaxX))
	word(math.Float64bits(c.Bounds.MaxY))
	word(uint64(c.M()))
	word(uint64(len(c.pois)))
	for _, p := range c.pois {
		word(uint64(p.ID))
		word(uint64(p.Type))
		word(math.Float64bits(p.Pos.X))
		word(math.Float64bits(p.Pos.Y))
	}
	return mix64(h)
}

// NumPOIs returns the number of POIs.
func (c *City) NumPOIs() int { return len(c.pois) }

// POIs returns a copy of the city's POI set.
func (c *City) POIs() []poi.POI {
	out := make([]poi.POI, len(c.pois))
	copy(out, c.pois)
	return out
}

// POIsOfType returns the POIs with the given type. The returned slice is
// shared and must not be modified.
func (c *City) POIsOfType(t poi.TypeID) []poi.POI {
	if t < 0 || int(t) >= len(c.byType) {
		return nil
	}
	return c.byType[t]
}

// CityFreq returns the city-wide type frequency vector F (shared; do not
// modify).
func (c *City) CityFreq() poi.FreqVector { return c.cityFreq }

// InfrequencyRank returns R(i) for every type: the most infrequent type
// city-wide has rank 1. The returned slice is shared and must not be
// modified.
func (c *City) InfrequencyRank() []int { return c.rank }

// Service answers Query and Freq requests for one city, with a bounded
// memoization cache for Freq results. The attacks issue many repeated
// Freq(p, 2r) probes for the same anchor POIs; caching those is what makes
// city-scale attack sweeps tractable (see BenchmarkFreqCache).
//
// The cache is sharded (power-of-two lock shards selected by hashed key,
// per-shard second-chance eviction) so concurrent sweeps scale with the
// core count instead of serializing on one mutex, and a full cache sheds
// cold entries one at a time instead of wiping the hot working set;
// BenchmarkFreqCacheSharded prices the difference against the
// single-lock clear-all baseline.
//
// Misses are coalesced through a singleflight table (singleflight.go):
// when concurrent requests miss the same key, one computes while the
// rest wait and share the result — under duplicate-heavy traffic a hot
// key costs one CountTypes per miss instead of one per requester.
//
// Service is safe for concurrent use.
type Service struct {
	city  *City
	cache freqCache // nil when caching is disabled
	sf    *inflight // nil when singleflight (or caching) is disabled

	// storeRejected/storeWarmed count tiered-store snapshot loads
	// (store.go): entries seeded into the cache, and snapshots refused
	// for failing validation.
	storeRejected atomic.Uint64
	storeWarmed   atomic.Uint64
}

type freqKey struct {
	x, y, r float64
}

// NewService returns a service over city. maxCache bounds the number of
// memoized Freq results; 0 disables caching.
func NewService(city *City, maxCache int) *Service {
	s := &Service{city: city}
	if maxCache > 0 {
		s.cache = newShardedCache(maxCache)
		s.sf = newInflight()
	}
	return s
}

// newServiceWithCache wires an explicit cache implementation — the hook
// the ablation benchmark uses to run the same workload through the
// sharded cache and the single-lock baseline.
func newServiceWithCache(city *City, cache freqCache) *Service {
	return &Service{city: city, cache: cache}
}

// City returns the underlying city.
func (s *Service) City() *City { return s.city }

// Query returns the POIs within radius r of l (the paper's Query(l, r)).
func (s *Service) Query(l geo.Point, r float64) []poi.POI {
	return s.city.idx.Within(nil, l, r)
}

// Freq returns the POI type frequency vector of the POIs within radius r
// of l (the paper's Freq(l, r)). The returned vector is a fresh copy owned
// by the caller. Hot loops that probe Freq repeatedly and discard the
// vector should use FreqInto with a reused buffer instead.
func (s *Service) Freq(l geo.Point, r float64) poi.FreqVector {
	f := poi.NewFreqVector(s.city.M())
	s.FreqInto(f, l, r)
	return f
}

// FreqInto fills out — a caller-owned buffer whose length must equal
// City().M() — with the frequency vector Freq(l, r) would return,
// without allocating: a cache hit is a single copy into the buffer, a
// miss counts directly into it. It is the zero-allocation core of the
// attack kernels, whose pruning loops issue millions of Freq probes and
// discard each vector immediately (Freq itself is a thin wrapper).
func (s *Service) FreqInto(out poi.FreqVector, l geo.Point, r float64) {
	if len(out) != s.city.M() {
		panic(fmt.Sprintf("gsp: FreqInto: buffer dimension %d, city has %d types", len(out), s.city.M()))
	}
	if s.cache == nil {
		clear(out)
		s.city.idx.CountTypes(out, l, r)
		return
	}
	key := freqKey{x: l.X, y: l.Y, r: r}
	if f, ok := s.cache.get(key); ok {
		copy(out, f)
		return
	}
	s.freqMiss(out, key, l, r)
}

// CacheStats returns the number of cache hits and misses so far.
func (s *Service) CacheStats() (hits, misses uint64) {
	if s.cache == nil {
		return 0, 0
	}
	m := s.cache.metrics()
	return m.Hits, m.Misses
}

// CacheMetrics returns the cache's full bookkeeping, including
// per-entry eviction counts and occupancy. The zero value is returned
// when caching is disabled.
func (s *Service) CacheMetrics() CacheMetrics {
	if s.cache == nil {
		return CacheMetrics{}
	}
	return s.cache.metrics()
}
