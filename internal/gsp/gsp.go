// Package gsp implements the geo-information service provider of the
// paper's LBS architecture. A City bundles a POI set, its type registry,
// and a spatial index; the Service exposes the single query interface the
// paper assumes — retrieving the POIs (or their type frequency vector)
// within a range of a location:
//
//	P_{l,r} ← Query(l, r)
//	F_{l,r} ← Freq(l, r)
//
// Both the honest users and the adversary consult the same interface; the
// adversary's prior knowledge P is exactly this public service.
package gsp

import (
	"fmt"
	"sync"

	"poiagg/internal/geo"
	"poiagg/internal/index"
	"poiagg/internal/poi"
)

// City is an immutable snapshot of a city's geo-information.
type City struct {
	Name   string
	Bounds geo.Rect
	Types  *poi.TypeTable

	pois     []poi.POI
	byType   [][]poi.POI // POIs grouped by TypeID
	cityFreq poi.FreqVector
	rank     []int // infrequency rank per type (most infrequent = 1)
	idx      index.Index
}

// NewCity builds a city from a POI set. The cell size of the spatial index
// defaults to 500 m, a good fit for the paper's 0.5–4 km query ranges.
func NewCity(name string, bounds geo.Rect, types *poi.TypeTable, pois []poi.POI) (*City, error) {
	if types == nil {
		return nil, fmt.Errorf("gsp: city %q: nil type table", name)
	}
	m := types.Len()
	cityFreq := poi.NewFreqVector(m)
	byType := make([][]poi.POI, m)
	cp := make([]poi.POI, len(pois))
	copy(cp, pois)
	for _, p := range cp {
		if p.Type < 0 || int(p.Type) >= m {
			return nil, fmt.Errorf("gsp: city %q: POI %d has unregistered type %d", name, p.ID, p.Type)
		}
		cityFreq[p.Type]++
		byType[p.Type] = append(byType[p.Type], p)
	}
	return &City{
		Name:     name,
		Bounds:   bounds,
		Types:    types,
		pois:     cp,
		byType:   byType,
		cityFreq: cityFreq,
		rank:     poi.RankByFrequency(cityFreq),
		idx:      index.NewGrid(cp, bounds, 500),
	}, nil
}

// M returns the number of POI types in the city.
func (c *City) M() int { return c.Types.Len() }

// NumPOIs returns the number of POIs.
func (c *City) NumPOIs() int { return len(c.pois) }

// POIs returns a copy of the city's POI set.
func (c *City) POIs() []poi.POI {
	out := make([]poi.POI, len(c.pois))
	copy(out, c.pois)
	return out
}

// POIsOfType returns the POIs with the given type. The returned slice is
// shared and must not be modified.
func (c *City) POIsOfType(t poi.TypeID) []poi.POI {
	if t < 0 || int(t) >= len(c.byType) {
		return nil
	}
	return c.byType[t]
}

// CityFreq returns the city-wide type frequency vector F (shared; do not
// modify).
func (c *City) CityFreq() poi.FreqVector { return c.cityFreq }

// InfrequencyRank returns R(i) for every type: the most infrequent type
// city-wide has rank 1. The returned slice is shared and must not be
// modified.
func (c *City) InfrequencyRank() []int { return c.rank }

// Service answers Query and Freq requests for one city, with a bounded
// memoization cache for Freq results. The attacks issue many repeated
// Freq(p, 2r) probes for the same anchor POIs; caching those is what makes
// city-scale attack sweeps tractable (see BenchmarkFreqCache).
//
// Service is safe for concurrent use.
type Service struct {
	city *City

	mu       sync.Mutex
	cache    map[freqKey]poi.FreqVector
	maxCache int
	hits     uint64
	misses   uint64
}

type freqKey struct {
	x, y, r float64
}

// NewService returns a service over city. maxCache bounds the number of
// memoized Freq results; 0 disables caching.
func NewService(city *City, maxCache int) *Service {
	return &Service{
		city:     city,
		cache:    make(map[freqKey]poi.FreqVector, min(maxCache, 4096)),
		maxCache: maxCache,
	}
}

// City returns the underlying city.
func (s *Service) City() *City { return s.city }

// Query returns the POIs within radius r of l (the paper's Query(l, r)).
func (s *Service) Query(l geo.Point, r float64) []poi.POI {
	return s.city.idx.Within(nil, l, r)
}

// Freq returns the POI type frequency vector of the POIs within radius r
// of l (the paper's Freq(l, r)). The returned vector is a fresh copy owned
// by the caller.
func (s *Service) Freq(l geo.Point, r float64) poi.FreqVector {
	key := freqKey{x: l.X, y: l.Y, r: r}
	if s.maxCache > 0 {
		s.mu.Lock()
		if f, ok := s.cache[key]; ok {
			s.hits++
			s.mu.Unlock()
			return f.Clone()
		}
		s.misses++
		s.mu.Unlock()
	}
	f := poi.NewFreqVector(s.city.M())
	s.city.idx.CountTypes(f, l, r)
	if s.maxCache > 0 {
		s.mu.Lock()
		if len(s.cache) >= s.maxCache {
			clear(s.cache)
		}
		s.cache[key] = f.Clone()
		s.mu.Unlock()
	}
	return f
}

// CacheStats returns the number of cache hits and misses so far.
func (s *Service) CacheStats() (hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}
