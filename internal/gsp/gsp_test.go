package gsp

import (
	"fmt"
	"sync"
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

func testCity(t *testing.T) *City {
	t.Helper()
	types := poi.NewTypeTable()
	rest := types.Intern("restaurant")
	pharm := types.Intern("pharmacy")
	museum := types.Intern("museum")
	pois := []poi.POI{
		{ID: 0, Type: rest, Pos: geo.Point{X: 100, Y: 100}},
		{ID: 1, Type: rest, Pos: geo.Point{X: 200, Y: 100}},
		{ID: 2, Type: pharm, Pos: geo.Point{X: 150, Y: 150}},
		{ID: 3, Type: museum, Pos: geo.Point{X: 900, Y: 900}},
	}
	city, err := NewCity("test", geo.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}, types, pois)
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestNewCityValidation(t *testing.T) {
	if _, err := NewCity("x", geo.Rect{}, nil, nil); err == nil {
		t.Error("nil type table accepted")
	}
	types := poi.NewTypeTable()
	types.Intern("a")
	bad := []poi.POI{{ID: 0, Type: 5, Pos: geo.Point{}}}
	if _, err := NewCity("x", geo.Rect{MaxX: 1, MaxY: 1}, types, bad); err == nil {
		t.Error("unregistered type accepted")
	}
}

func TestCityStats(t *testing.T) {
	city := testCity(t)
	if city.M() != 3 {
		t.Errorf("M = %d", city.M())
	}
	if city.NumPOIs() != 4 {
		t.Errorf("NumPOIs = %d", city.NumPOIs())
	}
	if !city.CityFreq().Equal(poi.FreqVector{2, 1, 1}) {
		t.Errorf("CityFreq = %v", city.CityFreq())
	}
	rank := city.InfrequencyRank()
	// pharmacy (ID 1) and museum (ID 2) tie at freq 1; lower ID ranks first.
	if rank[1] != 1 || rank[2] != 2 || rank[0] != 3 {
		t.Errorf("rank = %v", rank)
	}
	if got := city.POIsOfType(0); len(got) != 2 {
		t.Errorf("POIsOfType(0) = %v", got)
	}
	if got := city.POIsOfType(99); got != nil {
		t.Errorf("POIsOfType(99) = %v", got)
	}
}

func TestQueryAndFreq(t *testing.T) {
	city := testCity(t)
	svc := NewService(city, 100)
	got := svc.Query(geo.Point{X: 150, Y: 120}, 100)
	if len(got) != 3 {
		t.Errorf("Query returned %d POIs, want 3", len(got))
	}
	f := svc.Freq(geo.Point{X: 150, Y: 120}, 100)
	if !f.Equal(poi.FreqVector{2, 1, 0}) {
		t.Errorf("Freq = %v", f)
	}
}

func TestFreqCache(t *testing.T) {
	city := testCity(t)
	svc := NewService(city, 10)
	l := geo.Point{X: 150, Y: 120}
	f1 := svc.Freq(l, 100)
	f2 := svc.Freq(l, 100)
	if !f1.Equal(f2) {
		t.Error("cached result differs")
	}
	hits, misses := svc.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	// Mutating the returned vector must not poison the cache.
	f1[0] = 999
	f3 := svc.Freq(l, 100)
	if f3[0] == 999 {
		t.Error("cache aliased with caller vector")
	}
}

func TestFreqCacheDisabled(t *testing.T) {
	city := testCity(t)
	svc := NewService(city, 0)
	l := geo.Point{X: 150, Y: 120}
	svc.Freq(l, 100)
	svc.Freq(l, 100)
	hits, misses := svc.CacheStats()
	if hits != 0 || misses != 0 {
		t.Errorf("disabled cache recorded hits=%d misses=%d", hits, misses)
	}
}

func TestFreqCacheEviction(t *testing.T) {
	city := testCity(t)
	svc := NewService(city, 2)
	for i := 0; i < 10; i++ {
		svc.Freq(geo.Point{X: float64(i), Y: 0}, 100)
	}
	// Must not grow unbounded; just verify correctness after eviction.
	f := svc.Freq(geo.Point{X: 150, Y: 120}, 100)
	if !f.Equal(poi.FreqVector{2, 1, 0}) {
		t.Errorf("Freq after eviction = %v", f)
	}
}

func TestServiceConcurrent(t *testing.T) {
	city := testCity(t)
	svc := NewService(city, 50)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l := geo.Point{X: float64((g * i) % 300), Y: float64(i % 300)}
				f := svc.Freq(l, 150)
				if len(f) != 3 {
					t.Errorf("bad vector length %d", len(f))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFreqIntoMatchesFreq pins the zero-allocation FreqInto path to the
// allocating Freq path across cache-on/cache-off services and cache
// hit/miss sequences — the differential for the tentpole's gsp layer.
func TestFreqIntoMatchesFreq(t *testing.T) {
	city := testCity(t)
	for _, cacheCap := range []int{0, 10} {
		svc := NewService(city, cacheCap)
		src := rng.New(21)
		out := poi.NewFreqVector(city.M())
		for trial := 0; trial < 100; trial++ {
			// Revisit a small set of locations so the cached service
			// exercises both miss (first visit) and hit (revisit) paths.
			x := float64(src.IntN(5)) * 100
			y := float64(src.IntN(5)) * 100
			l := geo.Point{X: x, Y: y}
			r := float64(50 + src.IntN(3)*100)
			want := svc.Freq(l, r)
			// Poison the buffer: FreqInto must fully overwrite it.
			for i := range out {
				out[i] = -77
			}
			svc.FreqInto(out, l, r)
			if !out.Equal(want) {
				t.Fatalf("cache=%d trial %d: FreqInto %v != Freq %v", cacheCap, trial, out, want)
			}
		}
	}
}

// TestFreqIntoBufferNotAliased verifies a cached entry never aliases the
// caller's buffer: mutating the buffer after FreqInto must not poison
// later reads of the same key.
func TestFreqIntoBufferNotAliased(t *testing.T) {
	city := testCity(t)
	svc := NewService(city, 10)
	l := geo.Point{X: 150, Y: 120}
	out := poi.NewFreqVector(city.M())
	svc.FreqInto(out, l, 100) // miss: fills the cache from out
	out[0] = 999
	if f := svc.Freq(l, 100); f[0] == 999 {
		t.Error("cache aliased FreqInto buffer")
	}
	svc.FreqInto(out, l, 100) // hit: copies from the cache
	if out[0] == 999 {
		t.Error("cache hit did not overwrite buffer")
	}
}

func TestFreqIntoWrongLengthPanics(t *testing.T) {
	city := testCity(t)
	svc := NewService(city, 10)
	defer func() {
		if recover() == nil {
			t.Error("FreqInto with wrong-length buffer did not panic")
		}
	}()
	svc.FreqInto(poi.NewFreqVector(city.M()+1), geo.Point{X: 1, Y: 1}, 100)
}

func TestPOIsCopy(t *testing.T) {
	city := testCity(t)
	ps := city.POIs()
	ps[0].Pos = geo.Point{X: -1, Y: -1}
	if city.POIs()[0].Pos == (geo.Point{X: -1, Y: -1}) {
		t.Error("POIs leaked internal slice")
	}
}

// BenchmarkFreqCache is the GSP cache ablation from DESIGN.md: the
// attacks re-probe the same anchor POIs, so the memoized path should beat
// the uncached path by a wide margin.
func BenchmarkFreqCache(b *testing.B) {
	types := poi.NewTypeTable()
	for i := 0; i < 50; i++ {
		types.Intern(fmt.Sprintf("t%d", i))
	}
	pois := make([]poi.POI, 5000)
	src := rng.New(1)
	for i := range pois {
		x, y := src.UniformIn(0, 0, 20_000, 20_000)
		pois[i] = poi.POI{ID: poi.ID(i), Type: poi.TypeID(src.IntN(50)), Pos: geo.Point{X: x, Y: y}}
	}
	city, err := NewCity("bench", geo.Rect{MaxX: 20_000, MaxY: 20_000}, types, pois)
	if err != nil {
		b.Fatal(err)
	}
	l := geo.Point{X: 10_000, Y: 10_000}
	b.Run("cached", func(b *testing.B) {
		svc := NewService(city, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc.Freq(l, 2000)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		svc := NewService(city, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc.Freq(l, 2000)
		}
	})
}
