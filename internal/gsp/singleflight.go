package gsp

// Singleflight miss coalescing for the Freq cache. Under duplicate-heavy
// traffic — thousands of concurrent clients probing the same hot
// (location, radius) keys — a cache miss used to fan out into one
// CountTypes computation *per concurrent requester*: every goroutine that
// missed between the first miss and its cache fill recomputed the same
// vector. The inflight table collapses that: exactly one goroutine (the
// leader) computes a missing key while concurrent duplicates (joiners)
// block on the call and copy the leader's result out when it lands.
//
// The table is sharded like the freq cache, so leaders registering and
// joiners subscribing contend only when their keys collide on a shard.
// Lock order is inflight shard → cache shard (the leader re-checks the
// cache under the inflight lock); the reverse edge never occurs — no
// cache-lock holder touches the inflight table.
//
// The cache's private-vector contract is preserved: the leader computes
// into its caller's buffer, installs one clone in the cache, and
// publishes that same clone to joiners, each of which copies it into its
// own buffer. Nobody ever hands out a shared mutable slice.
//
// A leader that panics (a poisoned index, a bug) must not poison its
// joiners: the call is unregistered and completed by a defer with its ok
// flag still false, and each joiner falls back to computing the key
// itself. The panic propagates only to the leader's own caller.

import (
	"sync"
	"sync/atomic"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// Singleflight metric names registered by Service.ExportMetrics.
const (
	MetricSFLeader = "gsp.singleflight.leader"
	MetricSFShared = "gsp.singleflight.shared"
	MetricSFHits   = "gsp.singleflight.hits"
)

// sfCall is one in-flight Freq computation. val and ok are written by
// the leader before done closes and never after, so joiners may read
// them lock-free once done is closed.
type sfCall struct {
	done chan struct{}
	val  poi.FreqVector // the clone installed in the cache; read-only
	ok   bool           // false when the leader panicked before finishing
}

// inflight is the per-key duplicate-miss table.
type inflight struct {
	shards []inflightShard
	mask   uint64

	// leader counts misses that computed (one per collapsed group, plus
	// every uncontended miss). hits counts misses that found their key
	// already in flight and joined. shared counts joiners that received
	// the leader's result — hits minus shared is the fallback count
	// after leader panics, normally zero.
	leader atomic.Uint64
	hits   atomic.Uint64
	shared atomic.Uint64
}

type inflightShard struct {
	mu    sync.Mutex
	calls map[freqKey]*sfCall
}

func newInflight() *inflight {
	// Shard purely by parallelism — the table holds only in-flight
	// misses, so capacity never constrains the count.
	n := shardCountFor(1 << 30)
	t := &inflight{shards: make([]inflightShard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].calls = make(map[freqKey]*sfCall)
	}
	return t
}

// SingleflightMetrics is a point-in-time view of the miss coalescer.
type SingleflightMetrics struct {
	// Leader counts misses that ran CountTypes themselves.
	Leader uint64
	// Hits counts misses that joined an already-in-flight computation.
	Hits uint64
	// Shared counts joiners that received the leader's result; it lags
	// Hits only when a leader panicked and its joiners fell back.
	Shared uint64
}

// SingleflightMetrics returns the coalescer's counters; the zero value
// when singleflight is disabled.
func (s *Service) SingleflightMetrics() SingleflightMetrics {
	sf := s.sf
	if sf == nil {
		return SingleflightMetrics{}
	}
	return SingleflightMetrics{
		Leader: sf.leader.Load(),
		Hits:   sf.hits.Load(),
		Shared: sf.shared.Load(),
	}
}

// SetSingleflight enables or disables miss coalescing (enabled by
// default whenever caching is on). It exists for the ablation benchmarks
// and loadgen's singleflight-off comparison runs, and must not be called
// concurrently with queries. A no-op when caching is disabled —
// coalescing without a cache to fill would leave joiners nothing to
// share.
func (s *Service) SetSingleflight(on bool) {
	if !on || s.cache == nil {
		s.sf = nil
		return
	}
	if s.sf == nil {
		s.sf = newInflight()
	}
}

// computeInto fills out with a fresh CountTypes result, installs a clone
// in the cache, and returns that clone.
func (s *Service) computeInto(out poi.FreqVector, key freqKey, l geo.Point, r float64) poi.FreqVector {
	clear(out)
	s.city.idx.CountTypes(out, l, r)
	f := out.Clone()
	s.cache.put(key, f)
	return f
}

// freqMiss resolves a cache miss, collapsing concurrent duplicates onto
// one computation when singleflight is enabled.
func (s *Service) freqMiss(out poi.FreqVector, key freqKey, l geo.Point, r float64) {
	sf := s.sf
	if sf == nil {
		s.computeInto(out, key, l, r)
		return
	}
	sh := &sf.shards[key.hash()&sf.mask]
	sh.mu.Lock()
	if c, ok := sh.calls[key]; ok {
		sh.mu.Unlock()
		sf.hits.Add(1)
		<-c.done
		if c.ok {
			sf.shared.Add(1)
			copy(out, c.val)
			return
		}
		// The leader panicked; its panic is not ours to re-raise (our
		// own compute may well succeed), so fall back to computing
		// independently.
		s.computeInto(out, key, l, r)
		return
	}
	// Re-check the cache before becoming leader: a previous leader may
	// have filled the key between our miss and taking the shard lock
	// (put happens before the call is unregistered, so if the call is
	// gone the value is visible). Without this, that window would admit
	// a second compute of the same key.
	if f, ok := s.cache.peek(key); ok {
		sh.mu.Unlock()
		copy(out, f)
		return
	}
	c := &sfCall{done: make(chan struct{})}
	sh.calls[key] = c
	sh.mu.Unlock()
	sf.leader.Add(1)
	defer func() {
		sh.mu.Lock()
		delete(sh.calls, key)
		sh.mu.Unlock()
		close(c.done)
	}()
	c.val = s.computeInto(out, key, l, r)
	c.ok = true
}
