package gsp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/index"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// countingIndex wraps an index and counts CountTypes invocations — the
// instrument that proves "exactly one compute per key".
type countingIndex struct {
	index.Index
	n atomic.Int64
}

func (ci *countingIndex) CountTypes(out poi.FreqVector, center geo.Point, radius float64) {
	ci.n.Add(1)
	ci.Index.CountTypes(out, center, radius)
}

// instrument swaps a counting index into the city and returns the
// counter. Tests own the city, so mutating the private field is safe.
func instrument(city *City) *countingIndex {
	ci := &countingIndex{Index: city.idx}
	city.idx = ci
	return ci
}

// TestSingleflightCollapsesConcurrentMisses is the torture test: rounds
// of fresh keys, each hammered by many goroutines released together, and
// every round must cost exactly one CountTypes per key. Run under -race
// this is also the inflight table's data-race proof.
func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	city := cacheCity(t, 3000, 40)
	ci := instrument(city)
	svc := NewService(city, 1<<16)
	bare := NewService(city, 0)

	const (
		rounds     = 20
		keysPer    = 4
		goroutines = 16
	)
	src := rng.New(41)
	for round := 0; round < rounds; round++ {
		keys := make([]BatchQuery, keysPer)
		want := make([]poi.FreqVector, keysPer)
		for i := range keys {
			x, y := src.UniformIn(0, 0, 20_000, 20_000)
			keys[i] = BatchQuery{L: geo.Point{X: x, Y: y}, R: 600 + float64(i)*300}
			want[i] = bare.Freq(keys[i].L, keys[i].R)
		}
		before := ci.n.Load()

		var start, done sync.WaitGroup
		start.Add(1)
		errs := make(chan error, goroutines*keysPer)
		for g := 0; g < goroutines; g++ {
			done.Add(1)
			go func() {
				defer done.Done()
				start.Wait()
				out := poi.NewFreqVector(city.M())
				for i, k := range keys {
					svc.FreqInto(out, k.L, k.R)
					if !out.Equal(want[i]) {
						errs <- fmt.Errorf("key %d: got %v want %v", i, out, want[i])
					}
				}
			}()
		}
		start.Done()
		done.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		// before was sampled after the bare reference computes, so the
		// delta counts only svc's computes.
		if got := ci.n.Load() - before; got != keysPer {
			t.Fatalf("round %d: %d computes for %d keys, want exactly 1 per key", round, got, keysPer)
		}
	}
	m := svc.SingleflightMetrics()
	if m.Leader == 0 {
		t.Error("no leaders recorded")
	}
	if m.Hits != m.Shared {
		t.Errorf("hits=%d shared=%d: joiners lost a leader result without any panic", m.Hits, m.Shared)
	}
	t.Logf("leader=%d joined=%d shared=%d", m.Leader, m.Hits, m.Shared)
}

// panicOnceIndex panics on the first CountTypes call and answers
// normally afterwards — the poisoned-leader scenario.
type panicOnceIndex struct {
	index.Index
	tripped atomic.Bool
}

func (p *panicOnceIndex) CountTypes(out poi.FreqVector, center geo.Point, radius float64) {
	if p.tripped.CompareAndSwap(false, true) {
		panic("singleflight test: leader poisoned")
	}
	p.Index.CountTypes(out, center, radius)
}

// TestSingleflightLeaderPanicDoesNotPoisonWaiters arranges a leader
// whose compute panics while joiners wait on it: the panic must reach
// only the leader's caller, every joiner must fall back and return the
// correct vector, and the inflight table must not leak the dead call
// (a later request for the key must succeed normally).
func TestSingleflightLeaderPanicDoesNotPoisonWaiters(t *testing.T) {
	city := cacheCity(t, 2000, 30)
	want := NewService(city, 0).Freq(geo.Point{X: 5000, Y: 5000}, 800)
	city.idx = &panicOnceIndex{Index: city.idx}
	svc := NewService(city, 1<<10)

	const goroutines = 12
	l := geo.Point{X: 5000, Y: 5000}
	var panics atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		done.Add(1)
		go func() {
			defer done.Done()
			defer func() {
				if recover() != nil {
					panics.Add(1)
				}
			}()
			start.Wait()
			if f := svc.Freq(l, 800); !f.Equal(want) {
				errs <- fmt.Errorf("got %v want %v", f, want)
			}
		}()
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := panics.Load(); got != 1 {
		t.Errorf("%d goroutines observed the panic, want exactly the leader (1)", got)
	}
	// The dead call must be unregistered: a fresh request works.
	if f := svc.Freq(l, 800); !f.Equal(want) {
		t.Errorf("post-panic request: got %v want %v", f, want)
	}
	m := svc.SingleflightMetrics()
	if m.Hits < m.Shared {
		t.Errorf("shared=%d exceeds joins=%d", m.Shared, m.Hits)
	}
}

// TestSingleflightWaiterMutationIsolated has every concurrent requester
// scribble over the vector it received; the cache and every other
// requester must be unaffected — the copy-out-per-waiter contract.
func TestSingleflightWaiterMutationIsolated(t *testing.T) {
	city := cacheCity(t, 2000, 30)
	svc := NewService(city, 1<<10)
	l := geo.Point{X: 7000, Y: 7000}
	want := NewService(city, 0).Freq(l, 900)

	const goroutines = 16
	var start, done sync.WaitGroup
	start.Add(1)
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		done.Add(1)
		go func(g int) {
			defer done.Done()
			start.Wait()
			f := svc.Freq(l, 900)
			if !f.Equal(want) {
				errs <- fmt.Errorf("goroutine %d: got %v want %v", g, f, want)
				return
			}
			for i := range f {
				f[i] = -g // scribble
			}
		}(g)
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if f := svc.Freq(l, 900); !f.Equal(want) {
		t.Errorf("cache corrupted by waiter mutation: got %v want %v", f, want)
	}
}

// TestSingleflightDisabled proves SetSingleflight(false) reverts to the
// independent-compute behavior and the toggle round-trips.
func TestSingleflightDisabled(t *testing.T) {
	city := cacheCity(t, 1000, 20)
	ci := instrument(city)
	svc := NewService(city, 1<<10)
	svc.SetSingleflight(false)
	l := geo.Point{X: 3000, Y: 3000}
	svc.Freq(l, 500)
	svc.Freq(l, 500)
	if got := ci.n.Load(); got != 1 {
		t.Errorf("%d computes, want 1 (cache still works without singleflight)", got)
	}
	if m := svc.SingleflightMetrics(); m != (SingleflightMetrics{}) {
		t.Errorf("disabled singleflight recorded %+v", m)
	}
	svc.SetSingleflight(true)
	svc.Freq(geo.Point{X: 4000, Y: 4000}, 500)
	if m := svc.SingleflightMetrics(); m.Leader != 1 {
		t.Errorf("re-enabled singleflight recorded leader=%d, want 1", m.Leader)
	}
}

// TestFreqBatchDedupesDuplicateItems is the satellite fix's proof: a
// batch full of duplicate (L, R) items computes each unique key exactly
// once, preserves order, and hands every index its own private vector.
func TestFreqBatchDedupesDuplicateItems(t *testing.T) {
	city := cacheCity(t, 2000, 30)
	ci := instrument(city)
	svc := NewService(city, 1<<10)
	bare := NewService(city, 0)

	uniq := []BatchQuery{
		{L: geo.Point{X: 1000, Y: 1000}, R: 500},
		{L: geo.Point{X: 9000, Y: 4000}, R: 800},
		{L: geo.Point{X: 15000, Y: 12000}, R: 1200},
	}
	want := make([]poi.FreqVector, len(uniq))
	for i, q := range uniq {
		want[i] = bare.Freq(q.L, q.R)
	}
	// 60 items cycling through 3 unique keys. The reference computes
	// above also ran through ci, so count from here.
	start := ci.n.Load()
	reqs := make([]BatchQuery, 60)
	for i := range reqs {
		reqs[i] = uniq[i%len(uniq)]
	}
	out := svc.FreqBatch(reqs)
	if got := ci.n.Load() - start; got != int64(len(uniq)) {
		t.Fatalf("%d computes for %d unique keys", got, len(uniq))
	}
	for i, f := range out {
		if !f.Equal(want[i%len(uniq)]) {
			t.Fatalf("item %d: got %v want %v", i, f, want[i%len(uniq)])
		}
	}
	// Results must not alias: scribbling one leaves its duplicates intact.
	out[0][0] = -777
	if out[3][0] == -777 || out[len(out)-len(uniq)][0] == -777 {
		t.Error("duplicate items share a vector")
	}
	// A second identical batch is all cache hits — zero new computes.
	before := ci.n.Load()
	svc.FreqBatch(reqs)
	if got := ci.n.Load() - before; got != 0 {
		t.Errorf("repeat batch recomputed %d keys", got)
	}
}

// BenchmarkFreqSingleflight prices the miss coalescer on both shapes of
// the hot path: uncontended misses (pure bookkeeping overhead on top of
// the compute) and contended misses (8 goroutines requesting the same
// fresh key — the duplicate-collapse payoff, one compute shared 8 ways).
func BenchmarkFreqSingleflight(b *testing.B) {
	city := cacheCity(b, 20_000, 60)
	b.Run("uncontended", func(b *testing.B) {
		svc := NewService(city, 1<<16)
		out := poi.NewFreqVector(city.M())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Monotone radius keeps every key a fresh miss.
			svc.FreqInto(out, geo.Point{X: 10_000, Y: 10_000}, 500+float64(i)*1e-6)
		}
	})
	b.Run("contended", func(b *testing.B) {
		const workers = 8
		svc := NewService(city, 1<<16)
		outs := make([]poi.FreqVector, workers)
		for w := range outs {
			outs[w] = poi.NewFreqVector(city.M())
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l := geo.Point{X: 10_000, Y: 10_000}
			r := 500 + float64(i)*1e-6
			var done sync.WaitGroup
			for w := 0; w < workers; w++ {
				done.Add(1)
				go func(w int) {
					defer done.Done()
					svc.FreqInto(outs[w], l, r)
				}(w)
			}
			done.Wait()
		}
		m := svc.SingleflightMetrics()
		b.ReportMetric(float64(m.Shared)/float64(b.N), "shared/op")
	})
}
