package gsp

// Disk-backed tier for the freq cache. A daemon that restarts starts
// stone-cold: every hot (location, radius) vector the previous process
// spent hours accumulating must be recomputed from the spatial index.
// The store fixes that by snapshotting the cache's hottest entries to a
// flat binary file on a cadence (and on SIGTERM), and seeding a cold
// cache from the snapshot on boot — a warm start serves its first hot
// hit from RAM without touching the index.
//
// # Snapshot format (version 1, little-endian throughout)
//
//	offset  size  field
//	0       8     magic "POIFRQS1"
//	8       4     format version (uint32, = 1)
//	12      4     M — freq vector length (uint32)
//	16      8     city fingerprint (uint64, City.Fingerprint)
//	24      8     spatial-index grid cell size in meters (float64)
//	32      8     entry count (uint64)
//	40      8     record checksum (uint64, FNV-1a+mix64 over all records)
//	48      —     count records, each 24+4·M bytes:
//	              x float64 | y float64 | r float64 | M × uint32 counts
//
// Records are fixed width, so entry i lives at 48 + i·(24+4M) — the
// layout is mmap-friendly: a reader may map the file and address any
// record without parsing its predecessors. Entries are ordered hottest
// first, so a truncated prefix (by a smaller -store-top, not by
// corruption) would still be the most valuable slice.
//
// # Trust
//
// A snapshot is a cache of derivable state, so it is validated, never
// trusted: the header must carry the exact magic, version, M, grid cell
// size, and city fingerprint of the serving city, the byte length must
// equal header + count·recordSize exactly, and the record bytes must
// hash to the header's checksum. Any mismatch — a stale snapshot from
// yesterday's city build, a flipped byte in the header *or* in a
// record's counts, a torn write, a zero-length file — rejects the whole
// file with ErrStoreInvalid and the daemon falls back to a cold
// compute; it can never serve wrong vectors.
// Writes go through the atomic temp+fsync+rename pattern (the same as
// internal/budget/persist.go), so a crash mid-snapshot leaves the
// previous valid snapshot in place.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// Store metric names registered by Service.ExportMetrics.
const (
	MetricStoreWarmed   = "gsp.store.warmed"
	MetricStoreRejected = "gsp.store.rejected"
)

// ErrStoreInvalid is wrapped by every snapshot-validation failure:
// corrupt, truncated, or keyed to a different city or grid.
var ErrStoreInvalid = errors.New("gsp: invalid freq store")

const (
	storeMagic      = "POIFRQS1"
	storeVersion    = 1
	storeHeaderSize = 48
)

// storeChecksum hashes the record region: FNV-1a over 8-byte words
// (byte-wise over the sub-word tail) with a splitmix64 finalizer,
// matching the hashing used elsewhere in the package. Word-wise keeps
// the warm-start validation cost far below the compute it saves. Not
// cryptographic — it guards against bit rot and torn writes, not an
// adversary with write access to the store directory.
func storeChecksum(records []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for len(records) >= 8 {
		h = mix64(h ^ binary.LittleEndian.Uint64(records))
		records = records[8:]
	}
	for _, b := range records {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return mix64(h)
}

// StoreEntry is one persisted freq-cache entry.
type StoreEntry struct {
	L    geo.Point
	R    float64
	Freq poi.FreqVector
}

// storeRecordSize is the fixed width of one record for an m-type city.
func storeRecordSize(m int) int { return 24 + 4*m }

// WriteStore atomically persists entries for city to path: the document
// is written to a temp file, fsynced, and renamed into place, so readers
// only ever observe a complete snapshot. Every entry's vector length
// must equal city.M().
func WriteStore(path string, city *City, entries []StoreEntry) error {
	m := city.M()
	recs := make([]byte, 0, len(entries)*storeRecordSize(m))
	for _, e := range entries {
		if len(e.Freq) != m {
			return fmt.Errorf("gsp: WriteStore: entry vector has %d types, city has %d", len(e.Freq), m)
		}
		recs = binary.LittleEndian.AppendUint64(recs, math.Float64bits(e.L.X))
		recs = binary.LittleEndian.AppendUint64(recs, math.Float64bits(e.L.Y))
		recs = binary.LittleEndian.AppendUint64(recs, math.Float64bits(e.R))
		for _, n := range e.Freq {
			recs = binary.LittleEndian.AppendUint32(recs, uint32(n))
		}
	}
	buf := make([]byte, 0, storeHeaderSize+len(recs))
	buf = append(buf, storeMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, storeVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	buf = binary.LittleEndian.AppendUint64(buf, city.Fingerprint())
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(city.cellSize))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(entries)))
	buf = binary.LittleEndian.AppendUint64(buf, storeChecksum(recs))
	buf = append(buf, recs...)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("gsp: write freq store: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("gsp: write freq store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("gsp: sync freq store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("gsp: close freq store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("gsp: publish freq store: %w", err)
	}
	return nil
}

// ReadStore loads and validates a snapshot for city. Every validation
// failure wraps ErrStoreInvalid; a missing file surfaces as fs.ErrNotExist.
func ReadStore(path string, city *City) ([]StoreEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	reject := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrStoreInvalid, path, fmt.Sprintf(format, args...))
	}
	if len(data) < storeHeaderSize {
		return nil, reject("%d bytes, need a %d-byte header", len(data), storeHeaderSize)
	}
	if string(data[:8]) != storeMagic {
		return nil, reject("bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != storeVersion {
		return nil, reject("format version %d, want %d", v, storeVersion)
	}
	m := city.M()
	if fm := binary.LittleEndian.Uint32(data[12:]); int(fm) != m {
		return nil, reject("vectors have %d types, city has %d", fm, m)
	}
	if fp := binary.LittleEndian.Uint64(data[16:]); fp != city.Fingerprint() {
		return nil, reject("city fingerprint %016x, serving city is %016x", fp, city.Fingerprint())
	}
	if cs := math.Float64frombits(binary.LittleEndian.Uint64(data[24:])); cs != city.cellSize {
		return nil, reject("grid cell size %g, serving index uses %g", cs, city.cellSize)
	}
	count := binary.LittleEndian.Uint64(data[32:])
	rec := storeRecordSize(m)
	want := uint64(storeHeaderSize) + count*uint64(rec)
	if count > uint64(len(data)) || want != uint64(len(data)) {
		return nil, reject("%d bytes for %d records, want %d (truncated or padded)", len(data), count, want)
	}
	if sum := binary.LittleEndian.Uint64(data[40:]); sum != storeChecksum(data[storeHeaderSize:]) {
		return nil, reject("record checksum %016x does not match contents", sum)
	}
	entries := make([]StoreEntry, count)
	off := storeHeaderSize
	for i := range entries {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		r := math.Float64frombits(binary.LittleEndian.Uint64(data[off+16:]))
		if !isFiniteF(x) || !isFiniteF(y) || !isFiniteF(r) || r <= 0 {
			return nil, reject("record %d has non-finite or non-positive key", i)
		}
		f := poi.NewFreqVector(m)
		for j := range f {
			f[j] = int(binary.LittleEndian.Uint32(data[off+24+4*j:]))
		}
		entries[i] = StoreEntry{L: geo.Point{X: x, Y: y}, R: r, Freq: f}
		off += rec
	}
	return entries, nil
}

func isFiniteF(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// HotEntries returns up to n of the cache's entries ordered hottest
// first (by per-entry hit count, ties broken by key for determinism).
// The returned vectors are fresh copies owned by the caller. Nil when
// caching is disabled.
func (s *Service) HotEntries(n int) []StoreEntry {
	if s.cache == nil {
		return nil
	}
	hot := s.cache.hottest(n)
	out := make([]StoreEntry, len(hot))
	for i, e := range hot {
		out[i] = StoreEntry{
			L:    geo.Point{X: e.key.x, Y: e.key.y},
			R:    e.key.r,
			Freq: e.val.Clone(),
		}
	}
	return out
}

// SaveStore snapshots the cache's top-n hottest entries to path (see
// WriteStore for atomicity) and returns how many it wrote. Safe to call
// while the service keeps answering queries. No-op when caching is
// disabled.
func (s *Service) SaveStore(path string, n int) (int, error) {
	if s.cache == nil {
		return 0, nil
	}
	entries := s.HotEntries(n)
	if err := WriteStore(path, s.city, entries); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// WarmStart seeds the cache from a snapshot at path, returning how many
// entries it installed. A missing file is a normal cold start: (0, nil).
// A snapshot that fails validation bumps the gsp.store.rejected counter
// and returns the wrapped ErrStoreInvalid — the cache is left untouched
// and every key falls back to cold compute. No-op when caching is
// disabled.
func (s *Service) WarmStart(path string) (int, error) {
	if s.cache == nil {
		return 0, nil
	}
	entries, err := ReadStore(path, s.city)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		s.storeRejected.Add(1)
		return 0, err
	}
	for _, e := range entries {
		// ReadStore built the vectors fresh, so ownership transfers to
		// the cache without another clone.
		s.cache.put(freqKey{x: e.L.X, y: e.L.Y, r: e.R}, e.Freq)
	}
	s.storeWarmed.Add(uint64(len(entries)))
	return len(entries), nil
}

// StoreFileName is the snapshot file the daemons keep under -store-dir.
const StoreFileName = "freqstore.bin"

// StorePath returns the snapshot path for a store directory.
func StorePath(dir string) string { return filepath.Join(dir, StoreFileName) }
