package gsp

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// storeFixture builds a city, a service whose cache holds computed
// entries for keys, and the per-key reference vectors.
func storeFixture(t *testing.T, numKeys int) (*City, *Service, []BatchQuery) {
	t.Helper()
	city := cacheCity(t, 3000, 40)
	svc := NewService(city, 1<<16)
	src := rng.New(55)
	keys := make([]BatchQuery, numKeys)
	for i := range keys {
		x, y := src.UniformIn(0, 0, 20_000, 20_000)
		keys[i] = BatchQuery{L: geo.Point{X: x, Y: y}, R: 500 + float64(i%5)*250}
		svc.Freq(keys[i].L, keys[i].R)
	}
	return city, svc, keys
}

func TestStoreRoundTrip(t *testing.T) {
	city, svc, keys := storeFixture(t, 32)
	// Touch a few keys extra so hit ranking has something to order by.
	for i := 0; i < 8; i++ {
		svc.Freq(keys[i].L, keys[i].R)
	}
	path := filepath.Join(t.TempDir(), StoreFileName)
	n, err := svc.SaveStore(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(keys) {
		t.Fatalf("saved %d entries, cache held %d", n, len(keys))
	}
	entries, err := ReadStore(path, city)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(keys) {
		t.Fatalf("read %d entries, wrote %d", len(entries), len(keys))
	}
	bare := NewService(city, 0)
	for i, e := range entries {
		if want := bare.Freq(e.L, e.R); !e.Freq.Equal(want) {
			t.Fatalf("entry %d: stored %v, recompute %v", i, e.Freq, want)
		}
	}
	// The 8 re-touched keys have 1 hit each, the rest 0: hottest first
	// means the first 8 entries are exactly those (in key order).
	hot := map[freqKey]bool{}
	for i := 0; i < 8; i++ {
		hot[freqKey{x: keys[i].L.X, y: keys[i].L.Y, r: keys[i].R}] = true
	}
	for i := 0; i < 8; i++ {
		k := freqKey{x: entries[i].L.X, y: entries[i].L.Y, r: entries[i].R}
		if !hot[k] {
			t.Fatalf("entry %d is cold, hottest must sort first", i)
		}
	}
}

func TestStoreTopNTruncates(t *testing.T) {
	_, svc, _ := storeFixture(t, 32)
	path := filepath.Join(t.TempDir(), StoreFileName)
	n, err := svc.SaveStore(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("saved %d entries with top-10 cap", n)
	}
}

// TestStoreWarmStartServesWithoutRecompute is the warm-start proof: a
// cold service seeded from a snapshot answers every snapshotted key with
// zero CountTypes calls.
func TestStoreWarmStartServesWithoutRecompute(t *testing.T) {
	city, svc, keys := storeFixture(t, 24)
	path := filepath.Join(t.TempDir(), StoreFileName)
	if _, err := svc.SaveStore(path, 1<<10); err != nil {
		t.Fatal(err)
	}
	want := make([]poi.FreqVector, len(keys))
	for i, k := range keys {
		want[i] = svc.Freq(k.L, k.R)
	}

	ci := instrument(city) // count computes from here on
	cold := NewService(city, 1<<16)
	n, err := cold.WarmStart(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(keys) {
		t.Fatalf("warmed %d entries, snapshot held %d", n, len(keys))
	}
	for i, k := range keys {
		if f := cold.Freq(k.L, k.R); !f.Equal(want[i]) {
			t.Fatalf("key %d: warm %v, want %v", i, f, want[i])
		}
	}
	if got := ci.n.Load(); got != 0 {
		t.Errorf("warm start still computed %d keys", got)
	}
	if hits, misses := cold.CacheStats(); misses != 0 || hits != uint64(len(keys)) {
		t.Errorf("hits=%d misses=%d after warm start, want %d/0", hits, misses, len(keys))
	}
	if cold.storeWarmed.Load() != uint64(len(keys)) || cold.storeRejected.Load() != 0 {
		t.Errorf("warmed=%d rejected=%d", cold.storeWarmed.Load(), cold.storeRejected.Load())
	}
}

func TestStoreWarmStartMissingFileIsColdStart(t *testing.T) {
	city := cacheCity(t, 500, 10)
	svc := NewService(city, 1<<8)
	n, err := svc.WarmStart(filepath.Join(t.TempDir(), "absent.bin"))
	if err != nil || n != 0 {
		t.Fatalf("missing snapshot: n=%d err=%v, want 0/nil", n, err)
	}
	if svc.storeRejected.Load() != 0 {
		t.Error("missing file counted as a rejection")
	}
}

// TestStoreCorruptionMatrix drives every corruption class through
// WarmStart: all must reject with ErrStoreInvalid, bump
// gsp.store.rejected, leave the cache untouched, and fall back to a
// correct cold compute — never serve wrong vectors.
func TestStoreCorruptionMatrix(t *testing.T) {
	city, svc, keys := storeFixture(t, 16)
	dir := t.TempDir()
	good := filepath.Join(dir, StoreFileName)
	if _, err := svc.SaveStore(good, 1<<10); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	otherCity := cacheCity(t, 3000, 40)
	otherCity.Name = "elsewhere" // same layout, different fingerprint

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated-mid-record", func(t *testing.T, path string) {
			if err := os.WriteFile(path, goodBytes[:len(goodBytes)-7], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-header-only", func(t *testing.T, path string) {
			if err := os.WriteFile(path, goodBytes[:20], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-version-byte", func(t *testing.T, path string) {
			b := append([]byte(nil), goodBytes...)
			b[8] ^= 0xff
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-magic-byte", func(t *testing.T, path string) {
			b := append([]byte(nil), goodBytes...)
			b[0] ^= 0x01
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"mismatched-city-hash", func(t *testing.T, path string) {
			if err := WriteStore(path, otherCity, nil); err != nil {
				t.Fatal(err)
			}
		}},
		{"zero-length", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-record-count-byte", func(t *testing.T, path string) {
			// A flip in the record region — a count of some entry's
			// vector — must fail the payload checksum; header-only
			// validation would silently serve the wrong vector.
			b := append([]byte(nil), goodBytes...)
			b[len(b)-1] ^= 0xff
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-record-key-byte", func(t *testing.T, path string) {
			b := append([]byte(nil), goodBytes...)
			b[storeHeaderSize+8] ^= 0xff // first record's y coordinate
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"count-overflow", func(t *testing.T, path string) {
			b := append([]byte(nil), goodBytes...)
			for i := 32; i < 40; i++ {
				b[i] = 0xff
			}
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), StoreFileName)
			tc.corrupt(t, path)
			cold := NewService(city, 1<<16)
			rejectedBefore := cold.storeRejected.Load()
			n, err := cold.WarmStart(path)
			if !errors.Is(err, ErrStoreInvalid) {
				t.Fatalf("err = %v, want ErrStoreInvalid", err)
			}
			if n != 0 {
				t.Fatalf("rejected snapshot still seeded %d entries", n)
			}
			if got := cold.storeRejected.Load() - rejectedBefore; got != 1 {
				t.Errorf("gsp.store.rejected bumped by %d, want 1", got)
			}
			if m := cold.CacheMetrics(); m.Size != 0 {
				t.Errorf("rejected snapshot left %d cache entries", m.Size)
			}
			// Cold fallback still serves correct vectors.
			k := keys[0]
			if f := cold.Freq(k.L, k.R); !f.Equal(svc.Freq(k.L, k.R)) {
				t.Error("cold fallback served a wrong vector")
			}
		})
	}
}

// TestStoreStaleSnapshotRejected regenerates the city with a different
// seed — the realistic staleness case: yesterday's snapshot against
// today's data build.
func TestStoreStaleSnapshotRejected(t *testing.T) {
	city, svc, _ := storeFixture(t, 8)
	path := filepath.Join(t.TempDir(), StoreFileName)
	if _, err := svc.SaveStore(path, 1<<10); err != nil {
		t.Fatal(err)
	}
	// Same name and bounds, different POI set.
	types := poi.NewTypeTable()
	for i := 0; i < 40; i++ {
		types.Intern(city.Types.Name(poi.TypeID(i)))
	}
	src := rng.New(99)
	pois := make([]poi.POI, 100)
	for i := range pois {
		x, y := src.UniformIn(0, 0, 20_000, 20_000)
		pois[i] = poi.POI{ID: poi.ID(i), Type: poi.TypeID(src.IntN(40)), Pos: geo.Point{X: x, Y: y}}
	}
	rebuilt, err := NewCity(city.Name, city.Bounds, types, pois)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewService(rebuilt, 1<<8)
	if _, err := fresh.WarmStart(path); !errors.Is(err, ErrStoreInvalid) {
		t.Fatalf("stale snapshot accepted: err = %v", err)
	}
}

func TestCityFingerprintSensitivity(t *testing.T) {
	a := cacheCity(t, 500, 10)
	b := cacheCity(t, 500, 10)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical builds fingerprint differently")
	}
	c := cacheCity(t, 501, 10)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different POI sets share a fingerprint")
	}
	d := cacheCity(t, 500, 10)
	d.Name = "renamed"
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("renamed city shares a fingerprint")
	}
}

// BenchmarkStoreWarmStart prices warming a cold cache from a 2048-entry
// snapshot against computing the same 2048 vectors cold — the restart
// path the tiered store exists to shortcut.
func BenchmarkStoreWarmStart(b *testing.B) {
	city := cacheCity(b, 20_000, 60)
	svc := NewService(city, 1<<16)
	src := rng.New(12)
	keys := make([]BatchQuery, 2048)
	for i := range keys {
		x, y := src.UniformIn(0, 0, 20_000, 20_000)
		keys[i] = BatchQuery{L: geo.Point{X: x, Y: y}, R: 500 + float64(i%7)*200}
		svc.Freq(keys[i].L, keys[i].R)
	}
	path := filepath.Join(b.TempDir(), StoreFileName)
	n, err := svc.SaveStore(path, 1<<12)
	if err != nil {
		b.Fatal(err)
	}
	if n != len(keys) {
		b.Fatalf("snapshot holds %d entries, want %d", n, len(keys))
	}
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold := NewService(city, 1<<16)
			if _, err := cold.WarmStart(path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-compute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold := NewService(city, 1<<16)
			out := poi.NewFreqVector(city.M())
			for _, k := range keys {
				cold.FreqInto(out, k.L, k.R)
			}
		}
	})
}
