// Package index provides spatial indexes over POI sets supporting disk
// (circular range) queries — the only query interface the paper's
// geo-information service provider exposes. A uniform grid index is the
// production implementation; a brute-force index serves as the reference
// for differential testing and as the baseline in the index ablation
// benchmark.
package index

import (
	"math"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// Index answers disk range queries over a fixed POI set.
type Index interface {
	// Within appends to dst the POIs whose position lies within radius of
	// center (closed disk), and returns the extended slice. Order is
	// unspecified but deterministic for a given index.
	Within(dst []poi.POI, center geo.Point, radius float64) []poi.POI

	// CountTypes accumulates the type frequency vector of the POIs within
	// radius of center into out (which must be sized to the city's type
	// count and zeroed by the caller).
	CountTypes(out poi.FreqVector, center geo.Point, radius float64)

	// Len returns the number of indexed POIs.
	Len() int
}

// Brute is the O(n) reference implementation.
type Brute struct {
	pois []poi.POI
}

var _ Index = (*Brute)(nil)

// NewBrute copies pois into a brute-force index.
func NewBrute(pois []poi.POI) *Brute {
	cp := make([]poi.POI, len(pois))
	copy(cp, pois)
	return &Brute{pois: cp}
}

// Within implements Index.
func (b *Brute) Within(dst []poi.POI, center geo.Point, radius float64) []poi.POI {
	r2 := radius * radius
	for _, p := range b.pois {
		if geo.Dist2(p.Pos, center) <= r2 {
			dst = append(dst, p)
		}
	}
	return dst
}

// CountTypes implements Index.
func (b *Brute) CountTypes(out poi.FreqVector, center geo.Point, radius float64) {
	r2 := radius * radius
	for _, p := range b.pois {
		if geo.Dist2(p.Pos, center) <= r2 {
			out[p.Type]++
		}
	}
}

// Len implements Index.
func (b *Brute) Len() int { return len(b.pois) }

// Grid is a uniform grid index. POIs are bucketed into square cells; a
// disk query scans only the cells overlapping the disk's bounding box and
// filters by exact distance. Cells fully inside the disk skip the
// per-point distance check.
type Grid struct {
	bounds   geo.Rect
	cellSize float64
	cols     int
	rows     int
	cells    [][]poi.POI
	n        int
}

var _ Index = (*Grid)(nil)

// NewGrid builds a grid index over pois covering bounds with the given
// cell size in meters. Cell size should be on the order of the typical
// query radius; see BenchmarkIndexGridVsBrute for the ablation. POIs
// outside bounds are clamped into the border cells so no point is lost.
func NewGrid(pois []poi.POI, bounds geo.Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 500
	}
	cols := int(math.Ceil(bounds.Width() / cellSize))
	rows := int(math.Ceil(bounds.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	g := &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]poi.POI, cols*rows),
		n:        len(pois),
	}
	for _, p := range pois {
		ci, cj := g.cellOf(p.Pos)
		idx := cj*cols + ci
		g.cells[idx] = append(g.cells[idx], p)
	}
	return g
}

func (g *Grid) cellOf(p geo.Point) (ci, cj int) {
	ci = int((p.X - g.bounds.MinX) / g.cellSize)
	cj = int((p.Y - g.bounds.MinY) / g.cellSize)
	if ci < 0 {
		ci = 0
	}
	if ci >= g.cols {
		ci = g.cols - 1
	}
	if cj < 0 {
		cj = 0
	}
	if cj >= g.rows {
		cj = g.rows - 1
	}
	return ci, cj
}

// cellRect returns the rectangle covered by cell (ci, cj). Border cells
// extend to infinity conceptually because out-of-bounds points are clamped
// into them; for the fully-inside optimization we only use the nominal
// rect, and the border cells simply fail that test and fall back to exact
// distance checks, which is always correct.
func (g *Grid) cellRect(ci, cj int) geo.Rect {
	return geo.Rect{
		MinX: g.bounds.MinX + float64(ci)*g.cellSize,
		MinY: g.bounds.MinY + float64(cj)*g.cellSize,
		MaxX: g.bounds.MinX + float64(ci+1)*g.cellSize,
		MaxY: g.bounds.MinY + float64(cj+1)*g.cellSize,
	}
}

// cellFullyInside reports whether every point of cell (ci, cj) is within
// radius of center. Border cells are never "fully inside" because clamped
// points may lie outside the nominal rect.
func (g *Grid) cellFullyInside(ci, cj int, center geo.Point, radius float64) bool {
	if ci == 0 || cj == 0 || ci == g.cols-1 || cj == g.rows-1 {
		return false
	}
	r := g.cellRect(ci, cj)
	corners := [4]geo.Point{
		{X: r.MinX, Y: r.MinY},
		{X: r.MaxX, Y: r.MinY},
		{X: r.MinX, Y: r.MaxY},
		{X: r.MaxX, Y: r.MaxY},
	}
	r2 := radius * radius
	for _, c := range corners {
		if geo.Dist2(c, center) > r2 {
			return false
		}
	}
	return true
}

// Within implements Index.
func (g *Grid) Within(dst []poi.POI, center geo.Point, radius float64) []poi.POI {
	g.scan(center, radius, func(p poi.POI) { dst = append(dst, p) })
	return dst
}

// CountTypes implements Index.
func (g *Grid) CountTypes(out poi.FreqVector, center geo.Point, radius float64) {
	g.scan(center, radius, func(p poi.POI) { out[p.Type]++ })
}

func (g *Grid) scan(center geo.Point, radius float64, emit func(poi.POI)) {
	minCI, minCJ := g.cellOf(geo.Point{X: center.X - radius, Y: center.Y - radius})
	maxCI, maxCJ := g.cellOf(geo.Point{X: center.X + radius, Y: center.Y + radius})
	r2 := radius * radius
	for cj := minCJ; cj <= maxCJ; cj++ {
		for ci := minCI; ci <= maxCI; ci++ {
			cell := g.cells[cj*g.cols+ci]
			if len(cell) == 0 {
				continue
			}
			if !g.cellRect(ci, cj).IntersectsCircle(center, radius) &&
				ci != 0 && cj != 0 && ci != g.cols-1 && cj != g.rows-1 {
				continue
			}
			if g.cellFullyInside(ci, cj, center, radius) {
				for _, p := range cell {
					emit(p)
				}
				continue
			}
			for _, p := range cell {
				if geo.Dist2(p.Pos, center) <= r2 {
					emit(p)
				}
			}
		}
	}
}

// Len implements Index.
func (g *Grid) Len() int { return g.n }
