// Package index provides spatial indexes over POI sets supporting disk
// (circular range) queries — the only query interface the paper's
// geo-information service provider exposes. A uniform grid index is the
// production implementation; a brute-force index serves as the reference
// for differential testing and as the baseline in the index ablation
// benchmark.
package index

import (
	"math"
	"sort"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// Index answers disk range queries over a fixed POI set.
type Index interface {
	// Within appends to dst the POIs whose position lies within radius of
	// center (closed disk), and returns the extended slice. Order is
	// unspecified but deterministic for a given index. A negative radius
	// matches nothing.
	Within(dst []poi.POI, center geo.Point, radius float64) []poi.POI

	// CountTypes accumulates the type frequency vector of the POIs within
	// radius of center into out (which must be sized to the city's type
	// count and zeroed by the caller). A negative radius matches nothing.
	CountTypes(out poi.FreqVector, center geo.Point, radius float64)

	// Len returns the number of indexed POIs.
	Len() int
}

// Brute is the O(n) reference implementation.
type Brute struct {
	pois []poi.POI
}

var _ Index = (*Brute)(nil)

// NewBrute copies pois into a brute-force index.
func NewBrute(pois []poi.POI) *Brute {
	cp := make([]poi.POI, len(pois))
	copy(cp, pois)
	return &Brute{pois: cp}
}

// Within implements Index.
func (b *Brute) Within(dst []poi.POI, center geo.Point, radius float64) []poi.POI {
	if radius < 0 {
		return dst
	}
	r2 := radius * radius
	for _, p := range b.pois {
		if geo.Dist2(p.Pos, center) <= r2 {
			dst = append(dst, p)
		}
	}
	return dst
}

// CountTypes implements Index.
func (b *Brute) CountTypes(out poi.FreqVector, center geo.Point, radius float64) {
	if radius < 0 {
		return
	}
	r2 := radius * radius
	for _, p := range b.pois {
		if geo.Dist2(p.Pos, center) <= r2 {
			out[p.Type]++
		}
	}
}

// Len implements Index.
func (b *Brute) Len() int { return len(b.pois) }

// Grid is a uniform grid index. POIs are bucketed into square cells; a
// disk query scans only the cells overlapping the disk's bounding box and
// filters by exact distance.
//
// Cell storage is struct-of-arrays: the POIs are counting-sorted by cell
// into contiguous xs/ys/types/ids arrays (one backing allocation each),
// with cellStart giving each cell's span — a boundary-cell scan walks
// sequential memory instead of chasing 32-byte POI structs. Each cell
// additionally carries a sparse type histogram (type/count pairs), so a
// cell that lies fully inside the query disk contributes its whole
// population with one add per *distinct type present* instead of one
// increment per POI; CountTypes on dense cells is where the attack
// sweeps spend their time (see BenchmarkIndexHistVsScan).
type Grid struct {
	bounds   geo.Rect
	cellSize float64
	cols     int
	rows     int
	n        int

	// Struct-of-arrays POI storage, cell-major (row-major cell order,
	// original input order within a cell — the same emit order as the
	// historical per-cell slice layout).
	xs    []float64
	ys    []float64
	types []poi.TypeID
	ids   []poi.ID
	// cellStart[c]..cellStart[c+1] is cell c's span in the arrays above.
	cellStart []int32

	// Sparse per-cell type histograms: cell c's histogram is the
	// (histType, histCount) pairs in histStart[c]..histStart[c+1], in
	// ascending type order.
	histType  []poi.TypeID
	histCount []int32
	histStart []int32
}

var _ Index = (*Grid)(nil)

// NewGrid builds a grid index over pois covering bounds with the given
// cell size in meters. Cell size should be on the order of the typical
// query radius; see BenchmarkIndexGridVsBrute for the ablation. POIs
// outside bounds are clamped into the border cells so no point is lost.
func NewGrid(pois []poi.POI, bounds geo.Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = 500
	}
	cols := int(math.Ceil(bounds.Width() / cellSize))
	rows := int(math.Ceil(bounds.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	g := &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		n:        len(pois),
	}
	nc := cols * rows
	counts := make([]int32, nc)
	for i := range pois {
		ci, cj := g.cellOf(pois[i].Pos)
		counts[cj*cols+ci]++
	}
	g.cellStart = make([]int32, nc+1)
	var sum int32
	for c, cnt := range counts {
		g.cellStart[c] = sum
		sum += cnt
	}
	g.cellStart[nc] = sum

	n := len(pois)
	g.xs = make([]float64, n)
	g.ys = make([]float64, n)
	g.types = make([]poi.TypeID, n)
	g.ids = make([]poi.ID, n)
	// Reuse counts as the per-cell write cursor for the stable
	// counting-sort placement pass.
	next := counts
	copy(next, g.cellStart[:nc])
	maxType := poi.TypeID(-1)
	for _, p := range pois {
		ci, cj := g.cellOf(p.Pos)
		c := cj*cols + ci
		i := next[c]
		next[c] = i + 1
		g.xs[i] = p.Pos.X
		g.ys[i] = p.Pos.Y
		g.types[i] = p.Type
		g.ids[i] = p.ID
		if p.Type > maxType {
			maxType = p.Type
		}
	}
	g.buildHist(int(maxType) + 1)
	return g
}

// buildHist computes the sparse per-cell type histograms; m is an upper
// bound on the type IDs present (max observed + 1).
func (g *Grid) buildHist(m int) {
	nc := g.cols * g.rows
	g.histStart = make([]int32, nc+1)
	if m <= 0 {
		return
	}
	scratch := make([]int32, m)
	var touched []poi.TypeID
	for c := 0; c < nc; c++ {
		g.histStart[c] = int32(len(g.histType))
		touched = touched[:0]
		for i := g.cellStart[c]; i < g.cellStart[c+1]; i++ {
			t := g.types[i]
			if scratch[t] == 0 {
				touched = append(touched, t)
			}
			scratch[t]++
		}
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
		for _, t := range touched {
			g.histType = append(g.histType, t)
			g.histCount = append(g.histCount, scratch[t])
			scratch[t] = 0
		}
	}
	g.histStart[nc] = int32(len(g.histType))
}

func (g *Grid) cellOf(p geo.Point) (ci, cj int) {
	ci = int((p.X - g.bounds.MinX) / g.cellSize)
	cj = int((p.Y - g.bounds.MinY) / g.cellSize)
	if ci < 0 {
		ci = 0
	}
	if ci >= g.cols {
		ci = g.cols - 1
	}
	if cj < 0 {
		cj = 0
	}
	if cj >= g.rows {
		cj = g.rows - 1
	}
	return ci, cj
}

// cellCover classifies a cell's relation to a query disk.
type cellCover uint8

const (
	// coverOutside: no point of the cell can be within the disk.
	coverOutside cellCover = iota
	// coverBoundary: the cell straddles the disk boundary (or is a
	// border cell holding clamped points); per-point distance checks are
	// required.
	coverBoundary
	// coverFull: every point of the cell lies within the disk.
	coverFull
)

// classify computes the partial-cover class of cell (ci, cj) for the
// disk of the given radius around center, from the squared distances to
// the cell rectangle's nearest and farthest corners. Border cells are
// always coverBoundary: clamped out-of-bounds points may lie anywhere,
// so they can be neither skipped nor bulk-counted.
func (g *Grid) classify(ci, cj int, center geo.Point, radius float64) cellCover {
	if ci == 0 || cj == 0 || ci == g.cols-1 || cj == g.rows-1 {
		return coverBoundary
	}
	minX := g.bounds.MinX + float64(ci)*g.cellSize
	minY := g.bounds.MinY + float64(cj)*g.cellSize
	maxX := g.bounds.MinX + float64(ci+1)*g.cellSize
	maxY := g.bounds.MinY + float64(cj+1)*g.cellSize

	// Nearest point of the rect (zero component when center is between
	// the sides) and farthest corner, per axis.
	var nearDx, nearDy float64
	if center.X < minX {
		nearDx = minX - center.X
	} else if center.X > maxX {
		nearDx = center.X - maxX
	}
	if center.Y < minY {
		nearDy = minY - center.Y
	} else if center.Y > maxY {
		nearDy = center.Y - maxY
	}
	farDx := math.Max(center.X-minX, maxX-center.X)
	farDy := math.Max(center.Y-minY, maxY-center.Y)

	r2 := radius * radius
	if nearDx*nearDx+nearDy*nearDy > r2 {
		return coverOutside
	}
	if farDx*farDx+farDy*farDy <= r2 {
		return coverFull
	}
	return coverBoundary
}

// cellRange returns the inclusive cell index range overlapping the
// query disk's bounding box.
func (g *Grid) cellRange(center geo.Point, radius float64) (minCI, minCJ, maxCI, maxCJ int) {
	minCI, minCJ = g.cellOf(geo.Point{X: center.X - radius, Y: center.Y - radius})
	maxCI, maxCJ = g.cellOf(geo.Point{X: center.X + radius, Y: center.Y + radius})
	return
}

// Within implements Index.
func (g *Grid) Within(dst []poi.POI, center geo.Point, radius float64) []poi.POI {
	if radius < 0 {
		return dst
	}
	minCI, minCJ, maxCI, maxCJ := g.cellRange(center, radius)
	r2 := radius * radius
	for cj := minCJ; cj <= maxCJ; cj++ {
		for ci := minCI; ci <= maxCI; ci++ {
			c := cj*g.cols + ci
			start, end := g.cellStart[c], g.cellStart[c+1]
			if start == end {
				continue
			}
			switch g.classify(ci, cj, center, radius) {
			case coverOutside:
			case coverFull:
				for i := start; i < end; i++ {
					dst = append(dst, g.poiAt(i))
				}
			default:
				for i := start; i < end; i++ {
					dx := g.xs[i] - center.X
					dy := g.ys[i] - center.Y
					if dx*dx+dy*dy <= r2 {
						dst = append(dst, g.poiAt(i))
					}
				}
			}
		}
	}
	return dst
}

func (g *Grid) poiAt(i int32) poi.POI {
	return poi.POI{ID: g.ids[i], Type: g.types[i], Pos: geo.Point{X: g.xs[i], Y: g.ys[i]}}
}

// CountTypes implements Index. Fully covered cells contribute their
// precomputed histogram (one add per distinct type present); only
// boundary cells pay per-point distance checks.
func (g *Grid) CountTypes(out poi.FreqVector, center geo.Point, radius float64) {
	if radius < 0 {
		return
	}
	minCI, minCJ, maxCI, maxCJ := g.cellRange(center, radius)
	r2 := radius * radius
	for cj := minCJ; cj <= maxCJ; cj++ {
		for ci := minCI; ci <= maxCI; ci++ {
			c := cj*g.cols + ci
			start, end := g.cellStart[c], g.cellStart[c+1]
			if start == end {
				continue
			}
			switch g.classify(ci, cj, center, radius) {
			case coverOutside:
			case coverFull:
				for h := g.histStart[c]; h < g.histStart[c+1]; h++ {
					out[g.histType[h]] += int(g.histCount[h])
				}
			default:
				for i := start; i < end; i++ {
					dx := g.xs[i] - center.X
					dy := g.ys[i] - center.Y
					if dx*dx+dy*dy <= r2 {
						out[g.types[i]]++
					}
				}
			}
		}
	}
}

// countTypesScan is the retained pre-histogram reference: identical
// traversal and cell classification, but fully covered cells are counted
// point by point instead of adding the histogram. The differential tests
// pin CountTypes bit-identical to it (and to Brute), and
// BenchmarkIndexHistVsScan prices the histogram against it.
func (g *Grid) countTypesScan(out poi.FreqVector, center geo.Point, radius float64) {
	if radius < 0 {
		return
	}
	minCI, minCJ, maxCI, maxCJ := g.cellRange(center, radius)
	r2 := radius * radius
	for cj := minCJ; cj <= maxCJ; cj++ {
		for ci := minCI; ci <= maxCI; ci++ {
			c := cj*g.cols + ci
			start, end := g.cellStart[c], g.cellStart[c+1]
			if start == end {
				continue
			}
			switch g.classify(ci, cj, center, radius) {
			case coverOutside:
			case coverFull:
				for i := start; i < end; i++ {
					out[g.types[i]]++
				}
			default:
				for i := start; i < end; i++ {
					dx := g.xs[i] - center.X
					dy := g.ys[i] - center.Y
					if dx*dx+dy*dy <= r2 {
						out[g.types[i]]++
					}
				}
			}
		}
	}
}

// Len implements Index.
func (g *Grid) Len() int { return g.n }
