package index

import (
	"sort"
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

func makePOIs(n, types int, bounds geo.Rect, seed uint64) []poi.POI {
	src := rng.New(seed)
	pois := make([]poi.POI, n)
	for i := range pois {
		x, y := src.UniformIn(bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY)
		pois[i] = poi.POI{
			ID:   poi.ID(i),
			Type: poi.TypeID(src.IntN(types)),
			Pos:  geo.Point{X: x, Y: y},
		}
	}
	return pois
}

func idsOf(ps []poi.POI) []int {
	ids := make([]int, len(ps))
	for i, p := range ps {
		ids[i] = int(p.ID)
	}
	sort.Ints(ids)
	return ids
}

func TestGridMatchesBruteForce(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10_000, MaxY: 8_000}
	pois := makePOIs(2000, 20, bounds, 1)
	brute := NewBrute(pois)
	grid := NewGrid(pois, bounds, 700)

	src := rng.New(2)
	for trial := 0; trial < 200; trial++ {
		// Mix centers inside and slightly outside bounds.
		x, y := src.UniformIn(bounds.MinX-1000, bounds.MinY-1000, bounds.MaxX+1000, bounds.MaxY+1000)
		center := geo.Point{X: x, Y: y}
		radius := 100 + src.Float64()*4000

		wantPs := brute.Within(nil, center, radius)
		gotPs := grid.Within(nil, center, radius)
		want, got := idsOf(wantPs), idsOf(gotPs)
		if len(want) != len(got) {
			t.Fatalf("trial %d: count %d vs brute %d (center %v r %v)",
				trial, len(got), len(want), center, radius)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: ID mismatch at %d", trial, i)
			}
		}

		wantF := poi.NewFreqVector(20)
		gotF := poi.NewFreqVector(20)
		brute.CountTypes(wantF, center, radius)
		grid.CountTypes(gotF, center, radius)
		if !wantF.Equal(gotF) {
			t.Fatalf("trial %d: freq mismatch %v vs %v", trial, gotF, wantF)
		}
	}
}

func TestGridBoundaryInclusive(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pois := []poi.POI{{ID: 1, Type: 0, Pos: geo.Point{X: 50, Y: 50}}}
	grid := NewGrid(pois, bounds, 10)
	// A point exactly at distance radius must be included (closed disk).
	got := grid.Within(nil, geo.Point{X: 50, Y: 40}, 10)
	if len(got) != 1 {
		t.Errorf("boundary POI not returned: %v", got)
	}
}

func TestGridOutOfBoundsPOIs(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pois := []poi.POI{
		{ID: 1, Type: 0, Pos: geo.Point{X: -50, Y: -50}},
		{ID: 2, Type: 0, Pos: geo.Point{X: 150, Y: 150}},
	}
	grid := NewGrid(pois, bounds, 25)
	if grid.Len() != 2 {
		t.Fatalf("Len = %d", grid.Len())
	}
	got := grid.Within(nil, geo.Point{X: -50, Y: -50}, 5)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("out-of-bounds POI not found: %v", got)
	}
	got = grid.Within(nil, geo.Point{X: 150, Y: 150}, 5)
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("out-of-bounds POI not found: %v", got)
	}
}

func TestGridEmpty(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	grid := NewGrid(nil, bounds, 10)
	if grid.Len() != 0 {
		t.Errorf("Len = %d", grid.Len())
	}
	if got := grid.Within(nil, geo.Point{X: 50, Y: 50}, 1000); len(got) != 0 {
		t.Errorf("empty grid returned %v", got)
	}
}

func TestGridZeroRadius(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pois := []poi.POI{{ID: 1, Type: 0, Pos: geo.Point{X: 10, Y: 10}}}
	grid := NewGrid(pois, bounds, 10)
	if got := grid.Within(nil, geo.Point{X: 10, Y: 10}, 0); len(got) != 1 {
		t.Errorf("zero-radius query at POI position returned %v", got)
	}
	if got := grid.Within(nil, geo.Point{X: 11, Y: 10}, 0); len(got) != 0 {
		t.Errorf("zero-radius query off POI returned %v", got)
	}
}

func TestBruteDoesNotAliasInput(t *testing.T) {
	pois := []poi.POI{{ID: 1, Type: 0, Pos: geo.Point{X: 1, Y: 1}}}
	b := NewBrute(pois)
	pois[0].Pos = geo.Point{X: 999, Y: 999}
	if got := b.Within(nil, geo.Point{X: 1, Y: 1}, 0.5); len(got) != 1 {
		t.Error("Brute aliased caller slice")
	}
}

func TestNewGridDegenerateCellSize(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	g := NewGrid(makePOIs(10, 3, bounds, 3), bounds, -5)
	if g.Len() != 10 {
		t.Errorf("Len = %d", g.Len())
	}
	if got := g.Within(nil, geo.Point{X: 50, Y: 50}, 200); len(got) != 10 {
		t.Errorf("big query returned %d, want 10", len(got))
	}
}

func BenchmarkIndexGridVsBrute(b *testing.B) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 30_000, MaxY: 30_000}
	pois := makePOIs(30_000, 272, bounds, 4)
	center := geo.Point{X: 15_000, Y: 15_000}
	out := poi.NewFreqVector(272)

	b.Run("grid", func(b *testing.B) {
		grid := NewGrid(pois, bounds, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(out)
			grid.CountTypes(out, center, 2000)
		}
	})
	b.Run("brute", func(b *testing.B) {
		brute := NewBrute(pois)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(out)
			brute.CountTypes(out, center, 2000)
		}
	})
}
