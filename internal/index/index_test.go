package index

import (
	"sort"
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

func makePOIs(n, types int, bounds geo.Rect, seed uint64) []poi.POI {
	src := rng.New(seed)
	pois := make([]poi.POI, n)
	for i := range pois {
		x, y := src.UniformIn(bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY)
		pois[i] = poi.POI{
			ID:   poi.ID(i),
			Type: poi.TypeID(src.IntN(types)),
			Pos:  geo.Point{X: x, Y: y},
		}
	}
	return pois
}

func idsOf(ps []poi.POI) []int {
	ids := make([]int, len(ps))
	for i, p := range ps {
		ids[i] = int(p.ID)
	}
	sort.Ints(ids)
	return ids
}

func TestGridMatchesBruteForce(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10_000, MaxY: 8_000}
	pois := makePOIs(2000, 20, bounds, 1)
	brute := NewBrute(pois)
	grid := NewGrid(pois, bounds, 700)

	src := rng.New(2)
	for trial := 0; trial < 200; trial++ {
		// Mix centers inside and slightly outside bounds.
		x, y := src.UniformIn(bounds.MinX-1000, bounds.MinY-1000, bounds.MaxX+1000, bounds.MaxY+1000)
		center := geo.Point{X: x, Y: y}
		radius := 100 + src.Float64()*4000

		wantPs := brute.Within(nil, center, radius)
		gotPs := grid.Within(nil, center, radius)
		want, got := idsOf(wantPs), idsOf(gotPs)
		if len(want) != len(got) {
			t.Fatalf("trial %d: count %d vs brute %d (center %v r %v)",
				trial, len(got), len(want), center, radius)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: ID mismatch at %d", trial, i)
			}
		}

		wantF := poi.NewFreqVector(20)
		gotF := poi.NewFreqVector(20)
		brute.CountTypes(wantF, center, radius)
		grid.CountTypes(gotF, center, radius)
		if !wantF.Equal(gotF) {
			t.Fatalf("trial %d: freq mismatch %v vs %v", trial, gotF, wantF)
		}
	}
}

func TestGridBoundaryInclusive(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pois := []poi.POI{{ID: 1, Type: 0, Pos: geo.Point{X: 50, Y: 50}}}
	grid := NewGrid(pois, bounds, 10)
	// A point exactly at distance radius must be included (closed disk).
	got := grid.Within(nil, geo.Point{X: 50, Y: 40}, 10)
	if len(got) != 1 {
		t.Errorf("boundary POI not returned: %v", got)
	}
}

func TestGridOutOfBoundsPOIs(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pois := []poi.POI{
		{ID: 1, Type: 0, Pos: geo.Point{X: -50, Y: -50}},
		{ID: 2, Type: 0, Pos: geo.Point{X: 150, Y: 150}},
	}
	grid := NewGrid(pois, bounds, 25)
	if grid.Len() != 2 {
		t.Fatalf("Len = %d", grid.Len())
	}
	got := grid.Within(nil, geo.Point{X: -50, Y: -50}, 5)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("out-of-bounds POI not found: %v", got)
	}
	got = grid.Within(nil, geo.Point{X: 150, Y: 150}, 5)
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("out-of-bounds POI not found: %v", got)
	}
}

func TestGridEmpty(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	grid := NewGrid(nil, bounds, 10)
	if grid.Len() != 0 {
		t.Errorf("Len = %d", grid.Len())
	}
	if got := grid.Within(nil, geo.Point{X: 50, Y: 50}, 1000); len(got) != 0 {
		t.Errorf("empty grid returned %v", got)
	}
}

func TestGridZeroRadius(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pois := []poi.POI{{ID: 1, Type: 0, Pos: geo.Point{X: 10, Y: 10}}}
	grid := NewGrid(pois, bounds, 10)
	if got := grid.Within(nil, geo.Point{X: 10, Y: 10}, 0); len(got) != 1 {
		t.Errorf("zero-radius query at POI position returned %v", got)
	}
	if got := grid.Within(nil, geo.Point{X: 11, Y: 10}, 0); len(got) != 0 {
		t.Errorf("zero-radius query off POI returned %v", got)
	}
}

func TestBruteDoesNotAliasInput(t *testing.T) {
	pois := []poi.POI{{ID: 1, Type: 0, Pos: geo.Point{X: 1, Y: 1}}}
	b := NewBrute(pois)
	pois[0].Pos = geo.Point{X: 999, Y: 999}
	if got := b.Within(nil, geo.Point{X: 1, Y: 1}, 0.5); len(got) != 1 {
		t.Error("Brute aliased caller slice")
	}
}

func TestNewGridDegenerateCellSize(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	g := NewGrid(makePOIs(10, 3, bounds, 3), bounds, -5)
	if g.Len() != 10 {
		t.Errorf("Len = %d", g.Len())
	}
	if got := g.Within(nil, geo.Point{X: 50, Y: 50}, 200); len(got) != 10 {
		t.Errorf("big query returned %d, want 10", len(got))
	}
}

// TestGridHistogramMatchesScan pins the histogram-accelerated CountTypes
// bit-identical to the retained per-point scan reference and to Brute,
// over seeded random cities at several cell sizes — the differential
// proof behind BenchmarkIndexHistVsScan.
func TestGridHistogramMatchesScan(t *testing.T) {
	bounds := geo.Rect{MinX: -2_000, MinY: 1_000, MaxX: 14_000, MaxY: 12_000}
	for _, cell := range []float64{300, 700, 2500} {
		pois := makePOIs(5000, 40, bounds, 7)
		brute := NewBrute(pois)
		grid := NewGrid(pois, bounds, cell)
		src := rng.New(8)
		for trial := 0; trial < 150; trial++ {
			x, y := src.UniformIn(bounds.MinX-2000, bounds.MinY-2000, bounds.MaxX+2000, bounds.MaxY+2000)
			center := geo.Point{X: x, Y: y}
			radius := src.Float64() * 6000
			hist := poi.NewFreqVector(40)
			scan := poi.NewFreqVector(40)
			ref := poi.NewFreqVector(40)
			grid.CountTypes(hist, center, radius)
			grid.countTypesScan(scan, center, radius)
			brute.CountTypes(ref, center, radius)
			if !hist.Equal(scan) {
				t.Fatalf("cell %v trial %d: hist %v != scan %v", cell, trial, hist, scan)
			}
			if !hist.Equal(ref) {
				t.Fatalf("cell %v trial %d: hist %v != brute %v", cell, trial, hist, ref)
			}
		}
	}
}

// TestGridExactRadiusClosedDisk places POIs exactly at distance r from
// the query center (axis-aligned, so the distance computation is exact in
// floating point) and asserts the closed-disk contract agrees with Brute.
func TestGridExactRadiusClosedDisk(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10_000, MaxY: 10_000}
	center := geo.Point{X: 5_000, Y: 5_000}
	const r = 1500.0
	pois := []poi.POI{
		{ID: 1, Type: 0, Pos: geo.Point{X: center.X + r, Y: center.Y}},
		{ID: 2, Type: 1, Pos: geo.Point{X: center.X - r, Y: center.Y}},
		{ID: 3, Type: 2, Pos: geo.Point{X: center.X, Y: center.Y + r}},
		{ID: 4, Type: 3, Pos: geo.Point{X: center.X, Y: center.Y - r}},
		{ID: 5, Type: 4, Pos: geo.Point{X: center.X + r + 0.001, Y: center.Y}}, // just outside
	}
	brute := NewBrute(pois)
	grid := NewGrid(pois, bounds, 400)
	want := brute.Within(nil, center, r)
	got := grid.Within(nil, center, r)
	if len(want) != 4 {
		t.Fatalf("brute closed-disk contract broken: %d POIs at distance exactly r", len(want))
	}
	if w, g := idsOf(want), idsOf(got); len(w) != len(g) {
		t.Fatalf("grid %v != brute %v at exact distance r", g, w)
	}
	fw := poi.NewFreqVector(5)
	fg := poi.NewFreqVector(5)
	brute.CountTypes(fw, center, r)
	grid.CountTypes(fg, center, r)
	if !fw.Equal(fg) {
		t.Fatalf("CountTypes at exact distance r: grid %v != brute %v", fg, fw)
	}
}

// TestGridNegativeRadius asserts the shared "negative radius matches
// nothing" contract of every Index implementation — without the guard, a
// squared-radius comparison silently treats -r like +r.
func TestGridNegativeRadius(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 1_000, MaxY: 1_000}
	pois := makePOIs(200, 8, bounds, 9)
	brute := NewBrute(pois)
	grid := NewGrid(pois, bounds, 100)
	center := geo.Point{X: 500, Y: 500}
	for _, radius := range []float64{-1, -500, -1e9} {
		if got := grid.Within(nil, center, radius); len(got) != 0 {
			t.Errorf("grid Within(r=%v) returned %d POIs", radius, len(got))
		}
		if got := brute.Within(nil, center, radius); len(got) != 0 {
			t.Errorf("brute Within(r=%v) returned %d POIs", radius, len(got))
		}
		fg := poi.NewFreqVector(8)
		fb := poi.NewFreqVector(8)
		grid.CountTypes(fg, center, radius)
		brute.CountTypes(fb, center, radius)
		if fg.Total() != 0 || fb.Total() != 0 {
			t.Errorf("CountTypes(r=%v) counted %d/%d POIs", radius, fg.Total(), fb.Total())
		}
	}
}

// TestGridRadiusLargerThanBounds sweeps radii well beyond the city
// extent — every POI (including clamped out-of-bounds ones) must be
// returned, and intermediate radii must agree with Brute.
func TestGridRadiusLargerThanBounds(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 2_000, MaxY: 1_500}
	pois := makePOIs(500, 12, bounds, 10)
	// A few POIs far outside bounds, clamped into border cells.
	pois = append(pois,
		poi.POI{ID: 9001, Type: 0, Pos: geo.Point{X: -5_000, Y: -5_000}},
		poi.POI{ID: 9002, Type: 1, Pos: geo.Point{X: 9_000, Y: 8_000}},
	)
	brute := NewBrute(pois)
	grid := NewGrid(pois, bounds, 250)
	src := rng.New(11)
	for trial := 0; trial < 60; trial++ {
		x, y := src.UniformIn(bounds.MinX-500, bounds.MinY-500, bounds.MaxX+500, bounds.MaxY+500)
		center := geo.Point{X: x, Y: y}
		for _, radius := range []float64{3_000, 10_000, 50_000} {
			want := idsOf(brute.Within(nil, center, radius))
			got := idsOf(grid.Within(nil, center, radius))
			if len(want) != len(got) {
				t.Fatalf("trial %d r=%v: %d vs brute %d", trial, radius, len(got), len(want))
			}
			fw := poi.NewFreqVector(12)
			fg := poi.NewFreqVector(12)
			brute.CountTypes(fw, center, radius)
			grid.CountTypes(fg, center, radius)
			if !fw.Equal(fg) {
				t.Fatalf("trial %d r=%v: freq %v vs brute %v", trial, radius, fg, fw)
			}
		}
	}
	if got := grid.Within(nil, geo.Point{X: 1_000, Y: 750}, 1e6); len(got) != len(pois) {
		t.Errorf("huge radius returned %d of %d POIs", len(got), len(pois))
	}
}

// TestGridClampedBorderDifferential stresses the border cells: a large
// fraction of POIs live outside the nominal bounds (clamped into border
// cells), where the fully-inside/fully-outside shortcuts must never
// fire.
func TestGridClampedBorderDifferential(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 4_000, MaxY: 4_000}
	// POIs over 3× the bounds: most are clamped.
	wild := geo.Rect{MinX: -4_000, MinY: -4_000, MaxX: 8_000, MaxY: 8_000}
	pois := makePOIs(1500, 10, wild, 12)
	brute := NewBrute(pois)
	grid := NewGrid(pois, bounds, 500)
	src := rng.New(13)
	for trial := 0; trial < 150; trial++ {
		x, y := src.UniformIn(wild.MinX, wild.MinY, wild.MaxX, wild.MaxY)
		center := geo.Point{X: x, Y: y}
		radius := src.Float64() * 5_000
		want := idsOf(brute.Within(nil, center, radius))
		got := idsOf(grid.Within(nil, center, radius))
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs brute %d (center %v r %v)", trial, len(got), len(want), center, radius)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: ID mismatch at %d", trial, i)
			}
		}
		fw := poi.NewFreqVector(10)
		fg := poi.NewFreqVector(10)
		brute.CountTypes(fw, center, radius)
		grid.CountTypes(fg, center, radius)
		if !fw.Equal(fg) {
			t.Fatalf("trial %d: freq %v vs brute %v", trial, fg, fw)
		}
	}
}

// BenchmarkIndexHistVsScan prices the per-cell histogram against the
// retained per-point scan on a dense metro-scale city, where most cells
// of a paper-range query are fully covered: the histogram path adds one
// entry per distinct type per covered cell, the scan increments once per
// POI. This is the index ablation pinned into BENCH_core.json.
func BenchmarkIndexHistVsScan(b *testing.B) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 20_000, MaxY: 20_000}
	pois := makePOIs(250_000, 60, bounds, 14)
	grid := NewGrid(pois, bounds, 1000)
	center := geo.Point{X: 10_000, Y: 10_000}
	out := poi.NewFreqVector(60)
	const radius = 3000

	b.Run("hist", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(out)
			grid.CountTypes(out, center, radius)
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(out)
			grid.countTypesScan(out, center, radius)
		}
	})
}

func BenchmarkIndexGridVsBrute(b *testing.B) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 30_000, MaxY: 30_000}
	pois := makePOIs(30_000, 272, bounds, 4)
	center := geo.Point{X: 15_000, Y: 15_000}
	out := poi.NewFreqVector(272)

	b.Run("grid", func(b *testing.B) {
		grid := NewGrid(pois, bounds, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(out)
			grid.CountTypes(out, center, 2000)
		}
	})
	b.Run("brute", func(b *testing.B) {
		brute := NewBrute(pois)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(out)
			brute.CountTypes(out, center, 2000)
		}
	})
}
