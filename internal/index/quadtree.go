package index

import (
	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// Quadtree is a point-region quadtree index. It adapts to non-uniform
// POI density (deep in dense districts, shallow in sparse outskirts),
// which trades pointer-chasing for fewer candidate scans on skewed data.
// The grid index remains the default; BenchmarkIndexQuadVsGrid quantifies
// the trade-off on clustered city layouts.
type Quadtree struct {
	root *qnode
	n    int
}

var _ Index = (*Quadtree)(nil)

// qnode is one quadtree cell: either a leaf holding up to leafCap POIs or
// an internal node with four children.
type qnode struct {
	bounds   geo.Rect
	pois     []poi.POI // leaf payload; nil for internal nodes
	children *[4]qnode // nil for leaves
	count    int       // POIs in this subtree
}

const (
	quadLeafCap  = 32
	quadMaxDepth = 16
)

// NewQuadtree builds a quadtree over pois covering bounds. POIs outside
// bounds are clamped onto the boundary so no point is lost.
func NewQuadtree(pois []poi.POI, bounds geo.Rect) *Quadtree {
	t := &Quadtree{root: &qnode{bounds: bounds}, n: len(pois)}
	for _, p := range pois {
		q := p
		q.Pos = clampInto(bounds, q.Pos)
		t.root.insert(q, 0)
	}
	return t
}

// clampInto pulls a point into the half-open bounds so quadrant descent
// terminates.
func clampInto(b geo.Rect, p geo.Point) geo.Point {
	p = b.Clamp(p)
	// Clamp may land on the exclusive max edge; nudge inside.
	if p.X >= b.MaxX {
		p.X = b.MaxX - 1e-9*(1+b.Width())
	}
	if p.Y >= b.MaxY {
		p.Y = b.MaxY - 1e-9*(1+b.Height())
	}
	return p
}

func (n *qnode) insert(p poi.POI, depth int) {
	n.count++
	if n.children == nil {
		if len(n.pois) < quadLeafCap || depth >= quadMaxDepth {
			n.pois = append(n.pois, p)
			return
		}
		// Split: redistribute the leaf payload.
		var ch [4]qnode
		for i, q := range n.bounds.Quadrants() {
			ch[i].bounds = q
		}
		n.children = &ch
		old := n.pois
		n.pois = nil
		for _, q := range old {
			c := n.childFor(q.Pos)
			c.insert(q, depth+1)
		}
	}
	n.childFor(p.Pos).insert(p, depth+1)
}

func (n *qnode) childFor(p geo.Point) *qnode {
	for i := range n.children {
		if n.children[i].bounds.Contains(p) {
			return &n.children[i]
		}
	}
	// Numerical edge: fall back to the last quadrant (closed edges).
	return &n.children[3]
}

// Within implements Index.
func (t *Quadtree) Within(dst []poi.POI, center geo.Point, radius float64) []poi.POI {
	t.root.scan(center, radius, func(p poi.POI) { dst = append(dst, p) })
	return dst
}

// CountTypes implements Index.
func (t *Quadtree) CountTypes(out poi.FreqVector, center geo.Point, radius float64) {
	t.root.scan(center, radius, func(p poi.POI) { out[p.Type]++ })
}

func (n *qnode) scan(center geo.Point, radius float64, emit func(poi.POI)) {
	if n.count == 0 || !n.bounds.IntersectsCircle(center, radius) {
		return
	}
	if n.children == nil {
		r2 := radius * radius
		for _, p := range n.pois {
			if geo.Dist2(p.Pos, center) <= r2 {
				emit(p)
			}
		}
		return
	}
	// Fully-covered subtrees skip per-point checks.
	if n.fullyInside(center, radius) {
		n.emitAll(emit)
		return
	}
	for i := range n.children {
		n.children[i].scan(center, radius, emit)
	}
}

func (n *qnode) fullyInside(center geo.Point, radius float64) bool {
	r2 := radius * radius
	b := n.bounds
	corners := [4]geo.Point{
		{X: b.MinX, Y: b.MinY},
		{X: b.MaxX, Y: b.MinY},
		{X: b.MinX, Y: b.MaxY},
		{X: b.MaxX, Y: b.MaxY},
	}
	for _, c := range corners {
		if geo.Dist2(c, center) > r2 {
			return false
		}
	}
	return true
}

func (n *qnode) emitAll(emit func(poi.POI)) {
	if n.children == nil {
		for _, p := range n.pois {
			emit(p)
		}
		return
	}
	for i := range n.children {
		n.children[i].emitAll(emit)
	}
}

// Len implements Index.
func (t *Quadtree) Len() int { return t.n }

// Depth returns the maximum depth of the tree (diagnostic).
func (t *Quadtree) Depth() int { return t.root.depth() }

func (n *qnode) depth() int {
	if n.children == nil {
		return 1
	}
	max := 0
	for i := range n.children {
		if d := n.children[i].depth(); d > max {
			max = d
		}
	}
	return 1 + max
}
