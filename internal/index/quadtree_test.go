package index

import (
	"testing"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

func TestQuadtreeMatchesBruteForce(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10_000, MaxY: 8_000}
	pois := makePOIs(3000, 25, bounds, 7)
	brute := NewBrute(pois)
	quad := NewQuadtree(pois, bounds)

	src := rng.New(8)
	for trial := 0; trial < 200; trial++ {
		x, y := src.UniformIn(bounds.MinX-500, bounds.MinY-500, bounds.MaxX+500, bounds.MaxY+500)
		center := geo.Point{X: x, Y: y}
		radius := 50 + src.Float64()*3500

		want := idsOf(brute.Within(nil, center, radius))
		got := idsOf(quad.Within(nil, center, radius))
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs brute %d (center %v r %v)",
				trial, len(got), len(want), center, radius)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: ID mismatch", trial)
			}
		}

		wantF := poi.NewFreqVector(25)
		gotF := poi.NewFreqVector(25)
		brute.CountTypes(wantF, center, radius)
		quad.CountTypes(gotF, center, radius)
		if !wantF.Equal(gotF) {
			t.Fatalf("trial %d: freq mismatch", trial)
		}
	}
}

func TestQuadtreeClustered(t *testing.T) {
	// Heavy clustering exercises deep subtrees and the fully-covered
	// fast path.
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 10_000, MaxY: 10_000}
	src := rng.New(9)
	pois := make([]poi.POI, 4000)
	for i := range pois {
		// Two tight clusters plus sparse background.
		var p geo.Point
		switch i % 10 {
		case 0:
			x, y := src.UniformIn(0, 0, 10_000, 10_000)
			p = geo.Point{X: x, Y: y}
		default:
			cx, cy := 2000.0, 2000.0
			if i%2 == 0 {
				cx, cy = 8000, 7000
			}
			p = geo.Point{X: src.Normal(cx, 150), Y: src.Normal(cy, 150)}
		}
		pois[i] = poi.POI{ID: poi.ID(i), Type: poi.TypeID(i % 5), Pos: bounds.Clamp(p)}
	}
	brute := NewBrute(pois)
	quad := NewQuadtree(pois, bounds)
	if quad.Depth() < 3 {
		t.Errorf("clustered data should deepen the tree, depth = %d", quad.Depth())
	}
	for trial := 0; trial < 100; trial++ {
		x, y := src.UniformIn(0, 0, 10_000, 10_000)
		center := geo.Point{X: x, Y: y}
		radius := 100 + src.Float64()*4000
		want := idsOf(brute.Within(nil, center, radius))
		got := idsOf(quad.Within(nil, center, radius))
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d", trial, len(got), len(want))
		}
	}
}

func TestQuadtreeEmptyAndEdges(t *testing.T) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	empty := NewQuadtree(nil, bounds)
	if empty.Len() != 0 {
		t.Errorf("Len = %d", empty.Len())
	}
	if got := empty.Within(nil, geo.Point{X: 50, Y: 50}, 1000); len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}

	// POIs exactly on the max edge (would escape half-open quadrants
	// without clamping).
	pois := []poi.POI{
		{ID: 1, Type: 0, Pos: geo.Point{X: 100, Y: 100}},
		{ID: 2, Type: 0, Pos: geo.Point{X: 0, Y: 0}},
		{ID: 3, Type: 0, Pos: geo.Point{X: 150, Y: 50}}, // outside: clamped
	}
	tree := NewQuadtree(pois, bounds)
	if tree.Len() != 3 {
		t.Fatalf("Len = %d", tree.Len())
	}
	got := tree.Within(nil, geo.Point{X: 100, Y: 100}, 1)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("max-edge POI lookup = %v", got)
	}
	got = tree.Within(nil, geo.Point{X: 100, Y: 50}, 1)
	if len(got) != 1 || got[0].ID != 3 {
		t.Errorf("clamped POI lookup = %v", got)
	}
}

func TestQuadtreeDuplicatePositions(t *testing.T) {
	// More identical points than leafCap must not split forever.
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	pois := make([]poi.POI, 200)
	for i := range pois {
		pois[i] = poi.POI{ID: poi.ID(i), Type: 0, Pos: geo.Point{X: 42, Y: 42}}
	}
	tree := NewQuadtree(pois, bounds)
	got := tree.Within(nil, geo.Point{X: 42, Y: 42}, 0.5)
	if len(got) != 200 {
		t.Errorf("got %d of 200 duplicates", len(got))
	}
	if d := tree.Depth(); d > quadMaxDepth+1 {
		t.Errorf("depth %d exceeds cap", d)
	}
}

func BenchmarkIndexQuadVsGrid(b *testing.B) {
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: 30_000, MaxY: 30_000}
	// Clustered layout, the regime quadtrees are built for.
	src := rng.New(10)
	pois := make([]poi.POI, 30_000)
	for i := range pois {
		cx := float64(2000 + (i%7)*4000)
		cy := float64(2000 + ((i/7)%7)*4000)
		pois[i] = poi.POI{
			ID:   poi.ID(i),
			Type: poi.TypeID(i % 100),
			Pos:  bounds.Clamp(geo.Point{X: src.Normal(cx, 300), Y: src.Normal(cy, 300)}),
		}
	}
	center := geo.Point{X: 14_000, Y: 14_000}
	out := poi.NewFreqVector(100)
	b.Run("quadtree", func(b *testing.B) {
		tree := NewQuadtree(pois, bounds)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(out)
			tree.CountTypes(out, center, 2000)
		}
	})
	b.Run("grid", func(b *testing.B) {
		grid := NewGrid(pois, bounds, 1000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(out)
			grid.CountTypes(out, center, 2000)
		}
	})
}
