// Package ml is a from-scratch, stdlib-only learning substrate replacing
// the scikit-learn models the paper uses: a soft-margin kernel SVM
// classifier (the sanitization-recovery attack of Fig. 2-3), an ε-SVR
// regressor (the trajectory-attack distance estimator of Fig. 8), a
// standard scaler, and a k-NN baseline.
//
// Both SVM and SVR are trained by dual coordinate descent with the bias
// folded into the kernel (K̃ = K + 1), a standard reformulation that
// removes the equality constraint from the dual and lets each coordinate
// be optimized in closed form. Kernel (Gram) matrices can be precomputed
// once and shared across the many per-type models the recovery attack
// trains over the same feature matrix.
package ml

import "math"

// Kernel computes the inner product of two feature vectors in an implicit
// feature space.
type Kernel interface {
	Eval(a, b []float64) float64
}

// RBF is the radial basis function kernel exp(−γ‖a−b‖²), the kernel the
// paper's prediction models use.
type RBF struct {
	Gamma float64
}

var _ Kernel = RBF{}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-k.Gamma * s)
}

// Linear is the plain dot-product kernel.
type Linear struct{}

var _ Kernel = Linear{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Gram holds a precomputed kernel matrix over a training set, with the
// +1 bias term already folded in. Build once with NewGram and share it
// across every model trained on the same features.
type Gram struct {
	X      [][]float64
	Kernel Kernel
	K      [][]float64 // K[i][j] = Kernel(X[i], X[j]) + 1
}

// NewGram computes the biased kernel matrix of x.
func NewGram(x [][]float64, kernel Kernel) *Gram {
	n := len(x)
	k := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range k {
		k[i] = flat[i*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		k[i][i] = kernel.Eval(x[i], x[i]) + 1
		for j := i + 1; j < n; j++ {
			v := kernel.Eval(x[i], x[j]) + 1
			k[i][j] = v
			k[j][i] = v
		}
	}
	return &Gram{X: x, Kernel: kernel, K: k}
}

// Len returns the number of training rows.
func (g *Gram) Len() int { return len(g.X) }

// EvalRow computes the biased kernel values between q and every training
// row. Models trained on the same Gram can share one row per query (see
// SVC.PredictKernelRow).
func (g *Gram) EvalRow(q []float64) []float64 { return g.evalRow(q) }

// evalRow computes the biased kernel values between q and every training
// row.
func (g *Gram) evalRow(q []float64) []float64 {
	out := make([]float64, len(g.X))
	for i, xi := range g.X {
		out[i] = g.Kernel.Eval(xi, q) + 1
	}
	return out
}
