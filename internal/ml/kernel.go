// Package ml is a from-scratch, stdlib-only learning substrate replacing
// the scikit-learn models the paper uses: a soft-margin kernel SVM
// classifier (the sanitization-recovery attack of Fig. 2-3), an ε-SVR
// regressor (the trajectory-attack distance estimator of Fig. 8), a
// standard scaler, and a k-NN baseline.
//
// Both SVM and SVR are trained by dual coordinate descent with the bias
// folded into the kernel (K̃ = K + 1), a standard reformulation that
// removes the equality constraint from the dual and lets each coordinate
// be optimized in closed form. Kernel (Gram) matrices can be precomputed
// once and shared across the many per-type models the recovery attack
// trains over the same feature matrix.
package ml

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Kernel computes the inner product of two feature vectors in an implicit
// feature space.
type Kernel interface {
	Eval(a, b []float64) float64
}

// RBF is the radial basis function kernel exp(−γ‖a−b‖²), the kernel the
// paper's prediction models use.
type RBF struct {
	Gamma float64
}

var _ Kernel = RBF{}

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-k.Gamma * s)
}

// Linear is the plain dot-product kernel.
type Linear struct{}

var _ Kernel = Linear{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Gram holds a precomputed kernel matrix over a training set, with the
// +1 bias term already folded in. Build once with NewGram and share it
// across every model trained on the same features.
type Gram struct {
	X      [][]float64
	Kernel Kernel
	K      [][]float64 // K[i][j] = Kernel(X[i], X[j]) + 1
}

// NewGram computes the biased kernel matrix of x, row-blocked across
// GOMAXPROCS workers: the matrix is symmetric, so workers claim rows
// from a shared counter, compute the upper-triangle entries of their row
// with a devirtualized kernel loop, and mirror each value — every
// (i,j)/(j,i) pair is written by exactly one worker, and every entry is
// the same float expression as the retained serial reference
// (TestGramParallelMatchesSerial pins bit-identity; the ablation is
// BenchmarkGramParallel).
func NewGram(x [][]float64, kernel Kernel) *Gram {
	return newGramN(x, kernel, runtime.GOMAXPROCS(0))
}

// newGramN is NewGram with an explicit worker bound — the hook the
// differential test and the ablation benchmark use.
func newGramN(x [][]float64, kernel Kernel, workers int) *Gram {
	n := len(x)
	k := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range k {
		k[i] = flat[i*n : (i+1)*n]
	}
	fillRow := rowFiller(x, k, kernel)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fillRow(i)
		}
		return &Gram{X: x, Kernel: kernel, K: k}
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fillRow(i)
			}
		}()
	}
	wg.Wait()
	return &Gram{X: x, Kernel: kernel, K: k}
}

// rowFiller returns the function computing row i's upper triangle and
// mirroring it. The common kernels dispatch once here to a concrete
// top-level row kernel — the interface dispatch per pair is measurable at
// Gram scale (n²/2 Eval calls), and top-level functions (unlike fat
// closures) keep the hot loop register-allocated and math.Exp inlined.
// Every float operation happens in the exact order of Kernel.Eval, so
// specialization never changes a bit.
func rowFiller(x [][]float64, k [][]float64, kernel Kernel) func(i int) {
	switch kc := kernel.(type) {
	case RBF:
		gamma := kc.Gamma
		return func(i int) { fillRowRBF(x, k, gamma, i) }
	case Linear:
		return func(i int) { fillRowLinear(x, k, i) }
	default:
		return func(i int) { fillRowEval(x, k, kernel, i) }
	}
}

// fillRowRBF computes row i of the biased RBF Gram (upper triangle plus
// mirror). The pair kernel lives in rbfBiased, a separate small function:
// outlining it keeps the squared-distance loop free of the register
// spills the inlined math.Exp call would force on the enclosing loop
// state (the exact reason the interface-dispatched reference was fast —
// RBF.Eval is such a function).
func fillRowRBF(x, k [][]float64, gamma float64, i int) {
	n := len(x)
	xi := x[i]
	ki := k[i]
	ki[i] = 1 + 1 // exp(0) + bias: ‖x_i−x_i‖² is exactly 0
	for j := i + 1; j < n; j++ {
		v := rbfBiased(gamma, xi, x[j])
		ki[j] = v
		k[j][i] = v
	}
}

// rbfBiased is exp(−γ‖a−b‖²) + 1 with the accumulation in RBF.Eval's
// exact operation order: the distance loop is unrolled 4-wide but each
// square still lands on the accumulator sequentially (s+d0², then +d1²,
// ...), so every intermediate float is the one the rolled reference
// produces. The b reslice trades the per-element bounds check for one
// up-front check. Kept out of line (see fillRowRBF).
//
//go:noinline
func rbfBiased(gamma float64, a, b []float64) float64 {
	b = b[:len(a)]
	s := 0.0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		s += d0 * d0
		d1 := a[i+1] - b[i+1]
		s += d1 * d1
		d2 := a[i+2] - b[i+2]
		s += d2 * d2
		d3 := a[i+3] - b[i+3]
		s += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-gamma*s) + 1
}

// fillRowLinear computes row i of the biased linear-kernel Gram.
func fillRowLinear(x, k [][]float64, i int) {
	n := len(x)
	xi := x[i]
	ki := k[i]
	ki[i] = dot(xi, xi) + 1
	for j := i + 1; j < n; j++ {
		v := dot(xi, x[j]) + 1
		ki[j] = v
		k[j][i] = v
	}
}

// fillRowEval is the interface-dispatched fallback for opaque kernels.
func fillRowEval(x, k [][]float64, kernel Kernel, i int) {
	n := len(x)
	xi := x[i]
	ki := k[i]
	ki[i] = kernel.Eval(xi, xi) + 1
	for j := i + 1; j < n; j++ {
		v := kernel.Eval(xi, x[j]) + 1
		ki[j] = v
		k[j][i] = v
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// newGramSerial is the retained pre-parallel reference implementation:
// interface-dispatched kernel evaluations over the upper triangle on one
// goroutine. It anchors the bit-identity differential test and the
// serial side of BenchmarkGramParallel.
func newGramSerial(x [][]float64, kernel Kernel) *Gram {
	n := len(x)
	k := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range k {
		k[i] = flat[i*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		k[i][i] = kernel.Eval(x[i], x[i]) + 1
		for j := i + 1; j < n; j++ {
			v := kernel.Eval(x[i], x[j]) + 1
			k[i][j] = v
			k[j][i] = v
		}
	}
	return &Gram{X: x, Kernel: kernel, K: k}
}

// Len returns the number of training rows.
func (g *Gram) Len() int { return len(g.X) }

// EvalRow computes the biased kernel values between q and every training
// row. Models trained on the same Gram can share one row per query (see
// SVC.PredictKernelRow).
func (g *Gram) EvalRow(q []float64) []float64 { return g.evalRow(q) }

// evalRow computes the biased kernel values between q and every training
// row.
func (g *Gram) evalRow(q []float64) []float64 {
	out := make([]float64, len(g.X))
	for i, xi := range g.X {
		out[i] = g.Kernel.Eval(xi, q) + 1
	}
	return out
}
