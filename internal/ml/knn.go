package ml

import (
	"fmt"
	"sort"
)

// KNN is a k-nearest-neighbour classifier used as the ablation baseline
// for the sanitization-recovery attack (the paper's model family is SVM;
// k-NN shows the attack is robust to the model choice).
type KNN struct {
	x [][]float64
	y []int
	k int
}

// NewKNN stores the training set for lazy classification. k is clamped to
// the training size.
func NewKNN(x [][]float64, y []int, k int) (*KNN, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("ml: NewKNN: bad training set (%d rows, %d labels)", len(x), len(y))
	}
	if k < 1 {
		k = 1
	}
	if k > len(x) {
		k = len(x)
	}
	return &KNN{x: x, y: y, k: k}, nil
}

// Predict returns the majority label among the k nearest training rows
// (squared Euclidean), breaking ties toward the smaller label.
func (m *KNN) Predict(q []float64) int {
	type cand struct {
		d2 float64
		y  int
	}
	cands := make([]cand, len(m.x))
	for i, xi := range m.x {
		d2 := 0.0
		for j := range xi {
			d := xi[j] - q[j]
			d2 += d * d
		}
		cands[i] = cand{d2: d2, y: m.y[i]}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d2 != cands[b].d2 {
			return cands[a].d2 < cands[b].d2
		}
		return cands[a].y < cands[b].y
	})
	votes := make(map[int]int)
	for i := 0; i < m.k; i++ {
		votes[cands[i].y]++
	}
	best, bestVotes := 0, -1
	for y, v := range votes {
		if v > bestVotes || (v == bestVotes && y < best) {
			best, bestVotes = y, v
		}
	}
	return best
}
