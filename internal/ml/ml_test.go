package ml

import (
	"math"
	"testing"

	"poiagg/internal/rng"
)

func TestRBFKernel(t *testing.T) {
	k := RBF{Gamma: 0.5}
	a := []float64{1, 2}
	if got := k.Eval(a, a); got != 1 {
		t.Errorf("self kernel = %v, want 1", got)
	}
	b := []float64{2, 2}
	want := math.Exp(-0.5)
	if got := k.Eval(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("Eval = %v, want %v", got, want)
	}
	if k.Eval(a, b) != k.Eval(b, a) {
		t.Error("kernel not symmetric")
	}
}

func TestLinearKernel(t *testing.T) {
	k := Linear{}
	if got := k.Eval([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Eval = %v", got)
	}
}

func TestGramSymmetricPSDDiagonal(t *testing.T) {
	src := rng.New(1)
	x := make([][]float64, 20)
	for i := range x {
		x[i] = []float64{src.Normal(0, 1), src.Normal(0, 1), src.Normal(0, 1)}
	}
	g := NewGram(x, RBF{Gamma: 1})
	if g.Len() != 20 {
		t.Fatalf("Len = %d", g.Len())
	}
	for i := 0; i < 20; i++ {
		if math.Abs(g.K[i][i]-2) > 1e-12 { // 1 (RBF self) + 1 (bias)
			t.Errorf("diag[%d] = %v", i, g.K[i][i])
		}
		for j := 0; j < 20; j++ {
			if g.K[i][j] != g.K[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if g.K[i][j] < 1 || g.K[i][j] > 2 {
				t.Fatalf("K[%d][%d] = %v outside [1,2]", i, j, g.K[i][j])
			}
		}
	}
}

// randomRows builds a seeded feature matrix for the Gram differentials.
func randomRows(seed uint64, n, dim int) [][]float64 {
	src := rng.New(seed)
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, dim)
		for d := range row {
			row[d] = src.Normal(0, 2)
		}
		x[i] = row
	}
	return x
}

// fixedKernel is an opaque kernel that defeats the rowFiller type switch,
// exercising the interface-dispatch fallback path.
type fixedKernel struct{ RBF }

// TestGramParallelMatchesSerial pins the row-blocked, devirtualized Gram
// against the retained serial interface-dispatched reference, bit for
// bit, for every rowFiller arm (RBF, Linear, opaque kernel) — with the
// worker count forced to 4 so the pooled path runs even on one core.
func TestGramParallelMatchesSerial(t *testing.T) {
	x := randomRows(5, 150, 17)
	kernels := []struct {
		name string
		k    Kernel
	}{
		{"rbf", RBF{Gamma: 0.07}},
		{"linear", Linear{}},
		{"opaque", fixedKernel{RBF{Gamma: 0.07}}},
	}
	for _, tc := range kernels {
		want := newGramSerial(x, tc.k)
		got := newGramN(x, tc.k, 4)
		for i := range want.K {
			for j := range want.K[i] {
				if want.K[i][j] != got.K[i][j] {
					t.Fatalf("%s: K[%d][%d] = %v, serial %v", tc.name, i, j, got.K[i][j], want.K[i][j])
				}
			}
		}
	}
	// Degenerate sizes through the public constructor.
	for _, n := range []int{0, 1, 2} {
		small := randomRows(6, n, 3)
		want := newGramSerial(small, RBF{Gamma: 1})
		got := NewGram(small, RBF{Gamma: 1})
		if len(want.K) != len(got.K) {
			t.Fatalf("n=%d: size mismatch", n)
		}
		for i := range want.K {
			for j := range want.K[i] {
				if want.K[i][j] != got.K[i][j] {
					t.Fatalf("n=%d: K[%d][%d] differs", n, i, j)
				}
			}
		}
	}
}

// BenchmarkGramParallel is the Gram ablation pinned into BENCH_core.json:
// NewGram (row-blocked across GOMAXPROCS, devirtualized kernel loops)
// against the retained serial interface-dispatched reference. On one core
// the gain is pure devirtualization; workers add linearly on multi-core.
func BenchmarkGramParallel(b *testing.B) {
	x := randomRows(7, 600, 40)
	kernel := RBF{Gamma: 0.05}
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewGram(x, kernel)
		}
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			newGramSerial(x, kernel)
		}
	})
}

func TestScaler(t *testing.T) {
	x := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s, err := FitScaler(x)
	if err != nil {
		t.Fatal(err)
	}
	scaled := s.TransformAll(x)
	// Column 0: mean 3, std sqrt(8/3).
	col0Mean := (scaled[0][0] + scaled[1][0] + scaled[2][0]) / 3
	if math.Abs(col0Mean) > 1e-12 {
		t.Errorf("scaled mean = %v", col0Mean)
	}
	// Zero-variance column stays centered, unscaled.
	for i := range scaled {
		if scaled[i][1] != 0 {
			t.Errorf("constant column scaled to %v", scaled[i][1])
		}
	}
}

func TestScalerErrors(t *testing.T) {
	if _, err := FitScaler(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := FitScaler([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged accepted")
	}
}

// twoBlobs builds a linearly separable 2-class dataset.
func twoBlobs(n int, seed uint64) (x [][]float64, y []int) {
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x = append(x, []float64{src.Normal(-2, 0.5), src.Normal(-2, 0.5)})
			y = append(y, 0)
		} else {
			x = append(x, []float64{src.Normal(2, 0.5), src.Normal(2, 0.5)})
			y = append(y, 1)
		}
	}
	return x, y
}

func TestSVCSeparableBlobs(t *testing.T) {
	x, y := twoBlobs(100, 2)
	g := NewGram(x, RBF{Gamma: 0.5})
	svc, err := TrainSVC(g, y, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	xt, yt := twoBlobs(50, 3)
	correct := 0
	for i := range xt {
		if svc.Predict(xt[i]) == yt[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xt)); acc < 0.95 {
		t.Errorf("accuracy = %v, want ≥0.95", acc)
	}
	if got := svc.Classes(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Classes = %v", got)
	}
}

func TestSVCNonlinearXOR(t *testing.T) {
	// XOR is not linearly separable; the RBF kernel must handle it.
	src := rng.New(4)
	var x [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		a := src.Normal(0, 0.3)
		b := src.Normal(0, 0.3)
		qx := float64(1 - 2*(i%2))     // ±1
		qy := float64(1 - 2*((i/2)%2)) // ±1
		x = append(x, []float64{qx + a, qy + b})
		if qx*qy > 0 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	g := NewGram(x, RBF{Gamma: 1.0})
	svc, err := TrainSVC(g, y, SVMConfig{C: 5, Epochs: 100, Tol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	pred := svc.PredictBatch(x)
	correct := 0
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.95 {
		t.Errorf("XOR training accuracy = %v, want ≥0.95", acc)
	}
}

func TestSVCMulticlass(t *testing.T) {
	src := rng.New(5)
	var x [][]float64
	var y []int
	centers := [][2]float64{{-3, 0}, {3, 0}, {0, 4}}
	for i := 0; i < 240; i++ {
		c := i % 3
		x = append(x, []float64{src.Normal(centers[c][0], 0.6), src.Normal(centers[c][1], 0.6)})
		y = append(y, c+10) // arbitrary labels
	}
	g := NewGram(x, RBF{Gamma: 0.5})
	svc, err := TrainSVC(g, y, DefaultSVMConfig())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range x {
		if svc.Predict(x[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.95 {
		t.Errorf("multiclass accuracy = %v", acc)
	}
}

func TestTrainSVCErrors(t *testing.T) {
	g := NewGram([][]float64{{1}, {2}}, Linear{})
	if _, err := TrainSVC(g, []int{1}, DefaultSVMConfig()); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := TrainSVC(g, []int{1, 1}, DefaultSVMConfig()); err == nil {
		t.Error("single class accepted")
	}
}

func TestSVRLinearFunction(t *testing.T) {
	src := rng.New(6)
	var x [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		a := src.Float64()*4 - 2
		x = append(x, []float64{a})
		y = append(y, 3*a+1)
	}
	g := NewGram(x, RBF{Gamma: 0.5})
	svr, err := TrainSVR(g, y, SVRConfig{C: 50, Epsilon: 0.05, Epochs: 200, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for i := -15; i <= 15; i++ {
		a := float64(i) / 10
		got := svr.Predict([]float64{a})
		want := 3*a + 1
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.4 {
		t.Errorf("max abs error = %v, want < 0.4", maxErr)
	}
}

func TestSVRNonlinear(t *testing.T) {
	src := rng.New(7)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := src.Float64()*6 - 3
		x = append(x, []float64{a})
		y = append(y, math.Sin(a))
	}
	g := NewGram(x, RBF{Gamma: 1})
	svr, err := TrainSVR(g, y, SVRConfig{C: 20, Epsilon: 0.02, Epochs: 300, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	sumErr := 0.0
	const probes = 30
	for i := 0; i < probes; i++ {
		a := -2.5 + 5*float64(i)/probes
		sumErr += math.Abs(svr.Predict([]float64{a}) - math.Sin(a))
	}
	if mae := sumErr / probes; mae > 0.1 {
		t.Errorf("MAE = %v, want < 0.1", mae)
	}
	if sf := svr.SupportFraction(); sf <= 0 || sf > 1 {
		t.Errorf("SupportFraction = %v", sf)
	}
}

func TestTrainSVRErrors(t *testing.T) {
	g := NewGram([][]float64{{1}}, Linear{})
	if _, err := TrainSVR(g, []float64{1, 2}, DefaultSVRConfig()); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSVRPredictBatch(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{0, 1, 2}
	g := NewGram(x, Linear{})
	svr, err := TrainSVR(g, y, SVRConfig{C: 10, Epsilon: 0.01, Epochs: 100, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	out := svr.PredictBatch(x)
	if len(out) != 3 {
		t.Fatalf("batch len = %d", len(out))
	}
	for i := range out {
		if math.Abs(out[i]-y[i]) > 0.3 {
			t.Errorf("pred[%d] = %v, want ~%v", i, out[i], y[i])
		}
	}
}

func TestKNN(t *testing.T) {
	x, y := twoBlobs(60, 8)
	knn, err := NewKNN(x, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	xt, yt := twoBlobs(40, 9)
	correct := 0
	for i := range xt {
		if knn.Predict(xt[i]) == yt[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xt)); acc < 0.95 {
		t.Errorf("kNN accuracy = %v", acc)
	}
}

func TestKNNValidation(t *testing.T) {
	if _, err := NewKNN(nil, nil, 3); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewKNN([][]float64{{1}}, []int{1, 2}, 3); err == nil {
		t.Error("mismatch accepted")
	}
	// k clamping.
	knn, err := NewKNN([][]float64{{0}, {1}}, []int{0, 1}, 99)
	if err != nil {
		t.Fatal(err)
	}
	_ = knn.Predict([]float64{0.1})
}

func BenchmarkRecoverySVMVsKNN(b *testing.B) {
	x, y := twoBlobs(400, 10)
	b.Run("svm-train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := NewGram(x, RBF{Gamma: 0.5})
			if _, err := TrainSVC(g, y, DefaultSVMConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	g := NewGram(x, RBF{Gamma: 0.5})
	svc, err := TrainSVC(g, y, DefaultSVMConfig())
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{0.5, 0.5}
	b.Run("svm-predict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc.Predict(q)
		}
	})
	knn, err := NewKNN(x, y, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("knn-predict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knn.Predict(q)
		}
	})
}
