package ml

import (
	"fmt"

	"poiagg/internal/rng"
)

// Split partitions indices [0, n) into a train and test set with the
// given test fraction, shuffled deterministically from seed.
func Split(n int, testFrac float64, seed uint64) (train, test []int, err error) {
	if n <= 1 {
		return nil, nil, fmt.Errorf("ml: Split: need ≥2 samples, got %d", n)
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("ml: Split: test fraction must be in (0,1), got %v", testFrac)
	}
	src := rng.New(seed)
	perm := src.Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest < 1 {
		nTest = 1
	}
	if nTest >= n {
		nTest = n - 1
	}
	test = append(test, perm[:nTest]...)
	train = append(train, perm[nTest:]...)
	return train, test, nil
}

// KFold yields k deterministic folds of [0, n): fold i's test set is the
// i-th shard of a seeded permutation, its train set the rest.
func KFold(n, k int, seed uint64) (folds [][2][]int, err error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("ml: KFold: need 2 ≤ k ≤ n, got k=%d n=%d", k, n)
	}
	src := rng.New(seed)
	perm := src.Perm(n)
	folds = make([][2][]int, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		folds[i] = [2][]int{train, test}
	}
	return folds, nil
}

// gather selects the given rows of x.
func gather[T any](x []T, idx []int) []T {
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

// CrossValidateSVC returns the mean k-fold accuracy of an SVC with the
// given kernel parameters on (x, y). Features are scaled per fold (no
// leakage from test rows).
func CrossValidateSVC(x [][]float64, y []int, gamma float64, cfg SVMConfig, k int, seed uint64) (float64, error) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, fmt.Errorf("ml: CrossValidateSVC: bad data (%d rows, %d labels)", len(x), len(y))
	}
	folds, err := KFold(len(x), k, seed)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, fold := range folds {
		trainIdx, testIdx := fold[0], fold[1]
		xt := gather(x, trainIdx)
		yt := gather(y, trainIdx)
		scaler, err := FitScaler(xt)
		if err != nil {
			return 0, err
		}
		gram := NewGram(scaler.TransformAll(xt), RBF{Gamma: gamma})
		svc, err := TrainSVC(gram, yt, cfg)
		if err != nil {
			// Single-class folds count as chance-level accuracy via the
			// majority constant.
			total += constantAccuracy(yt, gather(y, testIdx))
			continue
		}
		correct := 0
		for _, j := range testIdx {
			if svc.Predict(scaler.Transform(x[j])) == y[j] {
				correct++
			}
		}
		total += float64(correct) / float64(len(testIdx))
	}
	return total / float64(len(folds)), nil
}

// constantAccuracy scores predicting the training majority class.
func constantAccuracy(trainY, testY []int) float64 {
	counts := make(map[int]int)
	for _, v := range trainY {
		counts[v]++
	}
	best, bestN := 0, -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	correct := 0
	for _, v := range testY {
		if v == best {
			correct++
		}
	}
	if len(testY) == 0 {
		return 0
	}
	return float64(correct) / float64(len(testY))
}

// SVCGrid is a hyperparameter grid for GridSearchSVC.
type SVCGrid struct {
	Gammas []float64
	Cs     []float64
}

// GridSearchResult reports the best configuration found.
type GridSearchResult struct {
	Gamma    float64
	C        float64
	Accuracy float64
}

// GridSearchSVC selects (γ, C) by k-fold cross-validation, breaking ties
// toward the first grid entry. The tuned constants in the attack package
// (recovery γ = 0.05, C = 10) were chosen with this procedure.
func GridSearchSVC(x [][]float64, y []int, grid SVCGrid, cfg SVMConfig, k int, seed uint64) (GridSearchResult, error) {
	if len(grid.Gammas) == 0 || len(grid.Cs) == 0 {
		return GridSearchResult{}, fmt.Errorf("ml: GridSearchSVC: empty grid")
	}
	best := GridSearchResult{Accuracy: -1}
	for _, gamma := range grid.Gammas {
		for _, c := range grid.Cs {
			cc := cfg
			cc.C = c
			acc, err := CrossValidateSVC(x, y, gamma, cc, k, seed)
			if err != nil {
				return GridSearchResult{}, err
			}
			if acc > best.Accuracy {
				best = GridSearchResult{Gamma: gamma, C: c, Accuracy: acc}
			}
		}
	}
	return best, nil
}

// ConfusionMatrix counts prediction outcomes: out[i][j] is the number of
// samples with true class classes[i] predicted as classes[j]. The class
// list is returned in sorted order.
func ConfusionMatrix(truth, pred []int) (classes []int, matrix [][]int, err error) {
	if len(truth) != len(pred) {
		return nil, nil, fmt.Errorf("ml: ConfusionMatrix: length mismatch %d vs %d", len(truth), len(pred))
	}
	seen := make(map[int]bool)
	for _, v := range truth {
		seen[v] = true
	}
	for _, v := range pred {
		seen[v] = true
	}
	for v := range seen {
		classes = append(classes, v)
	}
	sortInts(classes)
	idx := make(map[int]int, len(classes))
	for i, v := range classes {
		idx[v] = i
	}
	matrix = make([][]int, len(classes))
	for i := range matrix {
		matrix[i] = make([]int, len(classes))
	}
	for i := range truth {
		matrix[idx[truth[i]]][idx[pred[i]]]++
	}
	return classes, matrix, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
