package ml

import (
	"math"
	"testing"
)

func TestSplit(t *testing.T) {
	train, test, err := Split(100, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 20 || len(train) != 80 {
		t.Errorf("split sizes %d/%d", len(train), len(test))
	}
	seen := make(map[int]bool)
	for _, i := range append(append([]int{}, train...), test...) {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad index %d", i)
		}
		seen[i] = true
	}
	// Determinism.
	train2, _, _ := Split(100, 0.2, 1)
	for i := range train {
		if train[i] != train2[i] {
			t.Fatal("Split not deterministic")
		}
	}
	if _, _, err := Split(1, 0.5, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, _, err := Split(10, 0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	// Tiny fractions still yield at least one test sample.
	_, test, err = Split(10, 0.01, 1)
	if err != nil || len(test) != 1 {
		t.Errorf("tiny fraction: %d test samples, err %v", len(test), err)
	}
}

func TestKFold(t *testing.T) {
	folds, err := KFold(10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("%d folds", len(folds))
	}
	testSeen := make(map[int]int)
	for _, fold := range folds {
		train, test := fold[0], fold[1]
		if len(train)+len(test) != 10 {
			t.Fatalf("fold sizes %d+%d", len(train), len(test))
		}
		inTrain := make(map[int]bool)
		for _, i := range train {
			inTrain[i] = true
		}
		for _, i := range test {
			if inTrain[i] {
				t.Fatal("index in both train and test")
			}
			testSeen[i]++
		}
	}
	for i := 0; i < 10; i++ {
		if testSeen[i] != 1 {
			t.Errorf("index %d in %d test folds", i, testSeen[i])
		}
	}
	if _, err := KFold(5, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KFold(3, 5, 1); err == nil {
		t.Error("k>n accepted")
	}
}

func TestCrossValidateSVCSeparable(t *testing.T) {
	x, y := twoBlobs(120, 11)
	acc, err := CrossValidateSVC(x, y, 0.5, DefaultSVMConfig(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("CV accuracy %v on separable blobs", acc)
	}
	if _, err := CrossValidateSVC(nil, nil, 0.5, DefaultSVMConfig(), 3, 1); err == nil {
		t.Error("empty data accepted")
	}
}

func TestCrossValidateSVCSingleClassFolds(t *testing.T) {
	// All-one-class data: TrainSVC fails per fold; CV falls back to the
	// majority constant, which is 100% accurate here.
	x := make([][]float64, 20)
	y := make([]int, 20)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = 7
	}
	acc, err := CrossValidateSVC(x, y, 0.1, DefaultSVMConfig(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("constant-class CV accuracy %v", acc)
	}
}

func TestGridSearchSVC(t *testing.T) {
	x, y := twoBlobs(100, 12)
	res, err := GridSearchSVC(x, y, SVCGrid{
		Gammas: []float64{1e-6, 0.5},
		Cs:     []float64{1e-6, 1},
	}, SVMConfig{Epochs: 40, Tol: 1e-4}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The degenerate gamma collapses the kernel to a constant and
	// underfits; the search must pick the sensible width (either C works
	// on blobs this separable).
	if res.Gamma != 0.5 {
		t.Errorf("picked gamma=%v C=%v (acc %v)", res.Gamma, res.C, res.Accuracy)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("best accuracy %v", res.Accuracy)
	}
	if _, err := GridSearchSVC(x, y, SVCGrid{}, DefaultSVMConfig(), 3, 1); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestConfusionMatrix(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2}
	pred := []int{0, 1, 1, 1, 0}
	classes, m, err := ConfusionMatrix(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 3 || classes[0] != 0 || classes[2] != 2 {
		t.Fatalf("classes = %v", classes)
	}
	want := [][]int{{1, 1, 0}, {0, 2, 0}, {1, 0, 0}}
	for i := range want {
		for j := range want[i] {
			if m[i][j] != want[i][j] {
				t.Errorf("m[%d][%d] = %d, want %d", i, j, m[i][j], want[i][j])
			}
		}
	}
	// Trace equals correct count.
	trace := m[0][0] + m[1][1] + m[2][2]
	if trace != 3 {
		t.Errorf("trace = %d", trace)
	}
	if _, _, err := ConfusionMatrix([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestConfusionMatrixTotals(t *testing.T) {
	truth := []int{1, 2, 3, 1, 2, 3, 1}
	pred := []int{1, 1, 1, 2, 2, 3, 3}
	_, m, err := ConfusionMatrix(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range m {
		for j := range m[i] {
			total += m[i][j]
		}
	}
	if total != len(truth) {
		t.Errorf("matrix total %d != %d samples", total, len(truth))
	}
	if math.IsNaN(float64(total)) {
		t.Fatal("unreachable")
	}
}
