package ml

import (
	"fmt"
	"math"
)

// StandardScaler centers features to zero mean and scales them to unit
// standard deviation, matching the preprocessing the paper applies to all
// prediction-model samples. Features with zero variance are left centered
// but unscaled.
type StandardScaler struct {
	mean []float64
	std  []float64
}

// FitScaler computes per-feature means and standard deviations of x.
func FitScaler(x [][]float64) (*StandardScaler, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("ml: FitScaler: empty training set")
	}
	d := len(x[0])
	mean := make([]float64, d)
	for _, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("ml: FitScaler: ragged rows (%d vs %d)", len(row), d)
		}
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(x))
	}
	std := make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			dlt := v - mean[j]
			std[j] += dlt * dlt
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(x)))
		if std[j] == 0 {
			std[j] = 1
		}
	}
	return &StandardScaler{mean: mean, std: std}, nil
}

// Transform returns a scaled copy of row.
func (s *StandardScaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// TransformAll returns scaled copies of every row.
func (s *StandardScaler) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}
