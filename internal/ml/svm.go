package ml

import (
	"fmt"
	"sort"
)

// SVMConfig configures SVM training.
type SVMConfig struct {
	// C is the soft-margin penalty; larger fits the training data harder.
	C float64
	// Epochs caps full passes of dual coordinate descent.
	Epochs int
	// Tol stops training early when the largest dual update in a pass
	// falls below it.
	Tol float64
}

// DefaultSVMConfig mirrors common library defaults.
func DefaultSVMConfig() SVMConfig {
	return SVMConfig{C: 1.0, Epochs: 60, Tol: 1e-4}
}

// binarySVM is a two-class kernel SVM scoring function built from dual
// coefficients over a shared Gram matrix.
type binarySVM struct {
	alphaY []float64 // α_i·y_i for every training row (sparse in practice)
}

// trainBinary fits a binary SVM on the Gram matrix with labels y in
// {-1, +1} by dual coordinate descent: each coordinate update is
// α_i ← clip(α_i + (1 − y_i·f(x_i)) / K̃_ii, 0, C), which is the exact
// maximizer of the dual objective in that coordinate.
func trainBinary(g *Gram, y []float64, cfg SVMConfig) binarySVM {
	n := g.Len()
	alpha := make([]float64, n)
	// grad[i] caches (Qα)_i where Q_ij = y_i y_j K̃_ij; the dual gradient
	// is 1 − grad[i].
	grad := make([]float64, n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			qii := g.K[i][i]
			if qii <= 0 {
				continue
			}
			d := (1 - grad[i]) / qii
			newA := alpha[i] + d
			if newA < 0 {
				newA = 0
			} else if newA > cfg.C {
				newA = cfg.C
			}
			delta := newA - alpha[i]
			if delta == 0 {
				continue
			}
			alpha[i] = newA
			if ad := abs(delta); ad > maxDelta {
				maxDelta = ad
			}
			// Update cached gradients: (Qα)_j += y_j y_i K̃_ij Δ.
			yiD := y[i] * delta
			ki := g.K[i]
			for j := 0; j < n; j++ {
				grad[j] += y[j] * yiD * ki[j]
			}
		}
		if maxDelta < cfg.Tol {
			break
		}
	}
	alphaY := make([]float64, n)
	for i := range alphaY {
		alphaY[i] = alpha[i] * y[i]
	}
	return binarySVM{alphaY: alphaY}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// score evaluates the decision function f(q) = Σ α_i y_i K̃(x_i, q) given
// the precomputed biased kernel row.
func (m binarySVM) score(kRow []float64) float64 {
	s := 0.0
	for i, a := range m.alphaY {
		if a != 0 {
			s += a * kRow[i]
		}
	}
	return s
}

// SVC is a multi-class kernel SVM classifier trained one-vs-rest, the
// drop-in replacement for the paper's scikit-learn SVC with RBF kernel.
type SVC struct {
	gram    *Gram
	classes []int
	models  []binarySVM
}

// TrainSVC fits a one-vs-rest SVC on the precomputed Gram matrix and the
// integer labels y. It returns an error when labels are empty or have a
// single class (prediction would be trivial; callers should shortcut).
func TrainSVC(g *Gram, y []int, cfg SVMConfig) (*SVC, error) {
	if g.Len() == 0 || len(y) != g.Len() {
		return nil, fmt.Errorf("ml: TrainSVC: labels (%d) must match gram rows (%d)", len(y), g.Len())
	}
	classSet := make(map[int]struct{})
	for _, c := range y {
		classSet[c] = struct{}{}
	}
	classes := make([]int, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	if len(classes) < 2 {
		return nil, fmt.Errorf("ml: TrainSVC: need ≥2 classes, got %d", len(classes))
	}
	models := make([]binarySVM, len(classes))
	bin := make([]float64, len(y))
	for ci, c := range classes {
		for i, yi := range y {
			if yi == c {
				bin[i] = 1
			} else {
				bin[i] = -1
			}
		}
		models[ci] = trainBinary(g, bin, cfg)
	}
	return &SVC{gram: g, classes: classes, models: models}, nil
}

// Classes returns the sorted class labels the model distinguishes.
func (s *SVC) Classes() []int {
	out := make([]int, len(s.classes))
	copy(out, s.classes)
	return out
}

// Predict returns the class with the highest one-vs-rest score for q
// (unscaled callers must apply the same scaler used in training).
func (s *SVC) Predict(q []float64) int {
	return s.PredictKernelRow(s.gram.evalRow(q))
}

// KernelRow computes the biased kernel values between q and the training
// rows. When many models share one Gram matrix (e.g. the per-type
// recovery classifiers), compute the row once with any of them and pass
// it to each model's PredictKernelRow.
func (s *SVC) KernelRow(q []float64) []float64 { return s.gram.evalRow(q) }

// PredictKernelRow classifies from a precomputed kernel row (see
// KernelRow).
func (s *SVC) PredictKernelRow(kRow []float64) int {
	best := 0
	bestScore := s.models[0].score(kRow)
	for ci := 1; ci < len(s.models); ci++ {
		if sc := s.models[ci].score(kRow); sc > bestScore {
			bestScore = sc
			best = ci
		}
	}
	return s.classes[best]
}

// PredictBatch predicts every row of x.
func (s *SVC) PredictBatch(x [][]float64) []int {
	out := make([]int, len(x))
	for i, q := range x {
		out[i] = s.Predict(q)
	}
	return out
}
