package ml

import "fmt"

// SVRConfig configures ε-SVR training.
type SVRConfig struct {
	// C is the regularization bound on the dual coefficients.
	C float64
	// Epsilon is the insensitive-tube half-width: training residuals
	// smaller than it incur no loss.
	Epsilon float64
	// Epochs caps full passes of dual coordinate descent.
	Epochs int
	// Tol stops training early when the largest coefficient update in a
	// pass falls below it.
	Tol float64
}

// DefaultSVRConfig mirrors common library defaults.
func DefaultSVRConfig() SVRConfig {
	return SVRConfig{C: 1.0, Epsilon: 0.1, Epochs: 80, Tol: 1e-4}
}

// SVR is an ε-insensitive support vector regressor, the drop-in
// replacement for the paper's scikit-learn SVR used to estimate the
// distance between two successive releases.
//
// Training minimizes the SVR dual in the combined coefficients
// β_i = α_i − α*_i ∈ [−C, C]:
//
//	min_β ½ βᵀK̃β − yᵀβ + ε‖β‖₁
//
// by exact coordinate descent (soft-thresholding per coordinate). The
// bias is folded into the kernel (K̃ = K + 1) which removes the Σβ = 0
// constraint.
type SVR struct {
	gram *Gram
	beta []float64
}

// TrainSVR fits an SVR over the precomputed Gram matrix and targets y.
func TrainSVR(g *Gram, y []float64, cfg SVRConfig) (*SVR, error) {
	n := g.Len()
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("ml: TrainSVR: targets (%d) must match gram rows (%d)", len(y), n)
	}
	beta := make([]float64, n)
	// resid[i] caches (K̃β)_i.
	kb := make([]float64, n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			kii := g.K[i][i]
			if kii <= 0 {
				continue
			}
			// Minimize over β_i with others fixed:
			// ½K̃iiβ² + (kb_i − K̃iiβ_i^old)β − y_iβ + ε|β|.
			u := y[i] - (kb[i] - kii*beta[i])
			var newB float64
			switch {
			case u > cfg.Epsilon:
				newB = (u - cfg.Epsilon) / kii
			case u < -cfg.Epsilon:
				newB = (u + cfg.Epsilon) / kii
			default:
				newB = 0
			}
			if newB > cfg.C {
				newB = cfg.C
			} else if newB < -cfg.C {
				newB = -cfg.C
			}
			delta := newB - beta[i]
			if delta == 0 {
				continue
			}
			beta[i] = newB
			if ad := abs(delta); ad > maxDelta {
				maxDelta = ad
			}
			ki := g.K[i]
			for j := 0; j < n; j++ {
				kb[j] += delta * ki[j]
			}
		}
		if maxDelta < cfg.Tol {
			break
		}
	}
	return &SVR{gram: g, beta: beta}, nil
}

// Predict evaluates the regressor at q.
func (s *SVR) Predict(q []float64) float64 {
	kRow := s.gram.evalRow(q)
	out := 0.0
	for i, b := range s.beta {
		if b != 0 {
			out += b * kRow[i]
		}
	}
	return out
}

// PredictBatch predicts every row of x.
func (s *SVR) PredictBatch(x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, q := range x {
		out[i] = s.Predict(q)
	}
	return out
}

// SupportFraction returns the fraction of training rows with nonzero dual
// coefficients — a sparsity diagnostic.
func (s *SVR) SupportFraction() float64 {
	if len(s.beta) == 0 {
		return 0
	}
	nz := 0
	for _, b := range s.beta {
		if b != 0 {
			nz++
		}
	}
	return float64(nz) / float64(len(s.beta))
}
