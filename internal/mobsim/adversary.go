package mobsim

import (
	"poiagg/internal/attack"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
)

// Adversary is an Observer that mounts the region re-identification
// attack on every observed release and scores itself against the ground
// truth.
type Adversary struct {
	svc *gsp.Service

	// Seen is the number of releases observed.
	Seen int
	// Unique is the number of releases with exactly one surviving
	// candidate.
	Unique int
	// Correct is the number of unique identifications whose radius-r
	// disk actually contains the user.
	Correct int
	// PerUser tracks correct identifications per user ID.
	PerUser map[int]int
}

var _ Observer = (*Adversary)(nil)

// NewAdversary returns an adversary attacking over the given prior
// knowledge (the public GSP).
func NewAdversary(svc *gsp.Service) *Adversary {
	return &Adversary{svc: svc, PerUser: make(map[int]int)}
}

// Observe implements Observer.
func (a *Adversary) Observe(rel Release) {
	a.Seen++
	res := attack.Region(a.svc, rel.F, rel.R)
	if !res.Success {
		return
	}
	a.Unique++
	if geo.Dist(res.Anchor.Pos, rel.Truth) <= rel.R {
		a.Correct++
		a.PerUser[rel.UserID]++
	}
}

// SuccessRate returns the fraction of observed releases that correctly
// re-identified the user.
func (a *Adversary) SuccessRate() float64 {
	if a.Seen == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Seen)
}
