// Package mobsim is a discrete-event simulator for the paper's LBS
// world: a population of users replays mobility traces in global
// timestamp order; at each observation a release policy decides whether
// the user queries, a release pipeline (a defense, or none) produces the
// frequency vector, and observers — adversaries, auditors, metric
// collectors — see exactly what the LBS application would see.
//
// The experiment drivers evaluate defenses location-by-location; the
// simulator complements them with a time-faithful replay, which is what
// trajectory-level attacks and per-session privacy budgets need.
package mobsim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
	"poiagg/internal/trajgen"
)

// Release is one observed release event, in the adversary's view: user
// identity, aggregate, metadata — and, for evaluation only, the ground
// truth location.
type Release struct {
	UserID int
	F      poi.FreqVector
	T      time.Time
	R      float64
	// Truth is the user's actual location. Observers implementing
	// attacks must not read it except to score themselves.
	Truth geo.Point
}

// Pipeline turns a location into the released vector (the defense).
type Pipeline func(src *rng.Source, l geo.Point, r float64) (poi.FreqVector, error)

// Policy decides whether a user issues a query at an observation.
// Implementations must be deterministic given src.
type Policy interface {
	ShouldQuery(src *rng.Source, userID int, t time.Time, l geo.Point) bool
}

// AlwaysQuery queries at every observation.
type AlwaysQuery struct{}

// ShouldQuery implements Policy.
func (AlwaysQuery) ShouldQuery(*rng.Source, int, time.Time, geo.Point) bool { return true }

// ProbabilisticQuery queries with probability P at each observation.
type ProbabilisticQuery struct{ P float64 }

// ShouldQuery implements Policy.
func (p ProbabilisticQuery) ShouldQuery(src *rng.Source, _ int, _ time.Time, _ geo.Point) bool {
	return src.Float64() < p.P
}

// MinGapQuery queries at most once per Gap per user.
type MinGapQuery struct {
	Gap  time.Duration
	last map[int]time.Time
}

// ShouldQuery implements Policy.
func (p *MinGapQuery) ShouldQuery(_ *rng.Source, userID int, t time.Time, _ geo.Point) bool {
	if p.last == nil {
		p.last = make(map[int]time.Time)
	}
	if last, ok := p.last[userID]; ok && t.Sub(last) < p.Gap {
		return false
	}
	p.last[userID] = t
	return true
}

// Observer consumes release events in global time order.
type Observer interface {
	Observe(rel Release)
}

// ObserverFunc adapts a function to Observer.
type ObserverFunc func(Release)

// Observe implements Observer.
func (f ObserverFunc) Observe(rel Release) { f(rel) }

// ErrorPolicy selects how pipeline failures are handled.
type ErrorPolicy int

// Error policies.
const (
	// FailFast aborts the simulation on the first pipeline error.
	FailFast ErrorPolicy = iota + 1
	// SkipErrors drops the failed release and continues; failures are
	// counted in the result. This models budget-exhausted users going
	// silent.
	SkipErrors
)

// Config parameterizes a simulation run.
type Config struct {
	// Trajectories is the user population's movement data; user IDs come
	// from the trajectories.
	Trajectories []trajgen.Trajectory
	// R is the query range in meters.
	R float64
	// Pipeline produces releases; nil means no releases at all.
	Pipeline Pipeline
	// Policy gates queries (default AlwaysQuery).
	Policy Policy
	// Observers see every successful release in time order.
	Observers []Observer
	// OnError selects failure handling (default FailFast).
	OnError ErrorPolicy
	// Seed drives policy and pipeline randomness.
	Seed uint64
}

// Result summarizes a run.
type Result struct {
	// Observations is the number of trajectory points replayed.
	Observations int
	// Queries is the number of observations the policy turned into
	// queries.
	Queries int
	// Releases is the number of successful releases delivered to
	// observers.
	Releases int
	// Failures is the number of pipeline errors (only with SkipErrors).
	Failures int
	// Start and End are the simulated time span actually replayed.
	Start, End time.Time
}

// cursor tracks one user's position in its trajectory.
type cursor struct {
	traj *trajgen.Trajectory
	i    int
}

// eventHeap orders cursors by their next observation time (ties by user
// ID for determinism).
type eventHeap []cursor

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	ta := h[a].traj.Points[h[a].i].T
	tb := h[b].traj.Points[h[b].i].T
	if !ta.Equal(tb) {
		return ta.Before(tb)
	}
	return h[a].traj.UserID < h[b].traj.UserID
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(cursor)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run replays the configured world and returns the summary.
func Run(cfg Config) (Result, error) {
	var res Result
	if len(cfg.Trajectories) == 0 {
		return res, errors.New("mobsim: no trajectories")
	}
	if cfg.R <= 0 {
		return res, fmt.Errorf("mobsim: query range must be positive, got %v", cfg.R)
	}
	if cfg.Pipeline == nil {
		return res, errors.New("mobsim: nil pipeline")
	}
	if cfg.Policy == nil {
		cfg.Policy = AlwaysQuery{}
	}
	if cfg.OnError == 0 {
		cfg.OnError = FailFast
	}

	src := rng.New(cfg.Seed)
	policySrc := src.Split(1)
	pipeSrc := src.Split(2)

	h := make(eventHeap, 0, len(cfg.Trajectories))
	for i := range cfg.Trajectories {
		tr := &cfg.Trajectories[i]
		if len(tr.Points) == 0 {
			continue
		}
		for j := 1; j < len(tr.Points); j++ {
			if tr.Points[j].T.Before(tr.Points[j-1].T) {
				return res, fmt.Errorf("mobsim: user %d has non-monotone timestamps", tr.UserID)
			}
		}
		h = append(h, cursor{traj: tr, i: 0})
	}
	if len(h) == 0 {
		return res, errors.New("mobsim: all trajectories empty")
	}
	heap.Init(&h)

	first := true
	for h.Len() > 0 {
		c := heap.Pop(&h).(cursor)
		pt := c.traj.Points[c.i]
		res.Observations++
		if first {
			res.Start = pt.T
			first = false
		}
		res.End = pt.T

		if cfg.Policy.ShouldQuery(policySrc, c.traj.UserID, pt.T, pt.Pos) {
			res.Queries++
			f, err := cfg.Pipeline(pipeSrc, pt.Pos, cfg.R)
			switch {
			case err != nil && cfg.OnError == FailFast:
				return res, fmt.Errorf("mobsim: pipeline for user %d at %v: %w", c.traj.UserID, pt.T, err)
			case err != nil:
				res.Failures++
			default:
				res.Releases++
				rel := Release{
					UserID: c.traj.UserID,
					F:      f,
					T:      pt.T,
					R:      cfg.R,
					Truth:  pt.Pos,
				}
				for _, obs := range cfg.Observers {
					obs.Observe(rel)
				}
			}
		}

		if c.i+1 < len(c.traj.Points) {
			heap.Push(&h, cursor{traj: c.traj, i: c.i + 1})
		}
	}
	return res, nil
}
