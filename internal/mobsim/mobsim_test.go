package mobsim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"poiagg/internal/citygen"
	"poiagg/internal/cloak"
	"poiagg/internal/defense"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
	"poiagg/internal/trajgen"
)

var (
	simOnce sync.Once
	simCity *citygen.City
	simSvc  *gsp.Service
	simTraj []trajgen.Trajectory
	simErr  error
)

func simFixture(t *testing.T) (*citygen.City, *gsp.Service, []trajgen.Trajectory) {
	t.Helper()
	simOnce.Do(func() {
		p := citygen.Beijing(41)
		p.NumPOIs = 2000
		p.NumTypes = 60
		p.Width, p.Height = 12_000, 12_000
		city, err := citygen.Generate(p)
		if err != nil {
			simErr = err
			return
		}
		simCity = city
		simSvc = gsp.NewService(city.City, 1<<14)
		tp := trajgen.DefaultTaxiParams(42)
		tp.NumTaxis = 12
		tp.PointsPerTaxi = 25
		simTraj, simErr = trajgen.Taxis(city.City, tp)
	})
	if simErr != nil {
		t.Fatal(simErr)
	}
	return simCity, simSvc, simTraj
}

func plainPipeline(svc *gsp.Service) Pipeline {
	return func(_ *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
		return svc.Freq(l, r), nil
	}
}

func TestRunGlobalTimeOrder(t *testing.T) {
	_, svc, trajs := simFixture(t)
	var times []time.Time
	obs := ObserverFunc(func(rel Release) { times = append(times, rel.T) })
	res, err := Run(Config{
		Trajectories: trajs,
		R:            800,
		Pipeline:     plainPipeline(svc),
		Observers:    []Observer{obs},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantObs := 0
	for _, tr := range trajs {
		wantObs += len(tr.Points)
	}
	if res.Observations != wantObs || res.Queries != wantObs || res.Releases != wantObs {
		t.Errorf("counts: %+v, want all %d", res, wantObs)
	}
	for i := 1; i < len(times); i++ {
		if times[i].Before(times[i-1]) {
			t.Fatalf("events out of order at %d", i)
		}
	}
	if !res.Start.Before(res.End) {
		t.Errorf("span %v..%v", res.Start, res.End)
	}
}

func TestRunPolicies(t *testing.T) {
	_, svc, trajs := simFixture(t)
	res, err := Run(Config{
		Trajectories: trajs,
		R:            800,
		Pipeline:     plainPipeline(svc),
		Policy:       ProbabilisticQuery{P: 0.5},
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Queries) / float64(res.Observations)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("probabilistic policy queried %.2f of observations", frac)
	}

	res, err = Run(Config{
		Trajectories: trajs,
		R:            800,
		Pipeline:     plainPipeline(svc),
		Policy:       &MinGapQuery{Gap: 20 * time.Minute},
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries >= res.Observations {
		t.Errorf("min-gap policy did not suppress any queries: %+v", res)
	}
	if res.Queries < len(trajs) {
		t.Errorf("min-gap policy suppressed first queries: %d < %d users", res.Queries, len(trajs))
	}
}

func TestRunErrorPolicies(t *testing.T) {
	_, svc, trajs := simFixture(t)
	boom := errors.New("boom")
	n := 0
	failing := func(_ *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
		n++
		if n%3 == 0 {
			return nil, boom
		}
		return svc.Freq(l, r), nil
	}
	if _, err := Run(Config{
		Trajectories: trajs, R: 800, Pipeline: failing, OnError: FailFast, Seed: 4,
	}); !errors.Is(err, boom) {
		t.Errorf("FailFast: %v", err)
	}
	n = 0
	res, err := Run(Config{
		Trajectories: trajs, R: 800, Pipeline: failing, OnError: SkipErrors, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Error("SkipErrors recorded no failures")
	}
	if res.Releases+res.Failures != res.Queries {
		t.Errorf("accounting: %d + %d != %d", res.Releases, res.Failures, res.Queries)
	}
}

func TestRunValidation(t *testing.T) {
	_, svc, trajs := simFixture(t)
	pipe := plainPipeline(svc)
	if _, err := Run(Config{R: 800, Pipeline: pipe}); err == nil {
		t.Error("no trajectories accepted")
	}
	if _, err := Run(Config{Trajectories: trajs, Pipeline: pipe}); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := Run(Config{Trajectories: trajs, R: 800}); err == nil {
		t.Error("nil pipeline accepted")
	}
	bad := []trajgen.Trajectory{{UserID: 1, Points: []trajgen.TimedPoint{
		{T: time.Unix(100, 0)}, {T: time.Unix(50, 0)},
	}}}
	if _, err := Run(Config{Trajectories: bad, R: 800, Pipeline: pipe}); err == nil {
		t.Error("non-monotone trajectory accepted")
	}
	empty := []trajgen.Trajectory{{UserID: 1}}
	if _, err := Run(Config{Trajectories: empty, R: 800, Pipeline: pipe}); err == nil {
		t.Error("all-empty trajectories accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	_, svc, trajs := simFixture(t)
	run := func() (Result, []int) {
		var users []int
		obs := ObserverFunc(func(rel Release) { users = append(users, rel.UserID) })
		res, err := Run(Config{
			Trajectories: trajs,
			R:            800,
			Pipeline:     plainPipeline(svc),
			Policy:       ProbabilisticQuery{P: 0.7},
			Observers:    []Observer{obs},
			Seed:         9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, users
	}
	r1, u1 := run()
	r2, u2 := run()
	if r1 != r2 || len(u1) != len(u2) {
		t.Fatalf("results differ: %+v vs %+v", r1, r2)
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("event order differs between identical runs")
		}
	}
}

func TestAdversaryPlainVsDefended(t *testing.T) {
	city, svc, trajs := simFixture(t)
	advPlain := NewAdversary(svc)
	if _, err := Run(Config{
		Trajectories: trajs, R: 800,
		Pipeline:  plainPipeline(svc),
		Observers: []Observer{advPlain},
		Seed:      5,
	}); err != nil {
		t.Fatal(err)
	}
	if advPlain.Seen == 0 || advPlain.Correct == 0 {
		t.Fatalf("plain adversary saw %d, correct %d", advPlain.Seen, advPlain.Correct)
	}
	if advPlain.Correct > advPlain.Unique {
		t.Fatal("correct exceeds unique")
	}

	pop := cloak.UniformPopulation(city.Bounds, 5000, 43)
	cfg := defense.DefaultDPReleaseConfig()
	cfg.Eps = 0.5
	mech, err := defense.NewDPRelease(svc, pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	advDP := NewAdversary(svc)
	if _, err := Run(Config{
		Trajectories: trajs, R: 800,
		Pipeline: func(src *rng.Source, l geo.Point, r float64) (poi.FreqVector, error) {
			return mech.Release(src, l, r)
		},
		Observers: []Observer{advDP},
		Seed:      5,
	}); err != nil {
		t.Fatal(err)
	}
	if advDP.SuccessRate() >= advPlain.SuccessRate() {
		t.Errorf("DP defense did not help: %.3f vs %.3f",
			advDP.SuccessRate(), advPlain.SuccessRate())
	}
}
