package obs

import (
	"context"
	"encoding/json"
	"log"
	"net/http"
	"time"
)

// Operational endpoints added by Instrument.
const (
	// PathMetrics serves the registry Snapshot as JSON.
	PathMetrics = "/v1/metrics"
	// PathHealthz reports liveness: 200 as long as the process serves.
	PathHealthz = "/healthz"
	// PathReadyz reports readiness via the configured check.
	PathReadyz = "/readyz"
)

// Option customizes Instrument.
type Option func(*instrumented)

// WithReadyCheck sets the readiness probe; a nil check (the default)
// reports ready. A non-nil error yields 503 with the error text.
func WithReadyCheck(check func() error) Option {
	return func(h *instrumented) { h.ready = check }
}

// WithRequestHook registers a callback invoked after every proxied
// request (not for the operational endpoints themselves) — the servers
// use it for their per-request log line.
func WithRequestHook(hook func(method, path string, status int, d time.Duration)) Option {
	return func(h *instrumented) { h.hook = hook }
}

// Instrument wraps next with per-route metrics (request count by status
// class, in-flight gauge, latency histogram keyed "METHOD /path") and
// mounts the operational endpoints /v1/metrics, /healthz, and /readyz.
// Requests to the operational endpoints are answered directly and are
// not recorded, so route counts reflect application traffic only.
func Instrument(reg *Registry, next http.Handler, opts ...Option) http.Handler {
	h := &instrumented{reg: reg, next: next}
	for _, opt := range opts {
		opt(h)
	}
	return h
}

type instrumented struct {
	reg   *Registry
	next  http.Handler
	ready func() error
	hook  func(method, path string, status int, d time.Duration)
}

func (h *instrumented) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case PathMetrics:
		h.serveMetrics(w, r)
		return
	case PathHealthz:
		writeStatus(w, http.StatusOK, "ok")
		return
	case PathReadyz:
		if h.ready != nil {
			if err := h.ready(); err != nil {
				writeStatus(w, http.StatusServiceUnavailable, err.Error())
				return
			}
		}
		writeStatus(w, http.StatusOK, "ready")
		return
	}

	route := h.reg.Route(r.Method + " " + r.URL.Path)
	route.InFlight.Inc()
	start := time.Now()
	sw := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	h.next.ServeHTTP(sw, r)
	d := time.Since(start)
	route.InFlight.Dec()
	route.ObserveRequest(sw.status, d)
	if h.hook != nil {
		h.hook(r.Method, r.URL.Path, sw.status, d)
	}
}

func (h *instrumented) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeStatus(w, http.StatusMethodNotAllowed, "metrics is GET-only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h.reg.Snapshot()); err != nil {
		log.Printf("obs: encode metrics: %v", err)
	}
}

// writeStatus emits the tiny JSON envelope the operational endpoints use.
func writeStatus(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"status": msg})
}

// statusRecorder captures the response status for the metrics layer.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// StartSummary launches a goroutine that logs a one-line traffic summary
// every interval until ctx is cancelled: total requests, 5xx count,
// in-flight requests, and pooled latency quantiles. Intervals with no
// traffic since the previous line are skipped to keep idle logs quiet.
func StartSummary(ctx context.Context, logger *log.Logger, reg *Registry, interval time.Duration) {
	if logger == nil || interval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		var lastReqs uint64
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				reqs, errs, inflight := reg.Totals()
				if reqs == lastReqs {
					continue
				}
				lastReqs = reqs
				p50, p99 := pooledQuantiles(reg)
				logger.Printf("stats: %d requests (%d 5xx, %d in flight) p50=%s p99=%s",
					reqs, errs, inflight, p50.Round(time.Microsecond), p99.Round(time.Microsecond))
			}
		}
	}()
}

// pooledQuantiles merges every route's histogram buckets and reports the
// pooled p50/p99 — an overview, not a per-route SLO.
func pooledQuantiles(reg *Registry) (p50, p99 time.Duration) {
	var pooled Histogram
	reg.mu.RLock()
	for _, rs := range reg.routes {
		for i := range rs.Latency.counts {
			pooled.counts[i].Add(rs.Latency.counts[i].Load())
		}
		pooled.count.Add(rs.Latency.count.Load())
		pooled.sum.Add(rs.Latency.sum.Load())
		if m := rs.Latency.max.Load(); m > pooled.max.Load() {
			pooled.max.Store(m)
		}
	}
	reg.mu.RUnlock()
	return pooled.Quantile(0.50), pooled.Quantile(0.99)
}
