// Package obs provides dependency-free observability primitives for the
// wire stack: atomic counters and gauges, a fixed-bucket latency
// histogram with quantile estimation, and a registry that aggregates
// per-route HTTP statistics. Everything is lock-cheap — the hot path
// (one request) touches only atomics — so the instrumented handlers stay
// safe and fast under the concurrency the ROADMAP targets.
//
// The registry serializes to a stable JSON Snapshot served at
// /v1/metrics (see middleware.go), which is also what the end-to-end
// tests assert against.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an atomic up/down gauge (e.g. in-flight requests).
type Gauge struct {
	n atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.n.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.n.Add(-1) }

// Set overwrites the value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// histBuckets is the number of geometric latency buckets. Bucket i
// covers durations below histBase<<i; the last bucket is the overflow.
const histBuckets = 24

// histBase is the upper bound of the first bucket. 50µs doubling over 24
// buckets spans 50µs .. ~7 min, comfortably covering an HTTP handler.
const histBase = 50 * time.Microsecond

// Histogram records durations into fixed geometric buckets. All methods
// are safe for concurrent use; Observe is a few atomic adds.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64 // total nanoseconds
	count  atomic.Uint64
	max    atomic.Int64 // nanoseconds
}

// bucketFor returns the bucket index for d.
func bucketFor(d time.Duration) int {
	bound := histBase
	for i := 0; i < histBuckets-1; i++ {
		if d < bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing the target rank, clamped to the observed
// maximum. The estimate is bounded by the true bucket edges, so it is
// never off by more than one bucket width (a factor of two at these
// geometric bounds).
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	observedMax := time.Duration(h.max.Load())
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	lo := time.Duration(0)
	hi := histBase
	for i := 0; i < histBuckets; i++ {
		n := float64(h.counts[i].Load())
		if cum+n >= rank && n > 0 {
			if i == histBuckets-1 {
				// Overflow bucket: clamp to the observed max.
				return observedMax
			}
			frac := (rank - cum) / n
			return min(lo+time.Duration(frac*float64(hi-lo)), observedMax)
		}
		cum += n
		lo = hi
		hi <<= 1
	}
	return time.Duration(h.max.Load())
}

// RouteStats aggregates one HTTP route's metrics.
type RouteStats struct {
	InFlight Gauge
	Latency  Histogram
	// byClass counts responses by status class; index status/100 (1..5).
	byClass [6]Counter
}

// ObserveRequest records one completed request.
func (rs *RouteStats) ObserveRequest(status int, d time.Duration) {
	class := status / 100
	if class < 1 || class > 5 {
		class = 5
	}
	rs.byClass[class].Inc()
	rs.Latency.Observe(d)
}

// Requests returns the total completed requests on the route.
func (rs *RouteStats) Requests() uint64 {
	var n uint64
	for i := 1; i < len(rs.byClass); i++ {
		n += rs.byClass[i].Value()
	}
	return n
}

// StatusClass returns the count of responses with status in [c00, c99]
// for class c in 1..5.
func (rs *RouteStats) StatusClass(c int) uint64 {
	if c < 1 || c >= len(rs.byClass) {
		return 0
	}
	return rs.byClass[c].Value()
}

// maxRoutes caps the per-route map so hostile paths cannot grow the
// registry without bound; overflow routes aggregate under RouteOther.
const maxRoutes = 64

// RouteOther aggregates requests beyond the maxRoutes cap.
const RouteOther = "other"

// Registry holds a process's metrics: per-route HTTP statistics plus
// free-form named counters (client retries, cache hits, ...). The zero
// value is not usable; call NewRegistry.
type Registry struct {
	start time.Time

	mu        sync.RWMutex
	routes    map[string]*RouteStats
	counters  map[string]*Counter
	funcs     map[string]func() uint64
	latencies map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:     time.Now(),
		routes:    make(map[string]*RouteStats),
		counters:  make(map[string]*Counter),
		funcs:     make(map[string]func() uint64),
		latencies: make(map[string]*Histogram),
	}
}

// Route returns the stats for a route key (conventionally "METHOD /path"),
// creating it on first use. Keys beyond the cap share the RouteOther
// bucket.
func (r *Registry) Route(key string) *RouteStats {
	r.mu.RLock()
	rs, ok := r.routes[key]
	r.mu.RUnlock()
	if ok {
		return rs
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rs, ok = r.routes[key]; ok {
		return rs
	}
	if len(r.routes) >= maxRoutes {
		if rs, ok = r.routes[RouteOther]; ok {
			return rs
		}
		key = RouteOther
	}
	rs = &RouteStats{}
	r.routes[key] = rs
	return rs
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// CounterFunc registers a named counter whose value is pulled from fn at
// Snapshot time — the export path for subsystems that already keep their
// own atomic or lock-guarded bookkeeping (e.g. the GSP freq cache) and
// should not pay a second counter update on their hot path. fn must be
// safe for concurrent use. Registering a name again replaces the
// function; a pulled name shadows any pushed Counter of the same name in
// the snapshot.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// RegisterLatency publishes a named non-route latency histogram (e.g. a
// subsystem's internal decision latency) so it appears in the Snapshot's
// latencies section alongside the per-route summaries. The histogram
// stays owned by the caller, which keeps observing on its own hot path;
// registering a name again replaces the histogram.
func (r *Registry) RegisterLatency(name string, h *Histogram) {
	if h == nil {
		return
	}
	r.mu.Lock()
	r.latencies[name] = h
	r.mu.Unlock()
}

// Latency returns the named registered histogram, or nil.
func (r *Registry) Latency(name string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.latencies[name]
}

// LatencySnapshot summarizes a histogram in milliseconds.
type LatencySnapshot struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MaxMs  float64 `json:"maxMs"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// SnapshotLatency summarizes h.
func SnapshotLatency(h *Histogram) LatencySnapshot {
	return LatencySnapshot{
		Count:  h.Count(),
		MeanMs: ms(h.Mean()),
		P50Ms:  ms(h.Quantile(0.50)),
		P90Ms:  ms(h.Quantile(0.90)),
		P95Ms:  ms(h.Quantile(0.95)),
		P99Ms:  ms(h.Quantile(0.99)),
		MaxMs:  ms(h.Max()),
	}
}

// RouteSnapshot is the JSON view of one route's statistics.
type RouteSnapshot struct {
	Requests uint64            `json:"requests"`
	InFlight int64             `json:"inFlight"`
	Status   map[string]uint64 `json:"status"`
	Latency  LatencySnapshot   `json:"latency"`
}

// Snapshot is the JSON document served at /v1/metrics.
type Snapshot struct {
	UptimeSeconds float64                    `json:"uptimeSeconds"`
	Routes        map[string]RouteSnapshot   `json:"routes"`
	Counters      map[string]uint64          `json:"counters,omitempty"`
	Latencies     map[string]LatencySnapshot `json:"latencies,omitempty"`
}

// Snapshot materializes the current state. Values are read without a
// global pause, so counts across metrics may be off by in-flight
// requests — fine for monitoring, and the tests quiesce first.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Routes:        make(map[string]RouteSnapshot, len(r.routes)),
	}
	for key, rs := range r.routes {
		status := make(map[string]uint64)
		for c := 1; c <= 5; c++ {
			if n := rs.byClass[c].Value(); n > 0 {
				status[statusClassName(c)] = n
			}
		}
		snap.Routes[key] = RouteSnapshot{
			Requests: rs.Requests(),
			InFlight: rs.InFlight.Value(),
			Status:   status,
			Latency:  SnapshotLatency(&rs.Latency),
		}
	}
	if len(r.counters)+len(r.funcs) > 0 {
		snap.Counters = make(map[string]uint64, len(r.counters)+len(r.funcs))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
		for name, fn := range r.funcs {
			snap.Counters[name] = fn()
		}
	}
	if len(r.latencies) > 0 {
		snap.Latencies = make(map[string]LatencySnapshot, len(r.latencies))
		for name, h := range r.latencies {
			snap.Latencies[name] = SnapshotLatency(h)
		}
	}
	return snap
}

func statusClassName(c int) string {
	return string(rune('0'+c)) + "xx"
}

// Totals sums requests, 5xx responses, and in-flight requests across all
// routes, and pools every route's latency observations into one summary —
// the one-line overview the periodic log emits.
func (r *Registry) Totals() (requests, errors5xx uint64, inFlight int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, rs := range r.routes {
		requests += rs.Requests()
		errors5xx += rs.byClass[5].Value()
		inFlight += rs.InFlight.Value()
	}
	return requests, errors5xx, inFlight
}
