package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations uniform over (0, 100ms].
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Max(), 100*time.Millisecond; got != want {
		t.Errorf("max = %v, want %v", got, want)
	}
	// Geometric buckets double, so an estimate is within 2x of truth.
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 50 * time.Millisecond}, {0.9, 90 * time.Millisecond}, {0.99, 99 * time.Millisecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want/2 || got > 2*c.want {
			t.Errorf("q%.2f = %v, want within 2x of %v", c.q, got, c.want)
		}
	}
	if mean := h.Mean(); mean < 40*time.Millisecond || mean > 60*time.Millisecond {
		t.Errorf("mean = %v, want ~50ms", mean)
	}
}

func TestHistogramEmptyAndClamped(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(-time.Second) // clamped to 0
	if h.Max() != 0 {
		t.Errorf("negative observation recorded max %v", h.Max())
	}
	h.Observe(100 * time.Hour) // overflow bucket clamps to max
	if got := h.Quantile(0.99); got != 100*time.Hour {
		t.Errorf("overflow quantile = %v", got)
	}
}

func TestRegistryRouteCap(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 3*maxRoutes; i++ {
		reg.Route(fmt.Sprintf("GET /r/%d", i)).ObserveRequest(200, time.Millisecond)
	}
	snap := reg.Snapshot()
	if len(snap.Routes) > maxRoutes+1 {
		t.Errorf("route map grew to %d entries", len(snap.Routes))
	}
	other, ok := snap.Routes[RouteOther]
	if !ok || other.Requests == 0 {
		t.Errorf("overflow routes not aggregated: %+v", other)
	}
	var total uint64
	for _, rs := range snap.Routes {
		total += rs.Requests
	}
	if total != 3*maxRoutes {
		t.Errorf("lost requests: %d of %d", total, 3*maxRoutes)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				reg.Route(fmt.Sprintf("GET /r/%d", j%10)).ObserveRequest(200, time.Microsecond)
				reg.Counter("retries").Inc()
				if j%100 == 0 {
					reg.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := reg.Counter("retries").Value(); got != 4000 {
		t.Errorf("retries = %d", got)
	}
	reqs, _, inflight := reg.Totals()
	if reqs != 4000 || inflight != 0 {
		t.Errorf("totals = %d requests, %d in flight", reqs, inflight)
	}
}

func TestInstrumentRecordsAndServesEndpoints(t *testing.T) {
	reg := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	})
	var hooked int
	h := Instrument(reg, inner, WithRequestHook(func(method, path string, status int, d time.Duration) {
		hooked++
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/work")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for _, path := range []string{PathHealthz, PathReadyz} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d", path, resp.StatusCode)
		}
		var v map[string]string
		if err := json.Unmarshal(body, &v); err != nil {
			t.Errorf("%s body is not JSON: %q", path, body)
		}
	}

	resp, err = http.Get(ts.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	work := snap.Routes["GET /work"]
	if work.Requests != 3 || work.Status["2xx"] != 3 || work.Latency.Count != 3 {
		t.Errorf("GET /work snapshot = %+v", work)
	}
	boom := snap.Routes["GET /boom"]
	if boom.Requests != 1 || boom.Status["5xx"] != 1 {
		t.Errorf("GET /boom snapshot = %+v", boom)
	}
	if _, ok := snap.Routes["GET "+PathMetrics]; ok {
		t.Error("operational endpoint counted as a route")
	}
	if hooked != 4 {
		t.Errorf("request hook fired %d times, want 4", hooked)
	}
}

func TestReadyCheckFailure(t *testing.T) {
	reg := NewRegistry()
	h := Instrument(reg, http.NotFoundHandler(), WithReadyCheck(func() error {
		return errors.New("warming up")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, PathReadyz, nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "warming up") {
		t.Errorf("readyz body = %q", rec.Body.String())
	}
}

func TestStartSummaryLogsTraffic(t *testing.T) {
	reg := NewRegistry()
	reg.Route("GET /x").ObserveRequest(200, 2*time.Millisecond)
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := log.New(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), "", 0)
	ctx, cancel := context.WithCancel(context.Background())
	StartSummary(ctx, logger, reg, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		out := buf.String()
		mu.Unlock()
		if strings.Contains(out, "stats: 1 requests") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no summary line, got %q", out)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
