// Package poi models points of interest and POI type frequency vectors —
// the data objects exchanged in the paper's LBS architecture. A mobile
// user queries a geo-information service provider for the POIs within
// radius r of its location and releases only the aggregated type frequency
// vector F_{l,r} to the LBS application.
package poi

import (
	"fmt"
	"sort"

	"poiagg/internal/geo"
)

// TypeID identifies a POI type (e.g. "restaurant", "pharmacy") within a
// city's type registry. IDs are dense indices into frequency vectors.
type TypeID int

// ID identifies a single POI within a city.
type ID int

// POI is a point of interest: a typed location in the city plane.
type POI struct {
	ID   ID        `json:"id"`
	Type TypeID    `json:"type"`
	Pos  geo.Point `json:"pos"`
}

// TypeTable is the registry of POI types for one city. It assigns dense
// TypeIDs and keeps human-readable names.
type TypeTable struct {
	names []string
	index map[string]TypeID
}

// NewTypeTable returns an empty registry.
func NewTypeTable() *TypeTable {
	return &TypeTable{index: make(map[string]TypeID)}
}

// Intern returns the TypeID for name, registering it if new.
func (t *TypeTable) Intern(name string) TypeID {
	if id, ok := t.index[name]; ok {
		return id
	}
	id := TypeID(len(t.names))
	t.names = append(t.names, name)
	t.index[name] = id
	return id
}

// Lookup returns the TypeID for name and whether it is registered.
func (t *TypeTable) Lookup(name string) (TypeID, bool) {
	id, ok := t.index[name]
	return id, ok
}

// Name returns the registered name for id, or "" when out of range.
func (t *TypeTable) Name(id TypeID) string {
	if id < 0 || int(id) >= len(t.names) {
		return ""
	}
	return t.names[id]
}

// Len returns the number of registered types (the M of the paper).
func (t *TypeTable) Len() int { return len(t.names) }

// Names returns a copy of all registered type names in TypeID order.
func (t *TypeTable) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// FreqVector is a POI type frequency vector F_{l,r} = (n_1, …, n_M):
// entry i counts POIs of type i in the queried range. Its length always
// equals the city's number of types.
type FreqVector []int

// NewFreqVector returns a zero vector of dimension m.
func NewFreqVector(m int) FreqVector { return make(FreqVector, m) }

// Clone returns a deep copy of f.
func (f FreqVector) Clone() FreqVector {
	out := make(FreqVector, len(f))
	copy(out, f)
	return out
}

// Total returns the total POI count Σ n_i.
func (f FreqVector) Total() int {
	total := 0
	for _, n := range f {
		total += n
	}
	return total
}

// Support returns the number of types with a nonzero count.
func (f FreqVector) Support() int {
	s := 0
	for _, n := range f {
		if n != 0 {
			s++
		}
	}
	return s
}

// L1Dist returns Σ |f_i − g_i|. It panics when dimensions differ, as that
// indicates vectors from different cities.
func (f FreqVector) L1Dist(g FreqVector) int {
	if len(f) != len(g) {
		panic(fmt.Sprintf("poi: L1Dist dimension mismatch %d vs %d", len(f), len(g)))
	}
	d := 0
	for i := range f {
		if f[i] > g[i] {
			d += f[i] - g[i]
		} else {
			d += g[i] - f[i]
		}
	}
	return d
}

// Sub returns f − g element-wise.
func (f FreqVector) Sub(g FreqVector) FreqVector {
	if len(f) != len(g) {
		panic(fmt.Sprintf("poi: Sub dimension mismatch %d vs %d", len(f), len(g)))
	}
	out := make(FreqVector, len(f))
	for i := range f {
		out[i] = f[i] - g[i]
	}
	return out
}

// Add returns f + g element-wise.
func (f FreqVector) Add(g FreqVector) FreqVector {
	if len(f) != len(g) {
		panic(fmt.Sprintf("poi: Add dimension mismatch %d vs %d", len(f), len(g)))
	}
	out := make(FreqVector, len(f))
	for i := range f {
		out[i] = f[i] + g[i]
	}
	return out
}

// Dominates reports whether f_i ≥ g_i for every i. This is the pruning
// predicate of the region re-identification attack: a candidate anchor p
// survives only when F_{p,2r} dominates the released F_{l,r}.
func (f FreqVector) Dominates(g FreqVector) bool {
	if len(f) != len(g) {
		panic(fmt.Sprintf("poi: Dominates dimension mismatch %d vs %d", len(f), len(g)))
	}
	for i := range f {
		if f[i] < g[i] {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality.
func (f FreqVector) Equal(g FreqVector) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if f[i] != g[i] {
			return false
		}
	}
	return true
}

// TopK returns the K types with the highest counts, breaking ties by
// lower TypeID for determinism. Types with zero count are still eligible
// (matching a plain sort of the vector), but in practice K ≪ support.
func (f FreqVector) TopK(k int) []TypeID {
	if k > len(f) {
		k = len(f)
	}
	ids := make([]TypeID, len(f))
	for i := range ids {
		ids[i] = TypeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if f[ids[a]] != f[ids[b]] {
			return f[ids[a]] > f[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids[:k]
}

// Floats converts f to a float64 slice (feature vectors for the learning
// substrate).
func (f FreqVector) Floats() []float64 {
	out := make([]float64, len(f))
	for i, n := range f {
		out[i] = float64(n)
	}
	return out
}

// RankByFrequency returns, for a city-wide frequency vector, the
// infrequency rank R(i) of every type: the most infrequent type has rank
// 1, the next rank 2, and so on. Ties break by lower TypeID.
func RankByFrequency(cityFreq FreqVector) []int {
	ids := make([]TypeID, len(cityFreq))
	for i := range ids {
		ids[i] = TypeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if cityFreq[ids[a]] != cityFreq[ids[b]] {
			return cityFreq[ids[a]] < cityFreq[ids[b]]
		}
		return ids[a] < ids[b]
	})
	rank := make([]int, len(cityFreq))
	for r, id := range ids {
		rank[id] = r + 1
	}
	return rank
}

// MostInfrequentPresent returns the type present in f (count > 0) that is
// most infrequent city-wide according to cityFreq, i.e. the t_l of the
// region re-identification attack. ok is false when f is all zero.
func MostInfrequentPresent(f, cityFreq FreqVector) (TypeID, bool) {
	best := TypeID(-1)
	bestFreq := 0
	for i, n := range f {
		if n <= 0 {
			continue
		}
		if best == -1 || cityFreq[i] < bestFreq ||
			(cityFreq[i] == bestFreq && TypeID(i) < best) {
			best = TypeID(i)
			bestFreq = cityFreq[i]
		}
	}
	return best, best != -1
}
