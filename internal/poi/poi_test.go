package poi

import (
	"testing"
	"testing/quick"
)

func TestTypeTableIntern(t *testing.T) {
	tt := NewTypeTable()
	a := tt.Intern("restaurant")
	b := tt.Intern("pharmacy")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if got := tt.Intern("restaurant"); got != a {
		t.Errorf("re-intern gave %v, want %v", got, a)
	}
	if tt.Len() != 2 {
		t.Errorf("Len = %d", tt.Len())
	}
	if tt.Name(a) != "restaurant" || tt.Name(b) != "pharmacy" {
		t.Error("Name lookup wrong")
	}
	if tt.Name(TypeID(99)) != "" || tt.Name(TypeID(-1)) != "" {
		t.Error("out-of-range Name should be empty")
	}
	if id, ok := tt.Lookup("pharmacy"); !ok || id != b {
		t.Error("Lookup failed")
	}
	if _, ok := tt.Lookup("missing"); ok {
		t.Error("Lookup of missing name succeeded")
	}
	names := tt.Names()
	names[0] = "mutated"
	if tt.Name(a) != "restaurant" {
		t.Error("Names leaked internal slice")
	}
}

func TestFreqVectorBasics(t *testing.T) {
	f := FreqVector{3, 0, 2, 5}
	if f.Total() != 10 {
		t.Errorf("Total = %d", f.Total())
	}
	if f.Support() != 3 {
		t.Errorf("Support = %d", f.Support())
	}
	g := f.Clone()
	g[0] = 100
	if f[0] != 3 {
		t.Error("Clone aliases")
	}
}

func TestL1Dist(t *testing.T) {
	f := FreqVector{3, 0, 2}
	g := FreqVector{1, 4, 2}
	if d := f.L1Dist(g); d != 6 {
		t.Errorf("L1Dist = %d, want 6", d)
	}
	if d := f.L1Dist(f); d != 0 {
		t.Errorf("self L1Dist = %d", d)
	}
}

func TestL1DistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FreqVector{1}.L1Dist(FreqVector{1, 2})
}

func TestAddSub(t *testing.T) {
	f := FreqVector{3, 1}
	g := FreqVector{1, 2}
	if got := f.Add(g); !got.Equal(FreqVector{4, 3}) {
		t.Errorf("Add = %v", got)
	}
	if got := f.Sub(g); !got.Equal(FreqVector{2, -1}) {
		t.Errorf("Sub = %v", got)
	}
}

func TestDominates(t *testing.T) {
	tests := []struct {
		f, g FreqVector
		want bool
	}{
		{FreqVector{2, 3}, FreqVector{2, 3}, true},
		{FreqVector{3, 3}, FreqVector{2, 3}, true},
		{FreqVector{2, 2}, FreqVector{2, 3}, false},
		{FreqVector{0, 0}, FreqVector{0, 0}, true},
	}
	for _, tt := range tests {
		if got := tt.f.Dominates(tt.g); got != tt.want {
			t.Errorf("%v Dominates %v = %v, want %v", tt.f, tt.g, got, tt.want)
		}
	}
}

func TestDominatesProperty(t *testing.T) {
	// f+g always dominates f for non-negative g; and dominance implies
	// total ordering of sums.
	f := func(a, b []uint8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		x := make(FreqVector, n)
		y := make(FreqVector, n)
		for i := 0; i < n; i++ {
			x[i] = int(a[i])
			y[i] = int(b[i])
		}
		sum := x.Add(y)
		if !sum.Dominates(x) {
			return false
		}
		if x.Dominates(y) && x.Total() < y.Total() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopK(t *testing.T) {
	f := FreqVector{5, 1, 9, 9, 0}
	got := f.TopK(3)
	want := []TypeID{2, 3, 0} // ties break by lower ID
	if len(got) != 3 {
		t.Fatalf("TopK len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopK = %v, want %v", got, want)
			break
		}
	}
	if got := f.TopK(100); len(got) != len(f) {
		t.Errorf("TopK over-length = %d", len(got))
	}
}

func TestRankByFrequency(t *testing.T) {
	city := FreqVector{100, 2, 50, 2}
	rank := RankByFrequency(city)
	// type 1 (freq 2, lower ID) rank 1; type 3 (freq 2) rank 2;
	// type 2 (freq 50) rank 3; type 0 (freq 100) rank 4.
	want := []int{4, 1, 3, 2}
	for i := range want {
		if rank[i] != want[i] {
			t.Errorf("rank = %v, want %v", rank, want)
			break
		}
	}
}

func TestMostInfrequentPresent(t *testing.T) {
	city := FreqVector{100, 2, 50, 1}
	f := FreqVector{1, 0, 3, 0} // types 0 and 2 present
	id, ok := MostInfrequentPresent(f, city)
	if !ok || id != 2 {
		t.Errorf("got %v/%v, want type 2", id, ok)
	}
	f2 := FreqVector{1, 1, 1, 1}
	id, ok = MostInfrequentPresent(f2, city)
	if !ok || id != 3 {
		t.Errorf("got %v/%v, want type 3", id, ok)
	}
	if _, ok := MostInfrequentPresent(FreqVector{0, 0, 0, 0}, city); ok {
		t.Error("all-zero vector should report !ok")
	}
}

func TestFloats(t *testing.T) {
	f := FreqVector{1, 0, 7}
	fs := f.Floats()
	if len(fs) != 3 || fs[0] != 1 || fs[2] != 7 {
		t.Errorf("Floats = %v", fs)
	}
}
