// Package rng provides deterministic, splittable random streams and the
// distributions used across the POI-aggregate reproduction: Gaussian and
// Laplace noise for differential privacy, Zipf-distributed categorical
// sampling for POI type frequencies, and the polar planar-Laplace sampler
// used by geo-indistinguishability.
//
// All experiment randomness flows through this package so that every
// figure reproduces bit-for-bit from a seed.
package rng

import (
	"math"
	"math/rand/v2"
)

// Source is a deterministic random stream. It wraps the standard PCG
// generator and adds distribution samplers and deterministic splitting.
type Source struct {
	r *rand.Rand
	// seeds retained so Split can derive independent children.
	s1, s2 uint64
}

// New returns a stream seeded from seed. Distinct seeds give independent
// streams.
func New(seed uint64) *Source {
	return newFrom(seed, splitmix64(seed+0x9e3779b97f4a7c15))
}

func newFrom(s1, s2 uint64) *Source {
	return &Source{r: rand.New(rand.NewPCG(s1, s2)), s1: s1, s2: s2}
}

// splitmix64 is the canonical splitmix64 mixing function, used to derive
// decorrelated child seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Split derives an independent child stream keyed by label. Splitting the
// same parent with the same label always yields the same child, and the
// child does not perturb the parent's sequence.
func (s *Source) Split(label uint64) *Source {
	return newFrom(
		splitmix64(s.s1^label^0xd1b54a32d192ed03),
		splitmix64(s.s2+label*0x2545f4914f6cdd1d+1),
	)
}

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// IntN returns a uniform int in [0, n). It panics when n <= 0, matching
// math/rand/v2 semantics.
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Normal returns a sample from N(mean, stddev²).
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Exp returns a sample from the exponential distribution with the given
// rate (mean 1/rate).
func (s *Source) Exp(rate float64) float64 {
	return s.r.ExpFloat64() / rate
}

// Laplace returns a sample from the Laplace distribution with location mu
// and scale b. Used by the one-dimensional Laplace mechanism.
func (s *Source) Laplace(mu, b float64) float64 {
	u := s.r.Float64() - 0.5
	return mu - b*sign(u)*math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// UniformIn returns a uniform point inside the axis-aligned box
// [minX,maxX) x [minY,maxY).
func (s *Source) UniformIn(minX, minY, maxX, maxY float64) (x, y float64) {
	return minX + s.r.Float64()*(maxX-minX), minY + s.r.Float64()*(maxY-minY)
}

// UniformInDisk returns a uniform point in the disk of the given radius
// centered at the origin.
func (s *Source) UniformInDisk(radius float64) (x, y float64) {
	theta := 2 * math.Pi * s.r.Float64()
	r := radius * math.Sqrt(s.r.Float64())
	return r * math.Cos(theta), r * math.Sin(theta)
}

// PlanarLaplace returns an offset (dx, dy) drawn from the planar Laplace
// distribution with privacy parameter eps (per meter of the working unit).
// The radial component is sampled by inverting the radial CDF
// C(r) = 1 − (1 + εr)e^{−εr} using the Lambert W₋₁ branch, following
// Andrés et al. (CCS'13).
func (s *Source) PlanarLaplace(eps float64) (dx, dy float64) {
	theta := 2 * math.Pi * s.r.Float64()
	p := s.r.Float64()
	r := -(LambertWm1((p-1)/math.E) + 1) / eps
	return r * math.Cos(theta), r * math.Sin(theta)
}

// LambertWm1 evaluates the W₋₁ branch of the Lambert W function for
// x in [-1/e, 0). It returns NaN outside that domain.
func LambertWm1(x float64) float64 {
	if x < -1/math.E || x >= 0 {
		return math.NaN()
	}
	// Initial guess from the series around the branch point and the
	// asymptotic log form, then Halley iterations.
	var w float64
	if x > -0.25 {
		l1 := math.Log(-x)
		l2 := math.Log(-l1)
		w = l1 - l2 + l2/l1
	} else {
		p := -math.Sqrt(2 * (1 + math.E*x))
		w = -1 + p - p*p/3 + 11*p*p*p/72
	}
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		// Halley step.
		denom := ew*(w+1) - (w+2)*f/(2*w+2)
		if denom == 0 {
			break
		}
		d := f / denom
		w -= d
		if math.Abs(d) < 1e-14*(1+math.Abs(w)) {
			break
		}
	}
	return w
}

// Zipf is a categorical sampler over {0, …, n−1} where category k has
// probability proportional to 1/(k+1)^s. Category 0 is the most frequent.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler with n categories and exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	cdf := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of categories.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns the probability of category k.
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Sample draws a category using src.
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
