package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := New(43)
	same := 0
	d := New(42)
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 equal samples", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child1 := parent.Split(1)
	child2 := parent.Split(2)
	child1Again := New(7).Split(1)
	for i := 0; i < 50; i++ {
		if child1.Uint64() != child1Again.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
	// Children with different labels differ.
	c1, c2 := New(7).Split(1), New(7).Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split children correlated: %d/100 equal", same)
	}
	_ = child2
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a := New(5)
	b := New(5)
	_ = a.Split(99)
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split consumed parent state")
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(1)
	const n = 200_000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := New(2)
	const n = 200_000
	b := 1.5
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Laplace(0, b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if want := 2 * b * b; math.Abs(variance-want) > 0.2 {
		t.Errorf("variance = %v, want ~%v", variance, want)
	}
}

func TestExpMoments(t *testing.T) {
	s := New(3)
	const n = 100_000
	rate := 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(rate)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestLambertWm1Identity(t *testing.T) {
	// W₋₁(x)·e^{W₋₁(x)} = x for x in [-1/e, 0).
	xs := []float64{-1 / math.E, -0.367, -0.3, -0.2, -0.1, -0.01, -1e-4, -1e-8}
	for _, x := range xs {
		w := LambertWm1(x)
		if got := w * math.Exp(w); math.Abs(got-x) > 1e-9*math.Max(1, math.Abs(x)) {
			t.Errorf("W(-1)(%v) = %v; w·e^w = %v", x, w, got)
		}
		if w > -1 {
			t.Errorf("W₋₁(%v) = %v must be ≤ -1", x, w)
		}
	}
}

func TestLambertWm1Domain(t *testing.T) {
	for _, x := range []float64{0, 0.5, -1} {
		if !math.IsNaN(LambertWm1(x)) {
			t.Errorf("LambertWm1(%v) should be NaN", x)
		}
	}
}

func TestPlanarLaplaceRadialMean(t *testing.T) {
	// The planar Laplace radial distribution is Gamma(2, 1/ε): mean 2/ε.
	s := New(4)
	eps := 0.01 // per meter
	const n = 100_000
	sum := 0.0
	for i := 0; i < n; i++ {
		dx, dy := s.PlanarLaplace(eps)
		sum += math.Hypot(dx, dy)
	}
	mean := sum / n
	want := 2 / eps
	if math.Abs(mean-want)/want > 0.03 {
		t.Errorf("radial mean = %v, want ~%v", mean, want)
	}
}

func TestPlanarLaplaceAngleUniform(t *testing.T) {
	s := New(5)
	const n = 40_000
	quad := [4]int{}
	for i := 0; i < n; i++ {
		dx, dy := s.PlanarLaplace(0.1)
		idx := 0
		if dx < 0 {
			idx |= 1
		}
		if dy < 0 {
			idx |= 2
		}
		quad[idx]++
	}
	for i, c := range quad {
		if math.Abs(float64(c)-n/4.0) > 0.05*n {
			t.Errorf("quadrant %d count %d, want ~%d", i, c, n/4)
		}
	}
}

func TestZipfProbabilities(t *testing.T) {
	z := NewZipf(5, 1.0)
	total := 0.0
	for k := 0; k < 5; k++ {
		p := z.Prob(k)
		if p <= 0 {
			t.Errorf("Prob(%d) = %v", k, p)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", total)
	}
	if z.Prob(0) <= z.Prob(4) {
		t.Error("Zipf must be decreasing")
	}
	if z.Prob(-1) != 0 || z.Prob(5) != 0 {
		t.Error("out-of-range Prob must be 0")
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z := NewZipf(10, 1.2)
	s := New(6)
	const n = 200_000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	for k := 0; k < 10; k++ {
		got := float64(counts[k]) / n
		want := z.Prob(k)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d: freq %v, want %v", k, got, want)
		}
	}
}

func TestUniformInDisk(t *testing.T) {
	s := New(7)
	const n = 50_000
	inHalf := 0
	for i := 0; i < n; i++ {
		x, y := s.UniformInDisk(2)
		r := math.Hypot(x, y)
		if r > 2 {
			t.Fatalf("point outside disk: %v", r)
		}
		if r <= 2/math.Sqrt2 {
			inHalf++ // a disk of half the area
		}
	}
	if frac := float64(inHalf) / n; math.Abs(frac-0.5) > 0.02 {
		t.Errorf("half-area fraction = %v, want ~0.5", frac)
	}
}

func TestUniformInBounds(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		x, y := s.UniformIn(-3, 2, 5, 10)
		return x >= -3 && x < 5 && y >= 2 && y < 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermAndShuffle(t *testing.T) {
	s := New(8)
	p := s.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad perm %v", p)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}
