// Package stats provides the small descriptive-statistics toolkit used by
// the experiment harness: means and deviations, empirical CDFs and
// quantiles, histograms, Jaccard similarity, and classification accuracy
// bookkeeping.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when fewer
// than two samples are provided.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MeanStd returns both Mean and StdDev in one pass over the data.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), StdDev(xs)
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// CDF is an empirical cumulative distribution function over a fixed
// sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied, then sorted).
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns the fraction of samples ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of the first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (q in [0,1]) using nearest-rank
// interpolation; q outside [0,1] is clamped.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := pos - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Series evaluates the CDF at n evenly spaced points spanning [min, max]
// and returns (xs, ys) suitable for plotting or table rows.
func (c *CDF) Series(minX, maxX float64, n int) (xs, ys []float64) {
	if n < 2 {
		n = 2
	}
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		x := minX + (maxX-minX)*float64(i)/float64(n-1)
		xs[i] = x
		ys[i] = c.At(x)
	}
	return xs, ys
}

// Histogram counts samples into nbins equal-width bins over [min, max].
// Samples outside the range are clamped into the border bins.
func Histogram(xs []float64, minX, maxX float64, nbins int) []int {
	if nbins <= 0 {
		return nil
	}
	counts := make([]int, nbins)
	width := (maxX - minX) / float64(nbins)
	if width <= 0 {
		counts[0] = len(xs)
		return counts
	}
	for _, x := range xs {
		b := int((x - minX) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// Jaccard returns |a ∩ b| / |a ∪ b| for two sets of comparable elements.
// Two empty sets have similarity 1 (identical).
func Jaccard[T comparable](a, b []T) float64 {
	setA := make(map[T]struct{}, len(a))
	for _, x := range a {
		setA[x] = struct{}{}
	}
	setB := make(map[T]struct{}, len(b))
	for _, x := range b {
		setB[x] = struct{}{}
	}
	if len(setA) == 0 && len(setB) == 0 {
		return 1
	}
	inter := 0
	for x := range setA {
		if _, ok := setB[x]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	return float64(inter) / float64(union)
}

// Accuracy tracks classification accuracy.
type Accuracy struct {
	correct int
	total   int
}

// Observe records one prediction outcome.
func (a *Accuracy) Observe(correct bool) {
	if correct {
		a.correct++
	}
	a.total++
}

// Value returns the accuracy so far, or 0 when nothing was observed.
func (a *Accuracy) Value() float64 {
	if a.total == 0 {
		return 0
	}
	return float64(a.correct) / float64(a.total)
}

// Count returns the number of observations.
func (a *Accuracy) Count() int { return a.total }

// String implements fmt.Stringer.
func (a *Accuracy) String() string {
	return fmt.Sprintf("%d/%d (%.3f)", a.correct, a.total, a.Value())
}

// MAE returns the mean absolute error between predictions and targets.
// It panics when lengths differ.
func MAE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("stats: MAE length mismatch %d vs %d", len(pred), len(target)))
	}
	if len(pred) == 0 {
		return 0
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - target[i])
	}
	return sum / float64(len(pred))
}

// RMSE returns the root mean squared error between predictions and
// targets. It panics when lengths differ.
func RMSE(pred, target []float64) float64 {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("stats: RMSE length mismatch %d vs %d", len(pred), len(target)))
	}
	if len(pred) == 0 {
		return 0
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - target[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}
