package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/one-sample cases wrong")
	}
	m, s := MeanStd(xs)
	if m != 5 || math.Abs(s-2) > 1e-12 {
		t.Errorf("MeanStd = %v, %v", m, s)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max wrong")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if NewCDF(nil).At(1) != 0 {
		t.Error("empty CDF At should be 0")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		c := NewCDF(xs)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if q := c.Quantile(0); q != 10 {
		t.Errorf("Q0 = %v", q)
	}
	if q := c.Quantile(1); q != 50 {
		t.Errorf("Q1 = %v", q)
	}
	if q := c.Quantile(0.5); q != 30 {
		t.Errorf("Q.5 = %v", q)
	}
	if q := c.Quantile(0.25); q != 20 {
		t.Errorf("Q.25 = %v", q)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestCDFSeries(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	xs, ys := c.Series(0, 5, 6)
	if len(xs) != 6 || len(ys) != 6 {
		t.Fatalf("series lengths %d/%d", len(xs), len(ys))
	}
	if xs[0] != 0 || xs[5] != 5 {
		t.Errorf("xs endpoints %v", xs)
	}
	if ys[0] != 0 || ys[5] != 1 {
		t.Errorf("ys endpoints %v", ys)
	}
	if !sort.Float64sAreSorted(ys) {
		t.Errorf("series not monotone: %v", ys)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 1.5, 2.9, -5, 99}
	h := Histogram(xs, 0, 3, 3)
	if h[0] != 3 || h[1] != 1 || h[2] != 2 {
		t.Errorf("Histogram = %v", h)
	}
	if Histogram(xs, 0, 3, 0) != nil {
		t.Error("zero bins should be nil")
	}
	h = Histogram(xs, 5, 5, 2) // degenerate range
	if h[0] != len(xs) {
		t.Errorf("degenerate range histogram = %v", h)
	}
}

func TestJaccard(t *testing.T) {
	tests := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1},
		{[]int{1, 2}, []int{3, 4}, 0},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{nil, nil, 1},
		{[]int{1}, nil, 0},
		{[]int{1, 1, 2}, []int{1, 2}, 1}, // duplicates collapse
	}
	for _, tt := range tests {
		if got := Jaccard(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(a, b []uint8) bool {
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	var a Accuracy
	if a.Value() != 0 || a.Count() != 0 {
		t.Error("zero value wrong")
	}
	a.Observe(true)
	a.Observe(true)
	a.Observe(false)
	if math.Abs(a.Value()-2.0/3) > 1e-12 || a.Count() != 3 {
		t.Errorf("Accuracy = %v after 3", a.Value())
	}
	if a.String() == "" {
		t.Error("String empty")
	}
}

func TestMAERMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	target := []float64{1, 4, 3}
	if got := MAE(pred, target); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE = %v", got)
	}
	if got := RMSE(pred, target); math.Abs(got-2/math.Sqrt(3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if MAE(nil, nil) != 0 || RMSE(nil, nil) != 0 {
		t.Error("empty MAE/RMSE wrong")
	}
}

func TestMAEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}
