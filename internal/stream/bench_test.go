package stream

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkStreamApply measures the ingest hot path: one validated
// event through the window store at steady state (user population at
// the cap, per-user windows full, so every apply prunes and drops).
func BenchmarkStreamApply(b *testing.B) {
	const users = 1024
	st, clock := testStore(b, users, 32, 10*time.Minute)
	now := clock.Now()
	evs := make([]Event, users)
	for i := range evs {
		evs[i] = eventAt(b, fmt.Sprintf("user-%04d", i), i, now)
	}
	// Warm to steady state: every user at the per-user cap.
	for j := 0; j < 32; j++ {
		for i := range evs {
			if err := st.Apply(evs[i], "bench"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Apply(evs[i%users], "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowRelease measures one full releaser tick: window scan,
// per-user freq aggregation, DP noise, and post-processing over a
// populated store.
func BenchmarkWindowRelease(b *testing.B) {
	rg := newRig(b, 99, nil)
	rg.feed(b, 48)
	tick := baseTime.Add(time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rg.rel.Tick(tick); err != nil {
			b.Fatal(err)
		}
	}
}
