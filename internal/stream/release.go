package stream

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/defense"
	"poiagg/internal/gsp"
	"poiagg/internal/obs"
	"poiagg/internal/poi"
	"poiagg/internal/rng"
)

// Releaser defaults.
const (
	// DefaultInterval is the production tick period.
	DefaultInterval = time.Minute
	// DefaultHistory bounds how many past window releases are kept.
	DefaultHistory = 64
	// DefaultRadius is the per-event POI query radius in meters.
	DefaultRadius = 1000
)

// ReleaserConfig parameterizes the windowed releaser.
type ReleaserConfig struct {
	// Interval is the tick period for Start; Tick itself is driven
	// explicitly by its caller's clock.
	Interval time.Duration
	// Radius is the POI query radius applied to each window event.
	Radius float64
	// Seed roots the release noise: tick k draws from
	// rng.New(Seed).Split(k), so a replay with the same seed and tick
	// schedule reproduces every release bit for bit.
	Seed uint64
	// History bounds the in-memory window-release history.
	History int
	// Eps/Delta is the privacy cost charged to each contributing
	// principal's budget account per window release.
	Eps, Delta float64
}

// WindowRelease is one windowed DP aggregate as the server sees it.
// Only the Public projection crosses the wire: Users and Events are
// exact, un-noised functions of real participation (not covered by the
// DP guarantee, which protects Freq alone), and Denied names tenants —
// all three are operator-side observability, never published.
type WindowRelease struct {
	// Tick is the release's sequence number, starting at 0.
	Tick uint64 `json:"tick"`
	// Time is the window end (the tick time).
	Time time.Time `json:"time"`
	// Users is how many users contributed to the aggregate. Exact, so
	// server-side only (metrics / replay comparison).
	Users int `json:"users"`
	// Events is how many window events those users contributed. Exact,
	// so server-side only.
	Events int `json:"events"`
	// Denied lists principals whose budget was exhausted this window;
	// their users are excluded from the aggregate. Tenant identities —
	// server-side only; the Public view carries an anonymous count.
	Denied []string `json:"denied,omitempty"`
	// Freq is the DP-protected frequency vector; empty when no user
	// contributed.
	Freq poi.FreqVector `json:"freq,omitempty"`
}

// PublicRelease is the externally publishable projection of a
// WindowRelease: the DP-protected frequency vector plus tick/time
// metadata. Exact contributor counts stay server-side (publishing them
// would let an observer detect a single user joining or leaving a
// window, breaking the (ε, δ) claim), and denied tenants are reported
// only as a count — naming them would hand any caller the cross-tenant
// budget inspection that the budget admin endpoints 403.
type PublicRelease struct {
	Tick uint64    `json:"tick"`
	Time time.Time `json:"time"`
	// DeniedPrincipals counts tenants excluded from this window for
	// budget exhaustion, without identifying them. Per-tenant detail is
	// on the tenant-scoped GET /v1/budget/{principal}.
	DeniedPrincipals int            `json:"deniedPrincipals,omitempty"`
	Freq             poi.FreqVector `json:"freq,omitempty"`
}

// Public returns the release's publishable view.
func (wr WindowRelease) Public() PublicRelease {
	return PublicRelease{
		Tick:             wr.Tick,
		Time:             wr.Time,
		DeniedPrincipals: len(wr.Denied),
		Freq:             wr.Freq,
	}
}

// Releaser periodically turns the window store's state into a DP
// release: each tick it aggregates every active user's window into one
// frequency vector, feeds the per-user vectors through
// defense.DPRelease (the users play the role of the cloak's k dummies),
// charges each contributing principal's budget, and appends the result
// to a bounded history.
type Releaser struct {
	store *Store
	svc   *gsp.Service
	mech  *defense.DPRelease
	spend spendFunc // the ledger's Spend; nil disables budget charging
	cfg   ReleaserConfig
	src   *rng.Source

	mu      sync.Mutex
	ticks   uint64
	history []WindowRelease
	// chargeTick/charged memoize the durable spend decisions already
	// made for the in-progress tick, so a Tick retried after a mid-loop
	// Spend failure skips the principals it already charged instead of
	// double-spending them for one window.
	chargeTick uint64
	charged    map[string]bool // principal → allowed

	released  obs.Counter
	denials   obs.Counter
	lastUsers obs.Gauge
}

// spendFunc is the budget-charging hook: budget.(*Ledger).Spend in
// production, swappable in tests to inject mid-loop failures.
type spendFunc func(principal string, eps, delta float64) (budget.Decision, error)

// NewReleaser wires a releaser over a store, the GSP service, the DP
// mechanism, and an optional budget ledger.
func NewReleaser(store *Store, svc *gsp.Service, mech *defense.DPRelease, led *budget.Ledger, cfg ReleaserConfig) (*Releaser, error) {
	if store == nil || svc == nil || mech == nil {
		return nil, fmt.Errorf("stream: NewReleaser: nil store, service, or mechanism")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Radius <= 0 {
		cfg.Radius = DefaultRadius
	}
	if cfg.History <= 0 {
		cfg.History = DefaultHistory
	}
	if led != nil && cfg.Eps <= 0 {
		return nil, fmt.Errorf("stream: NewReleaser: budget charging enabled but Eps = %v", cfg.Eps)
	}
	r := &Releaser{
		store: store,
		svc:   svc,
		mech:  mech,
		cfg:   cfg,
		src:   rng.New(cfg.Seed),
	}
	if led != nil {
		r.spend = led.Spend
	}
	return r, nil
}

// Config returns the releaser's effective configuration.
func (r *Releaser) Config() ReleaserConfig { return r.cfg }

// Tick publishes one windowed release for the window ending at now. It
// is fully deterministic given the store contents, the tick index, and
// the seed: users and principals are processed in sorted order and the
// noise source for tick k is Split(k) off the seeded root, independent
// of wall time.
func (r *Releaser) Tick(now time.Time) (WindowRelease, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	active := r.store.ActiveAt(now)
	rel := WindowRelease{Tick: r.ticks, Time: now.UTC()}

	// Charge each contributing principal once per window, in sorted
	// order so ledger state (and its persisted log) is replayable.
	// Denied principals' users are excluded from this window. Decisions
	// land in the per-tick memo as they are made: if a Spend fails
	// partway, the principals charged before the failure were charged
	// durably, and the retried Tick must not charge them again.
	deniedSet := map[string]bool{}
	if r.spend != nil && len(active) > 0 {
		if r.charged == nil || r.chargeTick != r.ticks {
			r.chargeTick = r.ticks
			r.charged = make(map[string]bool)
		}
		principals := make([]string, 0, len(active))
		seen := map[string]bool{}
		for _, u := range active {
			if !seen[u.Principal] {
				seen[u.Principal] = true
				principals = append(principals, u.Principal)
			}
		}
		sort.Strings(principals)
		for _, p := range principals {
			allowed, done := r.charged[p]
			if !done {
				dec, err := r.spend(p, r.cfg.Eps, r.cfg.Delta)
				if err != nil {
					return WindowRelease{}, fmt.Errorf("stream: Tick %d: charge %q: %w", r.ticks, p, err)
				}
				allowed = dec.Allowed
				r.charged[p] = allowed
				if !allowed {
					r.denials.Inc()
				}
			}
			if !allowed {
				deniedSet[p] = true
				rel.Denied = append(rel.Denied, p)
			}
		}
	}

	// One aggregate vector per admitted user: the sum of the freq
	// vectors of their window events. Scratch buffer reused across
	// events, mirroring DPRelease's own dummy loop.
	m := r.svc.City().M()
	scratch := poi.NewFreqVector(m)
	var vecs []poi.FreqVector
	for _, u := range active {
		if deniedSet[u.Principal] {
			continue
		}
		vec := poi.NewFreqVector(m)
		for _, loc := range u.Locations {
			r.svc.FreqInto(scratch, loc, r.cfg.Radius)
			for i, v := range scratch {
				vec[i] += v
			}
		}
		vecs = append(vecs, vec)
		rel.Users++
		rel.Events += len(u.Locations)
	}

	if len(vecs) > 0 {
		freq, err := r.mech.ReleaseVectors(r.src.Split(r.ticks), vecs)
		if err != nil {
			return WindowRelease{}, fmt.Errorf("stream: Tick %d: %w", r.ticks, err)
		}
		rel.Freq = freq
	}

	r.ticks++
	r.charged = nil // the tick published; its charge memo is spent
	r.history = append(r.history, rel)
	if len(r.history) > r.cfg.History {
		r.history = append(r.history[:0], r.history[len(r.history)-r.cfg.History:]...)
	}
	r.released.Inc()
	r.lastUsers.Set(int64(rel.Users))
	return rel, nil
}

// History returns a copy of the most recent n releases (all of the
// retained history when n <= 0), oldest first.
func (r *Releaser) History(n int) []WindowRelease {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.history) {
		n = len(r.history)
	}
	out := make([]WindowRelease, n)
	copy(out, r.history[len(r.history)-n:])
	return out
}

// Ticks returns how many window releases have been published.
func (r *Releaser) Ticks() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ticks
}

// Start runs the releaser on a wall-clock ticker at cfg.Interval until
// the returned stop function is called. Stop performs one final flush
// tick — the SIGTERM drain path uses this so events ingested since the
// last tick still make it into a release — and waits for the loop to
// exit. Tick errors are reported to onErr (which may be nil).
func (r *Releaser) Start(onErr func(error)) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				if _, err := r.Tick(now); err != nil && onErr != nil {
					onErr(err)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			if _, err := r.Tick(r.store.Config().Clock()); err != nil && onErr != nil {
				onErr(err)
			}
		})
	}
}

// Releaser metric names.
const (
	MetricTicks             = "stream.ticks"
	MetricReleasesPublished = "stream.releases_published"
	MetricWindowDenials     = "stream.window_denials"
	MetricLastReleaseUsers  = "stream.last_release_users"
)

// ExportMetrics publishes the releaser's counters on reg.
func (r *Releaser) ExportMetrics(reg *obs.Registry) {
	reg.CounterFunc(MetricTicks, func() uint64 { return r.Ticks() })
	reg.CounterFunc(MetricReleasesPublished, r.released.Value)
	reg.CounterFunc(MetricWindowDenials, r.denials.Value)
	reg.CounterFunc(MetricLastReleaseUsers, func() uint64 { return uint64(r.lastUsers.Value()) })
}

// LoggedEvent is one ingested event as captured for offline replay: the
// event itself, the principal it was admitted under, and the server
// clock time at which it arrived (which fixes the validation and
// pruning decisions).
type LoggedEvent struct {
	At        time.Time `json:"at"`
	Principal string    `json:"principal"`
	Event     Event     `json:"event"`
}

// Replay feeds a captured event log through a fresh store/releaser pair
// against an explicit tick schedule, reproducing a live run offline:
// before each tick, every not-yet-applied logged event with arrival
// time ≤ the tick time is applied (in log order, with the clock set to
// its arrival time), then the clock is set to the tick time and the
// tick fires. With the same seed, window config, and ledger clock, the
// returned releases are bit-identical to the live run's and the budget
// ledger ends in byte-identical state.
func Replay(store *Store, rel *Releaser, clock *ManualClock, log []LoggedEvent, ticks []time.Time) ([]WindowRelease, error) {
	if store == nil || rel == nil || clock == nil {
		return nil, fmt.Errorf("stream: Replay: nil store, releaser, or clock")
	}
	out := make([]WindowRelease, 0, len(ticks))
	i := 0
	for _, tk := range ticks {
		for i < len(log) && !log[i].At.After(tk) {
			clock.Set(log[i].At)
			// A rejected event was rejected in the live run too (same
			// clock, same validation); replay ignores it the same way.
			_ = store.Apply(log[i].Event, log[i].Principal)
			i++
		}
		clock.Set(tk)
		wr, err := rel.Tick(tk)
		if err != nil {
			return nil, err
		}
		out = append(out, wr)
	}
	return out, nil
}
