// Package stream is the live-ingestion subsystem: clients stream
// check-in events (user, location, timestamp), a bounded sliding-window
// store keeps each user's recent events, and a clock-driven Releaser
// periodically aggregates the window into per-user frequency vectors,
// applies the paper's DP release mechanism, charges the budget ledger
// per window, and publishes to a bounded release history.
//
// Everything is driven by an injected clock, so tests (and the
// replay-identity e2e) never sleep: the same event log replayed offline
// against the same tick schedule produces bit-identical releases.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"poiagg/internal/geo"
)

// Validation errors, surfaced per event by the ingest endpoint.
var (
	// ErrNoUser marks an event with an empty user id.
	ErrNoUser = errors.New("stream: event has no userId")
	// ErrUserTooLong marks an oversized user id.
	ErrUserTooLong = errors.New("stream: userId too long")
	// ErrBadLocation marks a non-finite or out-of-bounds location.
	ErrBadLocation = errors.New("stream: bad location")
	// ErrNoTimestamp marks an event with a zero timestamp.
	ErrNoTimestamp = errors.New("stream: event has no timestamp")
	// ErrStaleEvent marks an event older than the sliding window — it
	// could never contribute to a release, so it is rejected rather than
	// silently buffered.
	ErrStaleEvent = errors.New("stream: event older than window")
	// ErrFutureEvent marks an event timestamped beyond the accepted
	// clock skew.
	ErrFutureEvent = errors.New("stream: event timestamp in the future")
	// ErrEventIDTooLong marks an oversized event id.
	ErrEventIDTooLong = errors.New("stream: event id too long")
	// ErrDuplicateEvent marks an event whose id already sits in the
	// user's window: an at-least-once retry replayed it, and the store
	// applied the original. It is a dedup outcome, not a validation
	// failure.
	ErrDuplicateEvent = errors.New("stream: duplicate event id in window")
)

// MaxUserIDLen bounds the user id so a single event cannot bloat the
// per-user map key space.
const MaxUserIDLen = 128

// MaxEventIDLen bounds the optional event id, which lives in the
// window store's per-user dedup set for as long as the event does.
const MaxEventIDLen = 128

// FutureSkew is how far ahead of the server clock an event timestamp
// may run before it is rejected as ErrFutureEvent.
const FutureSkew = 30 * time.Second

// Event is one streamed check-in: a user at a location at a time.
type Event struct {
	UserID string    `json:"userId"`
	X      float64   `json:"x"`
	Y      float64   `json:"y"`
	TS     time.Time `json:"ts"`
	// ID optionally identifies the event so at-least-once retries
	// deduplicate: re-applying an id that is still in the user's window
	// returns ErrDuplicateEvent instead of inflating the aggregate.
	// LBSClient.Ingest assigns ids automatically when absent.
	ID string `json:"id,omitempty"`
}

// Loc returns the event's location as a geo.Point.
func (e Event) Loc() geo.Point { return geo.Point{X: e.X, Y: e.Y} }

// Validate checks the event against the store's window [now-window, now
// +FutureSkew] and bounds (skipped when bounds has zero area).
func (e Event) Validate(now time.Time, window time.Duration, bounds geo.Rect) error {
	if e.UserID == "" {
		return ErrNoUser
	}
	if len(e.UserID) > MaxUserIDLen {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrUserTooLong, len(e.UserID), MaxUserIDLen)
	}
	if len(e.ID) > MaxEventIDLen {
		return fmt.Errorf("%w: %d bytes (max %d)", ErrEventIDTooLong, len(e.ID), MaxEventIDLen)
	}
	if math.IsNaN(e.X) || math.IsInf(e.X, 0) || math.IsNaN(e.Y) || math.IsInf(e.Y, 0) {
		return fmt.Errorf("%w: non-finite coordinates", ErrBadLocation)
	}
	if bounds.Area() > 0 && !bounds.ContainsClosed(e.Loc()) {
		return fmt.Errorf("%w: (%.1f, %.1f) outside city bounds", ErrBadLocation, e.X, e.Y)
	}
	if e.TS.IsZero() {
		return ErrNoTimestamp
	}
	if !e.TS.After(now.Add(-window)) {
		return fmt.Errorf("%w: ts %s, window %s", ErrStaleEvent, e.TS.Format(time.RFC3339), window)
	}
	if e.TS.After(now.Add(FutureSkew)) {
		return fmt.Errorf("%w: ts %s", ErrFutureEvent, e.TS.Format(time.RFC3339))
	}
	return nil
}

// ManualClock is a settable clock for tests and replay: inject
// clock.Now into Config.Clock and budget.WithClock, then Set/Advance it
// explicitly instead of sleeping.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock starts a manual clock at t.
func NewManualClock(t time.Time) *ManualClock { return &ManualClock{t: t} }

// Now returns the current manual time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Set moves the clock to t.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// Advance moves the clock forward by d and returns the new time.
func (c *ManualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}
