package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/citygen"
	"poiagg/internal/cloak"
	"poiagg/internal/defense"
	"poiagg/internal/gsp"
)

var (
	fixOnce sync.Once
	fixCity *citygen.City
	fixSvc  *gsp.Service
	fixMech *defense.DPRelease
)

func fixture(t testing.TB) (*citygen.City, *gsp.Service, *defense.DPRelease) {
	t.Helper()
	fixOnce.Do(func() {
		p := citygen.Beijing(41)
		p.NumPOIs = 1200
		p.NumTypes = 40
		p.Width, p.Height = 8_000, 8_000
		p.NumDistricts = 16
		city, err := citygen.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		fixCity = city
		fixSvc = gsp.NewService(city.City, 1<<14)
		pop := cloak.UniformPopulation(city.Bounds, 2_000, 42)
		mech, err := defense.NewDPRelease(fixSvc, pop, defense.DefaultDPReleaseConfig())
		if err != nil {
			t.Fatal(err)
		}
		fixMech = mech
	})
	return fixCity, fixSvc, fixMech
}

var baseTime = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// testStore builds a store over the fixture city with a manual clock.
func testStore(t testing.TB, maxUsers, maxPerUser int, window time.Duration) (*Store, *ManualClock) {
	t.Helper()
	city, _, _ := fixture(t)
	clock := NewManualClock(baseTime)
	st, err := NewStore(Config{
		Window:     window,
		MaxUsers:   maxUsers,
		MaxPerUser: maxPerUser,
		Clock:      clock.Now,
		Bounds:     city.Bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, clock
}

// eventAt builds a valid in-bounds event for the fixture city.
func eventAt(t testing.TB, user string, seed int, ts time.Time) Event {
	t.Helper()
	city, _, _ := fixture(t)
	l := city.RandomLocations(1, uint64(seed)+7000)[0]
	return Event{UserID: user, X: l.X, Y: l.Y, TS: ts}
}

func TestEventValidate(t *testing.T) {
	city, _, _ := fixture(t)
	now := baseTime
	const window = 5 * time.Minute
	ok := eventAt(t, "u1", 1, now)
	for _, tc := range []struct {
		name string
		mut  func(Event) Event
		want error
	}{
		{"valid", func(e Event) Event { return e }, nil},
		{"no user", func(e Event) Event { e.UserID = ""; return e }, ErrNoUser},
		{"long user", func(e Event) Event { e.UserID = string(make([]byte, MaxUserIDLen+1)); return e }, ErrUserTooLong},
		{"nan x", func(e Event) Event { e.X = math.NaN(); return e }, ErrBadLocation},
		{"out of bounds", func(e Event) Event { e.X = city.Bounds.MaxX + 1e6; return e }, ErrBadLocation},
		{"zero ts", func(e Event) Event { e.TS = time.Time{}; return e }, ErrNoTimestamp},
		{"stale", func(e Event) Event { e.TS = now.Add(-window); return e }, ErrStaleEvent},
		{"barely fresh", func(e Event) Event { e.TS = now.Add(-window + time.Second); return e }, nil},
		{"future", func(e Event) Event { e.TS = now.Add(FutureSkew + time.Second); return e }, ErrFutureEvent},
		{"skewed ok", func(e Event) Event { e.TS = now.Add(FutureSkew); return e }, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.mut(ok).Validate(now, window, city.Bounds)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestStoreRejectsCountedAtDoor(t *testing.T) {
	st, clock := testStore(t, 10, 4, 5*time.Minute)
	err := st.Apply(eventAt(t, "u1", 1, clock.Now().Add(-time.Hour)), "acme")
	if !errors.Is(err, ErrStaleEvent) {
		t.Fatalf("Apply stale = %v", err)
	}
	s := st.Stats()
	if s.Rejected != 1 || s.Accepted != 0 || s.WindowEvents != 0 || s.ActiveUsers != 0 {
		t.Errorf("stats after rejected event: %+v", s)
	}
}

// TestStoreFloodBounded is the memory-bound proof at package level: 10×
// the user cap of distinct users floods the store, yet live state never
// exceeds MaxUsers users / MaxUsers×MaxPerUser events — the excess is
// shed (evicted or dropped), not buffered.
func TestStoreFloodBounded(t *testing.T) {
	const maxUsers, maxPerUser = 40, 4
	st, clock := testStore(t, maxUsers, maxPerUser, 5*time.Minute)
	now := clock.Now()
	total := 0
	for i := 0; i < 10*maxUsers; i++ {
		user := fmt.Sprintf("flood-%04d", i)
		for j := 0; j < maxPerUser+2; j++ {
			if err := st.Apply(eventAt(t, user, i*100+j, now), "acme"); err != nil {
				t.Fatalf("Apply %s/%d: %v", user, j, err)
			}
			total++
		}
		if s := st.Stats(); s.ActiveUsers > maxUsers || s.WindowEvents > maxUsers*maxPerUser {
			t.Fatalf("bound violated mid-flood: %+v", s)
		}
	}
	s := st.Stats()
	if s.ActiveUsers > maxUsers {
		t.Errorf("ActiveUsers = %d > cap %d", s.ActiveUsers, maxUsers)
	}
	if s.WindowEvents > maxUsers*maxPerUser {
		t.Errorf("WindowEvents = %d > bound %d", s.WindowEvents, maxUsers*maxPerUser)
	}
	if s.Accepted != uint64(total) {
		t.Errorf("Accepted = %d, want %d", s.Accepted, total)
	}
	if s.UsersEvicted < uint64(9*maxUsers) {
		t.Errorf("UsersEvicted = %d, want ≥ %d", s.UsersEvicted, 9*maxUsers)
	}
	if s.Dropped == 0 {
		t.Error("per-user cap never dropped despite maxPerUser+2 events per user")
	}
}

func TestStorePerUserCapDropsOldest(t *testing.T) {
	const capN = 5
	st, clock := testStore(t, 10, capN, 10*time.Minute)
	now := clock.Now()
	var evs []Event
	for j := 0; j < capN+3; j++ {
		ev := eventAt(t, "chatty", j, now.Add(time.Duration(j)*time.Second))
		evs = append(evs, ev)
		if err := st.Apply(ev, "acme"); err != nil {
			t.Fatal(err)
		}
	}
	aw := st.ActiveAt(now.Add(time.Minute))
	if len(aw) != 1 || len(aw[0].Locations) != capN {
		t.Fatalf("window = %d users / %d events, want 1/%d", len(aw), len(aw[0].Locations), capN)
	}
	// The survivors must be the most recent cap events, in order.
	for i, loc := range aw[0].Locations {
		want := evs[len(evs)-capN+i].Loc()
		if loc != want {
			t.Errorf("event %d: %v, want %v", i, loc, want)
		}
	}
	if s := st.Stats(); s.Dropped != 3 {
		t.Errorf("Dropped = %d, want 3", s.Dropped)
	}
}

// TestEvictedUserFreshWindow covers the satellite: a user shed by the
// second-chance cap who re-appears mid-window must start from an empty
// window — their pre-eviction events must not resurrect.
func TestEvictedUserFreshWindow(t *testing.T) {
	const maxUsers = 8
	st, clock := testStore(t, maxUsers, 16, 10*time.Minute)
	now := clock.Now()
	for j := 0; j < 5; j++ {
		if err := st.Apply(eventAt(t, "victim", j, now.Add(time.Duration(j)*time.Second)), "acme"); err != nil {
			t.Fatal(err)
		}
	}
	// Flood enough distinct users to clear the victim's second-chance
	// bit and then evict it (2× the cap guarantees two full passes).
	for i := 0; i < 2*maxUsers; i++ {
		if err := st.Apply(eventAt(t, fmt.Sprintf("noise-%03d", i), 1000+i, now), "acme"); err != nil {
			t.Fatal(err)
		}
	}
	if s := st.Stats(); s.UsersEvicted == 0 {
		t.Fatal("flood evicted nobody; test premise broken")
	}
	for _, u := range st.ActiveAt(now.Add(time.Second)) {
		if u.UserID == "victim" {
			t.Fatal("victim survived the flood; test premise broken")
		}
	}
	// The victim returns mid-window with one fresh event.
	fresh := eventAt(t, "victim", 99, now.Add(2*time.Minute))
	clock.Set(now.Add(2 * time.Minute))
	if err := st.Apply(fresh, "acme"); err != nil {
		t.Fatal(err)
	}
	for _, u := range st.ActiveAt(now.Add(2 * time.Minute)) {
		if u.UserID != "victim" {
			continue
		}
		if len(u.Locations) != 1 {
			t.Fatalf("re-appeared victim has %d window events, want exactly 1 (stale events resurrected)", len(u.Locations))
		}
		if u.Locations[0] != fresh.Loc() {
			t.Fatalf("victim's window holds %v, want the fresh event %v", u.Locations[0], fresh.Loc())
		}
		return
	}
	t.Fatal("re-appeared victim missing from the window")
}

// TestCrossPrincipalUserWindowsIsolated pins the window keying: a
// tenant streaming a userId another tenant already uses gets its own
// window — it cannot re-attribute the other tenant's buffered events to
// its principal (and thus its budget), and neither tenant's events leak
// into the other's aggregate contribution.
func TestCrossPrincipalUserWindowsIsolated(t *testing.T) {
	st, clock := testStore(t, 10, 8, 10*time.Minute)
	now := clock.Now()
	for j := 0; j < 2; j++ {
		if err := st.Apply(eventAt(t, "ada", j, now.Add(time.Duration(j)*time.Second)), "acme"); err != nil {
			t.Fatal(err)
		}
	}
	// The hijack attempt from the review: one event under the same
	// userId from a different principal.
	if err := st.Apply(eventAt(t, "ada", 9, now.Add(3*time.Second)), "globex"); err != nil {
		t.Fatal(err)
	}
	aw := st.ActiveAt(now.Add(time.Minute))
	if len(aw) != 2 {
		t.Fatalf("windows = %d, want 2 separate (principal, user) windows: %+v", len(aw), aw)
	}
	// Sorted by (user, principal): acme first.
	if aw[0].Principal != "acme" || len(aw[0].Locations) != 2 {
		t.Errorf("acme window: %+v", aw[0])
	}
	if aw[1].Principal != "globex" || len(aw[1].Locations) != 1 {
		t.Errorf("globex window: %+v", aw[1])
	}
	for _, u := range aw {
		if u.UserID != "ada" {
			t.Errorf("window user = %q, want ada", u.UserID)
		}
	}
}

// TestStoreDedupByID pins at-least-once dedup: a replayed event id
// still live in the window is applied once; ids die with their events
// (window expiry and drop-oldest both free them).
func TestStoreDedupByID(t *testing.T) {
	st, clock := testStore(t, 10, 2, 2*time.Minute)
	now := clock.Now()
	ev := eventAt(t, "u1", 1, now)
	ev.ID = "batch-1/0"
	if err := st.Apply(ev, "acme"); err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(ev, "acme"); !errors.Is(err, ErrDuplicateEvent) {
		t.Fatalf("replayed id = %v, want ErrDuplicateEvent", err)
	}
	s := st.Stats()
	if s.Accepted != 1 || s.Deduped != 1 || s.WindowEvents != 1 {
		t.Fatalf("stats after replay: %+v", s)
	}
	// The same id under a different principal is a different window: no
	// cross-tenant dedup oracle.
	if err := st.Apply(ev, "globex"); err != nil {
		t.Fatalf("same id, other principal: %v", err)
	}
	// Drop-oldest frees the dropped event's id for re-admission.
	for j := 0; j < 2; j++ {
		e := eventAt(t, "u1", 10+j, now.Add(time.Duration(j+1)*time.Second))
		e.ID = fmt.Sprintf("batch-2/%d", j)
		if err := st.Apply(e, "acme"); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Apply(ev, "acme"); err != nil {
		t.Fatalf("id of dropped event should be admissible again: %v", err)
	}
	// Window expiry frees ids too.
	clock.Set(now.Add(3 * time.Minute))
	late := eventAt(t, "u2", 30, now.Add(3*time.Minute))
	late.ID = "late"
	if err := st.Apply(late, "acme"); err != nil {
		t.Fatal(err)
	}
	clock.Set(now.Add(6 * time.Minute))
	late2 := eventAt(t, "u2", 31, now.Add(6*time.Minute))
	late2.ID = "late"
	if err := st.Apply(late2, "acme"); err != nil {
		t.Fatalf("id of expired event should be admissible again: %v", err)
	}
}

func TestStorePrunesExpiredWindows(t *testing.T) {
	st, clock := testStore(t, 10, 8, 2*time.Minute)
	now := clock.Now()
	for j := 0; j < 3; j++ {
		if err := st.Apply(eventAt(t, "u1", j, now), "acme"); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.ActiveAt(now); len(got) != 1 {
		t.Fatalf("active before expiry = %d users", len(got))
	}
	later := now.Add(3 * time.Minute)
	if got := st.ActiveAt(later); len(got) != 0 {
		t.Fatalf("active after expiry = %d users, want 0", len(got))
	}
	s := st.Stats()
	if s.WindowEvents != 0 {
		t.Errorf("WindowEvents = %d after expiry", s.WindowEvents)
	}
	// The user stays registered (map/queue 1:1); only shedding removes.
	if s.ActiveUsers != 1 {
		t.Errorf("registered users = %d, want 1", s.ActiveUsers)
	}
}

// streamRig is a full store+releaser+ledger stack over the fixture city
// with one shared manual clock.
type streamRig struct {
	st    *Store
	rel   *Releaser
	led   *budget.Ledger
	clock *ManualClock
}

func newRig(t testing.TB, seed uint64, pol *budget.Policy) *streamRig {
	t.Helper()
	city, svc, mech := fixture(t)
	clock := NewManualClock(baseTime)
	st, err := NewStore(Config{
		Window:   4 * time.Minute,
		MaxUsers: 64,
		Clock:    clock.Now,
		Bounds:   city.Bounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	var led *budget.Ledger
	if pol != nil {
		led, err = budget.New(*pol, budget.WithClock(clock.Now))
		if err != nil {
			t.Fatal(err)
		}
	}
	rel, err := NewReleaser(st, svc, mech, led, ReleaserConfig{
		Radius: 900,
		Seed:   seed,
		Eps:    0.5,
		Delta:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &streamRig{st: st, rel: rel, led: led, clock: clock}
}

// feed applies a deterministic little workload: n users under two
// principals, two events each.
func (rg *streamRig) feed(t testing.TB, n int) {
	t.Helper()
	now := rg.clock.Now()
	for i := 0; i < n; i++ {
		p := "acme"
		if i%2 == 1 {
			p = "globex"
		}
		user := fmt.Sprintf("user-%03d", i)
		for j := 0; j < 2; j++ {
			if err := rg.st.Apply(eventAt(t, user, i*10+j, now.Add(time.Duration(j)*time.Second)), p); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestTickDeterministic(t *testing.T) {
	a, b := newRig(t, 77, nil), newRig(t, 77, nil)
	a.feed(t, 9)
	b.feed(t, 9)
	tick := baseTime.Add(time.Minute)
	ra, err := a.rel.Tick(tick)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.rel.Tick(tick)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("same seed, same events, different releases:\n a %+v\n b %+v", ra, rb)
	}
	if ra.Users != 9 || ra.Events != 18 {
		t.Errorf("release counted %d users / %d events, want 9/18", ra.Users, ra.Events)
	}
	c := newRig(t, 78, nil)
	c.feed(t, 9)
	rc, err := c.rel.Tick(tick)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ra.Freq, rc.Freq) {
		t.Error("different seeds produced identical noise")
	}
}

func TestTickEmptyWindow(t *testing.T) {
	rg := newRig(t, 5, nil)
	rel, err := rg.rel.Tick(baseTime.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Users != 0 || len(rel.Freq) != 0 {
		t.Errorf("empty-window release: %+v", rel)
	}
	if got := rg.rel.History(0); len(got) != 1 || got[0].Tick != 0 {
		t.Errorf("history after empty tick: %+v", got)
	}
}

func TestTickChargesBudgetAndDenies(t *testing.T) {
	// Lifetime budget allows exactly one (0.5, 0.05) charge per
	// principal.
	pol := &budget.Policy{LifetimeEps: 0.6, LifetimeDelta: 0.06}
	rg := newRig(t, 9, pol)
	rg.feed(t, 6)
	r1, err := rg.rel.Tick(baseTime.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Denied) != 0 || r1.Users != 6 {
		t.Fatalf("first tick: %+v", r1)
	}
	for _, p := range []string{"acme", "globex"} {
		if d := rg.led.Status(p); d.SpentEps != 0.5 {
			t.Errorf("principal %s spent %v, want 0.5", p, d.SpentEps)
		}
	}
	// Second window: both principals exhausted → all users excluded.
	rg.clock.Set(baseTime.Add(2 * time.Minute))
	rg.feed(t, 6)
	r2, err := rg.rel.Tick(baseTime.Add(3 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2.Denied, []string{"acme", "globex"}) {
		t.Fatalf("Denied = %v", r2.Denied)
	}
	if r2.Users != 0 || len(r2.Freq) != 0 {
		t.Fatalf("denied principals still contributed: %+v", r2)
	}
	// Denials must not have spent anything further.
	for _, p := range []string{"acme", "globex"} {
		if d := rg.led.Status(p); d.SpentEps != 0.5 {
			t.Errorf("principal %s spent %v after denial, want 0.5", p, d.SpentEps)
		}
	}
}

// TestTickRetrySkipsChargedPrincipals pins the partial-failure path: a
// Spend failure mid-loop aborts the tick after durably charging earlier
// principals, and the retried tick must skip them — one window, one
// charge per principal, even across the retry.
func TestTickRetrySkipsChargedPrincipals(t *testing.T) {
	pol := &budget.Policy{LifetimeEps: 10, LifetimeDelta: 0.5}
	rg := newRig(t, 31, pol)
	rg.feed(t, 6) // 3 users under acme, 3 under globex
	realSpend := rg.rel.spend
	failing := true
	rg.rel.spend = func(p string, eps, delta float64) (budget.Decision, error) {
		if failing && p == "globex" {
			return budget.Decision{}, errors.New("injected ledger failure")
		}
		return realSpend(p, eps, delta)
	}
	tick := baseTime.Add(time.Minute)
	if _, err := rg.rel.Tick(tick); err == nil {
		t.Fatal("Tick survived the injected Spend failure")
	}
	// acme (sorted first) was charged durably before the failure.
	if d := rg.led.Status("acme"); d.SpentEps != 0.5 {
		t.Fatalf("acme spent %v after failed tick, want 0.5", d.SpentEps)
	}
	if got := rg.rel.Ticks(); got != 0 {
		t.Fatalf("failed tick advanced the counter to %d", got)
	}
	failing = false
	wr, err := rg.rel.Tick(tick)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Users != 6 || len(wr.Denied) != 0 {
		t.Fatalf("retried tick release: %+v", wr)
	}
	for _, p := range []string{"acme", "globex"} {
		d := rg.led.Status(p)
		if d.SpentEps != 0.5 || d.Releases != 1 {
			t.Errorf("principal %s: spent %v over %d releases, want 0.5 over 1 (double-charged on retry)", p, d.SpentEps, d.Releases)
		}
	}
	// The memo is per tick: the next window charges normally again.
	rg.clock.Set(tick.Add(time.Minute))
	rg.feed(t, 6)
	if _, err := rg.rel.Tick(tick.Add(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if d := rg.led.Status("acme"); d.SpentEps != 1.0 {
		t.Errorf("acme spent %v after second window, want 1.0", d.SpentEps)
	}
}

// TestDeniedPrincipalCannotSuppressOthers pins the other half of the
// window-keying fix: a budget-exhausted tenant submitting events under
// a userId that a healthy tenant is streaming must not suppress the
// healthy tenant's window from the release.
func TestDeniedPrincipalCannotSuppressOthers(t *testing.T) {
	// One (0.5, 0.05) charge per principal, ever.
	pol := &budget.Policy{LifetimeEps: 0.6, LifetimeDelta: 0.06}
	rg := newRig(t, 17, pol)
	// Window 1: only globex is active; the tick exhausts its budget.
	if err := rg.st.Apply(eventAt(t, "gx-user", 1, baseTime), "globex"); err != nil {
		t.Fatal(err)
	}
	if _, err := rg.rel.Tick(baseTime.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Window 2: acme streams "ada"; exhausted globex sends one event
	// under the same userId.
	rg.clock.Set(baseTime.Add(6 * time.Minute)) // window 1 events age out (4m window)
	now := rg.clock.Now()
	for j := 0; j < 2; j++ {
		if err := rg.st.Apply(eventAt(t, "ada", 10+j, now), "acme"); err != nil {
			t.Fatal(err)
		}
	}
	if err := rg.st.Apply(eventAt(t, "ada", 20, now), "globex"); err != nil {
		t.Fatal(err)
	}
	wr, err := rg.rel.Tick(now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wr.Denied, []string{"globex"}) {
		t.Fatalf("Denied = %v, want [globex]", wr.Denied)
	}
	// acme's ada window survives: 1 user, 2 events — globex's denial
	// only excluded globex's own single-event window.
	if wr.Users != 1 || wr.Events != 2 {
		t.Fatalf("release = %d users / %d events, want acme's 1/2 (denied tenant suppressed another tenant's window): %+v", wr.Users, wr.Events, wr)
	}
}

func TestReleaserHistoryBounded(t *testing.T) {
	city, svc, mech := fixture(t)
	clock := NewManualClock(baseTime)
	st, err := NewStore(Config{MaxUsers: 8, Clock: clock.Now, Bounds: city.Bounds})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := NewReleaser(st, svc, mech, nil, ReleaserConfig{History: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rel.Tick(baseTime.Add(time.Duration(i) * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	h := rel.History(0)
	if len(h) != 3 {
		t.Fatalf("history length = %d, want 3", len(h))
	}
	for i, wr := range h {
		if wr.Tick != uint64(i+2) {
			t.Errorf("history[%d].Tick = %d, want %d", i, wr.Tick, i+2)
		}
	}
	if h2 := rel.History(2); len(h2) != 2 || h2[0].Tick != 3 {
		t.Errorf("History(2) = %+v", h2)
	}
}

func TestStartStopFinalFlush(t *testing.T) {
	rg := newRig(t, 13, nil)
	rg.feed(t, 3)
	var mu sync.Mutex
	var errs []error
	stop := rg.rel.Start(func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	})
	// No sleeps: the production interval (1m default) never fires in
	// this test; stop's final flush is the only tick.
	stop()
	stop() // idempotent
	if got := rg.rel.Ticks(); got != 1 {
		t.Fatalf("Ticks after stop = %d, want exactly the final flush", got)
	}
	h := rg.rel.History(0)
	if len(h) != 1 || h[0].Users != 3 {
		t.Fatalf("final flush release: %+v", h)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 0 {
		t.Fatalf("tick errors: %v", errs)
	}
}

// TestReplayIdentity is the package-level replay proof: a live
// interleaving of ingests and ticks, then an offline Replay of the
// captured log over the same tick schedule, must produce bit-identical
// releases and byte-identical ledger state.
func TestReplayIdentity(t *testing.T) {
	pol := &budget.Policy{LifetimeEps: 10, LifetimeDelta: 0.5}
	live := newRig(t, 21, pol)

	var log []LoggedEvent
	ticks := []time.Time{
		baseTime.Add(1 * time.Minute),
		baseTime.Add(2 * time.Minute),
		baseTime.Add(3 * time.Minute),
	}
	ingest := func(user, principal string, seed int, at time.Time) {
		live.clock.Set(at)
		ev := eventAt(t, user, seed, at)
		log = append(log, LoggedEvent{At: at, Principal: principal, Event: ev})
		if err := live.st.Apply(ev, principal); err != nil {
			t.Fatal(err)
		}
	}

	var liveRels []WindowRelease
	tickAt := func(tk time.Time) {
		live.clock.Set(tk)
		wr, err := live.rel.Tick(tk)
		if err != nil {
			t.Fatal(err)
		}
		liveRels = append(liveRels, wr)
	}

	ingest("ada", "acme", 1, baseTime.Add(10*time.Second))
	ingest("bob", "globex", 2, baseTime.Add(20*time.Second))
	ingest("ada", "acme", 3, baseTime.Add(40*time.Second))
	tickAt(ticks[0])
	ingest("cyd", "acme", 4, baseTime.Add(70*time.Second))
	ingest("bob", "globex", 5, baseTime.Add(100*time.Second))
	tickAt(ticks[1])
	// Third window: nothing new; ada's first event ages out.
	tickAt(ticks[2])

	liveState, err := live.led.DumpState()
	if err != nil {
		t.Fatal(err)
	}

	replay := newRig(t, 21, pol)
	replayRels, err := Replay(replay.st, replay.rel, replay.clock, log, ticks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(liveRels, replayRels) {
		t.Fatalf("replay diverged:\n live   %+v\n replay %+v", liveRels, replayRels)
	}
	replayState, err := replay.led.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveState, replayState) {
		t.Fatalf("ledger state diverged:\n live   %s\n replay %s", liveState, replayState)
	}
}

func TestNewStoreAndReleaserValidation(t *testing.T) {
	_, svc, mech := fixture(t)
	if _, err := NewStore(Config{}); err == nil {
		t.Error("NewStore accepted MaxUsers = 0")
	}
	st, err := NewStore(Config{MaxUsers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Config().Window != DefaultWindow || st.Config().MaxPerUser != DefaultMaxPerUser {
		t.Errorf("defaults not applied: %+v", st.Config())
	}
	if _, err := NewReleaser(nil, svc, mech, nil, ReleaserConfig{}); err == nil {
		t.Error("NewReleaser accepted nil store")
	}
	led, err := budget.New(budget.Policy{LifetimeEps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReleaser(st, svc, mech, led, ReleaserConfig{}); err == nil {
		t.Error("NewReleaser accepted a ledger with Eps = 0")
	}
	if _, err := Replay(nil, nil, nil, nil, nil); err == nil {
		t.Error("Replay accepted nils")
	}
}
