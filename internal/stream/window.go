package stream

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"poiagg/internal/geo"
	"poiagg/internal/obs"
)

// Store defaults.
const (
	// DefaultWindow is the sliding-window length.
	DefaultWindow = 5 * time.Minute
	// DefaultMaxPerUser caps how many window events one user may hold;
	// beyond it the oldest event is dropped (shed, not buffered).
	DefaultMaxPerUser = 64
)

// Config parameterizes a window Store.
type Config struct {
	// Window is the sliding-window length; events older than now-Window
	// are pruned (and rejected on arrival).
	Window time.Duration
	// MaxUsers caps the distinct (principal, user) windows held; when
	// full, admitting a new window evicts an idle one via the same
	// second-chance policy as the LBS release history (-history-users).
	MaxUsers int
	// MaxPerUser caps one user's window events; the oldest is dropped
	// when exceeded.
	MaxPerUser int
	// Clock supplies "now" for validation and pruning; defaults to
	// time.Now. Tests and replay inject a ManualClock.
	Clock func() time.Time
	// Bounds rejects events outside the city when it has positive area.
	Bounds geo.Rect
}

// windowKey addresses one user's window. Keying by (principal, userId)
// — not the client-supplied userId alone — means a tenant streaming a
// userId another tenant already uses gets its own separate window: it
// cannot re-attribute the other tenant's buffered events to its budget,
// and a budget denial against it cannot suppress them.
type windowKey struct {
	principal string
	userID    string
}

// winEvent is one stored check-in (the user id lives in the map key).
type winEvent struct {
	loc geo.Point
	ts  time.Time
	id  string // dedup id; "" when the client sent none
}

// userWindow is one user's live window state.
type userWindow struct {
	events  []winEvent
	seen    map[string]bool // ids of live events; nil until an id arrives
	touched bool            // second-chance bit
}

// Store holds bounded per-user sliding-window state. Memory is bounded
// by MaxUsers × MaxPerUser events regardless of how many distinct users
// stream or how fast: excess users evict via second chance, excess
// per-user events drop oldest, and stale events are rejected at the
// door. The dedup set adds at most one id per live event.
type Store struct {
	cfg Config

	mu     sync.Mutex
	users  map[windowKey]*userWindow
	userQ  []windowKey // second-chance queue; 1:1 with users keys
	events int         // total events across all windows

	accepted     obs.Counter
	rejected     obs.Counter
	deduped      obs.Counter // at-least-once replays applied once
	dropped      obs.Counter // per-user cap drops
	usersEvicted obs.Counter
}

// NewStore builds a Store, applying defaults for zero fields.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxUsers <= 0 {
		return nil, fmt.Errorf("stream: NewStore: MaxUsers must be positive, got %d", cfg.MaxUsers)
	}
	if cfg.MaxPerUser <= 0 {
		cfg.MaxPerUser = DefaultMaxPerUser
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Store{cfg: cfg, users: make(map[windowKey]*userWindow)}, nil
}

// Config returns the store's effective configuration.
func (s *Store) Config() Config { return s.cfg }

// Apply validates and admits one event under the given principal. The
// window is keyed by (principal, userId), so the event only ever joins
// (and is only ever charged to) the submitting principal's own window.
// An event id already live in that window returns ErrDuplicateEvent and
// is not re-applied.
func (s *Store) Apply(ev Event, principal string) error {
	now := s.cfg.Clock()
	if err := ev.Validate(now, s.cfg.Window, s.cfg.Bounds); err != nil {
		s.rejected.Inc()
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	key := windowKey{principal: principal, userID: ev.UserID}
	u := s.users[key]
	if u == nil {
		s.shedLocked()
		u = &userWindow{}
		s.users[key] = u
		s.userQ = append(s.userQ, key)
	}
	u.touched = true
	s.pruneUserLocked(u, now)
	if ev.ID != "" {
		if u.seen[ev.ID] {
			s.deduped.Inc()
			return ErrDuplicateEvent
		}
		if u.seen == nil {
			u.seen = make(map[string]bool)
		}
		u.seen[ev.ID] = true
	}
	if len(u.events) >= s.cfg.MaxPerUser {
		// Drop-oldest: the window sheds rather than buffers a chatty
		// user.
		drop := len(u.events) - s.cfg.MaxPerUser + 1
		for _, e := range u.events[:drop] {
			if e.id != "" {
				delete(u.seen, e.id)
			}
		}
		u.events = append(u.events[:0], u.events[drop:]...)
		s.events -= drop
		for i := 0; i < drop; i++ {
			s.dropped.Inc()
		}
	}
	u.events = append(u.events, winEvent{loc: ev.Loc(), ts: ev.TS, id: ev.ID})
	s.events++
	s.accepted.Inc()
	return nil
}

// shedLocked makes room for one new user when the store is at MaxUsers,
// mirroring the LBS release history's second-chance queue: recently
// touched users get one reprieve, the first un-touched user is evicted
// with all their window events.
func (s *Store) shedLocked() {
	for len(s.users) >= s.cfg.MaxUsers && len(s.userQ) > 0 {
		oldest := s.userQ[0]
		s.userQ = s.userQ[1:]
		u := s.users[oldest]
		if u == nil {
			continue
		}
		if u.touched {
			u.touched = false
			s.userQ = append(s.userQ, oldest)
			continue
		}
		s.events -= len(u.events)
		delete(s.users, oldest)
		s.usersEvicted.Inc()
	}
}

// pruneUserLocked removes the user's events that have fallen out of the
// window ending at now, preserving arrival order. Pruned events release
// their dedup ids with them.
func (s *Store) pruneUserLocked(u *userWindow, now time.Time) {
	cutoff := now.Add(-s.cfg.Window)
	kept := u.events[:0]
	for _, e := range u.events {
		if e.ts.After(cutoff) {
			kept = append(kept, e)
		} else {
			if e.id != "" {
				delete(u.seen, e.id)
			}
			s.events--
		}
	}
	u.events = kept
}

// UserWindow is one user's live contribution to the current window, as
// seen by the releaser.
type UserWindow struct {
	UserID    string
	Principal string
	Locations []geo.Point
}

// ActiveAt prunes every window to (now-Window, now] and returns the
// users with at least one surviving event, sorted by (user id,
// principal) so downstream aggregation is deterministic. Users whose
// windows pruned empty stay registered (their map/queue entries are
// 1:1; only the second-chance shed removes users).
func (s *Store) ActiveAt(now time.Time) []UserWindow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]UserWindow, 0, len(s.users))
	for k, u := range s.users {
		s.pruneUserLocked(u, now)
		if len(u.events) == 0 {
			continue
		}
		locs := make([]geo.Point, len(u.events))
		for i, e := range u.events {
			locs[i] = e.loc
		}
		out = append(out, UserWindow{UserID: k.userID, Principal: k.principal, Locations: locs})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UserID != out[j].UserID {
			return out[i].UserID < out[j].UserID
		}
		return out[i].Principal < out[j].Principal
	})
	return out
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	ActiveUsers  int
	WindowEvents int
	Accepted     uint64
	Rejected     uint64
	Deduped      uint64
	Dropped      uint64
	UsersEvicted uint64
}

// Stats snapshots the store's gauges and counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	users, events := len(s.users), s.events
	s.mu.Unlock()
	return Stats{
		ActiveUsers:  users,
		WindowEvents: events,
		Accepted:     s.accepted.Value(),
		Rejected:     s.rejected.Value(),
		Deduped:      s.deduped.Value(),
		Dropped:      s.dropped.Value(),
		UsersEvicted: s.usersEvicted.Value(),
	}
}

// Metric names exported by the store.
const (
	MetricActiveUsers    = "stream.active_users"
	MetricWindowEvents   = "stream.window_events"
	MetricEventsAccepted = "stream.events_accepted"
	MetricEventsRejected = "stream.events_rejected"
	MetricEventsDeduped  = "stream.events_deduped"
	MetricEventsDropped  = "stream.events_dropped"
	MetricUsersEvicted   = "stream.users_evicted"
)

// ExportMetrics publishes the store's gauges and counters on reg.
func (s *Store) ExportMetrics(reg *obs.Registry) {
	reg.CounterFunc(MetricActiveUsers, func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(len(s.users))
	})
	reg.CounterFunc(MetricWindowEvents, func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(s.events)
	})
	reg.CounterFunc(MetricEventsAccepted, s.accepted.Value)
	reg.CounterFunc(MetricEventsRejected, s.rejected.Value)
	reg.CounterFunc(MetricEventsDeduped, s.deduped.Value)
	reg.CounterFunc(MetricEventsDropped, s.dropped.Value)
	reg.CounterFunc(MetricUsersEvicted, s.usersEvicted.Value)
}
