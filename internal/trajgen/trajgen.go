// Package trajgen generates synthetic user mobility data substituting for
// the paper's two real-world traces:
//
//   - Taxi trajectories (T-drive, Beijing): waypoint motion between
//     POI-biased destinations at urban driving speeds, sampled at a fixed
//     reporting interval. The trajectory attack (Fig. 8) consumes
//     successive (position, timestamp) pairs; realistic speeds and
//     POI-dense stops are the properties that matter, and both are
//     reproduced.
//   - Check-ins (Foursquare, NYC): a preferential-return user model that
//     snaps visits to POIs with a time-of-day rhythm. Check-ins are
//     POI-adjacent locations with timestamps, which is all the
//     re-identification experiments use.
package trajgen

import (
	"fmt"
	"time"

	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/rng"
)

// TimedPoint is a position observed at a time.
type TimedPoint struct {
	Pos geo.Point `json:"pos"`
	T   time.Time `json:"t"`
}

// Trajectory is one user's ordered sequence of observations.
type Trajectory struct {
	UserID int          `json:"userId"`
	Points []TimedPoint `json:"points"`
}

// baseTime anchors all synthetic timestamps; the absolute epoch is
// irrelevant to every experiment, only durations and time-of-day matter.
var baseTime = time.Date(2008, time.February, 2, 8, 0, 0, 0, time.UTC)

// TaxiParams configures taxi trajectory generation.
type TaxiParams struct {
	// NumTaxis is the number of trajectories.
	NumTaxis int
	// PointsPerTaxi is the number of reported samples per trajectory.
	PointsPerTaxi int
	// ReportInterval and ReportIntervalMax bound the randomized gap
	// between successive reports; real traces report irregularly, and the
	// gap length is the primary signal the trajectory attack's distance
	// regressor learns from.
	ReportInterval    time.Duration
	ReportIntervalMax time.Duration
	// SpeedMinMPS and SpeedMaxMPS bound driving speed in meters/second.
	SpeedMinMPS, SpeedMaxMPS float64
	// DwellProb is the chance a taxi idles (stays near its position) at a
	// report instead of driving.
	DwellProb float64
	// Seed drives generation.
	Seed uint64
}

// DefaultTaxiParams returns a T-drive-like configuration: ~10 km/h to
// ~50 km/h urban speeds sampled every 2 minutes.
func DefaultTaxiParams(seed uint64) TaxiParams {
	return TaxiParams{
		NumTaxis:          300,
		PointsPerTaxi:     60,
		ReportInterval:    30 * time.Second,
		ReportIntervalMax: 8 * time.Minute,
		SpeedMinMPS:       3,
		SpeedMaxMPS:       14,
		DwellProb:         0.15,
		Seed:              seed,
	}
}

// Taxis generates taxi trajectories over the city. Destinations are drawn
// from POI positions (with noise), so taxis concentrate where POIs do —
// matching how real taxi traces oversample commercial districts.
func Taxis(city *gsp.City, p TaxiParams) ([]Trajectory, error) {
	if p.NumTaxis <= 0 || p.PointsPerTaxi <= 0 {
		return nil, fmt.Errorf("trajgen: Taxis: need positive NumTaxis and PointsPerTaxi")
	}
	if p.ReportInterval <= 0 {
		return nil, fmt.Errorf("trajgen: Taxis: need positive ReportInterval")
	}
	if p.ReportIntervalMax < p.ReportInterval {
		p.ReportIntervalMax = p.ReportInterval
	}
	if p.SpeedMaxMPS < p.SpeedMinMPS || p.SpeedMinMPS < 0 {
		return nil, fmt.Errorf("trajgen: Taxis: bad speed range [%v, %v]", p.SpeedMinMPS, p.SpeedMaxMPS)
	}
	pois := city.POIs()
	if len(pois) == 0 {
		return nil, fmt.Errorf("trajgen: Taxis: city has no POIs")
	}
	src := rng.New(p.Seed)
	trajs := make([]Trajectory, p.NumTaxis)
	for taxi := 0; taxi < p.NumTaxis; taxi++ {
		ts := src.Split(uint64(taxi))
		pickDest := func() geo.Point {
			base := pois[ts.IntN(len(pois))].Pos
			return city.Bounds.Clamp(geo.Point{
				X: ts.Normal(base.X, 120),
				Y: ts.Normal(base.Y, 120),
			})
		}
		pos := pickDest()
		dest := pickDest()
		now := baseTime.Add(time.Duration(ts.IntN(12*3600)) * time.Second)
		gapSpan := p.ReportIntervalMax - p.ReportInterval
		points := make([]TimedPoint, 0, p.PointsPerTaxi)
		for i := 0; i < p.PointsPerTaxi; i++ {
			points = append(points, TimedPoint{Pos: pos, T: now})
			gap := p.ReportInterval
			if gapSpan > 0 {
				gap += time.Duration(ts.Float64() * float64(gapSpan))
			}
			now = now.Add(gap)
			if ts.Float64() < p.DwellProb {
				// Idle: small jitter only.
				pos = city.Bounds.Clamp(geo.Point{
					X: ts.Normal(pos.X, 15),
					Y: ts.Normal(pos.Y, 15),
				})
				continue
			}
			speed := p.SpeedMinMPS + ts.Float64()*(p.SpeedMaxMPS-p.SpeedMinMPS)
			step := speed * gap.Seconds()
			for step > 0 {
				d := geo.Dist(pos, dest)
				if d <= step {
					step -= d
					pos = dest
					dest = pickDest()
					continue
				}
				dir := dest.Sub(pos).Scale(1 / d)
				pos = pos.Add(dir.Scale(step))
				step = 0
			}
			// Road-network jitter: GPS points rarely sit on the straight
			// line between waypoints.
			pos = city.Bounds.Clamp(geo.Point{
				X: ts.Normal(pos.X, 25),
				Y: ts.Normal(pos.Y, 25),
			})
		}
		trajs[taxi] = Trajectory{UserID: taxi, Points: points}
	}
	return trajs, nil
}

// CheckinParams configures check-in stream generation.
type CheckinParams struct {
	// NumUsers is the number of users.
	NumUsers int
	// CheckinsPerUser is the number of check-ins per user.
	CheckinsPerUser int
	// FavoritePOIs is the size of each user's preferred POI set.
	FavoritePOIs int
	// ReturnProb is the chance a check-in revisits a favorite rather than
	// exploring a new POI.
	ReturnProb float64
	// Seed drives generation.
	Seed uint64
}

// DefaultCheckinParams returns a Foursquare-like configuration.
func DefaultCheckinParams(seed uint64) CheckinParams {
	return CheckinParams{
		NumUsers:        200,
		CheckinsPerUser: 50,
		FavoritePOIs:    8,
		ReturnProb:      0.7,
		Seed:            seed,
	}
}

// Checkins generates check-in trajectories over the city using a
// preferential-return model.
func Checkins(city *gsp.City, p CheckinParams) ([]Trajectory, error) {
	if p.NumUsers <= 0 || p.CheckinsPerUser <= 0 {
		return nil, fmt.Errorf("trajgen: Checkins: need positive NumUsers and CheckinsPerUser")
	}
	if p.FavoritePOIs <= 0 {
		return nil, fmt.Errorf("trajgen: Checkins: need positive FavoritePOIs")
	}
	pois := city.POIs()
	if len(pois) == 0 {
		return nil, fmt.Errorf("trajgen: Checkins: city has no POIs")
	}
	src := rng.New(p.Seed)
	trajs := make([]Trajectory, p.NumUsers)
	for u := 0; u < p.NumUsers; u++ {
		us := src.Split(uint64(u))
		favs := make([]geo.Point, p.FavoritePOIs)
		for i := range favs {
			favs[i] = pois[us.IntN(len(pois))].Pos
		}
		t := baseTime.Add(time.Duration(us.IntN(7*24*3600)) * time.Second)
		points := make([]TimedPoint, 0, p.CheckinsPerUser)
		for i := 0; i < p.CheckinsPerUser; i++ {
			var at geo.Point
			if us.Float64() < p.ReturnProb {
				at = favs[us.IntN(len(favs))]
			} else {
				at = pois[us.IntN(len(pois))].Pos
			}
			// Check-in GPS noise.
			at = city.Bounds.Clamp(geo.Point{
				X: us.Normal(at.X, 30),
				Y: us.Normal(at.Y, 30),
			})
			points = append(points, TimedPoint{Pos: at, T: t})
			// Inter-check-in gap: minutes to hours, skewed short, plus a
			// diurnal pause around night hours.
			gap := time.Duration(5+us.Exp(1.0/90)) * time.Minute
			t = t.Add(gap)
			if t.Hour() >= 1 && t.Hour() <= 6 {
				t = t.Add(6 * time.Hour)
			}
		}
		trajs[u] = Trajectory{UserID: u, Points: points}
	}
	return trajs, nil
}

// SampleLocations draws n locations from the trajectory set uniformly
// over all points — the "T-drive user locations" / "Foursquare check-ins"
// evaluation workloads of the paper.
func SampleLocations(trajs []Trajectory, n int, seed uint64) []geo.Point {
	var all []geo.Point
	for _, tr := range trajs {
		for _, pt := range tr.Points {
			all = append(all, pt.Pos)
		}
	}
	if len(all) == 0 {
		return nil
	}
	src := rng.New(seed)
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = all[src.IntN(len(all))]
	}
	return out
}

// Segment is a pair of successive observations of one user — the unit of
// the trajectory-uniqueness attack.
type Segment struct {
	UserID   int
	From, To TimedPoint
}

// Duration returns the elapsed time of the segment.
func (s Segment) Duration() time.Duration { return s.To.T.Sub(s.From.T) }

// Distance returns the ground-truth distance between the two positions.
func (s Segment) Distance() float64 { return geo.Dist(s.From.Pos, s.To.Pos) }

// Segments extracts every successive pair with duration in (0, maxGap]
// from the trajectories. The paper discards pairs with gaps over 10
// minutes (a new session) and pairs with no movement.
func Segments(trajs []Trajectory, maxGap time.Duration, minMove float64) []Segment {
	var out []Segment
	for _, tr := range trajs {
		for i := 0; i+1 < len(tr.Points); i++ {
			a, b := tr.Points[i], tr.Points[i+1]
			gap := b.T.Sub(a.T)
			if gap <= 0 || gap > maxGap {
				continue
			}
			if geo.Dist(a.Pos, b.Pos) < minMove {
				continue
			}
			out = append(out, Segment{UserID: tr.UserID, From: a, To: b})
		}
	}
	return out
}
