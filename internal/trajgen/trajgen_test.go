package trajgen

import (
	"testing"
	"time"

	"poiagg/internal/citygen"
	"poiagg/internal/geo"
)

func smallCity(t testing.TB) *citygen.City {
	t.Helper()
	p := citygen.Beijing(1)
	p.NumPOIs = 1500
	p.NumTypes = 60
	city, err := citygen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestTaxisBasics(t *testing.T) {
	city := smallCity(t)
	p := DefaultTaxiParams(2)
	p.NumTaxis = 10
	p.PointsPerTaxi = 30
	trajs, err := Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) != 10 {
		t.Fatalf("got %d trajectories", len(trajs))
	}
	for _, tr := range trajs {
		if len(tr.Points) != 30 {
			t.Fatalf("taxi %d has %d points", tr.UserID, len(tr.Points))
		}
		for i, pt := range tr.Points {
			if !city.Bounds.ContainsClosed(pt.Pos) {
				t.Fatalf("taxi %d point %d outside bounds", tr.UserID, i)
			}
			if i > 0 {
				gap := pt.T.Sub(tr.Points[i-1].T)
				if gap < p.ReportInterval || gap > p.ReportIntervalMax {
					t.Fatalf("taxi %d gap %v outside [%v, %v]",
						tr.UserID, gap, p.ReportInterval, p.ReportIntervalMax)
				}
			}
		}
	}
}

func TestTaxiSpeedsPlausible(t *testing.T) {
	city := smallCity(t)
	p := DefaultTaxiParams(3)
	p.NumTaxis = 20
	trajs, err := Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	// Between successive reports the taxi can cover at most
	// maxSpeed · gap plus jitter slack.
	moved := 0
	for _, tr := range trajs {
		for i := 1; i < len(tr.Points); i++ {
			gap := tr.Points[i].T.Sub(tr.Points[i-1].T)
			maxStep := p.SpeedMaxMPS*gap.Seconds() + 200
			d := geo.Dist(tr.Points[i].Pos, tr.Points[i-1].Pos)
			if d > maxStep {
				t.Fatalf("taxi %d step %d moved %.0f m > %.0f m", tr.UserID, i, d, maxStep)
			}
			if d > 100 {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Error("taxis never moved")
	}
}

func TestTaxisDeterministic(t *testing.T) {
	city := smallCity(t)
	p := DefaultTaxiParams(4)
	p.NumTaxis = 5
	a, err := Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Points {
			if a[i].Points[j] != b[i].Points[j] {
				t.Fatal("taxi generation not deterministic")
			}
		}
	}
}

func TestTaxisValidation(t *testing.T) {
	city := smallCity(t)
	bad := DefaultTaxiParams(1)
	bad.NumTaxis = 0
	if _, err := Taxis(city.City, bad); err == nil {
		t.Error("zero taxis accepted")
	}
	bad = DefaultTaxiParams(1)
	bad.ReportInterval = 0
	if _, err := Taxis(city.City, bad); err == nil {
		t.Error("zero interval accepted")
	}
	bad = DefaultTaxiParams(1)
	bad.SpeedMinMPS, bad.SpeedMaxMPS = 5, 1
	if _, err := Taxis(city.City, bad); err == nil {
		t.Error("inverted speeds accepted")
	}
}

func TestCheckinsBasics(t *testing.T) {
	city := smallCity(t)
	p := DefaultCheckinParams(5)
	p.NumUsers = 15
	p.CheckinsPerUser = 25
	trajs, err := Checkins(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) != 15 {
		t.Fatalf("got %d users", len(trajs))
	}
	for _, tr := range trajs {
		if len(tr.Points) != 25 {
			t.Fatalf("user %d has %d check-ins", tr.UserID, len(tr.Points))
		}
		for i := 1; i < len(tr.Points); i++ {
			if !tr.Points[i].T.After(tr.Points[i-1].T) {
				t.Fatalf("user %d timestamps not increasing", tr.UserID)
			}
		}
	}
}

func TestCheckinsPreferentialReturn(t *testing.T) {
	city := smallCity(t)
	p := DefaultCheckinParams(6)
	p.NumUsers = 10
	p.CheckinsPerUser = 60
	p.ReturnProb = 0.9
	trajs, err := Checkins(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	// With high return probability, users revisit a small set of areas:
	// most check-ins should be within 200 m of another check-in by the
	// same user.
	for _, tr := range trajs {
		near := 0
		for i, a := range tr.Points {
			for j, b := range tr.Points {
				if i != j && geo.Dist(a.Pos, b.Pos) < 200 {
					near++
					break
				}
			}
		}
		if frac := float64(near) / float64(len(tr.Points)); frac < 0.5 {
			t.Errorf("user %d: only %.2f of check-ins are revisits", tr.UserID, frac)
		}
	}
}

func TestCheckinsValidation(t *testing.T) {
	city := smallCity(t)
	bad := DefaultCheckinParams(1)
	bad.NumUsers = 0
	if _, err := Checkins(city.City, bad); err == nil {
		t.Error("zero users accepted")
	}
	bad = DefaultCheckinParams(1)
	bad.FavoritePOIs = 0
	if _, err := Checkins(city.City, bad); err == nil {
		t.Error("zero favorites accepted")
	}
}

func TestSampleLocations(t *testing.T) {
	city := smallCity(t)
	p := DefaultTaxiParams(7)
	p.NumTaxis = 5
	trajs, err := Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	locs := SampleLocations(trajs, 50, 1)
	if len(locs) != 50 {
		t.Fatalf("got %d locations", len(locs))
	}
	for _, l := range locs {
		if !city.Bounds.ContainsClosed(l) {
			t.Errorf("sampled location outside bounds: %v", l)
		}
	}
	if got := SampleLocations(nil, 10, 1); got != nil {
		t.Errorf("empty trajectories gave %v", got)
	}
}

func TestSegments(t *testing.T) {
	now := time.Date(2020, 1, 1, 12, 0, 0, 0, time.UTC)
	trajs := []Trajectory{{
		UserID: 1,
		Points: []TimedPoint{
			{Pos: geo.Point{X: 0, Y: 0}, T: now},
			{Pos: geo.Point{X: 500, Y: 0}, T: now.Add(5 * time.Minute)},
			{Pos: geo.Point{X: 500, Y: 5}, T: now.Add(6 * time.Minute)},   // < minMove
			{Pos: geo.Point{X: 2000, Y: 0}, T: now.Add(30 * time.Minute)}, // gap too long
			{Pos: geo.Point{X: 2500, Y: 0}, T: now.Add(32 * time.Minute)},
		},
	}}
	segs := Segments(trajs, 10*time.Minute, 50)
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if segs[0].Distance() != 500 {
		t.Errorf("segment 0 distance = %v", segs[0].Distance())
	}
	if segs[0].Duration() != 5*time.Minute {
		t.Errorf("segment 0 duration = %v", segs[0].Duration())
	}
}

func TestSegmentsFromTaxis(t *testing.T) {
	city := smallCity(t)
	p := DefaultTaxiParams(8)
	p.NumTaxis = 20
	trajs, err := Taxis(city.City, p)
	if err != nil {
		t.Fatal(err)
	}
	segs := Segments(trajs, 10*time.Minute, 100)
	if len(segs) == 0 {
		t.Fatal("no segments extracted from taxi traces")
	}
	for _, s := range segs {
		if s.Duration() <= 0 || s.Duration() > 10*time.Minute {
			t.Fatalf("bad duration %v", s.Duration())
		}
		if s.Distance() < 100 {
			t.Fatalf("segment below minMove: %v", s.Distance())
		}
	}
}
