package wire

import (
	"container/list"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poiagg/internal/obs"
)

// Admission metric names exported on the owning server's registry.
const (
	// MetricAdmissionInflight is the admitted weight currently executing.
	MetricAdmissionInflight = "admission.inflight"
	// MetricAdmissionQueued is the number of requests waiting for a slot.
	MetricAdmissionQueued = "admission.queued"
	// MetricAdmissionShed counts requests rejected with 503.
	MetricAdmissionShed = "admission.shed"
)

// AdmissionConfig bounds the concurrent work a server admits. A release
// burst from millions of users (the multi-release workload of the
// paper's trajectory attack) must degrade into fast, explicit 503s —
// never into an OOM or a tail-latency collapse of everything in flight.
type AdmissionConfig struct {
	// Limit is the weight allowed to execute concurrently. Plain
	// requests weigh 1; batch requests weigh their item count (clamped
	// to Limit so a single maximal batch can still be admitted).
	// Limit <= 0 disables admission control entirely.
	Limit int
	// Queue is how many requests may wait for a slot; arrivals beyond
	// it are shed immediately.
	Queue int
	// Timeout caps the queue wait. A request whose own deadline would
	// expire sooner waits only that long (deadline-aware shedding: a
	// reply after the caller gave up is pure waste). Timeout <= 0 means
	// no waiting — at capacity, shed on arrival.
	Timeout time.Duration
}

// AdmissionErrorResponse is the structured body of a 503 shed.
type AdmissionErrorResponse struct {
	Error string `json:"error"`
	// Reason is "queue_full", "timeout", or "deadline".
	Reason string `json:"reason"`
	// RetryAfterSeconds mirrors the Retry-After header.
	RetryAfterSeconds int `json:"retryAfterSeconds"`
}

// shedReason classifies why a request was not admitted.
type shedReason string

const (
	shedQueueFull shedReason = "queue_full"
	shedTimeout   shedReason = "timeout"
	shedDeadline  shedReason = "deadline"
)

// admitWaiter is one queued request. ready is closed (under the
// admission mutex) when the waiter's weight has been granted.
type admitWaiter struct {
	weight int64
	ready  chan struct{}
}

// admission is a weighted concurrency limiter with a bounded FIFO wait
// queue. Grants are strictly first-come-first-served: a small request
// never overtakes a queued batch, so heavy requests cannot be starved.
type admission struct {
	cfg AdmissionConfig

	mu      sync.Mutex
	cur     int64      // admitted weight
	waiters *list.List // of *admitWaiter, front = oldest

	queued   atomic.Int64
	inflight atomic.Int64
	shed     atomic.Uint64
}

func newAdmission(cfg AdmissionConfig) *admission {
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.Timeout < 0 {
		cfg.Timeout = 0
	}
	return &admission{cfg: cfg, waiters: list.New()}
}

// export publishes the admission gauges and shed counter into reg. The
// gauges are pulled at snapshot time so the admit path stays atomic-only.
func (a *admission) export(reg *obs.Registry) {
	reg.CounterFunc(MetricAdmissionInflight, func() uint64 { return uint64(a.inflight.Load()) })
	reg.CounterFunc(MetricAdmissionQueued, func() uint64 { return uint64(a.queued.Load()) })
	reg.CounterFunc(MetricAdmissionShed, a.shed.Load)
}

// clampWeight bounds a request's weight to [1, Limit] so one oversized
// batch can neither starve forever nor deadlock the semaphore.
func (a *admission) clampWeight(w int64) int64 {
	if w < 1 {
		w = 1
	}
	if lim := int64(a.cfg.Limit); w > lim {
		w = lim
	}
	return w
}

// acquire admits weight w (clamped) or reports why it was shed. The
// wait is bounded by min(cfg.Timeout, the request's own remaining
// deadline); a request that could only be admitted after its caller's
// deadline is shed rather than queued.
func (a *admission) acquire(r *http.Request, w int64) (shedReason, bool) {
	w = a.clampWeight(w)

	wait := a.cfg.Timeout
	deadlineBound := false
	if deadline, ok := r.Context().Deadline(); ok {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			a.shed.Add(1)
			return shedDeadline, false
		}
		if remaining < wait {
			wait = remaining
			deadlineBound = true
		}
	}

	a.mu.Lock()
	if a.waiters.Len() == 0 && a.cur+w <= int64(a.cfg.Limit) {
		a.cur += w
		a.mu.Unlock()
		a.inflight.Add(w)
		return "", true
	}
	if wait <= 0 || a.waiters.Len() >= a.cfg.Queue {
		a.mu.Unlock()
		a.shed.Add(1)
		if wait <= 0 {
			return shedTimeout, false
		}
		return shedQueueFull, false
	}
	wtr := &admitWaiter{weight: w, ready: make(chan struct{})}
	elem := a.waiters.PushBack(wtr)
	a.queued.Add(1)
	a.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-wtr.ready:
		a.queued.Add(-1)
		a.inflight.Add(w)
		return "", true
	case <-timer.C:
	case <-r.Context().Done():
	}

	// Timed out or the caller went away — but the grant may have raced
	// us. ready is only closed under a.mu, so a locked re-check decides.
	a.mu.Lock()
	select {
	case <-wtr.ready:
		a.mu.Unlock()
		a.queued.Add(-1)
		a.inflight.Add(w)
		return "", true
	default:
	}
	a.waiters.Remove(elem)
	a.mu.Unlock()
	a.queued.Add(-1)
	a.shed.Add(1)
	if deadlineBound || r.Context().Err() != nil {
		// The wait was cut short by the request's own deadline, not by
		// the server's queue policy.
		return shedDeadline, false
	}
	return shedTimeout, false
}

// release returns weight w (clamped identically to acquire) and grants
// queued waiters from the front while they fit.
func (a *admission) release(w int64) {
	w = a.clampWeight(w)
	a.inflight.Add(-w)
	a.mu.Lock()
	a.cur -= w
	for e := a.waiters.Front(); e != nil; e = a.waiters.Front() {
		wtr := e.Value.(*admitWaiter)
		if a.cur+wtr.weight > int64(a.cfg.Limit) {
			break
		}
		a.cur += wtr.weight
		a.waiters.Remove(e)
		close(wtr.ready)
	}
	a.mu.Unlock()
}

// retryAfterSeconds is the Retry-After hint on sheds: the configured
// queue timeout rounded up — by then the present wave has either
// finished or been shed itself — and at least 1, the header's floor.
func (a *admission) retryAfterSeconds() int {
	secs := int(math.Ceil(a.cfg.Timeout.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeShed emits the 503 shed response with Retry-After.
func (a *admission) writeShed(w http.ResponseWriter, reason shedReason) {
	retry := a.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusServiceUnavailable, AdmissionErrorResponse{
		Error:             "server overloaded, request shed (" + string(reason) + ")",
		Reason:            string(reason),
		RetryAfterSeconds: retry,
	})
}

// admitHTTP acquires weight for r, or writes the 503 shed response and
// reports false. On success the caller must invoke the returned release.
func (a *admission) admitHTTP(w http.ResponseWriter, r *http.Request, weight int64) (func(), bool) {
	reason, ok := a.acquire(r, weight)
	if !ok {
		a.writeShed(w, reason)
		return nil, false
	}
	return func() { a.release(weight) }, true
}

// middleware gates every request at weight 1, except paths in selfAdmit
// (batch endpoints, which acquire their item-count weight after
// decoding) and the pprof prefix (profiling during overload is exactly
// when an operator needs it). The operational endpoints /healthz,
// /readyz, and /v1/metrics never reach this handler — obs.Instrument
// answers them upstream — so probes and metric scrapes always bypass
// the limiter.
func (a *admission) middleware(next http.Handler, selfAdmit map[string]bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if selfAdmit[r.URL.Path] || strings.HasPrefix(r.URL.Path, PathPprof) {
			next.ServeHTTP(w, r)
			return
		}
		release, ok := a.admitHTTP(w, r, 1)
		if !ok {
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// ServerOption is an option shared by GSPServer, LBSServer, and the
// cluster gateway; it satisfies GSPServerOption, LBSServerOption, and
// ClusterOption, so one value configures any of the three identically.
type ServerOption struct {
	gsp     func(*GSPServer)
	lbs     func(*LBSServer)
	cluster func(*ClusterGateway)
}

func (o ServerOption) applyGSP(s *GSPServer) {
	if o.gsp != nil {
		o.gsp(s)
	}
}

func (o ServerOption) applyLBS(s *LBSServer) {
	if o.lbs != nil {
		o.lbs(s)
	}
}

func (o ServerOption) applyCluster(g *ClusterGateway) {
	if o.cluster != nil {
		o.cluster(g)
	}
}

// WithAdmission bounds concurrent work on a server (GSP or LBS): at
// most limit weight executes at once, up to queue requests wait FIFO
// for at most timeout (or their own deadline, whichever is sooner), and
// everything beyond that is shed with 503, a Retry-After header, and a
// structured AdmissionErrorResponse body. Batch requests count by item
// weight. The operational endpoints bypass the limiter. limit <= 0
// disables admission (the default).
func WithAdmission(limit, queue int, timeout time.Duration) ServerOption {
	cfg := AdmissionConfig{Limit: limit, Queue: queue, Timeout: timeout}
	return ServerOption{
		gsp:     func(s *GSPServer) { s.admitCfg = cfg },
		lbs:     func(s *LBSServer) { s.admitCfg = cfg },
		cluster: func(g *ClusterGateway) { g.admitCfg = cfg },
	}
}

// WithMaxBody caps the accepted POST request body in bytes on either
// server (default 1 MiB). Oversized bodies get 413 with a structured
// error before any decoding buffers attacker-sized payloads.
func WithMaxBody(n int64) ServerOption {
	return ServerOption{
		gsp: func(s *GSPServer) {
			if n > 0 {
				s.maxBody = n
			}
		},
		lbs: func(s *LBSServer) {
			if n > 0 {
				s.maxBody = n
			}
		},
		cluster: func(g *ClusterGateway) {
			if n > 0 {
				g.maxBody = n
			}
		},
	}
}

// DefaultMaxBody is the POST body cap unless WithMaxBody overrides it.
const DefaultMaxBody = 1 << 20
