package wire

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"poiagg/internal/obs"
	"poiagg/internal/poi"
)

func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// reqWithCtx builds a throwaway request carrying ctx, for driving the
// admission semaphore directly.
func reqWithCtx(ctx context.Context) *http.Request {
	return httptest.NewRequest(http.MethodGet, "/x", nil).WithContext(ctx)
}

// waitFor polls cond up to a second — used only to sequence goroutine
// enqueue order, never to assert timing.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionGrantsUpToLimit(t *testing.T) {
	a := newAdmission(AdmissionConfig{Limit: 3, Queue: 0, Timeout: 0})
	r := reqWithCtx(context.Background())
	for i := 0; i < 3; i++ {
		if reason, ok := a.acquire(r, 1); !ok {
			t.Fatalf("acquire %d shed: %s", i, reason)
		}
	}
	if reason, ok := a.acquire(r, 1); ok {
		t.Fatal("4th acquire admitted beyond limit 3")
	} else if reason != shedTimeout {
		t.Errorf("no-wait shed reason = %s", reason)
	}
	a.release(1)
	if _, ok := a.acquire(r, 1); !ok {
		t.Fatal("acquire after release shed")
	}
	if got := a.inflight.Load(); got != 3 {
		t.Errorf("inflight = %d, want 3", got)
	}
}

func TestAdmissionFIFOOrder(t *testing.T) {
	a := newAdmission(AdmissionConfig{Limit: 1, Queue: 8, Timeout: 5 * time.Second})
	r := reqWithCtx(context.Background())
	if _, ok := a.acquire(r, 1); !ok {
		t.Fatal("initial acquire shed")
	}

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, ok := a.acquire(r, 1); !ok {
				t.Errorf("waiter %d shed", i)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.release(1)
		}(i)
		// Enqueue order is the spawn order: wait until this waiter is
		// actually queued before spawning the next.
		waitFor(t, fmt.Sprintf("waiter %d queued", i), func() bool {
			return a.queued.Load() == int64(i+1)
		})
	}
	a.release(1) // grants cascade front-to-back as each waiter releases
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
	if a.queued.Load() != 0 || a.inflight.Load() != 0 {
		t.Errorf("gauges not drained: queued=%d inflight=%d", a.queued.Load(), a.inflight.Load())
	}
}

func TestAdmissionQueueOverflowShedsImmediately(t *testing.T) {
	a := newAdmission(AdmissionConfig{Limit: 1, Queue: 2, Timeout: 5 * time.Second})
	r := reqWithCtx(context.Background())
	if _, ok := a.acquire(r, 1); !ok {
		t.Fatal("initial acquire shed")
	}
	for i := 0; i < 2; i++ {
		go a.acquire(r, 1) // fills the queue
		waitFor(t, "queue fill", func() bool { return a.queued.Load() == int64(i+1) })
	}
	start := time.Now()
	reason, ok := a.acquire(r, 1)
	if ok {
		t.Fatal("overflow request admitted")
	}
	if reason != shedQueueFull {
		t.Errorf("reason = %s, want queue_full", reason)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("overflow shed took %v; must not wait", elapsed)
	}
	if a.shed.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", a.shed.Load())
	}
	a.release(1)
}

func TestAdmissionTimeoutSheds(t *testing.T) {
	a := newAdmission(AdmissionConfig{Limit: 1, Queue: 4, Timeout: 30 * time.Millisecond})
	r := reqWithCtx(context.Background())
	if _, ok := a.acquire(r, 1); !ok {
		t.Fatal("initial acquire shed")
	}
	start := time.Now()
	reason, ok := a.acquire(r, 1)
	if ok {
		t.Fatal("queued request admitted while the slot was held")
	}
	if reason != shedTimeout {
		t.Errorf("reason = %s, want timeout", reason)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("timeout shed after %v, want ~30ms", elapsed)
	}
	if a.queued.Load() != 0 {
		t.Errorf("queued gauge = %d after timeout", a.queued.Load())
	}
	a.release(1)
}

func TestAdmissionDeadlineAwareShedding(t *testing.T) {
	// The configured wait is 10s, but the request's own deadline is
	// 30ms away: the shed must come at the deadline, not the timeout.
	a := newAdmission(AdmissionConfig{Limit: 1, Queue: 4, Timeout: 10 * time.Second})
	bg := reqWithCtx(context.Background())
	if _, ok := a.acquire(bg, 1); !ok {
		t.Fatal("initial acquire shed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	reason, ok := a.acquire(reqWithCtx(ctx), 1)
	if ok {
		t.Fatal("admitted past a held slot")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline-bound wait lasted %v", elapsed)
	}
	if reason != shedDeadline {
		t.Errorf("reason = %s, want deadline", reason)
	}

	// An already-expired deadline sheds without queueing at all.
	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-expired.Done()
	if reason, ok := a.acquire(reqWithCtx(expired), 1); ok || reason != shedDeadline {
		t.Errorf("expired deadline: ok=%v reason=%s", ok, reason)
	}
	a.release(1)
}

func TestAdmissionWeightClamp(t *testing.T) {
	// A batch heavier than the whole limiter is clamped, not deadlocked.
	a := newAdmission(AdmissionConfig{Limit: 2, Queue: 0, Timeout: 0})
	r := reqWithCtx(context.Background())
	if _, ok := a.acquire(r, 10); !ok {
		t.Fatal("clamped batch shed")
	}
	if a.cur != 2 {
		t.Errorf("cur = %d, want clamped 2", a.cur)
	}
	if _, ok := a.acquire(r, 1); ok {
		t.Error("limiter had room while a clamped max-weight batch ran")
	}
	a.release(10)
	if a.cur != 0 || a.inflight.Load() != 0 {
		t.Errorf("release not symmetric: cur=%d inflight=%d", a.cur, a.inflight.Load())
	}
}

// blockingAuditor holds every audit until released, letting tests pin
// the server's single admitted slot.
type blockingAuditor struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingAuditor) Audit(poi.FreqVector, float64) (bool, int) {
	b.entered <- struct{}{}
	<-b.release
	return false, 0
}

// saturatedLBS builds an admission-limited (limit 1, no queue) LBS
// server whose one slot is pinned by an in-flight release, and returns
// the server plus a func that unblocks it.
func saturatedLBS(t *testing.T) (*httptest.Server, *LBSServer, func()) {
	t.Helper()
	city, svc := wireFixture(t)
	aud := &blockingAuditor{entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv := NewLBSServer(city.M(),
		WithAuditor(aud),
		WithAdmission(1, 0, 50*time.Millisecond))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	rel := ReleaseRequest{UserID: "pin", Freq: svc.Freq(city.RandomLocations(1, 90)[0], 900), R: 900}
	body, err := json.Marshal(rel)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		status, _ := getStatusAndBody(t, http.MethodPost, ts.URL+PathRelease, string(body))
		if status != http.StatusOK {
			t.Errorf("pinned release = %d, want 200", status)
		}
	}()
	<-aud.entered // the slot is now held inside the handler
	var once sync.Once
	unblock := func() {
		once.Do(func() { close(aud.release); <-done })
	}
	t.Cleanup(unblock)
	return ts, srv, unblock
}

func TestAdmissionShedsWith503AndRetryAfter(t *testing.T) {
	ts, _, _ := saturatedLBS(t)
	status, body := getStatusAndBody(t, http.MethodPost, ts.URL+PathRelease, `{"userId":"u"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503 (body %q)", status, body)
	}
	var shed AdmissionErrorResponse
	if err := json.Unmarshal(body, &shed); err != nil {
		t.Fatalf("shed body is not structured JSON: %q", body)
	}
	if shed.Error == "" || shed.Reason != string(shedQueueFull) {
		t.Errorf("shed body = %+v", shed)
	}
	if shed.RetryAfterSeconds < 1 {
		t.Errorf("retryAfterSeconds = %d, want >= 1", shed.RetryAfterSeconds)
	}
	// The header must match the body and parse as positive seconds.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+PathRelease, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After header = %q", resp.Header.Get("Retry-After"))
	}
}

func TestAdmissionOperationalEndpointsBypass(t *testing.T) {
	ts, srv, unblock := saturatedLBS(t)
	// With the only slot pinned, probes and scrapes still answer 200.
	for _, path := range []string{obs.PathHealthz, obs.PathReadyz} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d under saturation, want 200", path, resp.StatusCode)
		}
	}
	snap := fetchSnapshot(t, ts.URL)
	if got := snap.Counters[MetricAdmissionInflight]; got != 1 {
		t.Errorf("admission.inflight = %d, want 1", got)
	}

	// Drain: readyz flips to 503, healthz stays 200, traffic still flows.
	srv.Drain()
	resp, err := http.Get(ts.URL + obs.PathReadyz)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after Drain = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + obs.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after Drain = %d, want 200", resp.StatusCode)
	}

	unblock()
	snap = fetchSnapshot(t, ts.URL)
	if got := snap.Counters[MetricAdmissionInflight]; got != 0 {
		t.Errorf("admission.inflight = %d after quiesce", got)
	}
}

func TestAdmissionShedMetric(t *testing.T) {
	ts, _, _ := saturatedLBS(t)
	for i := 0; i < 3; i++ {
		status, _ := getStatusAndBody(t, http.MethodPost, ts.URL+PathRelease, `{"userId":"u"}`)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("shed %d = %d, want 503", i, status)
		}
	}
	snap := fetchSnapshot(t, ts.URL)
	if got := snap.Counters[MetricAdmissionShed]; got != 3 {
		t.Errorf("admission.shed = %d, want 3", got)
	}
	if got := snap.Counters[MetricAdmissionQueued]; got != 0 {
		t.Errorf("admission.queued = %d, want 0", got)
	}
}

func TestBatchCountsByItemWeight(t *testing.T) {
	_, svc := wireFixture(t)
	srv := NewGSPServer(svc, WithAdmission(4, 0, 0), WithLogger(discardLogger()))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A batch of 6 items against limit 4 is clamped and admitted.
	body := `{"items":[` +
		`{"x":100,"y":100,"r":500},{"x":200,"y":200,"r":500},{"x":300,"y":300,"r":500},` +
		`{"x":400,"y":400,"r":500},{"x":500,"y":500,"r":500},{"x":600,"y":600,"r":500}]}`
	status, raw := getStatusAndBody(t, http.MethodPost, ts.URL+PathFreqBatch, body)
	if status != http.StatusOK {
		t.Fatalf("clamped batch = %d (body %q)", status, raw)
	}
	var resp FreqBatchResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 6 {
		t.Fatalf("%d results, want 6", len(resp.Results))
	}

	// Direct semaphore check of the weighting: 3 items + 1 single fit in
	// limit 4; one more single sheds.
	a := srv.admit
	r := reqWithCtx(context.Background())
	if _, ok := a.acquire(r, 3); !ok {
		t.Fatal("3-item batch shed on an idle limiter")
	}
	if _, ok := a.acquire(r, 1); !ok {
		t.Fatal("single request shed with one slot free")
	}
	if _, ok := a.acquire(r, 1); ok {
		t.Fatal("admitted beyond limit: batch weight not counted")
	}
	a.release(1)
	a.release(3)
}
