package wire

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poiagg/internal/obs"
)

// Request signing closes the wire stack's identity hole: the budget
// ledger and admission layers key on a principal, and until now that
// principal was whatever the client asserted in an X-Principal header —
// any tenant could drain or evade any other tenant's (ε, δ) budget.
// With WithAuth every request carries an HMAC-SHA256 signature over a
// canonical string binding method, path, query, body, principal,
// timestamp, and nonce to a key only that principal holds; the servers
// verify in constant time, reject replays through a nonce cache bounded
// by a timestamp window, and hand the *verified* principal to the
// layers downstream. The client signs transparently when configured
// with WithSigningKey.

// HeaderAuth carries the request signature. Its value is
//
//	POIAGG1 principal=<p>,ts=<unix-seconds>,nonce=<hex>,sig=<hex>
//
// where sig is hex(HMAC-SHA256(key, canonical string)); see
// canonicalString for what is signed.
const HeaderAuth = "X-Auth"

// authScheme tags the signature format so it can evolve; anything else
// in the scheme position is rejected as malformed.
const authScheme = "POIAGG1"

// DefaultAuthWindow bounds how far a signed request's timestamp may lie
// from the server clock, in either direction. It also bounds how long a
// nonce must be remembered: past the window a replay fails the
// timestamp check before the cache is ever consulted.
const DefaultAuthWindow = 2 * time.Minute

// DefaultAuthNonceCap bounds the replay cache's resident entries.
const DefaultAuthNonceCap = 1 << 20

// MinKeyBytes is the smallest accepted signing key. HMAC-SHA256 keys
// below the hash's block size lose nothing structurally, but a short
// key invites brute force; 16 bytes is the floor, 32 the recommendation.
const MinKeyBytes = 16

// maxPrincipalLen bounds principal names (header and canonical-string
// hygiene; also keeps the keyring's memory per entry predictable).
const maxPrincipalLen = 128

// Nonce hex-length bounds: at least 8 hex chars (32 bits — enough to
// make accidental collisions within a window implausible for honest
// clients), at most 64 (a full SHA-256 worth; anything longer is bloat).
const (
	minNonceHex = 8
	maxNonceHex = 64
)

// Auth metric names exported on the owning server's registry.
const (
	// MetricAuthOK counts requests whose signature verified.
	MetricAuthOK = "auth.ok"
	// MetricAuthRejected counts requests rejected for any reason other
	// than a replayed nonce: missing/malformed signature, unknown
	// principal, bad signature, timestamp outside the window.
	MetricAuthRejected = "auth.rejected"
	// MetricAuthReplay counts correctly signed requests rejected because
	// their nonce was already spent.
	MetricAuthReplay = "auth.replay"
	// MetricAuthUnknownPrincipal counts the subset of auth.rejected whose
	// claimed principal has no registered key. The split lives ONLY here:
	// the 401 body reports bad_signature for unknown and wrong-key alike,
	// so an unauthenticated caller cannot enumerate which principals
	// exist, while operators still see key-provisioning problems.
	MetricAuthUnknownPrincipal = "auth.unknown_principal"
)

// AuthErrorResponse is the structured body of every 401 rejection, and
// of the budget admin endpoints' 403 when a verified tenant acts on
// another tenant's budget.
type AuthErrorResponse struct {
	Error string `json:"error"`
	// Reason is one of "missing_signature", "malformed_signature",
	// "bad_signature", "stale_timestamp", "replay" (401), or
	// "principal_mismatch" (403). An unknown principal reports
	// bad_signature, indistinguishable from a wrong key — the existence
	// of a principal is not disclosed to unauthenticated callers.
	Reason string `json:"reason"`
}

// authReason classifies why a request failed verification.
type authReason string

const (
	authMissing   authReason = "missing_signature"
	authMalformed authReason = "malformed_signature"
	// authUnknownPrincipal is internal-only (metrics): externally it is
	// reported as authBadSignature so 401 bodies are not a
	// principal-enumeration oracle.
	authUnknownPrincipal authReason = "unknown_principal"
	authBadSignature     authReason = "bad_signature"
	authStale            authReason = "stale_timestamp"
	authReplay           authReason = "replay"
	// authPrincipalMismatch is the 403 reason when a signature-verified
	// principal addresses a budget admin endpoint for a different tenant.
	authPrincipalMismatch authReason = "principal_mismatch"
)

// validPrincipal restricts principal names to a charset that cannot
// break the auth header's key=value,... grammar or the newline-joined
// canonical string: printable ASCII minus space, comma, equals.
func validPrincipal(p string) bool {
	if p == "" || len(p) > maxPrincipalLen {
		return false
	}
	for i := 0; i < len(p); i++ {
		c := p[i]
		if c <= ' ' || c > '~' || c == ',' || c == '=' {
			return false
		}
	}
	return true
}

// validNonce accepts lowercase-hex nonces within the length bounds.
func validNonce(n string) bool {
	if len(n) < minNonceHex || len(n) > maxNonceHex {
		return false
	}
	for i := 0; i < len(n); i++ {
		c := n[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Keyring is the server's in-memory key registry, keyed by principal.
// Safe for concurrent use; daemons populate it at startup from
// -auth-keys and hand it to WithAuth.
type Keyring struct {
	mu   sync.RWMutex
	keys map[string][]byte
}

// NewKeyring returns an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{keys: make(map[string][]byte)}
}

// Add registers a principal's signing key, replacing any previous key.
// The principal must satisfy the header charset (printable ASCII, no
// comma/equals/whitespace, ≤128 bytes) and the key must be at least
// MinKeyBytes long. The key is copied.
func (k *Keyring) Add(principal string, key []byte) error {
	if !validPrincipal(principal) {
		return fmt.Errorf("wire: invalid principal %q", principal)
	}
	if len(key) < MinKeyBytes {
		return fmt.Errorf("wire: key for %q is %d bytes, need at least %d",
			principal, len(key), MinKeyBytes)
	}
	k.mu.Lock()
	k.keys[principal] = bytes.Clone(key)
	k.mu.Unlock()
	return nil
}

// Len returns the number of registered principals.
func (k *Keyring) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.keys)
}

// lookup returns the principal's key, or nil.
func (k *Keyring) lookup(principal string) []byte {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.keys[principal]
}

// LoadKeyring parses a key-provisioning spec: either a comma-separated
// inline list "alice=<hexkey>,bob=<hexkey>", or "@/path/to/file" where
// the file holds one principal=hexkey pair per line (blank lines and
// #-comments ignored) — the form that keeps secrets out of `ps` output.
func LoadKeyring(spec string) (*Keyring, error) {
	kr := NewKeyring()
	var pairs []string
	if rest, ok := strings.CutPrefix(spec, "@"); ok {
		data, err := os.ReadFile(rest)
		if err != nil {
			return nil, fmt.Errorf("wire: read key file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			pairs = append(pairs, line)
		}
	} else {
		pairs = strings.Split(spec, ",")
	}
	for _, pair := range pairs {
		principal, key, err := ParseSigningKey(pair)
		if err != nil {
			return nil, err
		}
		if err := kr.Add(principal, key); err != nil {
			return nil, err
		}
	}
	if kr.Len() == 0 {
		return nil, errors.New("wire: key spec names no principals")
	}
	return kr, nil
}

// ParseSigningKey parses one "principal=hexkey" pair — the -auth-key
// client flag and each entry of a server key spec.
func ParseSigningKey(pair string) (string, []byte, error) {
	principal, hexKey, ok := strings.Cut(strings.TrimSpace(pair), "=")
	if !ok {
		return "", nil, fmt.Errorf("wire: key entry %q is not principal=hexkey", pair)
	}
	key, err := hex.DecodeString(hexKey)
	if err != nil {
		return "", nil, fmt.Errorf("wire: key for %q is not hex: %v", principal, err)
	}
	if !validPrincipal(principal) {
		return "", nil, fmt.Errorf("wire: invalid principal %q", principal)
	}
	if len(key) < MinKeyBytes {
		return "", nil, fmt.Errorf("wire: key for %q is %d bytes, need at least %d",
			principal, len(key), MinKeyBytes)
	}
	return principal, key, nil
}

// canonicalString is the exact byte sequence signed: newline-joined
// fields, none of which may contain a newline (the principal and nonce
// charsets forbid it; method and path come from the HTTP layer, which
// rejects control characters; the query is re-encoded and the body is
// hashed). The leading scheme tag means a future format change can
// never collide with this one.
//
//	POIAGG1 \n METHOD \n path \n canonical-query \n hex(sha256(body))
//	\n principal \n ts \n nonce
//
// The query is canonicalized by parse → url.Values.Encode (sorted keys,
// percent-encoding normalized) on both sides, so signer and verifier
// agree regardless of the order the client assembled parameters in.
func canonicalString(method, path, rawQuery string, bodySum [sha256.Size]byte, principal string, ts int64, nonce string) string {
	q, err := url.ParseQuery(rawQuery)
	canonQ := ""
	if err == nil {
		canonQ = q.Encode()
	} else {
		// An unparseable query still gets signed — as its raw form, so
		// any tampering is still detected.
		canonQ = rawQuery
	}
	return strings.Join([]string{
		authScheme,
		method,
		path,
		canonQ,
		hex.EncodeToString(bodySum[:]),
		principal,
		strconv.FormatInt(ts, 10),
		nonce,
	}, "\n")
}

// computeSig returns hex(HMAC-SHA256(key, canonical)).
func computeSig(key []byte, canonical string) string {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(canonical))
	return hex.EncodeToString(mac.Sum(nil))
}

// SignRequest computes the signature for req (with body as its payload;
// nil means empty) and sets the HeaderAuth header. Callers that want
// transparent signing use the client's WithSigningKey instead; this is
// the building block for tests and third-party clients.
func SignRequest(req *http.Request, body []byte, principal string, key []byte, ts time.Time, nonce string) error {
	if !validPrincipal(principal) {
		return fmt.Errorf("wire: invalid signing principal %q", principal)
	}
	if len(key) < MinKeyBytes {
		return fmt.Errorf("wire: signing key is %d bytes, need at least %d", len(key), MinKeyBytes)
	}
	if !validNonce(nonce) {
		return fmt.Errorf("wire: invalid nonce %q", nonce)
	}
	unix := ts.Unix()
	canonical := canonicalString(req.Method, req.URL.Path, req.URL.RawQuery,
		sha256.Sum256(body), principal, unix, nonce)
	req.Header.Set(HeaderAuth, fmt.Sprintf("%s principal=%s,ts=%d,nonce=%s,sig=%s",
		authScheme, principal, unix, nonce, computeSig(key, canonical)))
	return nil
}

// newNonce returns 16 random bytes as lowercase hex.
func newNonce() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable process state; the
		// stdlib itself panics in this situation (rand.Int).
		panic("wire: crypto/rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// authHeader is a parsed HeaderAuth value.
type authHeader struct {
	principal string
	ts        int64
	nonce     string
	sig       string
}

// parseAuthHeader parses and strictly validates a HeaderAuth value:
// exact scheme, exactly the four known fields once each, charset-checked
// principal and nonce, decimal timestamp, 64-hex-char signature.
// Anything else is malformed — a parser this small has no lenient mode
// for attackers to hide in.
func parseAuthHeader(v string) (authHeader, error) {
	rest, ok := strings.CutPrefix(v, authScheme+" ")
	if !ok {
		return authHeader{}, fmt.Errorf("scheme is not %s", authScheme)
	}
	var h authHeader
	var seen [4]bool
	for _, field := range strings.Split(rest, ",") {
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return authHeader{}, fmt.Errorf("field %q is not name=value", field)
		}
		switch name {
		case "principal":
			if seen[0] || !validPrincipal(val) {
				return authHeader{}, errors.New("bad principal field")
			}
			seen[0], h.principal = true, val
		case "ts":
			ts, err := strconv.ParseInt(val, 10, 64)
			if seen[1] || err != nil || ts <= 0 {
				return authHeader{}, errors.New("bad ts field")
			}
			seen[1], h.ts = true, ts
		case "nonce":
			if seen[2] || !validNonce(val) {
				return authHeader{}, errors.New("bad nonce field")
			}
			seen[2], h.nonce = true, val
		case "sig":
			if seen[3] || len(val) != 2*sha256.Size || !validNonce(val[:maxNonceHex]) {
				return authHeader{}, errors.New("bad sig field")
			}
			seen[3], h.sig = true, val
		default:
			return authHeader{}, fmt.Errorf("unknown field %q", name)
		}
	}
	if !(seen[0] && seen[1] && seen[2] && seen[3]) {
		return authHeader{}, errors.New("missing field")
	}
	return h, nil
}

// nonceEntry pairs a cache key with the instant it stops mattering.
type nonceEntry struct {
	key    string
	expiry time.Time
}

// nonceCache remembers spent (principal, nonce) pairs until their
// request's timestamp falls out of the verification window — after
// which a replay is rejected as stale before the cache is consulted, so
// forgetting the nonce then is safe. Expiry sweeping is amortized over
// inserts from the FIFO front (entries expire in near-arrival order
// because expiry = claimed ts + window and claimed ts is within ±window
// of arrival); past cap, the oldest entries are evicted early — a
// bounded-memory tradeoff that can only shorten, never extend, the
// replay horizon.
type nonceCache struct {
	mu   sync.Mutex
	seen map[string]time.Time // key → expiry
	fifo []nonceEntry
	cap  int
}

func newNonceCache(cap int) *nonceCache {
	if cap < 1 {
		cap = DefaultAuthNonceCap
	}
	return &nonceCache{seen: make(map[string]time.Time), cap: cap}
}

// insert records key until expiry and reports whether it was fresh;
// false means a live entry already existed — a replay.
func (c *nonceCache) insert(key string, now, expiry time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Sweep expired entries from the front; eviction order tracks
	// insertion order closely enough that this stays amortized O(1).
	for len(c.fifo) > 0 && !c.fifo[0].expiry.After(now) {
		if e, ok := c.seen[c.fifo[0].key]; ok && !e.After(now) {
			delete(c.seen, c.fifo[0].key)
		}
		c.fifo = c.fifo[1:]
	}
	if prev, ok := c.seen[key]; ok && prev.After(now) {
		return false
	}
	for len(c.seen) >= c.cap && len(c.fifo) > 0 {
		// Mirror the sweep's guard: a fifo slot owns its map entry only
		// while the expiries match. A stale duplicate left mid-queue by a
		// re-inserted key (expiries are not monotone in FIFO order, and
		// `now` itself can step backwards — wall clocks do) must not evict
		// the live entry and open that nonce to an in-window replay; skip
		// it and evict the next real owner instead.
		if e, ok := c.seen[c.fifo[0].key]; ok && (e.Equal(c.fifo[0].expiry) || !e.After(now)) {
			delete(c.seen, c.fifo[0].key)
		}
		c.fifo = c.fifo[1:]
	}
	c.seen[key] = expiry
	c.fifo = append(c.fifo, nonceEntry{key: key, expiry: expiry})
	return true
}

// len reports resident entries (tests).
func (c *nonceCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

// authenticator verifies signed requests for one server.
type authenticator struct {
	keys   *Keyring
	window time.Duration
	clock  func() time.Time
	nonces *nonceCache
	// dummyKey absorbs the HMAC computation for unknown principals so
	// the unknown-vs-wrong-key paths cost the same work.
	dummyKey []byte

	ok        atomic.Uint64
	rejected  atomic.Uint64
	replay    atomic.Uint64
	unknownPr atomic.Uint64
}

// AuthOption customizes WithAuth.
type AuthOption func(*authenticator)

// WithAuthWindow sets the timestamp validity window (default
// DefaultAuthWindow). A signed request whose ts differs from the server
// clock by more than the window — in either direction — is rejected.
func WithAuthWindow(d time.Duration) AuthOption {
	return func(a *authenticator) {
		if d > 0 {
			a.window = d
		}
	}
}

// WithAuthClock injects the verifier's time source (default time.Now) —
// the same deterministic-test pattern as budget.WithClock, so the
// stale-timestamp and replay-horizon tests never sleep.
func WithAuthClock(clock func() time.Time) AuthOption {
	return func(a *authenticator) {
		if clock != nil {
			a.clock = clock
		}
	}
}

// WithAuthNonceCap bounds the replay cache's resident entries (default
// DefaultAuthNonceCap). Past the cap the oldest entries are evicted
// early.
func WithAuthNonceCap(n int) AuthOption {
	return func(a *authenticator) {
		if n > 0 {
			a.nonces = newNonceCache(n)
		}
	}
}

func newAuthenticator(keys *Keyring, opts ...AuthOption) *authenticator {
	a := &authenticator{
		keys:     keys,
		window:   DefaultAuthWindow,
		clock:    time.Now,
		nonces:   newNonceCache(DefaultAuthNonceCap),
		dummyKey: []byte(newNonce() + newNonce()),
	}
	for _, opt := range opts {
		opt(a)
	}
	return a
}

// export publishes the auth counters into reg.
func (a *authenticator) export(reg *obs.Registry) {
	reg.CounterFunc(MetricAuthOK, a.ok.Load)
	reg.CounterFunc(MetricAuthRejected, a.rejected.Load)
	reg.CounterFunc(MetricAuthReplay, a.replay.Load)
	reg.CounterFunc(MetricAuthUnknownPrincipal, a.unknownPr.Load)
}

// verifyRequest checks r's signature over body and returns the verified
// principal, or a rejection reason with a human message. The signature
// is checked before the timestamp and nonce, so the stale and replay
// classifications are only ever reported for authentically signed
// requests — an attacker without the key learns nothing about the
// window or the cache from the reasons.
func (a *authenticator) verifyRequest(r *http.Request, body []byte) (string, authReason, string) {
	v := r.Header.Get(HeaderAuth)
	if v == "" {
		return "", authMissing, "request is not signed (" + HeaderAuth + " missing)"
	}
	h, err := parseAuthHeader(v)
	if err != nil {
		return "", authMalformed, "malformed " + HeaderAuth + " header: " + err.Error()
	}
	key := a.keys.lookup(h.principal)
	unknown := key == nil
	if unknown {
		key = a.dummyKey
	}
	canonical := canonicalString(r.Method, r.URL.Path, r.URL.RawQuery,
		sha256.Sum256(body), h.principal, h.ts, h.nonce)
	want, err := hex.DecodeString(computeSig(key, canonical))
	if err != nil {
		return "", authBadSignature, "internal signature encoding error"
	}
	got, err := hex.DecodeString(h.sig)
	// Constant-time comparison (crypto/subtle): a byte-wise early exit
	// would let an attacker grow a forgery one byte at a time.
	equal := err == nil && subtle.ConstantTimeCompare(got, want) == 1
	if unknown {
		// Same message as the wrong-key branch on purpose: the dummy-key
		// HMAC equalizes the timing, and the identical response equalizes
		// the content — no principal-enumeration oracle. The internal
		// reason only routes the metric split.
		return "", authUnknownPrincipal, "signature does not match request"
	}
	if !equal {
		return "", authBadSignature, "signature does not match request"
	}
	now := a.clock()
	ts := time.Unix(h.ts, 0)
	if d := now.Sub(ts); d > a.window || d < -a.window {
		return "", authStale, fmt.Sprintf("timestamp %d outside ±%v window", h.ts, a.window)
	}
	// The nonce is spent only after the signature verified — otherwise
	// an attacker could burn a victim's nonces with forged requests.
	if !a.nonces.insert(h.principal+"\n"+h.nonce, now, ts.Add(a.window)) {
		return "", authReplay, fmt.Sprintf("nonce %s already used", h.nonce)
	}
	return h.principal, "", ""
}

// principalCtxKey carries the verified principal in the request context.
type principalCtxKey struct{}

// VerifiedPrincipal returns the signature-verified principal of a
// request that passed a WithAuth middleware, and whether one exists.
// When auth is enabled this is the only identity the budget and
// admission layers may trust; the X-Principal header is advisory at
// best and hostile at worst.
func VerifiedPrincipal(ctx context.Context) (string, bool) {
	p, ok := ctx.Value(principalCtxKey{}).(string)
	return p, ok
}

// count records a rejection under the right metric.
func (a *authenticator) count(reason authReason) {
	switch reason {
	case authReplay:
		a.replay.Add(1)
	case authUnknownPrincipal:
		a.rejected.Add(1)
		a.unknownPr.Add(1)
	default:
		a.rejected.Add(1)
	}
}

// externalReason maps an internal rejection class to the one disclosed
// in the 401 body: unknown principals are reported as bad_signature so
// an unauthenticated probe cannot learn which principals are
// registered; every other class passes through unchanged.
func externalReason(reason authReason) authReason {
	if reason == authUnknownPrincipal {
		return authBadSignature
	}
	return reason
}

// writeReject emits the 401 with the structured reason.
func writeAuthReject(w http.ResponseWriter, reason authReason, msg string) {
	writeJSON(w, http.StatusUnauthorized, AuthErrorResponse{
		Error:  "unauthorized: " + msg,
		Reason: string(reason),
	})
}

// writeAuthForbidden emits the 403 for an authenticated-but-unauthorized
// request (valid signature, wrong tenant).
func writeAuthForbidden(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusForbidden, AuthErrorResponse{
		Error:  "forbidden: " + msg,
		Reason: string(authPrincipalMismatch),
	})
}

// middleware verifies every request before it reaches the admission
// gate or any handler: a forged request costs one HMAC and is gone —
// it never occupies an admission slot, never touches the budget ledger,
// and never reaches a handler. The request body is read (bounded by
// maxBody, surfacing the same 413 as the handlers) to hash it into the
// canonical string, then restored for the handler. The pprof prefix is
// exempt like it is from admission: -pprof is an explicit operator
// opt-in and profiling tools cannot sign. The operational endpoints
// never reach this handler — obs.Instrument answers them upstream.
func (a *authenticator) middleware(next http.Handler, maxBody int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, PathPprof) {
			next.ServeHTTP(w, r)
			return
		}
		var body []byte
		if r.Body != nil {
			var err error
			body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
			if err != nil {
				if isMaxBytes(err) {
					writeError(w, http.StatusRequestEntityTooLarge,
						fmt.Sprintf("request body exceeds %d bytes", maxBody))
					return
				}
				writeError(w, http.StatusBadRequest, "unreadable request body")
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		principal, reason, msg := a.verifyRequest(r, body)
		if reason != "" {
			a.count(reason)
			writeAuthReject(w, externalReason(reason), msg)
			return
		}
		a.ok.Add(1)
		next.ServeHTTP(w, r.WithContext(
			context.WithValue(r.Context(), principalCtxKey{}, principal)))
	})
}

// WithAuth requires a valid request signature on every API route of a
// server (GSP or LBS): clients sign with WithSigningKey, the server
// verifies against the keyring in constant time, rejects forgeries and
// tampering with 401 + a structured AuthErrorResponse, rejects
// timestamps outside the window and replayed nonces, and passes the
// verified principal downstream (VerifiedPrincipal) — when auth is on,
// the budget ledger charges only that identity and the X-Principal
// fallback chain is disabled. Operational endpoints (/healthz, /readyz,
// /v1/metrics) and the opt-in pprof prefix stay unsigned. A nil or
// empty keyring disables auth (the default), leaving every flow
// byte-identical to an unauthenticated server.
func WithAuth(kr *Keyring, opts ...AuthOption) ServerOption {
	return ServerOption{
		gsp:     func(s *GSPServer) { s.authKeys, s.authOpts = kr, opts },
		lbs:     func(s *LBSServer) { s.authKeys, s.authOpts = kr, opts },
		cluster: func(g *ClusterGateway) { g.authKeys, g.authOpts = kr, opts },
	}
}

// newServerAuth builds the authenticator for a server, or nil when auth
// is disabled.
func newServerAuth(kr *Keyring, opts []AuthOption) *authenticator {
	if kr == nil || kr.Len() == 0 {
		return nil
	}
	return newAuthenticator(kr, opts...)
}
