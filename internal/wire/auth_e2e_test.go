package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/obs"
)

// TestAuthSpoofedPrincipalCannotTouchOtherTenant is the regression test
// for the X-Principal trust hole: with auth enabled, the budget ledger
// charges ONLY the signature-verified identity. A tenant asserting
// someone else's name — in the header, in the query parameter, or in
// the release body's userId — still spends its own budget, and an
// unsigned request asserting a name cannot reset anyone's accounting.
func TestAuthSpoofedPrincipalCannotTouchOtherTenant(t *testing.T) {
	led, err := budget.New(budget.Policy{LifetimeEps: 100})
	if err != nil {
		t.Fatal(err)
	}
	kr := mustKeyring(t, "alice", "mallory")
	ts, _ := newLBSTestServer(t, WithAuth(kr), WithBudget(led, 0.5, 0))
	ctx := context.Background()

	// Mallory signs as mallory but asserts alice everywhere the
	// unauthenticated fallback chain used to look.
	mallory := NewLBSClient(ts.URL, ts.Client(),
		WithSigningKey("mallory", testKey('B')), WithPrincipal("alice"))
	rel := testRelease(t, "alice") // even the body's userId says alice
	if _, err := mallory.Release(ctx, rel); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(rel)
	status, respBody := signedProbe(t, ts.URL, http.MethodPost,
		PathRelease+"?principal=alice", body,
		"mallory", testKey('B'), time.Now(), "5b00f001", func(r *http.Request) {
			r.Header.Set(HeaderPrincipal, "alice")
		})
	if status != http.StatusOK {
		t.Fatalf("spoofing release = %d: %s", status, respBody)
	}

	if st := led.Status("mallory"); st.Releases != 2 {
		t.Errorf("mallory charged %d releases, want 2 (the spoofs charged her)", st.Releases)
	}
	if st := led.Status("alice"); st.Releases != 0 || st.SpentEps != 0 {
		t.Errorf("alice's budget touched by a spoofed header: %+v", st)
	}

	// Spend some of alice's budget, then try to reset it with an
	// unsigned admin call asserting her name: 401, accounting intact.
	alice := NewLBSClient(ts.URL, ts.Client(), WithSigningKey("alice", testKey('A')))
	if _, err := alice.Release(ctx, testRelease(t, "alice")); err != nil {
		t.Fatal(err)
	}
	status, respBody = signedProbe(t, ts.URL, http.MethodPost,
		PathBudget+"/alice/reset", nil, "", nil, time.Now(), "",
		func(r *http.Request) { r.Header.Set(HeaderPrincipal, "alice") })
	assertAuthReject(t, "unsigned reset", status, respBody, authMissing)
	if st := led.Status("alice"); st.Releases != 1 {
		t.Errorf("unsigned reset changed alice's accounting: %+v", st)
	}
}

// TestAuthRejectedRequestsLeaveNoTrace extends the deny-leaves-no-trace
// invariant to the auth layer: a barrage of forged, tampered, replayed,
// and stale requests must leave the budget ledger's dumped state
// byte-identical and the release history empty — a rejected request
// never reaches the ledger or the store.
func TestAuthRejectedRequestsLeaveNoTrace(t *testing.T) {
	led, err := budget.New(budget.Policy{LifetimeEps: 100})
	if err != nil {
		t.Fatal(err)
	}
	clk := newBudgetClock()
	kr := mustKeyring(t, "alice")
	ts, _ := newLBSTestServer(t,
		WithAuth(kr, WithAuthClock(clk.Now)), WithBudget(led, 0.5, 0))
	rel := testRelease(t, "alice")
	body, _ := json.Marshal(rel)
	now := clk.Now()

	// Seed one legitimate release so the dump is non-trivial.
	status, _ := signedProbe(t, ts.URL, http.MethodPost, PathRelease, body,
		"alice", testKey('A'), now, "5eed0001", nil)
	if status != http.StatusOK {
		t.Fatalf("seed release = %d", status)
	}
	before, err := led.DumpState()
	if err != nil {
		t.Fatal(err)
	}

	// The barrage: every auth rejection class against the spend path.
	barrage := []func() (int, []byte){
		func() (int, []byte) { // unsigned
			return signedProbe(t, ts.URL, http.MethodPost, PathRelease, body, "", nil, now, "", nil)
		},
		func() (int, []byte) { // wrong key
			return signedProbe(t, ts.URL, http.MethodPost, PathRelease, body,
				"alice", testKey('Z'), now, "bad00001", nil)
		},
		func() (int, []byte) { // unknown principal
			return signedProbe(t, ts.URL, http.MethodPost, PathRelease, body,
				"eve", testKey('E'), now, "bad00002", nil)
		},
		func() (int, []byte) { // replayed nonce (5eed0001 was spent by the seed)
			return signedProbe(t, ts.URL, http.MethodPost, PathRelease, body,
				"alice", testKey('A'), now, "5eed0001", nil)
		},
		func() (int, []byte) { // stale timestamp
			return signedProbe(t, ts.URL, http.MethodPost, PathRelease, body,
				"alice", testKey('A'), now.Add(-DefaultAuthWindow-time.Minute), "bad00003", nil)
		},
		func() (int, []byte) { // tampered body
			return signedProbe(t, ts.URL, http.MethodPost, PathRelease, body,
				"alice", testKey('A'), now, "bad00004", func(r *http.Request) {
					tampered := bytes.Replace(body, []byte(`"userId"`), []byte(`"userID"`), 1)
					r.Body = nil
					r2, err := http.NewRequest(r.Method, r.URL.String(), bytes.NewReader(tampered))
					if err != nil {
						t.Fatal(err)
					}
					r2.Header = r.Header
					*r = *r2
				})
		},
	}
	for i, attack := range barrage {
		if status, b := attack(); status != http.StatusUnauthorized {
			t.Errorf("barrage %d: status %d, want 401 (%s)", i, status, b)
		}
	}

	after, err := led.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("rejected requests left a ledger trace:\n before %s\n after  %s", before, after)
	}
	if st := led.Status("alice"); st.Releases != 1 {
		t.Errorf("alice's accounting moved: %+v", st)
	}
	// History holds the seed release only.
	status, hist := signedProbe(t, ts.URL, http.MethodGet, PathReleases+"?user=alice", nil,
		"alice", testKey('A'), now, "5eed0002", nil)
	if status != http.StatusOK {
		t.Fatalf("history fetch = %d", status)
	}
	var hr ReleasesResponse
	if err := json.Unmarshal(hist, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Releases) != 1 {
		t.Errorf("history has %d releases, want 1", len(hr.Releases))
	}

	snap := fetchSnapshot(t, ts.URL)
	if got := snap.Counters[MetricAuthRejected]; got != uint64(len(barrage)-1) {
		t.Errorf("%s = %d, want %d", MetricAuthRejected, got, len(barrage)-1)
	}
	if got := snap.Counters[MetricAuthReplay]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricAuthReplay, got)
	}
}

// TestAuthAdmissionBudgetStacked runs all three protection layers on one
// server and proves each failure mode keeps its own status code,
// structured reason, and metric: 401 for forgeries (never occupying an
// admission slot), 503 for sheds, 429 for budget exhaustion.
func TestAuthAdmissionBudgetStacked(t *testing.T) {
	led, err := budget.New(budget.Policy{LifetimeEps: 1}) // 2 releases at 0.5
	if err != nil {
		t.Fatal(err)
	}
	city, svc := wireFixture(t)
	kr := mustKeyring(t, "alice")
	reg := obs.NewRegistry()
	led.ExportMetrics(reg)
	aud := &blockingAuditor{entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv := NewLBSServer(city.M(),
		WithLBSMetrics(reg),
		WithAuth(kr),
		WithAdmission(1, 0, 50*time.Millisecond),
		WithBudget(led, 0.5, 0),
		WithAuditor(aud))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewLBSClient(ts.URL, ts.Client(), WithSigningKey("alice", testKey('A')))
	ctx := context.Background()
	rel := ReleaseRequest{UserID: "alice", Freq: svc.Freq(city.RandomLocations(1, 91)[0], 900), R: 900}

	// Pin the single admission slot with a signed in-flight release.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := client.Release(ctx, rel); err != nil {
			t.Errorf("pinned release: %v", err)
		}
	}()
	<-aud.entered

	// Saturated: a signed request is shed with 503 + structured reason...
	_, err = client.Release(ctx, rel)
	var overloaded *OverloadedError
	if !errors.As(err, &overloaded) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated signed release = %v, want OverloadedError", err)
	}
	// ...while a forged request is rejected 401 WITHOUT occupying the
	// admission machinery — auth sits outside the gate.
	forged := NewLBSClient(ts.URL, ts.Client(), WithSigningKey("alice", testKey('Z')))
	_, err = forged.Release(ctx, rel)
	var unauth *UnauthorizedError
	if !errors.As(err, &unauth) || unauth.Reason != string(authBadSignature) {
		t.Fatalf("forged release under saturation = %v, want UnauthorizedError(bad_signature)", err)
	}

	close(aud.release)
	wg.Wait()

	// Budget: one more release fits (2 × 0.5 = 1.0), the third is 429.
	if _, err := client.Release(ctx, rel); err != nil {
		t.Fatal(err)
	}
	_, err = client.Release(ctx, rel)
	var denied *BudgetDeniedError
	if !errors.As(err, &denied) || denied.State == nil || denied.State.Denial != string(budget.DenyLifetime) {
		t.Fatalf("exhausted release = %v, want BudgetDeniedError(lifetime)", err)
	}

	// Three layers, three disjoint failure signals.
	snap := fetchSnapshot(t, ts.URL)
	for metric, want := range map[string]uint64{
		MetricAuthRejected:  1,
		MetricAdmissionShed: 1,
		budget.MetricDenies: 1,
		budget.MetricSpends: 2,
		MetricAuthReplay:    0,
	} {
		if got := snap.Counters[metric]; got != want {
			t.Errorf("%s = %d, want %d", metric, got, want)
		}
	}
	// The shed and the denial were both signed OK; only the forgery was
	// not. 4 verified = pin + shed + 2 budget attempts... plus metrics
	// scrape is unsigned/exempt, so auth.ok counts exactly the API calls.
	if got := snap.Counters[MetricAuthOK]; got != 4 {
		t.Errorf("%s = %d, want 4", MetricAuthOK, got)
	}
}

// TestLBSClientNeverRetries401 mirrors the 429 classification test: a
// 401 is terminal — no key will appear within a backoff window, and
// retrying a forgery only burns attempts — so exactly one attempt, no
// retry counter movement.
func TestLBSClientNeverRetries401(t *testing.T) {
	reg := obs.NewRegistry()
	ts, _ := newLBSTestServer(t, WithAuth(mustKeyring(t, "alice")))
	ft := &faultTransport{base: http.DefaultTransport}
	tt := &trackingTransport{base: ft}
	hc := &http.Client{Transport: tt}
	// No signing key configured: the server's real 401 is the fault.
	client := NewLBSClient(ts.URL, hc,
		WithRetries(3), fastBackoff(), WithClientMetrics(reg))
	t.Cleanup(func() {
		if n := tt.open.Load(); n != 0 {
			t.Errorf("%d response bodies leaked", n)
		}
		hc.CloseIdleConnections()
	})

	_, err := client.Release(context.Background(), testRelease(t, "alice"))
	if !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("want ErrUnauthorized, got %v", err)
	}
	var unauth *UnauthorizedError
	if !errors.As(err, &unauth) || unauth.Reason != string(authMissing) {
		t.Fatalf("typed 401 reason missing: %v", err)
	}
	if got := ft.callCount(); got != 1 {
		t.Errorf("401 was retried: %d attempts, want 1", got)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 0 {
		t.Errorf("retry counter = %d, want 0", got)
	}
	if got := reg.Counter(MetricClientFailures).Value(); got != 1 {
		t.Errorf("failure counter = %d, want 1", got)
	}
}

// TestGSPClientNeverRetries401 covers the same classification through
// the fault proxy on the GSP path (the classifier is in the shared
// clientCore; act401 synthesizes the server's structured 401).
func TestGSPClientNeverRetries401(t *testing.T) {
	reg := obs.NewRegistry()
	client, ft, _ := faultyGSPClient(t, []faultAction{act401, actOK}, 0,
		WithRetries(3), fastBackoff(), WithClientMetrics(reg))

	_, err := client.Stats(context.Background())
	if !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("want ErrUnauthorized, got %v", err)
	}
	var unauth *UnauthorizedError
	if !errors.As(err, &unauth) || unauth.Reason != "bad_signature" {
		t.Fatalf("typed 401 reason = %v", err)
	}
	if got := ft.callCount(); got != 1 {
		t.Errorf("401 was retried: %d attempts, want 1", got)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 0 {
		t.Errorf("retry counter = %d, want 0", got)
	}
}
