package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Fuzz targets for the auth parsing/canonicalization path. The corpus
// seeds come from the unit tests (the valid round-trip header plus the
// malformed corpus), so `go test` exercises every seed even without
// -fuzz; CI additionally runs a short -fuzz smoke (make fuzz-smoke).

// FuzzCanonicalString checks the canonical string's structural
// invariants for arbitrary inputs: construction never panics, is
// deterministic, and — whenever the charset-validated fields are
// themselves valid — every signed field survives in its exact position,
// so no input can shift another field's meaning (the canonicalization
// injection an attacker would need to forge cross-field collisions).
func FuzzCanonicalString(f *testing.F) {
	f.Add("GET", "/v1/freq", "x=1&y=2&r=300", []byte(nil), "alice", int64(1_760_000_000), "00ff00ff")
	f.Add("POST", "/v1/release", "", []byte(`{"userId":"alice"}`), "tenant-7", int64(1), "feedfacecafebeef")
	f.Add("GET", "/v1/freq", "r=300&y=2&x=1", []byte{}, "alice", int64(1), "00ff00ff")
	f.Add("PUT", "/a\nb", "q=%0A", []byte{0}, "p\nq", int64(-5), "NOT HEX")
	f.Add("", "", "", []byte(nil), "", int64(0), "")
	f.Add("GET", "/v1/query", "a=1&a=2&b==&=c", []byte("x"), "a", int64(1<<62), strings.Repeat("f", 64))

	f.Fuzz(func(t *testing.T, method, path, rawQuery string, body []byte, principal string, ts int64, nonce string) {
		sum := sha256.Sum256(body)
		got := canonicalString(method, path, rawQuery, sum, principal, ts, nonce)
		if again := canonicalString(method, path, rawQuery, sum, principal, ts, nonce); again != got {
			t.Fatal("canonicalString is not deterministic")
		}
		if !strings.HasPrefix(got, authScheme+"\n") {
			t.Fatalf("canonical string does not lead with the scheme: %q", got)
		}
		// The trailing fields are fixed-position: body hash, principal,
		// ts, nonce. When principal and nonce satisfy their charsets
		// (which forbid newlines — enforced before signing), they cannot
		// bleed into neighboring fields.
		if validPrincipal(principal) && validNonce(nonce) &&
			!strings.Contains(method, "\n") && !strings.Contains(path, "\n") {
			wantSuffix := strings.Join([]string{
				hex.EncodeToString(sum[:]), principal, strconv.FormatInt(ts, 10), nonce,
			}, "\n")
			if !strings.HasSuffix(got, "\n"+wantSuffix) {
				t.Fatalf("signed fields not at fixed positions:\n%q", got)
			}
			// The query canonicalizes through url.Values.Encode, which
			// percent-encodes control bytes, so the field count is exact.
			if q, err := url.ParseQuery(rawQuery); err == nil {
				want := strings.Join([]string{authScheme, method, path, q.Encode(), wantSuffix}, "\n")
				if got != want {
					t.Fatalf("canonical string diverged:\n got %q\nwant %q", got, want)
				}
			}
		}
	})
}

// FuzzVerifyRequest throws arbitrary auth headers (and request shapes)
// at the verifier: it must never panic, and — the soundness property —
// any request it ACCEPTS must carry a signature that independently
// recomputes from the registered key over the request's exact bytes.
// Acceptance of anything else is a forgery.
func FuzzVerifyRequest(f *testing.F) {
	// A genuinely valid header for the fuzz keyring, so the corpus
	// starts with an accepting input whose neighborhood gets explored.
	validReq := &http.Request{
		Method: http.MethodGet,
		URL:    &url.URL{Path: "/v1/freq", RawQuery: "x=1&y=2&r=300"},
		Header: http.Header{},
	}
	if err := SignRequest(validReq, nil, "alice", testKey('A'),
		time.Unix(1_760_000_000, 0), "00ff00ff"); err != nil {
		f.Fatal(err)
	}
	f.Add(validReq.Header.Get(HeaderAuth), "GET", "/v1/freq", "x=1&y=2&r=300", []byte(nil))
	for _, h := range malformedAuthHeaders {
		f.Add(h, "GET", "/v1/freq", "x=1&y=2&r=300", []byte(nil))
		f.Add(h, "POST", "/v1/release", "", []byte(`{"userId":"alice"}`))
	}

	f.Fuzz(func(t *testing.T, header, method, path, rawQuery string, body []byte) {
		a := newAuthenticator(mustKeyring(t, "alice"),
			WithAuthClock(func() time.Time { return time.Unix(1_760_000_000, 30) }))
		req := &http.Request{
			Method: method,
			URL:    &url.URL{Path: path, RawQuery: rawQuery},
			Header: http.Header{HeaderAuth: []string{header}},
		}
		principal, reason, _ := a.verifyRequest(req, body)
		if reason != "" {
			return
		}
		// Accepted: prove it deserved to be. The header must parse, name
		// the registered principal, sit inside the window, and its sig
		// must equal an independent HMAC over the request's exact bytes.
		h, err := parseAuthHeader(header)
		if err != nil {
			t.Fatalf("accepted an unparseable header %q", header)
		}
		if h.principal != "alice" || principal != "alice" {
			t.Fatalf("accepted principal %q/%q, only alice is registered", h.principal, principal)
		}
		if d := time.Unix(1_760_000_000, 30).Sub(time.Unix(h.ts, 0)); d > DefaultAuthWindow || d < -DefaultAuthWindow {
			t.Fatalf("accepted ts %d outside the window", h.ts)
		}
		want := computeSig(testKey('A'), canonicalString(
			method, path, rawQuery, sha256.Sum256(body), h.principal, h.ts, h.nonce))
		if h.sig != want {
			t.Fatalf("accepted signature %q, independent recompute %q", h.sig, want)
		}
	})
}
