package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/obs"
)

// This file is the adversarial suite for the request-signing layer:
// every way an attacker can present a request that is not exactly what
// a key holder signed — forged, tampered, replayed, stale, spoofed —
// must come back 401 with a structured reason, increment auth.rejected
// or auth.replay, and reach no handler. The playbook mirrors the
// security checklists for HTTP signature schemes: signature validation,
// auth bypass on every route, replay, header injection, timestamp
// manipulation.

// signedProbe builds a request against baseURL, signs it as principal
// with key at time at, applies mutate (tampering AFTER signing — the
// attack surface), sends it, and returns the status and body.
func signedProbe(t *testing.T, baseURL, method, pathQuery string, body []byte,
	principal string, key []byte, at time.Time, nonce string,
	mutate func(*http.Request)) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, baseURL+pathQuery, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if principal != "" {
		if err := SignRequest(req, body, principal, key, at, nonce); err != nil {
			t.Fatal(err)
		}
	}
	if mutate != nil {
		mutate(req)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// assertAuthReject checks a 401 with the expected structured reason.
func assertAuthReject(t *testing.T, name string, status int, body []byte, wantReason authReason) {
	t.Helper()
	if status != http.StatusUnauthorized {
		t.Errorf("%s: status %d, want 401 (body %s)", name, status, body)
		return
	}
	var e AuthErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Errorf("%s: 401 body is not JSON: %q", name, body)
		return
	}
	if e.Reason != string(wantReason) {
		t.Errorf("%s: reason %q, want %q", name, e.Reason, wantReason)
	}
	if e.Error == "" {
		t.Errorf("%s: empty error message", name)
	}
}

func TestAuthForgedAndTamperedRequestsRejected(t *testing.T) {
	clk := newBudgetClock()
	ts, _ := newGSPTestServer(t,
		WithAuth(mustKeyring(t, "alice", "bob"), WithAuthClock(clk.Now)))
	now := clk.Now()
	aliceKey, bobKey := testKey('A'), testKey('B')
	freq := PathFreq + "?x=1&y=2&r=300"
	nonceN := 0
	nonce := func() string {
		nonceN++
		return fmt.Sprintf("feed%08x", nonceN)
	}

	// The control: a correctly signed request succeeds.
	if status, body := signedProbe(t, ts.URL, http.MethodGet, freq, nil,
		"alice", aliceKey, now, nonce(), nil); status != http.StatusOK {
		t.Fatalf("control signed request = %d: %s", status, body)
	}

	cases := []struct {
		name   string
		reason authReason
		run    func() (int, []byte)
	}{
		{"unsigned request", authMissing, func() (int, []byte) {
			return signedProbe(t, ts.URL, http.MethodGet, freq, nil, "", nil, now, "", nil)
		}},
		{"garbage header", authMalformed, func() (int, []byte) {
			return signedProbe(t, ts.URL, http.MethodGet, freq, nil, "", nil, now, "",
				func(r *http.Request) { r.Header.Set(HeaderAuth, "Bearer hunter2") })
		}},
		{"forged signature", authBadSignature, func() (int, []byte) {
			return signedProbe(t, ts.URL, http.MethodGet, freq, nil,
				"alice", aliceKey, now, nonce(), func(r *http.Request) {
					v := r.Header.Get(HeaderAuth)
					r.Header.Set(HeaderAuth, v[:len(v)-64]+strings.Repeat("0", 64))
				})
		}},
		{"wrong key", authBadSignature, func() (int, []byte) {
			// Bob's key signing a claim to be alice.
			return signedProbe(t, ts.URL, http.MethodGet, freq, nil,
				"alice", bobKey, now, nonce(), nil)
		}},
		{"unknown principal", authBadSignature, func() (int, []byte) {
			// Externally indistinguishable from a wrong key — the
			// split exists only in the auth.unknown_principal metric
			// (see TestAuthNoPrincipalEnumerationOracle).
			return signedProbe(t, ts.URL, http.MethodGet, freq, nil,
				"mallory", testKey('M'), now, nonce(), nil)
		}},
		{"tampered query", authBadSignature, func() (int, []byte) {
			return signedProbe(t, ts.URL, http.MethodGet, freq, nil,
				"alice", aliceKey, now, nonce(), func(r *http.Request) {
					r.URL.RawQuery = "x=1&y=2&r=9000"
				})
		}},
		{"tampered path", authBadSignature, func() (int, []byte) {
			return signedProbe(t, ts.URL, http.MethodGet, freq, nil,
				"alice", aliceKey, now, nonce(), func(r *http.Request) {
					r.URL.Path = PathQuery
				})
		}},
		{"tampered method", authBadSignature, func() (int, []byte) {
			return signedProbe(t, ts.URL, http.MethodGet, freq, nil,
				"alice", aliceKey, now, nonce(), func(r *http.Request) {
					r.Method = http.MethodPost
				})
		}},
		{"principal swapped after signing", authBadSignature, func() (int, []byte) {
			// Re-label alice's valid signature as bob's: the principal is
			// inside the canonical string, so the signature no longer
			// verifies under bob's key.
			return signedProbe(t, ts.URL, http.MethodGet, freq, nil,
				"alice", aliceKey, now, nonce(), func(r *http.Request) {
					r.Header.Set(HeaderAuth, strings.Replace(
						r.Header.Get(HeaderAuth), "principal=alice", "principal=bob", 1))
				})
		}},
	}
	for _, tc := range cases {
		status, body := tc.run()
		assertAuthReject(t, tc.name, status, body, tc.reason)
	}

	snap := fetchSnapshot(t, ts.URL)
	if got := snap.Counters[MetricAuthRejected]; got != uint64(len(cases)) {
		t.Errorf("%s = %d, want %d", MetricAuthRejected, got, len(cases))
	}
	if got := snap.Counters[MetricAuthOK]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricAuthOK, got)
	}
	if got := snap.Counters[MetricAuthReplay]; got != 0 {
		t.Errorf("%s = %d, want 0", MetricAuthReplay, got)
	}
	if got := snap.Counters[MetricAuthUnknownPrincipal]; got != 1 {
		t.Errorf("%s = %d, want 1 (the mallory probe)", MetricAuthUnknownPrincipal, got)
	}
}

// TestAuthNoPrincipalEnumerationOracle proves the 401 surface leaks
// nothing about which principals are registered: a wrong-key request
// for an existing principal and a request for a nonexistent principal
// come back with byte-identical bodies (the dummy-key HMAC already
// equalizes the work/timing). The distinction survives only in the
// server-side auth.unknown_principal counter.
func TestAuthNoPrincipalEnumerationOracle(t *testing.T) {
	clk := newBudgetClock()
	ts, _ := newGSPTestServer(t,
		WithAuth(mustKeyring(t, "alice"), WithAuthClock(clk.Now)))
	now := clk.Now()
	freq := PathFreq + "?x=1&y=2&r=300"

	wrongKeyStatus, wrongKeyBody := signedProbe(t, ts.URL, http.MethodGet, freq, nil,
		"alice", testKey('Z'), now, "0bace1e0", nil)
	unknownStatus, unknownBody := signedProbe(t, ts.URL, http.MethodGet, freq, nil,
		"mallory", testKey('Z'), now, "0bace1e0", nil)

	if wrongKeyStatus != http.StatusUnauthorized || unknownStatus != http.StatusUnauthorized {
		t.Fatalf("statuses = %d, %d, want 401, 401", wrongKeyStatus, unknownStatus)
	}
	if !bytes.Equal(wrongKeyBody, unknownBody) {
		t.Errorf("401 bodies differ — principal-enumeration oracle:\n registered: %s\n unknown:    %s",
			wrongKeyBody, unknownBody)
	}
	assertAuthReject(t, "registered principal, wrong key", wrongKeyStatus, wrongKeyBody, authBadSignature)
	assertAuthReject(t, "unknown principal", unknownStatus, unknownBody, authBadSignature)

	snap := fetchSnapshot(t, ts.URL)
	if got := snap.Counters[MetricAuthUnknownPrincipal]; got != 1 {
		t.Errorf("%s = %d, want 1", MetricAuthUnknownPrincipal, got)
	}
	if got := snap.Counters[MetricAuthRejected]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricAuthRejected, got)
	}
}

func TestAuthTamperedBodyRejected(t *testing.T) {
	clk := newBudgetClock()
	ts, _ := newLBSTestServer(t,
		WithAuth(mustKeyring(t, "alice"), WithAuthClock(clk.Now)))
	body, _ := json.Marshal(testRelease(t, "alice"))

	// Control: the signed body goes through.
	status, respBody := signedProbe(t, ts.URL, http.MethodPost, PathRelease, body,
		"alice", testKey('A'), clk.Now(), "0d15ea5e", nil)
	if status != http.StatusOK {
		t.Fatalf("control release = %d: %s", status, respBody)
	}

	// Swap in a different (still valid) body after signing: the body
	// hash in the canonical string catches it.
	other, _ := json.Marshal(testRelease(t, "eve"))
	status, respBody = signedProbe(t, ts.URL, http.MethodPost, PathRelease, body,
		"alice", testKey('A'), clk.Now(), "0d15ea5f", func(r *http.Request) {
			r.Body = nil
			r2, err := http.NewRequest(r.Method, r.URL.String(), bytes.NewReader(other))
			if err != nil {
				t.Fatal(err)
			}
			r2.Header = r.Header
			*r = *r2
		})
	assertAuthReject(t, "tampered body", status, respBody, authBadSignature)

	// The tampered release left no history trace for either user.
	for _, user := range []string{"alice", "eve"} {
		status, hist := signedProbe(t, ts.URL, http.MethodGet, PathReleases+"?user="+user, nil,
			"alice", testKey('A'), clk.Now(), "0d15ea60"+string(rune('a'+len(user)%26)), nil)
		if status != http.StatusOK {
			t.Fatalf("history fetch = %d", status)
		}
		var hr ReleasesResponse
		if err := json.Unmarshal(hist, &hr); err != nil {
			t.Fatal(err)
		}
		want := 0
		if user == "alice" {
			want = 1 // the control release only
		}
		if len(hr.Releases) != want {
			t.Errorf("%s history has %d releases, want %d", user, len(hr.Releases), want)
		}
	}
}

func TestAuthReplayRejected(t *testing.T) {
	clk := newBudgetClock()
	ts, _ := newGSPTestServer(t,
		WithAuth(mustKeyring(t, "alice"), WithAuthClock(clk.Now)))
	freq := PathFreq + "?x=1&y=2&r=300"

	// Capture one signed request and send it twice, byte-identical —
	// the classic capture-and-replay.
	req, err := http.NewRequest(http.MethodGet, ts.URL+freq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := SignRequest(req, nil, "alice", testKey('A'), clk.Now(), "ca11ab1e"); err != nil {
		t.Fatal(err)
	}
	send := func() (int, []byte) {
		t.Helper()
		r2 := req.Clone(context.Background())
		resp, err := http.DefaultClient.Do(r2)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}
	if status, body := send(); status != http.StatusOK {
		t.Fatalf("first send = %d: %s", status, body)
	}
	status, body := send()
	assertAuthReject(t, "replay", status, body, authReplay)
	// Still replayed a minute later, inside the window.
	clk.Advance(time.Minute)
	status, body = send()
	assertAuthReject(t, "replay after 1m", status, body, authReplay)

	snap := fetchSnapshot(t, ts.URL)
	if got := snap.Counters[MetricAuthReplay]; got != 2 {
		t.Errorf("%s = %d, want 2", MetricAuthReplay, got)
	}
	if got := snap.Counters[MetricAuthRejected]; got != 0 {
		t.Errorf("%s = %d, want 0 (replays have their own counter)", MetricAuthRejected, got)
	}
}

func TestAuthTimestampWindowBothDirections(t *testing.T) {
	clk := newBudgetClock()
	window := 2 * time.Minute
	ts, _ := newGSPTestServer(t, WithAuth(mustKeyring(t, "alice"),
		WithAuthClock(clk.Now), WithAuthWindow(window)))
	now := clk.Now()
	freq := PathFreq + "?x=1&y=2&r=300"

	cases := []struct {
		name   string
		at     time.Time
		nonce  string
		wantOK bool
	}{
		{"1s old", now.Add(-time.Second), "aaaa0001", true},
		{"just inside past edge", now.Add(-window + time.Second), "aaaa0002", true},
		{"past the window (old capture)", now.Add(-window - time.Second), "aaaa0003", false},
		{"far future (clock fabrication)", now.Add(window + time.Second), "aaaa0004", false},
		{"just inside future edge (skew)", now.Add(window - time.Second), "aaaa0005", true},
		{"days old", now.Add(-48 * time.Hour), "aaaa0006", false},
	}
	for _, tc := range cases {
		status, body := signedProbe(t, ts.URL, http.MethodGet, freq, nil,
			"alice", testKey('A'), tc.at, tc.nonce, nil)
		if tc.wantOK {
			if status != http.StatusOK {
				t.Errorf("%s: status %d, want 200: %s", tc.name, status, body)
			}
		} else {
			assertAuthReject(t, tc.name, status, body, authStale)
		}
	}
}

func TestAuthBypassProbesEveryRoute(t *testing.T) {
	// Every registered API route on both servers must demand a
	// signature; an attacker probing for a forgotten endpoint finds
	// none. The operational endpoints stay open — probes and metric
	// scrapes cannot sign.
	clk := newBudgetClock()
	kr := mustKeyring(t, "alice")

	gspTS, _ := newGSPTestServer(t, WithAuth(kr, WithAuthClock(clk.Now)))
	led, err := budget.New(budget.Policy{LifetimeEps: 100})
	if err != nil {
		t.Fatal(err)
	}
	lbsTS, _ := newLBSTestServer(t,
		WithAuth(kr, WithAuthClock(clk.Now)), WithBudget(led, 0.5, 0))

	relBody, _ := json.Marshal(testRelease(t, "alice"))
	batchBody, _ := json.Marshal(BatchRequest{Items: []BatchItem{{R: 300}}})
	probes := []struct {
		base, method, path string
		body               []byte
	}{
		{gspTS.URL, http.MethodGet, PathStats, nil},
		{gspTS.URL, http.MethodGet, PathQuery + "?x=1&y=2&r=300", nil},
		{gspTS.URL, http.MethodGet, PathFreq + "?x=1&y=2&r=300", nil},
		{gspTS.URL, http.MethodGet, PathPOIs, nil},
		{gspTS.URL, http.MethodPost, PathFreqBatch, batchBody},
		{gspTS.URL, http.MethodPost, PathQueryBatch, batchBody},
		{lbsTS.URL, http.MethodPost, PathRelease, relBody},
		{lbsTS.URL, http.MethodGet, PathReleases + "?user=alice", nil},
		{lbsTS.URL, http.MethodGet, PathBudget + "/alice", nil},
		{lbsTS.URL, http.MethodPost, PathBudget + "/alice/reset", nil},
		// Unregistered paths 401 too: the middleware sits outside the mux,
		// so route discovery via 404-vs-401 oracle is not possible.
		{gspTS.URL, http.MethodGet, "/v1/secret", nil},
	}
	for _, p := range probes {
		status, body := signedProbe(t, p.base, p.method, p.path, p.body, "", nil, clk.Now(), "", nil)
		assertAuthReject(t, p.method+" "+p.path, status, body, authMissing)
	}

	// An unsigned admin reset must leave the ledger untouched.
	if st := led.Status("alice"); st.Releases != 0 || st.SpentEps != 0 {
		t.Errorf("unsigned probes touched the ledger: %+v", st)
	}

	// Authentication is not authorization: a *registered* tenant signing
	// another tenant's budget admin paths verifies (the signature covers
	// the path, after all) but must be refused — see
	// TestAuthBudgetAdminCrossTenantForbidden for the full matrix.

	// Ops endpoints answer unsigned.
	for _, base := range []string{gspTS.URL, lbsTS.URL} {
		for _, path := range []string{obs.PathHealthz, obs.PathReadyz, obs.PathMetrics} {
			resp, err := http.Get(base + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("unsigned GET %s = %d, want 200", path, resp.StatusCode)
			}
		}
	}
}

// TestAuthBudgetAdminCrossTenantForbidden is the authorization matrix
// for the budget admin endpoints: a valid signature names WHO is
// calling, not WHAT they may touch. Tenant mallory signing
// GET/POST /v1/budget/alice[/reset] verifies — the path is inside the
// canonical string — but must come back 403 with a structured
// principal_mismatch reason and leave alice's (ε, δ) accounting
// byte-exact, while each tenant keeps full self-service on its own
// budget.
func TestAuthBudgetAdminCrossTenantForbidden(t *testing.T) {
	led, err := budget.New(budget.Policy{LifetimeEps: 100})
	if err != nil {
		t.Fatal(err)
	}
	clk := newBudgetClock()
	kr := mustKeyring(t, "alice", "mallory") // keys 'A' and 'B'
	ts, _ := newLBSTestServer(t,
		WithAuth(kr, WithAuthClock(clk.Now)), WithBudget(led, 0.5, 0))
	now := clk.Now()

	// Alice spends once, so a successful cross-tenant reset would be
	// visible as Releases dropping back to zero.
	relBody, _ := json.Marshal(testRelease(t, "alice"))
	if status, body := signedProbe(t, ts.URL, http.MethodPost, PathRelease, relBody,
		"alice", testKey('A'), now, "a11ce001", nil); status != http.StatusOK {
		t.Fatalf("alice's release = %d: %s", status, body)
	}

	crossProbes := []struct {
		name, method, path string
	}{
		{"cross-tenant status", http.MethodGet, PathBudget + "/alice"},
		{"cross-tenant reset", http.MethodPost, PathBudget + "/alice/reset"},
	}
	for i, p := range crossProbes {
		status, body := signedProbe(t, ts.URL, p.method, p.path, nil,
			"mallory", testKey('B'), now, fmt.Sprintf("ba4ba4%02x", i), nil)
		if status != http.StatusForbidden {
			t.Errorf("%s: status %d, want 403 (body %s)", p.name, status, body)
			continue
		}
		var e AuthErrorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Errorf("%s: 403 body is not JSON: %q", p.name, body)
			continue
		}
		if e.Reason != string(authPrincipalMismatch) {
			t.Errorf("%s: reason %q, want %q", p.name, e.Reason, authPrincipalMismatch)
		}
	}
	if st := led.Status("alice"); st.Releases != 1 {
		t.Errorf("mallory's cross-tenant calls moved alice's accounting: %+v", st)
	}

	// Self-service stays intact: mallory reads her own budget, alice
	// resets her own.
	if status, body := signedProbe(t, ts.URL, http.MethodGet, PathBudget+"/mallory", nil,
		"mallory", testKey('B'), now, "5e1f0001", nil); status != http.StatusOK {
		t.Errorf("mallory's own status = %d: %s", status, body)
	}
	if status, body := signedProbe(t, ts.URL, http.MethodPost, PathBudget+"/alice/reset", nil,
		"alice", testKey('A'), now, "5e1f0002", nil); status != http.StatusOK {
		t.Errorf("alice's own reset = %d: %s", status, body)
	}
	if st := led.Status("alice"); st.Releases != 0 {
		t.Errorf("alice's own reset did not take: %+v", st)
	}
}

func TestAuthSignedClientEndToEnd(t *testing.T) {
	// The transparent signing path: a WithSigningKey client works across
	// every endpoint of both servers (real clock — the client stamps
	// time.Now, so the server must verify real timestamps), while an
	// unsigned client gets typed ErrUnauthorized everywhere.
	kr := mustKeyring(t, "alice")
	city, _ := wireFixture(t)
	gspTS, _ := newGSPTestServer(t, WithAuth(kr))
	lbsTS, _ := newLBSTestServer(t, WithAuth(kr))
	signed := []ClientOption{WithSigningKey("alice", testKey('A'))}
	gsp := NewGSPClient(gspTS.URL, gspTS.Client(), signed...)
	lbs := NewLBSClient(lbsTS.URL, lbsTS.Client(), signed...)
	ctx := context.Background()

	if _, err := gsp.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	l := city.RandomLocations(1, 41)[0]
	if _, err := gsp.Freq(ctx, l, 700); err != nil {
		t.Fatal(err)
	}
	if _, err := gsp.Query(ctx, l, 700); err != nil {
		t.Fatal(err)
	}
	if _, err := gsp.FreqBatch(ctx, []BatchItem{{X: l.X, Y: l.Y, R: 700}}); err != nil {
		t.Fatal(err)
	}
	if _, err := lbs.Release(ctx, testRelease(t, "alice")); err != nil {
		t.Fatal(err)
	}
	if _, err := lbs.Releases(ctx, "alice"); err != nil {
		t.Fatal(err)
	}

	// Validation errors still surface as 400, not 401: a signed request
	// is authenticated first, then validated.
	if _, err := gsp.Freq(ctx, l, -1); !errors.Is(err, ErrBadRequest) {
		t.Errorf("signed invalid request: %v, want ErrBadRequest", err)
	}

	unsignedGSP := NewGSPClient(gspTS.URL, gspTS.Client())
	_, err := unsignedGSP.Stats(ctx)
	if !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unsigned client error = %v, want ErrUnauthorized", err)
	}
	var unauth *UnauthorizedError
	if !errors.As(err, &unauth) || unauth.Reason != string(authMissing) {
		t.Fatalf("typed 401 missing reason: %v", err)
	}

	// A client holding the wrong key is rejected too (and the typed
	// error says why).
	wrongKey := NewLBSClient(lbsTS.URL, lbsTS.Client(), WithSigningKey("alice", testKey('Z')))
	_, err = wrongKey.Release(ctx, testRelease(t, "alice"))
	if !errors.As(err, &unauth) || unauth.Reason != string(authBadSignature) {
		t.Fatalf("wrong-key client error = %v, want bad_signature", err)
	}
}

func TestAuthRetriesAreNotSelfReplays(t *testing.T) {
	// The client signs per attempt with a fresh nonce; a retry after an
	// injected transport fault must not be rejected by the server's
	// replay cache as a reuse of the first attempt's nonce.
	ts, _ := newGSPTestServer(t, WithAuth(mustKeyring(t, "alice")))
	ft := &faultTransport{base: http.DefaultTransport, script: []faultAction{actDrop}}
	hc := &http.Client{Transport: ft}
	t.Cleanup(hc.CloseIdleConnections)
	client := NewGSPClient(ts.URL, hc,
		WithRetries(2), fastBackoff(), WithSigningKey("alice", testKey('A')))

	if _, err := client.Stats(context.Background()); err != nil {
		t.Fatalf("retry after fault failed against auth server: %v", err)
	}
	if got := ft.callCount(); got != 2 {
		t.Errorf("made %d attempts, want 2", got)
	}
}
