package wire

import (
	"bytes"
	"crypto/sha256"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testKey returns a deterministic 32-byte key filled with b.
func testKey(b byte) []byte {
	k := make([]byte, 32)
	for i := range k {
		k[i] = b
	}
	return k
}

func mustKeyring(t testing.TB, principals ...string) *Keyring {
	t.Helper()
	kr := NewKeyring()
	for i, p := range principals {
		if err := kr.Add(p, testKey(byte('A'+i))); err != nil {
			t.Fatal(err)
		}
	}
	return kr
}

func TestKeyringValidation(t *testing.T) {
	kr := NewKeyring()
	cases := []struct {
		name      string
		principal string
		key       []byte
	}{
		{"empty principal", "", testKey(1)},
		{"principal with space", "a b", testKey(1)},
		{"principal with comma", "a,b", testKey(1)},
		{"principal with equals", "a=b", testKey(1)},
		{"principal with newline", "a\nb", testKey(1)},
		{"principal with high byte", "a\x80b", testKey(1)},
		{"overlong principal", strings.Repeat("p", maxPrincipalLen+1), testKey(1)},
		{"short key", "alice", make([]byte, MinKeyBytes-1)},
		{"empty key", "alice", nil},
	}
	for _, tc := range cases {
		if err := kr.Add(tc.principal, tc.key); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if kr.Len() != 0 {
		t.Errorf("invalid entries registered: %d", kr.Len())
	}
	if err := kr.Add("alice", testKey(1)); err != nil {
		t.Fatal(err)
	}
	// The keyring copies keys: mutating the caller's slice must not
	// change what the server verifies against.
	k := testKey(2)
	if err := kr.Add("bob", k); err != nil {
		t.Fatal(err)
	}
	k[0] = 0xFF
	if got := kr.lookup("bob"); got[0] != 2 {
		t.Error("keyring aliased the caller's key slice")
	}
	if kr.lookup("nobody") != nil {
		t.Error("unknown principal has a key")
	}
}

func TestLoadKeyringInlineAndFile(t *testing.T) {
	hexA := strings.Repeat("41", 32) // 32 bytes of 'A'
	hexB := strings.Repeat("42", 32)

	kr, err := LoadKeyring("alice=" + hexA + ",bob=" + hexB)
	if err != nil {
		t.Fatal(err)
	}
	if kr.Len() != 2 || kr.lookup("alice") == nil || kr.lookup("bob") == nil {
		t.Fatalf("inline spec loaded %d principals", kr.Len())
	}
	if !bytes.Equal(kr.lookup("alice"), testKey('A')) {
		t.Error("alice's key decoded wrong")
	}

	path := filepath.Join(t.TempDir(), "keys")
	content := "# comment\n\nalice=" + hexA + "\n  bob=" + hexB + "  \n"
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	kr, err = LoadKeyring("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if kr.Len() != 2 {
		t.Fatalf("file spec loaded %d principals", kr.Len())
	}

	for _, bad := range []string{
		"",                      // empty
		"alice",                 // no =
		"alice=nothex",          // bad hex
		"alice=abcd",            // short key
		"a b=" + hexA,           // bad principal
		"@" + path + ".missing", // unreadable file
	} {
		if _, err := LoadKeyring(bad); err == nil {
			t.Errorf("LoadKeyring(%q) accepted", bad)
		}
	}
}

func TestParseAuthHeaderRoundTrip(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/v1/freq?x=1&y=2&r=300", nil)
	ts := time.Unix(1_760_000_000, 0)
	if err := SignRequest(req, nil, "alice", testKey('A'), ts, "00ff00ff"); err != nil {
		t.Fatal(err)
	}
	h, err := parseAuthHeader(req.Header.Get(HeaderAuth))
	if err != nil {
		t.Fatal(err)
	}
	if h.principal != "alice" || h.ts != ts.Unix() || h.nonce != "00ff00ff" || len(h.sig) != 64 {
		t.Fatalf("parsed header = %+v", h)
	}
}

// malformedAuthHeaders is the malformed corpus shared with the fuzz
// seeds: every entry must be rejected by the strict parser.
var malformedAuthHeaders = []string{
	"",
	"POIAGG1",
	"POIAGG1 ",
	"Bearer abc",
	"POIAGG2 principal=a,ts=1,nonce=00ff00ff,sig=" + strings.Repeat("0", 64),
	"POIAGG1 principal=a,ts=1,nonce=00ff00ff",                                            // missing sig
	"POIAGG1 ts=1,nonce=00ff00ff,sig=" + strings.Repeat("0", 64),                         // missing principal
	"POIAGG1 principal=a,principal=b,ts=1,nonce=00ff00ff,sig=" + strings.Repeat("0", 64), // dup field
	"POIAGG1 principal=a,ts=1,nonce=00ff00ff,sig=" + strings.Repeat("0", 63),             // short sig
	"POIAGG1 principal=a,ts=1,nonce=00ff00ff,sig=" + strings.Repeat("0", 65),             // long sig
	"POIAGG1 principal=a,ts=1,nonce=00ff00ff,sig=" + strings.Repeat("G", 64),             // non-hex sig
	"POIAGG1 principal=a,ts=1,nonce=00ff00f,sig=" + strings.Repeat("0", 64),              // short nonce
	"POIAGG1 principal=a,ts=1,nonce=" + strings.Repeat("f", 65) + ",sig=" + strings.Repeat("0", 64),
	"POIAGG1 principal=a,ts=1,nonce=00FF00FF,sig=" + strings.Repeat("0", 64), // uppercase nonce
	"POIAGG1 principal=a,ts=abc,nonce=00ff00ff,sig=" + strings.Repeat("0", 64),
	"POIAGG1 principal=a,ts=-5,nonce=00ff00ff,sig=" + strings.Repeat("0", 64),
	"POIAGG1 principal=a,ts=0,nonce=00ff00ff,sig=" + strings.Repeat("0", 64),
	"POIAGG1 principal=a,ts=99999999999999999999,nonce=00ff00ff,sig=" + strings.Repeat("0", 64),
	"POIAGG1 principal=a b,ts=1,nonce=00ff00ff,sig=" + strings.Repeat("0", 64),
	"POIAGG1 principal=,ts=1,nonce=00ff00ff,sig=" + strings.Repeat("0", 64),
	"POIAGG1 principal=a,ts=1,nonce=00ff00ff,sig=" + strings.Repeat("0", 64) + ",extra=1",
	"POIAGG1 principal=a,ts=1,nonce=00ff00ff,sig",
	"POIAGG1 ,,,",
}

func TestParseAuthHeaderRejectsMalformed(t *testing.T) {
	for _, v := range malformedAuthHeaders {
		if _, err := parseAuthHeader(v); err == nil {
			t.Errorf("parseAuthHeader(%q) accepted", v)
		}
	}
}

func TestCanonicalStringQueryOrderInvariant(t *testing.T) {
	// The signer and verifier may see the same logical query in different
	// parameter orders (clients assemble url.Values, proxies may not
	// preserve order); canonicalization makes the signature agree.
	sum := sha256.Sum256(nil)
	a := canonicalString("GET", "/v1/freq", "x=1&y=2&r=300", sum, "alice", 1, "00ff00ff")
	b := canonicalString("GET", "/v1/freq", "r=300&y=2&x=1", sum, "alice", 1, "00ff00ff")
	if a != b {
		t.Errorf("query order changed the canonical string:\n%q\n%q", a, b)
	}
	// But different values must differ.
	c := canonicalString("GET", "/v1/freq", "x=1&y=2&r=301", sum, "alice", 1, "00ff00ff")
	if a == c {
		t.Error("different query canonicalized identically")
	}
	// Exactly 8 newline-separated fields, scheme first.
	if fields := strings.Split(a, "\n"); len(fields) != 8 || fields[0] != authScheme {
		t.Errorf("canonical string shape: %q", a)
	}
}

func TestNonceCacheReplayAndExpiry(t *testing.T) {
	c := newNonceCache(0)
	t0 := time.Unix(1000, 0)
	if !c.insert("alice\naaaa", t0, t0.Add(time.Minute)) {
		t.Fatal("fresh nonce rejected")
	}
	if c.insert("alice\naaaa", t0, t0.Add(time.Minute)) {
		t.Fatal("replay accepted")
	}
	// A different principal's identical nonce is a different key.
	if !c.insert("bob\naaaa", t0, t0.Add(time.Minute)) {
		t.Fatal("other principal's nonce rejected")
	}
	// Past expiry the nonce may be forgotten (the window check rejects
	// such a request before the cache is consulted).
	if !c.insert("alice\naaaa", t0.Add(2*time.Minute), t0.Add(3*time.Minute)) {
		t.Fatal("expired nonce still held")
	}
}

func TestNonceCacheBoundedByCap(t *testing.T) {
	c := newNonceCache(4)
	t0 := time.Unix(1000, 0)
	exp := t0.Add(time.Hour)
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		if !c.insert(k, t0, exp) {
			t.Fatalf("fresh nonce %q rejected", k)
		}
	}
	if got := c.len(); got > 4 {
		t.Fatalf("cache holds %d entries past cap 4", got)
	}
	// The newest entries survive; the oldest were evicted (which only
	// shortens the replay horizon, never extends it).
	if c.insert("f", t0, exp) {
		t.Error("newest entry evicted before oldest")
	}
}

func TestNonceCacheCapEvictionSparesReinsertedLiveEntry(t *testing.T) {
	// A re-inserted key leaves its old, expired fifo slot behind, so
	// expiries are not monotone in FIFO order. Under cap pressure the
	// eviction loop must not let such a stale duplicate delete the key's
	// LIVE map entry — that would forget a spent nonce mid-window and
	// admit a replay. The front sweep already guards this; the eviction
	// loop must mirror it. `now` stepping backwards between calls is how
	// a duplicate gets past the sweep: wall clocks do step (NTP), and the
	// verifier's clock is injectable.
	c := newNonceCache(3)
	t0 := time.Unix(1000, 0)
	t1 := t0.Add(2 * time.Second)
	long := 10 * time.Minute

	c.insert("b", t0, t0.Add(long))
	c.insert("a", t0, t0.Add(time.Second)) // expired by t1
	c.insert("c", t0, t0.Add(long))
	// Re-insert "a" live at t1; its expired slot stays queued mid-fifo
	// (the cap eviction this triggers takes "b", the true oldest).
	if !c.insert("a", t1, t1.Add(long)) {
		t.Fatal("expired nonce could not be re-inserted")
	}
	// The clock steps back to t0: the stale "a" slot now looks live to
	// the front sweep, and the next cap evictions walk straight into it.
	c.insert("d", t0, t0.Add(long))
	c.insert("e", t0, t0.Add(long))
	// The live "a" entry (held until t1+10m) must still be remembered:
	// replaying its nonce inside the window has to fail.
	if c.insert("a", t1, t1.Add(long)) {
		t.Error("cap eviction dropped a live nonce via its stale duplicate — replay admitted")
	}
}

func TestAuthenticatorVerifySignRoundTrip(t *testing.T) {
	clk := newBudgetClock()
	a := newAuthenticator(mustKeyring(t, "alice"), WithAuthClock(clk.Now))
	body := []byte(`{"userId":"alice"}`)

	sign := func(nonce string) *http.Request {
		req := httptest.NewRequest(http.MethodPost, "/v1/release?principal=x", bytes.NewReader(body))
		if err := SignRequest(req, body, "alice", testKey('A'), clk.Now(), nonce); err != nil {
			t.Fatal(err)
		}
		return req
	}

	if p, reason, msg := a.verifyRequest(sign("aaaa1111"), body); reason != "" || p != "alice" {
		t.Fatalf("valid request rejected: %s (%s)", reason, msg)
	}
	// Same nonce again: replay.
	if _, reason, _ := a.verifyRequest(sign("aaaa1111"), body); reason != authReplay {
		t.Fatalf("replayed nonce classified %q, want %q", reason, authReplay)
	}
	// Fresh nonce: fine.
	if _, reason, _ := a.verifyRequest(sign("aaaa2222"), body); reason != "" {
		t.Fatalf("fresh nonce rejected: %s", reason)
	}
	// A request signed now but presented after the window expired.
	late := sign("aaaa3333")
	clk.Advance(DefaultAuthWindow + time.Second)
	if _, reason, _ := a.verifyRequest(late, body); reason != authStale {
		t.Fatalf("expired request classified %q, want %q", reason, authStale)
	}
}

func TestSignRequestValidatesInputs(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	if err := SignRequest(req, nil, "a b", testKey(1), time.Unix(1, 0), "00ff00ff"); err == nil {
		t.Error("bad principal signed")
	}
	if err := SignRequest(req, nil, "alice", []byte("short"), time.Unix(1, 0), "00ff00ff"); err == nil {
		t.Error("short key signed")
	}
	if err := SignRequest(req, nil, "alice", testKey(1), time.Unix(1, 0), "UPPER!"); err == nil {
		t.Error("bad nonce signed")
	}
}
