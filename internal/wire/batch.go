package wire

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"poiagg/internal/attack"
	"poiagg/internal/geo"
	"poiagg/internal/gsp"
	"poiagg/internal/poi"
)

// Batch API paths served by GSPServer. The attacks' anchor-probe loops
// issue hundreds of Freq(p, 2r) probes per release; batching them
// amortizes a round trip over many probes and lets the server fan the
// batch out across its cores (BenchmarkWireBatchVsSequential).
const (
	PathFreqBatch  = "/v1/freq/batch"
	PathQueryBatch = "/v1/query/batch"
)

// DefaultMaxBatch bounds the items accepted in one batch request unless
// WithMaxBatch overrides it.
const DefaultMaxBatch = 256

// BatchItem is one (location, radius) probe of a batch request.
type BatchItem struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

// BatchRequest is the POST body of both batch endpoints.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// FreqBatchResult is the outcome of one item: either a frequency vector
// or a per-item error. Item failures never fail the batch — the response
// is 200 with Error set at the failed index.
type FreqBatchResult struct {
	Freq  poi.FreqVector `json:"freq,omitempty"`
	Error string         `json:"error,omitempty"`
}

// FreqBatchResponse carries one result per request item, in order.
type FreqBatchResponse struct {
	Results []FreqBatchResult `json:"results"`
}

// QueryBatchResult is the outcome of one query item.
type QueryBatchResult struct {
	POIs  []poi.POI `json:"pois,omitempty"`
	Error string    `json:"error,omitempty"`
}

// QueryBatchResponse carries one result per request item, in order.
type QueryBatchResponse struct {
	Results []QueryBatchResult `json:"results"`
}

// registerBatch adds the batch endpoints; called from NewGSPServer.
func (s *GSPServer) registerBatch() {
	s.mux.HandleFunc("POST "+PathFreqBatch, s.handleFreqBatch)
	s.mux.HandleFunc("POST "+PathQueryBatch, s.handleQueryBatch)
}

// decodeBatch reads and validates the request envelope.
func (s *GSPServer) decodeBatch(w http.ResponseWriter, r *http.Request) ([]BatchItem, bool) {
	return decodeBatchRequest(w, r, s.maxBody, s.maxBatch)
}

// decodeBatchRequest is the shared batch-envelope validator: the GSP
// server and the cluster gateway both run it, so envelope-level
// failures (malformed JSON, empty batch, oversized batch, oversized
// body) reject with byte-identical 400/413 responses from either.
// Item-level validation happens per item later.
func decodeBatchRequest(w http.ResponseWriter, r *http.Request, maxBody int64, maxBatch int) ([]BatchItem, bool) {
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		if isMaxBytes(err) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxBody))
			return nil, false
		}
		writeError(w, http.StatusBadRequest, "malformed batch request")
		return nil, false
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return nil, false
	}
	if len(req.Items) > maxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d items exceeds limit %d", len(req.Items), maxBatch))
		return nil, false
	}
	return req.Items, true
}

// validateItem applies the same location rules as the GET endpoints.
func (s *GSPServer) validateItem(it BatchItem) error {
	return validateBatchItem(it, s.maxRadius)
}

// validateBatchItem is the shared per-item validator (server and
// gateway), keeping per-item error strings identical on both.
func validateBatchItem(it BatchItem, maxRadius float64) error {
	if !isFinite(it.X) || !isFinite(it.Y) || !isFinite(it.R) {
		return fmt.Errorf("x, y, r must be finite")
	}
	if it.R <= 0 || it.R > maxRadius {
		return fmt.Errorf("r out of range")
	}
	return nil
}

// splitBatch validates every item, returning the valid ones as service
// queries plus their original indices; invalid items get their error
// recorded through report.
func (s *GSPServer) splitBatch(items []BatchItem, report func(i int, err error)) ([]gsp.BatchQuery, []int) {
	reqs := make([]gsp.BatchQuery, 0, len(items))
	idx := make([]int, 0, len(items))
	for i, it := range items {
		if err := s.validateItem(it); err != nil {
			report(i, err)
			continue
		}
		reqs = append(reqs, gsp.BatchQuery{L: geo.Point{X: it.X, Y: it.Y}, R: it.R})
		idx = append(idx, i)
	}
	return reqs, idx
}

// admitBatch charges a decoded batch by its item weight against the
// server's admission limiter: a 256-item batch occupies 256 slots (or
// the whole limiter if smaller), so batches can no longer smuggle
// unbounded fan-out work past a per-request concurrency bound. Returns
// a release func, or writes the 503 shed and reports false. No-op when
// admission is disabled.
func (s *GSPServer) admitBatch(w http.ResponseWriter, r *http.Request, n int) (func(), bool) {
	if s.admit == nil {
		return func() {}, true
	}
	return s.admit.admitHTTP(w, r, int64(n))
}

func (s *GSPServer) handleFreqBatch(w http.ResponseWriter, r *http.Request) {
	items, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	release, ok := s.admitBatch(w, r, len(items))
	if !ok {
		return
	}
	defer release()
	if s.enc != nil && s.freqBatchEncoded(w, items) {
		return
	}
	results := make([]FreqBatchResult, len(items))
	reqs, idx := s.splitBatch(items, func(i int, err error) {
		results[i].Error = err.Error()
	})
	for j, f := range s.svc.FreqBatch(reqs) {
		results[idx[j]].Freq = f
	}
	writeJSON(w, http.StatusOK, FreqBatchResponse{Results: results})
}

// freqBatchEncoded answers the batch from pre-encoded per-item segments:
// cached items skip both the service and the JSON encoder, fresh items
// are computed in one FreqBatch fan-out and their segments cached for
// the next request. Error segments are marshaled uncached — they carry
// request-specific text and are never hot. Returns false (nothing
// written) if a segment fails to marshal so the caller falls back to the
// live encoder.
func (s *GSPServer) freqBatchEncoded(w http.ResponseWriter, items []BatchItem) bool {
	segs := make([][]byte, len(items))
	var reqs []gsp.BatchQuery
	var idx []int
	for i, it := range items {
		if err := s.validateItem(it); err != nil {
			seg, merr := json.Marshal(FreqBatchResult{Error: err.Error()})
			if merr != nil {
				return false
			}
			segs[i] = seg
			continue
		}
		if seg, ok := s.enc.get(encKey{kind: encFreqItem, x: it.X, y: it.Y, r: it.R}); ok {
			segs[i] = seg
			continue
		}
		reqs = append(reqs, gsp.BatchQuery{L: geo.Point{X: it.X, Y: it.Y}, R: it.R})
		idx = append(idx, i)
	}
	for j, f := range s.svc.FreqBatch(reqs) {
		i := idx[j]
		seg, err := json.Marshal(FreqBatchResult{Freq: f})
		if err != nil {
			return false
		}
		s.enc.put(encKey{kind: encFreqItem, x: items[i].X, y: items[i].Y, r: items[i].R}, seg)
		segs[i] = seg
	}
	writeSegments(w, segs)
	return true
}

func (s *GSPServer) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	items, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	release, ok := s.admitBatch(w, r, len(items))
	if !ok {
		return
	}
	defer release()
	if s.enc != nil && s.queryBatchEncoded(w, items) {
		return
	}
	results := make([]QueryBatchResult, len(items))
	reqs, idx := s.splitBatch(items, func(i int, err error) {
		results[i].Error = err.Error()
	})
	for j, ps := range s.svc.QueryBatch(reqs) {
		results[idx[j]].POIs = ps
	}
	writeJSON(w, http.StatusOK, QueryBatchResponse{Results: results})
}

// queryBatchEncoded is freqBatchEncoded for the query endpoint.
func (s *GSPServer) queryBatchEncoded(w http.ResponseWriter, items []BatchItem) bool {
	segs := make([][]byte, len(items))
	var reqs []gsp.BatchQuery
	var idx []int
	for i, it := range items {
		if err := s.validateItem(it); err != nil {
			seg, merr := json.Marshal(QueryBatchResult{Error: err.Error()})
			if merr != nil {
				return false
			}
			segs[i] = seg
			continue
		}
		if seg, ok := s.enc.get(encKey{kind: encQueryItem, x: it.X, y: it.Y, r: it.R}); ok {
			segs[i] = seg
			continue
		}
		reqs = append(reqs, gsp.BatchQuery{L: geo.Point{X: it.X, Y: it.Y}, R: it.R})
		idx = append(idx, i)
	}
	for j, ps := range s.svc.QueryBatch(reqs) {
		i := idx[j]
		seg, err := json.Marshal(QueryBatchResult{POIs: ps})
		if err != nil {
			return false
		}
		s.enc.put(encKey{kind: encQueryItem, x: items[i].X, y: items[i].Y, r: items[i].R}, seg)
		segs[i] = seg
	}
	writeSegments(w, segs)
	return true
}

// FreqBatch posts a batch of Freq probes in one round trip. Results are
// in item order; a result may carry a per-item Error instead of a
// vector. Envelope rejections (empty, oversized, malformed) surface as
// an error wrapping ErrBadRequest.
func (c *GSPClient) FreqBatch(ctx context.Context, items []BatchItem) ([]FreqBatchResult, error) {
	body, err := json.Marshal(BatchRequest{Items: items})
	if err != nil {
		return nil, fmt.Errorf("wire: marshal batch: %w", err)
	}
	var out FreqBatchResponse
	if err := c.core.do(ctx, http.MethodPost, PathFreqBatch, nil, body, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(items) {
		return nil, fmt.Errorf("wire: %s: %d results for %d items", PathFreqBatch, len(out.Results), len(items))
	}
	return out.Results, nil
}

// QueryBatch posts a batch of Query probes in one round trip.
func (c *GSPClient) QueryBatch(ctx context.Context, items []BatchItem) ([]QueryBatchResult, error) {
	body, err := json.Marshal(BatchRequest{Items: items})
	if err != nil {
		return nil, fmt.Errorf("wire: marshal batch: %w", err)
	}
	var out QueryBatchResponse
	if err := c.core.do(ctx, http.MethodPost, PathQueryBatch, nil, body, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(items) {
		return nil, fmt.Errorf("wire: %s: %d results for %d items", PathQueryBatch, len(out.Results), len(items))
	}
	return out.Results, nil
}

// RemoteRegionStats meters a RemoteRegion run.
type RemoteRegionStats struct {
	// Probes is the number of candidate anchors probed.
	Probes int
	// RoundTrips is the number of batch HTTP requests those probes cost
	// (⌈Probes/batchSize⌉ — the sequential client would pay one round
	// trip per probe).
	RoundTrips int
}

// RemoteRegion mounts the region re-identification attack over the
// wire: the same candidate-pruning loop as attack.Region, with the
// Freq(p, 2r) anchor probes batched through the GSP's batch endpoint
// instead of answered by a local service. city is the adversary's prior
// knowledge (typically FetchCity from the same server); f is the
// released vector and r the query range. batchSize ≤ 0 uses
// DefaultMaxBatch. The result is identical to running attack.Region
// against a local service over the same data.
func RemoteRegion(ctx context.Context, c *GSPClient, city *gsp.City, f poi.FreqVector, r float64, batchSize int) (attack.RegionResult, RemoteRegionStats, error) {
	if batchSize <= 0 {
		batchSize = DefaultMaxBatch
	}
	var stats RemoteRegionStats
	tl, ok := poi.MostInfrequentPresent(f, city.CityFreq())
	if !ok {
		return attack.RegionResult{AnchorType: -1}, stats, nil
	}
	candidates := city.POIsOfType(tl)
	var survivors []poi.POI
	for start := 0; start < len(candidates); start += batchSize {
		chunk := candidates[start:min(start+batchSize, len(candidates))]
		items := make([]BatchItem, len(chunk))
		for i, p := range chunk {
			items[i] = BatchItem{X: p.Pos.X, Y: p.Pos.Y, R: 2 * r}
		}
		results, err := c.FreqBatch(ctx, items)
		if err != nil {
			return attack.RegionResult{}, stats, fmt.Errorf("wire: RemoteRegion: %w", err)
		}
		stats.RoundTrips++
		stats.Probes += len(chunk)
		for i, res := range results {
			if res.Error != "" {
				return attack.RegionResult{}, stats, fmt.Errorf("wire: RemoteRegion: probe %d: %s", start+i, res.Error)
			}
			if res.Freq.Dominates(f) {
				survivors = append(survivors, chunk[i])
			}
		}
	}
	res := attack.RegionResult{AnchorType: tl, Candidates: survivors}
	if len(survivors) == 1 {
		res.Success = true
		res.Anchor = survivors[0]
	}
	return res, stats, nil
}
