package wire

import (
	"context"
	"testing"

	"poiagg/internal/attack"
	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// TestFreqBatchMatchesSingleRequests proves the batch endpoint is
// nothing but a round-trip amortization: every result equals the
// corresponding single-probe reply, in item order.
func TestFreqBatchMatchesSingleRequests(t *testing.T) {
	city, svc := wireFixture(t)
	_, client := newGSPTestServer(t)
	ctx := context.Background()

	locs := city.RandomLocations(40, 41)
	items := make([]BatchItem, len(locs))
	for i, l := range locs {
		items[i] = BatchItem{X: l.X, Y: l.Y, R: 800 + float64(i%3)*400}
	}
	results, err := client.FreqBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Error != "" {
			t.Fatalf("item %d: unexpected error %q", i, res.Error)
		}
		want := svc.Freq(geo.Point{X: items[i].X, Y: items[i].Y}, items[i].R)
		if !res.Freq.Equal(want) {
			t.Errorf("item %d: batch Freq diverges from local service", i)
		}
	}

	qres, err := client.QueryBatch(ctx, items[:10])
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range qres {
		if res.Error != "" {
			t.Fatalf("query item %d: unexpected error %q", i, res.Error)
		}
		want := svc.Query(geo.Point{X: items[i].X, Y: items[i].Y}, items[i].R)
		if len(res.POIs) != len(want) {
			t.Errorf("query item %d: %d POIs, want %d", i, len(res.POIs), len(want))
		}
	}
}

// TestRemoteRegionMatchesLocalAttack is the end-to-end proof that the
// batched wire attack is the same attack: for plain releases at many
// locations, RemoteRegion against an httptest GSP must reproduce
// attack.Region against the local service exactly — same success bit,
// same anchor, same candidate set — while paying ⌈probes/batch⌉ round
// trips.
func TestRemoteRegionMatchesLocalAttack(t *testing.T) {
	city, svc := wireFixture(t)
	_, client := newGSPTestServer(t)
	ctx := context.Background()

	remoteCity, err := FetchCity(ctx, client)
	if err != nil {
		t.Fatal(err)
	}

	const r, batchSize = 1000.0, 32
	for i, l := range city.RandomLocations(25, 42) {
		f := svc.Freq(l, r)
		local := attack.Region(svc, f, r)
		remote, stats, err := RemoteRegion(ctx, client, remoteCity, f, r, batchSize)
		if err != nil {
			t.Fatalf("loc %d: %v", i, err)
		}
		if remote.Success != local.Success || remote.AnchorType != local.AnchorType {
			t.Fatalf("loc %d: remote (success=%v type=%d) != local (success=%v type=%d)",
				i, remote.Success, remote.AnchorType, local.Success, local.AnchorType)
		}
		if remote.Success && remote.Anchor.ID != local.Anchor.ID {
			t.Fatalf("loc %d: remote anchor %d != local anchor %d", i, remote.Anchor.ID, local.Anchor.ID)
		}
		if len(remote.Candidates) != len(local.Candidates) {
			t.Fatalf("loc %d: %d remote candidates, %d local", i, len(remote.Candidates), len(local.Candidates))
		}
		wantTrips := (stats.Probes + batchSize - 1) / batchSize
		if stats.Probes > 0 && stats.RoundTrips != wantTrips {
			t.Errorf("loc %d: %d round trips for %d probes (batch %d), want %d",
				i, stats.RoundTrips, stats.Probes, batchSize, wantTrips)
		}
	}
}

// TestRemoteRegionEmptyRelease covers the no-anchor path: an all-zero
// release has no most-infrequent-present type, so the attack reports
// failure without touching the network.
func TestRemoteRegionEmptyRelease(t *testing.T) {
	city, _ := wireFixture(t)
	_, client := newGSPTestServer(t)
	res, stats, err := RemoteRegion(context.Background(), client, city.City,
		poi.NewFreqVector(city.M()), 1000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Success || stats.RoundTrips != 0 {
		t.Errorf("empty release: success=%v roundTrips=%d, want failure with no traffic",
			res.Success, stats.RoundTrips)
	}
}

// BenchmarkWireBatchVsSequential is the wire ablation (DESIGN.md §5):
// the same 128 anchor probes issued as batched POSTs versus one GET
// each, against a real HTTP server on the loopback interface.
func BenchmarkWireBatchVsSequential(b *testing.B) {
	city, _ := wireFixture(b)
	_, client := newGSPTestServer(b)
	ctx := context.Background()

	locs := city.RandomLocations(128, 43)
	items := make([]BatchItem, len(locs))
	for i, l := range locs {
		items[i] = BatchItem{X: l.X, Y: l.Y, R: 2000}
	}

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := client.FreqBatch(ctx, items); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, it := range items {
				if _, err := client.Freq(ctx, geo.Point{X: it.X, Y: it.Y}, it.R); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
