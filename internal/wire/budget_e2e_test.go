package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"poiagg/internal/budget"
	"poiagg/internal/obs"
)

// budgetClock is the e2e tests' deterministic time source: the window
// slides only when the test advances it, so nothing sleeps.
type budgetClock struct {
	mu sync.Mutex
	t  time.Time
}

func newBudgetClock() *budgetClock {
	return &budgetClock{t: time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *budgetClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *budgetClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testRelease(t *testing.T, userID string) ReleaseRequest {
	t.Helper()
	city, svc := wireFixture(t)
	l := city.RandomLocations(1, 77)[0]
	return ReleaseRequest{
		UserID: userID,
		Freq:   svc.Freq(l, 900),
		R:      900,
		Time:   time.Date(2026, 2, 1, 9, 0, 0, 0, time.UTC),
	}
}

// TestBudgetEnforcedReleaseE2E drives the full budget story over a real
// socket: a principal whose window budget covers exactly k releases gets
// k successes with shrinking remainders, then a 429 whose body reports
// the spent/remaining (ε, δ); after the sliding window advances (fake
// clock) the next release succeeds; and the ledger state survives a
// snapshot + crash-style restart bit-identically.
func TestBudgetEnforcedReleaseE2E(t *testing.T) {
	dir := t.TempDir()
	clk := newBudgetClock()
	policy := budget.Policy{
		LifetimeEps: 100, LifetimeDelta: 1e-3,
		Window: 24 * time.Hour, WindowEps: 1.5, WindowDelta: 1e-3,
	}
	led, err := budget.Open(policy, dir, budget.WithClock(clk.Now))
	if err != nil {
		t.Fatal(err)
	}

	const relEps, relDelta = 0.5, 1e-6 // k = 3 releases per window
	reg := obs.NewRegistry()
	led.ExportMetrics(reg)
	ts, client := newLBSTestServer(t,
		WithBudget(led, relEps, relDelta), WithLBSMetrics(reg))
	ctx := context.Background()
	rel := testRelease(t, "alice")

	// Exactly k granted releases, window remainder shrinking to zero.
	for i := 1; i <= 3; i++ {
		resp, err := client.Release(ctx, rel)
		if err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
		if !resp.Accepted || resp.Budget == nil {
			t.Fatalf("release %d: %+v", i, resp)
		}
		b := resp.Budget
		wantWin := 1.5 - relEps*float64(i)
		if math.Abs(b.WindowRemainingEps-wantWin) > 1e-9 || b.Releases != uint64(i) {
			t.Fatalf("release %d budget = %+v, want window remaining %v", i, b, wantWin)
		}
	}

	// Release k+1: a 429 carrying the full accounting.
	_, err = client.Release(ctx, rel)
	if !errors.Is(err, ErrBudgetDenied) {
		t.Fatalf("release 4 error = %v, want ErrBudgetDenied", err)
	}
	var denied *BudgetDeniedError
	if !errors.As(err, &denied) || denied.State == nil {
		t.Fatalf("429 carries no budget state: %v", err)
	}
	st := denied.State
	if st.Denial != string(budget.DenyWindow) ||
		math.Abs(st.SpentEps-1.5) > 1e-9 ||
		math.Abs(st.SpentDelta-3e-6) > 1e-12 ||
		math.Abs(st.RemainingEps-98.5) > 1e-9 ||
		st.WindowRemainingEps > 1e-9 ||
		st.RetryAfterSeconds != (24*time.Hour).Seconds() {
		t.Fatalf("denial state = %+v", st)
	}
	// The denied release left no trace in the history.
	if hist, err := client.Releases(ctx, "alice"); err != nil || len(hist.Releases) != 3 {
		t.Fatalf("history after denial: %d releases (err=%v)", len(hist.Releases), err)
	}

	// The window slides: a day later the oldest spends have expired.
	clk.Advance(24 * time.Hour)
	if resp, err := client.Release(ctx, rel); err != nil || !resp.Accepted {
		t.Fatalf("release after window slid: %v (%+v)", err, resp)
	}

	// Admin status endpoint agrees with the ledger.
	adminSt, err := client.BudgetStatus(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if adminSt.Releases != 4 || math.Abs(adminSt.SpentEps-2.0) > 1e-9 {
		t.Fatalf("admin status = %+v", adminSt)
	}

	// Crash-style restart: snapshot, more spends into the log, reopen
	// without Close, and require byte-identical state.
	if err := led.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Release(ctx, rel); err != nil {
		t.Fatal(err)
	}
	before, err := led.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	led2, err := budget.Open(policy, dir, budget.WithClock(clk.Now))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	after, err := led2.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("ledger state not bit-identical across restart:\n before %s\n after  %s", before, after)
	}
	if err := led2.Close(); err != nil {
		t.Fatal(err)
	}

	// Admin reset refills the principal.
	resetSt, err := client.BudgetReset(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if resetSt.SpentEps != 0 || resetSt.Releases != 0 {
		t.Fatalf("post-reset state = %+v", resetSt)
	}
	if resp, err := client.Release(ctx, rel); err != nil || !resp.Accepted {
		t.Fatalf("release after reset: %v (%+v)", err, resp)
	}

	// The shared registry saw the ledger's counters and latency.
	snap := fetchSnapshot(t, ts.URL)
	if got := snap.Counters[budget.MetricSpends]; got != 6 {
		t.Errorf("%s = %d, want 6", budget.MetricSpends, got)
	}
	if got := snap.Counters[budget.MetricDenies]; got != 1 {
		t.Errorf("%s = %d, want 1", budget.MetricDenies, got)
	}
	if lat, ok := snap.Latencies[budget.LatencyDecision]; !ok || lat.Count != 7 {
		t.Errorf("decision latency = %+v", snap.Latencies)
	}
}

// TestBudgetPrincipalResolution checks the charge-identity precedence:
// X-Principal header, then ?principal= query parameter, then userId.
func TestBudgetPrincipalResolution(t *testing.T) {
	led, err := budget.New(budget.Policy{LifetimeEps: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts, client := newLBSTestServer(t, WithBudget(led, 0.5, 0))
	ctx := context.Background()
	rel := testRelease(t, "body-user")
	body, _ := json.Marshal(rel)

	post := func(path string, header string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if header != "" {
			req.Header.Set(HeaderPrincipal, header)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s = %d", path, resp.StatusCode)
		}
	}
	post(PathRelease, "header-user")                         // header wins
	post(PathRelease+"?principal=query-user", "")            // query fallback
	post(PathRelease+"?principal=query-user", "header-user") // header beats query
	post(PathRelease, "")                                    // userId fallback

	for principal, want := range map[string]uint64{
		"header-user": 2, "query-user": 1, "body-user": 1,
	} {
		st, err := client.BudgetStatus(ctx, principal)
		if err != nil {
			t.Fatal(err)
		}
		if st.Releases != want {
			t.Errorf("%s charged %d releases, want %d", principal, st.Releases, want)
		}
	}
}

// TestLBSClientNeverRetries429 is the retry-classification regression
// test: a 429 budget denial must be terminal — retrying burns attempts
// against a budget that will not refill within any backoff window.
func TestLBSClientNeverRetries429(t *testing.T) {
	reg := obs.NewRegistry()
	ts, _ := newLBSTestServer(t)
	ft := &faultTransport{base: http.DefaultTransport, script: []faultAction{act429}}
	tt := &trackingTransport{base: ft}
	hc := &http.Client{Transport: tt}
	client := NewLBSClient(ts.URL, hc,
		WithRetries(3), fastBackoff(), WithClientMetrics(reg))
	t.Cleanup(func() {
		if n := tt.open.Load(); n != 0 {
			t.Errorf("%d response bodies leaked", n)
		}
		hc.CloseIdleConnections()
	})

	_, err := client.Release(context.Background(), testRelease(t, "alice"))
	if !errors.Is(err, ErrBudgetDenied) {
		t.Fatalf("want ErrBudgetDenied, got %v", err)
	}
	var denied *BudgetDeniedError
	if !errors.As(err, &denied) || denied.State == nil || denied.State.Denial != "window" {
		t.Fatalf("typed denial state missing: %v", err)
	}
	if !strings.Contains(err.Error(), "privacy budget denied") {
		t.Errorf("error hides the server message: %v", err)
	}
	if got := ft.callCount(); got != 1 {
		t.Errorf("429 was retried: %d attempts, want 1", got)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 0 {
		t.Errorf("retry counter = %d, want 0", got)
	}
	if got := reg.Counter(MetricClientFailures).Value(); got != 1 {
		t.Errorf("failure counter = %d, want 1", got)
	}
}

// TestGSPClientNeverRetries429 covers the same classification on the GSP
// client path (the fix is in the shared clientCore).
func TestGSPClientNeverRetries429(t *testing.T) {
	reg := obs.NewRegistry()
	client, ft, _ := faultyGSPClient(t, []faultAction{act429, actOK}, 0,
		WithRetries(3), fastBackoff(), WithClientMetrics(reg))

	_, err := client.Stats(context.Background())
	if !errors.Is(err, ErrBudgetDenied) {
		t.Fatalf("want ErrBudgetDenied, got %v", err)
	}
	if got := ft.callCount(); got != 1 {
		t.Errorf("429 was retried: %d attempts, want 1", got)
	}
	if got := reg.Counter(MetricClientRetries).Value(); got != 0 {
		t.Errorf("retry counter = %d, want 0", got)
	}
}

// TestBudgetEndpointsAbsentWithoutLedger: without WithBudget the admin
// routes do not exist.
func TestBudgetEndpointsAbsentWithoutLedger(t *testing.T) {
	ts, client := newLBSTestServer(t)
	if _, err := client.BudgetStatus(context.Background(), "alice"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("budget status on plain server = %v, want 404 (ErrBadRequest)", err)
	}
	resp, err := http.Get(ts.URL + PathBudget + "/alice")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET %s/alice = %d, want 404", PathBudget, resp.StatusCode)
	}
}
