package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"poiagg/internal/geo"
	"poiagg/internal/obs"
	"poiagg/internal/poi"
	"poiagg/internal/stream"
)

// ErrBadRequest marks 4xx replies from a server; match with errors.Is.
var ErrBadRequest = errors.New("wire: bad request")

// ErrBudgetDenied matches 429 privacy-budget denials with errors.Is.
// The budget will not refill within any backoff window, so these are
// terminal: the client never retries them.
var ErrBudgetDenied = errors.New("wire: budget denied")

// BudgetDeniedError is the typed error for a 429 budget denial;
// errors.As exposes the server-reported accounting.
type BudgetDeniedError struct {
	Path    string
	Message string
	// State carries the denial body's budget document; nil when the
	// server sent none.
	State *BudgetState
}

func (e *BudgetDeniedError) Error() string {
	return fmt.Sprintf("wire: %s: budget denied: %s", e.Path, e.Message)
}

// Is makes errors.Is(err, ErrBudgetDenied) match.
func (e *BudgetDeniedError) Is(target error) bool { return target == ErrBudgetDenied }

// ErrUnauthorized matches 401 auth rejections with errors.Is. A request
// the server will not authenticate cannot succeed by being resent —
// the key is wrong or absent — so these are terminal like the rest of
// 4xx: the client never retries them.
var ErrUnauthorized = errors.New("wire: unauthorized")

// UnauthorizedError is the typed error for a 401 auth rejection;
// errors.As exposes the server's structured reason.
type UnauthorizedError struct {
	Path    string
	Message string
	// Reason is the server's rejection class ("missing_signature",
	// "bad_signature", "stale_timestamp", "replay", ...); empty when the
	// server sent no structured body.
	Reason string
}

func (e *UnauthorizedError) Error() string {
	return fmt.Sprintf("wire: %s: unauthorized: %s", e.Path, e.Message)
}

// Is makes errors.Is(err, ErrUnauthorized) match.
func (e *UnauthorizedError) Is(target error) bool { return target == ErrUnauthorized }

// ErrPeerUnreachable matches transport failures where nothing was
// listening at the peer at all — a refused connection — with errors.Is.
// A refusal is unlike other transport faults (resets, timeouts): it
// fails in microseconds and means the process is down, not busy, so the
// client spends at most one retry on it instead of the full budget. The
// typed error doubles as an eviction hint: a caller holding a peer list
// (the cluster gateway) should drop the peer from its ring and re-route
// rather than keep dialing a dead shard.
var ErrPeerUnreachable = errors.New("wire: peer unreachable")

// PeerUnreachableError is the typed error for a refused connection;
// errors.As exposes which peer was down.
type PeerUnreachableError struct {
	// Peer is the base URL of the unreachable server.
	Peer string
	Path string
	// Err is the underlying transport error.
	Err error
}

func (e *PeerUnreachableError) Error() string {
	return fmt.Sprintf("wire: %s%s: peer unreachable: %v", e.Peer, e.Path, e.Err)
}

// Unwrap exposes the transport error.
func (e *PeerUnreachableError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrPeerUnreachable) match.
func (e *PeerUnreachableError) Is(target error) bool { return target == ErrPeerUnreachable }

// ErrBodyTooLarge matches 413 body-size rejections with errors.Is.
// The server's cap does not move between attempts, so resending the
// same payload can only be rejected again: these are terminal, never
// retried. The caller's remedy is to shrink the payload (smaller ingest
// batches, fewer items), not to wait.
var ErrBodyTooLarge = errors.New("wire: request body too large")

// BodyTooLargeError is the typed error for a 413 rejection; errors.As
// exposes the server's explanation (which names its byte cap).
type BodyTooLargeError struct {
	Path    string
	Message string
}

func (e *BodyTooLargeError) Error() string {
	return fmt.Sprintf("wire: %s: body too large: %s", e.Path, e.Message)
}

// Is makes errors.Is(err, ErrBodyTooLarge) match.
func (e *BodyTooLargeError) Is(target error) bool { return target == ErrBodyTooLarge }

// ErrOverloaded matches 503 admission sheds with errors.Is. Unlike a
// budget denial, an overload clears as soon as the present wave drains,
// so these are transient: the client retries them, sleeping at most the
// server's Retry-After hint.
var ErrOverloaded = errors.New("wire: server overloaded")

// OverloadedError is the typed error for a 503 shed; errors.As exposes
// the server's Retry-After hint.
type OverloadedError struct {
	Path    string
	Message string
	// RetryAfter is the parsed Retry-After header; 0 when absent.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("wire: %s: overloaded: %s", e.Path, e.Message)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Client metric names recorded in the registry passed via
// WithClientMetrics.
const (
	// MetricClientAttempts counts every HTTP attempt, including retries.
	MetricClientAttempts = "client.attempts"
	// MetricClientRetries counts retried attempts only.
	MetricClientRetries = "client.retries"
	// MetricClientFailures counts requests that exhausted their retries.
	MetricClientFailures = "client.failures"
)

// clientCore holds the transport policy shared by GSPClient and
// LBSClient: per-attempt timeout, bounded retries with exponential
// backoff and jitter on transient failures, and metrics.
type clientCore struct {
	base string
	hc   *http.Client

	retries     int           // extra attempts after the first
	timeout     time.Duration // per-attempt; 0 = rely on hc / ctx
	backoffBase time.Duration
	backoffMax  time.Duration
	reg         *obs.Registry // nil disables client metrics
	principal   string        // X-Principal header; "" omits it

	signPrincipal string // identity requests are signed as; "" disables
	signKey       []byte // HMAC-SHA256 key for signPrincipal
}

// ClientOption customizes a GSPClient or LBSClient.
type ClientOption func(*clientCore)

// WithRetries sets how many times a transient failure (connection error,
// timeout, or 5xx) is retried after the first attempt (default 0 — the
// pre-hardening behavior). 4xx replies — including 429 budget denials,
// which no backoff window can refill — are never retried.
func WithRetries(n int) ClientOption {
	return func(c *clientCore) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithRequestTimeout bounds each attempt (not the whole call, which the
// caller's context bounds). 0 disables the per-attempt bound.
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *clientCore) {
		if d >= 0 {
			c.timeout = d
		}
	}
}

// WithBackoff sets the exponential backoff's base and cap (defaults
// 50ms and 2s). Sleep before retry k is base<<k with equal jitter,
// capped at max.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(c *clientCore) {
		if base > 0 {
			c.backoffBase = base
		}
		if max > 0 {
			c.backoffMax = max
		}
	}
}

// WithClientMetrics records attempt/retry/failure counters into reg —
// pass the same registry the server side exposes at /v1/metrics to see
// client resilience next to server traffic.
func WithClientMetrics(reg *obs.Registry) ClientOption {
	return func(c *clientCore) { c.reg = reg }
}

// WithPrincipal sends the X-Principal header on every request, naming
// the identity a budget-enforcing LBS charges for each release
// (overriding the release's userId fallback).
func WithPrincipal(principal string) ClientOption {
	return func(c *clientCore) { c.principal = principal }
}

// WithSigningKey signs every request as principal with the given
// HMAC-SHA256 key (see SignRequest for the format) — required against a
// server running WithAuth. Signing happens per attempt with a fresh
// nonce, so retries are never self-rejected as replays. The key is
// copied.
func WithSigningKey(principal string, key []byte) ClientOption {
	return func(c *clientCore) {
		c.signPrincipal = principal
		c.signKey = bytes.Clone(key)
	}
}

func newClientCore(baseURL string, hc *http.Client, opts []ClientOption) clientCore {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := clientCore{
		base:        baseURL,
		hc:          hc,
		backoffBase: 50 * time.Millisecond,
		backoffMax:  2 * time.Second,
	}
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

func (c *clientCore) count(name string) {
	if c.reg != nil {
		c.reg.Counter(name).Inc()
	}
}

// do performs one logical request with the retry policy. body may be nil
// (GET); non-nil bodies are replayed from the byte slice on retry, so
// POSTs are retried too — the wire API's writes are idempotent per
// (user, release) history-append semantics, and at-least-once delivery
// is the price of resilience.
func (c *clientCore) do(ctx context.Context, method, path string, params url.Values, body []byte, out any) error {
	return c.doCT(ctx, method, path, params, body, "application/json", out)
}

// doCT is do with an explicit request content type (the NDJSON ingest
// stream is the one non-JSON body on the wire).
func (c *clientCore) doCT(ctx context.Context, method, path string, params url.Values, body []byte, contentType string, out any) error {
	u := c.base + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	var lastErr error
	refused := 0
	for attempt := 0; ; attempt++ {
		c.count(MetricClientAttempts)
		retryable, err := c.attempt(ctx, method, u, path, body, contentType, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if errors.Is(err, ErrPeerUnreachable) {
			// Connection refused: transient enough for one retry (a server
			// mid-restart comes back in milliseconds), terminal after — a
			// dead peer stays dead across any backoff schedule, and burning
			// the whole retry budget on it starves the caller's deadline.
			// The typed error survives as the eviction hint.
			if refused++; refused > 1 {
				break
			}
		}
		if !retryable || attempt >= c.retries {
			break
		}
		// A 503 shed carries the server's Retry-After hint: capacity
		// frees as the admitted wave drains, so sleep min(hint, backoff)
		// rather than stacking a full exponential delay on top.
		var hint time.Duration
		var overloaded *OverloadedError
		if errors.As(err, &overloaded) {
			hint = overloaded.RetryAfter
		}
		if err := c.sleepBackoff(ctx, attempt, hint); err != nil {
			// The caller's context ended while we waited; report the
			// last attempt's error, which is what the deadline killed.
			break
		}
		c.count(MetricClientRetries)
	}
	c.count(MetricClientFailures)
	return lastErr
}

// attempt performs one HTTP exchange. The returned bool reports whether
// the failure is transient (worth retrying).
func (c *clientCore) attempt(ctx context.Context, method, u, path string, body []byte, contentType string, out any) (bool, error) {
	actx := ctx
	if c.timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, u, rd)
	if err != nil {
		return false, fmt.Errorf("wire: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	if c.principal != "" {
		req.Header.Set(HeaderPrincipal, c.principal)
	}
	if c.signPrincipal != "" {
		// Sign inside the attempt, not once per logical request: the
		// server's replay cache spends each nonce, so a retry must carry
		// a fresh one (and a fresh timestamp) to be admissible.
		if err := SignRequest(req, body, c.signPrincipal, c.signKey, time.Now(), newNonce()); err != nil {
			return false, fmt.Errorf("wire: sign request: %w", err)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport-level failure (refused, reset, timeout). Retry
		// unless the caller's own context is done. A refused connection
		// is classified separately: do() caps it at one retry and the
		// typed error carries the peer-eviction hint.
		if errors.Is(err, syscall.ECONNREFUSED) {
			return ctx.Err() == nil, &PeerUnreachableError{Peer: c.base, Path: path, Err: err}
		}
		return ctx.Err() == nil, fmt.Errorf("wire: %s: %w", path, err)
	}
	defer drainClose(resp.Body)
	if err := decodeReply(resp, path, out); err != nil {
		// Only 5xx is transient. 429 means the privacy budget is denied —
		// a state no backoff window refills, and each retry would burn an
		// attempt (and server work) for a guaranteed second denial — so it
		// is terminal like the rest of 4xx, as are decode failures.
		transient := resp.StatusCode/100 == 5
		return transient && ctx.Err() == nil, err
	}
	return false, nil
}

// sleepBackoff waits backoffDelay(attempt, hint), or returns early when
// ctx ends.
func (c *clientCore) sleepBackoff(ctx context.Context, attempt int, hint time.Duration) error {
	t := time.NewTimer(c.backoffDelay(attempt, hint))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoffDelay is base<<attempt with equal jitter (half fixed, half
// uniform), capped at the configured max. A positive hint (the server's
// Retry-After on a shed) only ever shortens the sleep: the server knows
// how fast its queue drains better than an exponential schedule does.
func (c *clientCore) backoffDelay(attempt int, hint time.Duration) time.Duration {
	d := c.backoffBase << uint(attempt)
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	if hint > 0 && hint < d {
		d = hint
	}
	return d
}

// drainClose consumes what remains of a response body before closing so
// the transport can reuse the connection, and so fault-injection tests
// can assert no body is ever leaked.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<18))
	body.Close()
}

// GSPClient is the mobile user's client for a GSP server.
type GSPClient struct {
	core clientCore
}

// NewGSPClient returns a client for the GSP at baseURL. hc may be nil to
// use http.DefaultClient (callers running against real networks should
// pass a client with timeouts or use WithRequestTimeout). Options add
// retry, timeout, and metrics policies.
func NewGSPClient(baseURL string, hc *http.Client, opts ...ClientOption) *GSPClient {
	return &GSPClient{core: newClientCore(baseURL, hc, opts)}
}

// Stats fetches the city description.
func (c *GSPClient) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.core.do(ctx, http.MethodGet, PathStats, nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query fetches the POIs within radius r of l (the paper's Query(l, r)).
func (c *GSPClient) Query(ctx context.Context, l geo.Point, r float64) ([]poi.POI, error) {
	var out QueryResponse
	if err := c.core.do(ctx, http.MethodGet, PathQuery, locationParams(l, r), nil, &out); err != nil {
		return nil, err
	}
	return out.POIs, nil
}

// Freq fetches the POI type frequency vector within radius r of l (the
// paper's Freq(l, r)).
func (c *GSPClient) Freq(ctx context.Context, l geo.Point, r float64) (poi.FreqVector, error) {
	var out FreqResponse
	if err := c.core.do(ctx, http.MethodGet, PathFreq, locationParams(l, r), nil, &out); err != nil {
		return nil, err
	}
	return out.Freq, nil
}

// ClusterPeers lists a cluster gateway's membership (admin surface; a
// no-op against a plain gspd, which 404s).
func (c *GSPClient) ClusterPeers(ctx context.Context) (*ClusterPeersResponse, error) {
	var out ClusterPeersResponse
	if err := c.core.do(ctx, http.MethodGet, PathClusterPeers, nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterJoin asks a cluster gateway to admit the shard at peerURL and
// returns the post-join membership. The gateway probes the shard's
// readiness and pre-warms its incoming cells before it takes
// ownership; under auth the caller must sign as the gateway's admin
// principal.
func (c *GSPClient) ClusterJoin(ctx context.Context, peerURL string) (*ClusterPeersResponse, error) {
	body, err := json.Marshal(ClusterJoinRequest{URL: peerURL})
	if err != nil {
		return nil, fmt.Errorf("wire: marshal cluster join: %w", err)
	}
	var out ClusterPeersResponse
	if err := c.core.do(ctx, http.MethodPost, PathClusterPeers, nil, body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterLeave retires the shard at peerURL from a cluster gateway and
// returns the post-leave membership. Tenant rules as ClusterJoin.
func (c *GSPClient) ClusterLeave(ctx context.Context, peerURL string) (*ClusterPeersResponse, error) {
	var out ClusterPeersResponse
	path := PathClusterPeers + "/" + url.PathEscape(peerURL)
	if err := c.core.do(ctx, http.MethodDelete, path, nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func locationParams(l geo.Point, r float64) url.Values {
	v := url.Values{}
	v.Set("x", strconv.FormatFloat(l.X, 'f', -1, 64))
	v.Set("y", strconv.FormatFloat(l.Y, 'f', -1, 64))
	v.Set("r", strconv.FormatFloat(r, 'f', -1, 64))
	return v
}

// LBSClient is the user's client for an LBS application server.
type LBSClient struct {
	core clientCore
}

// NewLBSClient returns a client for the LBS app at baseURL.
func NewLBSClient(baseURL string, hc *http.Client, opts ...ClientOption) *LBSClient {
	return &LBSClient{core: newClientCore(baseURL, hc, opts)}
}

// Release posts a POI-aggregate release.
func (c *LBSClient) Release(ctx context.Context, rel ReleaseRequest) (*ReleaseResponse, error) {
	body, err := json.Marshal(rel)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal release: %w", err)
	}
	var out ReleaseResponse
	if err := c.core.do(ctx, http.MethodPost, PathRelease, nil, body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BudgetStatus fetches a principal's privacy-budget accounting from a
// budget-enforced LBS server (admin endpoint). On an authenticated
// server, principal must equal the client's signing principal — the
// endpoints are tenant-isolated, and a mismatch is a 403.
func (c *LBSClient) BudgetStatus(ctx context.Context, principal string) (*BudgetState, error) {
	var out BudgetState
	path := PathBudget + "/" + url.PathEscape(principal)
	if err := c.core.do(ctx, http.MethodGet, path, nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BudgetReset zeroes a principal's privacy-budget accounting (admin
// endpoint) and returns the post-reset state. Tenant-isolated under
// auth, like BudgetStatus.
func (c *LBSClient) BudgetReset(ctx context.Context, principal string) (*BudgetState, error) {
	var out BudgetState
	path := PathBudget + "/" + url.PathEscape(principal) + "/reset"
	if err := c.core.do(ctx, http.MethodPost, path, nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ingest streams a batch of check-in events to a streaming-enabled LBS
// server as NDJSON (one JSON event per line) and returns the server's
// per-event accounting. Delivery is at-least-once under retries — the
// whole batch is replayed on a transient failure — but application is
// effectively-once within the window: events without an ID get one
// stamped from a per-call batch id before the body is built, the
// retried body resends those ids verbatim, and the window store applies
// each id once (replays come back in the response's Deduped count). A
// 413 reply maps to BodyTooLargeError — split the batch rather than
// resend it.
func (c *LBSClient) Ingest(ctx context.Context, events []stream.Event) (*IngestResponse, error) {
	batch := strconv.FormatUint(rand.Uint64(), 16) + strconv.FormatUint(rand.Uint64(), 16)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, ev := range events {
		if ev.ID == "" {
			ev.ID = batch + "/" + strconv.Itoa(i)
		}
		if err := enc.Encode(ev); err != nil {
			return nil, fmt.Errorf("wire: marshal ingest event %d: %w", i, err)
		}
	}
	var out IngestResponse
	if err := c.core.doCT(ctx, http.MethodPost, PathIngest, nil, buf.Bytes(), "application/x-ndjson", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamReleases fetches the most recent n windowed DP releases (all
// retained history when n <= 0), oldest first.
func (c *LBSClient) StreamReleases(ctx context.Context, n int) (*StreamReleasesResponse, error) {
	var v url.Values
	if n > 0 {
		v = url.Values{}
		v.Set("n", strconv.Itoa(n))
	}
	var out StreamReleasesResponse
	if err := c.core.do(ctx, http.MethodGet, PathStreamReleases, v, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Releases fetches a user's stored release history.
func (c *LBSClient) Releases(ctx context.Context, userID string) (*ReleasesResponse, error) {
	v := url.Values{}
	v.Set("user", userID)
	var out ReleasesResponse
	if err := c.core.do(ctx, http.MethodGet, PathReleases, v, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Error-body read limits: JSON error envelopes are structured documents
// the client wants whole (a batch 400 can legitimately carry hundreds
// of per-item messages), so they get a generous cap; anything else —
// HTML error pages from intermediaries, plain text — is only quoted
// into an error string and stays tightly bounded.
const (
	errBodyLimit     = 4096
	errBodyLimitJSON = 1 << 20
)

// readErrBody reads a non-2xx body up to its content-type's limit and
// reports whether it was cut off mid-document.
func readErrBody(resp *http.Response) (body []byte, truncated bool, err error) {
	limit := errBodyLimit
	if ct := resp.Header.Get("Content-Type"); strings.Contains(ct, "application/json") {
		limit = errBodyLimitJSON
	}
	body, err = io.ReadAll(io.LimitReader(resp.Body, int64(limit)+1))
	if len(body) > limit {
		return body[:limit], true, err
	}
	return body, false, err
}

// retryAfterOf parses an integer-seconds Retry-After header; 0 when
// absent or unparseable (the HTTP-date form is not worth supporting for
// our own servers, which always send seconds).
func retryAfterOf(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// decodeReply maps non-2xx replies to errors and decodes 2xx bodies.
func decodeReply(resp *http.Response, path string, out any) error {
	if resp.StatusCode/100 != 2 {
		msg := resp.Status
		body, truncated, readErr := readErrBody(resp)
		if resp.StatusCode == http.StatusTooManyRequests {
			denied := &BudgetDeniedError{Path: path, Message: msg}
			var errResp BudgetErrorResponse
			if readErr == nil && json.Unmarshal(body, &errResp) == nil {
				if errResp.Error != "" {
					denied.Message = errResp.Error
				}
				denied.State = errResp.Budget
			}
			return denied
		}
		if resp.StatusCode == http.StatusUnauthorized {
			unauth := &UnauthorizedError{Path: path, Message: msg}
			var errResp AuthErrorResponse
			if readErr == nil && json.Unmarshal(body, &errResp) == nil {
				if errResp.Error != "" {
					// Error() re-prefixes "unauthorized: ", so strip the
					// server's copy rather than stutter.
					unauth.Message = strings.TrimPrefix(errResp.Error, "unauthorized: ")
				}
				unauth.Reason = errResp.Reason
			}
			return unauth
		}
		var errResp ErrorResponse
		switch {
		case readErr == nil && json.Unmarshal(body, &errResp) == nil && errResp.Error != "":
			msg = errResp.Error
		case truncated:
			// A clipped JSON document no longer unmarshals; say so
			// cleanly instead of surfacing a raw syntax error or
			// silently dropping the body.
			msg = fmt.Sprintf("%s (error body truncated at %d bytes)", resp.Status, len(body))
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			return &OverloadedError{Path: path, Message: msg, RetryAfter: retryAfterOf(resp)}
		}
		if resp.StatusCode == http.StatusRequestEntityTooLarge {
			return &BodyTooLargeError{Path: path, Message: msg}
		}
		if resp.StatusCode/100 == 4 {
			return fmt.Errorf("%w: %s: %s", ErrBadRequest, path, msg)
		}
		return fmt.Errorf("wire: %s: server error: %s", path, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("wire: %s: decode: %w", path, err)
	}
	return nil
}
