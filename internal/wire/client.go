package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"poiagg/internal/geo"
	"poiagg/internal/poi"
)

// ErrBadRequest marks 4xx replies from a server; match with errors.Is.
var ErrBadRequest = errors.New("wire: bad request")

// GSPClient is the mobile user's client for a GSP server.
type GSPClient struct {
	base string
	hc   *http.Client
}

// NewGSPClient returns a client for the GSP at baseURL. hc may be nil to
// use http.DefaultClient (callers running against real networks should
// pass a client with timeouts).
func NewGSPClient(baseURL string, hc *http.Client) *GSPClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &GSPClient{base: baseURL, hc: hc}
}

// Stats fetches the city description.
func (c *GSPClient) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.getJSON(ctx, PathStats, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query fetches the POIs within radius r of l (the paper's Query(l, r)).
func (c *GSPClient) Query(ctx context.Context, l geo.Point, r float64) ([]poi.POI, error) {
	var out QueryResponse
	if err := c.getJSON(ctx, PathQuery, locationParams(l, r), &out); err != nil {
		return nil, err
	}
	return out.POIs, nil
}

// Freq fetches the POI type frequency vector within radius r of l (the
// paper's Freq(l, r)).
func (c *GSPClient) Freq(ctx context.Context, l geo.Point, r float64) (poi.FreqVector, error) {
	var out FreqResponse
	if err := c.getJSON(ctx, PathFreq, locationParams(l, r), &out); err != nil {
		return nil, err
	}
	return out.Freq, nil
}

func locationParams(l geo.Point, r float64) url.Values {
	v := url.Values{}
	v.Set("x", strconv.FormatFloat(l.X, 'f', -1, 64))
	v.Set("y", strconv.FormatFloat(l.Y, 'f', -1, 64))
	v.Set("r", strconv.FormatFloat(r, 'f', -1, 64))
	return v
}

func (c *GSPClient) getJSON(ctx context.Context, path string, params url.Values, out any) error {
	u := c.base + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("wire: build request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("wire: %s: %w", path, err)
	}
	defer resp.Body.Close()
	return decodeReply(resp, path, out)
}

// LBSClient is the user's client for an LBS application server.
type LBSClient struct {
	base string
	hc   *http.Client
}

// NewLBSClient returns a client for the LBS app at baseURL.
func NewLBSClient(baseURL string, hc *http.Client) *LBSClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &LBSClient{base: baseURL, hc: hc}
}

// Release posts a POI-aggregate release.
func (c *LBSClient) Release(ctx context.Context, rel ReleaseRequest) (*ReleaseResponse, error) {
	body, err := json.Marshal(rel)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal release: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+PathRelease, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("wire: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("wire: %s: %w", PathRelease, err)
	}
	defer resp.Body.Close()
	var out ReleaseResponse
	if err := decodeReply(resp, PathRelease, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Releases fetches a user's stored release history.
func (c *LBSClient) Releases(ctx context.Context, userID string) (*ReleasesResponse, error) {
	v := url.Values{}
	v.Set("user", userID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathReleases+"?"+v.Encode(), nil)
	if err != nil {
		return nil, fmt.Errorf("wire: build request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("wire: %s: %w", PathReleases, err)
	}
	defer resp.Body.Close()
	var out ReleasesResponse
	if err := decodeReply(resp, PathReleases, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// decodeReply maps non-2xx replies to errors and decodes 2xx bodies.
func decodeReply(resp *http.Response, path string, out any) error {
	if resp.StatusCode/100 != 2 {
		var errResp ErrorResponse
		msg := resp.Status
		if body, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
			if json.Unmarshal(body, &errResp) == nil && errResp.Error != "" {
				msg = errResp.Error
			}
		}
		if resp.StatusCode/100 == 4 {
			return fmt.Errorf("%w: %s: %s", ErrBadRequest, path, msg)
		}
		return fmt.Errorf("wire: %s: server error: %s", path, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("wire: %s: decode: %w", path, err)
	}
	return nil
}
