package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"poiagg/internal/geo"
)

// TestBackoffDelayHintBounds pins the Retry-After interaction as pure
// arithmetic: the hint only ever shortens the sleep, never lengthens it,
// and the exponential schedule stays within [base/2<<k, base<<k] capped
// at max regardless of attempt count.
func TestBackoffDelayHintBounds(t *testing.T) {
	c := clientCore{backoffBase: 100 * time.Millisecond, backoffMax: 800 * time.Millisecond}
	for i := 0; i < 200; i++ {
		// No hint: attempt 0 sleeps within [base/2, base].
		if d := c.backoffDelay(0, 0); d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("backoffDelay(0, no hint) = %v, want in [50ms, 100ms]", d)
		}
		// A short hint wins outright.
		if d := c.backoffDelay(0, 10*time.Millisecond); d != 10*time.Millisecond {
			t.Fatalf("backoffDelay(0, 10ms hint) = %v, want exactly 10ms", d)
		}
		// A long hint never stretches the sleep past the backoff.
		if d := c.backoffDelay(0, time.Hour); d > 100*time.Millisecond {
			t.Fatalf("backoffDelay(0, 1h hint) = %v, hint must not lengthen the sleep", d)
		}
		// Deep attempts (including shift overflow) stay capped at max.
		if d := c.backoffDelay(40, 0); d <= 0 || d > 800*time.Millisecond {
			t.Fatalf("backoffDelay(40, no hint) = %v, want in (0, 800ms]", d)
		}
	}
}

// TestClientRetriesShedThenSucceeds drives a 503-with-Retry-After shed
// through the fault proxy: the client treats it as transient, sleeps at
// most min(hint, backoff), retries, and the second attempt succeeds.
func TestClientRetriesShedThenSucceeds(t *testing.T) {
	client, ft, _ := faultyGSPClient(t, []faultAction{act503Retry}, 0,
		WithRetries(2), fastBackoff())
	start := time.Now()
	if _, err := client.Stats(context.Background()); err != nil {
		t.Fatalf("Stats after one shed: %v", err)
	}
	if got := ft.callCount(); got != 2 {
		t.Errorf("attempts = %d, want 2 (shed + success)", got)
	}
	// fastBackoff sleeps ~1-4ms; the 1s Retry-After hint must not have
	// stretched the wait (min(hint, backoff), not max).
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("retry slept %v; Retry-After hint must only shorten the backoff", elapsed)
	}
}

// TestClientExposesRetryAfterOnExhaustedSheds asserts an all-shed script
// surfaces as ErrOverloaded with the parsed Retry-After hint attached.
func TestClientExposesRetryAfterOnExhaustedSheds(t *testing.T) {
	client, ft, _ := faultyGSPClient(t, []faultAction{act503Retry, act503Retry}, 0,
		WithRetries(1), fastBackoff())
	_, err := client.Freq(context.Background(), geo.Point{X: 1, Y: 1}, 500)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var ov *OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want *OverloadedError", err)
	}
	if ov.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s", ov.RetryAfter)
	}
	if ov.Path != PathFreq {
		t.Errorf("Path = %q, want %q", ov.Path, PathFreq)
	}
	if !strings.Contains(ov.Message, "queue_full") {
		t.Errorf("Message = %q, want the server's structured reason", ov.Message)
	}
	if got := ft.callCount(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
}

// errResponse fabricates a non-2xx reply for decodeReply.
func errResponse(status int, contentType, body string) *http.Response {
	h := make(http.Header)
	if contentType != "" {
		h.Set("Content-Type", contentType)
	}
	return &http.Response{
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode: status,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader(body)),
	}
}

// TestDecodeReplyLargeJSONErrorBody is the regression test for the
// truncation bug: a legitimate JSON error envelope far beyond the old
// 4 KiB cap (a batch 400 carrying hundreds of per-item messages) must
// decode whole, with the tail of the message intact.
func TestDecodeReplyLargeJSONErrorBody(t *testing.T) {
	msg := strings.Repeat("item 17: freq has wrong dimension; ", 3000) + "END-MARKER"
	if len(msg) <= errBodyLimit {
		t.Fatalf("test body too small (%d bytes) to exercise the old cap", len(msg))
	}
	body, err := json.Marshal(ErrorResponse{Error: msg})
	if err != nil {
		t.Fatal(err)
	}
	derr := decodeReply(errResponse(http.StatusBadRequest, "application/json", string(body)), PathQueryBatch, nil)
	if !errors.Is(derr, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", derr)
	}
	if !strings.Contains(derr.Error(), "END-MARKER") {
		t.Errorf("large JSON error body was clipped: tail marker missing from %q...", derr.Error()[:80])
	}
}

// TestDecodeReplyTruncatedJSONErrorBody asserts a JSON envelope beyond
// even the generous 1 MiB cap yields a clean "truncated" error instead
// of a raw syntax error or a silently dropped body.
func TestDecodeReplyTruncatedJSONErrorBody(t *testing.T) {
	huge := `{"error":"` + strings.Repeat("x", errBodyLimitJSON+1024) + `"}`
	derr := decodeReply(errResponse(http.StatusInternalServerError, "application/json", huge), PathFreq, nil)
	if derr == nil {
		t.Fatal("decodeReply = nil for a 500")
	}
	want := fmt.Sprintf("error body truncated at %d bytes", errBodyLimitJSON)
	if !strings.Contains(derr.Error(), want) {
		t.Errorf("err = %q, want it to contain %q", derr.Error(), want)
	}
}

// TestDecodeReplyNonJSONBodyStaysBounded asserts non-JSON bodies (an
// intermediary's HTML error page) keep the tight cap: the quoted body is
// clipped and labeled truncated.
func TestDecodeReplyNonJSONBodyStaysBounded(t *testing.T) {
	page := "<html>" + strings.Repeat("gateway sadness ", 4096) + "</html>"
	derr := decodeReply(errResponse(http.StatusBadGateway, "text/html", page), PathStats, nil)
	if derr == nil {
		t.Fatal("decodeReply = nil for a 502")
	}
	want := fmt.Sprintf("error body truncated at %d bytes", errBodyLimit)
	if !strings.Contains(derr.Error(), want) {
		t.Errorf("err = %q, want it to contain %q", derr.Error(), want)
	}
	if len(derr.Error()) > errBodyLimit {
		t.Errorf("error string is %d bytes; non-JSON bodies must stay bounded", len(derr.Error()))
	}
}
